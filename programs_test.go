// Tests for the shipped example program files: every .s file must
// assemble (and, where valid, simulate) and every .loop file must compile
// and run for a few processor counts. This keeps examples/programs/ — the
// inputs the README points cmd/fuzzsim and cmd/fuzzcc at — from rotting.
package fuzzybarrier_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

const programsDir = "examples/programs"

func TestExampleAsmProgramsAssemble(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(programsDir, "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no .s files found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if p.Len() == 0 {
			t.Errorf("%s: empty program", f)
		}
		// invalid-fig2.s is invalid on purpose; everything else must
		// validate.
		if strings.Contains(f, "invalid") {
			if err := p.Validate(false); !errors.Is(err, isa.ErrInvalidBranch) {
				t.Errorf("%s: expected ErrInvalidBranch, got %v", f, err)
			}
			continue
		}
		if err := p.Validate(false); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestDriftLoopSimulates(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(programsDir, "driftloop.s"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{Procs: 2, Mem: mem.Config{
		Words: 256, Procs: 2, HitLatency: 1, MissLatency: 1, Modules: 2,
	}})
	for p := 0; p < 2; p++ {
		if err := m.Load(p, prog); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs() != 6 {
		t.Errorf("syncs = %d, want 6", res.Syncs())
	}
}

func TestFig2PairDeadlocks(t *testing.T) {
	load := func(name string) *isa.Program {
		src, err := os.ReadFile(filepath.Join(programsDir, name))
		if err != nil {
			t.Fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m := machine.New(machine.Config{Procs: 2, MaxCycles: 50_000, Mem: mem.Config{
		Words: 128, Procs: 2, HitLatency: 1, MissLatency: 1, Modules: 2,
	}})
	if err := m.Load(0, load("invalid-fig2.s")); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, load("fig2-partner.s")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !errors.Is(err, machine.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestExampleLoopProgramsCompileAndRun(t *testing.T) {
	cases := map[string][]int{ // file -> processor counts to try
		"poisson.loop": {2, 4},
		"fig5.loop":    {2, 3, 6},
		"fig9.loop":    {4, 8},
		"fig7.loop":    {2, 4},
	}
	for name, procCounts := range cases {
		src, err := os.ReadFile(filepath.Join(programsDir, name))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, procs := range procCounts {
			for _, mode := range []compiler.RegionMode{compiler.RegionSpan, compiler.RegionReorder, compiler.RegionPoint} {
				c, err := compiler.Compile(prog, compiler.Options{Procs: procs, Mode: mode})
				if err != nil {
					t.Fatalf("%s procs=%d mode=%v: %v", name, procs, mode, err)
				}
				m := machine.New(machine.Config{Procs: procs, Mem: mem.Config{
					Words: int(c.Layout.Words) + 64, Procs: procs,
					HitLatency: 1, MissLatency: 1, Modules: procs,
				}})
				for _, task := range c.Tasks {
					if err := task.Machine.Validate(false); err != nil {
						t.Fatalf("%s procs=%d mode=%v P%d: %v", name, procs, mode, task.Proc, err)
					}
					if err := m.Load(task.Proc, task.Machine); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("%s procs=%d mode=%v: %v", name, procs, mode, err)
				}
			}
		}
	}
}
