// Benchmarks regenerating the paper's evaluation, one benchmark per table
// or figure (DESIGN.md index E1..E18), plus the ablations DESIGN.md calls
// out. Simulator benchmarks report deterministic counters (cycles, stall
// cycles) via b.ReportMetric; goroutine benchmarks report wall time — on
// a time-shared scheduler treat those as orderings, not absolutes.
//
//	go test -bench=. -benchmem
package fuzzybarrier_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuzzybarrier/internal/baseline"
	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/exp"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/workload"
)

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

func simMem(procs, words int) mem.Config {
	return mem.Config{
		Words: words, Procs: procs,
		HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1,
	}
}

// runSim loads one program per processor, runs, and reports cycle/stall
// metrics normalized per b.N iteration.
func runSim(b *testing.B, cfg machine.Config, progs []*isa.Program) *machine.Result {
	b.Helper()
	cfg.Procs = len(progs)
	m := machine.New(cfg)
	for p, prog := range progs {
		if err := m.Load(p, prog); err != nil {
			b.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// spinWork burns deterministic CPU without shared-memory traffic.
func spinWork(units int) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < units*8; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
	}
	return x
}

var benchSink uint64

// ---------------------------------------------------------------------
// E1 — Section 8: sync cost vs. barrier-region size
// ---------------------------------------------------------------------

// BenchmarkE1SyncCostVsRegionSize is the goroutine (Encore-analog) form
// of the headline experiment: 4 workers, fixed per-iteration body, the
// barrier region growing from 0% to 50% of the body. ns/op falls as the
// region grows because blocked waits (context switches — the cost the
// paper attributes the 10,000 µs to) disappear.
func BenchmarkE1SyncCostVsRegionSize(b *testing.B) {
	const workers = 4
	const body = 64 // spin units per iteration
	for _, pct := range []int{0, 10, 25, 50} {
		region := body * pct / 100
		work := body - region
		b.Run(fmt.Sprintf("region=%d%%", pct), func(b *testing.B) {
			bar := core.NewFuzzyBarrier(workers)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					var acc uint64
					for i := 0; i < b.N; i++ {
						acc += spinWork(work + id%2) // slight skew
						ph := bar.Arrive()
						acc += spinWork(region)
						bar.Wait(ph)
					}
					benchSink += acc
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			_, _, _, _, blocks, _ := bar.Stats()
			b.ReportMetric(float64(blocks)/float64(b.N), "blocked/op")
		})
	}
}

// BenchmarkE1Simulated is the deterministic form: stall cycles per
// iteration on the 4-processor simulator with random drift.
func BenchmarkE1Simulated(b *testing.B) {
	const procs, iters, body, jitter = 4, 100, 200, 80
	for _, region := range []int64{0, 40, 100} {
		b.Run(fmt.Sprintf("region=%d", region), func(b *testing.B) {
			var stalls, cycles int64
			for i := 0; i < b.N; i++ {
				progs := make([]*isa.Program, procs)
				for p := 0; p < procs; p++ {
					rng := workload.NewRNG(uint64(7919*p + 13))
					prog, err := workload.SyncLoop{
						Self: p, Procs: procs,
						Work:   workload.DriftWork(rng, iters, body-region-jitter/2, jitter),
						Region: region,
					}.Program()
					if err != nil {
						b.Fatal(err)
					}
					progs[p] = prog
				}
				res := runSim(b, machine.Config{Mem: simMem(procs, 256)}, progs)
				stalls += res.TotalStalls()
				cycles += res.Cycles
			}
			b.ReportMetric(float64(stalls)/float64(b.N*iters*procs), "stall-cycles/iter")
			b.ReportMetric(float64(cycles)/float64(b.N*iters), "cycles/iter")
		})
	}
}

// ---------------------------------------------------------------------
// E2 — Section 1: barrier implementations and scaling
// ---------------------------------------------------------------------

// BenchmarkE2Barriers measures the runtime baselines (ns/episode) across
// implementations and participant counts — the log-vs-linear software
// spectrum the paper cites, plus the fuzzy barrier used as a point
// barrier.
func BenchmarkE2Barriers(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		for _, name := range baseline.Names() {
			b.Run(fmt.Sprintf("%s/p%d", name, procs), func(b *testing.B) {
				bar, err := baseline.New(name, procs)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				b.ResetTimer()
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							bar.Await(id)
						}
					}(p)
				}
				wg.Wait()
			})
		}
	}
}

// splitScalingOversubscribed reports whether a worker count is too far
// past the host's parallelism for wall-clock numbers to mean anything:
// beyond 64 goroutines per P the run measures the scheduler's run-queue
// churn, not the barrier. The deterministic hotspot-ops/phase metric is
// immune, but it ships in the same subtest, so the whole count is
// skipped with a logged reason rather than archiving noise.
func splitScalingOversubscribed(workers int) bool {
	return workers > 64*runtime.GOMAXPROCS(0)
}

// BenchmarkE2SplitScaling measures the arrive-side cost of the
// split-phase implementations — central counter, combining tree,
// allreduce, and the two-level sharded hierarchy — as the participant
// count grows past anything the paper's Multimax could host (8..16384
// goroutines) and the barrier region varies. Metrics:
//
//   - arrive-ns/op: mean wall time inside Arrive (scheduler-noisy on a
//     time-shared host; read orderings, not absolutes);
//   - ns/episode: wall time per completed synchronization episode — the
//     scaling-curve quantity BENCH_SMOKE.json archives;
//   - hotspot-ops/phase: atomic operations landing on the hottest single
//     counter word per episode, which is the deterministic, core-count-
//     independent measure of the Section 1 hot spot. Central is always
//     n+1; the tree stays near its radix plus collision-probe write
//     pairs, and the hierarchy bounds even the probe traffic with
//     read-only probing — the gap is measurable directly;
//   - maxprocs: GOMAXPROCS at run time, so archived numbers carry the
//     parallelism they were measured under.
//
// Worker counts beyond 64×GOMAXPROCS are skipped with a logged reason:
// at that oversubscription the wall-clock numbers measure scheduler
// churn, not the barrier.
func BenchmarkE2SplitScaling(b *testing.B) {
	for _, workers := range []int{8, 64, 256, 1024, 4096, 8192, 16384} {
		for _, region := range []int{0, 16} {
			for _, name := range baseline.SplitNames() {
				b.Run(fmt.Sprintf("%s/p%d/region=%d", name, workers, region), func(b *testing.B) {
					if splitScalingOversubscribed(workers) {
						b.Skipf("skipping %d workers at GOMAXPROCS=%d: > 64x oversubscribed, wall-clock numbers would be scheduler noise",
							workers, runtime.GOMAXPROCS(0))
					}
					bar, err := baseline.NewSplit(name, workers)
					if err != nil {
						b.Fatal(err)
					}
					var arriveNS, sink atomic.Int64
					var wg sync.WaitGroup
					b.ResetTimer()
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							var ns int64
							var acc uint64
							for i := 0; i < b.N; i++ {
								t0 := time.Now()
								ph := bar.Arrive()
								ns += time.Since(t0).Nanoseconds()
								acc += spinWork(region)
								bar.Wait(ph)
							}
							arriveNS.Add(ns)
							sink.Add(int64(acc))
						}()
					}
					wg.Wait()
					b.StopTimer()
					benchSink += uint64(sink.Load())
					b.ReportMetric(float64(arriveNS.Load())/float64(int64(b.N)*int64(workers)), "arrive-ns/op")
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/episode")
					b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
					if prof, ok := bar.(core.ArriveProfiler); ok {
						if ops, phases := prof.HotspotOps(); phases > 0 {
							b.ReportMetric(float64(ops)/float64(phases), "hotspot-ops/phase")
						}
					}
				})
			}
		}
	}
}

// BenchmarkE2Simulated reports the deterministic software-vs-hardware
// cost: cycles per episode for the counter barrier written in simulator
// instructions vs. the fuzzy-barrier hardware.
func BenchmarkE2Simulated(b *testing.B) {
	const episodes = 50
	for _, procs := range []int{4, 16} {
		b.Run(fmt.Sprintf("central-sw/p%d", procs), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				progs := make([]*isa.Program, procs)
				for p := 0; p < procs; p++ {
					prog, err := workload.CentralBarrierLoop{
						Self: p, Procs: procs, Work: workload.BarrierOnlyWork(episodes),
					}.Program()
					if err != nil {
						b.Fatal(err)
					}
					progs[p] = prog
				}
				cfg := simMem(procs, 256)
				cfg.Modules = 1
				cfg.ModuleBusy = 2
				res := runSim(b, machine.Config{Mem: cfg}, progs)
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N*episodes), "cycles/episode")
		})
		b.Run(fmt.Sprintf("fuzzy-hw/p%d", procs), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				progs := make([]*isa.Program, procs)
				for p := 0; p < procs; p++ {
					prog, err := workload.SyncLoop{
						Self: p, Procs: procs,
						Work: workload.UniformWork(episodes, 0),
					}.Program()
					if err != nil {
						b.Fatal(err)
					}
					progs[p] = prog
				}
				res := runSim(b, machine.Config{Mem: simMem(procs, 256)}, progs)
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N*episodes), "cycles/episode")
		})
	}
}

// ---------------------------------------------------------------------
// E3 — Figure 4: region construction and reordering
// ---------------------------------------------------------------------

// BenchmarkE3RegionReordering compiles the Poisson solver under each
// region-construction mode, reporting the resulting non-barrier region
// size (the Figure 4 quantity) and the compile cost.
func BenchmarkE3RegionReordering(b *testing.B) {
	prog := lang.MustParse(exp.PoissonSource)
	for _, mode := range []compiler.RegionMode{compiler.RegionSpan, compiler.RegionReorder} {
		b.Run(mode.String(), func(b *testing.B) {
			var nb int
			for i := 0; i < b.N; i++ {
				c, err := compiler.Compile(prog, compiler.Options{Procs: 4, Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				nb = c.Tasks[0].Stats.NonBarrier
			}
			b.ReportMetric(float64(nb), "non-barrier-TAC")
		})
	}
}

// ---------------------------------------------------------------------
// E4..E11 — remaining tables: each benchmark regenerates its experiment
// and reports the headline metric deterministically.
// ---------------------------------------------------------------------

// benchExperiment runs a full experiment table per iteration; the tables
// themselves validate their expected shapes internally.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE4LoopDistribution regenerates the Figure 5 table.
func BenchmarkE4LoopDistribution(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5VariableLengthStreams regenerates the Figure 7 table.
func BenchmarkE5VariableLengthStreams(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6LexicallyForward regenerates the Figures 9-10 table.
func BenchmarkE6LexicallyForward(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7StaticScheduling regenerates the Figure 11 table.
func BenchmarkE7StaticScheduling(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8RuntimeScheduling regenerates the Figure 12 table.
func BenchmarkE8RuntimeScheduling(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9InvalidBranch regenerates the Figure 2 demonstration
// (validator + deadlock detection).
func BenchmarkE9InvalidBranch(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10StallProbability regenerates the Section 2 stall-vs-region
// sweep.
func BenchmarkE10StallProbability(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11MultipleBarriers regenerates the Section 5 N-1 bound table.
func BenchmarkE11MultipleBarriers(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12InterruptTolerance regenerates the Section 9 future-work
// extension table (interrupts in barrier regions).
func BenchmarkE12InterruptTolerance(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13ProcedureCalls regenerates the Section 9 future-work
// extension table (procedure calls from barrier regions).
func BenchmarkE13ProcedureCalls(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14PhaseAttribution regenerates the per-phase stall
// attribution table (observability extension).
func BenchmarkE14PhaseAttribution(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15ClusterSync regenerates the message-passing cluster table
// (sync cost vs. region size over a lossy network).
func BenchmarkE15ClusterSync(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkClusterSim measures raw discrete-event throughput of one
// lossy dissemination-barrier run (the heaviest cluster protocol by
// message count), reporting deterministic stall ticks per epoch.
func BenchmarkClusterSim(b *testing.B) {
	var stall float64
	for i := 0; i < b.N; i++ {
		sim, err := cluster.New(cluster.Config{
			Protocol: "dissemination", Nodes: 8, Epochs: 50,
			Work: 300, WorkJitter: 100, Region: 120,
			Net:  cluster.NetConfig{Latency: 20, Jitter: 15, DropRate: 0.05, DupRate: 0.02},
			Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		stall = res.StallPerEpoch()
	}
	b.ReportMetric(stall, "stall-ticks/epoch")
}

// BenchmarkE16ClusterScaling regenerates the 16..4096-node scaling table.
func BenchmarkE16ClusterScaling(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkClusterEngine compares the two cluster event engines on one
// lossy 256-node run — the closure engine (container/heap of *event plus
// captured closures) against the default typed-event engine (pooled
// arena, calendar wheel, 4-ary overflow heap). Run with -benchmem: the
// closure engine allocates per scheduled action, the typed engine's
// steady state allocates nothing (allocs/op shows only per-run pool
// warm-up). The bench-gate counterpart is TestClusterEngineSpeedupGate.
func BenchmarkClusterEngine(b *testing.B) {
	cfg := cluster.Config{
		Protocol: "dissemination", Nodes: 256, Epochs: 20,
		Work: 120, WorkJitter: 40, Region: 30,
		Net:  cluster.NetConfig{Latency: 12, Jitter: 25, DropRate: 0.2, DupRate: 0.08},
		Seed: 1234,
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"closure", true}, {"typed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var ticks int64
			for i := 0; i < b.N; i++ {
				c := cfg
				c.DisableFastEngine = mode.disable
				sim, err := cluster.New(c)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				ticks = res.Ticks
			}
			b.ReportMetric(float64(ticks), "sim-ticks")
		})
	}
}

// BenchmarkE18FleetAggregation regenerates the fleet epoch aggregation
// table (reduce-barrier allreduce vs central gather).
func BenchmarkE18FleetAggregation(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE20HierScaling regenerates the hierarchical-vs-flat hot-spot
// table (central vs tree vs hier under spread and clustered routing).
func BenchmarkE20HierScaling(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkReduceAllreduce is the goroutine (wall-clock) form of E18's
// comparison: workers agree on a per-phase max either through the
// combining ReduceBarrier (AwaitValue — the result rides the epoch
// publication) or through a central CAS word paced by a plain
// FuzzyBarrier. ns/op is one full allreduce episode per worker; on a
// time-shared host read the two as an ordering, not absolutes — the
// deterministic hotspot numbers are in E18 itself. The central variant
// skips the per-phase accumulator reset (the fold is monotone across
// phases), so its cost here is a floor.
func BenchmarkReduceAllreduce(b *testing.B) {
	for _, workers := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("reduce-tree/p%d", workers), func(b *testing.B) {
			bar := core.NewReduceBarrier(workers, core.OpMax, core.IdentityMax)
			var sink atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int64) {
					defer wg.Done()
					var acc int64
					for i := 0; i < b.N; i++ {
						acc ^= bar.AwaitValue(id + int64(i))
					}
					sink.Add(acc)
				}(int64(w))
			}
			wg.Wait()
			b.StopTimer()
			benchSink += uint64(sink.Load())
		})
		b.Run(fmt.Sprintf("central-gather/p%d", workers), func(b *testing.B) {
			bar := core.NewFuzzyBarrier(workers)
			var word atomic.Int64
			word.Store(core.IdentityMax)
			var sink atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int64) {
					defer wg.Done()
					var acc int64
					for i := 0; i < b.N; i++ {
						v := id + int64(i)
						for {
							old := word.Load()
							if v <= old || word.CompareAndSwap(old, v) {
								break
							}
						}
						ph := bar.Arrive()
						bar.Wait(ph)
						acc ^= word.Load()
					}
					sink.Add(acc)
				}(int64(w))
			}
			wg.Wait()
			b.StopTimer()
			benchSink += uint64(sink.Load())
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

// BenchmarkAblationRegionEncoding compares the two Section 6 region
// encodings — per-instruction bit vs. BENTER/BEXIT markers — on the same
// synchronizing loop. Markers cost two extra instructions per region.
func BenchmarkAblationRegionEncoding(b *testing.B) {
	const procs, iters = 2, 200
	build := func(marker bool, self int) *isa.Program {
		var bb *isa.Builder
		if marker {
			bb = isa.NewMarkerBuilder("m")
		} else {
			bb = isa.NewBuilder("b")
		}
		bb.BarrierInit(1, uint64(core.AllExcept(procs, self))).Ldi(1, 0).Ldi(2, iters)
		bb.Label("loop")
		bb.InBarrier().Addi(1, 1, 1)
		bb.InNonBarrier().Work(10).CondBr(isa.BLT, 1, 2, "loop").Halt()
		return bb.MustBuild()
	}
	for _, marker := range []bool{false, true} {
		name := "bit"
		if marker {
			name = "marker"
		}
		b.Run(name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res := runSim(b, machine.Config{Mem: simMem(procs, 128)},
					[]*isa.Program{build(marker, 0), build(marker, 1)})
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N*iters), "cycles/iter")
		})
	}
}

// BenchmarkAblationPipelineDepth measures the effect of the pipeline
// ready-line delay (Section 2's exit-vs-enter distinction): the line
// rises depth−1 cycles after region entry, so synchronization fires that
// much later and a drifted processor stalls correspondingly longer. With
// symmetric work the delay cancels out; with drift it surfaces as extra
// stall cycles.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	const procs, iters = 4, 200
	for _, depth := range []int64{1, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var cycles, stalls int64
			for i := 0; i < b.N; i++ {
				progs := make([]*isa.Program, procs)
				for p := 0; p < procs; p++ {
					prog, err := workload.SyncLoop{
						Self: p, Procs: procs,
						Work:   workload.AlternatingWork(iters, 5, 25, p%2),
						Region: 10,
					}.Program()
					if err != nil {
						b.Fatal(err)
					}
					progs[p] = prog
				}
				res := runSim(b, machine.Config{Mem: simMem(procs, 128), PipelineDepth: depth}, progs)
				cycles += res.Cycles
				stalls += res.TotalStalls()
			}
			b.ReportMetric(float64(cycles)/float64(b.N*iters), "cycles/iter")
			b.ReportMetric(float64(stalls)/float64(b.N*iters*procs), "stall-cycles/iter")
		})
	}
}

// BenchmarkAblationIssueWidth measures the VLIW issue mode of Section 9
// on the compiled Poisson solver: wider issue shortens the address
// arithmetic in the barrier region without changing synchronization
// behaviour.
func BenchmarkAblationIssueWidth(b *testing.B) {
	prog := lang.MustParse(exp.PoissonSource)
	c, err := compiler.Compile(prog, compiler.Options{Procs: 4, Mode: compiler.RegionReorder})
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := machine.Config{
					Procs:      4,
					Mem:        simMem(4, int(c.Layout.Words)+64),
					IssueWidth: width,
				}
				m := machine.New(cfg)
				for _, task := range c.Tasks {
					if err := m.Load(task.Proc, task.Machine); err != nil {
						b.Fatal(err)
					}
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles")
		})
	}
}

// BenchmarkFuzzyBarrierArriveWait measures the raw split-phase fast path:
// a single goroutine pair ping-ponging through Arrive/Wait.
func BenchmarkFuzzyBarrierArriveWait(b *testing.B) {
	bar := core.NewFuzzyBarrier(2)
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				bar.Wait(bar.Arrive())
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDynamicBarrier measures the dynamic-membership barrier
// (register / arrive-and-leave) against the fixed-membership fast path.
func BenchmarkDynamicBarrier(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("p%d", workers), func(b *testing.B) {
			bar := core.NewDynamicBarrier(workers)
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						bar.Wait(bar.Arrive())
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSimulatorThroughput reports simulated instructions per second
// — the simulator's own speed, which bounds experiment turnaround.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := workload.SyncLoop{
		Self: 0, Procs: 1, Work: workload.UniformWork(1000, 5), Region: 2,
	}.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res := runSim(b, machine.Config{Mem: simMem(1, 128)}, []*isa.Program{prog})
		instrs += res.Procs[0].Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// ---------------------------------------------------------------------
// Fast-forward engine and parallel sweeps (perf additions)
// ---------------------------------------------------------------------

// BenchmarkMachineFastForward measures the cycle fast-forward engine on
// a stall-heavy drift workload: "naive" steps every cycle, "fast" jumps
// idle spans. Both produce bit-identical results (see
// internal/machine/ff_test.go); the ratio of the two ns/op numbers is
// the speedup the engine buys.
func BenchmarkMachineFastForward(b *testing.B) {
	const procs, iters = 8, 200
	progs, err := workload.StallHeavyPrograms(procs, iters, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"naive", true}, {"fast", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res := runSim(b, machine.Config{
					Mem:                simMem(procs, 256),
					DisableFastForward: mode.disable,
				}, progs)
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSweepParallel measures the sweep worker pool on the full E15
// cluster sweep (54 independent (protocol, network, region) cells):
// workers=1 is the pre-pool serial baseline, workers=4 the parallel
// run. Tables are byte-identical either way (exp.TestParallelDeterminism).
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			exp.SetParallelism(workers)
			defer exp.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				if _, err := exp.E15ClusterSync(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
