// Command clustersim runs the message-passing fuzzy barriers of
// internal/cluster over a simulated lossy network and reports per-node
// stall, message traffic, and recovery work.
//
// Usage:
//
//	clustersim                                  # all protocols, defaults
//	clustersim -proto tree -nodes 16 -drop 0.1
//	clustersim -proto dissemination -jitter 40 -log
//	clustersim -proto central -drop 1 ; echo $?  # watchdog demo, exits 1
//
// Flags:
//
//	-proto P        protocol: central, tree, dissemination (default: all)
//	-nodes N        cluster size (default 8)
//	-epochs N       barrier episodes per node (default 50)
//	-work N         non-barrier work ticks per epoch (default 400)
//	-work-jitter N  extra uniform work draw in [0,N] (default 100)
//	-region N       barrier-region ticks between Arrive and Wait (default 150)
//	-latency N      base one-way link latency, ticks (default 20)
//	-jitter N       extra uniform link latency in [0,N]; causes reordering
//	-drop P         per-transmission loss probability (default 0)
//	-dup P          per-transmission duplication probability (default 0)
//	-straggler ID   node that runs late every epoch (with -straggle)
//	-straggle N     extra work ticks for the straggler (default 0 = off)
//	-arity K        combining-tree fanout (default 2)
//	-seed S         RNG seed; same seed => byte-identical run (default 1)
//	-log            print the full message-level event log
//	-trace-out FILE write a Chrome trace-event JSON (chrome://tracing, Perfetto)
//
// Every run is deterministic and replayable. A run the watchdog declares
// stuck prints the per-node diagnosis and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/trace"
)

func main() {
	proto := flag.String("proto", "", "protocol: central, tree, dissemination (default: all)")
	nodes := flag.Int("nodes", 8, "cluster size")
	epochs := flag.Int("epochs", 50, "barrier episodes per node")
	work := flag.Int64("work", 400, "non-barrier work ticks per epoch")
	workJitter := flag.Int64("work-jitter", 100, "extra uniform work draw in [0,N]")
	region := flag.Int64("region", 150, "barrier-region ticks between Arrive and Wait")
	latency := flag.Int64("latency", 20, "base one-way link latency, ticks")
	jitter := flag.Int64("jitter", 0, "extra uniform link latency in [0,N]")
	drop := flag.Float64("drop", 0, "per-transmission loss probability")
	dup := flag.Float64("dup", 0, "per-transmission duplication probability")
	straggler := flag.Int("straggler", 0, "node that runs late every epoch")
	straggle := flag.Int64("straggle", 0, "extra work ticks for the straggler (0 = off)")
	arity := flag.Int("arity", 2, "combining-tree fanout")
	seed := flag.Uint64("seed", 1, "RNG seed; same seed => byte-identical run")
	logEvents := flag.Bool("log", false, "print the message-level event log")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file")
	flag.Parse()

	protos := cluster.Protocols()
	if *proto != "" {
		protos = []string{*proto}
	}
	if *traceOut != "" && len(protos) != 1 {
		fatal(fmt.Errorf("-trace-out wants a single -proto, got %d protocols", len(protos)))
	}

	exit := 0
	for _, p := range protos {
		var rec *trace.Recorder
		if *traceOut != "" {
			rec = trace.NewRecorder(*nodes)
		}
		sim, err := cluster.New(cluster.Config{
			Protocol:   p,
			Nodes:      *nodes,
			Epochs:     *epochs,
			Work:       *work,
			WorkJitter: *workJitter,
			Region:     *region,
			Straggler:  *straggler, StraggleExtra: *straggle,
			Net: cluster.NetConfig{
				Latency: *latency, Jitter: *jitter,
				DropRate: *drop, DupRate: *dup,
			},
			TreeArity: *arity,
			Seed:      *seed,
			LogEvents: *logEvents,
			Recorder:  rec,
		})
		if err != nil {
			fatal(err)
		}
		res, runErr := sim.Run()
		if *logEvents {
			for _, line := range sim.EventLog() {
				fmt.Println(line)
			}
		}
		fmt.Println(res)
		for n, s := range res.PerNodeStall {
			fmt.Printf("  node %-3d stall=%-8d (%.1f/epoch)\n", n, s, float64(s)/maxF(1, float64(res.Epochs)))
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", runErr)
			exit = 1
		}
		if rec != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteChrome(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("chrome trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
		}
	}
	os.Exit(exit)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
	os.Exit(1)
}
