// Command clustersim runs the message-passing fuzzy barriers of
// internal/cluster over a simulated lossy network and reports per-node
// stall, message traffic, and recovery work.
//
// Usage:
//
//	clustersim                                  # all protocols, defaults
//	clustersim -proto tree -nodes 16 -drop 0.1
//	clustersim -proto dissemination -jitter 40 -log
//	clustersim -proto central -drop 1 ; echo $?  # watchdog demo, exits 1
//
// Flags:
//
//	-proto P        protocol: central, tree, dissemination (default: all)
//	-nodes N        cluster size (default 8)
//	-epochs N       barrier episodes per node (default 50)
//	-work N         non-barrier work ticks per epoch (default 400)
//	-work-jitter N  extra uniform work draw in [0,N] (default 100)
//	-region N       barrier-region ticks between Arrive and Wait (default 150)
//	-latency N      base one-way link latency, ticks (default 20)
//	-jitter N       extra uniform link latency in [0,N]; causes reordering
//	-drop P         per-transmission loss probability (default 0)
//	-dup P          per-transmission duplication probability (default 0)
//	-straggler ID   node that runs late every epoch (with -straggle)
//	-straggle N     extra work ticks for the straggler (default 0 = off)
//	-arity K        combining-tree fanout (default 2)
//	-seed S         RNG seed; same seed => byte-identical run (default 1)
//	-seeds K        replay K consecutive seeds S..S+K-1 per protocol (default 1)
//	-parallel N     workers for the (protocol, seed) sweep; 0 = GOMAXPROCS
//	-engine E       event engine: fast (typed-event arena, default), slow
//	                (the original closure heap), or parallel (sharded
//	                lookahead windows); output is byte-identical
//	-shards N       shard count for -engine parallel (0 = GOMAXPROCS)
//	-progress       report seed-replay progress on stderr
//	-log            print the full message-level event log
//	-trace-out FILE write a Chrome trace-event JSON (chrome://tracing, Perfetto)
//	-cpuprofile F   write a pprof CPU profile (also -memprofile,
//	                -mutexprofile, -blockprofile)
//
// Every run is deterministic and replayable: multi-seed output carries a
// per-seed transcript hash, and under -engine parallel every seed is
// re-run on the serial engine and the hashes compared — any divergence
// fails the run immediately. A run the watchdog declares stuck prints
// the per-node diagnosis and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strings"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/prof"
	"fuzzybarrier/internal/sweep"
	"fuzzybarrier/internal/trace"
)

func main() {
	proto := flag.String("proto", "", "protocol: central, tree, dissemination (default: all)")
	nodes := flag.Int("nodes", 8, "cluster size")
	epochs := flag.Int("epochs", 50, "barrier episodes per node")
	work := flag.Int64("work", 400, "non-barrier work ticks per epoch")
	workJitter := flag.Int64("work-jitter", 100, "extra uniform work draw in [0,N]")
	region := flag.Int64("region", 150, "barrier-region ticks between Arrive and Wait")
	latency := flag.Int64("latency", 20, "base one-way link latency, ticks")
	jitter := flag.Int64("jitter", 0, "extra uniform link latency in [0,N]")
	drop := flag.Float64("drop", 0, "per-transmission loss probability")
	dup := flag.Float64("dup", 0, "per-transmission duplication probability")
	straggler := flag.Int("straggler", 0, "node that runs late every epoch")
	straggle := flag.Int64("straggle", 0, "extra work ticks for the straggler (0 = off)")
	arity := flag.Int("arity", 2, "combining-tree fanout")
	seed := flag.Uint64("seed", 1, "RNG seed; same seed => byte-identical run")
	seeds := flag.Int("seeds", 1, "replay this many consecutive seeds per protocol")
	parallel := flag.Int("parallel", 0, "workers for the (protocol, seed) sweep; 0 = GOMAXPROCS")
	engine := flag.String("engine", "fast", "event engine: fast (typed-event arena), slow (closure heap), or parallel (sharded lookahead windows)")
	shards := flag.Int("shards", 0, "shard count for -engine parallel; 0 = GOMAXPROCS")
	progress := flag.Bool("progress", false, "report seed-replay progress on stderr")
	logEvents := flag.Bool("log", false, "print the message-level event log")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile to this file")
	flag.Parse()

	protos := cluster.Protocols()
	if *proto != "" {
		protos = []string{*proto}
	}
	if *seeds < 1 {
		fatal(fmt.Errorf("-seeds wants a positive count, got %d", *seeds))
	}
	if *traceOut != "" && (len(protos) != 1 || *seeds != 1) {
		fatal(fmt.Errorf("-trace-out wants a single -proto and -seeds 1, got %d protocols x %d seeds", len(protos), *seeds))
	}
	if *logEvents && *seeds != 1 {
		fatal(fmt.Errorf("-log wants -seeds 1, got %d seeds", *seeds))
	}
	if *engine != "fast" && *engine != "slow" && *engine != "parallel" {
		fatal(fmt.Errorf("-engine wants fast, slow, or parallel, got %q", *engine))
	}
	if *engine == "parallel" && *traceOut != "" {
		fatal(fmt.Errorf("-engine parallel cannot record a chrome trace; use -engine fast"))
	}
	nShards := 1
	if *engine == "parallel" {
		nShards = *shards
		if nShards <= 0 {
			nShards = runtime.GOMAXPROCS(0)
		}
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fatal(err)
	}

	baseConfig := func(p string, s uint64) cluster.Config {
		return cluster.Config{
			Protocol:   p,
			Nodes:      *nodes,
			Epochs:     *epochs,
			Work:       *work,
			WorkJitter: *workJitter,
			Region:     *region,
			Straggler:  *straggler, StraggleExtra: *straggle,
			Net: cluster.NetConfig{
				Latency: *latency, Jitter: *jitter,
				DropRate: *drop, DupRate: *dup,
			},
			TreeArity:         *arity,
			Seed:              s,
			LogEvents:         *logEvents,
			DisableFastEngine: *engine == "slow",
			Shards:            nShards,
		}
	}
	var progressHook func(done, total int)
	if *progress {
		progressHook = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rseeds %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// Each (protocol, seed) cell is an independent replay. Cells run on
	// the sweep worker pool — or, for plain multi-seed fast-engine runs,
	// on the lockstep multi-seed batch executor — and output is buffered
	// per cell and printed in index order, so the transcript is identical
	// at any -parallel and on either executor.
	type cellOut struct {
		text   string
		failed bool
	}
	multi := *seeds > 1
	renderCell := func(p string, s uint64, res *cluster.Result, log []string, runErr error) cellOut {
		transcript := renderTranscript(res, log)
		var b strings.Builder
		if multi {
			// The transcript hash makes engine-equivalence regressions
			// visible outside the test suite: identical runs hash
			// identically across -engine fast/slow/parallel and any
			// -parallel worker count.
			fmt.Fprintf(&b, "seed %d: transcript=%016x\n", s, transcriptHash(transcript))
		}
		b.WriteString(transcript)
		out := cellOut{text: b.String()}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", runErr)
			out.failed = true
		}
		return out
	}
	// checkSerial re-runs one parallel-engine cell on the serial fast
	// engine and fails fast on any transcript divergence, so equivalence
	// regressions surface outside the test suite too.
	checkSerial := func(p string, s uint64, parRes *cluster.Result, parLog []string) error {
		cfg := baseConfig(p, s)
		cfg.Shards = 1
		sim, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		serRes, _ := sim.Run()
		parT, serT := renderTranscript(parRes, parLog), renderTranscript(serRes, sim.EventLog())
		if parT != serT {
			return fmt.Errorf("%s seed %d: parallel engine diverges from serial (parallel transcript=%016x, serial=%016x)",
				p, s, transcriptHash(parT), transcriptHash(serT))
		}
		return nil
	}

	nCells := len(protos) * *seeds
	var cells []cellOut
	if *engine == "fast" && *traceOut == "" && !*logEvents && multi {
		// The batch path: K seeds of one config in lockstep lane groups.
		cells = make([]cellOut, nCells)
		seedList := make([]uint64, *seeds)
		for i := range seedList {
			seedList[i] = *seed + uint64(i)
		}
		for pi, p := range protos {
			hook := progressHook
			if hook != nil {
				off := pi * *seeds
				hook = func(done, total int) { progressHook(off+done, nCells) }
			}
			results, errs := cluster.RunBatch(baseConfig(p, 0), seedList, sweep.Workers(*parallel), hook)
			for i, res := range results {
				if res == nil { // config rejected before the run started
					fatal(errs[i])
				}
				cells[pi**seeds+i] = renderCell(p, seedList[i], res, nil, errs[i])
			}
		}
	} else {
		cells, err = sweep.RunProgress(sweep.Workers(*parallel), nCells, progressHook, func(i int) (cellOut, error) {
			p := protos[i / *seeds]
			s := *seed + uint64(i%*seeds)
			var rec *trace.Recorder
			if *traceOut != "" {
				rec = trace.NewRecorder(*nodes)
			}
			cfg := baseConfig(p, s)
			cfg.Recorder = rec
			sim, err := cluster.New(cfg)
			if err != nil {
				return cellOut{}, err
			}
			res, runErr := sim.Run()
			out := renderCell(p, s, res, sim.EventLog(), runErr)
			if *engine == "parallel" {
				if err := checkSerial(p, s, res, sim.EventLog()); err != nil {
					return cellOut{}, err
				}
			}
			if rec != nil {
				f, err := os.Create(*traceOut)
				if err != nil {
					return cellOut{}, err
				}
				if err := rec.WriteChrome(f); err != nil {
					f.Close()
					return cellOut{}, err
				}
				if err := f.Close(); err != nil {
					return cellOut{}, err
				}
				out.text += fmt.Sprintf("chrome trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
			}
			return out, nil
		})
		if err != nil {
			stopProf()
			fatal(err)
		}
	}
	exit := 0
	for _, c := range cells {
		fmt.Print(c.text)
		if c.failed {
			exit = 1
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		if exit == 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

// renderTranscript renders one run's deterministic transcript: the
// event log (when enabled), the Result line, and the per-node stall
// table. Identical runs — any engine, any executor — render
// byte-identical transcripts.
func renderTranscript(res *cluster.Result, log []string) string {
	var b strings.Builder
	for _, line := range log {
		fmt.Fprintln(&b, line)
	}
	fmt.Fprintln(&b, res)
	for n, st := range res.PerNodeStall {
		fmt.Fprintf(&b, "  node %-3d stall=%-8d (%.1f/epoch)\n", n, st, float64(st)/maxF(1, float64(res.Epochs)))
	}
	return b.String()
}

// transcriptHash is the per-seed divergence fingerprint (FNV-1a).
func transcriptHash(transcript string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(transcript))
	return h.Sum64()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
	os.Exit(1)
}
