// Command clustersim runs the message-passing fuzzy barriers of
// internal/cluster over a simulated lossy network and reports per-node
// stall, message traffic, and recovery work.
//
// Usage:
//
//	clustersim                                  # all protocols, defaults
//	clustersim -proto tree -nodes 16 -drop 0.1
//	clustersim -proto dissemination -jitter 40 -log
//	clustersim -proto central -drop 1 ; echo $?  # watchdog demo, exits 1
//
// Flags:
//
//	-proto P        protocol: central, tree, dissemination (default: all)
//	-nodes N        cluster size (default 8)
//	-epochs N       barrier episodes per node (default 50)
//	-work N         non-barrier work ticks per epoch (default 400)
//	-work-jitter N  extra uniform work draw in [0,N] (default 100)
//	-region N       barrier-region ticks between Arrive and Wait (default 150)
//	-latency N      base one-way link latency, ticks (default 20)
//	-jitter N       extra uniform link latency in [0,N]; causes reordering
//	-drop P         per-transmission loss probability (default 0)
//	-dup P          per-transmission duplication probability (default 0)
//	-straggler ID   node that runs late every epoch (with -straggle)
//	-straggle N     extra work ticks for the straggler (default 0 = off)
//	-arity K        combining-tree fanout (default 2)
//	-seed S         RNG seed; same seed => byte-identical run (default 1)
//	-seeds K        replay K consecutive seeds S..S+K-1 per protocol (default 1)
//	-parallel N     workers for the (protocol, seed) sweep; 0 = GOMAXPROCS
//	-engine E       event engine: fast (typed-event arena, default) or slow
//	                (the original closure heap); output is byte-identical
//	-log            print the full message-level event log
//	-trace-out FILE write a Chrome trace-event JSON (chrome://tracing, Perfetto)
//
// Every run is deterministic and replayable. A run the watchdog declares
// stuck prints the per-node diagnosis and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/sweep"
	"fuzzybarrier/internal/trace"
)

func main() {
	proto := flag.String("proto", "", "protocol: central, tree, dissemination (default: all)")
	nodes := flag.Int("nodes", 8, "cluster size")
	epochs := flag.Int("epochs", 50, "barrier episodes per node")
	work := flag.Int64("work", 400, "non-barrier work ticks per epoch")
	workJitter := flag.Int64("work-jitter", 100, "extra uniform work draw in [0,N]")
	region := flag.Int64("region", 150, "barrier-region ticks between Arrive and Wait")
	latency := flag.Int64("latency", 20, "base one-way link latency, ticks")
	jitter := flag.Int64("jitter", 0, "extra uniform link latency in [0,N]")
	drop := flag.Float64("drop", 0, "per-transmission loss probability")
	dup := flag.Float64("dup", 0, "per-transmission duplication probability")
	straggler := flag.Int("straggler", 0, "node that runs late every epoch")
	straggle := flag.Int64("straggle", 0, "extra work ticks for the straggler (0 = off)")
	arity := flag.Int("arity", 2, "combining-tree fanout")
	seed := flag.Uint64("seed", 1, "RNG seed; same seed => byte-identical run")
	seeds := flag.Int("seeds", 1, "replay this many consecutive seeds per protocol")
	parallel := flag.Int("parallel", 0, "workers for the (protocol, seed) sweep; 0 = GOMAXPROCS")
	engine := flag.String("engine", "fast", "event engine: fast (typed-event arena) or slow (closure heap)")
	logEvents := flag.Bool("log", false, "print the message-level event log")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file")
	flag.Parse()

	protos := cluster.Protocols()
	if *proto != "" {
		protos = []string{*proto}
	}
	if *seeds < 1 {
		fatal(fmt.Errorf("-seeds wants a positive count, got %d", *seeds))
	}
	if *traceOut != "" && (len(protos) != 1 || *seeds != 1) {
		fatal(fmt.Errorf("-trace-out wants a single -proto and -seeds 1, got %d protocols x %d seeds", len(protos), *seeds))
	}
	if *logEvents && *seeds != 1 {
		fatal(fmt.Errorf("-log wants -seeds 1, got %d seeds", *seeds))
	}
	if *engine != "fast" && *engine != "slow" {
		fatal(fmt.Errorf("-engine wants fast or slow, got %q", *engine))
	}

	// Each (protocol, seed) cell is an independent replay. Cells run on
	// the sweep worker pool; output is buffered per cell and printed in
	// index order, so the transcript is identical at any -parallel.
	type cellOut struct {
		text   string
		failed bool
	}
	nCells := len(protos) * *seeds
	cells, err := sweep.Run(sweep.Workers(*parallel), nCells, func(i int) (cellOut, error) {
		p := protos[i / *seeds]
		s := *seed + uint64(i%*seeds)
		var rec *trace.Recorder
		if *traceOut != "" {
			rec = trace.NewRecorder(*nodes)
		}
		sim, err := cluster.New(cluster.Config{
			Protocol:   p,
			Nodes:      *nodes,
			Epochs:     *epochs,
			Work:       *work,
			WorkJitter: *workJitter,
			Region:     *region,
			Straggler:  *straggler, StraggleExtra: *straggle,
			Net: cluster.NetConfig{
				Latency: *latency, Jitter: *jitter,
				DropRate: *drop, DupRate: *dup,
			},
			TreeArity:         *arity,
			Seed:              s,
			LogEvents:         *logEvents,
			Recorder:          rec,
			DisableFastEngine: *engine == "slow",
		})
		if err != nil {
			return cellOut{}, err
		}
		res, runErr := sim.Run()
		var b strings.Builder
		if *logEvents {
			for _, line := range sim.EventLog() {
				fmt.Fprintln(&b, line)
			}
		}
		if *seeds > 1 {
			fmt.Fprintf(&b, "seed %d:\n", s)
		}
		fmt.Fprintln(&b, res)
		for n, st := range res.PerNodeStall {
			fmt.Fprintf(&b, "  node %-3d stall=%-8d (%.1f/epoch)\n", n, st, float64(st)/maxF(1, float64(res.Epochs)))
		}
		out := cellOut{text: b.String()}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", runErr)
			out.failed = true
		}
		if rec != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				return cellOut{}, err
			}
			if err := rec.WriteChrome(f); err != nil {
				f.Close()
				return cellOut{}, err
			}
			if err := f.Close(); err != nil {
				return cellOut{}, err
			}
			fmt.Fprintf(&b, "chrome trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
			out.text = b.String()
		}
		return out, nil
	})
	if err != nil {
		fatal(err)
	}
	exit := 0
	for _, c := range cells {
		fmt.Print(c.text)
		if c.failed {
			exit = 1
		}
	}
	os.Exit(exit)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
	os.Exit(1)
}
