// Command fuzzsim assembles and runs programs on the fuzzy-barrier
// multiprocessor simulator, one assembly file per processor.
//
// Usage:
//
//	fuzzsim [flags] prog0.s [prog1.s ...]
//
// Each file is assembled (see internal/isa.Assemble for the syntax) and
// loaded on the next processor. With a single file and -procs N, the same
// program runs on all N processors.
//
// Flags:
//
//	-procs N        replicate a single program onto N processors
//	-trace          print a per-cycle Gantt chart and the event log
//	-trace-out FILE write a Chrome trace-event JSON (chrome://tracing, Perfetto)
//	-phases         print per-phase cycle attribution (one row per barrier episode)
//	-mem WORDS      shared-memory size in words (default 65536)
//	-miss N         force every N-th access to miss (drift injection)
//	-modules N      number of memory modules (default = processors)
//	-max N          cycle limit (default 50,000,000)
//	-peek A,B       print memory words A..B after the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
)

func main() {
	procs := flag.Int("procs", 0, "replicate a single program onto N processors")
	doTrace := flag.Bool("trace", false, "print Gantt chart and events")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file")
	doPhases := flag.Bool("phases", false, "print per-phase cycle attribution")
	memWords := flag.Int("mem", 1<<16, "shared memory words")
	miss := flag.Int("miss", 0, "force every N-th access to miss")
	modules := flag.Int("modules", 0, "memory modules (default: one per processor)")
	maxCycles := flag.Int64("max", 0, "cycle limit")
	peek := flag.String("peek", "", "print memory range A,B after the run")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fuzzsim: no program files; see -h")
		os.Exit(2)
	}

	var progs []*isa.Program
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		p.Name = path
		if err := p.Validate(false); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzsim: warning: %v\n", err)
		}
		progs = append(progs, p)
	}
	n := len(progs)
	if *procs > 0 {
		if len(progs) != 1 {
			fatal(fmt.Errorf("-procs wants exactly one program, got %d", len(progs)))
		}
		n = *procs
		for len(progs) < n {
			progs = append(progs, progs[0])
		}
	}

	mods := *modules
	if mods == 0 {
		mods = n
	}
	var rec *trace.Recorder
	if *doTrace || *traceOut != "" {
		rec = trace.NewRecorder(n)
	}
	var ph *trace.Phases
	if *doPhases {
		ph = trace.NewPhases(n)
	}
	m := machine.New(machine.Config{
		Procs: n,
		Mem: mem.Config{
			Words: *memWords, Procs: n,
			HitLatency: 1, MissLatency: 8,
			CacheLines: 64, LineWords: 4,
			Modules: mods, ModuleBusy: 1,
			MissEveryN: *miss,
		},
		MaxCycles: *maxCycles,
		Recorder:  rec,
		Phases:    ph,
	})
	for p, prog := range progs {
		if err := m.Load(p, prog); err != nil {
			fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzsim: %v\n", err)
	}

	fmt.Printf("cycles: %d\n", res.Cycles)
	for p, ps := range res.Procs {
		fmt.Printf("P%-3d instrs=%-8d barrier-instrs=%-8d stalls=%-8d mem-wait=%-8d syncs=%-6d halted=%v\n",
			p, ps.Instructions, ps.BarrierInstrs, ps.StallCycles, ps.MemCycles, ps.Syncs, ps.Halted)
	}
	ms := res.Mem
	fmt.Printf("memory: accesses=%d hits=%d misses=%d queue-delay=%d invalidates=%d\n",
		ms.Accesses, ms.Hits, ms.Misses, ms.QueueDelay, ms.Invalidates)
	for _, hs := range m.Mem().HotSpots(3) {
		fmt.Printf("hot spot: addr=%d accesses=%d\n", hs.Addr, hs.Count)
	}
	if *doTrace {
		fmt.Println("\nGantt ('=' exec, 'b' barrier region, 'S' stall, '*' sync, 'm' mem, 'w' work):")
		fmt.Print(rec.Gantt())
		for _, ev := range rec.Events() {
			fmt.Printf("cycle %-6d P%-3d %s\n", ev.Cycle, ev.Proc, ev.What)
		}
	}
	if *doPhases {
		fmt.Println()
		fmt.Println(ph.Table("per-phase cycle attribution (phase = barrier episode)"))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *peek != "" {
		parts := strings.SplitN(*peek, ",", 2)
		lo, err1 := strconv.ParseInt(parts[0], 0, 64)
		hi := lo
		var err2 error
		if len(parts) == 2 {
			hi, err2 = strconv.ParseInt(parts[1], 0, 64)
		}
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -peek range %q", *peek))
		}
		for a := lo; a <= hi; a++ {
			v, err := m.Mem().Peek(a)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("mem[%d] = %d\n", a, v)
		}
	}
	if res.Deadlocked {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fuzzsim: %v\n", err)
	os.Exit(1)
}
