// Command barrierd serves sharded epoch coordination over loopback UDP:
// fuzzy-barrier groups as a service. Clients join groups, arrive at
// epochs, and receive releases once every registered signaler has
// arrived — the paper's split-phase barrier with the network transit as
// the overlapped region.
//
// Usage:
//
//	barrierd                        # 4 shards on ephemeral ports
//	barrierd -shards 8 -port 9700   # shard i listens on 9700+i
//	barrierd -duration 5s           # exit after 5s (smoke tests)
//
// Flags:
//
//	-shards N     coordinator shards (default 4)
//	-radix K      combine-tree fan-in (default 2)
//	-port P       base UDP port; shard i binds 127.0.0.1:P+i (0 = ephemeral)
//	-watchdog D   no-progress threshold per group (default 2s, 0 = off)
//	-duration D   exit after D (default 0 = run until signalled)
//
// Each shard prints "shard I listening on ADDR" at startup; clients
// register those addresses as routes for transport addresses 1..N.
// Stuck-group reports go to stderr as they happen.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fuzzybarrier/internal/barrierd"
)

func main() {
	shards := flag.Int("shards", 4, "coordinator shards")
	radix := flag.Int("radix", 2, "combine-tree fan-in")
	port := flag.Int("port", 0, "base UDP port (0 = ephemeral)")
	watchdog := flag.Duration("watchdog", 2*time.Second, "no-progress threshold (0 = off)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until signalled)")
	flag.Parse()

	cfg := barrierd.RealtimeConfig()
	cfg.Shards = *shards
	cfg.Radix = *radix
	cfg.Watchdog = int64(*watchdog)

	svc, nw, addrs, err := barrierd.StartUDP(cfg, *port, func(sr barrierd.StuckReport) {
		fmt.Fprintln(os.Stderr, sr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "barrierd:", err)
		os.Exit(1)
	}
	defer nw.Close()
	defer svc.Close()
	for i, a := range addrs {
		fmt.Printf("shard %d listening on %s\n", i, a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-sig:
		}
	} else {
		<-sig
	}
	var arrivals, releases, stucks int64
	for _, sh := range svc.Shards {
		a, r, s := sh.Snapshot()
		arrivals += a
		releases += r
		stucks += s
	}
	fmt.Printf("barrierd: shards=%d arrivals=%d releases=%d stuck-reports=%d\n",
		*shards, arrivals, releases, stucks)
}
