// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	experiments                  # run all experiments, print tables
//	experiments -id E3           # run one experiment
//	experiments -list            # list experiment IDs and titles
//	experiments -csv             # emit CSV instead of fixed-width tables
//	experiments -out DIR         # also write one .txt and .csv per experiment
//	experiments -trace-out FILE  # write a Chrome trace of the drift workload
//	experiments -parallel N      # sweep-cell workers (0 = GOMAXPROCS)
//	experiments -progress        # report sweep-cell progress on stderr
//	experiments -mutexprofile f  # pprof mutex-contention profile (also
//	                             # -cpuprofile, -memprofile, -blockprofile)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuzzybarrier/internal/exp"
	"fuzzybarrier/internal/prof"
)

func main() {
	ids := exp.IDs()
	id := flag.String("id", "", fmt.Sprintf("run a single experiment (%s..%s)", ids[0], ids[len(ids)-1]))
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV")
	outDir := flag.String("out", "", "also write per-experiment .txt and .csv files to this directory")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the E14 drift workload")
	parallel := flag.Int("parallel", 0, "workers for independent sweep cells; 0 = GOMAXPROCS, 1 = serial (tables are identical either way)")
	progress := flag.Bool("progress", false, "report sweep-cell completion counts on stderr while experiments run")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile to this file")
	flag.Parse()

	exp.SetParallelism(*parallel)
	if *progress {
		exp.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  sweep %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *traceOut != "" {
		if err := writeShowcaseTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			exit(1)
		}
		fmt.Printf("chrome trace: %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
		if *id == "" && !*list {
			exit(0)
		}
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		exit(0)
	}

	run := exp.All()
	if *id != "" {
		e, ok := exp.ByID(strings.ToUpper(*id))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (known: %s)\n", *id, strings.Join(exp.IDs(), " "))
			exit(2)
		}
		run = []exp.Experiment{e}
	}

	failed := 0
	for _, e := range run {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Println(tbl)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				exit(1)
			}
			base := fmt.Sprintf("%s/%s", *outDir, strings.ToLower(e.ID))
			if err := os.WriteFile(base+".txt", []byte(tbl.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				exit(1)
			}
			if err := os.WriteFile(base+".csv", []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				exit(1)
			}
		}
	}
	if failed > 0 {
		exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// writeShowcaseTrace runs the E14 drift workload with a recorder attached
// and writes its Chrome trace-event export to path.
func writeShowcaseTrace(path string) error {
	rec, err := exp.TracedShowcase()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
