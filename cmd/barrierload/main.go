// Command barrierload is the barrierd load generator: it multiplexes
// many simulated clients over a handful of connections, drives epochs
// at an offered rate, and reports epoch-completion latency percentiles
// versus load. It can self-host the service in the same process (the
// in-process channel transport scales past a million clients; loopback
// UDP past ten thousand) or drive an external barrierd over UDP.
//
// Usage:
//
//	barrierload                                      # 100k clients, in-process
//	barrierload -clients 1000000 -epochs 6           # the million-client run
//	barrierload -transport udp -clients 10000        # self-hosted loopback UDP
//	barrierload -transport udp -connect 127.0.0.1:9700,127.0.0.1:9701
//	barrierload -rates 50,200,800                    # offered-load sweep
//
// Flags:
//
//	-transport T   inproc (channel transport, default) or udp
//	-connect LIST  comma-separated shard addresses of an external
//	               barrierd (UDP only; default self-host)
//	-clients N     total virtual clients (default 100000)
//	-groups N      barrier groups; clients split evenly (default 4)
//	-conns N       client connections; each carries clients/conns
//	               virtual clients (default 16)
//	-shards N      shards when self-hosting (default 4)
//	-epochs N      epochs to drive per rate point (default 6)
//	-rates LIST    offered epoch rates per second, comma-separated;
//	               0 = closed loop, as fast as completions allow
//	               (default "0")
//	-json          emit the report as JSON to stdout
//	-merge FILE    also merge the report into FILE (BENCH_SMOKE.json)
//	               under the "barrierd_load" key
//
// The report's p50/p99 are over per-(group, epoch) completion samples:
// an epoch's sample is the time from its (scheduled, when pacing; else
// actual) start to the moment every connection has observed its
// release.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fuzzybarrier/internal/barrierd"
	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/transport"
)

type ratePoint struct {
	OfferedEpochsPerSec  float64 `json:"offered_eps"` // 0 = closed loop
	AchievedEpochsPerSec float64 `json:"achieved_eps"`
	P50Ms                float64 `json:"p50_ms"`
	P99Ms                float64 `json:"p99_ms"`
	Samples              int     `json:"samples"`
}

type report struct {
	Transport    string      `json:"transport"`
	Clients      int         `json:"clients"`
	Groups       int         `json:"groups"`
	Conns        int         `json:"conns"`
	Shards       int         `json:"shards"`
	Epochs       int         `json:"epochs"`
	MaxProcs     int         `json:"maxprocs"`
	JoinMs       float64     `json:"join_ms"` // time to register every client
	Points       []ratePoint `json:"points"`
	Retransmits  int64       `json:"retransmits"`
	StuckReports int64       `json:"stuck_reports"`
}

func main() {
	transportF := flag.String("transport", "inproc", "inproc or udp")
	connect := flag.String("connect", "", "external shard addresses (udp), comma-separated")
	clients := flag.Int("clients", 100_000, "total virtual clients")
	groups := flag.Int("groups", 4, "barrier groups")
	conns := flag.Int("conns", 16, "client connections")
	shards := flag.Int("shards", 4, "shards when self-hosting")
	epochs := flag.Int("epochs", 6, "epochs per rate point")
	rates := flag.String("rates", "0", "offered epoch rates per second (0 = closed loop)")
	jsonOut := flag.Bool("json", false, "emit JSON report")
	merge := flag.String("merge", "", "merge report into this BENCH_SMOKE-style JSON file")
	flag.Parse()

	rep, err := run(*transportF, *connect, *clients, *groups, *conns, *shards, *epochs, *rates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "barrierload:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		enc.Encode(rep)
	} else {
		fmt.Printf("barrierload: transport=%s clients=%d groups=%d conns=%d shards=%d maxprocs=%d join=%.1fms\n",
			rep.Transport, rep.Clients, rep.Groups, rep.Conns, rep.Shards, rep.MaxProcs, rep.JoinMs)
		for _, p := range rep.Points {
			fmt.Printf("  offered=%.0f/s achieved=%.1f/s p50=%.2fms p99=%.2fms (%d samples)\n",
				p.OfferedEpochsPerSec, p.AchievedEpochsPerSec, p.P50Ms, p.P99Ms, p.Samples)
		}
	}
	if *merge != "" {
		if err := mergeReport(*merge, rep); err != nil {
			fmt.Fprintln(os.Stderr, "barrierload: merge:", err)
			os.Exit(1)
		}
	}
}

func run(transportF, connect string, clients, groups, conns, shards, epochs int, rates string) (*report, error) {
	if groups < 1 || conns < 1 || clients < groups*conns {
		return nil, fmt.Errorf("need clients >= groups*conns (got %d < %d)", clients, groups*conns)
	}
	var stuck int64
	var stuckMu sync.Mutex
	onStuck := func(sr barrierd.StuckReport) {
		stuckMu.Lock()
		stuck++
		stuckMu.Unlock()
		fmt.Fprintln(os.Stderr, sr)
	}

	cfg := barrierd.RealtimeConfig()
	cfg.Shards = shards
	cfg.Watchdog = int64(10 * time.Second)

	var nw transport.Network
	var svc *barrierd.Service
	switch transportF {
	case "inproc":
		cn := transport.NewChanNet(1 << 15)
		defer cn.Close()
		nw = cn
		var err error
		if svc, err = barrierd.Start(nw, cfg, onStuck, nil); err != nil {
			return nil, err
		}
		defer svc.Close()
	case "udp":
		un := transport.NewUDPNet(1 << 15)
		defer un.Close()
		nw = un
		if connect != "" {
			addrs := strings.Split(connect, ",")
			cfg.Shards = len(addrs)
			shards = len(addrs)
			for i, a := range addrs {
				if err := un.Register(barrierd.ShardAddr(i), strings.TrimSpace(a)); err != nil {
					return nil, err
				}
			}
		} else {
			var err error
			if svc, err = barrierd.Start(nw, cfg, onStuck, nil); err != nil {
				return nil, err
			}
			defer svc.Close()
		}
	default:
		return nil, fmt.Errorf("unknown transport %q", transportF)
	}

	// Partition clients: each group gets clients/groups members, each
	// connection carries an equal slice of every group.
	perGroup := clients / groups
	ids := make([][][]uint64, conns) // [conn][group] -> client ids
	for c := range ids {
		ids[c] = make([][]uint64, groups)
	}
	next := uint64(0)
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			c := k % conns
			ids[c][g] = append(ids[c][g], next)
			next++
		}
	}

	cs := make([]*barrierd.Conn, conns)
	for i := range cs {
		c, err := barrierd.Dial(nw, transport.ConnAddrBase+transport.Addr(i), cfg)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		cs[i] = c
	}

	// Register everybody (batched joins), in parallel across conns.
	joinStart := time.Now()
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *barrierd.Conn) {
			defer wg.Done()
			for g := 0; g < groups; g++ {
				if len(ids[i][g]) > 0 {
					c.JoinBatch(uint32(g), core.SignalWait, ids[i][g], nil)
				}
			}
			for g := 0; g < groups; g++ {
				if len(ids[i][g]) > 0 {
					c.AwaitJoined(uint32(g))
				}
			}
		}(i, c)
	}
	wg.Wait()
	rep := &report{
		Transport: transportF, Clients: perGroup * groups, Groups: groups,
		Conns: conns, Shards: shards, Epochs: epochs,
		MaxProcs: runtime.GOMAXPROCS(0),
		JoinMs:   float64(time.Since(joinStart).Nanoseconds()) / 1e6,
	}

	epoch := int64(0)
	for _, rs := range strings.Split(rates, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(rs), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", rs, err)
		}
		pt, nextEpoch, err := drivePoint(cs, ids, groups, epochs, epoch, rate)
		if err != nil {
			return nil, err
		}
		epoch = nextEpoch
		rep.Points = append(rep.Points, pt)
	}

	for _, c := range cs {
		rep.Retransmits += c.TransportStatsSync().Retransmits
	}

	// Deregister every client so a clean run drains its groups instead
	// of leaving the server's watchdog reporting thousands of abandoned
	// signalers stuck at the next epoch. The short settle lets the
	// leave batches (and their retransmissions) reach the home shards
	// before the connections close.
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *barrierd.Conn) {
			defer wg.Done()
			for g := 0; g < groups; g++ {
				if len(ids[i][g]) > 0 {
					c.LeaveBatch(uint32(g), ids[i][g])
				}
			}
		}(i, c)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	if svc != nil {
		for _, sh := range svc.Shards {
			_, _, s := sh.Snapshot()
			_ = s
		}
	}
	stuckMu.Lock()
	rep.StuckReports = stuck
	stuckMu.Unlock()
	return rep, nil
}

// drivePoint runs epochs at one offered rate, starting at epoch e0, and
// returns the latency point plus the next unused epoch.
func drivePoint(cs []*barrierd.Conn, ids [][][]uint64, groups, epochs int, e0 int64, rate float64) (ratePoint, int64, error) {
	var samples []float64
	t0 := time.Now()
	for k := 0; k < epochs; k++ {
		e := e0 + int64(k)
		sched := t0
		if rate > 0 {
			sched = t0.Add(time.Duration(float64(k) / rate * float64(time.Second)))
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
		} else {
			sched = time.Now()
		}
		var wg sync.WaitGroup
		for i, c := range cs {
			wg.Add(1)
			go func(i int, c *barrierd.Conn) {
				defer wg.Done()
				for g := 0; g < groups; g++ {
					if len(ids[i][g]) > 0 {
						c.ArriveBatch(uint32(g), e, ids[i][g])
					}
				}
			}(i, c)
		}
		wg.Wait()
		// Completion per group: every connection has seen the release.
		for g := 0; g < groups; g++ {
			for _, c := range cs {
				if rel := c.WaitReleased(uint32(g), e); rel < e {
					return ratePoint{}, 0, fmt.Errorf("group %d epoch %d: bad release %d", g, e, rel)
				}
			}
			samples = append(samples, float64(time.Since(sched).Nanoseconds())/1e6)
		}
	}
	elapsed := time.Since(t0).Seconds()
	sort.Float64s(samples)
	pt := ratePoint{
		OfferedEpochsPerSec:  rate,
		AchievedEpochsPerSec: float64(epochs) / elapsed,
		P50Ms:                stats.Percentile(samples, 50),
		P99Ms:                stats.Percentile(samples, 99),
		Samples:              len(samples),
	}
	return pt, e0 + int64(epochs), nil
}

// mergeReport read-modify-writes the report into a BENCH_SMOKE-style
// JSON object under "barrierd_load" (a list: one entry per invocation
// configuration, replaced wholesale for matching transport+clients).
func mergeReport(path string, rep *report) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	}
	var entries []*report
	if old, ok := doc["barrierd_load"]; ok {
		json.Unmarshal(old, &entries)
	}
	kept := entries[:0]
	for _, e := range entries {
		if e.Transport != rep.Transport || e.Clients != rep.Clients {
			kept = append(kept, e)
		}
	}
	entries = append(kept, rep)
	buf, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	doc["barrierd_load"] = buf
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
