// Command fuzzcc compiles loop-language source (see internal/lang) into
// per-processor machine code with fuzzy-barrier regions, and optionally
// simulates it.
//
// Usage:
//
//	fuzzcc -procs 4 poisson.loop            # show TAC with regions
//	fuzzcc -procs 4 -mode span poisson.loop # Figure 4(a) construction
//	fuzzcc -procs 4 -show asm poisson.loop  # machine code
//	fuzzcc -procs 4 -show dag poisson.loop  # dependence DAG (Graphviz)
//	fuzzcc -procs 4 -run -miss 5 poisson.loop
//
// Flags:
//
//	-procs N     number of processors (required)
//	-mode M      region construction: span | reorder | point (default reorder)
//	-show W      what to print: tac | asm | dag | stats (default tac)
//	-proc P      which processor's task to print (default 0)
//	-run         simulate after compiling and print statistics
//	-miss N      (with -run) force every N-th memory access to miss
//	-param K=V   bind a named compile-time constant (repeatable)
//	-emit DIR    write each task as DIR/taskN.s (fuzzsim-compatible)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/dag"
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

type paramList map[string]int64

func (p paramList) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramList) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want K=V, got %q", s)
	}
	n, err := strconv.ParseInt(v, 0, 64)
	if err != nil {
		return err
	}
	p[k] = n
	return nil
}

func main() {
	procs := flag.Int("procs", 0, "number of processors")
	modeName := flag.String("mode", "reorder", "region construction: span|reorder|point")
	show := flag.String("show", "tac", "what to print: tac|asm|dag|stats")
	proc := flag.Int("proc", 0, "processor whose task to print")
	run := flag.Bool("run", false, "simulate after compiling")
	miss := flag.Int("miss", 0, "force every N-th access to miss (with -run)")
	emit := flag.String("emit", "", "write per-task assembly into this directory")
	params := paramList{}
	flag.Var(params, "param", "bind a compile-time constant K=V (repeatable)")
	flag.Parse()

	if *procs <= 0 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fuzzcc: usage: fuzzcc -procs N [flags] file.loop")
		os.Exit(2)
	}
	var mode compiler.RegionMode
	switch *modeName {
	case "span":
		mode = compiler.RegionSpan
	case "reorder":
		mode = compiler.RegionReorder
	case "point":
		mode = compiler.RegionPoint
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeName))
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	c, err := compiler.Compile(prog, compiler.Options{Procs: *procs, Mode: mode, Params: params})
	if err != nil {
		fatal(err)
	}
	if *proc < 0 || *proc >= len(c.Tasks) {
		fatal(fmt.Errorf("processor %d out of range [0,%d)", *proc, len(c.Tasks)))
	}
	task := c.Tasks[*proc]

	switch *show {
	case "tac":
		fmt.Printf("marked accesses: %s\n\n", strings.Join(c.Marked, " "))
		fmt.Print(task.TAC.String())
	case "asm":
		fmt.Print(task.Machine.Disassemble())
	case "dag":
		block := straightLinePrefix(task.TAC.Code)
		g, err := dag.Build(block)
		if err != nil {
			fatal(err)
		}
		fmt.Print(g.Dot(task.TAC.Name))
	case "stats":
		for _, tk := range c.Tasks {
			st := tk.Stats
			est := tk.Estimate()
			fmt.Printf("P%-3d TAC=%-4d non-barrier=%-4d barrier=%-4d marked=%-4d machine-instrs=%-4d est-cycles=%d (barrier share %.0f%%)\n",
				tk.Proc, st.Total, st.NonBarrier, st.Barrier, st.Marked, tk.Machine.Len(),
				est.Total(), 100*est.BarrierShare())
		}
	default:
		fatal(fmt.Errorf("unknown -show %q", *show))
	}

	if *emit != "" {
		if err := os.MkdirAll(*emit, 0o755); err != nil {
			fatal(err)
		}
		for _, tk := range c.Tasks {
			path := fmt.Sprintf("%s/task%d.s", *emit, tk.Proc)
			if err := os.WriteFile(path, []byte(tk.Machine.AsmText()), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "fuzzcc: wrote %d task files to %s (run them with fuzzsim)\n", len(c.Tasks), *emit)
	}

	if !*run {
		return
	}
	m := machine.New(machine.Config{
		Procs: *procs,
		Mem: mem.Config{
			Words: int(c.Layout.Words) + 64, Procs: *procs,
			HitLatency: 1, MissLatency: 24,
			CacheLines: 64, LineWords: 2,
			Modules: *procs, ModuleBusy: 1,
			MissEveryN: *miss,
		},
	})
	for _, tk := range c.Tasks {
		if err := m.Load(tk.Proc, tk.Machine); err != nil {
			fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsimulation: cycles=%d total-stalls=%d syncs=%d\n",
		res.Cycles, res.TotalStalls(), res.Syncs())
	for p, ps := range res.Procs {
		fmt.Printf("P%-3d instrs=%-7d stalls=%-7d mem-wait=%-7d syncs=%d\n",
			p, ps.Instructions, ps.StallCycles, ps.MemCycles, ps.Syncs)
	}
}

// straightLinePrefix extracts the longest control-free run of TAC for DAG
// display.
func straightLinePrefix(code []ir.Instr) ir.Block {
	var best, cur ir.Block
	for _, in := range code {
		if in.IsControl() {
			if len(cur) > len(best) {
				best = cur
			}
			cur = nil
			continue
		}
		cur = append(cur, in)
	}
	if len(cur) > len(best) {
		best = cur
	}
	return best
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fuzzcc: %v\n", err)
	os.Exit(1)
}
