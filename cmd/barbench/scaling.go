package main

import (
	"fmt"
	"runtime"
	"time"

	"fuzzybarrier/internal/core"
)

// scalingRecord is one cell of the -scaling sweep: a split-phase
// implementation at one participant count, with the ns/episode and
// hotspot-ops/phase curve points BENCH_SMOKE.json archives. Counts the
// host cannot run meaningfully are recorded as skipped with the reason,
// never as silent noise — maxprocs says what the numbers were (or would
// have been) measured under.
type scalingRecord struct {
	Impl       string   `json:"impl"`
	Procs      int      `json:"procs"`
	Episodes   int      `json:"episodes,omitempty"`
	MaxProcs   int      `json:"maxprocs"`
	NsPerEp    int64    `json:"ns_per_episode,omitempty"`
	HotspotOps *float64 `json:"hotspot_ops_per_phase,omitempty"`
	Skipped    bool     `json:"skipped,omitempty"`
	SkipReason string   `json:"skip_reason,omitempty"`
}

// scalingSizes is the participant axis of the sweep: the tail matches
// BenchmarkE2SplitScaling's 4096/8192/16384 extension, the head keeps a
// few points a modest host can measure without oversubscription skips.
var scalingSizes = []int{64, 256, 1024, 4096, 8192, 16384}

// scalingImpls compares central vs flat tree vs two-level hierarchy —
// the hier-vs-tree-vs-central curve the bench gate guards.
var scalingImpls = []string{"fuzzy", "fuzzy-tree", "hier"}

// measureScaling runs the split-scaling sweep. Worker counts beyond
// 64×GOMAXPROCS are skipped (same rule as BenchmarkE2SplitScaling): the
// wall clock would measure run-queue churn, not the barrier.
func measureScaling(episodes int) []scalingRecord {
	maxprocs := runtime.GOMAXPROCS(0)
	var out []scalingRecord
	for _, n := range scalingSizes {
		for _, name := range scalingImpls {
			rec := scalingRecord{Impl: name, Procs: n, MaxProcs: maxprocs}
			if n > 64*maxprocs {
				rec.Skipped = true
				rec.SkipReason = fmt.Sprintf("%d workers > 64x GOMAXPROCS=%d: oversubscription noise", n, maxprocs)
				out = append(out, rec)
				continue
			}
			// Larger groups need fewer episodes for a stable mean — and
			// cost proportionally more per episode.
			eps := episodes
			if n >= 4096 {
				eps = episodes / 4
			}
			if eps < 2 {
				eps = 2
			}
			d, b, err := measureSplit(name, n, eps, 0, 0)
			if err != nil {
				// Unknown impl can't happen for the fixed list; treat any
				// failure as a skip so one bad cell doesn't lose the sweep.
				rec.Skipped = true
				rec.SkipReason = err.Error()
				out = append(out, rec)
				continue
			}
			rec.Episodes = eps
			rec.NsPerEp = d.Nanoseconds() / int64(eps)
			if prof, ok := b.(core.ArriveProfiler); ok {
				if ops, phases := prof.HotspotOps(); phases > 0 {
					v := float64(ops) / float64(phases)
					rec.HotspotOps = &v
				}
			}
			out = append(out, rec)
		}
	}
	return out
}

// printScaling renders the sweep for the text (non -json) mode.
func printScaling(recs []scalingRecord) {
	for _, r := range recs {
		if r.Skipped {
			fmt.Printf("%-16s procs=%-6d SKIPPED: %s\n", r.Impl+"(scaling)", r.Procs, r.SkipReason)
			continue
		}
		hotspot := ""
		if r.HotspotOps != nil {
			hotspot = fmt.Sprintf(" hotspot-ops/phase=%.1f", *r.HotspotOps)
		}
		fmt.Printf("%-16s procs=%-6d episodes=%-6d per-episode=%-12v maxprocs=%d%s\n",
			r.Impl+"(scaling)", r.Procs, r.Episodes, time.Duration(r.NsPerEp), r.MaxProcs, hotspot)
	}
}
