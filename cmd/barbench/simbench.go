package main

import (
	"runtime"
	"time"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/exp"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/workload"
)

// simReport is the -sim measurement pair: the same workload before and
// after a perf mechanism, with the wall-clock ratio. Simulated results
// are bit-identical in both columns; only the time differs.
type simReport struct {
	BeforeNs int64   `json:"before_ns"`
	AfterNs  int64   `json:"after_ns"`
	Speedup  float64 `json:"speedup"`
}

// ffReport measures the machine fast-forward engine (before = naive
// per-cycle stepping, after = fast-forward) on a stall-heavy drift
// workload.
type ffReport struct {
	Procs    int `json:"procs"`
	Iters    int `json:"iters"`
	Reps     int `json:"reps"`
	MaxProcs int `json:"maxprocs"`
	simReport
}

// sweepReport measures the experiment sweep pool on the full E15 grid
// (before = 1 worker, after = 4). Wall-clock gain requires cores:
// MaxProcs records what the host offered, so a ~1.0 speedup on a
// single-core runner is interpretable.
type sweepReport struct {
	Cells         int `json:"cells"`
	WorkersBefore int `json:"workers_before"`
	WorkersAfter  int `json:"workers_after"`
	MaxProcs      int `json:"maxprocs"`
	simReport
}

// clusterReport measures the cluster event engines (before = the
// closure heap, after = the typed-event arena engine) on one lossy
// dissemination run; both replay the identical schedule, so the Results
// match and only the time differs.
type clusterReport struct {
	Protocol string `json:"protocol"`
	Nodes    int    `json:"nodes"`
	Epochs   int    `json:"epochs"`
	Reps     int    `json:"reps"`
	MaxProcs int    `json:"maxprocs"`
	simReport
}

// parallelReport measures the sharded lookahead-window engine (before =
// serial fast engine, after = Config.Shards lanes) on one lossy run.
// Both replay the identical schedule — byte-identical Results — so only
// the time differs. On a single-core host the measurement is skipped
// (the shard workers would only add coordination cost) and the reason
// recorded, mirroring the self-skip of TestParallelEngineSpeedupGate.
type parallelReport struct {
	Protocol string `json:"protocol"`
	Nodes    int    `json:"nodes"`
	Epochs   int    `json:"epochs"`
	Shards   int    `json:"shards"`
	Reps     int    `json:"reps"`
	MaxProcs int    `json:"maxprocs"`
	Skipped  string `json:"skipped,omitempty"`
	simReport
}

// batchReport times the SoA multi-seed batch executor on the ROADMAP
// headline target (4096 nodes x 64 seeds): many replays of one config
// in lockstep lane groups across the worker pool. There is no
// before/after pair — the per-seed rate and the recorded maxprocs carry
// the comparison across hosts.
type batchReport struct {
	Protocol  string `json:"protocol"`
	Nodes     int    `json:"nodes"`
	Epochs    int    `json:"epochs"`
	Seeds     int    `json:"seeds"`
	MaxProcs  int    `json:"maxprocs"`
	TotalNs   int64  `json:"total_ns"`
	NsPerSeed int64  `json:"ns_per_seed"`
}

// combinedOutput is the combined -json document (-sim and/or -scaling):
// the barbench array plus the simulator perf measurements and the
// split-scaling sweep archived in BENCH_SMOKE.json.
type combinedOutput struct {
	Barbench           []record        `json:"barbench"`
	MachineFastForward *ffReport       `json:"machine_fast_forward,omitempty"`
	SweepParallel      *sweepReport    `json:"sweep_parallel,omitempty"`
	ClusterEngine      *clusterReport  `json:"cluster_engine,omitempty"`
	ParallelEngine     *parallelReport `json:"parallel_engine,omitempty"`
	SeedBatch          *batchReport    `json:"seed_batch,omitempty"`
	SplitScaling       []scalingRecord `json:"split_scaling,omitempty"`
}

// minTime runs fn reps times and returns the fastest wall-clock run.
func minTime(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

func speedup(before, after time.Duration) float64 {
	if after <= 0 {
		return 0
	}
	return float64(before) / float64(after)
}

// measureFastForward times machine.Run with fast-forward off vs. on.
func measureFastForward(procs, iters, reps int) (ffReport, error) {
	progs, err := workload.StallHeavyPrograms(procs, iters, 42)
	if err != nil {
		return ffReport{}, err
	}
	run := func(disable bool) error {
		cfg := machine.Config{
			Procs: procs,
			Mem: mem.Config{
				Words: 256, Procs: procs,
				HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1,
			},
			DisableFastForward: disable,
		}
		m := machine.New(cfg)
		for p, prog := range progs {
			if err := m.Load(p, prog); err != nil {
				return err
			}
		}
		_, err := m.Run()
		return err
	}
	before, err := minTime(reps, func() error { return run(true) })
	if err != nil {
		return ffReport{}, err
	}
	after, err := minTime(reps, func() error { return run(false) })
	if err != nil {
		return ffReport{}, err
	}
	return ffReport{
		Procs: procs, Iters: iters, Reps: reps,
		MaxProcs: runtime.GOMAXPROCS(0),
		simReport: simReport{
			BeforeNs: before.Nanoseconds(), AfterNs: after.Nanoseconds(),
			Speedup: speedup(before, after),
		},
	}, nil
}

// measureClusterEngine times one lossy cluster run on the closure
// engine vs. the typed-event engine.
func measureClusterEngine(nodes, epochs, reps int) (clusterReport, error) {
	const proto = "dissemination"
	run := func(disable bool) error {
		sim, err := cluster.New(cluster.Config{
			Protocol: proto, Nodes: nodes, Epochs: epochs,
			Work: 120, WorkJitter: 40, Region: 30,
			Net:               cluster.NetConfig{Latency: 12, Jitter: 25, DropRate: 0.2, DupRate: 0.08},
			Seed:              1234,
			DisableFastEngine: disable,
		})
		if err != nil {
			return err
		}
		_, err = sim.Run()
		return err
	}
	before, err := minTime(reps, func() error { return run(true) })
	if err != nil {
		return clusterReport{}, err
	}
	after, err := minTime(reps, func() error { return run(false) })
	if err != nil {
		return clusterReport{}, err
	}
	return clusterReport{
		Protocol: proto, Nodes: nodes, Epochs: epochs, Reps: reps,
		MaxProcs: runtime.GOMAXPROCS(0),
		simReport: simReport{
			BeforeNs: before.Nanoseconds(), AfterNs: after.Nanoseconds(),
			Speedup: speedup(before, after),
		},
	}, nil
}

// measureParallelEngine times one lossy cluster run on the serial fast
// engine vs. the sharded lookahead-window engine.
func measureParallelEngine(nodes, epochs, reps int) (parallelReport, error) {
	const proto = "dissemination"
	rep := parallelReport{
		Protocol: proto, Nodes: nodes, Epochs: epochs, Reps: reps,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	rep.Shards = rep.MaxProcs
	if rep.Shards > 8 {
		rep.Shards = 8
	}
	if rep.MaxProcs == 1 {
		rep.Skipped = "GOMAXPROCS=1: the sharded engine cannot gain wall clock on one core"
		return rep, nil
	}
	run := func(shards int) error {
		sim, err := cluster.New(cluster.Config{
			Protocol: proto, Nodes: nodes, Epochs: epochs,
			Work: 120, WorkJitter: 40, Region: 30,
			Net:    cluster.NetConfig{Latency: 12, Jitter: 25, DropRate: 0.2, DupRate: 0.08},
			Seed:   1234,
			Shards: shards,
		})
		if err != nil {
			return err
		}
		_, err = sim.Run()
		return err
	}
	before, err := minTime(reps, func() error { return run(1) })
	if err != nil {
		return rep, err
	}
	after, err := minTime(reps, func() error { return run(rep.Shards) })
	if err != nil {
		return rep, err
	}
	rep.simReport = simReport{
		BeforeNs: before.Nanoseconds(), AfterNs: after.Nanoseconds(),
		Speedup: speedup(before, after),
	}
	return rep, nil
}

// measureSeedBatch times the multi-seed batch executor on one config
// replayed across `seeds` seeds with the default worker pool.
func measureSeedBatch(nodes, epochs, seeds int) (batchReport, error) {
	const proto = "central"
	cfg := cluster.Config{
		Protocol: proto, Nodes: nodes, Epochs: epochs,
		Work: 400, WorkJitter: 80, Region: 60,
		Net: cluster.NetConfig{Latency: 20, Jitter: 10, DropRate: 0.005, DupRate: 0.002},
	}
	list := make([]uint64, seeds)
	for i := range list {
		list[i] = uint64(i + 1)
	}
	start := time.Now()
	_, errs := cluster.RunBatch(cfg, list, 0, nil)
	total := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return batchReport{}, err
		}
	}
	return batchReport{
		Protocol: proto, Nodes: nodes, Epochs: epochs, Seeds: seeds,
		MaxProcs: runtime.GOMAXPROCS(0),
		TotalNs:  total.Nanoseconds(), NsPerSeed: total.Nanoseconds() / int64(seeds),
	}, nil
}

// measureSweep times the full E15 sweep at 1 worker vs. 4.
func measureSweep(reps int) (sweepReport, error) {
	defer exp.SetParallelism(0)
	run := func(workers int) func() error {
		return func() error {
			exp.SetParallelism(workers)
			_, err := exp.E15ClusterSync()
			return err
		}
	}
	before, err := minTime(reps, run(1))
	if err != nil {
		return sweepReport{}, err
	}
	after, err := minTime(reps, run(4))
	if err != nil {
		return sweepReport{}, err
	}
	return sweepReport{
		Cells: 54, WorkersBefore: 1, WorkersAfter: 4,
		MaxProcs: runtime.GOMAXPROCS(0),
		simReport: simReport{
			BeforeNs: before.Nanoseconds(), AfterNs: after.Nanoseconds(),
			Speedup: speedup(before, after),
		},
	}, nil
}
