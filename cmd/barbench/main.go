// Command barbench measures runtime (goroutine) barrier implementations:
// the conventional barriers of internal/baseline and the split-phase fuzzy
// barriers of internal/core (central-counter "fuzzy", combining-tree
// "fuzzy-tree", the value-carrying allreduce "fuzzy-reduce", and the
// two-level sharded "hier"), optionally with a busy "barrier region"
// between Arrive and Wait — the software analog of the Section 8 Encore
// measurement.
//
// Usage:
//
//	barbench                        # all barriers, default sizes
//	barbench -procs 4 -episodes 100000
//	barbench -impl fuzzy -region 50 # fuzzy with 50 units of region work
//	barbench -impl fuzzy-tree -procs 256
//	barbench -json > bench.json     # machine-readable measurements
//	barbench -json -sim             # plus simulator perf before/after pairs
//	barbench -json -scaling         # plus the central/tree/hier scaling sweep
//	barbench -cpuprofile cpu.pprof  # write a pprof CPU profile
//	barbench -mutexprofile m.pprof  # pprof mutex-contention profile
//	                                # (also -memprofile, -blockprofile)
//
// Wall-clock numbers on a time-shared goroutine scheduler are noisy; run
// several times and look at the ordering, not the absolute values (the
// deterministic version of this experiment is cmd/experiments -id E2).
// For split barriers the tool also prints hotspot ops/phase — the atomic
// traffic on the most-contended counter word, which is deterministic and
// shows the central-vs-tree crossover regardless of host core count —
// plus the barrier's counter/histogram snapshot (syncs, fast/spin/blocked
// waits, wait-spin histogram); disable the snapshot with -stats=false.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"fuzzybarrier/internal/baseline"
	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/prof"
)

// record is the machine-readable form of one measurement (-json).
type record struct {
	Impl       string      `json:"impl"`
	Split      bool        `json:"split"`
	Procs      int         `json:"procs"`
	Episodes   int         `json:"episodes"`
	MaxProcs   int         `json:"maxprocs"`
	Work       int         `json:"work,omitempty"`
	Region     int         `json:"region,omitempty"`
	TotalNs    int64       `json:"total_ns"`
	NsPerEp    int64       `json:"ns_per_episode"`
	HotspotOps *float64    `json:"hotspot_ops_per_phase,omitempty"`
	Stats      *splitStats `json:"stats,omitempty"`
}

// splitStats flattens core.BarrierStats for JSON consumers. The four
// wait counters partition Waits() by outcome: fast (already published),
// spin (resolved while spinning), lock (budget exhausted but resolved at
// the locked recheck, no sleep), block (really slept).
type splitStats struct {
	Syncs     int64   `json:"syncs"`
	Arrivals  int64   `json:"arrivals"`
	FastWaits int64   `json:"fast_waits"`
	SpinWaits int64   `json:"spin_waits"`
	LockWaits int64   `json:"lock_waits"`
	Blocks    int64   `json:"blocks"`
	SpinIters int64   `json:"spin_iters"`
	BlockRate float64 `json:"block_rate"`
}

// spin burns roughly n units of CPU without touching shared memory.
func spin(n int) uint64 {
	var x uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < n*8; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
	}
	return x
}

var sink uint64

func measurePoint(name string, procs, episodes int) (time.Duration, error) {
	b, err := baseline.New(name, procs)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				b.Await(id)
			}
		}(p)
	}
	wg.Wait()
	return time.Since(start), nil
}

func measureSplit(name string, procs, episodes, work, region int) (time.Duration, core.SplitBarrier, error) {
	b, err := baseline.NewSplit(name, procs)
	if err != nil {
		return 0, nil, err
	}
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var acc uint64
			for e := 0; e < episodes; e++ {
				acc += spin(work)
				ph := b.Arrive()
				acc += spin(region)
				b.Wait(ph)
			}
			sink += acc
		}(p)
	}
	wg.Wait()
	return time.Since(start), b, nil
}

func isSplit(name string) bool {
	for _, s := range baseline.SplitNames() {
		if s == name {
			return true
		}
	}
	return false
}

func main() {
	procs := flag.Int("procs", 4, "participants")
	episodes := flag.Int("episodes", 50_000, "barrier episodes")
	impl := flag.String("impl", "", "single implementation (default: all)")
	work := flag.Int("work", 20, "per-episode non-barrier work units (split barriers only)")
	region := flag.Int("region", 0, "per-episode barrier-region work units (split barriers only)")
	stats := flag.Bool("stats", true, "print the barrier's counter/histogram snapshot (split barriers only)")
	jsonOut := flag.Bool("json", false, "emit a JSON array of measurements instead of text")
	sim := flag.Bool("sim", false, "also measure the simulator fast-forward, sweep pool, and cluster event engine (before/after pairs); with -json the output becomes one combined object")
	scaling := flag.Bool("scaling", false, "also run the split-barrier scaling sweep (central vs tree vs hier, 64..16384 participants, oversubscribed counts skipped); with -json the output becomes one combined object")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "barbench: %v\n", err)
		os.Exit(1)
	}
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "barbench: %v\n", err)
		stopProf()
		os.Exit(1)
	}

	if *procs > runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr, "barbench: note: %d participants > GOMAXPROCS=%d; spin barriers will thrash\n",
			*procs, runtime.GOMAXPROCS(0))
	}

	names := baseline.Names()
	if *impl != "" {
		names = []string{*impl}
	}
	var records []record
	for _, name := range names {
		if isSplit(name) {
			d, b, err := measureSplit(name, *procs, *episodes, *work, *region)
			if err != nil {
				die(err)
			}
			var hotspotPerPhase *float64
			if prof, ok := b.(core.ArriveProfiler); ok {
				if ops, phases := prof.HotspotOps(); phases > 0 {
					v := float64(ops) / float64(phases)
					hotspotPerPhase = &v
				}
			}
			if *jsonOut {
				s := b.StatsSnapshot()
				records = append(records, record{
					Impl: name, Split: true, Procs: *procs, Episodes: *episodes,
					MaxProcs: runtime.GOMAXPROCS(0),
					Work:     *work, Region: *region,
					TotalNs: d.Nanoseconds(), NsPerEp: d.Nanoseconds() / int64(*episodes),
					HotspotOps: hotspotPerPhase,
					Stats: &splitStats{
						Syncs: s.Syncs, Arrivals: s.Arrivals,
						FastWaits: s.FastWaits, SpinWaits: s.SpinWaits,
						LockWaits: s.LockWaits, Blocks: s.Blocks, SpinIters: s.SpinIters,
						BlockRate: s.BlockRate(),
					},
				})
				continue
			}
			hotspot := ""
			if hotspotPerPhase != nil {
				hotspot = fmt.Sprintf(" hotspot-ops/phase=%.1f", *hotspotPerPhase)
			}
			fmt.Printf("%-16s procs=%-3d episodes=%-8d region=%-4d total=%-12v per-episode=%v%s\n",
				name+"(split)", *procs, *episodes, *region, d, d/time.Duration(*episodes), hotspot)
			if *stats {
				fmt.Printf("%-16s %s\n", "", b.StatsSnapshot())
			}
			continue
		}
		d, err := measurePoint(name, *procs, *episodes)
		if err != nil {
			die(err)
		}
		if *jsonOut {
			records = append(records, record{
				Impl: name, Procs: *procs, Episodes: *episodes,
				MaxProcs: runtime.GOMAXPROCS(0),
				TotalNs:  d.Nanoseconds(), NsPerEp: d.Nanoseconds() / int64(*episodes),
			})
			continue
		}
		fmt.Printf("%-16s procs=%-3d episodes=%-8d total=%-12v per-episode=%v\n",
			name, *procs, *episodes, d, d/time.Duration(*episodes))
	}
	var combined *combinedOutput
	if *sim {
		ff, err := measureFastForward(8, 200, 3)
		if err != nil {
			die(err)
		}
		sw, err := measureSweep(2)
		if err != nil {
			die(err)
		}
		ce, err := measureClusterEngine(256, 20, 3)
		if err != nil {
			die(err)
		}
		pe, err := measureParallelEngine(1024, 10, 2)
		if err != nil {
			die(err)
		}
		sb, err := measureSeedBatch(4096, 4, 64)
		if err != nil {
			die(err)
		}
		if *jsonOut {
			combined = &combinedOutput{
				Barbench: records, MachineFastForward: &ff, SweepParallel: &sw,
				ClusterEngine: &ce, ParallelEngine: &pe, SeedBatch: &sb,
			}
		} else {
			fmt.Printf("%-22s before=%-12v after=%-12v speedup=%.1fx\n",
				"machine-fast-forward", time.Duration(ff.BeforeNs), time.Duration(ff.AfterNs), ff.Speedup)
			fmt.Printf("%-22s before=%-12v after=%-12v speedup=%.1fx (maxprocs=%d)\n",
				"sweep-parallel(E15)", time.Duration(sw.BeforeNs), time.Duration(sw.AfterNs), sw.Speedup, sw.MaxProcs)
			fmt.Printf("%-22s before=%-12v after=%-12v speedup=%.1fx (%s n=%d)\n",
				"cluster-engine", time.Duration(ce.BeforeNs), time.Duration(ce.AfterNs), ce.Speedup, ce.Protocol, ce.Nodes)
			if pe.Skipped != "" {
				fmt.Printf("%-22s skipped: %s\n", "parallel-engine", pe.Skipped)
			} else {
				fmt.Printf("%-22s before=%-12v after=%-12v speedup=%.1fx (%s n=%d shards=%d maxprocs=%d)\n",
					"parallel-engine", time.Duration(pe.BeforeNs), time.Duration(pe.AfterNs), pe.Speedup,
					pe.Protocol, pe.Nodes, pe.Shards, pe.MaxProcs)
			}
			fmt.Printf("%-22s total=%-12v per-seed=%-10v (%s n=%d seeds=%d maxprocs=%d)\n",
				"seed-batch", time.Duration(sb.TotalNs), time.Duration(sb.NsPerSeed),
				sb.Protocol, sb.Nodes, sb.Seeds, sb.MaxProcs)
		}
	}
	if *scaling {
		// Episode count scaled down from the main -episodes knob: the
		// sweep's large groups pay thousands of arrivals per episode, and
		// the curve stabilizes in tens of episodes.
		eps := *episodes / 100
		if eps < 2 {
			eps = 2
		}
		recs := measureScaling(eps)
		if *jsonOut {
			if combined == nil {
				combined = &combinedOutput{Barbench: records}
			}
			combined.SplitScaling = recs
		} else {
			printScaling(recs)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// Without -sim or -scaling the output stays a plain array, the
		// stable machine-readable format; either flag wraps it in one
		// combined object.
		var err error
		if combined != nil {
			err = enc.Encode(combined)
		} else {
			err = enc.Encode(records)
		}
		if err != nil {
			die(err)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "barbench: %v\n", err)
		os.Exit(1)
	}
}
