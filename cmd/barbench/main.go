// Command barbench measures runtime (goroutine) barrier implementations:
// the conventional barriers of internal/baseline and the split-phase fuzzy
// barrier of internal/core, optionally with a busy "barrier region"
// between Arrive and Wait — the software analog of the Section 8 Encore
// measurement.
//
// Usage:
//
//	barbench                        # all barriers, default sizes
//	barbench -procs 4 -episodes 100000
//	barbench -impl fuzzy -region 50 # fuzzy with 50 units of region work
//
// Wall-clock numbers on a time-shared goroutine scheduler are noisy; run
// several times and look at the ordering, not the absolute values (the
// deterministic version of this experiment is cmd/experiments -id E2).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"fuzzybarrier/internal/baseline"
	"fuzzybarrier/internal/core"
)

// spin burns roughly n units of CPU without touching shared memory.
func spin(n int) uint64 {
	var x uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < n*8; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
	}
	return x
}

var sink uint64

func measurePoint(name string, procs, episodes int) (time.Duration, error) {
	b, err := baseline.New(name, procs)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				b.Await(id)
			}
		}(p)
	}
	wg.Wait()
	return time.Since(start), nil
}

func measureFuzzy(procs, episodes, work, region int) time.Duration {
	b := core.NewFuzzyBarrier(procs)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var acc uint64
			for e := 0; e < episodes; e++ {
				acc += spin(work)
				ph := b.Arrive()
				acc += spin(region)
				b.Wait(ph)
			}
			sink += acc
		}(p)
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	procs := flag.Int("procs", 4, "participants")
	episodes := flag.Int("episodes", 50_000, "barrier episodes")
	impl := flag.String("impl", "", "single implementation (default: all)")
	work := flag.Int("work", 20, "per-episode non-barrier work units (fuzzy only)")
	region := flag.Int("region", 0, "per-episode barrier-region work units (fuzzy only)")
	flag.Parse()

	if *procs > runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr, "barbench: note: %d participants > GOMAXPROCS=%d; spin barriers will thrash\n",
			*procs, runtime.GOMAXPROCS(0))
	}

	names := baseline.Names()
	if *impl != "" {
		names = []string{*impl}
	}
	for _, name := range names {
		if name == "fuzzy" {
			d := measureFuzzy(*procs, *episodes, *work, *region)
			fmt.Printf("%-16s procs=%-3d episodes=%-8d region=%-4d total=%-12v per-episode=%v\n",
				"fuzzy(split)", *procs, *episodes, *region, d, d/time.Duration(*episodes))
			continue
		}
		d, err := measurePoint(name, *procs, *episodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "barbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-16s procs=%-3d episodes=%-8d total=%-12v per-episode=%v\n",
			name, *procs, *episodes, d, d/time.Duration(*episodes))
	}
}
