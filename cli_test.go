// End-to-end smoke tests for the command-line tools: build each binary
// once and drive it against the shipped sample inputs, asserting the
// load-bearing output. Skipped under -short (they shell out to the Go
// toolchain).
package fuzzybarrier_test

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles all cmd/ binaries into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI builds")
	}
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "fuzzybarrier-cli")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"experiments", "fuzzsim", "fuzzcc", "barbench", "clustersim", "barrierd", "barrierload"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runTool(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIExperimentsList(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "experiments", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"E1", "E9", "E13"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in list:\n%s", want, out)
		}
	}
}

func TestCLIExperimentsSingleAndCSV(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "experiments", "-id", "e3", "-csv")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "mode,") || !strings.Contains(out, "reorder") {
		t.Errorf("unexpected CSV:\n%s", out)
	}
	out, err = runTool(t, dir, "experiments", "-id", "E99")
	if err == nil {
		t.Errorf("unknown id accepted:\n%s", out)
	}
}

func TestCLIFuzzsimDriftLoop(t *testing.T) {
	dir := buildTools(t)
	src, err := filepath.Abs(filepath.Join(programsDir, "driftloop.s"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, dir, "fuzzsim", "-procs", "2", "-trace", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"cycles:", "syncs=6", "synchronized"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFuzzsimDetectsFig2Deadlock(t *testing.T) {
	dir := buildTools(t)
	a, _ := filepath.Abs(filepath.Join(programsDir, "invalid-fig2.s"))
	b, _ := filepath.Abs(filepath.Join(programsDir, "fig2-partner.s"))
	out, err := runTool(t, dir, "fuzzsim", a, b)
	if err == nil {
		t.Fatalf("expected nonzero exit for deadlock:\n%s", out)
	}
	if !strings.Contains(out, "deadlock") || !strings.Contains(out, "warning") {
		t.Errorf("missing deadlock diagnostics:\n%s", out)
	}
}

func TestCLIFuzzccPipeline(t *testing.T) {
	dir := buildTools(t)
	src, _ := filepath.Abs(filepath.Join(programsDir, "poisson.loop"))
	emitDir := t.TempDir()

	out, err := runTool(t, dir, "fuzzcc", "-procs", "4", "-mode", "reorder",
		"-show", "stats", "-emit", emitDir, src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "est-cycles") {
		t.Errorf("missing stats output:\n%s", out)
	}
	// The emitted tasks must run on fuzzsim.
	tasks, err := filepath.Glob(filepath.Join(emitDir, "task*.s"))
	if err != nil || len(tasks) != 4 {
		t.Fatalf("emitted tasks: %v, %v", tasks, err)
	}
	out, err = runTool(t, dir, "fuzzsim", tasks...)
	if err != nil {
		t.Fatalf("fuzzsim on emitted tasks: %v\n%s", err, out)
	}
	if !strings.Contains(out, "halted=true") {
		t.Errorf("emitted tasks did not complete:\n%s", out)
	}
}

func TestCLIFuzzccRunAndDag(t *testing.T) {
	dir := buildTools(t)
	src, _ := filepath.Abs(filepath.Join(programsDir, "fig9.loop"))
	out, err := runTool(t, dir, "fuzzcc", "-procs", "4", "-run", "-miss", "5", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "simulation: cycles=") {
		t.Errorf("missing simulation summary:\n%s", out)
	}
	out, err = runTool(t, dir, "fuzzcc", "-procs", "4", "-show", "dag", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "digraph") {
		t.Errorf("missing dot output:\n%s", out)
	}
}

func TestCLIBarbench(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "barbench", "-procs", "2", "-episodes", "200", "-impl", "central")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "per-episode") {
		t.Errorf("missing timing output:\n%s", out)
	}
	// The split-phase tree barrier reports its hot-spot traffic.
	out, err = runTool(t, dir, "barbench", "-procs", "8", "-episodes", "200", "-impl", "fuzzy-tree", "-region", "5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "hotspot-ops/phase") {
		t.Errorf("missing hotspot metric:\n%s", out)
	}
}

func TestCLIBarbenchJSON(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "barbench", "-procs", "2", "-episodes", "200", "-impl", "fuzzy", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// stderr (GOMAXPROCS note) may precede the JSON; decode from '['.
	i := strings.Index(out, "[")
	if i < 0 {
		t.Fatalf("no JSON array in output:\n%s", out)
	}
	var recs []struct {
		Impl    string `json:"impl"`
		Split   bool   `json:"split"`
		NsPerEp int64  `json:"ns_per_episode"`
		Stats   *struct {
			Syncs int64 `json:"syncs"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(recs) != 1 || recs[0].Impl != "fuzzy" || !recs[0].Split {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if recs[0].NsPerEp <= 0 || recs[0].Stats == nil || recs[0].Stats.Syncs != 200 {
		t.Errorf("implausible measurement: %+v", recs[0])
	}
}

func TestCLIClustersim(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "clustersim",
		"-proto", "tree", "-nodes", "5", "-epochs", "10",
		"-jitter", "15", "-drop", "0.1", "-dup", "0.05", "-seed", "3", "-log")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"tree nodes=5 epochs=10", "net.send", "net.recv", "node 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Replay: the same seed reproduces the run byte for byte.
	out2, err := runTool(t, dir, "clustersim",
		"-proto", "tree", "-nodes", "5", "-epochs", "10",
		"-jitter", "15", "-drop", "0.1", "-dup", "0.05", "-seed", "3", "-log")
	if err != nil {
		t.Fatalf("%v\n%s", err, out2)
	}
	if out != out2 {
		t.Error("same seed produced different clustersim output")
	}
	// A fully lossy network must end in a nonzero-exit watchdog report.
	out, err = runTool(t, dir, "clustersim", "-proto", "central", "-nodes", "3", "-epochs", "2", "-drop", "1")
	if err == nil {
		t.Fatalf("expected nonzero exit for stuck run:\n%s", out)
	}
	if !strings.Contains(out, "stuck") || !strings.Contains(out, "node 0") {
		t.Errorf("missing stuck diagnosis:\n%s", out)
	}
}

func TestCLIBarbenchSimJSON(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "barbench",
		"-procs", "2", "-episodes", "200", "-impl", "central", "-json", "-sim")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// With -sim the JSON becomes one combined object.
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON object in output:\n%s", out)
	}
	var doc struct {
		Barbench []struct {
			Impl string `json:"impl"`
		} `json:"barbench"`
		FF struct {
			BeforeNs int64   `json:"before_ns"`
			AfterNs  int64   `json:"after_ns"`
			Speedup  float64 `json:"speedup"`
		} `json:"machine_fast_forward"`
		Sweep struct {
			Cells    int     `json:"cells"`
			MaxProcs int     `json:"maxprocs"`
			Speedup  float64 `json:"speedup"`
		} `json:"sweep_parallel"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(doc.Barbench) != 1 || doc.Barbench[0].Impl != "central" {
		t.Errorf("unexpected barbench records: %+v", doc.Barbench)
	}
	if doc.FF.BeforeNs <= 0 || doc.FF.AfterNs <= 0 || doc.FF.Speedup <= 0 {
		t.Errorf("implausible fast-forward measurement: %+v", doc.FF)
	}
	if doc.Sweep.Cells != 54 || doc.Sweep.MaxProcs < 1 || doc.Sweep.Speedup <= 0 {
		t.Errorf("implausible sweep measurement: %+v", doc.Sweep)
	}
}

func TestCLIClustersimSeedSweep(t *testing.T) {
	dir := buildTools(t)
	args := []string{"-proto", "tree", "-nodes", "4", "-epochs", "8", "-jitter", "10", "-seeds", "3"}
	serial, err := runTool(t, dir, "clustersim", append(args, "-parallel", "1")...)
	if err != nil {
		t.Fatalf("%v\n%s", err, serial)
	}
	for _, want := range []string{"seed 1:", "seed 2:", "seed 3:"} {
		if !strings.Contains(serial, want) {
			t.Errorf("missing %q:\n%s", want, serial)
		}
	}
	// The pooled sweep prints the identical transcript in seed order.
	pooled, err := runTool(t, dir, "clustersim", append(args, "-parallel", "4")...)
	if err != nil {
		t.Fatalf("%v\n%s", err, pooled)
	}
	if serial != pooled {
		t.Errorf("-parallel changed the transcript:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, pooled)
	}
}

func TestCLIBarrierdSmoke(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "barrierd", "-shards", "2", "-duration", "300ms")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"shard 0 listening on", "shard 1 listening on", "barrierd: shards=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCLIBarrierloadInproc(t *testing.T) {
	dir := buildTools(t)
	merged := filepath.Join(t.TempDir(), "smoke.json")
	out, err := runTool(t, dir, "barrierload",
		"-clients", "2000", "-groups", "2", "-conns", "4", "-epochs", "3",
		"-json", "-merge", merged)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON object in output:\n%s", out)
	}
	var rep struct {
		Transport string `json:"transport"`
		Clients   int    `json:"clients"`
		MaxProcs  int    `json:"maxprocs"`
		Points    []struct {
			P50Ms   float64 `json:"p50_ms"`
			P99Ms   float64 `json:"p99_ms"`
			Samples int     `json:"samples"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Transport != "inproc" || rep.Clients != 2000 || rep.MaxProcs < 1 {
		t.Errorf("unexpected report header: %+v", rep)
	}
	if len(rep.Points) != 1 || rep.Points[0].Samples != 6 ||
		rep.Points[0].P50Ms <= 0 || rep.Points[0].P99Ms < rep.Points[0].P50Ms {
		t.Errorf("implausible latency point: %+v", rep.Points)
	}
	// The merge file holds the same report under "barrierd_load".
	buf, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("merge file is not a JSON object: %v\n%s", err, buf)
	}
	if _, ok := doc["barrierd_load"]; !ok {
		t.Errorf("merge file missing barrierd_load:\n%s", buf)
	}
}

// TestCLIBarrierloadDrivesExternalBarrierd is the loopback end-to-end:
// a real barrierd process on ephemeral UDP ports, driven by a separate
// barrierload process that connects to the printed addresses.
func TestCLIBarrierloadDrivesExternalBarrierd(t *testing.T) {
	dir := buildTools(t)
	srv := exec.Command(filepath.Join(dir, "barrierd"), "-shards", "2", "-duration", "60s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	var addrs []string
	sc := bufio.NewScanner(stdout)
	for len(addrs) < 2 && sc.Scan() {
		fields := strings.Fields(sc.Text()) // "shard I listening on ADDR"
		if len(fields) == 5 && fields[0] == "shard" {
			addrs = append(addrs, fields[4])
		}
	}
	if len(addrs) < 2 {
		t.Fatalf("barrierd printed %d listening lines: %v", len(addrs), addrs)
	}
	out, err := runTool(t, dir, "barrierload",
		"-transport", "udp", "-connect", strings.Join(addrs, ","),
		"-clients", "500", "-groups", "2", "-conns", "4", "-epochs", "3")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "transport=udp") || !strings.Contains(out, "p99=") {
		t.Errorf("missing load report:\n%s", out)
	}
}

func TestCLIProfileFlags(t *testing.T) {
	dir := buildTools(t)
	tmp := t.TempDir()
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	out, err := runTool(t, dir, "experiments", "-id", "E1",
		"-cpuprofile", cpu, "-memprofile", mem)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("empty profile %s", p)
		}
	}
}
