package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestRecorderMarkAndGantt(t *testing.T) {
	r := NewRecorder(2)
	r.Mark(0, 0, KindExec)
	r.Mark(1, 0, KindBarrier)
	r.Mark(2, 0, KindStall)
	r.Mark(0, 1, KindWork)
	r.Mark(2, 1, KindSync)
	g := r.Gantt()
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // ruler + 2 lanes
		t.Fatalf("gantt lines = %d, want 3:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "=bS") {
		t.Errorf("lane 0 = %q, want to contain =bS", lines[1])
	}
	if !strings.Contains(lines[2], "w.*") {
		t.Errorf("lane 1 = %q, want to contain w.*", lines[2])
	}
}

func TestRecorderIgnoresOutOfRange(t *testing.T) {
	r := NewRecorder(1)
	r.Mark(0, 5, KindExec)  // lane out of range: ignored
	r.Mark(0, -1, KindExec) // negative: ignored
	// Only idle padding may appear, never the dropped marks.
	counts := r.LaneCounts(0)
	for k, n := range counts {
		if k != KindIdle {
			t.Errorf("unexpected mark %v x%d", k, n)
		}
	}
	if r.LaneCounts(9) != nil {
		t.Error("out-of-range lane should return nil")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder enabled")
	}
	r.Mark(0, 0, KindExec) // must not panic
	r.Eventf(0, 0, "x")
	if r.Events() != nil {
		t.Error("nil recorder has events")
	}
	if r.Gantt() != "" {
		t.Error("nil recorder renders gantt")
	}
}

// TestZeroValueRecorderRecordsEvents pins the documented zero-value
// contract: a zero Recorder records events (it has no lanes, so Mark is
// dropped silently). This regressed when event recording was gated on a
// flag only NewRecorder set.
func TestZeroValueRecorderRecordsEvents(t *testing.T) {
	var r Recorder
	if !r.Enabled() {
		t.Error("zero-value recorder should be enabled")
	}
	r.Eventf(3, 1, "checkpoint %d", 7)
	r.Mark(0, 0, KindExec) // no lanes: dropped, must not panic
	evs := r.Events()
	if len(evs) != 1 || evs[0].What != "checkpoint 7" || evs[0].Cycle != 3 || evs[0].Proc != 1 {
		t.Fatalf("events = %+v, want one 'checkpoint 7' at cycle 3 proc 1", evs)
	}
	if r.Gantt() != "" {
		t.Errorf("zero-value recorder rendered lanes: %q", r.Gantt())
	}
}

// TestLaneCountsPadding asserts the LaneCounts/Gantt agreement: every
// lane's counts sum to MaxCycle()+1, because lanes shorter than the
// chart are padded with idle glyphs in both views.
func TestLaneCountsPadding(t *testing.T) {
	r := NewRecorder(3)
	r.Mark(9, 0, KindExec)  // lane 0 spans the full chart
	r.Mark(2, 1, KindStall) // lane 1 is short: 7 idle cycles are implicit
	// lane 2 never marked at all: fully idle
	for p := 0; p < 3; p++ {
		counts := r.LaneCounts(p)
		var sum int64
		for _, n := range counts {
			sum += n
		}
		if want := r.MaxCycle() + 1; sum != want {
			t.Errorf("lane %d counts sum = %d, want %d (%v)", p, sum, want, counts)
		}
	}
	if c := r.LaneCounts(1); c[KindIdle] != 9 || c[KindStall] != 1 {
		t.Errorf("lane 1 counts = %v, want 9 idle + 1 stall", c)
	}
	if c := r.LaneCounts(2); c[KindIdle] != 10 {
		t.Errorf("lane 2 counts = %v, want 10 idle", c)
	}
}

func TestEventsSorted(t *testing.T) {
	r := NewRecorder(2)
	r.Eventf(5, 1, "later")
	r.Eventf(5, 0, "same cycle lower proc")
	r.Eventf(2, 1, "first")
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Cycle != 2 || evs[1].Proc != 0 || evs[2].Proc != 1 {
		t.Errorf("order wrong: %+v", evs)
	}
	if evs[2].What != "later" {
		t.Errorf("what = %q", evs[2].What)
	}
}

func TestLaneCounts(t *testing.T) {
	r := NewRecorder(1)
	for c := int64(0); c < 5; c++ {
		r.Mark(c, 0, KindStall)
	}
	r.Mark(5, 0, KindSync)
	counts := r.LaneCounts(0)
	if counts[KindStall] != 5 || counts[KindSync] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo table", "name", "value", "ratio")
	tbl.AddRow("alpha", 42, 1.5)
	tbl.AddRow("beta", 7, 0.25)
	tbl.AddNote("a note with %d substitutions", 1)
	out := tbl.String()
	for _, want := range []string{"Demo table", "name", "alpha", "42", "1.5", "0.25", "note: a note with 1 substitutions", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if len(tbl.Header()) != 3 {
		t.Errorf("header = %v", tbl.Header())
	}
}

func TestTableNumericAlignment(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(5)
	tbl.AddRow(12345)
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	// Right-aligned: the short number ends at the same column.
	last := lines[len(lines)-2]
	if !strings.HasSuffix(last, "5") || len(last) != len(lines[len(lines)-1]) {
		t.Errorf("alignment off:\n%s", tbl.String())
	}
}

func TestTableFloatTrimming(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(1.5)
	tbl.AddRow(2.0)
	tbl.AddRow(float32(0.25))
	out := tbl.String()
	if strings.Contains(out, "1.500") || strings.Contains(out, "2.000") {
		t.Errorf("floats not trimmed:\n%s", out)
	}
	if !strings.Contains(out, "2") || !strings.Contains(out, "0.25") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x,y", `quote"inside`)
	tbl.AddRow(1, 2)
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\n1,2\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestIsNumeric(t *testing.T) {
	yes := []string{"5", "-3", "3.25", "33.3x", "0"}
	no := []string{"", "abc", "1.2.3", "x33", "--1", "3-3"}
	for _, s := range yes {
		if !isNumeric(s) {
			t.Errorf("%q should be numeric", s)
		}
	}
	for _, s := range no {
		if isNumeric(s) {
			t.Errorf("%q should not be numeric", s)
		}
	}
}

func TestGanttRuler(t *testing.T) {
	r := NewRecorder(1)
	for c := int64(0); c < 25; c++ {
		r.Mark(c, 0, KindExec)
	}
	g := r.Gantt()
	ruler := strings.Split(g, "\n")[0]
	if !strings.Contains(ruler, "0") || !strings.Contains(ruler, "10") || !strings.Contains(ruler, "20") {
		t.Errorf("ruler = %q", ruler)
	}
}

// TestGanttRulerAlignment pins the ruler's column math: each label sits
// exactly at its multiple-of-10 column (after the 6-character lane
// margin), including three-digit labels past cycle 100.
func TestGanttRulerAlignment(t *testing.T) {
	const margin = 6 // "P0    " prefix width
	for _, width := range []int64{35, 101, 137, 250} {
		r := NewRecorder(1)
		r.Mark(width-1, 0, KindExec)
		lines := strings.Split(r.Gantt(), "\n")
		ruler, lane := lines[0], lines[1]
		if len(lane) != margin+int(width) {
			t.Fatalf("width %d: lane length = %d, want %d", width, len(lane), margin+int(width))
		}
		for c := int64(0); c < width; c += 10 {
			label := fmt.Sprintf("%d", c)
			at := margin + int(c)
			if at+len(label) > len(ruler) {
				// A label that would overflow the chart may be truncated;
				// the Gantt keeps whatever fits.
				continue
			}
			if got := ruler[at : at+len(label)]; got != label {
				t.Errorf("width %d: ruler at col %d = %q, want %q (ruler %q)", width, at, got, label, ruler)
			}
		}
	}
}

// TestEventsOrderingStability asserts Events() sorts by cycle then
// processor and, for equal (cycle, proc), preserves insertion order —
// the property the event log and the Chrome exporter rely on.
func TestEventsOrderingStability(t *testing.T) {
	r := NewRecorder(2)
	r.Eventf(4, 1, "first")
	r.Eventf(4, 1, "second")
	r.Eventf(4, 0, "lower proc")
	r.Eventf(1, 1, "earliest")
	r.Eventf(4, 1, "third")
	got := r.Events()
	want := []string{"earliest", "lower proc", "first", "second", "third"}
	if len(got) != len(want) {
		t.Fatalf("events = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].What != w {
			t.Errorf("events[%d] = %q, want %q (full: %+v)", i, got[i].What, w, got)
		}
	}
	// Sorting must not mutate the recorder's own event order.
	again := r.Events()
	for i := range got {
		if again[i] != got[i] {
			t.Errorf("Events() not reproducible at %d: %+v vs %+v", i, again[i], got[i])
		}
	}
}
