package trace

import (
	"fmt"
	"strings"
)

// Table builds fixed-width text tables in the style of the rows a paper's
// evaluation section reports. It right-aligns numeric-looking cells and
// left-aligns everything else.
type Table struct {
	Title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; each cell is rendered with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-form footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows exposes the raw cell strings, primarily for tests.
func (t *Table) Rows() [][]string { return t.rows }

// Header exposes the column headers.
func (t *Table) Header() []string { return t.header }

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		case r == 'x' && i == len(s)-1: // speedup suffix like "33.3x"
		default:
			return false
		}
	}
	return true
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if isNumeric(cell) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i < cols-1 {
					b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for i, w := range widths {
		total += w
		if i > 0 {
			total += 2
		}
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
