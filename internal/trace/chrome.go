package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event "JSON Array Format"
// — the schema chrome://tracing and Perfetto load. Timestamps are in
// microseconds; the exporter maps one simulated cycle to one microsecond
// so a cycle count reads directly off the timeline ruler.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the recorded lanes and events as Chrome trace-event
// JSON. Each processor becomes one thread (tid) of a single process:
// runs of consecutive same-kind cycles become complete ("ph":"X") slices
// named after the Kind, discrete events become instant ("ph":"i")
// events, and a metadata record names each thread P0, P1, ... Idle and
// halted cycles are omitted — gaps read as idle on the timeline.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var events []chromeEvent
	if r != nil {
		for p, lane := range r.lanes {
			events = append(events, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   0,
				TID:   p,
				Args:  map[string]any{"name": fmt.Sprintf("P%d", p)},
			})
			for start := 0; start < len(lane); {
				k := lane[start]
				end := start + 1
				for end < len(lane) && lane[end] == k {
					end++
				}
				if k != KindIdle && k != KindHalted {
					events = append(events, chromeEvent{
						Name:  k.String(),
						Cat:   "lane",
						Phase: "X",
						TS:    int64(start),
						Dur:   int64(end - start),
						PID:   0,
						TID:   p,
					})
				}
				start = end
			}
		}
		for _, ev := range r.Events() {
			events = append(events, chromeEvent{
				Name:  ev.What,
				Cat:   ev.Kind.String(),
				Phase: "i",
				TS:    ev.Cycle,
				PID:   0,
				TID:   ev.Proc,
				Scope: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if events == nil {
		events = []chromeEvent{} // encode as [], not null
	}
	return enc.Encode(events)
}
