// Package trace records execution events from the multiprocessor simulator
// and renders them for humans: per-cycle Gantt charts, event logs, and the
// fixed-width tables used by the experiment harness.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies what a processor was doing during one cycle.
type Kind byte

// Cycle activity kinds. The byte values double as the glyphs used by the
// Gantt renderer.
const (
	KindIdle       Kind = '.' // before start / after halt
	KindExec       Kind = '=' // executing a non-barrier instruction
	KindBarrier    Kind = 'b' // executing a barrier-region instruction
	KindStall      Kind = 'S' // stalled at the end of a barrier region
	KindMemory     Kind = 'm' // waiting on a memory access
	KindHotSpot    Kind = 'H' // waiting in a hot-spot queue
	KindSync       Kind = '*' // the cycle on which synchronization fired
	KindHalted     Kind = ' ' // halted
	KindWork       Kind = 'w' // synthetic WORK busy cycles
	KindSpin       Kind = 's' // spinning in a software barrier
	KindOverheadOp Kind = 'o' // executing software-barrier overhead instructions
	KindInterrupt  Kind = 'I' // preempted by an injected interrupt/trap
)

// Kinds lists every activity kind in a stable rendering order, used by
// the per-kind aggregations (LaneCounts, Phases) and the Chrome exporter.
var Kinds = []Kind{
	KindIdle, KindExec, KindBarrier, KindStall, KindMemory, KindHotSpot,
	KindSync, KindHalted, KindWork, KindSpin, KindOverheadOp, KindInterrupt,
}

// NumKinds is len(Kinds); per-kind count vectors are indexed by
// Kind.Index in [0, NumKinds).
const NumKinds = 12

// Index returns the kind's position in Kinds, or -1 for an unknown glyph.
func (k Kind) Index() int {
	for i, kk := range Kinds {
		if kk == k {
			return i
		}
	}
	return -1
}

// String returns a short human-readable name for the kind ("exec",
// "stall", ...). The Gantt chart renders the raw glyph bytes instead.
func (k Kind) String() string {
	switch k {
	case KindIdle:
		return "idle"
	case KindExec:
		return "exec"
	case KindBarrier:
		return "barrier"
	case KindStall:
		return "stall"
	case KindMemory:
		return "memory"
	case KindHotSpot:
		return "hot-spot"
	case KindSync:
		return "sync"
	case KindHalted:
		return "halted"
	case KindWork:
		return "work"
	case KindSpin:
		return "spin"
	case KindOverheadOp:
		return "overhead-op"
	case KindInterrupt:
		return "interrupt"
	}
	return fmt.Sprintf("Kind(%q)", byte(k))
}

// EventKind classifies discrete events (as opposed to the per-cycle lane
// Kinds). The zero value EvGeneric covers everything the shared-memory
// simulator records; the network kinds are emitted by internal/cluster's
// message-passing barriers so protocol traffic can be filtered on a
// Chrome/Perfetto timeline or grepped out of an event log.
type EventKind byte

// Discrete event kinds.
const (
	EvGeneric    EventKind = iota // default: sync fired, fault, halt, ...
	EvSend                        // a message was handed to the network
	EvRecv                        // a message was delivered
	EvRetransmit                  // a retransmission timer fired
	EvDrop                        // the network dropped a transmission
	EvTimeout                     // a watchdog/timeout diagnosis
)

// String returns the kind's Chrome trace category name.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "net.send"
	case EvRecv:
		return "net.recv"
	case EvRetransmit:
		return "net.retransmit"
	case EvDrop:
		return "net.drop"
	case EvTimeout:
		return "watchdog"
	}
	return "event"
}

// Event is a single recorded occurrence in a simulation.
type Event struct {
	Cycle int64
	Proc  int
	Kind  EventKind
	What  string
}

// Recorder accumulates per-cycle activity and discrete events.
// The zero value records events but no Gantt lanes; use NewRecorder to get
// lanes for a fixed processor count.
type Recorder struct {
	lanes    [][]Kind
	events   []Event
	maxCycle int64
}

// NewRecorder returns a Recorder with one Gantt lane per processor.
func NewRecorder(procs int) *Recorder {
	return &Recorder{lanes: make([][]Kind, procs)}
}

// Enabled reports whether recording is active. A nil Recorder is
// permitted everywhere and reports false, so the simulator can be run
// without tracing overhead; any non-nil Recorder (including the zero
// value, which has no lanes) records.
func (r *Recorder) Enabled() bool { return r != nil }

// Mark records what processor p did during the given cycle. Marks for
// processors without a lane (in particular, every Mark on a zero-value
// Recorder) are dropped; events are still recorded.
func (r *Recorder) Mark(cycle int64, p int, k Kind) {
	if r == nil || p < 0 || p >= len(r.lanes) {
		return
	}
	lane := r.lanes[p]
	for int64(len(lane)) <= cycle {
		lane = append(lane, KindIdle)
	}
	lane[cycle] = k
	r.lanes[p] = lane
	if cycle > r.maxCycle {
		r.maxCycle = cycle
	}
}

// MarkN records n consecutive cycles [cycle, cycle+n) of the same
// activity for processor p — the bulk form of Mark used by the
// simulator's fast-forward path. It is byte-for-byte equivalent to
// calling Mark n times with increasing cycle numbers.
func (r *Recorder) MarkN(cycle int64, n int64, p int, k Kind) {
	if r == nil || n <= 0 || p < 0 || p >= len(r.lanes) {
		return
	}
	last := cycle + n - 1
	lane := r.lanes[p]
	if need := last + 1; int64(len(lane)) < need {
		if int64(cap(lane)) < need {
			grown := make([]Kind, len(lane), need)
			copy(grown, lane)
			lane = grown
		}
		for int64(len(lane)) < need {
			lane = append(lane, KindIdle)
		}
	}
	for c := cycle; c <= last; c++ {
		lane[c] = k
	}
	r.lanes[p] = lane
	if last > r.maxCycle {
		r.maxCycle = last
	}
}

// Eventf records a discrete, printf-formatted event of kind EvGeneric.
func (r *Recorder) Eventf(cycle int64, p int, format string, args ...any) {
	r.EventKindf(cycle, p, EvGeneric, format, args...)
}

// EventKindf records a discrete event tagged with an EventKind; the
// Chrome exporter uses the kind as the event's category so network
// traffic (send/recv/retransmit/drop) can be filtered on the timeline.
func (r *Recorder) EventKindf(cycle int64, p int, kind EventKind, format string, args ...any) {
	if r == nil {
		return
	}
	r.EventKind(cycle, p, kind, fmt.Sprintf(format, args...))
}

// EventKind records a pre-rendered discrete event tagged with an
// EventKind. Callers that already hold the final text use this to avoid
// a second trip through fmt (see cluster.Sim.logf, which feeds the same
// string to its event log and the recorder).
func (r *Recorder) EventKind(cycle int64, p int, kind EventKind, what string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Cycle: cycle, Proc: p, Kind: kind, What: what})
}

// MaxCycle returns the highest cycle marked so far (0 when nothing has
// been marked); the rendered chart spans cycles [0, MaxCycle()].
func (r *Recorder) MaxCycle() int64 {
	if r == nil {
		return 0
	}
	return r.maxCycle
}

// Procs returns the number of Gantt lanes.
func (r *Recorder) Procs() int {
	if r == nil {
		return 0
	}
	return len(r.lanes)
}

// Events returns the recorded events ordered by cycle, then processor.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Gantt renders the recorded lanes as a text chart, one row per processor.
// Legend: '=' non-barrier execution, 'b' barrier region, 'S' stalled,
// '*' sync fired, 'm' memory wait, 'H' hot-spot queue, 'w' synthetic work,
// 's' software spin, 'o' software-barrier overhead, 'I' interrupted,
// '.' idle.
func (r *Recorder) Gantt() string {
	if r == nil || len(r.lanes) == 0 {
		return ""
	}
	var b strings.Builder
	width := r.maxCycle + 1
	// Cycle ruler every 10 cycles.
	b.WriteString("      ")
	for c := int64(0); c < width; c++ {
		if c%10 == 0 {
			s := fmt.Sprintf("%d", c)
			b.WriteString(s)
			c += int64(len(s)) - 1
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	for p, lane := range r.lanes {
		fmt.Fprintf(&b, "P%-4d ", p)
		for c := int64(0); c < width; c++ {
			if c < int64(len(lane)) {
				b.WriteByte(byte(lane[c]))
			} else {
				b.WriteByte(byte(KindIdle))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LaneCounts returns, for processor p, how many cycles were spent in each
// activity kind. It returns nil if p has no lane. Lanes shorter than the
// chart width are padded with KindIdle, exactly as Gantt renders them, so
// the counts of every lane sum to MaxCycle()+1.
func (r *Recorder) LaneCounts(p int) map[Kind]int64 {
	if r == nil || p < 0 || p >= len(r.lanes) {
		return nil
	}
	m := make(map[Kind]int64)
	lane := r.lanes[p]
	for _, k := range lane {
		m[k]++
	}
	if pad := r.maxCycle + 1 - int64(len(lane)); pad > 0 {
		m[KindIdle] += pad
	}
	return m
}
