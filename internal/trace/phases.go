package trace

// Phases attributes every processor-cycle to a (phase-index, Kind) pair,
// where a phase is one barrier episode: phase k covers the cycles a
// processor spends between its (k-1)-th and k-th synchronization. The
// simulator calls Account once for each cycle a processor consumes and
// Advance when the processor's synchronization fires, so experiments can
// report stall/exec/memory cycles per barrier episode instead of only
// end-of-run aggregates (the per-phase attribution used to compare
// barrier implementations at scale — e.g. the 1024-core RISC-V cluster
// study in PAPERS.md).
//
// Like Recorder, a nil *Phases is permitted everywhere and records
// nothing, so the hooks are allocation-free when attribution is disabled;
// gate larger blocks of instrumentation with Enabled.
type Phases struct {
	cur    []int     // current phase index per processor
	counts [][]int64 // per processor: flat [phase*NumKinds + kindIndex]
}

// NewPhases returns a Phases aggregator for the given processor count.
func NewPhases(procs int) *Phases {
	if procs < 0 {
		procs = 0
	}
	return &Phases{
		cur:    make([]int, procs),
		counts: make([][]int64, procs),
	}
}

// Enabled reports whether attribution is active; a nil *Phases reports
// false.
func (ph *Phases) Enabled() bool { return ph != nil }

// Account attributes one cycle of activity kind k to processor p's
// current phase. Unknown processors and unknown kinds are dropped.
func (ph *Phases) Account(p int, k Kind) {
	if ph == nil || p < 0 || p >= len(ph.cur) {
		return
	}
	ki := k.Index()
	if ki < 0 {
		return
	}
	idx := ph.cur[p]*NumKinds + ki
	c := ph.counts[p]
	for len(c) <= idx {
		c = append(c, 0)
	}
	c[idx]++
	ph.counts[p] = c
}

// AccountN attributes n cycles of activity kind k to processor p's
// current phase — the bulk form of Account used by the simulator's
// fast-forward path. Calling AccountN(p, k, n) is equivalent to calling
// Account(p, k) n times.
func (ph *Phases) AccountN(p int, k Kind, n int64) {
	if ph == nil || n <= 0 || p < 0 || p >= len(ph.cur) {
		return
	}
	ki := k.Index()
	if ki < 0 {
		return
	}
	idx := ph.cur[p]*NumKinds + ki
	c := ph.counts[p]
	for len(c) <= idx {
		c = append(c, 0)
	}
	c[idx] += n
	ph.counts[p] = c
}

// Advance moves processor p to its next phase: call it on the cycle the
// processor's synchronization fires. Cycles accounted afterwards belong
// to the next barrier episode.
func (ph *Phases) Advance(p int) {
	if ph == nil || p < 0 || p >= len(ph.cur) {
		return
	}
	ph.cur[p]++
}

// Procs returns the number of processors tracked.
func (ph *Phases) Procs() int {
	if ph == nil {
		return 0
	}
	return len(ph.cur)
}

// NumPhases returns the number of phases touched by any processor:
// 1 + max over processors of (phases with accounted cycles, current
// phase index). Zero when nothing was accounted.
func (ph *Phases) NumPhases() int {
	if ph == nil {
		return 0
	}
	n := 0
	for p := range ph.cur {
		hi := ph.cur[p]
		if c := len(ph.counts[p]); c > 0 {
			if last := (c - 1) / NumKinds; last > hi {
				hi = last
			}
		} else if ph.cur[p] == 0 {
			continue // processor never accounted nor advanced
		}
		if hi+1 > n {
			n = hi + 1
		}
	}
	return n
}

// ProcCounts returns processor p's cycle counts for one phase, indexed by
// Kind.Index (length NumKinds). It returns nil for unknown processors;
// phases beyond the last accounted one yield all zeros.
func (ph *Phases) ProcCounts(p, phase int) []int64 {
	if ph == nil || p < 0 || p >= len(ph.cur) || phase < 0 {
		return nil
	}
	out := make([]int64, NumKinds)
	base := phase * NumKinds
	c := ph.counts[p]
	for i := 0; i < NumKinds; i++ {
		if base+i < len(c) {
			out[i] = c[base+i]
		}
	}
	return out
}

// Counts returns the cycle counts for one phase summed over all
// processors, indexed by Kind.Index.
func (ph *Phases) Counts(phase int) []int64 {
	if ph == nil {
		return nil
	}
	out := make([]int64, NumKinds)
	for p := range ph.cur {
		for i, v := range ph.ProcCounts(p, phase) {
			out[i] += v
		}
	}
	return out
}

// PhaseCycles returns processor-cycles of kind k attributed to the given
// phase, summed over processors.
func (ph *Phases) PhaseCycles(phase int, k Kind) int64 {
	if ph == nil {
		return 0
	}
	ki := k.Index()
	if ki < 0 {
		return 0
	}
	var total int64
	base := phase * NumKinds
	for p := range ph.cur {
		c := ph.counts[p]
		if base+ki < len(c) {
			total += c[base+ki]
		}
	}
	return total
}

// KindTotal returns the total processor-cycles of kind k across all
// phases — by construction equal to the simulator's aggregate counters,
// which is the invariant the experiment harness asserts.
func (ph *Phases) KindTotal(k Kind) int64 {
	if ph == nil {
		return 0
	}
	ki := k.Index()
	if ki < 0 {
		return 0
	}
	var total int64
	for p := range ph.cur {
		c := ph.counts[p]
		for i := ki; i < len(c); i += NumKinds {
			total += c[i]
		}
	}
	return total
}

// Table renders the per-phase attribution as the fixed-width table used
// by the experiment harness: one row per phase with the kinds that
// actually occurred as columns.
func (ph *Phases) Table(title string) *Table {
	used := ph.usedKinds()
	header := []string{"phase"}
	for _, k := range used {
		header = append(header, k.String())
	}
	header = append(header, "total")
	t := NewTable(title, header...)
	for phase := 0; phase < ph.NumPhases(); phase++ {
		counts := ph.Counts(phase)
		row := []any{phase}
		var total int64
		for _, k := range used {
			v := counts[k.Index()]
			row = append(row, v)
			total += v
		}
		row = append(row, total)
		t.AddRow(row...)
	}
	return t
}

// usedKinds returns the kinds with at least one accounted cycle, in
// Kinds order.
func (ph *Phases) usedKinds() []Kind {
	var used []Kind
	for _, k := range Kinds {
		if ph.KindTotal(k) > 0 {
			used = append(used, k)
		}
	}
	return used
}
