package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// chromeSample builds the deterministic recorder behind the golden file:
// two processors, a stall-and-sync episode, and a couple of discrete
// events.
func chromeSample() *Recorder {
	r := NewRecorder(2)
	for c := int64(0); c < 4; c++ {
		r.Mark(c, 0, KindExec)
	}
	r.Mark(4, 0, KindBarrier)
	r.Mark(5, 0, KindBarrier)
	r.Mark(6, 0, KindStall)
	r.Mark(7, 0, KindSync)
	for c := int64(0); c < 6; c++ {
		r.Mark(c, 1, KindExec)
	}
	r.Mark(6, 1, KindBarrier)
	r.Mark(7, 1, KindSync)
	r.Eventf(7, 0, "synchronized (tag=1, epoch=1)")
	r.Eventf(7, 1, "synchronized (tag=1, epoch=1)")
	r.Mark(8, 0, KindHalted) // omitted from the export
	return r
}

// TestChromeGolden locks the exporter's exact output. Regenerate with
//
//	go test ./internal/trace -run TestChromeGolden -update
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := chromeSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeSchema validates the loadable event schema: the output is a
// JSON array whose entries carry name/ph/ts plus pid/tid — the fields
// chrome://tracing and Perfetto require.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := chromeSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	var slices, instants, metas int
	for i, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			slices++
			if d, ok := ev["dur"].(float64); !ok || d < 1 {
				t.Errorf("slice %d has bad dur: %v", i, ev)
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant %d missing thread scope: %v", i, ev)
			}
		case "M":
			metas++
		default:
			t.Errorf("event %d has unexpected ph %v", i, ev["ph"])
		}
	}
	if metas != 2 {
		t.Errorf("thread_name metadata events = %d, want 2", metas)
	}
	if instants != 2 {
		t.Errorf("instant events = %d, want 2", instants)
	}
	// P0: exec, barrier, stall, sync = 4 slices; halted omitted.
	// P1: exec, barrier, sync = 3 slices. Idle gaps never exported.
	if slices != 7 {
		t.Errorf("slices = %d, want 7", slices)
	}
	for _, ev := range events {
		if ev["name"] == "idle" || ev["name"] == "halted" {
			t.Errorf("idle/halted run exported: %v", ev)
		}
	}
}

// TestChromeEmptyAndNil ensures degenerate recorders still produce a
// loadable (empty) JSON array.
func TestChromeEmptyAndNil(t *testing.T) {
	for name, r := range map[string]*Recorder{"nil": nil, "zero": {}, "empty": NewRecorder(0)} {
		var buf bytes.Buffer
		if err := r.WriteChrome(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%s: not a JSON array: %v", name, err)
		}
		if len(events) != 0 {
			t.Errorf("%s: events = %v, want none", name, events)
		}
	}
}
