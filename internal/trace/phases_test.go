package trace

import (
	"strings"
	"testing"
)

func TestPhasesAttribution(t *testing.T) {
	ph := NewPhases(2)
	// Phase 0: P0 executes 3 cycles and stalls 2; P1 executes 5.
	for i := 0; i < 3; i++ {
		ph.Account(0, KindExec)
	}
	ph.Account(0, KindStall)
	ph.Account(0, KindStall)
	for i := 0; i < 5; i++ {
		ph.Account(1, KindExec)
	}
	ph.Advance(0)
	ph.Advance(1)
	// Phase 1: P0 one memory wait; P1 one barrier instruction.
	ph.Account(0, KindMemory)
	ph.Account(1, KindBarrier)

	if got := ph.NumPhases(); got != 2 {
		t.Fatalf("NumPhases = %d, want 2", got)
	}
	if got := ph.PhaseCycles(0, KindStall); got != 2 {
		t.Errorf("phase 0 stalls = %d, want 2", got)
	}
	if got := ph.PhaseCycles(0, KindExec); got != 8 {
		t.Errorf("phase 0 exec = %d, want 8", got)
	}
	if got := ph.PhaseCycles(1, KindMemory); got != 1 {
		t.Errorf("phase 1 memory = %d, want 1", got)
	}
	if got := ph.KindTotal(KindStall); got != 2 {
		t.Errorf("total stalls = %d, want 2", got)
	}
	if got := ph.KindTotal(KindExec); got != 8 {
		t.Errorf("total exec = %d, want 8", got)
	}
	pc := ph.ProcCounts(0, 0)
	if pc[KindExec.Index()] != 3 || pc[KindStall.Index()] != 2 {
		t.Errorf("P0 phase 0 counts = %v", pc)
	}
}

// TestPhasesPerPhaseSumsMatchTotals is the structural invariant the
// experiment harness relies on: summing any kind across phases equals
// the aggregate for that kind.
func TestPhasesPerPhaseSumsMatchTotals(t *testing.T) {
	ph := NewPhases(3)
	kinds := []Kind{KindExec, KindStall, KindMemory, KindWork, KindBarrier}
	// A deterministic scatter of activity across procs and phases.
	for step := 0; step < 200; step++ {
		p := step % 3
		ph.Account(p, kinds[(step*7)%len(kinds)])
		if step%11 == 0 {
			ph.Advance(p)
		}
	}
	for _, k := range kinds {
		var sum int64
		for phase := 0; phase < ph.NumPhases(); phase++ {
			sum += ph.PhaseCycles(phase, k)
		}
		if total := ph.KindTotal(k); sum != total {
			t.Errorf("kind %v: per-phase sum %d != total %d", k, sum, total)
		}
	}
	// The grand total must be every accounted cycle.
	var grand int64
	for _, k := range kinds {
		grand += ph.KindTotal(k)
	}
	if grand != 200 {
		t.Errorf("grand total = %d, want 200", grand)
	}
}

func TestPhasesNilSafe(t *testing.T) {
	var ph *Phases
	if ph.Enabled() {
		t.Error("nil Phases enabled")
	}
	ph.Account(0, KindExec) // must not panic
	ph.Advance(0)
	if ph.NumPhases() != 0 || ph.Procs() != 0 {
		t.Error("nil Phases reports phases")
	}
	if ph.Counts(0) != nil || ph.ProcCounts(0, 0) != nil {
		t.Error("nil Phases returns counts")
	}
	if ph.KindTotal(KindExec) != 0 || ph.PhaseCycles(0, KindExec) != 0 {
		t.Error("nil Phases returns cycles")
	}
}

func TestPhasesIgnoresBadInput(t *testing.T) {
	ph := NewPhases(1)
	ph.Account(5, KindExec)  // proc out of range
	ph.Account(-1, KindExec) // negative proc
	ph.Account(0, Kind('?')) // unknown kind
	ph.Advance(9)            // out of range
	if ph.NumPhases() != 0 {
		t.Errorf("NumPhases = %d, want 0 after only dropped input", ph.NumPhases())
	}
	if ph.ProcCounts(0, -1) != nil {
		t.Error("negative phase should return nil")
	}
}

func TestPhasesTable(t *testing.T) {
	ph := NewPhases(1)
	ph.Account(0, KindExec)
	ph.Account(0, KindStall)
	ph.Advance(0)
	ph.Account(0, KindExec)
	tbl := ph.Table("phase attribution")
	out := tbl.String()
	for _, want := range []string{"phase", "exec", "stall", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2:\n%s", tbl.NumRows(), out)
	}
	// Kinds with no cycles anywhere must not appear as columns.
	if strings.Contains(out, "interrupt") {
		t.Errorf("unused kind rendered:\n%s", out)
	}
}

// TestDisabledHooksAllocationFree enforces the Enabled() discipline: the
// per-cycle hooks must be allocation-free when observability is off
// (nil receivers), so simulations without tracing pay nothing.
func TestDisabledHooksAllocationFree(t *testing.T) {
	var rec *Recorder
	var ph *Phases
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Mark(1, 0, KindExec)
		rec.Eventf(1, 0, "dropped")
		ph.Account(0, KindExec)
		ph.Advance(0)
	})
	if allocs != 0 {
		t.Errorf("disabled hooks allocate %.1f/op, want 0", allocs)
	}
}
