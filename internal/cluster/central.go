package cluster

import "fmt"

// coordinatorID is the central protocol's coordinator node (also a
// participant, matching internal/baseline's central counter where the
// counter word lives on one node's memory).
const coordinatorID = 0

// centralProto: every node reliably sends ARRIVE(e) to the coordinator;
// once the coordinator has a distinct arrival from all n nodes it
// reliably sends RELEASE(e) to everyone else and releases itself. Cost
// is O(n) messages through one node per epoch — the message-passing
// analog of the hot spot of Section 1.
//
// The coordinator accumulates at most one epoch at a time: a node can
// send ARRIVE(e) only after releasing e-1, which requires the
// coordinator to have completed e-1 first. Arrival state is therefore a
// fixed per-node epoch-stamp array (seenEpoch[i] == e marks node i's
// distinct arrival for the active epoch e) instead of per-epoch maps —
// the stamps make duplicate ARRIVEs idempotent without allocating on
// the receive path.
type centralProto struct {
	env ProtoEnv
	// Coordinator only: seenEpoch[i] is the last epoch node i's arrival
	// was counted for (-1 initially), count the distinct arrivals for
	// epoch, and epoch the one accumulating epoch (-1 when none).
	seenEpoch []int64
	count     int
	epoch     int64
}

func newCentral(env ProtoEnv) *centralProto {
	c := &centralProto{env: env, epoch: -1}
	if env.NodeID() == coordinatorID {
		c.seenEpoch = make([]int64, env.Nodes())
		for i := range c.seenEpoch {
			c.seenEpoch[i] = -1
		}
	}
	return c
}

func (c *centralProto) Arrive(e int64) {
	if c.env.NodeID() == coordinatorID {
		c.record(coordinatorID, e)
		return
	}
	c.env.Send(Message{Kind: MsgArrive, To: coordinatorID, Epoch: e})
}

// record notes one distinct arrival at the coordinator and completes
// the epoch when the count is full.
func (c *centralProto) record(from int, e int64) {
	if e < c.env.ReleasedThrough() {
		return // stale retransmission of an already-completed epoch
	}
	if e != c.epoch {
		c.epoch = e
		c.count = 0
	}
	if c.seenEpoch[from] == e {
		return // duplicate
	}
	c.seenEpoch[from] = e
	c.count++
	if c.count < c.env.Nodes() {
		return
	}
	c.epoch = -1
	c.count = 0
	for i := 0; i < c.env.Nodes(); i++ {
		if i != coordinatorID {
			c.env.Send(Message{Kind: MsgRelease, To: i, Epoch: e})
		}
	}
	c.env.Release(e)
}

func (c *centralProto) Handle(m Message) {
	switch m.Kind {
	case MsgArrive:
		c.record(m.From, m.Epoch)
	case MsgRelease:
		c.env.Release(m.Epoch) // idempotent: stale duplicates are dropped there
	}
}

func (c *centralProto) PendingLine() string {
	if c.env.NodeID() != coordinatorID {
		return fmt.Sprintf("awaiting release for epoch %d", c.env.ReleasedThrough())
	}
	out := "coordinator"
	if c.epoch >= 0 {
		out += fmt.Sprintf(" e=%d:%d/%d", c.epoch, c.count, c.env.Nodes())
	}
	return out
}

func (c *centralProto) CloneFor(env ProtoEnv) Proto {
	cp := &centralProto{env: env, count: c.count, epoch: c.epoch}
	if c.seenEpoch != nil {
		cp.seenEpoch = append([]int64(nil), c.seenEpoch...)
	}
	return cp
}

func (c *centralProto) AppendState(buf []byte) []byte {
	buf = appendState64(buf, int64(c.count))
	buf = appendState64(buf, c.epoch)
	for _, e := range c.seenEpoch {
		buf = appendState64(buf, e)
	}
	return buf
}
