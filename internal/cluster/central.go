package cluster

import "fmt"

// coordinatorID is the central protocol's coordinator node (also a
// participant, matching internal/baseline's central counter where the
// counter word lives on one node's memory).
const coordinatorID = 0

// centralProto: every node reliably sends ARRIVE(e) to the coordinator;
// once the coordinator has a distinct arrival from all n nodes it
// reliably sends RELEASE(e) to everyone else and releases itself. Cost
// is O(n) messages through one node per epoch — the message-passing
// analog of the hot spot of Section 1.
type centralProto struct {
	n *node
	// arrived (coordinator only): epoch -> the distinct nodes that
	// arrived. The per-node set (not a count) is what makes duplicate
	// ARRIVEs — retransmissions whose ack was lost, or network dups —
	// idempotent.
	arrived map[int64]map[int]bool
}

func newCentral(n *node) *centralProto {
	c := &centralProto{n: n}
	if n.id == coordinatorID {
		c.arrived = make(map[int64]map[int]bool)
	}
	return c
}

func (c *centralProto) arrive(e int64) {
	if c.n.id == coordinatorID {
		c.record(coordinatorID, e)
		return
	}
	c.n.out.send(Message{Kind: MsgArrive, To: coordinatorID, Epoch: e})
}

// record notes one distinct arrival at the coordinator and completes
// the epoch when the set is full.
func (c *centralProto) record(from int, e int64) {
	if e < c.n.releasedThrough {
		return // stale retransmission of an already-completed epoch
	}
	set := c.arrived[e]
	if set == nil {
		set = make(map[int]bool)
		c.arrived[e] = set
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) < c.n.s.cfg.Nodes {
		return
	}
	delete(c.arrived, e)
	for i := 0; i < c.n.s.cfg.Nodes; i++ {
		if i != coordinatorID {
			c.n.out.send(Message{Kind: MsgRelease, To: i, Epoch: e})
		}
	}
	c.n.release(e)
}

func (c *centralProto) handle(m Message) {
	switch m.Kind {
	case MsgArrive:
		c.record(m.From, m.Epoch)
	case MsgRelease:
		c.n.release(m.Epoch) // idempotent: stale duplicates are dropped there
	}
}

func (c *centralProto) pendingLine() string {
	if c.n.id != coordinatorID {
		return fmt.Sprintf("awaiting release for epoch %d", c.n.releasedThrough)
	}
	out := "coordinator"
	for _, e := range sortedEpochs(c.arrived) {
		out += fmt.Sprintf(" e=%d:%d/%d", e, len(c.arrived[e]), c.n.s.cfg.Nodes)
	}
	return out
}
