package cluster

import "fmt"

// treeProto: arrivals combine up a radix-k tree (node i's parent is
// (i-1)/k, its children k*i+1 .. k*i+k). A node forwards ARRIVE(e) to
// its parent once its own arrival and one from each child subtree are
// in; the root then starts a RELEASE(e) wave back down. No node handles
// more than k+1 peers per epoch — the message-passing analog of
// core.TreeBarrier removing the central hot spot.
type treeProto struct {
	n        *node
	parent   int // -1 at the root
	children []int
	need     int // self + direct children
	// got: epoch -> the distinct subtree arrivals seen (own id plus
	// child ids). Kept until the epoch releases so duplicate ARRIVEs
	// stay idempotent even after the subtree forwarded upward.
	got map[int64]map[int]bool
}

func newTree(n *node) *treeProto {
	k := n.s.cfg.TreeArity
	t := &treeProto{n: n, parent: -1, got: make(map[int64]map[int]bool)}
	if n.id > 0 {
		t.parent = (n.id - 1) / k
	}
	for c := k*n.id + 1; c <= k*n.id+k && c < n.s.cfg.Nodes; c++ {
		t.children = append(t.children, c)
	}
	t.need = 1 + len(t.children)
	return t
}

func (t *treeProto) arrive(e int64) { t.record(t.n.id, e) }

// record notes one subtree arrival; when the set fills, the subtree is
// complete: the root starts the release wave, everyone else combines
// upward.
func (t *treeProto) record(from int, e int64) {
	if e < t.n.releasedThrough {
		return // stale retransmission of an already-completed epoch
	}
	set := t.got[e]
	if set == nil {
		set = make(map[int]bool)
		t.got[e] = set
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) < t.need {
		return
	}
	if t.parent < 0 {
		t.down(e)
		return
	}
	t.n.out.send(Message{Kind: MsgArrive, To: t.parent, Epoch: e})
}

// down releases epoch e locally and forwards the release wave to the
// children; the per-epoch arrival state is pruned here, after which the
// releasedThrough guard classifies any late duplicate as stale.
func (t *treeProto) down(e int64) {
	if e < t.n.releasedThrough {
		return // duplicate release
	}
	for _, c := range t.children {
		t.n.out.send(Message{Kind: MsgRelease, To: c, Epoch: e})
	}
	delete(t.got, e)
	t.n.release(e)
}

func (t *treeProto) handle(m Message) {
	switch m.Kind {
	case MsgArrive:
		t.record(m.From, m.Epoch)
	case MsgRelease:
		t.down(m.Epoch)
	}
}

func (t *treeProto) pendingLine() string {
	out := fmt.Sprintf("tree(parent=%d, children=%d)", t.parent, len(t.children))
	for _, e := range sortedEpochs(t.got) {
		out += fmt.Sprintf(" e=%d:%d/%d", e, len(t.got[e]), t.need)
	}
	return out
}
