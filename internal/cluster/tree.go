package cluster

import "fmt"

// treeProto: arrivals combine up a radix-k tree (node i's parent is
// (i-1)/k, its children k*i+1 .. k*i+k). A node forwards ARRIVE(e) to
// its parent once its own arrival and one from each child subtree are
// in; the root then starts a RELEASE(e) wave back down. No node handles
// more than k+1 peers per epoch — the message-passing analog of
// core.TreeBarrier removing the central hot spot.
//
// Like the central coordinator, a tree node accumulates at most one
// epoch at a time: a child can combine ARRIVE(e) upward only after
// releasing e-1, which requires this node to have received (and
// forwarded down) RELEASE(e-1) first. Arrival state is a fixed
// slot-stamp array (slot 0 = self, slot j = children[j-1];
// seenEpoch[slot] == e marks that subtree's arrival for e), kept valid
// after the upward forward so duplicate child ARRIVEs stay idempotent
// until the release wave passes — no allocation on the receive path.
type treeProto struct {
	env      ProtoEnv
	parent   int // -1 at the root
	children []int
	need     int // self + direct children
	// seenEpoch[slot] is the last epoch that slot's arrival was counted
	// for (-1 initially); count the distinct subtree arrivals for epoch
	// (-1 when none is accumulating).
	seenEpoch []int64
	count     int
	epoch     int64
}

func newTree(env ProtoEnv) *treeProto {
	k := env.TreeArity()
	id := env.NodeID()
	t := &treeProto{env: env, parent: -1, epoch: -1}
	if id > 0 {
		t.parent = (id - 1) / k
	}
	for c := k*id + 1; c <= k*id+k && c < env.Nodes(); c++ {
		t.children = append(t.children, c)
	}
	t.need = 1 + len(t.children)
	t.seenEpoch = make([]int64, t.need)
	for i := range t.seenEpoch {
		t.seenEpoch[i] = -1
	}
	return t
}

// slotOf maps an arrival's sender to its stamp slot (the fan-in is
// TreeArity+1 wide, so the scan is constant and tiny).
func (t *treeProto) slotOf(from int) int {
	if from == t.env.NodeID() {
		return 0
	}
	for j, c := range t.children {
		if c == from {
			return j + 1
		}
	}
	panic(fmt.Sprintf("cluster: tree node %d got arrival from non-child %d", t.env.NodeID(), from))
}

func (t *treeProto) Arrive(e int64) { t.record(t.env.NodeID(), e) }

// record notes one subtree arrival; when the count fills, the subtree
// is complete: the root starts the release wave, everyone else combines
// upward.
func (t *treeProto) record(from int, e int64) {
	if e < t.env.ReleasedThrough() {
		return // stale retransmission of an already-completed epoch
	}
	if e != t.epoch {
		t.epoch = e
		t.count = 0
	}
	slot := t.slotOf(from)
	if t.seenEpoch[slot] == e {
		return // duplicate
	}
	t.seenEpoch[slot] = e
	t.count++
	if t.count < t.need {
		return
	}
	if t.parent < 0 {
		t.down(e)
		return
	}
	t.env.Send(Message{Kind: MsgArrive, To: t.parent, Epoch: e})
}

// down releases epoch e locally and forwards the release wave to the
// children; afterwards the releasedThrough guard classifies any late
// duplicate arrival for e as stale.
func (t *treeProto) down(e int64) {
	if e < t.env.ReleasedThrough() {
		return // duplicate release
	}
	for _, c := range t.children {
		t.env.Send(Message{Kind: MsgRelease, To: c, Epoch: e})
	}
	if t.epoch == e {
		t.epoch = -1
		t.count = 0
	}
	t.env.Release(e)
}

func (t *treeProto) Handle(m Message) {
	switch m.Kind {
	case MsgArrive:
		t.record(m.From, m.Epoch)
	case MsgRelease:
		t.down(m.Epoch)
	}
}

func (t *treeProto) PendingLine() string {
	out := fmt.Sprintf("tree(parent=%d, children=%d)", t.parent, len(t.children))
	if t.epoch >= 0 {
		out += fmt.Sprintf(" e=%d:%d/%d", t.epoch, t.count, t.need)
	}
	return out
}

func (t *treeProto) CloneFor(env ProtoEnv) Proto {
	cp := &treeProto{
		env: env, parent: t.parent, children: t.children, need: t.need,
		count: t.count, epoch: t.epoch,
	}
	cp.seenEpoch = append([]int64(nil), t.seenEpoch...)
	return cp
}

func (t *treeProto) AppendState(buf []byte) []byte {
	buf = appendState64(buf, int64(t.count))
	buf = appendState64(buf, t.epoch)
	for _, e := range t.seenEpoch {
		buf = appendState64(buf, e)
	}
	return buf
}
