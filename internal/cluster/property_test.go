package cluster

import (
	"fmt"
	"testing"
)

// TestPropertyNoEarlyRelease is the barrier-correctness property under
// fault injection: for every protocol, under random drop / duplication
// / jitter / straggler schedules, no node's Wait(e) may become
// satisfiable before ALL n nodes have issued Arrive(e). The subtests
// run in parallel, so `go test -race` (the make verify gate) also
// checks that independent sims share no hidden mutable state.
func TestPropertyNoEarlyRelease(t *testing.T) {
	nets := []NetConfig{
		{Latency: 20, Jitter: 0, DropRate: 0, DupRate: 0},
		{Latency: 20, Jitter: 30, DropRate: 0.1, DupRate: 0.05},
		{Latency: 5, Jitter: 50, DropRate: 0.25, DupRate: 0.25},
	}
	for _, proto := range Protocols() {
		for ni, net := range nets {
			for seed := uint64(1); seed <= 4; seed++ {
				proto, net, seed := proto, net, seed
				name := fmt.Sprintf("%s/net%d/seed%d", proto, ni, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rng := newRNG(mix(seed, 99))
					cfg := Config{
						Protocol:      proto,
						Nodes:         2 + int(rng.intN(9)), // 2..10, covers non-powers of two
						Epochs:        25,
						Work:          100 + rng.intN(200),
						WorkJitter:    rng.intN(120),
						Region:        rng.intN(250),
						Straggler:     int(rng.intN(2)),
						StraggleExtra: rng.intN(90),
						Net:           net,
						Seed:          seed,
					}
					res := runSim(t, cfg)
					if res.Stuck != nil {
						t.Fatalf("stuck:\n%s", res.Stuck)
					}
					for e := 0; e < cfg.Epochs; e++ {
						var lastArrive, firstRelease int64
						firstRelease = 1 << 62
						for n := 0; n < cfg.Nodes; n++ {
							if a := res.ArriveAt[n][e]; a > lastArrive {
								lastArrive = a
							}
							if r := res.ReleaseAt[n][e]; r < firstRelease {
								firstRelease = r
							}
						}
						if firstRelease < lastArrive {
							t.Fatalf("epoch %d: a Wait completed at t=%d before the last Arrive at t=%d",
								e, firstRelease, lastArrive)
						}
					}
				})
			}
		}
	}
}
