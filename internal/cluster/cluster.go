// Package cluster implements the paper's split-phase fuzzy barrier as
// message-passing protocols over a simulated lossy network.
//
// The shared-memory embodiments (internal/core, internal/machine) absorb
// drift that comes from cache misses and workload imbalance; at cluster
// scale the dominant drift source is the network itself — link latency,
// jitter, message loss, duplication and reordering. This package runs the
// same Arrive/Wait episode structure over a deterministic discrete-event
// network simulator and asks the paper's question again: does a barrier
// region overlap (absorb) the synchronization latency a crisp barrier
// would pay in full?
//
// Three protocols are provided, mirroring the software-barrier spectrum
// of internal/baseline:
//
//   - "central":       every node reliably sends ARRIVE(e) to node 0;
//     node 0 reliably broadcasts RELEASE(e) once all n arrived.
//   - "tree":          arrivals combine up a radix-k tree; the root
//     starts a RELEASE wave back down it.
//   - "dissemination": ceil(log2 n) rounds of pairwise ROUND(e, r)
//     messages; no coordinator, every node completes locally.
//
// All protocol messages carry epoch tags and per-sender sequence
// numbers, are retransmitted on a Jacobson/Karels-estimated timeout with
// exponential backoff (stats.RTTEstimator), and are acknowledged; receive
// handling is idempotent, so drops, duplicates and reorderings never
// violate the barrier condition: no node completes Wait for epoch e
// before all n nodes have issued Arrive(e). A watchdog declares the run
// stuck when no epoch completes for a configurable span and reports
// which node/epoch is wedged, through the event log, the error, and
// trace.EvTimeout events.
//
// Everything is seeded and single-threaded, so a run is replayable: the
// same Config produces a byte-identical event log, message by message,
// even with faults enabled.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"fuzzybarrier/internal/trace"
)

// NetConfig describes the simulated links. Every transmission draws its
// own latency and fault outcomes from the run's seeded RNG, so jitter
// also yields reordering: two messages on the same link may overtake
// each other.
type NetConfig struct {
	Latency  int64   // base one-way latency, ticks
	Jitter   int64   // uniform extra latency in [0, Jitter]
	DropRate float64 // probability a transmission is lost
	DupRate  float64 // probability a transmission is delivered twice
}

// Config describes one cluster-barrier run. The zero value is not
// runnable; New applies defaults for everything left zero except
// Protocol, Nodes and Epochs, which callers must set.
type Config struct {
	Protocol string // one of Protocols()
	Nodes    int
	Epochs   int

	// Per-epoch node behaviour: Work ticks of non-barrier work (plus a
	// uniform draw in [0, WorkJitter] of drift), then Arrive, then Region
	// ticks of barrier-region work, then Wait.
	Work       int64
	WorkJitter int64
	Region     int64

	// Straggler injection: node Straggler performs StraggleExtra
	// additional work ticks every epoch. Active only when
	// StraggleExtra > 0, so the zero value injects nothing.
	Straggler     int
	StraggleExtra int64

	Net NetConfig

	TreeArity int // combining-tree fanout, default 2

	Seed uint64

	// Reliability and liveness knobs; New derives defaults from the
	// link latency and epoch span when zero.
	InitRTO       int64 // retransmission timeout before any RTT sample
	MaxRTO        int64 // exponential-backoff cap
	WatchdogAfter int64 // no epoch completion for this many ticks => stuck
	MaxTicks      int64 // hard stop for the whole run

	LogEvents bool            // record the textual event log (Sim.EventLog)
	Recorder  *trace.Recorder // optional lane/event recording (nil = off)

	// Shards > 1 runs the sharded parallel engine (par.go): nodes are
	// split into that many contiguous groups, each advanced by its own
	// worker under conservative lookahead windows. Results and event
	// logs are byte-identical to the serial engines at every shard
	// count; the knob trades wall-clock for cores. Clamped to
	// [1, Nodes]; <= 0 (the zero value) selects the serial engine.
	// Incompatible with DisableFastEngine and with Recorder (lane
	// recording is inherently sequential).
	Shards int

	// DisableFastEngine falls back to the original closure-based
	// container/heap event loop instead of the pooled typed-event
	// engine. The two engines replay the same schedule event for event
	// — byte-identical event logs and Results (see engine_test.go) —
	// so this knob exists for differential testing and for measuring
	// the engine speedup itself (BenchmarkClusterEngine, bench-gate).
	DisableFastEngine bool
}

// maxNodes bounds Config.Nodes so delivery priorities (sender id above
// a 40-bit per-sender transmission counter, below the local-event bit)
// can never collide; see sim.go's key layout.
const maxNodes = 1 << 22

// Protocols returns the implemented protocol names in presentation
// order. Experiment sweeps and the clustersim CLI derive their ranges
// from this registry.
func Protocols() []string { return []string{"central", "tree", "dissemination"} }

// withDefaults validates cfg and fills the derived knobs.
func (cfg Config) withDefaults() (Config, error) {
	known := false
	for _, p := range Protocols() {
		if p == cfg.Protocol {
			known = true
		}
	}
	if !known {
		return cfg, fmt.Errorf("cluster: unknown protocol %q (known: %s)",
			cfg.Protocol, strings.Join(Protocols(), " "))
	}
	if cfg.Nodes < 1 {
		return cfg, fmt.Errorf("cluster: need >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.Nodes > maxNodes {
		// Delivery priorities pack (sender+1, per-sender transmission
		// counter) into 64 bits below localPriBit; the cap keeps that
		// packing collision-free with enormous headroom.
		return cfg, fmt.Errorf("cluster: %d nodes exceeds the supported maximum %d", cfg.Nodes, maxNodes)
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.Nodes {
		cfg.Shards = cfg.Nodes
	}
	if cfg.Shards > 1 {
		if cfg.DisableFastEngine {
			return cfg, fmt.Errorf("cluster: Shards=%d requires the fast engine (DisableFastEngine set)", cfg.Shards)
		}
		if cfg.Recorder != nil {
			return cfg, fmt.Errorf("cluster: Shards=%d is incompatible with a trace Recorder (use LogEvents)", cfg.Shards)
		}
	}
	if cfg.Epochs < 0 {
		return cfg, fmt.Errorf("cluster: negative epoch count %d", cfg.Epochs)
	}
	for _, r := range []float64{cfg.Net.DropRate, cfg.Net.DupRate} {
		if r < 0 || r > 1 {
			return cfg, fmt.Errorf("cluster: fault rate %v outside [0,1]", r)
		}
	}
	for _, v := range []struct {
		name string
		v    int64
	}{
		{"Work", cfg.Work}, {"WorkJitter", cfg.WorkJitter},
		{"Region", cfg.Region}, {"StraggleExtra", cfg.StraggleExtra},
	} {
		if v.v < 0 {
			return cfg, fmt.Errorf("cluster: negative %s %d", v.name, v.v)
		}
	}
	if cfg.Net.Latency < 1 {
		cfg.Net.Latency = 1
	}
	if cfg.Net.Jitter < 0 {
		cfg.Net.Jitter = 0
	}
	if cfg.TreeArity < 2 {
		cfg.TreeArity = 2
	}
	// The derived liveness budgets multiply user-sized knobs, so very
	// large Epochs/Work/MaxRTO configs can overflow int64 and turn the
	// budget negative — which would declare every run stuck at t=0.
	// Derive with overflow checks and reject configs whose budget does
	// not fit, telling the caller to set the knob explicitly.
	ticks := tickBudget{}
	if cfg.InitRTO <= 0 {
		// A shade above the worst-case RTT so a clean network never
		// retransmits spuriously.
		cfg.InitRTO = ticks.add(ticks.mul(2, ticks.add(cfg.Net.Latency, cfg.Net.Jitter)), 2)
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = ticks.mul(16, cfg.InitRTO)
	}
	if cfg.MaxRTO < cfg.InitRTO {
		cfg.MaxRTO = cfg.InitRTO
	}
	span := ticks.add(ticks.add(cfg.Work, cfg.WorkJitter), ticks.add(cfg.Region, ticks.add(cfg.StraggleExtra, 1)))
	if cfg.WatchdogAfter <= 0 {
		cfg.WatchdogAfter = ticks.add(ticks.mul(16, span), ticks.mul(64, cfg.MaxRTO))
	}
	if cfg.MaxTicks <= 0 {
		epochs := int64(cfg.Epochs) + 2
		cfg.MaxTicks = ticks.add(
			ticks.mul(ticks.mul(epochs, 4), span),
			ticks.mul(ticks.mul(epochs, 64), cfg.MaxRTO))
	}
	if ticks.overflowed {
		return cfg, fmt.Errorf(
			"cluster: derived tick budget overflows int64 (Epochs=%d Work=%d WorkJitter=%d Region=%d StraggleExtra=%d MaxRTO=%d); set InitRTO/MaxRTO/WatchdogAfter/MaxTicks explicitly",
			cfg.Epochs, cfg.Work, cfg.WorkJitter, cfg.Region, cfg.StraggleExtra, cfg.MaxRTO)
	}
	return cfg, nil
}

// tickBudget is saturating non-negative int64 arithmetic for the
// derived liveness budgets: results clamp at MaxInt64 and the overflow
// is latched so withDefaults can surface one config error instead of a
// silently negative budget.
type tickBudget struct{ overflowed bool }

func (t *tickBudget) add(a, b int64) int64 {
	if a > math.MaxInt64-b {
		t.overflowed = true
		return math.MaxInt64
	}
	return a + b
}

func (t *tickBudget) mul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		t.overflowed = true
		return math.MaxInt64
	}
	return a * b
}

// StuckReport describes a watchdog firing: what tripped it, which node
// is furthest behind, in which epoch, and one state line per node.
type StuckReport struct {
	At    int64 // sim time of the diagnosis
	Node  int   // laggiest node
	Epoch int64 // the epoch it has not completed

	// Why names the liveness check that fired: "event queue drained"
	// (nothing left to simulate but nodes unfinished — a protocol that
	// stopped sending), "no epoch completed within watchdog window"
	// (events still flowing but no progress), or "tick budget
	// exhausted".
	Why string

	States []string // one line per node
}

// String renders the report for logs and errors.
func (r *StuckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stuck at t=%d (%s): node %d has not completed epoch %d\n", r.At, r.Why, r.Node, r.Epoch)
	for _, s := range r.States {
		b.WriteString("  ")
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

// Result summarizes one run.
type Result struct {
	Protocol string
	Nodes    int
	Epochs   int

	Ticks int64 // sim time when the last node finished its last epoch

	Stall        int64   // total ticks nodes spent blocked in Wait
	PerNodeStall []int64 // per-node share of Stall

	// Per-node, per-epoch timestamps, for invariant checks: ArriveAt is
	// when the node issued Arrive(e); ReleaseAt is when Wait(e) became
	// satisfiable at that node (its release arrived or was computed).
	ArriveAt  [][]int64
	ReleaseAt [][]int64

	Sends       int64 // protocol messages handed to the network (first transmissions)
	Acks        int64 // acknowledgements handed to the network
	Retransmits int64 // retransmission-timer firings that re-sent
	Drops       int64 // transmissions lost by the network
	Dups        int64 // transmissions duplicated by the network
	Delivered   int64 // deliveries (including duplicates)

	Stuck *StuckReport // non-nil when the watchdog fired
}

// episodes returns the number of completed (node, epoch) episodes.
func (r *Result) episodes() float64 {
	n := float64(r.Nodes) * float64(r.Epochs)
	if n == 0 {
		return 1
	}
	return n
}

// StallPerEpoch returns the mean blocked ticks per node per epoch.
func (r *Result) StallPerEpoch() float64 { return float64(r.Stall) / r.episodes() }

// MsgsPerEpoch returns protocol messages (excluding acks and
// retransmissions) per node per epoch.
func (r *Result) MsgsPerEpoch() float64 { return float64(r.Sends) / r.episodes() }

// RetransmitsPerEpoch returns retransmissions per node per epoch.
func (r *Result) RetransmitsPerEpoch() float64 { return float64(r.Retransmits) / r.episodes() }

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s nodes=%d epochs=%d ticks=%d stall/epoch=%.1f msgs/epoch=%.1f retrans/epoch=%.2f drops=%d dups=%d",
		r.Protocol, r.Nodes, r.Epochs, r.Ticks, r.StallPerEpoch(), r.MsgsPerEpoch(), r.RetransmitsPerEpoch(), r.Drops, r.Dups)
	if r.Stuck != nil {
		s += " STUCK"
	}
	return s
}
