package cluster

import "fuzzybarrier/internal/trace"

// network is the lossy link layer: every transmission independently
// draws latency (base + uniform jitter), a drop outcome and a
// duplication outcome from the run's seeded RNG. Because each copy
// draws its own latency, jitter alone produces reordering — a
// retransmission or a later message can overtake an earlier one — which
// is exactly why the protocols carry epoch tags and sequence numbers.
type network struct {
	s   *Sim
	rng *rng
}

// send hands one message to the network. Counting conventions: acks and
// retransmissions are counted by their callers (node.handle / outbox);
// drop/dup/delivery counters are bumped here per transmission.
func (nw *network) send(m Message) {
	cfg := &nw.s.cfg.Net
	copies := 1
	if cfg.DupRate > 0 && nw.rng.float() < cfg.DupRate {
		copies = 2
		nw.s.dups++
	}
	for c := 0; c < copies; c++ {
		if cfg.DropRate > 0 && nw.rng.float() < cfg.DropRate {
			nw.s.drops++
			if nw.s.wantLog {
				nw.s.logf(m.From, trace.EvDrop, "drop %v", m)
			}
			continue
		}
		delay := cfg.Latency
		if cfg.Jitter > 0 {
			delay += nw.rng.intN(cfg.Jitter + 1)
		}
		nw.s.schedDeliver(m, delay)
	}
}
