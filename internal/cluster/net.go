package cluster

import "fuzzybarrier/internal/trace"

// The lossy link layer: every transmission independently draws latency
// (base + uniform jitter), a drop outcome and a duplication outcome
// from the *sender's* seeded RNG stream. Because each copy draws its
// own latency, jitter alone produces reordering — a retransmission or a
// later message can overtake an earlier one — which is exactly why the
// protocols carry epoch tags and sequence numbers.
//
// Per-sender streams (rather than one global stream consumed in
// dispatch order) are what make the network shardable: every send
// happens while the sending node's own event is being dispatched, so
// the draws — like the per-transmission priority counter — touch only
// state owned by the sender's shard, and redistributing nodes across
// shards cannot change any draw.

// netSend hands one message to the network. Counting conventions: acks
// and retransmissions are counted by their callers (node.handle /
// outbox); drop/dup/delivery counters are bumped here per transmission.
func (x *exec) netSend(m Message) {
	cfg := &x.s.cfg.Net
	from := x.s.nodes[m.From]
	copies := 1
	if cfg.DupRate > 0 && from.netRNG.float() < cfg.DupRate {
		copies = 2
		x.dups++
	}
	for c := 0; c < copies; c++ {
		from.txSeq++
		pri := deliverPri(m.From, from.txSeq)
		if cfg.DropRate > 0 && from.netRNG.float() < cfg.DropRate {
			x.drops++
			if x.s.wantLog {
				x.logf(m.From, trace.EvDrop, "drop %v", m)
			}
			continue
		}
		delay := cfg.Latency
		if cfg.Jitter > 0 {
			delay += from.netRNG.intN(cfg.Jitter + 1)
		}
		x.schedDeliver(m, delay, x.now+delay, pri)
	}
}
