package cluster

import (
	"strings"
	"testing"
)

// These are white-box regression tests for the watchdog's three
// diagnoses. Real protocols cannot reach the failure paths (reliable
// delivery always leaves a retransmission timer pending, and the
// protocols provably release — see internal/check), so the tests inject
// broken protocol machines through newProtoHook.

// muteProto never sends and never releases: once every node's region
// events retire, the event queue drains with nodes unfinished.
type muteProto struct{}

func (muteProto) Arrive(int64)                  {}
func (muteProto) Handle(Message)                {}
func (muteProto) PendingLine() string           { return "mute (never sends)" }
func (m muteProto) CloneFor(ProtoEnv) Proto     { return m }
func (muteProto) AppendState(buf []byte) []byte { return buf }

// chatterProto sends forever and never releases: node 0 starts a
// message ping-pong with node 1 that keeps the event queue busy while
// no epoch ever completes — the no-progress window diagnosis.
type chatterProto struct{ env ProtoEnv }

func (c *chatterProto) Arrive(e int64) {
	if c.env.NodeID() == 0 && c.env.Nodes() > 1 {
		c.env.Send(Message{Kind: MsgRound, To: 1, Epoch: e})
	}
}

func (c *chatterProto) Handle(m Message) {
	if m.Kind != MsgRound {
		return
	}
	peer := 0
	if c.env.NodeID() == 0 {
		peer = 1
	}
	c.env.Send(Message{Kind: MsgRound, To: peer, Epoch: m.Epoch})
}

func (c *chatterProto) PendingLine() string { return "chatter (never releases)" }
func (c *chatterProto) CloneFor(env ProtoEnv) Proto {
	return &chatterProto{env: env}
}
func (c *chatterProto) AppendState(buf []byte) []byte { return buf }

// runWithProto runs a small simulation with the hooked protocol on the
// given engine and returns the run's result and error.
func runWithProto(t *testing.T, hook func(string, ProtoEnv) Proto, cfg Config) (*Result, error) {
	t.Helper()
	newProtoHook = hook
	defer func() { newProtoHook = nil }()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

func watchdogConfig(slowEngine bool) Config {
	return Config{
		Protocol: "central", Nodes: 3, Epochs: 2,
		Work: 5, Region: 2, Seed: 7,
		DisableFastEngine: slowEngine,
	}
}

// TestWatchdogDrainedQueue: a protocol that stops sending must be
// diagnosed — not silently terminate — on both engines, with the
// drained-queue cause in the report.
func TestWatchdogDrainedQueue(t *testing.T) {
	for _, slow := range []bool{false, true} {
		res, err := runWithProto(t, func(string, ProtoEnv) Proto { return muteProto{} }, watchdogConfig(slow))
		if err == nil {
			t.Fatalf("slowEngine=%v: mute protocol completed without a watchdog error", slow)
		}
		if res == nil || res.Stuck == nil {
			t.Fatalf("slowEngine=%v: no StuckReport on the result", slow)
		}
		rep := res.Stuck
		if rep.Why != "event queue drained" {
			t.Errorf("slowEngine=%v: Why = %q, want %q", slow, rep.Why, "event queue drained")
		}
		if rep.Node < 0 || rep.Node >= 3 {
			t.Errorf("slowEngine=%v: laggiest node = %d, want a real node", slow, rep.Node)
		}
		if len(rep.States) != 3 {
			t.Errorf("slowEngine=%v: %d state lines, want 3", slow, len(rep.States))
		}
		if !strings.Contains(rep.String(), "event queue drained") {
			t.Errorf("slowEngine=%v: rendered report omits the cause:\n%s", slow, rep)
		}
		if !strings.Contains(err.Error(), "event queue drained") {
			t.Errorf("slowEngine=%v: error omits the cause: %v", slow, err)
		}
	}
}

// TestWatchdogNoProgress: a protocol that keeps the network busy but
// never completes an epoch trips the no-progress window on both
// engines.
func TestWatchdogNoProgress(t *testing.T) {
	for _, slow := range []bool{false, true} {
		cfg := watchdogConfig(slow)
		cfg.WatchdogAfter = 500 // keep the test fast
		res, err := runWithProto(t, func(_ string, env ProtoEnv) Proto { return &chatterProto{env: env} }, cfg)
		if err == nil {
			t.Fatalf("slowEngine=%v: chatter protocol completed without a watchdog error", slow)
		}
		if res.Stuck == nil || res.Stuck.Why != "no epoch completed within watchdog window" {
			t.Fatalf("slowEngine=%v: Stuck = %+v, want the no-progress diagnosis", slow, res.Stuck)
		}
	}
}

// TestWatchdogTickBudget: the hard MaxTicks stop carries its own cause.
func TestWatchdogTickBudget(t *testing.T) {
	cfg := watchdogConfig(false)
	cfg.WatchdogAfter = 1 << 40 // out of the way
	cfg.MaxTicks = 300
	res, err := runWithProto(t, func(_ string, env ProtoEnv) Proto { return &chatterProto{env: env} }, cfg)
	if err == nil {
		t.Fatal("chatter protocol completed without a watchdog error")
	}
	if res.Stuck == nil || res.Stuck.Why != "tick budget exhausted" {
		t.Fatalf("Stuck = %+v, want the tick-budget diagnosis", res.Stuck)
	}
}
