package cluster

import (
	"container/heap"
	"fmt"

	"fuzzybarrier/internal/trace"
)

// event is one scheduled callback of the fallback (closure) engine. seq
// breaks time ties in insertion order, which — together with the
// single-threaded loop and seeded RNG — makes every run fully
// deterministic. The default engine replaces this with pooled typed
// events (see engine.go) but keeps the same (at, seq) discipline, so
// both replay the identical schedule.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is one deterministic discrete-event cluster-barrier run.
type Sim struct {
	cfg   Config
	now   int64
	heap  eventHeap   // closure engine (cfg.DisableFastEngine)
	fast  *fastEngine // typed-event engine (default); nil when disabled
	eseq  uint64
	net   *network
	nodes []*node
	log   []string

	// wantLog gates every hot-path logf call site so the variadic
	// argument slice is never even built when neither sink is active —
	// the zero-alloc steady state depends on this.
	wantLog bool

	lastProgress int64 // sim time of the most recent epoch completion
	doneNodes    int
	stuck        *StuckReport

	// Network/reliability counters (see Result).
	sends, acks, retransmits, drops, dups, delivered int64

	ran bool
}

// New validates cfg, applies defaults, and builds a ready-to-Run Sim.
func New(cfg Config) (*Sim, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	s.wantLog = cfg.Recorder != nil || cfg.LogEvents
	if !cfg.DisableFastEngine {
		s.fast = newFastEngine(s)
	}
	s.net = &network{s: s, rng: newRNG(mix(cfg.Seed, 0xC0FFEE))}
	s.nodes = make([]*node, cfg.Nodes)
	for i := range s.nodes {
		s.nodes[i] = newNode(s, i)
	}
	return s, nil
}

// schedule runs fn after delay ticks (clamped to now for non-positive
// delays) on the closure engine.
func (s *Sim) schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.eseq++
	heap.Push(&s.heap, &event{at: s.now + delay, seq: s.eseq, fn: fn})
}

// schedWork schedules the end of node n's non-barrier work span for
// epoch e. Both engines consume exactly one sequence number here, so
// their (at, seq) orderings stay aligned.
func (s *Sim) schedWork(n *node, e, delay int64) {
	if s.fast != nil {
		s.fast.schedule(delay, evWork, int32(n.id), e, s.now, Message{})
		return
	}
	start := s.now
	s.schedule(delay, func() {
		n.markRange(start, s.now, trace.KindWork)
		n.workDone(e)
	})
}

// schedRegion schedules the end of node n's barrier-region span for
// epoch e.
func (s *Sim) schedRegion(n *node, e, delay int64) {
	if s.fast != nil {
		s.fast.schedule(delay, evRegion, int32(n.id), e, s.now, Message{})
		return
	}
	start := s.now
	s.schedule(delay, func() {
		n.markRange(start, s.now, trace.KindBarrier)
		n.regionDone(e)
	})
}

// schedDeliver schedules one network delivery of m.
func (s *Sim) schedDeliver(m Message, delay int64) {
	if s.fast != nil {
		s.fast.schedule(delay, evDeliver, 0, 0, 0, m)
		return
	}
	s.schedule(delay, func() { s.deliver(m) })
}

// deliver hands one transmission to its destination node.
func (s *Sim) deliver(m Message) {
	s.delivered++
	if s.wantLog {
		s.logf(m.To, trace.EvRecv, "recv %v", m)
	}
	s.nodes[m.To].handle(m)
}

// logf records one event-log line and mirrors it to the trace recorder.
// The log is append-only and produced by a single-threaded loop, so for
// a fixed Config it is byte-identical across runs — the replayability
// guarantee the fault-injection tests pin down. Each sink's output is
// built exactly once: recorder-only runs format straight into the
// recorder, and when both sinks are active the rendered message is
// shared instead of being re-formatted per sink.
func (s *Sim) logf(nodeID int, kind trace.EventKind, format string, args ...any) {
	rec := s.cfg.Recorder
	if !s.cfg.LogEvents {
		if rec == nil {
			return
		}
		rec.EventKindf(s.now, nodeID, kind, format, args...)
		return
	}
	msg := fmt.Sprintf(format, args...)
	rec.EventKind(s.now, nodeID, kind, msg)
	s.log = append(s.log, fmt.Sprintf("t=%-8d n%-3d %-14s %s", s.now, nodeID, kind, msg))
}

// EventLog returns the recorded log lines (empty unless
// Config.LogEvents was set).
func (s *Sim) EventLog() []string { return s.log }

// Run executes the simulation to completion (every node through every
// epoch) or until the watchdog declares it stuck / the tick budget is
// exhausted. The Result is returned in both cases; the error is non-nil
// only for stuck runs and carries the StuckReport.
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("cluster: Sim.Run called twice (build a new Sim to replay)")
	}
	s.ran = true
	for _, n := range s.nodes {
		n.startEpoch(0)
	}
	if s.fast != nil {
		for s.doneNodes < len(s.nodes) {
			if !s.stepFast() {
				break
			}
		}
	} else {
		s.runSlow()
	}
	res := s.result()
	if s.stuck != nil {
		return res, fmt.Errorf("cluster: %s run stuck: %s", s.cfg.Protocol, s.stuck)
	}
	return res, nil
}

// runSlow is the closure engine's main loop.
func (s *Sim) runSlow() {
	for s.doneNodes < len(s.nodes) {
		if s.heap.Len() == 0 {
			// No pending events but nodes unfinished: a protocol bug
			// (reliable delivery always leaves a timer pending).
			s.diagnoseStuck("event queue drained")
			break
		}
		ev := heap.Pop(&s.heap).(*event)
		s.now = ev.at
		if !s.checkBudget() {
			break
		}
		ev.fn()
	}
}

// checkBudget runs the per-event liveness checks with s.now already
// advanced; false means the run was diagnosed stuck and must stop. Both
// engines call this on every popped event, so the watchdog semantics do
// not depend on the engine.
func (s *Sim) checkBudget() bool {
	if s.now-s.lastProgress > s.cfg.WatchdogAfter {
		s.diagnoseStuck("no epoch completed within watchdog window")
		return false
	}
	if s.now > s.cfg.MaxTicks {
		s.diagnoseStuck("tick budget exhausted")
		return false
	}
	return true
}

// diagnoseStuck builds the watchdog report: the laggiest node, the
// epoch it is wedged in, and a state line per node, all rendered
// through the trace layer as EvTimeout events.
func (s *Sim) diagnoseStuck(why string) {
	rep := &StuckReport{At: s.now, Node: -1, Why: why}
	minReleased := int64(-1)
	for _, n := range s.nodes {
		if !n.done && (rep.Node < 0 || n.releasedThrough < minReleased) {
			minReleased = n.releasedThrough
			rep.Node = n.id
			rep.Epoch = n.releasedThrough
		}
		rep.States = append(rep.States, fmt.Sprintf("node %d: %s", n.id, n.stateLine()))
	}
	s.logf(rep.Node, trace.EvTimeout, "watchdog (%s): node %d stuck at epoch %d", why, rep.Node, rep.Epoch)
	for i, line := range rep.States {
		s.logf(i, trace.EvTimeout, "%s", line)
	}
	s.stuck = rep
}

// result snapshots the counters into a Result.
func (s *Sim) result() *Result {
	res := &Result{
		Protocol: s.cfg.Protocol,
		Nodes:    s.cfg.Nodes,
		Epochs:   s.cfg.Epochs,
		Ticks:    s.now,
		Sends:    s.sends, Acks: s.acks, Retransmits: s.retransmits,
		Drops: s.drops, Dups: s.dups, Delivered: s.delivered,
		Stuck: s.stuck,
	}
	for _, n := range s.nodes {
		res.Stall += n.stall
		res.PerNodeStall = append(res.PerNodeStall, n.stall)
		res.ArriveAt = append(res.ArriveAt, n.arriveAt)
		res.ReleaseAt = append(res.ReleaseAt, n.releaseAt)
	}
	return res
}
