package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"fuzzybarrier/internal/trace"
)

// Event ordering. Every event carries a canonical key
// (at, node, pri): the simulation tick, the *owner* node (the node on
// which the event executes — for deliveries, the destination), and a
// 64-bit per-owner priority. All engines — the closure heap, the typed
// fast engine, and the sharded parallel engine — dispatch in strictly
// ascending key order, which is what makes their event logs and Results
// byte-identical (TestEngineEquivalence).
//
// The priority space is split so that every component of the key is
// produced by state local to one node, never by a global counter — the
// property the parallel engine depends on (a shard can compute the keys
// of the events it creates without synchronizing with any other shard):
//
//   - local events (work/region spans, retransmit timers) take
//     localPriBit | lseq from the owner's monotone counter, consumed at
//     scheduling (or timer-arming) time;
//   - deliveries take deliverPri(from, txSeq) from the *sender's*
//     monotone transmission counter, consumed per network copy.
//
// Delivery priorities sort below local ones, so at equal (at, node) all
// deliveries dispatch before any same-tick local event. That inequality
// is also what keeps the wheel's dispatch cursor safe: a handler that
// schedules a zero-delay local event always lands it after the event
// being dispatched (deliveries never have zero delay — link latency is
// >= 1).
const localPriBit = uint64(1) << 63

// deliverPriBits is the per-sender transmission-counter width inside a
// delivery priority; the sender id occupies the bits above it (bounded
// by the maxNodes validation in withDefaults).
const deliverPriBits = 40

// deliverPri builds the priority of one network transmission copy.
func deliverPri(from int, txSeq uint64) uint64 {
	return (uint64(from)+1)<<deliverPriBits | txSeq
}

// keyLess is the canonical event order.
func keyLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.pri < b.pri
}

// event is one scheduled callback of the fallback (closure) engine,
// carrying the canonical key explicitly. The default engine replaces
// this with pooled typed events (see engine.go) but dispatches in the
// same key order, so both replay the identical schedule.
type event struct {
	at   int64
	node int32
	pri  uint64
	fn   func()
}

// eventHeap is a min-heap on the canonical key.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return keyLess(heapEntry{at: h[i].at, node: h[i].node, pri: h[i].pri},
		heapEntry{at: h[j].at, node: h[j].node, pri: h[j].pri})
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// logLine is one buffered event-log line in a parallel run, keyed by
// the dispatching event plus an intra-event counter so the per-shard
// buffers merge into exactly the serial emission order.
type logLine struct {
	at   int64
	pri  uint64
	node int32
	sub  int32
	text string
}

// exec is one execution lane: the mutable engine state that advances a
// set of nodes through simulated time. The serial engines use a single
// exec for the whole run; the parallel engine gives each shard its own,
// so nothing on an exec ever needs atomic access — cross-shard traffic
// moves exclusively through the parallel engine's inboxes at window
// boundaries.
type exec struct {
	s     *Sim
	shard int32
	now   int64

	fast *fastEngine // typed-event engine; nil only on the closure engine
	heap eventHeap   // closure engine (cfg.DisableFastEngine; serial only)

	lastProgress int64 // sim time of this lane's most recent epoch completion
	doneNodes    int

	// Network/reliability counters (summed into Result across lanes).
	sends, acks, retransmits, drops, dups, delivered int64

	// Event-log buffering (parallel lanes only): lines carry the
	// dispatching event's key so a merge reproduces serial order.
	lines           []logLine
	curAt           int64
	curPri          uint64
	curNode, curSub int32
}

// Sim is one deterministic discrete-event cluster-barrier run.
type Sim struct {
	cfg   Config
	ex    *exec      // serial lane (nil when sharded)
	par   *parEngine // sharded parallel engine (Config.Shards > 1)
	nodes []*node
	log   []string
	tail  []string // stuck-diagnosis lines, appended after any merge

	// wantLog gates every hot-path logf call site so the variadic
	// argument slice is never even built when neither sink is active —
	// the zero-alloc steady state depends on this.
	wantLog bool

	stuck *StuckReport
	ran   bool
}

// New validates cfg, applies defaults, and builds a ready-to-Run Sim.
func New(cfg Config) (*Sim, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	s.wantLog = cfg.Recorder != nil || cfg.LogEvents
	s.nodes = make([]*node, cfg.Nodes)
	if cfg.Shards > 1 {
		s.par = newParEngine(s)
	} else {
		s.ex = s.newExec(0)
	}
	for i := range s.nodes {
		x := s.ex
		if s.par != nil {
			x = s.par.shards[s.par.shardOf[i]]
		}
		s.nodes[i] = newNode(x, i)
	}
	return s, nil
}

// newExec builds one execution lane (with its typed engine unless the
// closure engine was requested — serial only).
func (s *Sim) newExec(shard int32) *exec {
	x := &exec{s: s, shard: shard}
	if !s.cfg.DisableFastEngine {
		x.fast = newFastEngine(x)
	}
	return x
}

// schedule runs fn at the given key on the closure engine.
func (x *exec) schedule(delay int64, node int32, pri uint64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	heap.Push(&x.heap, &event{at: x.now + delay, node: node, pri: pri, fn: fn})
}

// schedWork schedules the end of node n's non-barrier work span for
// epoch e. Both serial engines consume exactly one local priority here,
// so their key orderings stay aligned.
func (x *exec) schedWork(n *node, e, delay int64) {
	pri := n.nextPri()
	if x.fast != nil {
		if delay < 0 {
			delay = 0
		}
		x.fast.scheduleAt(x.now+delay, int32(n.id), pri, evWork, e, x.now, Message{})
		return
	}
	start := x.now
	x.schedule(delay, int32(n.id), pri, func() {
		n.markRange(start, x.now, trace.KindWork)
		n.workDone(e)
	})
}

// schedRegion schedules the end of node n's barrier-region span for
// epoch e.
func (x *exec) schedRegion(n *node, e, delay int64) {
	pri := n.nextPri()
	if x.fast != nil {
		if delay < 0 {
			delay = 0
		}
		x.fast.scheduleAt(x.now+delay, int32(n.id), pri, evRegion, e, x.now, Message{})
		return
	}
	start := x.now
	x.schedule(delay, int32(n.id), pri, func() {
		n.markRange(start, x.now, trace.KindBarrier)
		n.regionDone(e)
	})
}

// schedDeliver schedules one network delivery of m at the
// sender-computed priority. Cross-shard deliveries detour through the
// parallel engine's inboxes; conservative lookahead (delay >= link
// latency >= window length) guarantees they dispatch in a later window,
// so the owner shard drains them at a window boundary it has not yet
// simulated past.
func (x *exec) schedDeliver(m Message, delay, at int64, pri uint64) {
	if p := x.s.par; p != nil {
		if ts := p.shardOf[m.To]; ts != x.shard {
			p.inbox[ts][x.shard] = append(p.inbox[ts][x.shard], inEvent{at: at, pri: pri, msg: m})
			return
		}
	}
	if x.fast != nil {
		x.fast.scheduleAt(at, int32(m.To), pri, evDeliver, 0, 0, m)
		return
	}
	x.schedule(delay, int32(m.To), pri, func() { x.deliver(m) })
}

// deliver hands one transmission to its destination node.
func (x *exec) deliver(m Message) {
	x.delivered++
	if x.s.wantLog {
		x.logf(m.To, trace.EvRecv, "recv %v", m)
	}
	x.s.nodes[m.To].handle(m)
}

// logf records one event-log line and mirrors it to the trace recorder.
// The log is append-only and — after the parallel merge — in canonical
// event-key order, so for a fixed Config it is byte-identical across
// runs and engines. Each sink's output is built exactly once:
// recorder-only runs format straight into the recorder, and when both
// sinks are active the rendered message is shared instead of being
// re-formatted per sink.
func (x *exec) logf(nodeID int, kind trace.EventKind, format string, args ...any) {
	s := x.s
	if s.par != nil {
		// Sharded lanes buffer keyed lines (Recorder is rejected at
		// validation when Shards > 1).
		msg := fmt.Sprintf(format, args...)
		x.lines = append(x.lines, logLine{
			at: x.curAt, pri: x.curPri, node: x.curNode, sub: x.curSub,
			text: fmt.Sprintf("t=%-8d n%-3d %-14s %s", x.now, nodeID, kind, msg),
		})
		x.curSub++
		return
	}
	rec := s.cfg.Recorder
	if !s.cfg.LogEvents {
		if rec == nil {
			return
		}
		rec.EventKindf(x.now, nodeID, kind, format, args...)
		return
	}
	msg := fmt.Sprintf(format, args...)
	rec.EventKind(x.now, nodeID, kind, msg)
	s.log = append(s.log, fmt.Sprintf("t=%-8d n%-3d %-14s %s", x.now, nodeID, kind, msg))
}

// tailf records one stuck-diagnosis line. These always terminate the
// log, so they bypass the per-event key merge and land in a tail buffer
// appended after it.
func (s *Sim) tailf(now int64, nodeID int, kind trace.EventKind, format string, args ...any) {
	rec := s.cfg.Recorder
	if !s.cfg.LogEvents {
		if rec == nil {
			return
		}
		rec.EventKindf(now, nodeID, kind, format, args...)
		return
	}
	msg := fmt.Sprintf(format, args...)
	rec.EventKind(now, nodeID, kind, msg)
	s.tail = append(s.tail, fmt.Sprintf("t=%-8d n%-3d %-14s %s", now, nodeID, kind, msg))
}

// EventLog returns the recorded log lines (empty unless
// Config.LogEvents was set).
func (s *Sim) EventLog() []string { return s.log }

// Run executes the simulation to completion (every node through every
// epoch) or until the watchdog declares it stuck / the tick budget is
// exhausted. The Result is returned in both cases; the error is non-nil
// only for stuck runs and carries the StuckReport.
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("cluster: Sim.Run called twice (build a new Sim to replay)")
	}
	s.ran = true
	s.start()
	switch {
	case s.par != nil:
		s.par.run()
	case s.ex.fast != nil:
		x := s.ex
		for x.doneNodes < len(s.nodes) {
			if x.stepFast(math.MaxInt64) != stepOK {
				break
			}
		}
	default:
		s.runSlow()
	}
	return s.finish()
}

// finish seals a completed (or stuck) run: merge the log buffers and
// snapshot the Result. Shared by Run and the batch executor's lockstep
// lanes.
func (s *Sim) finish() (*Result, error) {
	s.finishLog()
	res := s.result()
	if s.stuck != nil {
		return res, fmt.Errorf("cluster: %s run stuck: %s", s.cfg.Protocol, s.stuck)
	}
	return res, nil
}

// start launches epoch 0 on every node (single-threaded, before any
// shard worker observes the queues).
func (s *Sim) start() {
	for _, n := range s.nodes {
		n.startEpoch(0)
	}
}

// finishLog merges the sharded per-lane log buffers into canonical
// event order and appends the stuck tail.
func (s *Sim) finishLog() {
	if s.par != nil && s.cfg.LogEvents {
		var all []logLine
		for _, x := range s.par.shards {
			all = append(all, x.lines...)
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.node != b.node {
				return a.node < b.node
			}
			if a.pri != b.pri {
				return a.pri < b.pri
			}
			return a.sub < b.sub
		})
		for _, l := range all {
			s.log = append(s.log, l.text)
		}
	}
	s.log = append(s.log, s.tail...)
	s.tail = nil
}

// runSlow is the closure engine's main loop.
func (s *Sim) runSlow() {
	x := s.ex
	for x.doneNodes < len(s.nodes) {
		if x.heap.Len() == 0 {
			// No pending events but nodes unfinished: a protocol bug
			// (reliable delivery always leaves a timer pending).
			s.diagnoseStuck(x.now, "event queue drained")
			break
		}
		ev := heap.Pop(&x.heap).(*event)
		x.now = ev.at
		if why := s.budgetWhy(x.now, x.lastProgress); why != "" {
			s.diagnoseStuck(x.now, why)
			break
		}
		ev.fn()
	}
}

// budgetWhy runs the per-event liveness checks with the event's time
// already adopted; non-empty means the run is stuck for that reason.
// Every engine applies this to every dispatched event — the parallel
// engine by proving per window that it cannot fire (and falling back to
// serial careful stepping when it might), so the watchdog semantics do
// not depend on the engine.
func (s *Sim) budgetWhy(now, lastProgress int64) string {
	if now-lastProgress > s.cfg.WatchdogAfter {
		return "no epoch completed within watchdog window"
	}
	if now > s.cfg.MaxTicks {
		return "tick budget exhausted"
	}
	return ""
}

// diagnoseStuck builds the watchdog report: the laggiest node, the
// epoch it is wedged in, and a state line per node, all rendered
// through the trace layer as EvTimeout events.
func (s *Sim) diagnoseStuck(now int64, why string) {
	rep := &StuckReport{At: now, Node: -1, Why: why}
	minReleased := int64(-1)
	for _, n := range s.nodes {
		if !n.done && (rep.Node < 0 || n.releasedThrough < minReleased) {
			minReleased = n.releasedThrough
			rep.Node = n.id
			rep.Epoch = n.releasedThrough
		}
		rep.States = append(rep.States, fmt.Sprintf("node %d: %s", n.id, n.stateLine()))
	}
	s.tailf(now, rep.Node, trace.EvTimeout, "watchdog (%s): node %d stuck at epoch %d", why, rep.Node, rep.Epoch)
	for i, line := range rep.States {
		s.tailf(now, i, trace.EvTimeout, "%s", line)
	}
	s.stuck = rep
}

// result snapshots the counters into a Result. Counter sums are
// commutative, so the per-shard split of a parallel run cannot change
// them.
func (s *Sim) result() *Result {
	res := &Result{
		Protocol: s.cfg.Protocol,
		Nodes:    s.cfg.Nodes,
		Epochs:   s.cfg.Epochs,
		Stuck:    s.stuck,
	}
	lanes := []*exec{s.ex}
	if s.par != nil {
		lanes = s.par.shards
	}
	for _, x := range lanes {
		if x.now > res.Ticks {
			res.Ticks = x.now
		}
		res.Sends += x.sends
		res.Acks += x.acks
		res.Retransmits += x.retransmits
		res.Drops += x.drops
		res.Dups += x.dups
		res.Delivered += x.delivered
	}
	for _, n := range s.nodes {
		res.Stall += n.stall
		res.PerNodeStall = append(res.PerNodeStall, n.stall)
		res.ArriveAt = append(res.ArriveAt, n.arriveAt)
		res.ReleaseAt = append(res.ReleaseAt, n.releaseAt)
	}
	return res
}
