package cluster

import (
	"math"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// equivalenceNets are the network regimes the engine-equivalence matrix
// covers: lossless, jittery (reordering), and fully faulty (drops,
// duplicates, jitter).
func equivalenceNets() []struct {
	name string
	net  NetConfig
} {
	return []struct {
		name string
		net  NetConfig
	}{
		{"clean", NetConfig{Latency: 10}},
		{"jitter", NetConfig{Latency: 12, Jitter: 25}},
		{"lossy", NetConfig{Latency: 12, Jitter: 25, DropRate: 0.15, DupRate: 0.1}},
	}
}

// shardCounts is the shard dimension of the equivalence matrix:
// degenerate (1), small powers of two, and whatever this machine's
// GOMAXPROCS happens to be (deduplicated).
func shardCounts() []int {
	counts := []int{1, 2, 4}
	gmp := runtime.GOMAXPROCS(0)
	for _, c := range counts {
		if c == gmp {
			return counts
		}
	}
	return append(counts, gmp)
}

// TestEngineEquivalence pins every engine to the closure engine: across
// every protocol, network regime, shard count and a spread of seeds,
// all must produce byte-identical event logs and identical Results.
// This is the refactor's safety net — the typed-event arena, the 4-ary
// heap, the lazy-cancel retransmit timers and the sharded
// lookahead-window engine may change how the schedule is stored and who
// dispatches it, but never what it replays.
func TestEngineEquivalence(t *testing.T) {
	for _, proto := range Protocols() {
		for _, nc := range equivalenceNets() {
			for seed := uint64(1); seed <= 8; seed++ {
				cfg := Config{
					Protocol: proto, Nodes: 6, Epochs: 15,
					Work: 150, WorkJitter: 60, Region: 30,
					Straggler: 3, StraggleExtra: 45,
					Net:       nc.net,
					Seed:      seed,
					LogEvents: true,
				}
				fastLog, fastRes := collectLog(t, cfg)
				cfg.DisableFastEngine = true
				slowLog, slowRes := collectLog(t, cfg)
				if fastLog != slowLog {
					t.Fatalf("%s/%s/seed=%d: engines diverge:\n%s",
						proto, nc.name, seed, firstDiff(fastLog, slowLog))
				}
				if !reflect.DeepEqual(fastRes, slowRes) {
					t.Fatalf("%s/%s/seed=%d: identical logs but different Results:\nfast: %v\nslow: %v",
						proto, nc.name, seed, fastRes, slowRes)
				}
				if fastLog == "" {
					t.Fatalf("%s/%s/seed=%d: empty event log", proto, nc.name, seed)
				}
				cfg.DisableFastEngine = false
				for _, shards := range shardCounts() {
					cfg.Shards = shards
					parLog, parRes := collectLog(t, cfg)
					if parLog != fastLog {
						t.Fatalf("%s/%s/seed=%d/shards=%d: parallel engine diverges:\n%s",
							proto, nc.name, seed, shards, firstDiff(parLog, fastLog))
					}
					if !reflect.DeepEqual(parRes, fastRes) {
						t.Fatalf("%s/%s/seed=%d/shards=%d: identical logs but different Results:\npar:    %v\nserial: %v",
							proto, nc.name, seed, shards, parRes, fastRes)
					}
				}
				cfg.Shards = 0
			}
		}
	}
}

// TestFastEngineZeroAllocSteadyState pins the headline property: once
// the arena, heap, outbox rings and timer queues have reached their
// high-water marks, the schedule/dispatch path allocates nothing — on a
// faulty network, with retransmissions and duplicate deliveries in
// flight.
func TestFastEngineZeroAllocSteadyState(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := Config{
			Protocol: proto, Nodes: 8, Epochs: 1 << 20,
			Work: 40, WorkJitter: 10, Region: 20,
			Net:  NetConfig{Latency: 8, Jitter: 6, DropRate: 0.05, DupRate: 0.02},
			Seed: 99,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Drive the engine by hand (Run's inner loop) so allocations can
		// be sampled mid-flight.
		s.ran = true
		s.start()
		step := func(count int) {
			for i := 0; i < count; i++ {
				if s.ex.stepFast(math.MaxInt64) != stepOK {
					t.Fatalf("%s: run stopped during steady state: %v", proto, s.stuck)
				}
			}
		}
		step(300000) // warm past every pool's and bucket's high-water mark
		avg := testing.AllocsPerRun(10, func() { step(2000) })
		if avg != 0 {
			t.Errorf("%s: steady-state schedule/dispatch allocates (%.1f allocs per 2000 events)", proto, avg)
		}
		if s.ex.doneNodes == len(s.nodes) {
			t.Fatalf("%s: run completed during measurement; raise Epochs", proto)
		}
	}
}

// TestConfigBudgetOverflow: deriving the default watchdog/tick budgets
// from enormous knobs must surface a config error, never wrap into a
// negative budget that declares every run stuck at t=0. Explicit
// budgets sidestep the derivation and keep such configs constructible.
func TestConfigBudgetOverflow(t *testing.T) {
	huge := Config{
		Protocol: "central", Nodes: 2, Epochs: math.MaxInt32,
		Work: math.MaxInt64 / 4,
		Net:  NetConfig{Latency: 10},
	}
	if _, err := huge.withDefaults(); err == nil {
		t.Fatal("withDefaults accepted a config whose derived tick budget overflows int64")
	}
	huge.InitRTO = 30
	huge.MaxRTO = 480
	huge.WatchdogAfter = math.MaxInt64 / 2
	huge.MaxTicks = math.MaxInt64 / 2
	got, err := huge.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults rejected explicit budgets: %v", err)
	}
	for name, v := range map[string]int64{
		"InitRTO": got.InitRTO, "MaxRTO": got.MaxRTO,
		"WatchdogAfter": got.WatchdogAfter, "MaxTicks": got.MaxTicks,
	} {
		if v <= 0 {
			t.Errorf("explicit %s came out non-positive (%d)", name, v)
		}
	}
}

// gateConfigs is the lossy-network sweep the speedup gate times: every
// protocol at two fan-ins, with drops, duplicates and jitter keeping a
// realistic retransmission load in flight.
func gateConfigs() []Config {
	var cfgs []Config
	for _, proto := range Protocols() {
		for _, nodes := range []int{256, 1024} {
			cfgs = append(cfgs, Config{
				Protocol: proto, Nodes: nodes, Epochs: 20,
				Work: 120, WorkJitter: 40, Region: 30,
				Net:  NetConfig{Latency: 12, Jitter: 25, DropRate: 0.2, DupRate: 0.08},
				Seed: 1234,
			})
		}
	}
	return cfgs
}

// TestClusterEngineSpeedupGate is the perf regression gate (run via
// `make bench-gate` with BENCH_GATE=1): the typed-event engine must be
// at least 2.5x faster than the closure engine on the lossy sweep.
// Wall-clock measurement lives behind the env guard so the ordinary
// test run stays deterministic and machine-independent. The threshold
// was 3x before the canonical (at, node, pri) key: a shard-invariant
// schedule makes same-tick cross-node arrivals land out of key order,
// so the wheel pays a sort-on-settle pass the old (at, seq) key never
// needed (typically measured ~2.6-3.1x now), which is the price of
// running the identical schedule on parallel lanes.
func TestClusterEngineSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 to run the wall-clock engine gate")
	}
	cfgs := gateConfigs()
	measure := func(disableFast bool) time.Duration {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for _, cfg := range cfgs {
				cfg.DisableFastEngine = disableFast
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil || res.Stuck != nil {
					t.Fatalf("%s/n=%d: gate run failed: %v", cfg.Protocol, cfg.Nodes, err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	slow := measure(true)
	fast := measure(false)
	speedup := float64(slow) / float64(fast)
	t.Logf("closure engine %v, typed-event engine %v: speedup %.2fx", slow, fast, speedup)
	if speedup < 2.5 {
		t.Fatalf("typed-event engine speedup %.2fx below the 2.5x gate (closure %v, typed %v)", speedup, slow, fast)
	}
}
