package cluster

import (
	"fmt"

	"fuzzybarrier/internal/trace"
)

// This file is the default (fast) event engine: a pooled arena of typed
// events ordered by a two-tier priority queue — a calendar wheel of
// per-tick buckets for the near horizon, backed by a flat, index-based
// 4-ary min-heap for far-future events — and dispatched through a
// switch instead of captured closures. The closure engine in sim.go
// heap-allocates an *event plus a closure per scheduled action and
// boxes both through container/heap's `any` interface; this engine
// recycles fixed-size slots through a free list, so the steady-state
// schedule/dispatch path performs zero allocations
// (TestFastEngineZeroAllocSteadyState pins that down with
// testing.AllocsPerRun).
//
// Determinism contract: events are dispatched in exactly the same
// (at, seq) order the closure engine's heap produces, and every
// scheduling action consumes exactly one sequence number in both
// engines, so the two replay the identical schedule — byte-identical
// event logs and Results (TestEngineEquivalence). Retransmit timers
// additionally rely on the lazy-cancel scheme in node.go inserting
// events at their *original* (deadline, armseq) key rather than a fresh
// sequence number; see outbox.ensureArmed.

// evKind tags a pooled event; dispatch switches on it.
type evKind uint8

const (
	evWork    evKind = iota // a node's non-barrier work span ends
	evRegion                // a node's barrier-region span ends
	evDeliver               // the network delivers msg to msg.To
	evRetx                  // an outbox retransmit-timer deadline (lazily cancelled)
)

// fevent is one pooled typed event. The Message payload lives inline so
// deliveries carry no pointer to chase and no allocation to free.
type fevent struct {
	at    int64
	seq   uint64
	start int64   // evWork/evRegion: span start, for trace-lane painting
	epoch int64   // evWork/evRegion
	msg   Message // evDeliver
	node  int32   // evWork/evRegion/evRetx
	kind  evKind
	next  int32 // free-list link while the slot is unqueued
}

// heapEntry carries an event's (at, seq) ordering key inline next to
// its arena index. The wheel buckets and the overflow heap compare and
// move only these 24-byte entries — the arena, whose slots are far
// larger and randomly placed, is untouched until the winning event is
// dispatched, which keeps the queue's working set in cache.
type heapEntry struct {
	at  int64
	seq uint64
	idx int32
}

// maxWheelSpan caps the calendar wheel's bucket count; configs whose
// longest delay exceeds it just route more events through the overflow
// heap (correct, merely slower).
const maxWheelSpan = 8192

// fastEngine owns the arena and the two-tier queue over it.
//
// The wheel invariant: every queued event with at < wt+H (H = bucket
// count) lives in bucket at&hmask, and every event in a bucket shares
// one dispatch time — two distinct times less than H apart cannot
// collide mod H, and an event further out than H is kept in the
// overflow heap until wt advances to within H of it. Each bucket is
// sorted by seq: schedule() appends monotonically increasing sequence
// numbers, and the two out-of-order producers — overflow drains and
// lazy retransmit re-arms, both carrying keys consumed earlier — do a
// binary-search insert. Advancing wt therefore dispatches strictly in
// (at, seq) order at O(1) amortized per event, instead of the O(log n)
// comparison cascade a single heap pays on every pop.
type fastEngine struct {
	s     *Sim
	arena []fevent
	free  int32 // free-list head; -1 when empty

	wheel  [][]heapEntry // per-tick buckets; bucket wt&hmask drains at time wt
	hmask  int64
	wt     int64 // wheel time: no queued event is earlier
	cursor int   // dispatch position within the current bucket
	queued int   // entries across all buckets

	over []heapEntry // 4-ary min-heap on (at, seq): events with at >= wt+H
}

func newFastEngine(s *Sim) *fastEngine {
	// The wheel spans the longest delay any scheduling site can ask
	// for, so in ordinary runs the overflow heap stays empty.
	maxDelay := s.cfg.Work + s.cfg.WorkJitter + s.cfg.StraggleExtra
	if s.cfg.Region > maxDelay {
		maxDelay = s.cfg.Region
	}
	if d := s.cfg.Net.Latency + s.cfg.Net.Jitter; d > maxDelay {
		maxDelay = d
	}
	if s.cfg.MaxRTO > maxDelay {
		maxDelay = s.cfg.MaxRTO
	}
	span := int64(64)
	for span <= maxDelay && span < maxWheelSpan {
		span *= 2
	}
	return &fastEngine{s: s, free: -1, wheel: make([][]heapEntry, span), hmask: span - 1}
}

// alloc takes a slot off the free list, growing the arena only until
// the run's high-water mark is reached.
func (f *fastEngine) alloc() int32 {
	if f.free >= 0 {
		i := f.free
		f.free = f.arena[i].next
		return i
	}
	f.arena = append(f.arena, fevent{})
	return int32(len(f.arena) - 1)
}

// release returns a slot to the free list.
func (f *fastEngine) release(i int32) {
	f.arena[i].next = f.free
	f.free = i
}

// entryLess orders queue entries by (at, seq) — the closure engine's key.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// enqueue routes one keyed entry to its tier.
func (f *fastEngine) enqueue(e heapEntry) {
	if e.at < f.wt {
		panic(fmt.Sprintf("cluster: event scheduled in the past (at=%d, wheel time %d)", e.at, f.wt))
	}
	if e.at-f.wt < int64(len(f.wheel)) {
		f.insertWheel(e)
		return
	}
	f.pushOver(e)
}

// insertWheel places an entry in its bucket, keeping the bucket sorted
// by seq. The common case is a plain append: sequence numbers are
// consumed in scheduling order, so same-bucket appends arrive
// monotonically. Entries carrying older keys (overflow drains, lazy
// retransmit re-arms) binary-search their slot; in the bucket currently
// dispatching, positions before the cursor are already dispatched and
// by construction no in-order key can land there.
func (f *fastEngine) insertWheel(e heapEntry) {
	bi := e.at & f.hmask
	b := f.wheel[bi]
	lo := 0
	if e.at == f.wt {
		lo = f.cursor
	}
	if len(b) == lo || e.seq > b[len(b)-1].seq {
		f.wheel[bi] = append(b, e)
		f.queued++
		return
	}
	i, j := lo, len(b)
	for i < j {
		h := (i + j) / 2
		if b[h].seq < e.seq {
			i = h + 1
		} else {
			j = h
		}
	}
	b = append(b, heapEntry{})
	copy(b[i+1:], b[i:])
	b[i] = e
	f.wheel[bi] = b
	f.queued++
}

// next dispatches the queue in (at, seq) order: return the arena index
// of the minimum event (advancing wheel time past drained buckets and
// pulling newly eligible overflow events on the way), or -1 when
// nothing is queued.
func (f *fastEngine) next() int32 {
	h := int64(len(f.wheel))
	for {
		b := f.wheel[f.wt&f.hmask]
		if f.cursor < len(b) {
			e := b[f.cursor]
			f.cursor++
			f.queued--
			return e.idx
		}
		if f.queued == 0 && len(f.over) == 0 {
			return -1
		}
		// Current bucket exhausted: recycle it and advance. With the
		// wheel empty, jump straight to the overflow's first deadline
		// instead of walking every intervening tick.
		f.wheel[f.wt&f.hmask] = b[:0]
		f.cursor = 0
		if f.queued == 0 {
			f.wt = f.over[0].at
		} else {
			f.wt++
		}
		for len(f.over) > 0 && f.over[0].at-f.wt < h {
			f.insertWheel(f.popOver())
		}
	}
}

// pushOver sifts a new entry up the 4-ary overflow heap; the hole is
// moved rather than swapped, so each level costs one copy.
func (f *fastEngine) pushOver(e heapEntry) {
	f.over = append(f.over, e)
	o := f.over
	c := len(o) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !entryLess(e, o[p]) {
			break
		}
		o[c] = o[p]
		c = p
	}
	o[c] = e
}

// popOver removes and returns the overflow heap's minimum entry.
func (f *fastEngine) popOver() heapEntry {
	o := f.over
	top := o[0]
	last := len(o) - 1
	e := o[last]
	f.over = o[:last]
	n := last
	c := 0
	for {
		first := 4*c + 1
		if first >= n {
			break
		}
		m := first
		stop := first + 4
		if stop > n {
			stop = n
		}
		for k := first + 1; k < stop; k++ {
			if entryLess(o[k], o[m]) {
				m = k
			}
		}
		if !entryLess(o[m], e) {
			break
		}
		o[c] = o[m]
		c = m
	}
	if n > 0 {
		o[c] = e
	}
	return top
}

// schedule enqueues a typed event after delay ticks (clamped to now),
// consuming one sequence number exactly like Sim.schedule.
func (f *fastEngine) schedule(delay int64, kind evKind, node int32, epoch, start int64, msg Message) {
	if delay < 0 {
		delay = 0
	}
	f.s.eseq++
	f.scheduleAt(f.s.now+delay, f.s.eseq, kind, node, epoch, start, msg)
}

// scheduleAt enqueues a typed event at an explicit (at, seq) key. The
// lazy retransmit-timer scheme uses this to re-insert a timer at the
// original key its per-message counterpart would have occupied in the
// closure engine, which is what keeps the two engines' schedules
// identical.
func (f *fastEngine) scheduleAt(at int64, seq uint64, kind evKind, node int32, epoch, start int64, msg Message) {
	i := f.alloc()
	ev := &f.arena[i]
	ev.at, ev.seq, ev.kind, ev.node = at, seq, kind, node
	ev.epoch, ev.start, ev.msg = epoch, start, msg
	f.enqueue(heapEntry{at: at, seq: seq, idx: i})
}

// stepFast pops and dispatches one event; false stops the run (drained
// queue or a failed budget check, both diagnosed as stuck).
func (s *Sim) stepFast() bool {
	f := s.fast
	i := f.next()
	if i < 0 {
		// No pending events but nodes unfinished: a protocol bug
		// (reliable delivery always leaves a timer pending).
		s.diagnoseStuck("event queue drained")
		return false
	}
	// Copy before releasing: handlers schedule new events, which may
	// reuse this slot or grow (and move) the arena.
	ev := f.arena[i]
	f.release(i)
	s.now = ev.at
	if !s.checkBudget() {
		return false
	}
	switch ev.kind {
	case evWork:
		n := s.nodes[ev.node]
		n.markRange(ev.start, s.now, trace.KindWork)
		n.workDone(ev.epoch)
	case evRegion:
		n := s.nodes[ev.node]
		n.markRange(ev.start, s.now, trace.KindBarrier)
		n.regionDone(ev.epoch)
	case evDeliver:
		s.deliver(ev.msg)
	case evRetx:
		s.nodes[ev.node].out.fireRetx(ev.at, ev.seq)
	default:
		panic(fmt.Sprintf("cluster: unknown event kind %d", ev.kind))
	}
	return true
}
