package cluster

import (
	"fmt"

	"fuzzybarrier/internal/trace"
)

// This file is the default (fast) event engine: a pooled arena of typed
// events ordered by a two-tier priority queue — a calendar wheel of
// per-tick buckets for the near horizon, backed by a flat, index-based
// 4-ary min-heap for far-future events — and dispatched through a
// switch instead of captured closures. The closure engine in sim.go
// heap-allocates an *event plus a closure per scheduled action and
// boxes both through container/heap's `any` interface; this engine
// recycles fixed-size slots through a free list, so the steady-state
// schedule/dispatch path performs zero allocations
// (TestFastEngineZeroAllocSteadyState pins that down with
// testing.AllocsPerRun).
//
// Determinism contract: events are dispatched in exactly the canonical
// (at, node, pri) key order defined in sim.go, and every scheduling
// action consumes the same node-local counters in every engine, so the
// closure, fast, and sharded parallel engines all replay the identical
// schedule — byte-identical event logs and Results
// (TestEngineEquivalence). Retransmit timers additionally rely on the
// lazy-cancel scheme in node.go inserting events at their *original*
// (deadline, armpri) key rather than a fresh priority; see
// outbox.ensureArmed.
//
// The engine also supports bounded dispatch (nextBefore/settle): the
// parallel engine runs each shard's engine one conservative lookahead
// window at a time, and the batch executor steps lanes in lockstep
// windows. Wheel time never advances past the bound, so events arriving
// later from another shard's window (always at >= the bound, by the
// lookahead argument) can never be scheduled in this engine's past.

// evKind tags a pooled event; dispatch switches on it.
type evKind uint8

const (
	evWork    evKind = iota // a node's non-barrier work span ends
	evRegion                // a node's barrier-region span ends
	evDeliver               // the network delivers msg to msg.To
	evRetx                  // an outbox retransmit-timer deadline (lazily cancelled)
)

// fevent is one pooled typed event. The Message payload lives inline so
// deliveries carry no pointer to chase and no allocation to free.
type fevent struct {
	at    int64
	pri   uint64
	start int64   // evWork/evRegion: span start, for trace-lane painting
	epoch int64   // evWork/evRegion
	msg   Message // evDeliver
	node  int32   // owner node (evDeliver: msg.To)
	kind  evKind
	next  int32 // free-list link while the slot is unqueued
}

// heapEntry carries an event's (at, node, pri) ordering key inline next
// to its arena index. The wheel buckets and the overflow heap compare
// and move only these entries — the arena, whose slots are far larger
// and randomly placed, is untouched until the winning event is
// dispatched, which keeps the queue's working set in cache.
type heapEntry struct {
	at   int64
	pri  uint64
	node int32
	idx  int32
}

// maxWheelSpan caps the calendar wheel's bucket count; configs whose
// longest delay exceeds it just route more events through the overflow
// heap (correct, merely slower).
const maxWheelSpan = 8192

// fastEngine owns the arena and the two-tier queue over it.
//
// The wheel invariant: every queued event with at < wt+H (H = bucket
// count) lives in bucket at&hmask, and every event in a bucket shares
// one dispatch time — two distinct times less than H apart cannot
// collide mod H, and an event further out than H is kept in the
// overflow heap until wt advances to within H of it. Each bucket is
// sorted by (node, pri); producers whose key is not larger than the
// bucket's current tail binary-search their slot. In the bucket
// currently dispatching, positions before the cursor are already
// dispatched, and no producible key can land there: a handler's
// zero-delay local events carry a priority above the dispatching
// event's (localPriBit, or a larger lseq of the same node), and
// deliveries always trail by at least one tick of link latency.
type fastEngine struct {
	x     *exec
	arena []fevent
	free  int32 // free-list head; -1 when empty

	wheel  [][]heapEntry // per-tick buckets; bucket wt&hmask drains at time wt
	dirty  []bool        // bucket appended out of order; sorted when it becomes current
	hmask  int64
	wt     int64 // wheel time: no queued event is earlier
	cursor int   // dispatch position within the current bucket
	queued int   // entries across all buckets

	over []heapEntry // 4-ary min-heap on the canonical key: events with at >= wt+H
}

func newFastEngine(x *exec) *fastEngine {
	// The wheel spans the longest delay any scheduling site can ask
	// for, so in ordinary runs the overflow heap stays empty.
	cfg := &x.s.cfg
	maxDelay := cfg.Work + cfg.WorkJitter + cfg.StraggleExtra
	if cfg.Region > maxDelay {
		maxDelay = cfg.Region
	}
	if d := cfg.Net.Latency + cfg.Net.Jitter; d > maxDelay {
		maxDelay = d
	}
	if cfg.MaxRTO > maxDelay {
		maxDelay = cfg.MaxRTO
	}
	span := int64(64)
	for span <= maxDelay && span < maxWheelSpan {
		span *= 2
	}
	return &fastEngine{x: x, free: -1, wheel: make([][]heapEntry, span), dirty: make([]bool, span), hmask: span - 1}
}

// alloc takes a slot off the free list, growing the arena only until
// the run's high-water mark is reached.
func (f *fastEngine) alloc() int32 {
	if f.free >= 0 {
		i := f.free
		f.free = f.arena[i].next
		return i
	}
	f.arena = append(f.arena, fevent{})
	return int32(len(f.arena) - 1)
}

// release returns a slot to the free list.
func (f *fastEngine) release(i int32) {
	f.arena[i].next = f.free
	f.free = i
}

// entryLess orders queue entries by the canonical (at, node, pri) key.
func entryLess(a, b heapEntry) bool { return keyLess(a, b) }

// sortBucket establishes canonical key order in a dirty bucket.
// Producers append mostly in order, so buckets are small and nearly
// sorted; straight insertion sort with the inlined key compare runs in
// O(n + inversions) and measures ahead of both binary-insertion and
// the generic sort's indirect comparator here.
func sortBucket(b []heapEntry) {
	for i := 1; i < len(b); i++ {
		e := b[i]
		j := i
		for j > 0 && entryLess(e, b[j-1]) {
			b[j] = b[j-1]
			j--
		}
		b[j] = e
	}
}

// empty reports whether nothing at all is queued.
func (f *fastEngine) empty() bool { return f.queued == 0 && len(f.over) == 0 }

// enqueue routes one keyed entry to its tier.
func (f *fastEngine) enqueue(e heapEntry) {
	if e.at < f.wt {
		panic(fmt.Sprintf("cluster: event scheduled in the past (at=%d, wheel time %d)", e.at, f.wt))
	}
	if e.at-f.wt < int64(len(f.wheel)) {
		f.insertWheel(e)
		return
	}
	f.pushOver(e)
}

// insertWheel places an entry in its bucket. Future buckets are kept
// cheap: in-order producers append, and an out-of-order arrival (a
// cross-node interleaving, overflow drain, or lazy retransmit re-arm)
// just appends too and marks the bucket dirty — settle sorts a dirty
// bucket exactly once, when wheel time reaches it. Only the bucket
// currently dispatching takes a sorted insert (binary search past the
// cursor), because its prefix order is already consumed; a dirty bucket
// at wheel time has cursor 0 (dirt is only ever added before the first
// dispatch — handlers' same-tick events carry keys above the
// dispatching event's, so they take the sorted path), so deferring its
// sort to settle never reorders behind the cursor.
func (f *fastEngine) insertWheel(e heapEntry) {
	bi := e.at & f.hmask
	b := f.wheel[bi]
	if f.dirty[bi] {
		f.wheel[bi] = append(b, e)
		f.queued++
		return
	}
	lo := 0
	if e.at == f.wt {
		lo = f.cursor
	}
	if len(b) == lo || entryLess(b[len(b)-1], e) {
		f.wheel[bi] = append(b, e)
		f.queued++
		return
	}
	if e.at != f.wt {
		f.dirty[bi] = true
		f.wheel[bi] = append(b, e)
		f.queued++
		return
	}
	i, j := lo, len(b)
	for i < j {
		h := (i + j) / 2
		if entryLess(b[h], e) {
			i = h + 1
		} else {
			j = h
		}
	}
	b = append(b, heapEntry{})
	copy(b[i+1:], b[i:])
	b[i] = e
	f.wheel[bi] = b
	f.queued++
}

// settle advances wheel time to the next nonempty bucket, pulling newly
// eligible overflow events on the way, without passing bound. It
// returns true when the current bucket holds an undispatched event
// earlier than bound. Wheel time is clamped to bound even when the next
// event lies beyond it, so events enqueued later from outside (inbox
// drains at >= bound) never land in the past.
func (f *fastEngine) settle(bound int64) bool {
	h := int64(len(f.wheel))
	for {
		bi := f.wt & f.hmask
		b := f.wheel[bi]
		if f.cursor < len(b) {
			if f.dirty[bi] {
				// First dispatch from this bucket (cursor is 0, see
				// insertWheel): establish the canonical order once.
				sortBucket(b)
				f.dirty[bi] = false
			}
			return f.wt < bound
		}
		if f.empty() || f.wt >= bound {
			return false
		}
		// Current bucket exhausted: recycle it and advance. With the
		// wheel empty, jump straight to the overflow's first deadline
		// instead of walking every intervening tick.
		f.wheel[f.wt&f.hmask] = b[:0]
		f.cursor = 0
		if f.queued == 0 {
			t := f.over[0].at
			if t > bound {
				t = bound
			}
			f.wt = t
		} else {
			f.wt++
		}
		for len(f.over) > 0 && f.over[0].at-f.wt < h {
			f.insertWheel(f.popOver())
		}
	}
}

// nextBefore dispatches the queue in canonical key order: return the
// arena index of the minimum event with at < bound, or -1 when nothing
// earlier than bound is queued (use empty() to distinguish a drained
// queue from a reached bound).
func (f *fastEngine) nextBefore(bound int64) int32 {
	if !f.settle(bound) {
		return -1
	}
	b := f.wheel[f.wt&f.hmask]
	e := b[f.cursor]
	f.cursor++
	f.queued--
	return e.idx
}

// peekKey returns the key of the event nextBefore(bound) would
// dispatch, without consuming it. The parallel engine's careful mode
// uses this to merge shard queues one globally-minimal event at a time.
func (f *fastEngine) peekKey(bound int64) (heapEntry, bool) {
	if !f.settle(bound) {
		return heapEntry{}, false
	}
	return f.wheel[f.wt&f.hmask][f.cursor], true
}

// nextAt returns the time of the earliest queued event without moving
// wheel time (the parallel coordinator uses it to pick the next window
// start, which may lie beyond the current window's bound). The scan
// walks at most one wheel span and stops at the first nonempty bucket;
// with an empty wheel it is O(1) off the overflow head.
func (f *fastEngine) nextAt() (int64, bool) {
	if b := f.wheel[f.wt&f.hmask]; f.cursor < len(b) {
		return f.wt, true
	}
	if f.queued > 0 {
		h := int64(len(f.wheel))
		for t := f.wt + 1; t < f.wt+h; t++ {
			if len(f.wheel[t&f.hmask]) > 0 {
				return t, true
			}
		}
		panic("cluster: wheel accounting broken (queued > 0 but no bucket)")
	}
	if len(f.over) > 0 {
		return f.over[0].at, true
	}
	return 0, false
}

// pushOver sifts a new entry up the 4-ary overflow heap; the hole is
// moved rather than swapped, so each level costs one copy.
func (f *fastEngine) pushOver(e heapEntry) {
	f.over = append(f.over, e)
	o := f.over
	c := len(o) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !entryLess(e, o[p]) {
			break
		}
		o[c] = o[p]
		c = p
	}
	o[c] = e
}

// popOver removes and returns the overflow heap's minimum entry.
func (f *fastEngine) popOver() heapEntry {
	o := f.over
	top := o[0]
	last := len(o) - 1
	e := o[last]
	f.over = o[:last]
	n := last
	c := 0
	for {
		first := 4*c + 1
		if first >= n {
			break
		}
		m := first
		stop := first + 4
		if stop > n {
			stop = n
		}
		for k := first + 1; k < stop; k++ {
			if entryLess(o[k], o[m]) {
				m = k
			}
		}
		if !entryLess(o[m], e) {
			break
		}
		o[c] = o[m]
		c = m
	}
	if n > 0 {
		o[c] = e
	}
	return top
}

// scheduleAt enqueues a typed event at an explicit (at, node, pri) key.
// Priorities are consumed by the scheduling site (the owner's lseq for
// local events, the sender's transmission counter for deliveries); the
// lazy retransmit-timer scheme re-inserts a timer at the original key
// its arm consumed, which is what keeps every engine's schedule
// identical.
func (f *fastEngine) scheduleAt(at int64, node int32, pri uint64, kind evKind, epoch, start int64, msg Message) {
	i := f.alloc()
	ev := &f.arena[i]
	ev.at, ev.pri, ev.kind, ev.node = at, pri, kind, node
	ev.epoch, ev.start, ev.msg = epoch, start, msg
	f.enqueue(heapEntry{at: at, pri: pri, node: node, idx: i})
}

// stepResult reports what one bounded step did.
type stepResult uint8

const (
	stepOK      stepResult = iota // one event dispatched
	stepBound                     // next event is at/after the bound; nothing consumed
	stepDrained                   // queue empty (diagnosed stuck if nodes unfinished)
	stepStuck                     // budget check failed (diagnosed)
)

// stepFast pops and dispatches the next event earlier than bound.
func (x *exec) stepFast(bound int64) stepResult {
	f := x.fast
	i := f.nextBefore(bound)
	if i < 0 {
		if !f.empty() {
			return stepBound
		}
		// No pending events but nodes unfinished: a protocol bug
		// (reliable delivery always leaves a timer pending). In a
		// sharded run the coordinator owns this diagnosis (another
		// shard may still hold events).
		if x.s.par == nil {
			x.s.diagnoseStuck(x.now, "event queue drained")
		}
		return stepDrained
	}
	// Copy before releasing: handlers schedule new events, which may
	// reuse this slot or grow (and move) the arena.
	ev := f.arena[i]
	f.release(i)
	x.now = ev.at
	if why := x.s.budgetWhy(x.now, x.progress()); why != "" {
		x.s.diagnoseStuck(x.now, why)
		return stepStuck
	}
	x.curAt, x.curPri, x.curNode, x.curSub = ev.at, ev.pri, ev.node, 0
	switch ev.kind {
	case evWork:
		n := x.s.nodes[ev.node]
		n.markRange(ev.start, x.now, trace.KindWork)
		n.workDone(ev.epoch)
	case evRegion:
		n := x.s.nodes[ev.node]
		n.markRange(ev.start, x.now, trace.KindBarrier)
		n.regionDone(ev.epoch)
	case evDeliver:
		x.deliver(ev.msg)
	case evRetx:
		x.s.nodes[ev.node].out.fireRetx(ev.at, ev.pri)
	default:
		panic(fmt.Sprintf("cluster: unknown event kind %d", ev.kind))
	}
	return stepOK
}

// progress returns the lastProgress value the budget check must see:
// the lane's own in serial and parallel windows (where the coordinator
// proved the check cannot fire), the cross-shard maximum during careful
// serial stepping (exact serial semantics).
func (x *exec) progress() int64 {
	if p := x.s.par; p != nil && p.careful {
		return p.globalLP
	}
	return x.lastProgress
}
