package cluster

import "fmt"

// This file is the seam between the protocol state machines
// (central.go, tree.go, dissem.go) and their host. The protocols know
// nothing about event loops, outboxes or retransmission: they observe
// arrivals and deliveries through Arrive/Handle and act on the world
// exclusively through a ProtoEnv. Two hosts exist:
//
//   - *node (node.go): the discrete-event simulator. Send goes through
//     the reliable outbox, Release drives the node's episode machine.
//   - internal/check: the explicit-state model checker, which runs the
//     same protocol code under an adversarial scheduler and verifies
//     no-early-release and no-deadlock exhaustively.
//
// Because the checker explores a state graph rather than a timeline, a
// Proto must also be cloneable (CloneFor) and canonically encodable
// (AppendState) so reached states can be forked and deduplicated.

// ProtoEnv is everything a protocol state machine may observe or do.
type ProtoEnv interface {
	// NodeID is the identity of the participant this machine runs on.
	NodeID() int
	// Nodes is the cluster size.
	Nodes() int
	// TreeArity is the combining-tree fanout (tree protocol only).
	TreeArity() int
	// ReleasedThrough returns the node's completed-epoch horizon:
	// epochs < ReleasedThrough() are done locally. Protocols use it to
	// classify stale retransmissions.
	ReleasedThrough() int64
	// Send transmits one protocol message reliably. The protocol fills
	// Kind/To/Epoch/Round; the host owns From and Seq.
	Send(m Message)
	// Release marks epoch e complete at this node. Hosts must tolerate
	// duplicate releases of already-completed epochs (drop them) and
	// treat out-of-order releases as protocol bugs.
	Release(e int64)
}

// Proto is one per-node protocol state machine.
type Proto interface {
	// Arrive is invoked when the local node issues Arrive(e).
	Arrive(e int64)
	// Handle receives every delivered non-ack message.
	Handle(m Message)
	// PendingLine renders the in-flight epoch state for stuck reports.
	PendingLine() string
	// CloneFor returns a deep copy of the machine bound to env, used by
	// the model checker to fork a reached state.
	CloneFor(env ProtoEnv) Proto
	// AppendState appends a canonical encoding of the machine's state
	// to buf: equal states (same pending arrivals, same epoch horizon)
	// must encode identically, so the checker can deduplicate.
	AppendState(buf []byte) []byte
}

// NewProto builds the named protocol's per-node state machine over env.
// The name must be one of Protocols(); the Sim validates it in
// withDefaults, and the checker validates it in its own config.
func NewProto(protocol string, env ProtoEnv) (Proto, error) {
	switch protocol {
	case "central":
		return newCentral(env), nil
	case "tree":
		return newTree(env), nil
	case "dissemination":
		return newDissemination(env), nil
	}
	return nil, fmt.Errorf("cluster: unregistered protocol %q", protocol)
}

// appendState64 appends one int64 state word in a fixed-width canonical
// encoding (little-endian two's complement).
func appendState64(buf []byte, v int64) []byte {
	u := uint64(v)
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}
