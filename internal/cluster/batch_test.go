package cluster

import (
	"reflect"
	"sync"
	"testing"
)

// batchTestConfig is a lossy small-cluster run: drops, duplicates and
// retransmissions keep every engine subsystem busy while staying fast
// enough to replay across many seeds.
func batchTestConfig() Config {
	return Config{
		Protocol: "dissemination", Nodes: 6, Epochs: 12,
		Work: 150, WorkJitter: 60, Region: 30,
		Straggler: 3, StraggleExtra: 45,
		Net: NetConfig{Latency: 12, Jitter: 25, DropRate: 0.15, DupRate: 0.1},
	}
}

// TestBatchEquivalence pins the batch executor's contract: RunBatch's
// per-seed Results (and errors) are identical to solo Runs — across
// protocols, worker counts, and group boundaries (more seeds than one
// lockstep group holds).
func TestBatchEquivalence(t *testing.T) {
	var seeds []uint64
	for s := uint64(1); s <= 9; s++ {
		seeds = append(seeds, s)
	}
	for _, proto := range Protocols() {
		cfg := batchTestConfig()
		cfg.Protocol = proto
		want := make([]*Result, len(seeds))
		for i, seed := range seeds {
			c := cfg
			c.Seed = seed
			s, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			if want[i], err = s.Run(); err != nil {
				t.Fatalf("%s/seed=%d: solo run failed: %v", proto, seed, err)
			}
		}
		for _, workers := range []int{1, 3} {
			got, errs := RunBatch(cfg, seeds, workers, nil)
			for i, seed := range seeds {
				if errs[i] != nil {
					t.Fatalf("%s/seed=%d/workers=%d: batch run failed: %v", proto, seed, workers, errs[i])
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("%s/seed=%d/workers=%d: batch Result diverges from solo Run:\nbatch: %+v\nsolo:  %+v",
						proto, seed, workers, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchStuckEquivalence: lanes that the watchdog declares stuck
// must produce the same diagnosis and error as solo runs — the lockstep
// bound must not shift where the tick budget fires.
func TestBatchStuckEquivalence(t *testing.T) {
	cfg := batchTestConfig()
	cfg.Protocol = "central"
	cfg.WatchdogAfter = 1 << 40
	cfg.MaxTicks = 300 // every seed trips the tick budget mid-run
	seeds := []uint64{1, 2, 3, 4, 5}
	results, errs := RunBatch(cfg, seeds, 2, nil)
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, wantErr := s.Run()
		if wantErr == nil || results[i] == nil || errs[i] == nil {
			t.Fatalf("seed=%d: expected stuck runs (solo err %v, batch err %v)", seed, wantErr, errs[i])
		}
		if !reflect.DeepEqual(results[i], wantRes) {
			t.Errorf("seed=%d: stuck batch Result diverges:\nbatch: %+v\nsolo:  %+v", seed, results[i], wantRes)
		}
		if errs[i].Error() != wantErr.Error() {
			t.Errorf("seed=%d: stuck errors diverge:\nbatch: %v\nsolo:  %v", seed, errs[i], wantErr)
		}
	}
}

// TestBatchFallbackAndProgress covers the non-lockstep path (closure
// engine) plus the progress hook contract: monotone counts, one call
// per seed, total always len(seeds), and hook calls never concurrent.
func TestBatchFallbackAndProgress(t *testing.T) {
	cfg := batchTestConfig()
	cfg.Epochs = 4
	cfg.DisableFastEngine = true
	seeds := []uint64{7, 8, 9, 10}
	var mu sync.Mutex
	var calls []int
	results, errs := RunBatch(cfg, seeds, 2, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(seeds) {
			t.Errorf("progress total = %d, want %d", total, len(seeds))
		}
		calls = append(calls, done)
	})
	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("seed=%d: %v", seed, errs[i])
		}
		c := cfg
		c.Seed = seed
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := s.Run()
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("seed=%d: fallback batch Result diverges from solo Run", seed)
		}
	}
	if len(calls) != len(seeds) {
		t.Fatalf("progress called %d times, want %d", len(calls), len(seeds))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not monotone: %v", calls)
		}
	}
}

// TestBatchLanesMemoryAware pins the group-size policy's shape: small
// clusters batch many lanes, huge ones degrade gracefully to one.
func TestBatchLanesMemoryAware(t *testing.T) {
	if g := batchLanes(8); g != batchMaxLanes {
		t.Errorf("batchLanes(8) = %d, want the %d-lane cap", g, batchMaxLanes)
	}
	if g := batchLanes(4096); g < 1 || g > 8 {
		t.Errorf("batchLanes(4096) = %d, want a small group", g)
	}
	if g := batchLanes(1 << 21); g != 1 {
		t.Errorf("batchLanes(2M) = %d, want 1", g)
	}
	prev := batchMaxLanes + 1
	for _, n := range []int{8, 64, 512, 4096, 1 << 15} {
		g := batchLanes(n)
		if g > prev {
			t.Errorf("batchLanes not non-increasing: batchLanes(%d) = %d after %d", n, g, prev)
		}
		prev = g
	}
}
