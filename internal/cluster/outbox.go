package cluster

import (
	"fmt"

	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/transport"
)

// outbox is the cluster-side host of the extracted reliability layer
// (transport.Window): each logical send keeps a pending record until the
// matching ack returns; a timer retransmits on a Jacobson/Karels-estimated
// RTO with exponential backoff (capped at MaxRTO). Retransmissions reuse
// the original sequence number, so the receiver's ack matches whichever
// copy got through and duplicates are harmless. The ring, RTO policy,
// Karn's rule and the retransmit-deadline heap live in
// internal/transport/window.go — one verified codepath shared with the
// real barrierd transports; what stays here is the engine-specific timer
// arming.
//
// Timers differ per engine. The closure engine arms one heap event per
// send/retransmit, exactly as before. The typed engines instead keep the
// window's deadline queue (tq) plus a small stack of armed heap events
// (armed): a send or retransmission records its (deadline, armpri) in
// tq, and a heap event is inserted only when the new deadline undercuts
// every armed one. Acks cancel nothing — a fired event whose message was
// acked or re-armed is skipped ("lazy cancel") and the queue head
// re-armed. Because re-arming inserts the event at the original
// (deadline, armpri) key (the priority is consumed from the owner's
// local counter at arm time in every engine), every real retransmission
// still fires at exactly the key the closure engine would have given its
// per-message timer: the invariant is that the smallest armed key never
// exceeds the smallest live deadline key, so by induction an event with
// exactly that key fires, matches, and retransmits. All keys here belong
// to one node, so (deadline, pri) comparisons need no node component.
type outbox struct {
	n *node
	w transport.Window[Message]

	armed []retxKey // armed heap-event keys, descending (top = last = smallest)
}

// retxKey is the (at, pri) key of an outstanding evRetx heap event.
type retxKey struct {
	at  int64
	pri uint64
}

func newOutbox(n *node) *outbox {
	o := &outbox{n: n}
	o.w.Init()
	return o
}

// live returns the number of pending (unacked) messages, for stuck
// reports.
func (o *outbox) live() int { return o.w.Live }

// send transmits m reliably (assigning its sequence number).
func (o *outbox) send(m Message) {
	m.Seq = o.w.Assign()
	m.From = o.n.id
	x := o.n.x
	p := o.w.Claim(m.Seq)
	*p = transport.Pending[Message]{Msg: m, Seq: m.Seq, FirstSent: x.now, RTO: o.rto(), Tries: 1, InUse: true}
	o.w.Live++
	x.sends++
	if x.s.wantLog {
		x.logf(o.n.id, trace.EvSend, "send %v", m)
	}
	x.netSend(m)
	o.arm(p)
}

// arm consumes one local priority for p's retransmit timer — a heap
// closure on the slow engine, a tq entry (plus at most one heap event)
// on the typed engines.
func (o *outbox) arm(p *transport.Pending[Message]) {
	x := o.n.x
	if x.fast == nil {
		seq := p.Seq
		x.schedule(p.RTO, int32(o.n.id), o.n.nextPri(), func() { o.timeout(seq) })
		return
	}
	p.Armseq = o.n.nextPri()
	p.Deadline = x.now + p.RTO
	o.w.TQPush(transport.RetxEntry{Deadline: p.Deadline, Armseq: p.Armseq, Seq: p.Seq})
	o.ensureArmed()
}

// ensureArmed inserts an evRetx heap event at the timer queue's minimum
// key unless an armed event already covers it (armed top <= minimum).
// Armed keys strictly decrease as they are pushed, so `armed` is a
// stack with the smallest key on top — and heap events fire in key
// order, so fireRetx always pops exactly that top.
func (o *outbox) ensureArmed() {
	if o.w.TQLen() == 0 {
		return
	}
	head := o.w.TQHead()
	if len(o.armed) > 0 {
		top := o.armed[len(o.armed)-1]
		if top.at < head.Deadline || (top.at == head.Deadline && top.pri <= head.Armseq) {
			return
		}
	}
	o.armed = append(o.armed, retxKey{at: head.Deadline, pri: head.Armseq})
	o.n.x.fast.scheduleAt(head.Deadline, int32(o.n.id), head.Armseq, evRetx, 0, 0, Message{})
}

// fireRetx handles one evRetx heap event: prune acked/re-armed
// deadlines, retransmit the message whose deadline key matches the
// fired event exactly (if it is still live), and re-arm the queue head.
func (o *outbox) fireRetx(at int64, pri uint64) {
	top := o.armed[len(o.armed)-1]
	if top.at != at || top.pri != pri {
		panic(fmt.Sprintf("cluster: node %d retransmit timer fired out of order (got t=%d pri=%d, armed t=%d pri=%d)",
			o.n.id, at, pri, top.at, top.pri))
	}
	o.armed = o.armed[:len(o.armed)-1]
	for o.w.TQLen() > 0 {
		e := o.w.TQHead()
		p := o.w.Slot(e.Seq)
		if p == nil || p.Armseq != e.Armseq {
			o.w.TQPop() // stale: acked, or re-armed by a later retransmission
			continue
		}
		if e.Deadline == at && e.Armseq == pri {
			o.w.TQPop()
			o.retransmit(p)
		}
		// A live head with a later key means this event fired early
		// (its message was acked after arming); the head stays queued.
		break
	}
	o.ensureArmed()
}

// timeout is the slow engine's per-message timer callback.
func (o *outbox) timeout(seq uint64) {
	p := o.w.Slot(seq)
	if p == nil {
		return // acked since the timer was armed
	}
	o.retransmit(p)
}

// retransmit re-sends a still-unacked message, doubling its RTO.
func (o *outbox) retransmit(p *transport.Pending[Message]) {
	o.w.Backoff(p, o.n.s.cfg.MaxRTO)
	x := o.n.x
	x.retransmits++
	if x.s.wantLog {
		x.logf(o.n.id, trace.EvRetransmit, "retransmit %v try=%d rto=%d", p.Msg, p.Tries, p.RTO)
	}
	x.netSend(p.Msg)
	o.arm(p)
}

// ack retires a pending message (transport.Window applies Karn's rule:
// only never-retransmitted messages contribute RTT samples).
func (o *outbox) ack(seq uint64) {
	o.w.Ack(seq, o.n.x.now)
}

// rto returns the current retransmission timeout from the shared policy
// (estimator recommendation plus one tick of granularity, clamped to
// [InitRTO/4, MaxRTO]; InitRTO before any sample).
func (o *outbox) rto() int64 {
	return o.w.NextRTO(o.n.s.cfg.InitRTO, o.n.s.cfg.MaxRTO)
}
