package cluster

import "fmt"

// dissProto: the dissemination barrier as a message protocol. In round
// r (r = 0 .. ceil(log2 n)-1) node i sends ROUND(e, r) to node
// (i + 2^r) mod n and waits for the symmetric message from
// (i - 2^r) mod n; it may enter round r+1 only after completing round
// r. After the last round every node has transitively heard from all n
// participants, so it releases locally — no coordinator, no release
// wave, and the critical path is log2 n message latencies.
//
// Because completion is local, a fast node can finish epoch e and send
// ROUND(e+1, 0) while a peer is still collecting rounds for e; the
// per-epoch got map buffers those early messages until the local
// Arrive(e+1) starts consuming them (the sender's progress proves the
// receiver arrived at e, so buffered state stays at most one epoch
// deep).
type dissProto struct {
	n      *node
	rounds int
	// got: epoch -> set of rounds received from the expected senders.
	got map[int64]map[int]bool
	// cur: epoch -> the round the node is currently in; an entry exists
	// only once the node itself arrived at that epoch.
	cur map[int64]int
}

func newDissemination(n *node) *dissProto {
	rounds := 0
	for span := 1; span < n.s.cfg.Nodes; span *= 2 {
		rounds++
	}
	return &dissProto{
		n:      n,
		rounds: rounds,
		got:    make(map[int64]map[int]bool),
		cur:    make(map[int64]int),
	}
}

func (d *dissProto) arrive(e int64) {
	d.cur[e] = 0
	if d.rounds > 0 {
		d.sendRound(e, 0)
	}
	d.advance(e)
}

func (d *dissProto) sendRound(e int64, r int) {
	peer := (d.n.id + (1 << r)) % d.n.s.cfg.Nodes
	d.n.out.send(Message{Kind: MsgRound, To: peer, Epoch: e, Round: r})
}

// advance consumes buffered round receipts: each completed round enters
// (and sends) the next; completing the last round releases the epoch.
func (d *dissProto) advance(e int64) {
	r, arrived := d.cur[e]
	if !arrived {
		return // early message for an epoch we haven't reached
	}
	for r < d.rounds && d.got[e][r] {
		r++
		d.cur[e] = r
		if r < d.rounds {
			d.sendRound(e, r)
		}
	}
	if r >= d.rounds {
		delete(d.got, e)
		delete(d.cur, e)
		d.n.release(e)
	}
}

func (d *dissProto) handle(m Message) {
	if m.Kind != MsgRound {
		return
	}
	if m.Epoch < d.n.releasedThrough {
		return // stale retransmission of an already-completed epoch
	}
	set := d.got[m.Epoch]
	if set == nil {
		set = make(map[int]bool)
		d.got[m.Epoch] = set
	}
	if set[m.Round] {
		return // duplicate
	}
	set[m.Round] = true
	d.advance(m.Epoch)
}

func (d *dissProto) pendingLine() string {
	out := fmt.Sprintf("dissemination(rounds=%d)", d.rounds)
	for _, e := range sortedEpochs(d.cur) {
		out += fmt.Sprintf(" e=%d:round %d/%d", e, d.cur[e], d.rounds)
	}
	return out
}
