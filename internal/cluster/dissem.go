package cluster

import "fmt"

// dissProto: the dissemination barrier as a message protocol. In round
// r (r = 0 .. ceil(log2 n)-1) node i sends ROUND(e, r) to node
// (i + 2^r) mod n and waits for the symmetric message from
// (i - 2^r) mod n; it may enter round r+1 only after completing round
// r. After the last round every node has transitively heard from all n
// participants, so it releases locally — no coordinator, no release
// wave, and the critical path is log2 n message latencies.
//
// Because completion is local, a fast node can finish epoch e and send
// ROUND(e+1, 0) while a peer is still collecting rounds for e; the
// receiver buffers those early messages until its own Arrive(e+1)
// starts consuming them. The sender's progress proves the receiver
// arrived at e, so at most the two consecutive epochs
// {releasedThrough, releasedThrough+1} are ever live — consecutive
// epochs have opposite parity, so the buffers are two parity-indexed
// round bitmasks with epoch stamps (no per-epoch maps, no allocation
// on the receive path).
type dissProto struct {
	env    ProtoEnv
	rounds int
	// gotEpoch[e&1] stamps which epoch that parity slot buffers (-1 =
	// empty); gotMask[e&1] has bit r set when ROUND(e, r) was received.
	gotEpoch [2]int64
	gotMask  [2]uint64
	// curEpoch/curRound: the epoch the node itself is executing (-1
	// between epochs) and the round it is currently in.
	curEpoch int64
	curRound int
}

func newDissemination(env ProtoEnv) *dissProto {
	rounds := 0
	for span := 1; span < env.Nodes(); span *= 2 {
		rounds++
	}
	d := &dissProto{env: env, rounds: rounds, curEpoch: -1}
	d.gotEpoch[0], d.gotEpoch[1] = -1, -1
	return d
}

func (d *dissProto) Arrive(e int64) {
	d.curEpoch = e
	d.curRound = 0
	if d.rounds > 0 {
		d.sendRound(e, 0)
	}
	d.advance(e)
}

func (d *dissProto) sendRound(e int64, r int) {
	peer := (d.env.NodeID() + (1 << r)) % d.env.Nodes()
	d.env.Send(Message{Kind: MsgRound, To: peer, Epoch: e, Round: r})
}

// advance consumes buffered round receipts: each completed round enters
// (and sends) the next; completing the last round releases the epoch.
func (d *dissProto) advance(e int64) {
	if e != d.curEpoch {
		return // early message for an epoch we haven't reached
	}
	slot := e & 1
	r := d.curRound
	for r < d.rounds && d.gotEpoch[slot] == e && d.gotMask[slot]&(1<<uint(r)) != 0 {
		r++
		d.curRound = r
		if r < d.rounds {
			d.sendRound(e, r)
		}
	}
	if r >= d.rounds {
		d.gotEpoch[slot] = -1
		d.gotMask[slot] = 0
		d.curEpoch = -1
		d.env.Release(e)
	}
}

func (d *dissProto) Handle(m Message) {
	if m.Kind != MsgRound {
		return
	}
	if m.Epoch < d.env.ReleasedThrough() {
		return // stale retransmission of an already-completed epoch
	}
	slot := m.Epoch & 1
	if d.gotEpoch[slot] != m.Epoch {
		// The slot held nothing or an already-released epoch of the
		// same parity (two epochs older); claim it for m.Epoch.
		d.gotEpoch[slot] = m.Epoch
		d.gotMask[slot] = 0
	}
	bit := uint64(1) << uint(m.Round)
	if d.gotMask[slot]&bit != 0 {
		return // duplicate
	}
	d.gotMask[slot] |= bit
	d.advance(m.Epoch)
}

func (d *dissProto) PendingLine() string {
	out := fmt.Sprintf("dissemination(rounds=%d)", d.rounds)
	if d.curEpoch >= 0 {
		out += fmt.Sprintf(" e=%d:round %d/%d", d.curEpoch, d.curRound, d.rounds)
	}
	return out
}

func (d *dissProto) CloneFor(env ProtoEnv) Proto {
	cp := *d
	cp.env = env
	return &cp
}

func (d *dissProto) AppendState(buf []byte) []byte {
	buf = appendState64(buf, d.gotEpoch[0])
	buf = appendState64(buf, d.gotEpoch[1])
	buf = appendState64(buf, int64(d.gotMask[0]))
	buf = appendState64(buf, int64(d.gotMask[1]))
	buf = appendState64(buf, d.curEpoch)
	buf = appendState64(buf, int64(d.curRound))
	return buf
}
