package cluster

import (
	"strings"
	"testing"
)

// runSim builds and runs one sim, failing the test on construction
// errors. Stuck runs are returned (res.Stuck non-nil) for inspection.
func runSim(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil && res.Stuck == nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// base returns a small healthy configuration.
func base(proto string, nodes int) Config {
	return Config{
		Protocol: proto, Nodes: nodes, Epochs: 20,
		Work: 200, WorkJitter: 40, Region: 0,
		Net:  NetConfig{Latency: 10, Jitter: 0},
		Seed: 42,
	}
}

// TestProtocolsCompleteCleanNetwork: every protocol finishes every
// epoch on a lossless network across awkward node counts (1, powers of
// two, primes).
func TestProtocolsCompleteCleanNetwork(t *testing.T) {
	for _, proto := range Protocols() {
		for _, nodes := range []int{1, 2, 4, 7, 8, 13} {
			res := runSim(t, base(proto, nodes))
			if res.Stuck != nil {
				t.Fatalf("%s/n=%d stuck:\n%s", proto, nodes, res.Stuck)
			}
			if res.Retransmits != 0 {
				t.Errorf("%s/n=%d: %d spurious retransmits on a lossless network", proto, nodes, res.Retransmits)
			}
			for n := range res.ReleaseAt {
				for e, rel := range res.ReleaseAt[n] {
					if rel < res.ArriveAt[n][e] {
						t.Fatalf("%s/n=%d: node %d epoch %d released at %d before its own arrive at %d",
							proto, nodes, n, e, rel, res.ArriveAt[n][e])
					}
				}
			}
		}
	}
}

// TestRegionAbsorbsSyncLatency is the paper's claim in the network
// regime: with zero drift, the stall at region 0 is exactly the
// protocol's release latency, and a region longer than that latency
// absorbs it completely.
func TestRegionAbsorbsSyncLatency(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := base(proto, 8)
		cfg.WorkJitter = 0 // no drift: stall isolates protocol latency
		crisp := runSim(t, cfg)
		if crisp.StallPerEpoch() <= 0 {
			t.Errorf("%s: crisp barrier shows no stall (%.2f); sync latency should be visible", proto, crisp.StallPerEpoch())
		}
		cfg.Region = 40 * cfg.Net.Latency
		fuzzy := runSim(t, cfg)
		if fuzzy.Stall != 0 {
			t.Errorf("%s: a region far longer than the sync latency still stalls %d ticks", proto, fuzzy.Stall)
		}
	}
}

// TestLossyNetworkRecovers: heavy loss and duplication delay epochs but
// never wedge or corrupt them; retransmissions must actually occur.
func TestLossyNetworkRecovers(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := base(proto, 6)
		cfg.Net = NetConfig{Latency: 10, Jitter: 15, DropRate: 0.3, DupRate: 0.2}
		res := runSim(t, cfg)
		if res.Stuck != nil {
			t.Fatalf("%s stuck under loss:\n%s", proto, res.Stuck)
		}
		if res.Retransmits == 0 {
			t.Errorf("%s: 30%% drop produced no retransmissions", proto)
		}
		if res.Drops == 0 || res.Dups == 0 {
			t.Errorf("%s: fault injection inactive (drops=%d dups=%d)", proto, res.Drops, res.Dups)
		}
	}
}

// TestStragglerShowsUpAsPeerStall: slowing one node transfers stall to
// the others (they wait for it), while the straggler itself stalls
// least.
func TestStragglerShowsUpAsPeerStall(t *testing.T) {
	cfg := base("central", 4)
	cfg.WorkJitter = 0
	cfg.Straggler = 2
	cfg.StraggleExtra = 300
	res := runSim(t, cfg)
	if res.Stuck != nil {
		t.Fatalf("stuck:\n%s", res.Stuck)
	}
	for n, st := range res.PerNodeStall {
		if n == 2 {
			continue
		}
		if st <= res.PerNodeStall[2] {
			t.Errorf("node %d stall %d not above straggler's %d", n, st, res.PerNodeStall[2])
		}
	}
}

// TestWatchdogReportsStuckNodeEpoch: a fully partitioned network (100%
// drop) must be diagnosed, not hung: Run returns an error naming the
// laggiest node and epoch, with one state line per node.
func TestWatchdogReportsStuckNodeEpoch(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := base(proto, 3)
		cfg.Epochs = 5
		cfg.Net.DropRate = 1.0
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err == nil || res.Stuck == nil {
			t.Fatalf("%s: fully lossy run completed?", proto)
		}
		if res.Stuck.Epoch != 0 {
			t.Errorf("%s: stuck epoch = %d, want 0 (nothing can complete)", proto, res.Stuck.Epoch)
		}
		if len(res.Stuck.States) != cfg.Nodes {
			t.Errorf("%s: %d state lines, want %d", proto, len(res.Stuck.States), cfg.Nodes)
		}
		if !strings.Contains(err.Error(), "stuck") {
			t.Errorf("%s: error does not say stuck: %v", proto, err)
		}
	}
}

// TestZeroEpochs and tiny shapes must not panic or divide by zero.
func TestDegenerateShapes(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := base(proto, 1)
		cfg.Epochs = 0
		res := runSim(t, cfg)
		if res.Stuck != nil || res.StallPerEpoch() != 0 {
			t.Errorf("%s: zero-epoch run misbehaved: %+v", proto, res)
		}
	}
}

// TestConfigValidation: bad protocols, node counts and fault rates are
// rejected up front.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Protocol: "quantum", Nodes: 4, Epochs: 1},
		{Protocol: "central", Nodes: 0, Epochs: 1},
		{Protocol: "central", Nodes: 4, Epochs: -1},
		{Protocol: "central", Nodes: 4, Epochs: 1, Net: NetConfig{DropRate: 1.5}},
		{Protocol: "central", Nodes: 4, Epochs: 1, Net: NetConfig{DupRate: -0.1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(base("tree", 4)); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestRunTwiceRejected: a Sim is single-shot; replay needs a fresh Sim.
func TestRunTwiceRejected(t *testing.T) {
	s, err := New(base("central", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run accepted")
	}
}
