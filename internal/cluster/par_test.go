package cluster

import (
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestParallelConfigValidation pins the Shards knob's edges: clamping
// to [1, Nodes], and the two incompatibilities (closure engine, trace
// recorder).
func TestParallelConfigValidation(t *testing.T) {
	base := Config{Protocol: "central", Nodes: 4, Epochs: 1}

	cfg := base
	cfg.Shards = 64
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatalf("Shards > Nodes rejected: %v", err)
	}
	if got.Shards != 4 {
		t.Errorf("Shards clamped to %d, want Nodes (4)", got.Shards)
	}

	cfg = base
	cfg.Shards = -3
	if got, err = cfg.withDefaults(); err != nil || got.Shards != 1 {
		t.Errorf("negative Shards -> (%d, %v), want (1, nil)", got.Shards, err)
	}

	cfg = base
	cfg.Shards = 2
	cfg.DisableFastEngine = true
	if _, err = cfg.withDefaults(); err == nil {
		t.Error("Shards with DisableFastEngine accepted; want a config error")
	}
}

// TestParallelWatchdogEquivalence: the three stuck diagnoses must come
// out byte-identical on the sharded engine — report, event log, and
// counters. The coordinator's careful-mode fallback is what makes this
// exact: any window in which the budget could fire is stepped serially
// in global key order.
func TestParallelWatchdogEquivalence(t *testing.T) {
	hooks := map[string]func(string, ProtoEnv) Proto{
		"event queue drained":                       func(string, ProtoEnv) Proto { return muteProto{} },
		"no epoch completed within watchdog window": func(_ string, env ProtoEnv) Proto { return &chatterProto{env: env} },
		"tick budget exhausted":                     func(_ string, env ProtoEnv) Proto { return &chatterProto{env: env} },
	}
	for why, hook := range hooks {
		cfg := watchdogConfig(false)
		cfg.LogEvents = true
		switch why {
		case "no epoch completed within watchdog window":
			cfg.WatchdogAfter = 500
		case "tick budget exhausted":
			cfg.WatchdogAfter = 1 << 40
			cfg.MaxTicks = 300
		}
		newProtoHook = hook
		run := func(shards int) (*Result, string, string) {
			c := cfg
			c.Shards = shards
			s, err := New(c)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", why, shards, err)
			}
			res, rerr := s.Run()
			if rerr == nil {
				t.Fatalf("%s/shards=%d: broken protocol completed", why, shards)
			}
			return res, strings.Join(s.EventLog(), "\n"), rerr.Error()
		}
		serRes, serLog, serErr := run(1)
		parRes, parLog, parErr := run(3)
		newProtoHook = nil
		if serRes.Stuck == nil || serRes.Stuck.Why != why {
			t.Fatalf("%s: serial diagnosis = %+v", why, serRes.Stuck)
		}
		if !reflect.DeepEqual(serRes, parRes) {
			t.Errorf("%s: results diverge:\nserial:   %+v\nparallel: %+v", why, serRes.Stuck, parRes.Stuck)
		}
		if serLog != parLog {
			t.Errorf("%s: event logs diverge:\n%s", why, firstDiff(parLog, serLog))
		}
		if serErr != parErr {
			t.Errorf("%s: errors diverge:\nserial:   %s\nparallel: %s", why, serErr, parErr)
		}
	}
}

// TestParallelEngineZeroAllocSteadyState mirrors the serial check: once
// arenas, wheels, inbox cells and the window barriers have reached
// their high-water marks, a whole lookahead window — worker dispatch,
// cross-shard inbox traffic, barrier crossings and the coordinator's
// bookkeeping — allocates nothing.
func TestParallelEngineZeroAllocSteadyState(t *testing.T) {
	cfg := Config{
		Protocol: "dissemination", Nodes: 8, Epochs: 1 << 20,
		Work: 40, WorkJitter: 10, Region: 20,
		Net:    NetConfig{Latency: 8, Jitter: 6, DropRate: 0.05, DupRate: 0.02},
		Seed:   99,
		Shards: 2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the coordinator by hand (Run's inner loop) so allocations
	// can be sampled mid-flight.
	s.ran = true
	s.start()
	p := s.par
	p.startWorkers()
	defer p.shutdown()
	step := func(windows int) {
		for i := 0; i < windows; i++ {
			if !p.stepWindow() {
				t.Fatalf("run stopped during steady state: %v", s.stuck)
			}
		}
	}
	step(20000) // warm past every pool's and bucket's high-water mark
	avg := testing.AllocsPerRun(10, func() { step(200) })
	if avg != 0 {
		t.Errorf("steady-state parallel window allocates (%.1f allocs per 200 windows)", avg)
	}
	if p.doneCount() == len(s.nodes) {
		t.Fatal("run completed during measurement; raise Epochs")
	}
}

// parGateConfig is the lossy 1024-node run the parallel speedup gate
// times (one protocol: the gate measures the engine, not the protocol
// spread, and dissemination generates the densest cross-shard traffic).
func parGateConfig() Config {
	return Config{
		Protocol: "dissemination", Nodes: 1024, Epochs: 20,
		Work: 120, WorkJitter: 40, Region: 30,
		Net:  NetConfig{Latency: 12, Jitter: 25, DropRate: 0.2, DupRate: 0.08},
		Seed: 1234,
	}
}

// TestParallelEngineSpeedupGate is the perf regression gate (run via
// `make bench-gate` with BENCH_GATE=1): the sharded engine must be at
// least 2x faster than the serial fast engine on the lossy 1024-node
// run. Self-skips below 4 cores — the contract is defined at
// GOMAXPROCS >= 4; fewer cores cannot show the parallelism.
func TestParallelEngineSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 to run the wall-clock parallel-engine gate")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: the 2x parallel gate is defined at >= 4 cores", runtime.GOMAXPROCS(0))
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	measure := func(sh int) time.Duration {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			cfg := parGateConfig()
			cfg.Shards = sh
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			res, err := s.Run()
			if err != nil || res.Stuck != nil {
				t.Fatalf("shards=%d: gate run failed: %v", sh, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	par := measure(shards)
	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, parallel(%d shards) %v: speedup %.2fx", serial, shards, par, speedup)
	if speedup < 2.0 {
		t.Fatalf("parallel engine speedup %.2fx below the 2x gate (serial %v, parallel %v)", speedup, serial, par)
	}
}
