package cluster

import "fmt"

// MsgKind is the protocol message type.
type MsgKind uint8

// Protocol message kinds.
const (
	MsgArrive  MsgKind = iota // participant -> coordinator/parent: I (and my subtree) arrived at Epoch
	MsgRelease                // coordinator/parent -> down: Epoch is complete
	MsgRound                  // dissemination round message (Round field)
	MsgAck                    // receiver -> sender: stop retransmitting Seq
)

// String returns the kind's wire name.
func (k MsgKind) String() string {
	switch k {
	case MsgArrive:
		return "arrive"
	case MsgRelease:
		return "release"
	case MsgRound:
		return "round"
	case MsgAck:
		return "ack"
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Message is one protocol datagram. Epoch tags every payload so stale
// and early deliveries are classifiable; Seq is unique per sender and
// stable across retransmissions and network duplicates, so an Ack names
// exactly one logical send and duplicate deliveries are detectable.
type Message struct {
	Kind  MsgKind
	From  int
	To    int
	Epoch int64
	Round int    // dissemination round (MsgRound only)
	Seq   uint64 // per-sender sequence number; for MsgAck, the seq being acked
}

// String renders the message for event logs.
func (m Message) String() string {
	if m.Kind == MsgRound {
		return fmt.Sprintf("%s e=%d r=%d %d->%d seq=%d", m.Kind, m.Epoch, m.Round, m.From, m.To, m.Seq)
	}
	return fmt.Sprintf("%s e=%d %d->%d seq=%d", m.Kind, m.Epoch, m.From, m.To, m.Seq)
}
