package cluster

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the multi-seed batch executor: RunBatch replays one
// configuration across many seeds, the second parallel axis next to
// Config.Shards (which parallelizes a single run). Seeds are grouped
// into lockstep lane groups — structure-of-arrays batches of
// independent Sims stepped window by window through shared simulated
// time — and the groups are spread over a worker pool.
//
// Why lockstep instead of one seed after another: every lane of a group
// replays the same configuration, so at any window the lanes sit in the
// same protocol phase, dispatch the same event kinds, and walk
// same-shaped wheels and outbox rings. Interleaving them in small time
// windows keeps those structurally identical accesses adjacent — the
// branch predictor and the cache amortize one config's schedule over K
// replays — while the flat per-lane arrays (execs, node counts,
// remaining-lane bookkeeping) keep the batch loop itself free of
// per-seed allocation. Group size is memory-aware: lanes per group
// shrink as the per-lane footprint grows, so a group's combined working
// set stays cache-resident instead of thrashing.
//
// Equivalence: a lane is an ordinary serial-fast-engine Sim driven by
// the same bounded stepFast the solo Run loop uses, stopped at the
// same completion event and subject to the same per-event budget
// checks. RunBatch therefore returns per-seed Results (and stuck
// errors) identical to len(seeds) solo Runs — TestBatchEquivalence pins
// DeepEqual on both.

// batchGroupBytes is the target combined working set of one lockstep
// lane group; batchNodeBytes is a rough per-node footprint estimate
// (node + outbox ring + wheel/arena share).
const (
	batchGroupBytes = 32 << 20
	batchNodeBytes  = 2048
	batchMaxLanes   = 64
)

// batchLanes is the memory-aware lockstep group size for a cluster of
// the given node count.
func batchLanes(nodes int) int {
	g := batchGroupBytes / (nodes*batchNodeBytes + 1)
	if g < 1 {
		return 1
	}
	if g > batchMaxLanes {
		return batchMaxLanes
	}
	return g
}

// RunBatch replays cfg once per seed (cfg.Seed is overwritten) and
// returns per-seed Results and errors, indexed like seeds. Up to
// workers groups run concurrently (workers <= 0 selects GOMAXPROCS);
// results are deterministic and identical to solo Runs at any worker
// count. progress, when non-nil, is called after each seed completes
// with the completed and total counts (serialized; never concurrently).
//
// Configurations the lockstep fast path cannot share — a trace
// Recorder, the closure engine, or intra-run sharding — fall back to
// solo Runs on the same worker pool. A shared cfg.Recorder is only safe
// at workers == 1.
func RunBatch(cfg Config, seeds []uint64, workers int, progress func(done, total int)) ([]*Result, []error) {
	total := len(seeds)
	results := make([]*Result, total)
	errs := make([]error, total)
	if total == 0 {
		return results, errs
	}
	var mu sync.Mutex
	done := 0
	report := func() {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		progress(done, total)
		mu.Unlock()
	}

	lockstep := cfg.Recorder == nil && !cfg.DisableFastEngine && cfg.Shards <= 1
	group := 1
	if lockstep {
		group = batchLanes(cfg.Nodes)
	}
	chunks := (total + group - 1) / group
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * group
				hi := lo + group
				if hi > total {
					hi = total
				}
				if lockstep {
					runLockstep(cfg, seeds[lo:hi], results[lo:hi], errs[lo:hi], report)
				} else {
					for i := lo; i < hi; i++ {
						c := cfg
						c.Seed = seeds[i]
						results[i], errs[i] = runSolo(c)
						report()
					}
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// runSolo is the fallback path: one ordinary Run per seed.
func runSolo(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// runLockstep advances one lane group: K independent Sims of the same
// configuration stepped through shared lookahead-sized time windows.
// Each window starts at the earliest pending event across live lanes
// and spans one wheel length, so the lane owning that event always
// dispatches, every lane stays within one wheel rotation of the group
// clock, and the loop provably terminates (budget checks bound every
// lane's lifetime).
func runLockstep(cfg Config, seeds []uint64, results []*Result, errs []error, report func()) {
	k := len(seeds)
	// Flat per-lane state: the batch loop reads these arrays, not the
	// Sims, so the window scan touches a few contiguous words per lane.
	sims := make([]*Sim, k)
	execs := make([]*exec, k)
	nodeCount := make([]int, k)
	live := make([]bool, k)
	nlive := 0
	var span int64
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		s, err := New(c)
		if err != nil {
			errs[i] = err
			report()
			continue
		}
		s.ran = true
		s.start()
		sims[i], execs[i], nodeCount[i] = s, s.ex, len(s.nodes)
		live[i] = true
		nlive++
		span = int64(len(s.ex.fast.wheel))
	}
	for nlive > 0 {
		// Next window: [min pending time, +one wheel span).
		var w int64
		seen := false
		for i := range execs {
			if !live[i] {
				continue
			}
			if t, has := execs[i].fast.nextAt(); has && (!seen || t < w) {
				w, seen = t, true
			}
		}
		bound := int64(math.MaxInt64) // all queues drained: let every lane diagnose
		if seen {
			bound = w + span
		}
		for i := range execs {
			if !live[i] {
				continue
			}
			x := execs[i]
			finished := false
			for x.doneNodes < nodeCount[i] {
				switch x.stepFast(bound) {
				case stepOK:
					continue
				case stepBound:
				default: // drained or stuck: diagnosed inside stepFast
					finished = true
				}
				break
			}
			if finished || x.doneNodes >= nodeCount[i] {
				results[i], errs[i] = sims[i].finish()
				live[i] = false
				nlive--
				report()
			}
		}
	}
}
