package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// faultyConfig is a run with every fault class enabled — drop,
// duplication, jitter (hence reordering) and a straggler — so the
// determinism guarantee is tested where it matters.
func faultyConfig(proto string, seed uint64) Config {
	return Config{
		Protocol: proto, Nodes: 6, Epochs: 15,
		Work: 150, WorkJitter: 60, Region: 30,
		Straggler: 3, StraggleExtra: 45,
		Net:       NetConfig{Latency: 12, Jitter: 25, DropRate: 0.15, DupRate: 0.1},
		Seed:      seed,
		LogEvents: true,
	}
}

// collectLog runs the config and returns the full event log as one
// string plus the result.
func collectLog(t *testing.T, cfg Config) (string, *Result) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("%s: %v", cfg.Protocol, err)
	}
	return strings.Join(s.EventLog(), "\n"), res
}

// TestSameSeedByteIdenticalEventLog: replayability. Two runs of the
// same seeded config — drops, duplicates, jitter and all — must produce
// byte-identical event logs and identical summary counters. This is
// the property that makes cluster failures debuggable: any run can be
// re-executed exactly.
func TestSameSeedByteIdenticalEventLog(t *testing.T) {
	for _, proto := range Protocols() {
		a, resA := collectLog(t, faultyConfig(proto, 7))
		b, resB := collectLog(t, faultyConfig(proto, 7))
		if a != b {
			t.Fatalf("%s: same seed produced different event logs:\n--- first run line diff ---\n%s",
				proto, firstDiff(a, b))
		}
		if resA.String() != resB.String() {
			t.Errorf("%s: same seed produced different results:\n%v\n%v", proto, resA, resB)
		}
		if a == "" {
			t.Fatalf("%s: empty event log with LogEvents set", proto)
		}
	}
}

// TestDifferentSeedsDifferentDeliveryOrder: the seed must actually
// steer the fault schedule — different seeds give different delivery
// orders (and so different logs).
func TestDifferentSeedsDifferentDeliveryOrder(t *testing.T) {
	for _, proto := range Protocols() {
		a, _ := collectLog(t, faultyConfig(proto, 7))
		b, _ := collectLog(t, faultyConfig(proto, 8))
		if a == b {
			t.Errorf("%s: seeds 7 and 8 produced identical event logs", proto)
		}
	}
}

// firstDiff returns the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  %s\n  %s", i, al[i], bl[i])
		}
	}
	return "logs differ in length"
}
