package cluster

import (
	"sync"

	"fuzzybarrier/internal/core"
)

// parEngine runs one simulation across Config.Shards lanes using
// conservative parallel discrete-event simulation (Chandy–Misra–Bryant
// style). Nodes are split into contiguous shards; each shard owns its
// nodes, their outboxes, and a private fast engine, and the only
// cross-shard traffic is message delivery. The conservative lookahead
// is the minimum link delay (Net.Latency >= 1): a message sent at time
// t arrives no earlier than t + Latency, so if every shard has
// simulated up to a common window start W, no event dispatched inside
// the window [W, W+Latency) can create another event inside it on a
// *different* shard. Shards therefore advance window by window with no
// locks at all: cross-shard deliveries are appended to single-writer
// per-(target, source) inboxes and drained by the coordinator between
// windows, when no worker is running.
//
// The window barrier is the repo's own primitive: workers and the
// coordinator synchronize each window through two core.HierBarrier
// phases (start: window parameters published; end: all shard state and
// inboxes quiescent) — the simulator of barriers is itself synchronized
// by one.
//
// Determinism: every event key and RNG draw is computed from state
// owned by one node (sim.go), each shard dispatches its events in
// canonical key order, and no event's execution can depend on an event
// with a larger key (same-shard: dispatched in order; cross-shard:
// influence only via messages, which land at least a full window
// later). The interleaving of shards inside a window is therefore
// unobservable, and the run is byte-identical to the serial engines —
// logs included, via the keyed-line merge in sim.go.
//
// Two situations make a window's outcome depend on global dispatch
// order after all: the watchdog/tick budget (checked against every
// event in serial) and run completion (the serial loop stops at the
// exact event that retires the last node). The coordinator proves per
// window that neither can occur — the budget check cannot fire at
// (bound-1, min shard progress), and no run can complete in a window
// unless every unfinished node was one release away at its start
// (consecutive releases of a node are at least one lookahead apart,
// because each depends on a message hop) — and otherwise falls back to
// "careful" mode: it steps that window's events itself, one globally
// minimal key at a time across shards, reproducing serial semantics
// exactly.
type parEngine struct {
	s         *Sim
	shards    []*exec
	shardOf   []int32 // node id -> owning shard
	lookahead int64

	// inbox[to][from] is appended by shard `from` while a window runs
	// and drained by the coordinator between windows; exactly one
	// goroutine touches a cell at any time.
	inbox [][][]inEvent

	start, end core.SplitBarrier // window barriers (shards + coordinator)
	winBound   int64             // published at the start barrier
	stop       bool
	wg         sync.WaitGroup

	careful  bool  // careful serial window in progress
	globalLP int64 // cross-shard max lastProgress, maintained in careful mode
}

// inEvent is one cross-shard delivery awaiting its owner's wheel.
type inEvent struct {
	at  int64
	pri uint64
	msg Message
}

func newParEngine(s *Sim) *parEngine {
	ns := s.cfg.Shards
	p := &parEngine{
		s:         s,
		shardOf:   make([]int32, s.cfg.Nodes),
		lookahead: s.cfg.Net.Latency,
		start:     core.NewHierBarrier(ns + 1),
		end:       core.NewHierBarrier(ns + 1),
	}
	for i := 0; i < ns; i++ {
		p.shards = append(p.shards, s.newExec(int32(i)))
	}
	for id := range p.shardOf {
		p.shardOf[id] = int32(id * ns / s.cfg.Nodes)
	}
	p.inbox = make([][][]inEvent, ns)
	for i := range p.inbox {
		p.inbox[i] = make([][]inEvent, ns)
	}
	return p
}

// run is the coordinator loop.
func (p *parEngine) run() {
	p.startWorkers()
	n := len(p.s.nodes)
	for p.doneCount() < n {
		if !p.stepWindow() {
			break // stuck; diagnosed inside
		}
	}
	p.shutdown()
}

// startWorkers launches one goroutine per shard, parked at the start
// barrier.
func (p *parEngine) startWorkers() {
	for _, x := range p.shards {
		p.wg.Add(1)
		go p.worker(x)
	}
}

// stepWindow advances the whole simulation by one lookahead window;
// false means the run was diagnosed stuck.
func (p *parEngine) stepWindow() bool {
	s := p.s
	p.drainInboxes()
	w, ok := p.minNextAt()
	if !ok {
		// No pending events anywhere but nodes unfinished: a protocol
		// bug (reliable delivery always leaves a timer pending).
		s.diagnoseStuck(p.maxNow(), "event queue drained")
		return false
	}
	bound := w + p.lookahead
	if s.budgetWhy(bound-1, p.minLP()) != "" || p.completionPossible() {
		return p.runCareful(bound)
	}
	p.winBound = bound
	p.start.Await()
	// Workers dispatch their shards' events with at < bound.
	p.end.Await()
	return true
}

// shutdown releases the parked workers with the stop flag raised and
// joins them.
func (p *parEngine) shutdown() {
	p.stop = true
	p.start.Await()
	p.wg.Wait()
}

// worker advances one shard through successive windows.
func (p *parEngine) worker(x *exec) {
	defer p.wg.Done()
	for {
		p.start.Await()
		if p.stop {
			return
		}
		bound := p.winBound
		for x.stepFast(bound) == stepOK {
		}
		p.end.Await()
	}
}

// drainInboxes moves every pending cross-shard delivery into its
// owner's wheel. Arrivals always carry at >= the previous window's
// bound >= the owner's wheel time, so none can land in the past.
func (p *parEngine) drainInboxes() {
	for to, row := range p.inbox {
		x := p.shards[to]
		for from, cell := range row {
			for _, ie := range cell {
				x.fast.scheduleAt(ie.at, int32(ie.msg.To), ie.pri, evDeliver, 0, 0, ie.msg)
			}
			row[from] = cell[:0]
		}
	}
}

// minNextAt returns the earliest pending event time across shards.
func (p *parEngine) minNextAt() (int64, bool) {
	var min int64
	ok := false
	for _, x := range p.shards {
		if t, has := x.fast.nextAt(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// doneCount sums finished nodes across shards.
func (p *parEngine) doneCount() int {
	n := 0
	for _, x := range p.shards {
		n += x.doneNodes
	}
	return n
}

// maxNow is the globally latest dispatched event time — what the serial
// engine's clock would read.
func (p *parEngine) maxNow() int64 {
	var t int64
	for _, x := range p.shards {
		if x.now > t {
			t = x.now
		}
	}
	return t
}

// minLP is the stalest shard's last local epoch completion: the
// conservative bound under which the budget check provably cannot fire
// for any shard inside the window.
func (p *parEngine) minLP() int64 {
	lp := p.shards[0].lastProgress
	for _, x := range p.shards[1:] {
		if x.lastProgress < lp {
			lp = x.lastProgress
		}
	}
	return lp
}

// maxLP is the true (serial-semantics) lastProgress: the most recent
// epoch completion anywhere.
func (p *parEngine) maxLP() int64 {
	lp := p.shards[0].lastProgress
	for _, x := range p.shards[1:] {
		if x.lastProgress > lp {
			lp = x.lastProgress
		}
	}
	return lp
}

// completionPossible reports whether the run could complete within one
// lookahead window: only if every unfinished node is exactly one
// release from done. (A node's consecutive releases are >= one link
// latency apart — each causally includes a message hop carrying its own
// previous arrival — so a node more than one release away cannot retire
// inside a window, and with any such node the run cannot end there.)
func (p *parEngine) completionPossible() bool {
	last := int64(p.s.cfg.Epochs) - 1
	for _, n := range p.s.nodes {
		if !n.done && n.releasedThrough < last {
			return false
		}
	}
	return true
}

// runCareful executes one window with exact serial semantics on the
// coordinator: repeatedly dispatch the globally smallest pending key
// across shards (the workers are parked at the start barrier, so the
// coordinator owns all shard state), applying the per-event budget
// check against the cross-shard progress maximum and stopping the
// instant the last node retires. Returns false when the run was
// diagnosed stuck.
func (p *parEngine) runCareful(bound int64) bool {
	p.careful = true
	defer func() { p.careful = false }()
	p.globalLP = p.maxLP()
	n := len(p.s.nodes)
	for p.doneCount() < n {
		var best *exec
		var bestKey heapEntry
		for _, x := range p.shards {
			if k, ok := x.fast.peekKey(bound); ok && (best == nil || keyLess(k, bestKey)) {
				best, bestKey = x, k
			}
		}
		if best == nil {
			return true // window exhausted; outer loop drains and continues
		}
		switch best.stepFast(bound) {
		case stepStuck:
			return false
		case stepOK:
			if best.lastProgress > p.globalLP {
				p.globalLP = best.lastProgress
			}
		}
	}
	return true
}
