package cluster

import (
	"fmt"

	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// node is one cluster participant. Its life is the paper's episode
// structure: per epoch e, do non-barrier work, Arrive(e), execute the
// barrier region, then Wait(e) — which blocks only if the protocol has
// not released e by the time the region ends. The protocol's release
// latency is therefore overlapped with (absorbed by) the region, and
// the node's stall counter records exactly the unabsorbed remainder.
type node struct {
	id    int
	s     *Sim
	rng   *rng // work-jitter draws
	out   *outbox
	proto Proto

	epoch           int64 // epoch currently being executed
	releasedThrough int64 // epochs < this have completed locally
	blocked         bool
	blockedAt       int64
	done            bool

	stall     int64
	arriveAt  []int64 // per-epoch Arrive timestamps
	releaseAt []int64 // per-epoch release (Wait-satisfiable) timestamps
}

// newProtoHook, when non-nil, replaces NewProto during node
// construction. White-box tests use it to inject broken protocol
// machines — e.g. one that never sends — to exercise failure paths
// (watchdog diagnosis on a drained event queue) the real protocols
// cannot reach.
var newProtoHook func(protocol string, env ProtoEnv) Proto

func newNode(s *Sim, id int) *node {
	n := &node{
		id:        id,
		s:         s,
		rng:       newRNG(mix(s.cfg.Seed, uint64(id)+1)),
		arriveAt:  make([]int64, s.cfg.Epochs),
		releaseAt: make([]int64, s.cfg.Epochs),
	}
	n.out = newOutbox(n)
	if newProtoHook != nil {
		n.proto = newProtoHook(s.cfg.Protocol, n)
		return n
	}
	p, err := NewProto(s.cfg.Protocol, n)
	if err != nil {
		// withDefaults validated the name; reaching here is a bug.
		panic(err)
	}
	n.proto = p
	return n
}

// node implements ProtoEnv: the protocol machines act on the simulation
// through these methods (and through them alone), which is what lets
// internal/check run the same machines under its adversarial scheduler.

func (n *node) NodeID() int            { return n.id }
func (n *node) Nodes() int             { return n.s.cfg.Nodes }
func (n *node) TreeArity() int         { return n.s.cfg.TreeArity }
func (n *node) ReleasedThrough() int64 { return n.releasedThrough }
func (n *node) Send(m Message)         { n.out.send(m) }
func (n *node) Release(e int64)        { n.release(e) }

// startEpoch schedules epoch e's non-barrier work, or retires the node
// when every epoch is done.
func (n *node) startEpoch(e int64) {
	if e >= int64(n.s.cfg.Epochs) {
		n.done = true
		n.s.doneNodes++
		return
	}
	n.epoch = e
	w := n.s.cfg.Work
	if n.s.cfg.WorkJitter > 0 {
		w += n.rng.intN(n.s.cfg.WorkJitter + 1)
	}
	if n.s.cfg.StraggleExtra > 0 && n.id == n.s.cfg.Straggler {
		w += n.s.cfg.StraggleExtra
	}
	n.s.schedWork(n, e, w)
}

// workDone is the node's Arrive(e): record the timestamp, let the
// protocol start synchronizing, and begin the barrier region.
func (n *node) workDone(e int64) {
	n.arriveAt[e] = n.s.now
	n.proto.Arrive(e)
	n.s.schedRegion(n, e, n.s.cfg.Region)
}

// regionDone is the node's Wait(e): free if the release already
// arrived during the region, blocked otherwise.
func (n *node) regionDone(e int64) {
	if n.releasedThrough > e {
		n.startEpoch(e + 1)
		return
	}
	n.blocked = true
	n.blockedAt = n.s.now
}

// release marks epoch e complete at this node; the protocols call it
// exactly once per epoch (their receive paths drop stale duplicates
// first, and epochs complete in order by construction — a node cannot
// arrive at e+1 before releasing e, and no protocol releases e before
// every node arrived at e).
func (n *node) release(e int64) {
	if e < n.releasedThrough {
		return // duplicate release: already complete, ignore
	}
	if e > n.releasedThrough {
		panic(fmt.Sprintf("cluster: node %d released epoch %d before %d", n.id, e, n.releasedThrough))
	}
	n.releaseAt[e] = n.s.now
	n.releasedThrough = e + 1
	n.s.lastProgress = n.s.now
	if rec := n.s.cfg.Recorder; rec != nil {
		rec.Mark(n.s.now, n.id, trace.KindSync)
		rec.Eventf(n.s.now, n.id, "epoch %d complete", e)
	}
	if n.blocked {
		n.blocked = false
		n.stall += n.s.now - n.blockedAt
		n.markRange(n.blockedAt, n.s.now, trace.KindStall)
		n.startEpoch(e + 1)
	}
}

// handle dispatches one delivered message: acks feed the outbox; every
// other kind is acknowledged (so the sender stops retransmitting) and
// handed to the protocol, whose handlers are idempotent — a duplicate
// delivery re-acks and re-applies a no-op.
func (n *node) handle(m Message) {
	if m.Kind == MsgAck {
		n.out.ack(m.Seq)
		return
	}
	n.s.acks++
	n.s.net.send(Message{Kind: MsgAck, From: n.id, To: m.From, Epoch: m.Epoch, Seq: m.Seq})
	n.proto.Handle(m)
}

// markRange paints [from, to) on the node's trace lane; a nil recorder
// makes this free.
func (n *node) markRange(from, to int64, k trace.Kind) {
	rec := n.s.cfg.Recorder
	if rec == nil {
		return
	}
	for c := from; c < to; c++ {
		rec.Mark(c, n.id, k)
	}
}

// stateLine renders the node's position for stuck reports.
func (n *node) stateLine() string {
	switch {
	case n.done:
		return "done"
	case n.blocked:
		return fmt.Sprintf("blocked in Wait(epoch %d) since t=%d; unacked=%d; %s",
			n.epoch, n.blockedAt, n.out.live, n.proto.PendingLine())
	default:
		return fmt.Sprintf("executing epoch %d (released through %d); unacked=%d; %s",
			n.epoch, n.releasedThrough, n.out.live, n.proto.PendingLine())
	}
}

// outbox is the reliable-delivery layer: each logical send keeps a
// pending record until the matching ack returns; a timer retransmits on
// a Jacobson/Karels-estimated RTO with exponential backoff (capped at
// MaxRTO). Retransmissions reuse the original sequence number, so the
// receiver's ack matches whichever copy got through and duplicates are
// harmless.
//
// Pending records live in a power-of-two ring indexed by sequence
// number (seq & mask), recycled in place — no map, no per-send
// allocation. The ring grows only while the in-flight window exceeds
// its previous high-water mark.
//
// Timers differ per engine. The closure engine arms one heap event per
// send/retransmit, exactly as before. The fast engine instead keeps a
// per-outbox deadline queue (tq) plus a small stack of armed heap
// events (armed): a send or retransmission records its
// (deadline, armseq) in tq, and a heap event is inserted only when the
// new deadline undercuts every armed one. Acks cancel nothing — a
// fired event whose message was acked or re-armed is skipped
// ("lazy cancel") and the queue head re-armed. Because re-arming
// inserts the event at the original (deadline, armseq) key (armseq is
// consumed at arm time in both engines), every real retransmission
// still fires at exactly the key the closure engine would have given
// its per-message timer: the invariant is that the smallest armed key
// never exceeds the smallest live deadline key, so by induction an
// event with exactly that key fires, matches, and retransmits.
type outbox struct {
	n    *node
	seq  uint64
	rtt  stats.RTTEstimator
	live int // pending (unacked) messages, for stuck reports

	slots []pendingMsg // ring keyed by m.Seq & mask
	mask  uint64

	tq    []retxEntry // min-heap on (deadline, armseq); lazily pruned
	armed []retxKey   // armed heap-event keys, descending (top = last = smallest)
}

type pendingMsg struct {
	m         Message
	firstSent int64
	rto       int64
	deadline  int64  // fast engine: current retransmit deadline
	armseq    uint64 // fast engine: sequence consumed when that deadline was armed
	tries     int
	inUse     bool
}

// retxEntry is one armed deadline in the per-outbox timer queue.
type retxEntry struct {
	deadline int64
	armseq   uint64
	seq      uint64 // message sequence this deadline guards
}

// retxKey is the (at, seq) key of an outstanding evRetx heap event.
type retxKey struct {
	at  int64
	seq uint64
}

func newOutbox(n *node) *outbox {
	return &outbox{n: n, slots: make([]pendingMsg, 8), mask: 7}
}

// slot returns the live pending record for seq, or nil.
func (o *outbox) slot(seq uint64) *pendingMsg {
	p := &o.slots[seq&o.mask]
	if p.inUse && p.m.Seq == seq {
		return p
	}
	return nil
}

// claimSlot returns a free ring slot for seq, growing the ring past its
// high-water mark if the in-flight window collides.
func (o *outbox) claimSlot(seq uint64) *pendingMsg {
	for o.slots[seq&o.mask].inUse {
		o.grow()
	}
	return &o.slots[seq&o.mask]
}

// grow doubles the ring until every live record (and by construction
// any newly claimed seq) lands in a distinct slot.
func (o *outbox) grow() {
	size := len(o.slots)
	for {
		size *= 2
		ns := make([]pendingMsg, size)
		nm := uint64(size - 1)
		ok := true
		for i := range o.slots {
			p := &o.slots[i]
			if !p.inUse {
				continue
			}
			j := p.m.Seq & nm
			if ns[j].inUse {
				ok = false
				break
			}
			ns[j] = *p
		}
		if ok {
			o.slots, o.mask = ns, nm
			return
		}
	}
}

// send transmits m reliably (assigning its sequence number).
func (o *outbox) send(m Message) {
	o.seq++
	m.Seq = o.seq
	m.From = o.n.id
	s := o.n.s
	p := o.claimSlot(m.Seq)
	*p = pendingMsg{m: m, firstSent: s.now, rto: o.rto(), tries: 1, inUse: true}
	o.live++
	s.sends++
	if s.wantLog {
		s.logf(o.n.id, trace.EvSend, "send %v", m)
	}
	s.net.send(m)
	o.arm(p)
}

// arm consumes one sequence number for p's retransmit timer — a heap
// closure on the slow engine, a tq entry (plus at most one heap event)
// on the fast engine.
func (o *outbox) arm(p *pendingMsg) {
	s := o.n.s
	if s.fast == nil {
		seq := p.m.Seq
		s.schedule(p.rto, func() { o.timeout(seq) })
		return
	}
	s.eseq++
	p.armseq = s.eseq
	p.deadline = s.now + p.rto
	o.tqPush(retxEntry{deadline: p.deadline, armseq: p.armseq, seq: p.m.Seq})
	o.ensureArmed()
}

// ensureArmed inserts an evRetx heap event at the timer queue's minimum
// key unless an armed event already covers it (armed top <= minimum).
// Armed keys strictly decrease as they are pushed, so `armed` is a
// stack with the smallest key on top — and heap events fire in key
// order, so fireRetx always pops exactly that top.
func (o *outbox) ensureArmed() {
	if len(o.tq) == 0 {
		return
	}
	head := o.tq[0]
	if len(o.armed) > 0 {
		top := o.armed[len(o.armed)-1]
		if top.at < head.deadline || (top.at == head.deadline && top.seq <= head.armseq) {
			return
		}
	}
	o.armed = append(o.armed, retxKey{at: head.deadline, seq: head.armseq})
	o.n.s.fast.scheduleAt(head.deadline, head.armseq, evRetx, int32(o.n.id), 0, 0, Message{})
}

// fireRetx handles one evRetx heap event: prune acked/re-armed
// deadlines, retransmit the message whose deadline key matches the
// fired event exactly (if it is still live), and re-arm the queue head.
func (o *outbox) fireRetx(at int64, seq uint64) {
	top := o.armed[len(o.armed)-1]
	if top.at != at || top.seq != seq {
		panic(fmt.Sprintf("cluster: node %d retransmit timer fired out of order (got t=%d seq=%d, armed t=%d seq=%d)",
			o.n.id, at, seq, top.at, top.seq))
	}
	o.armed = o.armed[:len(o.armed)-1]
	for len(o.tq) > 0 {
		e := o.tq[0]
		p := o.slot(e.seq)
		if p == nil || p.armseq != e.armseq {
			o.tqPop() // stale: acked, or re-armed by a later retransmission
			continue
		}
		if e.deadline == at && e.armseq == seq {
			o.tqPop()
			o.retransmit(p)
		}
		// A live head with a later key means this event fired early
		// (its message was acked after arming); the head stays queued.
		break
	}
	o.ensureArmed()
}

// timeout is the slow engine's per-message timer callback.
func (o *outbox) timeout(seq uint64) {
	p := o.slot(seq)
	if p == nil {
		return // acked since the timer was armed
	}
	o.retransmit(p)
}

// retransmit re-sends a still-unacked message, doubling its RTO.
func (o *outbox) retransmit(p *pendingMsg) {
	p.tries++
	p.rto *= 2
	if p.rto > o.n.s.cfg.MaxRTO {
		p.rto = o.n.s.cfg.MaxRTO
	}
	s := o.n.s
	s.retransmits++
	if s.wantLog {
		s.logf(o.n.id, trace.EvRetransmit, "retransmit %v try=%d rto=%d", p.m, p.tries, p.rto)
	}
	s.net.send(p.m)
	o.arm(p)
}

// ack retires a pending message. Only never-retransmitted messages
// contribute RTT samples (Karn's rule: a retransmitted message's ack is
// ambiguous about which copy it answers). Armed timers are cancelled
// lazily: the record is simply freed, and any timer still pointing at
// it is skipped when it fires.
func (o *outbox) ack(seq uint64) {
	p := o.slot(seq)
	if p == nil {
		return // duplicate ack
	}
	if p.tries == 1 {
		o.rtt.Observe(float64(o.n.s.now - p.firstSent))
	}
	p.inUse = false
	o.live--
}

// tqPush adds one deadline to the per-outbox timer min-heap.
func (o *outbox) tqPush(e retxEntry) {
	o.tq = append(o.tq, e)
	c := len(o.tq) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !retxLess(o.tq[c], o.tq[p]) {
			break
		}
		o.tq[c], o.tq[p] = o.tq[p], o.tq[c]
		c = p
	}
}

// tqPop removes the minimum deadline.
func (o *outbox) tqPop() {
	last := len(o.tq) - 1
	o.tq[0] = o.tq[last]
	o.tq = o.tq[:last]
	n := last
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		if l >= n {
			break
		}
		m := l
		if r < n && retxLess(o.tq[r], o.tq[l]) {
			m = r
		}
		if !retxLess(o.tq[m], o.tq[c]) {
			break
		}
		o.tq[c], o.tq[m] = o.tq[m], o.tq[c]
		c = m
	}
}

func retxLess(a, b retxEntry) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.armseq < b.armseq
}

// rto returns the current retransmission timeout: the estimator's
// recommendation plus one tick of clock granularity (without it, a
// jitter-free link converges to RTO == RTT exactly and every ack ties
// with its own retransmission timer), clamped to [InitRTO/4, MaxRTO];
// InitRTO before any sample.
func (o *outbox) rto() int64 {
	est := int64(o.rtt.RTO())
	if est <= 0 {
		return o.n.s.cfg.InitRTO
	}
	est++
	if min := o.n.s.cfg.InitRTO / 4; est < min {
		est = min
	}
	if est < 1 {
		est = 1
	}
	if est > o.n.s.cfg.MaxRTO {
		est = o.n.s.cfg.MaxRTO
	}
	return est
}
