package cluster

import (
	"fmt"

	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/transport"
)

// node is one cluster participant. Its life is the paper's episode
// structure: per epoch e, do non-barrier work, Arrive(e), execute the
// barrier region, then Wait(e) — which blocks only if the protocol has
// not released e by the time the region ends. The protocol's release
// latency is therefore overlapped with (absorbed by) the region, and
// the node's stall counter records exactly the unabsorbed remainder.
type node struct {
	id    int
	s     *Sim
	rng   *rng // work-jitter draws
	out   *outbox
	proto Proto

	epoch           int64 // epoch currently being executed
	releasedThrough int64 // epochs < this have completed locally
	blocked         bool
	blockedAt       int64
	done            bool

	stall     int64
	arriveAt  []int64 // per-epoch Arrive timestamps
	releaseAt []int64 // per-epoch release (Wait-satisfiable) timestamps
}

// newProtoHook, when non-nil, replaces NewProto during node
// construction. White-box tests use it to inject broken protocol
// machines — e.g. one that never sends — to exercise failure paths
// (watchdog diagnosis on a drained event queue) the real protocols
// cannot reach.
var newProtoHook func(protocol string, env ProtoEnv) Proto

func newNode(s *Sim, id int) *node {
	n := &node{
		id:        id,
		s:         s,
		rng:       newRNG(mix(s.cfg.Seed, uint64(id)+1)),
		arriveAt:  make([]int64, s.cfg.Epochs),
		releaseAt: make([]int64, s.cfg.Epochs),
	}
	n.out = newOutbox(n)
	if newProtoHook != nil {
		n.proto = newProtoHook(s.cfg.Protocol, n)
		return n
	}
	p, err := NewProto(s.cfg.Protocol, n)
	if err != nil {
		// withDefaults validated the name; reaching here is a bug.
		panic(err)
	}
	n.proto = p
	return n
}

// node implements ProtoEnv: the protocol machines act on the simulation
// through these methods (and through them alone), which is what lets
// internal/check run the same machines under its adversarial scheduler.

func (n *node) NodeID() int            { return n.id }
func (n *node) Nodes() int             { return n.s.cfg.Nodes }
func (n *node) TreeArity() int         { return n.s.cfg.TreeArity }
func (n *node) ReleasedThrough() int64 { return n.releasedThrough }
func (n *node) Send(m Message)         { n.out.send(m) }
func (n *node) Release(e int64)        { n.release(e) }

// startEpoch schedules epoch e's non-barrier work, or retires the node
// when every epoch is done.
func (n *node) startEpoch(e int64) {
	if e >= int64(n.s.cfg.Epochs) {
		n.done = true
		n.s.doneNodes++
		return
	}
	n.epoch = e
	w := n.s.cfg.Work
	if n.s.cfg.WorkJitter > 0 {
		w += n.rng.intN(n.s.cfg.WorkJitter + 1)
	}
	if n.s.cfg.StraggleExtra > 0 && n.id == n.s.cfg.Straggler {
		w += n.s.cfg.StraggleExtra
	}
	n.s.schedWork(n, e, w)
}

// workDone is the node's Arrive(e): record the timestamp, let the
// protocol start synchronizing, and begin the barrier region.
func (n *node) workDone(e int64) {
	n.arriveAt[e] = n.s.now
	n.proto.Arrive(e)
	n.s.schedRegion(n, e, n.s.cfg.Region)
}

// regionDone is the node's Wait(e): free if the release already
// arrived during the region, blocked otherwise.
func (n *node) regionDone(e int64) {
	if n.releasedThrough > e {
		n.startEpoch(e + 1)
		return
	}
	n.blocked = true
	n.blockedAt = n.s.now
}

// release marks epoch e complete at this node; the protocols call it
// exactly once per epoch (their receive paths drop stale duplicates
// first, and epochs complete in order by construction — a node cannot
// arrive at e+1 before releasing e, and no protocol releases e before
// every node arrived at e).
func (n *node) release(e int64) {
	if e < n.releasedThrough {
		return // duplicate release: already complete, ignore
	}
	if e > n.releasedThrough {
		panic(fmt.Sprintf("cluster: node %d released epoch %d before %d", n.id, e, n.releasedThrough))
	}
	n.releaseAt[e] = n.s.now
	n.releasedThrough = e + 1
	n.s.lastProgress = n.s.now
	if rec := n.s.cfg.Recorder; rec != nil {
		rec.Mark(n.s.now, n.id, trace.KindSync)
		rec.Eventf(n.s.now, n.id, "epoch %d complete", e)
	}
	if n.blocked {
		n.blocked = false
		n.stall += n.s.now - n.blockedAt
		n.markRange(n.blockedAt, n.s.now, trace.KindStall)
		n.startEpoch(e + 1)
	}
}

// handle dispatches one delivered message: acks feed the outbox; every
// other kind is acknowledged (so the sender stops retransmitting) and
// handed to the protocol, whose handlers are idempotent — a duplicate
// delivery re-acks and re-applies a no-op.
func (n *node) handle(m Message) {
	if m.Kind == MsgAck {
		n.out.ack(m.Seq)
		return
	}
	n.s.acks++
	n.s.net.send(Message{Kind: MsgAck, From: n.id, To: m.From, Epoch: m.Epoch, Seq: m.Seq})
	n.proto.Handle(m)
}

// markRange paints [from, to) on the node's trace lane; a nil recorder
// makes this free.
func (n *node) markRange(from, to int64, k trace.Kind) {
	rec := n.s.cfg.Recorder
	if rec == nil {
		return
	}
	for c := from; c < to; c++ {
		rec.Mark(c, n.id, k)
	}
}

// stateLine renders the node's position for stuck reports.
func (n *node) stateLine() string {
	switch {
	case n.done:
		return "done"
	case n.blocked:
		return fmt.Sprintf("blocked in Wait(epoch %d) since t=%d; unacked=%d; %s",
			n.epoch, n.blockedAt, n.out.live(), n.proto.PendingLine())
	default:
		return fmt.Sprintf("executing epoch %d (released through %d); unacked=%d; %s",
			n.epoch, n.releasedThrough, n.out.live(), n.proto.PendingLine())
	}
}

// outbox is the cluster-side host of the extracted reliability layer
// (transport.Window): each logical send keeps a pending record until the
// matching ack returns; a timer retransmits on a Jacobson/Karels-estimated
// RTO with exponential backoff (capped at MaxRTO). Retransmissions reuse
// the original sequence number, so the receiver's ack matches whichever
// copy got through and duplicates are harmless. The ring, RTO policy,
// Karn's rule and the retransmit-deadline heap live in
// internal/transport/window.go — one verified codepath shared with the
// real barrierd transports; what stays here is the engine-specific timer
// arming.
//
// Timers differ per engine. The closure engine arms one heap event per
// send/retransmit, exactly as before. The fast engine instead keeps the
// window's deadline queue (tq) plus a small stack of armed heap events
// (armed): a send or retransmission records its (deadline, armseq) in
// tq, and a heap event is inserted only when the new deadline undercuts
// every armed one. Acks cancel nothing — a fired event whose message was
// acked or re-armed is skipped ("lazy cancel") and the queue head
// re-armed. Because re-arming inserts the event at the original
// (deadline, armseq) key (armseq is consumed at arm time in both
// engines), every real retransmission still fires at exactly the key the
// closure engine would have given its per-message timer: the invariant
// is that the smallest armed key never exceeds the smallest live
// deadline key, so by induction an event with exactly that key fires,
// matches, and retransmits.
type outbox struct {
	n *node
	w transport.Window[Message]

	armed []retxKey // armed heap-event keys, descending (top = last = smallest)
}

// retxKey is the (at, seq) key of an outstanding evRetx heap event.
type retxKey struct {
	at  int64
	seq uint64
}

func newOutbox(n *node) *outbox {
	o := &outbox{n: n}
	o.w.Init()
	return o
}

// live returns the number of pending (unacked) messages, for stuck
// reports.
func (o *outbox) live() int { return o.w.Live }

// send transmits m reliably (assigning its sequence number).
func (o *outbox) send(m Message) {
	m.Seq = o.w.Assign()
	m.From = o.n.id
	s := o.n.s
	p := o.w.Claim(m.Seq)
	*p = transport.Pending[Message]{Msg: m, Seq: m.Seq, FirstSent: s.now, RTO: o.rto(), Tries: 1, InUse: true}
	o.w.Live++
	s.sends++
	if s.wantLog {
		s.logf(o.n.id, trace.EvSend, "send %v", m)
	}
	s.net.send(m)
	o.arm(p)
}

// arm consumes one sequence number for p's retransmit timer — a heap
// closure on the slow engine, a tq entry (plus at most one heap event)
// on the fast engine.
func (o *outbox) arm(p *transport.Pending[Message]) {
	s := o.n.s
	if s.fast == nil {
		seq := p.Seq
		s.schedule(p.RTO, func() { o.timeout(seq) })
		return
	}
	s.eseq++
	p.Armseq = s.eseq
	p.Deadline = s.now + p.RTO
	o.w.TQPush(transport.RetxEntry{Deadline: p.Deadline, Armseq: p.Armseq, Seq: p.Seq})
	o.ensureArmed()
}

// ensureArmed inserts an evRetx heap event at the timer queue's minimum
// key unless an armed event already covers it (armed top <= minimum).
// Armed keys strictly decrease as they are pushed, so `armed` is a
// stack with the smallest key on top — and heap events fire in key
// order, so fireRetx always pops exactly that top.
func (o *outbox) ensureArmed() {
	if o.w.TQLen() == 0 {
		return
	}
	head := o.w.TQHead()
	if len(o.armed) > 0 {
		top := o.armed[len(o.armed)-1]
		if top.at < head.Deadline || (top.at == head.Deadline && top.seq <= head.Armseq) {
			return
		}
	}
	o.armed = append(o.armed, retxKey{at: head.Deadline, seq: head.Armseq})
	o.n.s.fast.scheduleAt(head.Deadline, head.Armseq, evRetx, int32(o.n.id), 0, 0, Message{})
}

// fireRetx handles one evRetx heap event: prune acked/re-armed
// deadlines, retransmit the message whose deadline key matches the
// fired event exactly (if it is still live), and re-arm the queue head.
func (o *outbox) fireRetx(at int64, seq uint64) {
	top := o.armed[len(o.armed)-1]
	if top.at != at || top.seq != seq {
		panic(fmt.Sprintf("cluster: node %d retransmit timer fired out of order (got t=%d seq=%d, armed t=%d seq=%d)",
			o.n.id, at, seq, top.at, top.seq))
	}
	o.armed = o.armed[:len(o.armed)-1]
	for o.w.TQLen() > 0 {
		e := o.w.TQHead()
		p := o.w.Slot(e.Seq)
		if p == nil || p.Armseq != e.Armseq {
			o.w.TQPop() // stale: acked, or re-armed by a later retransmission
			continue
		}
		if e.Deadline == at && e.Armseq == seq {
			o.w.TQPop()
			o.retransmit(p)
		}
		// A live head with a later key means this event fired early
		// (its message was acked after arming); the head stays queued.
		break
	}
	o.ensureArmed()
}

// timeout is the slow engine's per-message timer callback.
func (o *outbox) timeout(seq uint64) {
	p := o.w.Slot(seq)
	if p == nil {
		return // acked since the timer was armed
	}
	o.retransmit(p)
}

// retransmit re-sends a still-unacked message, doubling its RTO.
func (o *outbox) retransmit(p *transport.Pending[Message]) {
	o.w.Backoff(p, o.n.s.cfg.MaxRTO)
	s := o.n.s
	s.retransmits++
	if s.wantLog {
		s.logf(o.n.id, trace.EvRetransmit, "retransmit %v try=%d rto=%d", p.Msg, p.Tries, p.RTO)
	}
	s.net.send(p.Msg)
	o.arm(p)
}

// ack retires a pending message (transport.Window applies Karn's rule:
// only never-retransmitted messages contribute RTT samples).
func (o *outbox) ack(seq uint64) {
	o.w.Ack(seq, o.n.s.now)
}

// rto returns the current retransmission timeout from the shared policy
// (estimator recommendation plus one tick of granularity, clamped to
// [InitRTO/4, MaxRTO]; InitRTO before any sample).
func (o *outbox) rto() int64 {
	return o.w.NextRTO(o.n.s.cfg.InitRTO, o.n.s.cfg.MaxRTO)
}
