package cluster

import (
	"fmt"

	"fuzzybarrier/internal/trace"
)

// node is one cluster participant. Its life is the paper's episode
// structure: per epoch e, do non-barrier work, Arrive(e), execute the
// barrier region, then Wait(e) — which blocks only if the protocol has
// not released e by the time the region ends. The protocol's release
// latency is therefore overlapped with (absorbed by) the region, and
// the node's stall counter records exactly the unabsorbed remainder.
//
// A node belongs to exactly one execution lane (x): the run's single
// exec in serial mode, its shard's exec in a parallel run. Everything
// the node mutates — its own fields, its outbox, the lane's engine and
// counters — is owned by that lane, which is the ownership discipline
// the parallel engine's lock-free design rests on.
type node struct {
	id int
	x  *exec
	s  *Sim // cfg and the node table (read-only during a run)

	rng    *rng // work-jitter draws
	netRNG *rng // per-sender link draws (latency jitter, drop, dup)
	txSeq  uint64
	lseq   uint64 // local-event priority counter (work/region/retx)

	out   *outbox
	proto Proto

	epoch           int64 // epoch currently being executed
	releasedThrough int64 // epochs < this have completed locally
	blocked         bool
	blockedAt       int64
	done            bool

	stall     int64
	arriveAt  []int64 // per-epoch Arrive timestamps
	releaseAt []int64 // per-epoch release (Wait-satisfiable) timestamps
}

// newProtoHook, when non-nil, replaces NewProto during node
// construction. White-box tests use it to inject broken protocol
// machines — e.g. one that never sends — to exercise failure paths
// (watchdog diagnosis on a drained event queue) the real protocols
// cannot reach.
var newProtoHook func(protocol string, env ProtoEnv) Proto

func newNode(x *exec, id int) *node {
	s := x.s
	n := &node{
		id:        id,
		x:         x,
		s:         s,
		rng:       newRNG(mix(s.cfg.Seed, uint64(id)+1)),
		netRNG:    newRNG(mix(mix(s.cfg.Seed, 0xC0FFEE), uint64(id)+1)),
		arriveAt:  make([]int64, s.cfg.Epochs),
		releaseAt: make([]int64, s.cfg.Epochs),
	}
	n.out = newOutbox(n)
	if newProtoHook != nil {
		n.proto = newProtoHook(s.cfg.Protocol, n)
		return n
	}
	p, err := NewProto(s.cfg.Protocol, n)
	if err != nil {
		// withDefaults validated the name; reaching here is a bug.
		panic(err)
	}
	n.proto = p
	return n
}

// nextPri consumes the node's next local-event priority.
func (n *node) nextPri() uint64 {
	n.lseq++
	return localPriBit | n.lseq
}

// node implements ProtoEnv: the protocol machines act on the simulation
// through these methods (and through them alone), which is what lets
// internal/check run the same machines under its adversarial scheduler.

func (n *node) NodeID() int            { return n.id }
func (n *node) Nodes() int             { return n.s.cfg.Nodes }
func (n *node) TreeArity() int         { return n.s.cfg.TreeArity }
func (n *node) ReleasedThrough() int64 { return n.releasedThrough }
func (n *node) Send(m Message)         { n.out.send(m) }
func (n *node) Release(e int64)        { n.release(e) }

// startEpoch schedules epoch e's non-barrier work, or retires the node
// when every epoch is done.
func (n *node) startEpoch(e int64) {
	if e >= int64(n.s.cfg.Epochs) {
		n.done = true
		n.x.doneNodes++
		return
	}
	n.epoch = e
	w := n.s.cfg.Work
	if n.s.cfg.WorkJitter > 0 {
		w += n.rng.intN(n.s.cfg.WorkJitter + 1)
	}
	if n.s.cfg.StraggleExtra > 0 && n.id == n.s.cfg.Straggler {
		w += n.s.cfg.StraggleExtra
	}
	n.x.schedWork(n, e, w)
}

// workDone is the node's Arrive(e): record the timestamp, let the
// protocol start synchronizing, and begin the barrier region.
func (n *node) workDone(e int64) {
	n.arriveAt[e] = n.x.now
	n.proto.Arrive(e)
	n.x.schedRegion(n, e, n.s.cfg.Region)
}

// regionDone is the node's Wait(e): free if the release already
// arrived during the region, blocked otherwise.
func (n *node) regionDone(e int64) {
	if n.releasedThrough > e {
		n.startEpoch(e + 1)
		return
	}
	n.blocked = true
	n.blockedAt = n.x.now
}

// release marks epoch e complete at this node; the protocols call it
// exactly once per epoch (their receive paths drop stale duplicates
// first, and epochs complete in order by construction — a node cannot
// arrive at e+1 before releasing e, and no protocol releases e before
// every node arrived at e).
func (n *node) release(e int64) {
	if e < n.releasedThrough {
		return // duplicate release: already complete, ignore
	}
	if e > n.releasedThrough {
		panic(fmt.Sprintf("cluster: node %d released epoch %d before %d", n.id, e, n.releasedThrough))
	}
	n.releaseAt[e] = n.x.now
	n.releasedThrough = e + 1
	n.x.lastProgress = n.x.now
	if rec := n.s.cfg.Recorder; rec != nil {
		rec.Mark(n.x.now, n.id, trace.KindSync)
		rec.Eventf(n.x.now, n.id, "epoch %d complete", e)
	}
	if n.blocked {
		n.blocked = false
		n.stall += n.x.now - n.blockedAt
		n.markRange(n.blockedAt, n.x.now, trace.KindStall)
		n.startEpoch(e + 1)
	}
}

// handle dispatches one delivered message: acks feed the outbox; every
// other kind is acknowledged (so the sender stops retransmitting) and
// handed to the protocol, whose handlers are idempotent — a duplicate
// delivery re-acks and re-applies a no-op.
func (n *node) handle(m Message) {
	if m.Kind == MsgAck {
		n.out.ack(m.Seq)
		return
	}
	n.x.acks++
	n.x.netSend(Message{Kind: MsgAck, From: n.id, To: m.From, Epoch: m.Epoch, Seq: m.Seq})
	n.proto.Handle(m)
}

// markRange paints [from, to) on the node's trace lane; a nil recorder
// makes this free.
func (n *node) markRange(from, to int64, k trace.Kind) {
	rec := n.s.cfg.Recorder
	if rec == nil {
		return
	}
	for c := from; c < to; c++ {
		rec.Mark(c, n.id, k)
	}
}

// stateLine renders the node's position for stuck reports.
func (n *node) stateLine() string {
	switch {
	case n.done:
		return "done"
	case n.blocked:
		return fmt.Sprintf("blocked in Wait(epoch %d) since t=%d; unacked=%d; %s",
			n.epoch, n.blockedAt, n.out.live(), n.proto.PendingLine())
	default:
		return fmt.Sprintf("executing epoch %d (released through %d); unacked=%d; %s",
			n.epoch, n.releasedThrough, n.out.live(), n.proto.PendingLine())
	}
}
