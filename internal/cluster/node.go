package cluster

import (
	"fmt"

	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// node is one cluster participant. Its life is the paper's episode
// structure: per epoch e, do non-barrier work, Arrive(e), execute the
// barrier region, then Wait(e) — which blocks only if the protocol has
// not released e by the time the region ends. The protocol's release
// latency is therefore overlapped with (absorbed by) the region, and
// the node's stall counter records exactly the unabsorbed remainder.
type node struct {
	id    int
	s     *Sim
	rng   *rng // work-jitter draws
	out   *outbox
	proto proto

	epoch           int64 // epoch currently being executed
	releasedThrough int64 // epochs < this have completed locally
	blocked         bool
	blockedAt       int64
	done            bool

	stall     int64
	arriveAt  []int64 // per-epoch Arrive timestamps
	releaseAt []int64 // per-epoch release (Wait-satisfiable) timestamps
}

// proto is the per-node protocol state machine. arrive is invoked by
// the node when it issues Arrive(e); handle receives every delivered
// non-ack message. Implementations call node.release(e) when epoch e
// completes locally.
type proto interface {
	arrive(e int64)
	handle(m Message)
	// pendingLine renders the in-flight epoch state for stuck reports.
	pendingLine() string
}

func newNode(s *Sim, id int) *node {
	n := &node{
		id:        id,
		s:         s,
		rng:       newRNG(mix(s.cfg.Seed, uint64(id)+1)),
		arriveAt:  make([]int64, s.cfg.Epochs),
		releaseAt: make([]int64, s.cfg.Epochs),
	}
	n.out = newOutbox(n)
	switch s.cfg.Protocol {
	case "central":
		n.proto = newCentral(n)
	case "tree":
		n.proto = newTree(n)
	case "dissemination":
		n.proto = newDissemination(n)
	default:
		// withDefaults validated the name; reaching here is a bug.
		panic(fmt.Sprintf("cluster: unregistered protocol %q", s.cfg.Protocol))
	}
	return n
}

// startEpoch schedules epoch e's non-barrier work, or retires the node
// when every epoch is done.
func (n *node) startEpoch(e int64) {
	if e >= int64(n.s.cfg.Epochs) {
		n.done = true
		n.s.doneNodes++
		return
	}
	n.epoch = e
	w := n.s.cfg.Work
	if n.s.cfg.WorkJitter > 0 {
		w += n.rng.intN(n.s.cfg.WorkJitter + 1)
	}
	if n.s.cfg.StraggleExtra > 0 && n.id == n.s.cfg.Straggler {
		w += n.s.cfg.StraggleExtra
	}
	start := n.s.now
	n.s.schedule(w, func() {
		n.markRange(start, n.s.now, trace.KindWork)
		n.workDone(e)
	})
}

// workDone is the node's Arrive(e): record the timestamp, let the
// protocol start synchronizing, and begin the barrier region.
func (n *node) workDone(e int64) {
	n.arriveAt[e] = n.s.now
	n.proto.arrive(e)
	start := n.s.now
	n.s.schedule(n.s.cfg.Region, func() {
		n.markRange(start, n.s.now, trace.KindBarrier)
		n.regionDone(e)
	})
}

// regionDone is the node's Wait(e): free if the release already
// arrived during the region, blocked otherwise.
func (n *node) regionDone(e int64) {
	if n.releasedThrough > e {
		n.startEpoch(e + 1)
		return
	}
	n.blocked = true
	n.blockedAt = n.s.now
}

// release marks epoch e complete at this node; the protocols call it
// exactly once per epoch (their receive paths drop stale duplicates
// first, and epochs complete in order by construction — a node cannot
// arrive at e+1 before releasing e, and no protocol releases e before
// every node arrived at e).
func (n *node) release(e int64) {
	if e < n.releasedThrough {
		return // duplicate release: already complete, ignore
	}
	if e > n.releasedThrough {
		panic(fmt.Sprintf("cluster: node %d released epoch %d before %d", n.id, e, n.releasedThrough))
	}
	n.releaseAt[e] = n.s.now
	n.releasedThrough = e + 1
	n.s.lastProgress = n.s.now
	if rec := n.s.cfg.Recorder; rec != nil {
		rec.Mark(n.s.now, n.id, trace.KindSync)
		rec.Eventf(n.s.now, n.id, "epoch %d complete", e)
	}
	if n.blocked {
		n.blocked = false
		n.stall += n.s.now - n.blockedAt
		n.markRange(n.blockedAt, n.s.now, trace.KindStall)
		n.startEpoch(e + 1)
	}
}

// handle dispatches one delivered message: acks feed the outbox; every
// other kind is acknowledged (so the sender stops retransmitting) and
// handed to the protocol, whose handlers are idempotent — a duplicate
// delivery re-acks and re-applies a no-op.
func (n *node) handle(m Message) {
	if m.Kind == MsgAck {
		n.out.ack(m.Seq)
		return
	}
	n.s.acks++
	n.s.net.send(Message{Kind: MsgAck, From: n.id, To: m.From, Epoch: m.Epoch, Seq: m.Seq})
	n.proto.handle(m)
}

// markRange paints [from, to) on the node's trace lane; a nil recorder
// makes this free.
func (n *node) markRange(from, to int64, k trace.Kind) {
	rec := n.s.cfg.Recorder
	if rec == nil {
		return
	}
	for c := from; c < to; c++ {
		rec.Mark(c, n.id, k)
	}
}

// stateLine renders the node's position for stuck reports.
func (n *node) stateLine() string {
	switch {
	case n.done:
		return "done"
	case n.blocked:
		return fmt.Sprintf("blocked in Wait(epoch %d) since t=%d; unacked=%d; %s",
			n.epoch, n.blockedAt, len(n.out.pending), n.proto.pendingLine())
	default:
		return fmt.Sprintf("executing epoch %d (released through %d); unacked=%d; %s",
			n.epoch, n.releasedThrough, len(n.out.pending), n.proto.pendingLine())
	}
}

// outbox is the reliable-delivery layer: each logical send keeps a
// pending record until the matching ack returns; a timer retransmits on
// a Jacobson/Karels-estimated RTO with exponential backoff (capped at
// MaxRTO). Retransmissions reuse the original sequence number, so the
// receiver's ack matches whichever copy got through and duplicates are
// harmless.
type outbox struct {
	n       *node
	seq     uint64
	pending map[uint64]*pendingMsg
	rtt     stats.RTTEstimator
}

type pendingMsg struct {
	m         Message
	firstSent int64
	rto       int64
	tries     int
}

func newOutbox(n *node) *outbox {
	return &outbox{n: n, pending: make(map[uint64]*pendingMsg)}
}

// send transmits m reliably (assigning its sequence number).
func (o *outbox) send(m Message) {
	o.seq++
	m.Seq = o.seq
	m.From = o.n.id
	p := &pendingMsg{m: m, firstSent: o.n.s.now, rto: o.rto(), tries: 1}
	o.pending[m.Seq] = p
	o.n.s.sends++
	o.n.s.logf(o.n.id, trace.EvSend, "send %v", m)
	o.n.s.net.send(m)
	o.armTimer(p)
}

func (o *outbox) armTimer(p *pendingMsg) {
	seq := p.m.Seq
	o.n.s.schedule(p.rto, func() { o.timeout(seq) })
}

// timeout retransmits a still-unacked message and doubles its RTO.
func (o *outbox) timeout(seq uint64) {
	p, ok := o.pending[seq]
	if !ok {
		return // acked since the timer was armed
	}
	p.tries++
	p.rto *= 2
	if p.rto > o.n.s.cfg.MaxRTO {
		p.rto = o.n.s.cfg.MaxRTO
	}
	o.n.s.retransmits++
	o.n.s.logf(o.n.id, trace.EvRetransmit, "retransmit %v try=%d rto=%d", p.m, p.tries, p.rto)
	o.n.s.net.send(p.m)
	o.armTimer(p)
}

// ack retires a pending message. Only never-retransmitted messages
// contribute RTT samples (Karn's rule: a retransmitted message's ack is
// ambiguous about which copy it answers).
func (o *outbox) ack(seq uint64) {
	p, ok := o.pending[seq]
	if !ok {
		return // duplicate ack
	}
	if p.tries == 1 {
		o.rtt.Observe(float64(o.n.s.now - p.firstSent))
	}
	delete(o.pending, seq)
}

// rto returns the current retransmission timeout: the estimator's
// recommendation plus one tick of clock granularity (without it, a
// jitter-free link converges to RTO == RTT exactly and every ack ties
// with its own retransmission timer), clamped to [InitRTO/4, MaxRTO];
// InitRTO before any sample.
func (o *outbox) rto() int64 {
	est := int64(o.rtt.RTO())
	if est <= 0 {
		return o.n.s.cfg.InitRTO
	}
	est++
	if min := o.n.s.cfg.InitRTO / 4; est < min {
		est = min
	}
	if est < 1 {
		est = 1
	}
	if est > o.n.s.cfg.MaxRTO {
		est = o.n.s.cfg.MaxRTO
	}
	return est
}
