package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.Stdev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stdev = %v, want sqrt(2.5)", s.Stdev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeAllNaN(t *testing.T) {
	nan := math.NaN()
	s := Summarize([]float64{nan, nan, nan})
	if s.N != 0 || s.Invalid != 3 {
		t.Errorf("all-NaN summary N/Invalid = %d/%d, want 0/3", s.N, s.Invalid)
	}
	if s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.Median != 0 || s.P90 != 0 || s.P99 != 0 || s.Sum != 0 {
		t.Errorf("all-NaN summary not zero: %+v", s)
	}
}

func TestSummarizeSomeNaN(t *testing.T) {
	nan := math.NaN()
	s := Summarize([]float64{nan, 4, 1, nan, 3, 2, 5, nan})
	if s.N != 5 || s.Invalid != 3 {
		t.Fatalf("N/Invalid = %d/%d, want 5/3", s.N, s.Invalid)
	}
	// The valid subsample must yield exactly the NaN-free statistics.
	want := Summarize([]float64{4, 1, 3, 2, 5})
	want.Invalid = 3
	if s != want {
		t.Errorf("summary = %+v, want %+v", s, want)
	}
	for _, v := range []float64{s.Min, s.Max, s.Mean, s.Stdev, s.Median, s.P90, s.P99, s.Sum} {
		if math.IsNaN(v) {
			t.Errorf("NaN leaked into summary: %+v", s)
		}
	}
}

func TestSummarizeInf(t *testing.T) {
	s := Summarize([]float64{math.Inf(-1), 1, 2, math.Inf(1)})
	if s.N != 4 || s.Invalid != 0 {
		t.Fatalf("N/Invalid = %d/%d, want 4/0", s.N, s.Invalid)
	}
	if !math.IsInf(s.Min, -1) || !math.IsInf(s.Max, 1) {
		t.Errorf("min/max = %v/%v, want -Inf/+Inf", s.Min, s.Max)
	}
	// -Inf + +Inf is NaN by IEEE rules; ±Inf observations are valid
	// inputs and the documented propagation applies.
	if !math.IsNaN(s.Sum) || !math.IsNaN(s.Mean) {
		t.Errorf("sum/mean = %v/%v, want NaN (Inf-Inf)", s.Sum, s.Mean)
	}
	if s.Median != 1.5 {
		t.Errorf("median = %v, want 1.5", s.Median)
	}
	one := Summarize([]float64{1, 2, math.Inf(1)})
	if !math.IsInf(one.Sum, 1) || !math.IsInf(one.Mean, 1) || one.Max != math.Inf(1) {
		t.Errorf("+Inf-only summary = %+v", one)
	}
}

func TestPercentileNaN(t *testing.T) {
	nan := math.NaN()
	// sort.Float64s orders NaN before other values; Percentile must
	// exclude them wherever they land.
	withNaN := []float64{nan, nan, 10, 20, 30, 40}
	for p, want := range map[float64]float64{0: 10, 50: 25, 100: 40} {
		if got := Percentile(withNaN, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v with NaN = %v, want %v", p, got, want)
		}
	}
	// NaN in interior positions (a caller-sorted slice from another
	// source) is excluded too.
	if got := Percentile([]float64{10, nan, 20}, 100); got != 20 {
		t.Errorf("interior NaN P100 = %v, want 20", got)
	}
	if got := Percentile([]float64{nan, nan}, 50); got != 0 {
		t.Errorf("all-NaN percentile = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 100: 40, 50: 25, 25: 17.5}
	for p, want := range cases {
		if got := Percentile(sorted, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile")
	}
}

// TestPercentileOutOfRangeP pins the documented clamping of p itself:
// out-of-range requests clamp to the extremes instead of indexing
// outside the sample, a NaN p propagates as NaN instead of turning
// into a garbage rank, and every case holds on a single-element sample
// (where any unclamped rank is immediately out of bounds).
func TestPercentileOutOfRangeP(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"p=0 is the minimum", []float64{10, 20, 30, 40}, 0, 10},
		{"p=100 is the maximum", []float64{10, 20, 30, 40}, 100, 40},
		{"p=-5 clamps to the minimum", []float64{10, 20, 30, 40}, -5, 10},
		{"p=250 clamps to the maximum", []float64{10, 20, 30, 40}, 250, 40},
		{"-Inf p clamps to the minimum", []float64{10, 20, 30, 40}, math.Inf(-1), 10},
		{"+Inf p clamps to the maximum", []float64{10, 20, 30, 40}, math.Inf(1), 40},
		{"single element, p=0", []float64{7}, 0, 7},
		{"single element, p=100", []float64{7}, 100, 7},
		{"single element, p=-5", []float64{7}, -5, 7},
		{"single element, p=250", []float64{7}, 250, 7},
	}
	for _, tc := range cases {
		if got := Percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := Percentile([]float64{10, 20}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN p: got %v, want NaN", got)
	}
	if got := Percentile(nil, math.NaN()); got != 0 {
		t.Errorf("NaN p on empty sample: got %v, want 0", got)
	}
}

func TestIntHelpers(t *testing.T) {
	xs := []int64{3, -1, 7, 0}
	if MeanInts(xs) != 2.25 {
		t.Errorf("mean = %v", MeanInts(xs))
	}
	if MaxInts(xs) != 7 || MinInts(xs) != -1 || SumInts(xs) != 9 {
		t.Errorf("max/min/sum = %d/%d/%d", MaxInts(xs), MinInts(xs), SumInts(xs))
	}
	if MeanInts(nil) != 0 || MaxInts(nil) != 0 || MinInts(nil) != 0 {
		t.Error("empty int helpers should return 0")
	}
	if Mean(nil) != 0 {
		t.Error("empty Mean should return 0")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("speedup 10/2")
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Error("speedup by zero should be +Inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 3) // [0,10) [10,20) [20,30)
	for _, x := range []float64{-5, 0, 9.9, 10, 25, 100} {
		h.Observe(x)
	}
	if h.Under != 1 || h.Over != 1 || h.Samples != 6 {
		t.Errorf("under/over/samples = %d/%d/%d", h.Under, h.Over, h.Samples)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	lo, hi := h.Bucket(1)
	if lo != 10 || hi != 20 {
		t.Errorf("bucket 1 = [%v,%v)", lo, hi)
	}
	if h.String() == "" {
		t.Error("histogram renders empty")
	}
}

// TestHistogramNonFinite is the regression test for the Observe panic:
// int((NaN-Lo)/Width) is math.MinInt64 on amd64, which indexed Counts at
// [-9223372036854775808]. NaN, infinities and huge finite values must
// all be counted, never panic.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 3)
	for _, x := range []float64{
		math.NaN(),
		math.Inf(1),
		math.Inf(-1),
		1e300,  // (x-Lo)/Width overflows int64
		-1e300, // far below Lo
		5,      // one normal observation
	} {
		h.Observe(x)
	}
	if h.Invalid != 1 {
		t.Errorf("invalid = %d, want 1 (NaN)", h.Invalid)
	}
	if h.Under != 2 {
		t.Errorf("under = %d, want 2 (-Inf, -1e300)", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d, want 2 (+Inf, 1e300)", h.Over)
	}
	if h.Counts[0] != 1 {
		t.Errorf("counts = %v, want one sample in bucket 0", h.Counts)
	}
	if h.Samples != 6 {
		t.Errorf("samples = %d, want 6", h.Samples)
	}
	// The NaN line must render.
	if s := h.String(); s == "" {
		t.Error("histogram renders empty")
	}
	// Exact top edge goes to Over, one ulp below stays in range.
	edge := NewHistogram(0, 10, 3)
	edge.Observe(30)
	edge.Observe(math.Nextafter(30, 0))
	if edge.Over != 1 || edge.Counts[2] != 1 {
		t.Errorf("edge: over=%d counts=%v", edge.Over, edge.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad shape")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestSeriesMonotone(t *testing.T) {
	var dec Series
	for i, y := range []float64{100, 80, 60, 40} {
		dec.Add(float64(i), y)
	}
	if !dec.Monotone(-1, 0) {
		t.Error("decreasing series not detected")
	}
	if dec.Monotone(+1, 0) {
		t.Error("decreasing series reported increasing")
	}
	// Tolerance: a 5% bump within 10% slack still counts as monotone.
	var noisy Series
	for i, y := range []float64{100, 90, 93, 70} {
		noisy.Add(float64(i), y)
	}
	if !noisy.Monotone(-1, 0.1) {
		t.Error("noisy series should pass with 10% tolerance")
	}
	if noisy.Monotone(-1, 0.01) {
		t.Error("noisy series should fail with 1% tolerance")
	}
}

// TestSummaryInvariants: for any non-empty sample, min <= median <= max,
// p90 <= p99 <= max, and sum = mean*n.
func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.P90 > s.P99+1e-9 || s.P99 > s.Max+1e-9 {
			return false
		}
		return math.Abs(s.Sum-s.Mean*float64(s.N)) < 1e-6*math.Max(1, math.Abs(s.Sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPercentileMonotoneProperty: percentiles are non-decreasing in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(clean, p1) <= Percentile(clean, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRTTEstimator exercises the Jacobson/Karels filter: first sample
// initializes srtt directly, later samples are smoothed, and bad
// samples (negative, NaN) are ignored per Karn's rule.
func TestRTTEstimator(t *testing.T) {
	var e RTTEstimator
	if e.RTO() != 0 || e.Samples() != 0 {
		t.Fatalf("zero value: RTO=%v samples=%d, want 0,0", e.RTO(), e.Samples())
	}
	e.Observe(100)
	if e.SRTT() != 100 {
		t.Errorf("first sample: srtt=%v, want 100", e.SRTT())
	}
	if got := e.RTO(); got != 100+4*50 {
		t.Errorf("first sample: RTO=%v, want 300", got)
	}
	e.Observe(-5)
	e.Observe(math.NaN())
	if e.Samples() != 1 {
		t.Errorf("bad samples counted: %d, want 1", e.Samples())
	}
	// A steady stream of identical samples converges: variance decays,
	// RTO approaches the sample value.
	for i := 0; i < 200; i++ {
		e.Observe(100)
	}
	if e.SRTT() != 100 {
		t.Errorf("steady state srtt=%v, want 100", e.SRTT())
	}
	if rto := e.RTO(); rto > 110 {
		t.Errorf("steady state RTO=%v, want near 100", rto)
	}
	// A jump upward raises the RTO above the new srtt (variance spike).
	e.Observe(500)
	if e.RTO() < e.SRTT() {
		t.Errorf("RTO %v below srtt %v after variance spike", e.RTO(), e.SRTT())
	}
}

// TestMonotoneSlack: absolute slack forgives noise near zero that a
// purely relative tolerance would reject.
func TestMonotoneSlack(t *testing.T) {
	var s Series
	for i, y := range []float64{100, 40, 10, 0.3, 0.5, 0.2} {
		s.Add(float64(i), y)
	}
	if s.Monotone(-1, 0.1) {
		t.Error("relative-only tolerance should reject the 0.3 -> 0.5 bump")
	}
	if !s.MonotoneSlack(-1, 0.1, 0.5) {
		t.Error("absolute slack 0.5 should forgive the 0.3 -> 0.5 bump")
	}
	if s.MonotoneSlack(1, 0.1, 0.5) {
		t.Error("series is not non-decreasing under any small slack")
	}
}
