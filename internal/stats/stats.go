// Package stats provides small numeric helpers used by the simulator,
// the experiment harness and the benchmark tables: summary statistics,
// histograms and series formatting.
//
// The package is intentionally dependency-free (stdlib math/sort only) so
// every other module in the repository can use it without import cycles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual five-number-style description of a sample.
type Summary struct {
	N       int // valid (non-NaN) observations
	Invalid int // NaN observations, excluded from every statistic
	Min     float64
	Max     float64
	Mean    float64
	Stdev   float64
	Median  float64
	P90     float64
	P99     float64
	Sum     float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary with N == 0.
//
// NaN observations are filtered out and counted in Invalid (mirroring
// Histogram.Invalid) — sorting places NaN unspecified, so a single NaN
// would otherwise corrupt Min/Max and every percentile. An all-NaN
// sample yields a zero Summary with N == 0 and Invalid == len(xs).
// ±Inf observations are valid and propagate into Min/Max/Sum/Mean
// (and make Stdev NaN), as IEEE arithmetic dictates.
func Summarize(xs []float64) Summary {
	var s Summary
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) {
			s.Invalid++
			continue
		}
		sorted = append(sorted, x)
	}
	s.N = len(sorted)
	if s.N == 0 {
		return s
	}
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Stdev = math.Sqrt(sq / float64(s.N-1))
	}
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// linear interpolation between closest ranks. The input must be sorted in
// ascending order; an empty sample yields 0.
//
// Out-of-range p is clamped: p <= 0 yields the minimum, p >= 100 the
// maximum, so p = -5 or p = 250 never indexes outside the sample. A NaN
// p orders with neither bound and would otherwise turn the rank into a
// garbage index; it propagates as NaN instead.
//
// NaN elements are excluded before ranking (sort places them in
// unspecified positions, so ranks over a NaN-bearing sample would be
// garbage); a sample of only NaNs yields 0. The exclusion scan copies
// the sample only when a NaN is actually present.
func Percentile(sorted []float64, p float64) float64 {
	for i, x := range sorted {
		if math.IsNaN(x) {
			// Slow path: rebuild the sample without NaNs. The non-NaN
			// elements keep their relative order, so the result is still
			// sorted.
			clean := make([]float64, 0, len(sorted)-1)
			clean = append(clean, sorted[:i]...)
			for _, y := range sorted[i+1:] {
				if !math.IsNaN(y) {
					clean = append(clean, y)
				}
			}
			sorted = clean
			break
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts is Mean over an integer sample.
func MeanInts(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of xs, or 0 for an empty sample.
func MaxInts(xs []int64) int64 {
	var m int64
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// MinInts returns the minimum of xs, or 0 for an empty sample.
func MinInts(xs []int64) int64 {
	var m int64
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// SumInts returns the sum of xs.
func SumInts(xs []int64) int64 {
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Speedup returns base/v, guarding against division by zero.
func Speedup(base, v float64) float64 {
	if v == 0 {
		return math.Inf(1)
	}
	return base / v
}

// Histogram is a fixed-width-bucket histogram over float64 observations.
type Histogram struct {
	Lo      float64
	Width   float64
	Counts  []int64
	Under   int64 // observations below Lo
	Over    int64 // observations at or above Lo+Width*len(Counts)
	Invalid int64 // NaN observations, which no bucket can hold
	Samples int64
}

// NewHistogram creates a histogram with n buckets of the given width
// starting at lo. It panics if n <= 0 or width <= 0 — histogram shape is a
// programming decision, not runtime input.
func NewHistogram(lo, width float64, n int) *Histogram {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape n=%d width=%g", n, width))
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int64, n)}
}

// Observe records a single observation. NaN is counted in Invalid, -Inf
// in Under and +Inf in Over; no input can panic. (Converting a huge or
// non-finite float to int is platform-defined in Go — on amd64 it
// produces math.MinInt64, which used to index out of range.)
func (h *Histogram) Observe(x float64) {
	h.Samples++
	if math.IsNaN(x) {
		h.Invalid++
		return
	}
	if x < h.Lo {
		h.Under++
		return
	}
	// Bucket in float space first: the quotient can exceed int range (or
	// be NaN when Lo is infinite), so compare before converting.
	idx := (x - h.Lo) / h.Width
	if idx < float64(len(h.Counts)) {
		h.Counts[int(idx)]++
		return
	}
	h.Over++
}

// Bucket returns the [lo, hi) bounds of bucket i.
func (h *Histogram) Bucket(i int) (lo, hi float64) {
	lo = h.Lo + float64(i)*h.Width
	return lo, lo + h.Width
}

// String renders the histogram as a compact text table.
func (h *Histogram) String() string {
	out := ""
	if h.Under > 0 {
		out += fmt.Sprintf("  <%g: %d\n", h.Lo, h.Under)
	}
	for i, c := range h.Counts {
		lo, hi := h.Bucket(i)
		out += fmt.Sprintf("  [%g,%g): %d\n", lo, hi, c)
	}
	if h.Over > 0 {
		lo, _ := h.Bucket(len(h.Counts))
		out += fmt.Sprintf("  >=%g: %d\n", lo, h.Over)
	}
	if h.Invalid > 0 {
		out += fmt.Sprintf("  NaN: %d\n", h.Invalid)
	}
	return out
}

// RTTEstimator is the Jacobson/Karels smoothed round-trip-time filter
// (the RFC 6298 rules): an EWMA of the RTT (srtt, gain 1/8) and of its
// deviation (rttvar, gain 1/4), combined into a retransmission timeout
// of srtt + 4*rttvar. internal/cluster's reliable-delivery layer feeds
// it ack-measured RTTs; the zero value is ready to use.
type RTTEstimator struct {
	srtt, rttvar float64
	n            int
}

// Observe folds one RTT sample into the filter. Negative and NaN
// samples are ignored (a retransmitted message has no unambiguous RTT —
// Karn's rule — so callers simply skip those).
func (e *RTTEstimator) Observe(sample float64) {
	if sample < 0 || math.IsNaN(sample) {
		return
	}
	if e.n == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		d := sample - e.srtt
		e.rttvar = (1-beta)*e.rttvar + beta*math.Abs(d)
		e.srtt += alpha * d
	}
	e.n++
}

// Samples returns the number of samples observed.
func (e *RTTEstimator) Samples() int { return e.n }

// SRTT returns the smoothed round-trip time (0 before any sample).
func (e *RTTEstimator) SRTT() float64 { return e.srtt }

// RTO returns the recommended retransmission timeout, srtt + 4*rttvar,
// or 0 before any sample (callers fall back to their configured initial
// timeout).
func (e *RTTEstimator) RTO() float64 {
	if e.n == 0 {
		return 0
	}
	return e.srtt + 4*e.rttvar
}

// Series is a named (x, y) series used by the experiment tables.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Monotone reports whether the Y values are non-increasing (dir < 0) or
// non-decreasing (dir > 0), within a relative tolerance tol. It is the
// check the experiment harness uses to validate "shape" claims.
func (s *Series) Monotone(dir int, tol float64) bool {
	return s.MonotoneSlack(dir, tol, 0)
}

// MonotoneSlack is Monotone with an additional absolute slack: adjacent
// points may violate the direction by abs plus rel times their
// magnitude. The absolute term matters for series that decay toward
// zero (e.g. residual stall ticks), where a purely relative tolerance
// shrinks to nothing and noise of a fraction of a tick would fail an
// otherwise clean monotone shape.
func (s *Series) MonotoneSlack(dir int, rel, abs float64) bool {
	for i := 1; i < len(s.Y); i++ {
		prev, cur := s.Y[i-1], s.Y[i]
		slack := abs + rel*math.Max(math.Abs(prev), math.Abs(cur))
		switch {
		case dir < 0 && cur > prev+slack:
			return false
		case dir > 0 && cur < prev-slack:
			return false
		}
	}
	return true
}
