package exp

import (
	"strconv"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E12InterruptTolerance explores the Section 9 future-work item: "the
// issue of interrupts and traps in a barrier region is also being
// investigated". We inject deterministic per-processor preemptions
// (staggered so processors drift apart, the way asynchronous interrupts
// and trap-based floating point behave on RISC systems of the era) into a
// uniform-work synchronizing loop and measure how the barrier-region size
// absorbs them.
//
// This is an extension beyond the paper's published results; the paper
// only poses the question. The answer our model gives: interrupts act as
// just another drift source, so a region comparable to the interrupt
// cost recovers most of the lost throughput — *provided* the interrupt
// does not change the region structure itself (our model resumes the
// preempted instruction stream in place, which matches hardware that
// holds the barrier unit's state across traps).
func E12InterruptTolerance() (*trace.Table, error) {
	const (
		procs   = 4
		iters   = 200
		body    = 60
		irqCost = 25
	)
	t := trace.NewTable(
		"E12 (extension): interrupts in barrier regions (Section 9 future work)",
		"interrupt every N instrs", "region", "stalls/iter", "irq-cycles/iter", "cycles/iter",
	)
	everies := []int64{0, 40, 15}
	regions := []int64{0, 30}
	type e12Cell struct{ stall, irq, cyc float64 }
	cells, err := sweepRun(len(everies)*len(regions), func(i int) (e12Cell, error) {
		every := everies[i/len(regions)]
		region := regions[i%len(regions)]
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			progs[p] = must(workload.SyncLoop{
				Self: p, Procs: procs,
				Work: workload.UniformWork(iters, body-region), Region: region,
			}.Program())
		}
		_, res, err := runPrograms(machine.Config{
			Mem:            simpleMem(procs, 256),
			InterruptEvery: every,
			InterruptCost:  irqCost,
		}, progs)
		if err != nil {
			return e12Cell{}, err
		}
		var irq int64
		for _, ps := range res.Procs {
			irq += ps.IrqCycles
		}
		return e12Cell{
			stall: perIter(res.TotalStalls()/procs, iters),
			irq:   perIter(irq/procs, iters),
			cyc:   perIter(res.Cycles, iters),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		every := everies[i/len(regions)]
		label := "never"
		if every > 0 {
			label = strconv.FormatInt(every, 10)
		}
		t.AddRow(label, regions[i%len(regions)], c.stall, c.irq, c.cyc)
	}
	t.AddNote("interrupts behave as drift: with a region comparable to the interrupt cost, stall time stays near the interrupt-free level")
	return t, nil
}
