package exp

import (
	"fmt"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// E15 parameters: 8 nodes, a fixed per-epoch body budget (like E1, the
// non-barrier work shrinks as the region grows so the body stays
// constant), drift injected both locally (work jitter) and by the
// network (latency jitter), and the region swept from 0 to half the
// body. Every (protocol, network) series is the Multimax curve's shape
// question asked at cluster scale: does the region absorb the drift?
const (
	e15Nodes      = 8
	e15Epochs     = 120
	e15Body       = 800 // ticks per epoch: work + region
	e15WorkJitter = 160 // local drift amplitude
	e15Latency    = 50  // base one-way link latency
)

// e15Nets are the network fault levels swept at each region size.
var e15Nets = []struct {
	label string
	net   cluster.NetConfig
}{
	{"clean", cluster.NetConfig{Latency: e15Latency}},
	{"jitter", cluster.NetConfig{Latency: e15Latency, Jitter: 40}},
	{"lossy", cluster.NetConfig{Latency: e15Latency, Jitter: 40, DropRate: 0.02, DupRate: 0.01}},
}

// e15Regions is the barrier-region sweep, 0 to half the body.
var e15Regions = []int64{0, 80, 160, 240, 320, 400}

// E15ClusterSync reproduces the Section 8 curve's shape over a lossy
// message-passing network: per-epoch stall cost versus barrier-region
// fraction, for each protocol (central coordinator, combining tree,
// dissemination) at each network fault level. The crisp barrier
// (region 0) pays the protocol's full release latency plus all drift;
// the fuzzy region overlaps it, so stall falls monotonically as the
// region grows. Every run is seeded and single-threaded, so the table
// is bit-stable even with drops and duplication enabled.
func E15ClusterSync() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E15: cluster sync cost vs. barrier-region size (%d nodes, message passing)", e15Nodes),
		"protocol", "network", "region(ticks)", "region(%body)", "stall/epoch", "msgs/epoch", "retrans/epoch",
	)
	protos := cluster.Protocols()
	nR := len(e15Regions)
	// Flatten the (protocol, network, region) grid into one sweep;
	// each cell keeps its original e15Seed(ni, ri), so the table is
	// bit-identical at any parallelism.
	cells, err := sweepRun(len(protos)*len(e15Nets)*nR, func(i int) (*cluster.Result, error) {
		proto := protos[i/(len(e15Nets)*nR)]
		ni := (i / nR) % len(e15Nets)
		ri := i % nR
		res, err := e15Run(proto, e15Nets[ni].net, e15Regions[ri], e15Seed(ni, ri))
		if err != nil {
			return nil, fmt.Errorf("E15 %s/%s/region=%d: %w", proto, e15Nets[ni].label, e15Regions[ri], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, proto := range protos {
		for ni, nc := range e15Nets {
			var series stats.Series
			for ri, region := range e15Regions {
				res := cells[(pi*len(e15Nets)+ni)*nR+ri]
				stall := res.StallPerEpoch()
				t.AddRow(proto, nc.label, region, 100*region/e15Body,
					stall, res.MsgsPerEpoch(), res.RetransmitsPerEpoch())
				series.Add(float64(region), stall)
			}
			// Relative slack for run-to-run protocol noise plus two ticks
			// absolute: near-zero residuals (region >> drift) jitter by
			// fractions of a tick, which a relative-only bound would reject.
			if !series.MonotoneSlack(-1, 0.1, 2) {
				t.AddNote("WARNING: %s/%s stall series is not monotonically non-increasing: %v",
					proto, nc.label, series.Y)
			}
		}
	}
	t.AddNote("stall falls monotonically as the region absorbs network latency, jitter and loss recovery — the Section 8 shape at cluster scale")
	t.AddNote("msgs/epoch is flat per protocol (central/tree ~O(1) per node with acks, dissemination ~log2 n): the region buys tolerance without extra traffic")
	return t, nil
}

// e15Seed derives a distinct, fixed seed per (network, region) cell.
func e15Seed(net, region int) uint64 {
	return uint64(0xE15<<16 | net<<8 | region)
}

// e15Run executes one cluster configuration. As in E1, work shrinks as
// the region grows so every cell spends the same mean body budget per
// epoch; the jitter draw is centered by subtracting half its amplitude.
func e15Run(proto string, net cluster.NetConfig, region int64, seed uint64) (*cluster.Result, error) {
	sim, err := cluster.New(cluster.Config{
		Protocol:   proto,
		Nodes:      e15Nodes,
		Epochs:     e15Epochs,
		Work:       e15Body - region - e15WorkJitter/2,
		WorkJitter: e15WorkJitter,
		Region:     region,
		Net:        net,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
