package exp

import (
	"fmt"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// E16 parameters: the node count sweeps from 16 to 4096 over a mildly
// lossy network while the per-epoch body stays fixed, so every column
// isolates how each protocol's synchronization structure scales. The
// typed-event engine makes the top of the sweep practical: one
// dissemination epoch at 4096 nodes is ~100k reliable messages, and the
// whole table is a few million simulated events.
const (
	e16Epochs     = 8
	e16Work       = 400
	e16WorkJitter = 80 // local drift amplitude
	e16Region     = 60 // barrier region available to absorb release latency
	e16Latency    = 20
	e16NetJitter  = 10
)

// e16Nodes is the scaling sweep (powers of four up to 4096).
var e16Nodes = []int{16, 64, 256, 1024, 4096}

// e16Net is the lossy-lite fault level: enough loss and duplication
// that retransmission machinery is exercised at every scale, small
// enough that recovery noise does not drown the scaling shapes.
var e16Net = cluster.NetConfig{
	Latency: e16Latency, Jitter: e16NetJitter, DropRate: 0.005, DupRate: 0.002,
}

// E16ClusterScaling asks the paper's hot-spot question (Section 1) at
// cluster scale: how do the three barrier protocols' message cost and
// unabsorbed stall grow as the cluster grows to 4096 nodes? Expected
// shapes, checked with slack: msgs/epoch per node is non-decreasing in
// n for every protocol — approaching a constant 2 for central and tree
// (one arrival plus one release per node) and growing as ceil(log2 n)
// for dissemination — and stall/epoch is non-decreasing in n, since a
// fixed region absorbs less of a release latency that lengthens with
// the coordinator's burst, the tree's depth, or the dissemination
// round count. All columns are deterministic (seeded, single-threaded
// per cell); engine wall-clock lives in BenchmarkClusterEngine and
// BenchmarkE16, per the repro note on time-shared measurements.
func E16ClusterScaling() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E16: cluster barrier scaling, %d..%d nodes (message passing, lossy network)",
			e16Nodes[0], e16Nodes[len(e16Nodes)-1]),
		"protocol", "nodes", "ticks", "stall/epoch", "msgs/epoch", "retrans/epoch",
	)
	protos := cluster.Protocols()
	nN := len(e16Nodes)
	// Flatten the (protocol, nodes) grid into one sweep; each cell keeps
	// its own fixed seed, so the table is bit-identical at any
	// parallelism.
	cells, err := sweepRun(len(protos)*nN, func(i int) (*cluster.Result, error) {
		proto := protos[i/nN]
		ni := i % nN
		res, err := e16Run(proto, e16Nodes[ni], e16Seed(i/nN, ni))
		if err != nil {
			return nil, fmt.Errorf("E16 %s/n=%d: %w", proto, e16Nodes[ni], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, proto := range protos {
		var stallSeries, msgSeries stats.Series
		for ni, nodes := range e16Nodes {
			res := cells[pi*nN+ni]
			stall := res.StallPerEpoch()
			msgs := res.MsgsPerEpoch()
			t.AddRow(proto, nodes, res.Ticks, stall, msgs, res.RetransmitsPerEpoch())
			stallSeries.Add(float64(nodes), stall)
			msgSeries.Add(float64(nodes), msgs)
		}
		// Loss-recovery noise moves stall by a few ticks per epoch at
		// the large-n points; the scaling trend dwarfs it.
		if !stallSeries.MonotoneSlack(1, 0.1, 3) {
			t.AddNote("WARNING: %s stall/epoch is not non-decreasing in nodes: %v", proto, stallSeries.Y)
		}
		if !msgSeries.MonotoneSlack(1, 0.05, 0.1) {
			t.AddNote("WARNING: %s msgs/epoch is not non-decreasing in nodes: %v", proto, msgSeries.Y)
		}
	}
	t.AddNote("msgs/epoch: central and tree approach 2 per node (arrival + release), dissemination grows as ceil(log2 n) — the protocols' structural cost")
	t.AddNote("stall/epoch grows with n for every protocol: a fixed region absorbs less of a release latency that lengthens with coordinator burst, tree depth, or round count")
	t.AddNote("wall-clock per engine is measured in BenchmarkClusterEngine/BenchmarkE16 (bench_test.go), not here: tables stay deterministic")
	return t, nil
}

// e16Seed derives a distinct, fixed seed per (protocol, nodes) cell.
func e16Seed(proto, nodes int) uint64 {
	return uint64(0xE16<<16 | proto<<8 | nodes)
}

// e16Run executes one cluster configuration of the scaling sweep.
func e16Run(proto string, nodes int, seed uint64) (*cluster.Result, error) {
	sim, err := cluster.New(cluster.Config{
		Protocol:   proto,
		Nodes:      nodes,
		Epochs:     e16Epochs,
		Work:       e16Work - e16WorkJitter/2,
		WorkJitter: e16WorkJitter,
		Region:     e16Region,
		Net:        e16Net,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
