package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/sched"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E7StaticScheduling reproduces Figure 11: 5 inner iterations on 3
// processors, so one processor per round executes an extra iteration.
// Four variants: {fixed, rotating} remainder placement × {point, fuzzy}
// barrier. Only the combination of rotation (equal work over rounds,
// Figure 11(b)) and a large barrier region (Figure 11(c)) eliminates
// idling; rotation alone still stalls every round, and a large region
// alone cannot absorb the *persistent* imbalance of the fixed schedule.
func E7StaticScheduling() (*trace.Table, error) {
	const (
		procs    = 3
		rounds   = 30
		iters    = 5
		iterCost = 40
		region   = 60
	)
	t := trace.NewTable(
		"E7: static scheduling of a non-divisible parallel loop (Figure 11)",
		"schedule", "barrier", "total stalls", "stalls/round/proc", "cycles", "imbalance(iters over rounds)",
	)
	variants := []struct {
		name   string
		assign func(round int) sched.Assignment
	}{
		{"fixed", func(int) sched.Assignment { return sched.Block(iters, procs) }},
		{"rotating", func(r int) sched.Assignment { return sched.Rotating(iters, procs, r) }},
	}
	for _, v := range variants {
		imb := sched.ImbalanceOver(v.assign, rounds)
		for _, reg := range []int64{0, region} {
			progs := make([]*isa.Program, procs)
			for p := 0; p < procs; p++ {
				progs[p] = must(workload.StaticSchedLoop{
					Self: p, Procs: procs, Rounds: rounds, Iters: iters,
					IterCost: iterCost, Region: reg, Assign: v.assign,
				}.Program())
			}
			_, res, err := runPrograms(machine.Config{Mem: simpleMem(procs, 256)}, progs)
			if err != nil {
				return nil, err
			}
			kind := "point"
			if reg > 0 {
				kind = "fuzzy"
			}
			t.AddRow(v.name, kind, res.TotalStalls(),
				perIter(res.TotalStalls()/procs, rounds), res.Cycles, imb)
		}
	}
	t.AddNote("only rotating+fuzzy approaches zero stalls: rotation equalizes totals, the region absorbs the per-round skew")
	return t, nil
}
