package exp

import (
	"fmt"
	"sort"

	"fuzzybarrier/internal/barrierd"
	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/transport"
)

// E19 parameters: the barrierd epoch service on the deterministic lossy
// SimNet, driven at a sweep of offered epoch rates. Each cell is one
// independent sim — same seed, same fault model — differing only in the
// gap (virtual ticks) between offered epoch start times. The load
// generator's methodology (cmd/barrierload) is reproduced in virtual
// time: epoch e is *offered* at t0 + e*gap, its arrivals are sent as
// soon as both that time has passed and epoch e-1 has completed, and
// its latency sample counts from the offered time — so when the offered
// rate exceeds service capacity the backlog shows up as queueing delay,
// the classic latency-vs-load hockey stick. gap = 0 is the closed loop
// (arrivals chase completions), the throughput ceiling.
//
// Wall-clock numbers for the same sweep on the real transports live in
// BENCH_SMOKE.json under "barrierd_load" (make bench-smoke); this table
// is the deterministic, byte-identical shape of the curve.
const (
	e19Shards     = 4
	e19Conns      = 4
	e19Groups     = 2
	e19ClientsPer = 32 // virtual clients per (conn, group)
	e19Epochs     = int64(30)
	e19Latency    = 2
	e19Jitter     = 5
	e19Seed       = 7
)

// e19Gaps sweeps offered inter-epoch gaps from well under the service
// time (overload) to well over it (underload); 0 = closed loop.
var e19Gaps = []int64{0, 25, 50, 100, 200, 400}

// E19ServiceLatency measures barrierd epoch-completion latency versus
// offered load. Expected shapes, checked with slack: achieved epoch
// rate is non-increasing as the offered gap grows (closed loop is the
// ceiling; deep underload achieves ~1/gap); p99 latency at heavy
// overload (smallest non-zero gap) is at least the deeply-underloaded
// p99 (backlog only adds delay); and the lossy fault model is actually
// exercised (drops and retransmissions both non-zero in every cell).
func E19ServiceLatency() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E19: barrierd epoch latency vs offered load, %d clients, %d shards, lossy sim",
			e19Conns*e19Groups*e19ClientsPer, e19Shards),
		"offered-gap", "achieved-gap", "p50-ticks", "p99-ticks", "retransmits", "net-dropped",
	)
	cells, err := sweepRun(len(e19Gaps), func(i int) (e19Cell, error) {
		cell, err := e19Run(e19Gaps[i])
		if err != nil {
			return e19Cell{}, fmt.Errorf("E19 gap=%d: %w", e19Gaps[i], err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for i, gap := range e19Gaps {
		c := cells[i]
		t.AddRow(gap, fmt.Sprintf("%.1f", c.achievedGap), fmt.Sprintf("%.1f", c.p50),
			fmt.Sprintf("%.1f", c.p99), c.retransmits, c.netDropped)
		if c.retransmits == 0 || c.netDropped == 0 {
			t.AddNote("WARNING: gap=%d: fault model idle (retransmits=%d dropped=%d)", gap, c.retransmits, c.netDropped)
		}
		// Slack: overloaded cells all achieve ~the service time, but
		// each gap is an independent sim whose event interleavings
		// differ by a few ticks.
		if i > 0 && c.achievedGap+5 < cells[i-1].achievedGap {
			t.AddNote("WARNING: achieved gap shrank as offered gap grew (%d: %.1f -> %d: %.1f)",
				e19Gaps[i-1], cells[i-1].achievedGap, gap, c.achievedGap)
		}
	}
	if over, under := cells[1], cells[len(cells)-1]; over.p99 < under.p99 {
		t.AddNote("WARNING: overload p99 (%.1f at gap=%d) below underload p99 (%.1f at gap=%d)",
			over.p99, e19Gaps[1], under.p99, e19Gaps[len(e19Gaps)-1])
	}
	t.AddNote("latency counts from the offered epoch time: offered gaps under the service time accumulate backlog, so p50/p99 grow without bound with epochs driven — the saturation side of the curve")
	t.AddNote("gap=0 is the closed loop (arrivals chase completions): the achieved-gap floor is the service time of one epoch through join-shard combine and release fan-out")
	t.AddNote("wall-clock for the same methodology on the channel and UDP transports: BENCH_SMOKE.json \"barrierd_load\" (make bench-smoke), cmd/barrierload for sweeps")
	return t, nil
}

// e19Cell is one offered-load measurement.
type e19Cell struct {
	achievedGap float64 // elapsed ticks per epoch actually sustained
	p50, p99    float64 // per-(group, epoch) completion latency, ticks
	retransmits int64   // client-side, all conns
	netDropped  int64   // datagrams the fault model dropped
}

// e19Run drives e19Epochs epochs at one offered gap on a fresh sim.
// All driver state is shared without locks: SimNet dispatch is
// single-threaded, so every callback below runs on the one sim
// goroutine (this drive is sim-only; the real-time transports use
// cmd/barrierload's blocking loop instead).
func e19Run(gap int64) (e19Cell, error) {
	nw := transport.NewSimNet(transport.SimConfig{
		Latency: e19Latency, Jitter: e19Jitter,
		DropRate: 0.1, DupRate: 0.03, Seed: e19Seed,
	})
	cfg := barrierd.SimConfig(e19Latency, e19Jitter)
	cfg.Shards = e19Shards
	svc, err := barrierd.Start(nw, cfg, nil, nil)
	if err != nil {
		return e19Cell{}, err
	}
	defer svc.Close()

	cs := make([]*barrierd.Conn, e19Conns)
	for i := range cs {
		c, err := barrierd.Dial(nw, transport.ConnAddrBase+transport.Addr(i), cfg)
		if err != nil {
			return e19Cell{}, err
		}
		cs[i] = c
	}
	ids := func(i, g int) []uint64 {
		out := make([]uint64, e19ClientsPer)
		for k := range out {
			out[k] = uint64((g*e19Conns+i)*e19ClientsPer + k)
		}
		return out
	}

	var (
		t0        int64
		joinsLeft = e19Conns * e19Groups
		sched     = make(map[int64]int64) // epoch -> offered start tick
		started   int64                   // epochs finished (first ... started-1 complete)
		samples   []float64
		doneAt    = int64(-1)
	)
	var startEpoch func(e int64)
	launch := func(e int64) {
		now := cs[0].Now()
		if gap > 0 {
			sched[e] = t0 + e*gap // offered time, even if we run late
		} else {
			sched[e] = now
		}
		for i, c := range cs {
			for g := 0; g < e19Groups; g++ {
				c.ArriveBatch(uint32(g), e, ids(i, g))
			}
		}
		// Completion per group: every conn has observed the release.
		for g := 0; g < e19Groups; g++ {
			g := g
			left := e19Conns
			for _, c := range cs {
				c := c
				c.WhenReleased(uint32(g), e, func(int64) {
					if left--; left > 0 {
						return
					}
					samples = append(samples, float64(c.Now()-sched[e]))
					if started++; started == e19Epochs*int64(e19Groups) {
						doneAt = c.Now()
					} else if started%int64(e19Groups) == 0 {
						startEpoch(e + 1)
					}
				})
			}
		}
	}
	startEpoch = func(e int64) {
		if e >= e19Epochs {
			return
		}
		if gap > 0 {
			if wait := t0 + e*gap - cs[0].Now(); wait > 0 {
				cs[0].After(wait, func() { launch(e) })
				return
			}
		}
		launch(e)
	}
	for i, c := range cs {
		for g := 0; g < e19Groups; g++ {
			c.JoinBatch(uint32(g), core.SignalWait, ids(i, g), func(int64) {
				if joinsLeft--; joinsLeft == 0 {
					t0 = cs[0].Now()
					startEpoch(0)
				}
			})
		}
	}
	if _, ok := nw.Run(50_000_000, func() bool { return doneAt >= 0 }); !ok {
		return e19Cell{}, fmt.Errorf("sim did not complete %d epochs (done %d group-epochs)", e19Epochs, started)
	}
	sort.Float64s(samples)
	cell := e19Cell{
		achievedGap: float64(doneAt-t0) / float64(e19Epochs),
		p50:         stats.Percentile(samples, 50),
		p99:         stats.Percentile(samples, 99),
		netDropped:  nw.Dropped,
	}
	for _, c := range cs {
		cell.retransmits += c.TransportStats().Retransmits
	}
	return cell, nil
}
