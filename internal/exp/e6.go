package exp

import (
	"strconv"

	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/trace"
)

// Fig9Source is the Figure 9 loop: the write a[j][i] and the read
// a[j-1][i-1] connect different processors both within an unrolled
// iteration pair (lexically forward dependence) and across iterations of
// the sequential loop (loop carried dependence).
const Fig9Source = `
int a[17][9];
for (j=1; j<=16; j++) do seq
  for (i=1; i<=8; i++) do par {
    a[j][i] = a[j-1][i-1] + i*j;
  }
`

// E6LexicallyForward reproduces Figures 9 and 10: the unrolled loop with
// two distinct barrier regions per unrolled iteration, simulated under
// increasing cache-miss drift. The reordered fuzzy code tolerates drift
// that forces the point-barrier version to stall heavily.
func E6LexicallyForward() (*trace.Table, error) {
	const procs = 8
	t := trace.NewTable(
		"E6: lexically forward + loop carried dependences under drift (Figures 9-10)",
		"drift(missEveryN)", "mode", "stalls", "cycles", "syncs",
	)
	for _, missEvery := range []int{0, 9, 5, 3} {
		for _, mode := range []compiler.RegionMode{compiler.RegionPoint, compiler.RegionReorder} {
			prog := lang.MustParse(Fig9Source)
			outer := prog.Body[0].(*lang.ForStmt)
			unrolled, err := compiler.UnrollSeq(outer, 2, nil)
			if err != nil {
				return nil, err
			}
			prog.Body[0] = unrolled
			_, res, err := compileAndRun(prog, procs, mode, missEvery)
			if err != nil {
				return nil, err
			}
			label := "none"
			if missEvery > 0 {
				label = "every " + strconv.Itoa(missEvery)
			}
			t.AddRow(label, mode.String(), res.TotalStalls(), res.Cycles, res.Syncs())
		}
	}
	t.AddNote("unrolling once yields two barrier regions per unrolled iteration: lexically-forward then loop-carried (Figure 10)")
	return t, nil
}
