package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E2BarrierScaling compares the Section 1 software barriers — the
// centralized counter (linear cost, hot spots) and the dissemination
// barrier ("the best possible software implementation": logarithmic) —
// against the hardware fuzzy barrier used as a point barrier, as the
// processor count grows. All three are measured on the same deterministic
// simulator: the software barriers are ordinary instruction sequences
// (fetch-and-add plus spin loops), the hardware barrier is the
// fuzzy-barrier unit with an empty region.
//
// Memory is interleaved across one module per processor, so cost
// differences come from *address contention*, not raw bandwidth: the
// counter barrier's single shared counter serializes at one module (the
// reference-[4] hot spot), while the dissemination barrier's flags spread
// across modules and its rounds proceed in parallel.
func E2BarrierScaling() (*trace.Table, error) {
	const episodes = 100
	t := trace.NewTable(
		"E2: barrier cost scaling — counter vs. dissemination vs. fuzzy hardware",
		"procs", "impl", "cycles/episode", "instrs/episode", "mem-accesses/episode", "hotspot-max",
	)
	procCounts := []int{2, 4, 8, 16}
	impls := []string{"central-sw", "dissem-sw", "fuzzy-hw"}
	type e2Cell struct {
		cycles, instrs, mem float64
		hotspot             int64
	}
	// One sweep cell per (procs, impl) point; each builds its own
	// programs and machine, so the cells are independent.
	cells, err := sweepRun(len(procCounts)*len(impls), func(i int) (e2Cell, error) {
		procs := procCounts[i/len(impls)]
		impl := impls[i%len(impls)]
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			switch impl {
			case "central-sw":
				progs[p] = must(workload.CentralBarrierLoop{
					Self: p, Procs: procs, Work: workload.BarrierOnlyWork(episodes),
				}.Program())
			case "dissem-sw":
				progs[p] = must(workload.DisseminationBarrierLoop{
					Self: p, Procs: procs, Work: workload.BarrierOnlyWork(episodes),
				}.Program())
			case "fuzzy-hw":
				progs[p] = must(workload.SyncLoop{
					Self: p, Procs: procs,
					Work: workload.UniformWork(episodes, 0), Region: 0,
				}.Program())
			}
		}
		memCfg := simpleMem(procs, 1024)
		memCfg.ModuleBusy = 2
		m, res, err := runPrograms(machine.Config{Mem: memCfg}, progs)
		if err != nil {
			return e2Cell{}, err
		}
		var instrs int64
		for _, ps := range res.Procs {
			instrs += ps.Instructions
		}
		return e2Cell{
			cycles:  perIter(res.Cycles, episodes),
			instrs:  perIter(instrs/int64(procs), episodes),
			mem:     perIter(res.Mem.Accesses/int64(procs), episodes),
			hotspot: m.Mem().MaxAddrCount(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(procCounts[i/len(impls)], impls[i%len(impls)], c.cycles, c.instrs, c.mem, c.hotspot)
	}
	t.AddNote("central-sw grows linearly with P (hot-spot serialization); dissem-sw grows ~logarithmically; fuzzy-hw stays constant with zero memory traffic")
	t.AddNote("runtime (goroutine) forms of all five baselines are in bench_test.go BenchmarkE2Barriers")
	return t, nil
}
