package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E2BarrierScaling compares the Section 1 software barriers — the
// centralized counter (linear cost, hot spots) and the dissemination
// barrier ("the best possible software implementation": logarithmic) —
// against the hardware fuzzy barrier used as a point barrier, as the
// processor count grows. All three are measured on the same deterministic
// simulator: the software barriers are ordinary instruction sequences
// (fetch-and-add plus spin loops), the hardware barrier is the
// fuzzy-barrier unit with an empty region.
//
// Memory is interleaved across one module per processor, so cost
// differences come from *address contention*, not raw bandwidth: the
// counter barrier's single shared counter serializes at one module (the
// reference-[4] hot spot), while the dissemination barrier's flags spread
// across modules and its rounds proceed in parallel.
func E2BarrierScaling() (*trace.Table, error) {
	const episodes = 100
	t := trace.NewTable(
		"E2: barrier cost scaling — counter vs. dissemination vs. fuzzy hardware",
		"procs", "impl", "cycles/episode", "instrs/episode", "mem-accesses/episode", "hotspot-max",
	)
	run := func(procs int, name string, progs []*isa.Program) error {
		memCfg := simpleMem(procs, 1024)
		memCfg.ModuleBusy = 2
		m, res, err := runPrograms(machine.Config{Mem: memCfg}, progs)
		if err != nil {
			return err
		}
		var instrs int64
		for _, ps := range res.Procs {
			instrs += ps.Instructions
		}
		t.AddRow(procs, name,
			perIter(res.Cycles, episodes),
			perIter(instrs/int64(procs), episodes),
			perIter(res.Mem.Accesses/int64(procs), episodes),
			m.Mem().MaxAddrCount())
		return nil
	}
	for _, procs := range []int{2, 4, 8, 16} {
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			progs[p] = must(workload.CentralBarrierLoop{
				Self: p, Procs: procs, Work: workload.BarrierOnlyWork(episodes),
			}.Program())
		}
		if err := run(procs, "central-sw", progs); err != nil {
			return nil, err
		}

		progs = make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			progs[p] = must(workload.DisseminationBarrierLoop{
				Self: p, Procs: procs, Work: workload.BarrierOnlyWork(episodes),
			}.Program())
		}
		if err := run(procs, "dissem-sw", progs); err != nil {
			return nil, err
		}

		progs = make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			progs[p] = must(workload.SyncLoop{
				Self: p, Procs: procs,
				Work: workload.UniformWork(episodes, 0), Region: 0,
			}.Program())
		}
		if err := run(procs, "fuzzy-hw", progs); err != nil {
			return nil, err
		}
	}
	t.AddNote("central-sw grows linearly with P (hot-spot serialization); dissem-sw grows ~logarithmically; fuzzy-hw stays constant with zero memory traffic")
	t.AddNote("runtime (goroutine) forms of all five baselines are in bench_test.go BenchmarkE2Barriers")
	return t, nil
}
