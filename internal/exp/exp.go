// Package exp regenerates the paper's evaluation: one function per table
// or figure (see DESIGN.md's per-experiment index, E1..E21). Each
// experiment returns a trace.Table whose rows are the series the paper
// reports; EXPERIMENTS.md records the expected shapes next to the paper's
// numbers.
//
// Simulator-based experiments are fully deterministic. Runtime
// (goroutine) measurements appear only in bench_test.go, because
// wall-clock numbers on a time-shared scheduler are not table-stable —
// the repro note for this paper calls out exactly that hazard.
package exp

import (
	"fmt"
	"sync/atomic"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/sweep"
	"fuzzybarrier/internal/trace"
)

// parallelism is the worker count for sweep cells; <= 0 means
// GOMAXPROCS. It is process-global because experiments are invoked
// through nullary Run functions (one per table); the CLI sets it once
// from -parallel before running anything.
var parallelism atomic.Int64

// SetParallelism sets the number of workers used to execute independent
// sweep cells inside experiments; n <= 0 restores the default
// (GOMAXPROCS). Cell aggregation is index-ordered, so every table is
// byte-identical no matter the setting — see internal/sweep.
func SetParallelism(n int) { parallelism.Store(int64(n)) }

// Parallelism returns the effective sweep worker count.
func Parallelism() int { return sweep.Workers(int(parallelism.Load())) }

// progressHook, when set, observes every sweep cell completion
// (sweep.RunProgress contract: serialized calls, counts 1..n). Like
// parallelism it is process-global, set once by the CLI before any
// experiment runs.
var progressHook atomic.Value // of progressFn

type progressFn func(done, total int)

// SetProgress installs a hook called after each sweep cell completes,
// with the completed and total cell counts of the current experiment's
// sweep; nil disables it. Long sweeps (E15/E16/E21) are otherwise
// silent for minutes.
func SetProgress(hook func(done, total int)) { progressHook.Store(progressFn(hook)) }

// Progress returns the installed hook, or nil.
func Progress() func(done, total int) {
	if h, ok := progressHook.Load().(progressFn); ok && h != nil {
		return h
	}
	return nil
}

// sweepRun executes n independent experiment cells on the configured
// worker pool, returning results in index order and reporting cell
// completions to the installed progress hook.
func sweepRun[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep.RunProgress(Parallelism(), n, Progress(), fn)
}

// Experiment identifies one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*trace.Table, error)
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Sync cost vs. barrier-region size (Section 8)", E1SyncCostVsRegionSize},
		{"E2", "Software vs. hardware barrier scaling and hot spots (Section 1)", E2BarrierScaling},
		{"E3", "Non-barrier region shrinking by reordering (Figure 4)", E3RegionReordering},
		{"E4", "Loop distribution enlarges barrier regions (Figure 5)", E4LoopDistribution},
		{"E5", "If-statements in barrier regions (Figure 7)", E5VariableLengthStreams},
		{"E6", "Lexically forward dependences under drift (Figures 9-10)", E6LexicallyForward},
		{"E7", "Static scheduling with rotating remainder (Figure 11)", E7StaticScheduling},
		{"E8", "Run-time scheduling of loop iterations (Figure 12)", E8RuntimeScheduling},
		{"E9", "Invalid branch between barriers (Figure 2)", E9InvalidBranch},
		{"E10", "Stall probability vs. region length (Section 2)", E10StallProbability},
		{"E11", "Multiple barriers and the N-1 bound (Section 5, Figure 6)", E11MultipleBarriers},
		{"E12", "Interrupts in barrier regions (Section 9 future work, extension)", E12InterruptTolerance},
		{"E13", "Procedure calls from barrier regions (Section 9 future work, extension)", E13ProcedureCalls},
		{"E14", "Per-phase stall attribution (observability extension)", E14PhaseAttribution},
		{"E15", "Cluster sync cost vs. region size over a lossy network (extension)", E15ClusterSync},
		{"E16", "Cluster barrier scaling to 4096 nodes (extension)", E16ClusterScaling},
		{"E17", "Exhaustive model checking + exact stall oracle (verification extension)", E17ModelCheckAndOracle},
		{"E18", "Fleet epoch aggregation: reduce-barrier allreduce vs central gather (extension)", E18FleetAggregation},
		{"E19", "barrierd epoch latency vs offered load over lossy links (extension)", E19ServiceLatency},
		{"E20", "Hierarchical vs flat split barriers: hot-spot traffic under routing (extension)", E20HierScaling},
		{"E21", "Parallel-engine shard equivalence + batched-seed replay (engine extension)", E21ParallelEquivalence},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// simpleMem is a fast conflict-free memory configuration.
func simpleMem(procs, words int) mem.Config {
	return mem.Config{
		Words: words, Procs: procs,
		HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1,
	}
}

// runPrograms loads one program per processor and runs to completion.
func runPrograms(cfg machine.Config, progs []*isa.Program) (*machine.Machine, *machine.Result, error) {
	cfg.Procs = len(progs)
	m := machine.New(cfg)
	for p, prog := range progs {
		if err := m.Load(p, prog); err != nil {
			return nil, nil, err
		}
	}
	res, err := m.Run()
	if err != nil {
		return m, res, err
	}
	return m, res, nil
}

// perIter divides a total by an iteration count, guarding zero.
func perIter(total int64, iters int) float64 {
	if iters == 0 {
		return 0
	}
	return float64(total) / float64(iters)
}

// must panics on error — used only for statically-correct workload
// construction inside experiments.
func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("exp: workload construction failed: %v", err))
	}
	return v
}
