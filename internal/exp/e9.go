package exp

import (
	"errors"
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
)

// E9InvalidBranch reproduces Figure 2: processor P0 branches directly
// from barrier1 into barrier2, crossing both with a single
// synchronization, which deadlocks its partner at barrier2. The
// experiment shows (a) the static validator rejecting the program, (b)
// the simulator detecting the resulting deadlock, and (c) the
// synchronization-count mismatch the paper predicts.
func E9InvalidBranch() (*trace.Table, error) {
	b0 := isa.NewBuilder("fig2-invalid")
	b0.BarrierInit(1, uint64(core.MaskOf(1)))
	b0.InBarrier().Nop().Br("bar2")
	b0.InNonBarrier().Work(10)
	b0.InBarrier().Label("bar2").Nop().Nop()
	b0.InNonBarrier().Halt()
	p0, err := b0.Build()
	if err != nil {
		return nil, err
	}

	b1 := isa.NewBuilder("fig2-partner")
	b1.BarrierInit(1, uint64(core.MaskOf(0)))
	b1.InBarrier().Nop()
	b1.InNonBarrier().Work(10)
	b1.InBarrier().Nop().Nop()
	b1.InNonBarrier().Halt()
	p1, err := b1.Build()
	if err != nil {
		return nil, err
	}

	t := trace.NewTable(
		"E9: invalid branch between barriers (Figure 2)",
		"check", "outcome",
	)
	verr := p0.Validate(false)
	switch {
	case verr == nil:
		t.AddRow("static validation", "MISSED (unexpected)")
	case errors.Is(verr, isa.ErrInvalidBranch):
		t.AddRow("static validation", "rejected: cross-barrier branch detected")
	default:
		t.AddRow("static validation", fmt.Sprintf("rejected (other): %v", verr))
	}
	if err := p1.Validate(false); err != nil {
		return nil, fmt.Errorf("partner program should be valid: %w", err)
	}
	t.AddRow("partner validation", "accepted")

	m := machine.New(machine.Config{Procs: 2, Mem: simpleMem(2, 128), MaxCycles: 100_000})
	if err := m.Load(0, p0); err != nil {
		return nil, err
	}
	if err := m.Load(1, p1); err != nil {
		return nil, err
	}
	res, runErr := m.Run()
	switch {
	case errors.Is(runErr, machine.ErrDeadlock):
		t.AddRow("simulation", "deadlock detected (P1 waits forever at barrier2)")
	case runErr != nil:
		t.AddRow("simulation", fmt.Sprintf("failed differently: %v", runErr))
	default:
		t.AddRow("simulation", "completed (unexpected)")
	}
	if res != nil && len(res.Procs) == 2 {
		t.AddRow("P0 synchronizations", res.Procs[0].Syncs)
		t.AddRow("P1 synchronizations", res.Procs[1].Syncs)
		t.AddRow("P0 halted (crossed both barriers)", res.Procs[0].Halted)
		t.AddRow("P1 halted", res.Procs[1].Halted)
		if res.Procs[0].Halted && !res.Procs[1].Halted {
			t.AddNote("P0 crossed both barriers on a single synchronization while P1 deadlocked at barrier2 — the Figure 2 failure")
		} else {
			t.AddNote("WARNING: expected P0 to run to completion and P1 to deadlock")
		}
	}
	return t, nil
}
