package exp

import (
	"fmt"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E1 parameters: 4 processors (the Encore Multimax of Section 8), a fixed
// per-iteration body budget, and execution-rate drift injected as random
// jitter on the non-barrier work. The barrier region grows from zero to
// half the body, exactly the sweep the paper reports (10,000 µs → 300 µs).
const (
	e1Procs  = 4
	e1Iters  = 300
	e1Body   = 200 // cycles per iteration
	e1Jitter = 80  // drift amplitude in cycles
)

// E1SyncCostVsRegionSize reproduces the Section 8 measurement on the
// deterministic simulator: synchronization cost per iteration (stall
// cycles plus the elapsed-time excess over the drift-free ideal) as the
// barrier region grows from 0 to half the loop body.
func E1SyncCostVsRegionSize() (*trace.Table, error) {
	t := trace.NewTable(
		"E1: synchronization cost vs. barrier-region size (4 processors, Section 8)",
		"region(cycles)", "region(%body)", "stall/iter", "cycles/iter", "sync-overhead/iter", "speedup-vs-point",
	)
	var base float64
	var series stats.Series
	// Ideal cycles/iteration with no synchronization at all: the mean
	// per-iteration body cost (work mean + region = e1Body) plus the two
	// bookkeeping instructions of the unrolled loop. Everything above the
	// ideal is synchronization overhead: stall time plus the wait for the
	// slowest processor's drift.
	const ideal = e1Body + 2
	regions := []int64{0, 20, 40, 60, 80, 100}
	type e1Cell struct{ stall, cyc float64 }
	cells, err := sweepRun(len(regions), func(i int) (e1Cell, error) {
		stall, cyc := e1Run(regions[i])
		return e1Cell{stall, cyc}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, region := range regions {
		stall, cyc := cells[i].stall, cells[i].cyc
		overhead := cyc - ideal
		if overhead < 0 {
			overhead = 0
		}
		if region == 0 {
			base = overhead
		}
		speedup := stats.Speedup(base, overhead)
		t.AddRow(region, 100*region/e1Body, stall, cyc, overhead, trimSpeedup(speedup))
		series.Add(float64(region), overhead)
	}
	if !series.Monotone(-1, 0.15) {
		t.AddNote("WARNING: overhead series is not monotonically decreasing (unexpected)")
	} else {
		t.AddNote("overhead falls monotonically with region size, matching the 10,000->300 microsecond shape of Section 8")
	}
	return t, nil
}

func trimSpeedup(s float64) string {
	if s > 9999 {
		return ">9999x"
	}
	return fmt.Sprintf("%.1fx", s)
}

// e1Run executes the drift workload with the given region size and
// returns (stall cycles, total cycles) averaged per iteration per
// processor.
func e1Run(region int64) (stallPerIter, cyclesPerIter float64) {
	progs := make([]*isa.Program, e1Procs)
	for p := 0; p < e1Procs; p++ {
		rng := workload.NewRNG(uint64(7919*p + 13))
		work := workload.DriftWork(rng, e1Iters, e1Body-region-e1Jitter/2, e1Jitter)
		progs[p] = must(workload.SyncLoop{
			Self: p, Procs: e1Procs, Work: work, Region: region,
		}.Program())
	}
	_, res, err := runPrograms(machine.Config{Mem: simpleMem(e1Procs, 1024)}, progs)
	if err != nil {
		panic(err)
	}
	stall := float64(res.TotalStalls()) / float64(e1Procs)
	return stall / float64(e1Iters), float64(res.Cycles) / float64(e1Iters)
}
