package exp

import (
	"fmt"
	"sync"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/trace"
)

// E11MultipleBarriers reproduces the Section 5 / Figure 6 discipline at
// the runtime level: a binary spawn tree of streams in which every spawn
// allocates exactly one barrier (shared with the parent) and every merge
// releases it. The experiment checks the paper's bound — a system with N
// streams never needs more than N−1 barriers — and that disjoint subsets
// synchronize independently.
func E11MultipleBarriers() (*trace.Table, error) {
	t := trace.NewTable(
		"E11: dynamic streams, barrier allocation and the N-1 bound (Section 5)",
		"streams(N)", "spawns", "peak barriers", "bound(N-1)", "within bound",
	)
	for _, n := range []int{2, 4, 8, 16} {
		peak, spawns, err := runSpawnTree(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, spawns, peak, n-1, peak <= n-1)
	}
	t.AddNote("each spawn allocates exactly one barrier shared with the parent; merges release it (Figure 6's stream merging)")
	return t, nil
}

// runSpawnTree spawns n-1 children of a root stream (as a chain of
// sibling spawns, like Figure 6's S0..S4), synchronizes with each several
// times, then merges them all.
func runSpawnTree(n int) (peak, spawns int, err error) {
	tree, root := core.NewSpawnTree(n, 8)
	var wg sync.WaitGroup
	children := make([]*core.Stream, 0, n-1)
	for i := 0; i < n-1; i++ {
		child, err := tree.Spawn(root)
		if err != nil {
			return 0, 0, fmt.Errorf("spawn %d: %w", i, err)
		}
		children = append(children, child)
		wg.Add(1)
		go func(s *core.Stream) {
			defer wg.Done()
			// The child synchronizes with its parent a few times (repeated
			// reuse of the shared barrier), then participates in the merge.
			for k := 0; k < 3; k++ {
				s.Barrier().Await()
			}
			s.Barrier().Await() // merge rendezvous
		}(child)
	}
	// Parent side: pairwise synchronizations, then merges.
	for k := 0; k < 3; k++ {
		for _, c := range children {
			if err := root.SyncWithChild(c); err != nil {
				return 0, 0, err
			}
		}
	}
	for _, c := range children {
		if err := tree.Merge(c); err != nil {
			return 0, 0, err
		}
	}
	wg.Wait()
	return tree.PeakBarriers(), n - 1, nil
}
