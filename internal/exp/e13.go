package exp

import (
	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
)

// E13ProcedureCalls explores the second Section 9 future-work item:
// "currently the possibilities of allowing procedure calls from barrier
// regions are being investigated ... allowing parallel procedure calls
// can significantly increase the amount of parallelism".
//
// Our model gives a concrete answer. Region membership comes from the
// executed instruction's barrier bit, so a call from inside a barrier
// region behaves according to how the *callee* was compiled:
//
//   - callee compiled as barrier code: the caller's region continues
//     through the call — one synchronization per iteration, and the
//     callee's work still absorbs drift;
//
//   - callee compiled as ordinary (non-barrier) code: the region is
//     split at the call — the processor must synchronize before the
//     callee's first instruction and starts a new region on return, so
//     every call doubles the synchronization count (consistent across
//     identical streams, but it halves the drift tolerance and turns the
//     call boundary into a point barrier);
//
//   - the practical fix is the paper's own multiple-version technique
//     (Figure 12): compile the procedure twice, once with barrier bits
//     and once without, and call the version matching the call site.
//
// The experiment measures all three configurations under drift.
func E13ProcedureCalls() (*trace.Table, error) {
	const (
		procs = 4
		iters = 100
	)
	t := trace.NewTable(
		"E13 (extension): procedure calls from barrier regions (Section 9 future work)",
		"callee compiled as", "syncs", "stalls/iter", "cycles/iter",
	)
	variants := []string{"barrier code", "ordinary code", "two versions"}
	type e13Cell struct {
		syncs        int64
		stalls, cycs float64
	}
	cells, err := sweepRun(len(variants), func(i int) (e13Cell, error) {
		variant := variants[i]
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			progs[p] = e13Program(p, procs, iters, variant)
		}
		_, res, err := runPrograms(machine.Config{Mem: simpleMem(procs, 256)}, progs)
		if err != nil {
			return e13Cell{}, err
		}
		return e13Cell{
			syncs:  res.Syncs(),
			stalls: perIter(res.TotalStalls()/procs, iters),
			cycs:   perIter(res.Cycles, iters),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(variants[i], c.syncs, c.stalls, c.cycs)
	}
	t.AddNote("ordinary-code callees split the region (2x syncs, more stalls); compiling a barrier version of the procedure — the Figure 12 multi-version technique — restores full tolerance")
	return t, nil
}

// e13Program builds a drift loop whose barrier region calls a helper
// procedure. Non-barrier work alternates so drift is transient.
func e13Program(self, procs, iters int, variant string) *isa.Program {
	b := isa.NewBuilder("e13")
	b.BarrierInit(1, uint64(core.AllExcept(procs, self))).
		Ldi(1, 0).Ldi(2, int64(iters)).Br("loop")

	// helperB: the barrier-compiled version; helperN: ordinary code.
	if variant != "ordinary code" {
		b.InBarrier().Label("helperB").Work(20).Ret()
	}
	if variant != "barrier code" {
		b.InNonBarrier().Label("helperN").Work(20).Ret()
	}

	b.InNonBarrier().Label("loop")
	// Alternating transient drift: 5 or 25 cycles by iteration parity.
	b.Ldi(5, 2).Alu(isa.MOD, 6, 1, 5).Ldi(7, int64(self%2)).
		CondBr(isa.BEQ, 6, 7, "slow").
		Work(5).Br("join")
	b.Label("slow").Work(25)
	b.Label("join")
	b.InBarrier()
	switch variant {
	case "barrier code", "two versions":
		// Call sites inside regions use the barrier-compiled version.
		b.Call("helperB")
	case "ordinary code":
		b.Call("helperN")
	}
	b.Addi(1, 1, 1).CondBr(isa.BLT, 1, 2, "loop")
	b.InNonBarrier().Halt()
	return b.MustBuild()
}
