package exp

import (
	"fmt"
	"hash/fnv"
	"strings"

	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/trace"
)

// E21 parameters: a lossy mid-size cluster — large enough that every
// shard count in the sweep owns multiple nodes and the conservative
// windows carry real cross-shard traffic, small enough that the full
// grid (protocols x shard counts, logs on) regenerates in seconds.
const (
	e21Nodes  = 64
	e21Epochs = 12
	e21Seed   = 0xE21
	e21BatchK = 16 // seeds replayed through the lockstep batch executor
)

// e21Shards is the shard-count sweep: serial baseline, then powers of
// two past any plausible GOMAXPROCS rounding.
var e21Shards = []int{1, 2, 4, 8}

// e21Config is the shared run configuration; only Seed and Shards vary.
func e21Config() cluster.Config {
	return cluster.Config{
		Protocol: "dissemination", Nodes: e21Nodes, Epochs: e21Epochs,
		Work: 150, WorkJitter: 60, Region: 30,
		Net:  cluster.NetConfig{Latency: 12, Jitter: 25, DropRate: 0.1, DupRate: 0.05},
		Seed: e21Seed,
	}
}

// E21ParallelEquivalence is the determinism audit of the parallel
// simulation paths (DESIGN.md section 14). For every protocol and shard
// count it replays one lossy run with full event logging and
// fingerprints the transcript (event log + Result); all shard counts of
// a protocol must produce the serial fingerprint bit-for-bit. A second
// section replays E21_BATCH_K seeds through the lockstep multi-seed
// batch executor and counts exact Result matches against solo runs.
// The table is fully deterministic — wall-clock speedup is measured by
// `barbench -sim` and enforced by TestParallelEngineSpeedupGate in
// `make bench-gate`, per the repro note on time-shared measurements.
func E21ParallelEquivalence() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E21: parallel-engine equivalence, %d nodes (shard counts %v) + %d-seed batch replay",
			e21Nodes, e21Shards, e21BatchK),
		"protocol", "shards", "ticks", "msgs/epoch", "retrans/epoch", "transcript",
	)
	protos := cluster.Protocols()
	nS := len(e21Shards)
	type cell struct {
		res  *cluster.Result
		hash uint64
	}
	cells, err := sweepRun(len(protos)*nS, func(i int) (cell, error) {
		cfg := e21Config()
		cfg.Protocol = protos[i/nS]
		cfg.Shards = e21Shards[i%nS]
		cfg.LogEvents = true
		sim, err := cluster.New(cfg)
		if err != nil {
			return cell{}, fmt.Errorf("E21 %s/shards=%d: %w", cfg.Protocol, cfg.Shards, err)
		}
		res, err := sim.Run()
		if err != nil {
			return cell{}, fmt.Errorf("E21 %s/shards=%d: %w", cfg.Protocol, cfg.Shards, err)
		}
		h := fnv.New64a()
		h.Write([]byte(strings.Join(sim.EventLog(), "\n")))
		fmt.Fprintf(h, "%+v", res)
		return cell{res: res, hash: h.Sum64()}, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, proto := range protos {
		serial := cells[pi*nS]
		for si, shards := range e21Shards {
			c := cells[pi*nS+si]
			t.AddRow(proto, shards, c.res.Ticks, c.res.MsgsPerEpoch(), c.res.RetransmitsPerEpoch(),
				fmt.Sprintf("%016x", c.hash))
			if c.hash != serial.hash {
				t.AddNote("WARNING: %s shards=%d transcript diverges from serial (%016x vs %016x)",
					proto, shards, c.hash, serial.hash)
			}
		}
	}

	// Batch section: the lockstep multi-seed executor must reproduce
	// solo Runs exactly, seed by seed.
	seeds := make([]uint64, e21BatchK)
	for i := range seeds {
		seeds[i] = e21Seed + uint64(i+1)
	}
	batch, err := sweepRun(len(protos), func(pi int) (int, error) {
		cfg := e21Config()
		cfg.Protocol = protos[pi]
		results, errs := cluster.RunBatch(cfg, seeds, Parallelism(), nil)
		matched := 0
		for i, seed := range seeds {
			if errs[i] != nil {
				return matched, fmt.Errorf("E21 batch %s/seed=%d: %w", cfg.Protocol, seed, errs[i])
			}
			solo := cfg
			solo.Seed = seed
			sim, err := cluster.New(solo)
			if err != nil {
				return matched, err
			}
			want, err := sim.Run()
			if err != nil {
				return matched, fmt.Errorf("E21 solo %s/seed=%d: %w", cfg.Protocol, seed, err)
			}
			if fmt.Sprintf("%+v", results[i]) == fmt.Sprintf("%+v", want) {
				matched++
			}
		}
		return matched, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, proto := range protos {
		if batch[pi] != e21BatchK {
			t.AddNote("WARNING: %s batch executor matched only %d/%d solo Results", proto, batch[pi], e21BatchK)
		}
	}
	t.AddNote("transcript = FNV-1a over the full event log + Result; every shard count of a protocol must hash identically (conservative windows + canonical event keys, DESIGN.md section 14)")
	t.AddNote("batch replay: %d seeds per protocol through the lockstep SoA executor, every Result equal to its solo Run", e21BatchK)
	t.AddNote("wall-clock speedup is deliberately absent: it lives in barbench -sim (parallel_engine/seed_batch rows of BENCH_SMOKE.json) and the bench-gate speedup tests")
	return t, nil
}
