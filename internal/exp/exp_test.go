package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment and sanity-checks the
// produced tables: every experiment must produce rows and no table may
// carry a self-reported WARNING note (the generators validate their own
// expected shapes).
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			out := tbl.String()
			if strings.Contains(out, "WARNING") {
				t.Errorf("%s self-reported a shape violation:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All length mismatch")
	}
}

func cell(t *testing.T, tbl interface{ Rows() [][]string }, row, col int) float64 {
	t.Helper()
	rows := tbl.Rows()
	if row >= len(rows) || col >= len(rows[row]) {
		t.Fatalf("cell (%d,%d) out of range", row, col)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, rows[row][col], err)
	}
	return v
}

// TestE1OverheadDrops checks the headline shape: the sync overhead with a
// half-body region must be at least 5x smaller than with a zero region
// (the paper reports ~33x on the Encore).
func TestE1OverheadDrops(t *testing.T) {
	tbl, err := E1SyncCostVsRegionSize()
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 4)
	last := cell(t, tbl, tbl.NumRows()-1, 4)
	if first < 1 {
		t.Fatalf("zero-region overhead %v implausibly low", first)
	}
	if last*5 > first {
		t.Errorf("overhead should drop >=5x: region0=%v halfBody=%v", first, last)
	}
}

// TestE2ScalingShapes checks Section 1's cost spectrum on one table:
// central grows linearly with P, dissemination logarithmically, and the
// fuzzy hardware stays flat.
func TestE2ScalingShapes(t *testing.T) {
	tbl, err := E2BarrierScaling()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (central, dissem, fuzzy) triples for P = 2,4,8,16.
	rows := tbl.NumRows()
	if rows != 12 {
		t.Fatalf("rows = %d, want 12", rows)
	}
	central := func(i int) float64 { return cell(t, tbl, 3*i, 2) }
	dissem := func(i int) float64 { return cell(t, tbl, 3*i+1, 2) }
	fuzzy := func(i int) float64 { return cell(t, tbl, 3*i+2, 2) }
	// Central doubles with P (linear).
	for i := 0; i < 3; i++ {
		ratio := central(i+1) / central(i)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("central P-doubling ratio %d = %.2f, want ~2 (linear)", i, ratio)
		}
	}
	// Dissemination grows by roughly a constant per doubling (log).
	d01 := dissem(1) - dissem(0)
	d23 := dissem(3) - dissem(2)
	if d01 <= 0 || d23 <= 0 || d23 > 2*d01 {
		t.Errorf("dissemination increments per doubling = %v then %v, want ~constant (log)", d01, d23)
	}
	// Fuzzy flat, and dominant at P=16.
	if fuzzy(3) > fuzzy(0)*1.5 {
		t.Errorf("fuzzy barrier should stay ~flat: P2=%v P16=%v", fuzzy(0), fuzzy(3))
	}
	if central(3) < fuzzy(3)*5 || central(3) < dissem(3)*2 {
		t.Errorf("at P=16: central=%v dissem=%v fuzzy=%v, want central >> dissem > fuzzy",
			central(3), dissem(3), fuzzy(3))
	}
}

// TestE3ReorderingShrinks checks the Figure 4 shape.
func TestE3ReorderingShrinks(t *testing.T) {
	tbl, err := E3RegionReordering()
	if err != nil {
		t.Fatal(err)
	}
	spanNB := cell(t, tbl, 0, 2)
	reorderNB := cell(t, tbl, 1, 2)
	if reorderNB >= spanNB {
		t.Errorf("reordering should shrink non-barrier region: span=%v reorder=%v", spanNB, reorderNB)
	}
}

// TestE5FuzzyIfBeatsPoint checks that placing the if-statement in the
// barrier region reduces stalls for unequal branches.
func TestE5FuzzyIfBeatsPoint(t *testing.T) {
	tbl, err := E5VariableLengthStreams()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (point, fuzzy) pairs per spread; compare the most
	// unequal spread (last pair).
	n := tbl.NumRows()
	point := cell(t, tbl, n-2, 2)
	fuzzy := cell(t, tbl, n-1, 2)
	if fuzzy*2 > point {
		t.Errorf("fuzzy if-in-region stalls (%v) should be well below point (%v)", fuzzy, point)
	}
}

// TestE7OnlyRotatingFuzzyEliminatesIdle checks the Figure 11 shape.
func TestE7OnlyRotatingFuzzyEliminatesIdle(t *testing.T) {
	tbl, err := E7StaticScheduling()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: fixed/point, fixed/fuzzy, rotating/point, rotating/fuzzy.
	fixedPoint := cell(t, tbl, 0, 2)
	rotFuzzy := cell(t, tbl, 3, 2)
	if rotFuzzy*10 > fixedPoint {
		t.Errorf("rotating+fuzzy stalls (%v) should be ~10x below fixed+point (%v)", rotFuzzy, fixedPoint)
	}
}

// TestE8GSSBeatsSelfOnSchedulingOps checks that GSS needs far fewer
// scheduling operations than one-at-a-time self-scheduling while keeping
// stalls low with the fuzzy region.
func TestE8GSSBeatsSelfOnSchedulingOps(t *testing.T) {
	tbl, err := E8RuntimeScheduling()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: self/point, self/fuzzy, chunk/point, chunk/fuzzy, gss/point, gss/fuzzy.
	selfOps := cell(t, tbl, 0, 4)
	gssOps := cell(t, tbl, 4, 4)
	if gssOps*2 > selfOps {
		t.Errorf("GSS scheduling ops (%v) should be well below self-scheduling (%v)", gssOps, selfOps)
	}
}

// TestE10LargeRegionsNearlyEliminateStalls checks that growing the region
// collapses stall time. Exactly zero is not expected: with independent
// per-iteration jitter the inter-processor skew random-walks, so a small
// residual remains even when region > drift amplitude.
func TestE10LargeRegionsNearlyEliminateStalls(t *testing.T) {
	tbl, err := E10StallProbability()
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, tbl.NumRows()-1, 1)
	if first < 5 {
		t.Fatalf("zero-region stalls/iter = %v, implausibly low", first)
	}
	if last*5 > first {
		t.Errorf("stalls should drop >=5x from region 0 (%v) to region 80 (%v)", first, last)
	}
}

// TestE12RegionAbsorbsInterrupts checks the extension's shape: with a
// region comparable to the interrupt cost, stall time returns to ~0 even
// under frequent interrupts.
func TestE12RegionAbsorbsInterrupts(t *testing.T) {
	tbl, err := E12InterruptTolerance()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (never,0) (never,30) (40,0) (40,30) (15,0) (15,30).
	noisyPoint := cell(t, tbl, 4, 2)
	noisyFuzzy := cell(t, tbl, 5, 2)
	if noisyPoint < 2 {
		t.Fatalf("frequent-interrupt point-barrier stalls = %v, implausibly low", noisyPoint)
	}
	if noisyFuzzy > noisyPoint/4 {
		t.Errorf("fuzzy stalls under interrupts (%v) should be <= 1/4 of point (%v)", noisyFuzzy, noisyPoint)
	}
}

// TestE13MultiVersionRestoresTolerance checks the extension's shape:
// ordinary-code callees double the synchronizations and add stalls; the
// two-version technique matches the barrier-code row exactly.
func TestE13MultiVersionRestoresTolerance(t *testing.T) {
	tbl, err := E13ProcedureCalls()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: barrier code, ordinary code, two versions.
	barrierSyncs := cell(t, tbl, 0, 1)
	ordinarySyncs := cell(t, tbl, 1, 1)
	twoVerSyncs := cell(t, tbl, 2, 1)
	if ordinarySyncs != 2*barrierSyncs {
		t.Errorf("ordinary-code syncs = %v, want 2x barrier-code (%v)", ordinarySyncs, barrierSyncs)
	}
	if twoVerSyncs != barrierSyncs {
		t.Errorf("two-version syncs = %v, want %v", twoVerSyncs, barrierSyncs)
	}
	ordinaryStalls := cell(t, tbl, 1, 2)
	twoVerStalls := cell(t, tbl, 2, 2)
	if twoVerStalls >= ordinaryStalls && ordinaryStalls > 0 {
		t.Errorf("two-version stalls (%v) should be below ordinary-code (%v)", twoVerStalls, ordinaryStalls)
	}
}

// TestE4DistributionUnlocksReordering checks the Figure 5 shape: only the
// distributed+reordered variant collapses stalls.
func TestE4DistributionUnlocksReordering(t *testing.T) {
	tbl, err := E4LoopDistribution()
	if err != nil {
		t.Fatal(err)
	}
	// Rows: original/point, original/reorder, distributed/point,
	// distributed/reorder. Column 4 = stalls.
	originalReorder := cell(t, tbl, 1, 4)
	distributedReorder := cell(t, tbl, 3, 4)
	if distributedReorder*10 > originalReorder {
		t.Errorf("distributed+reorder stalls (%v) should be ~10x below original+reorder (%v)",
			distributedReorder, originalReorder)
	}
}

// TestE6ReorderToleratesDrift checks the Figures 9-10 shape: under every
// injected drift level the reordered two-barrier code stalls less than
// half as much as the point-barrier code.
func TestE6ReorderToleratesDrift(t *testing.T) {
	tbl, err := E6LexicallyForward()
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	// Rows alternate point/reorder per drift level; skip the drift-free
	// pair (index 0,1).
	for i := 2; i+1 < len(rows); i += 2 {
		point := cell(t, tbl, i, 2)
		reorder := cell(t, tbl, i+1, 2)
		if reorder*2 > point {
			t.Errorf("row %d: reorder stalls (%v) should be < half of point (%v)", i, reorder, point)
		}
	}
}

// TestE11BoundHolds checks that every row reports peak == N-1 within the
// bound.
func TestE11BoundHolds(t *testing.T) {
	tbl, err := E11MultipleBarriers()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows() {
		if row[4] != "true" {
			t.Errorf("row %d (%v): bound violated", i, row)
		}
		peak := cell(t, tbl, i, 2)
		bound := cell(t, tbl, i, 3)
		if peak != bound {
			t.Errorf("row %d: peak %v != N-1 %v (spawn should use the full budget)", i, peak, bound)
		}
	}
}

// TestE15DeterministicReplay pins the acceptance criterion for the
// cluster experiment: even with drop and duplication enabled, two
// generations of the table are byte-identical (seeded RNG,
// single-threaded event loop, (time, seq) tie-breaking).
func TestE15DeterministicReplay(t *testing.T) {
	a, err := E15ClusterSync()
	if err != nil {
		t.Fatal(err)
	}
	b, err := E15ClusterSync()
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatal("E15 table differs across runs — cluster sim is nondeterministic")
	}
}

// TestE15RegionAbsorbsClusterSync checks the headline shape per
// (protocol, network) series: the half-body region cuts per-epoch stall
// by at least 4x versus the crisp barrier, and the monotone check in the
// generator itself must not have fired (covered by TestAllExperimentsRun,
// re-asserted here against the ratio).
func TestE15RegionAbsorbsClusterSync(t *testing.T) {
	tbl, err := E15ClusterSync()
	if err != nil {
		t.Fatal(err)
	}
	per := len(e15Regions)
	if tbl.NumRows()%per != 0 {
		t.Fatalf("row count %d not a multiple of the region sweep %d", tbl.NumRows(), per)
	}
	for s := 0; s < tbl.NumRows(); s += per {
		label := tbl.Rows()[s][0] + "/" + tbl.Rows()[s][1]
		crisp := cell(t, tbl, s, 4)
		fuzzy := cell(t, tbl, s+per-1, 4)
		if crisp < float64(e15Latency) {
			t.Errorf("%s: crisp stall %v below one link latency — sync cost not visible", label, crisp)
		}
		if fuzzy*4 > crisp {
			t.Errorf("%s: half-body region should cut stall >=4x: crisp=%v fuzzy=%v", label, crisp, fuzzy)
		}
	}
}

// TestE18ReduceDeHotspots checks E18's headline shape: the spread
// allreduce's hottest node is constant in fleet size, while the central
// gather word and the clustered (leaf-0) routing both absorb ~one
// operation per member per phase — linear hot spots.
func TestE18ReduceDeHotspots(t *testing.T) {
	tbl, err := E18FleetAggregation()
	if err != nil {
		t.Fatal(err)
	}
	nN := len(e18N)
	if tbl.NumRows() != len(e18Strategies)*nN {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), len(e18Strategies)*nN)
	}
	// Rows are strategy-major in e18Strategies order; hotspot is column 5.
	central := func(i int) float64 { return cell(t, tbl, i, 5) }
	spread := func(i int) float64 { return cell(t, tbl, nN+i, 5) }
	clustered := func(i int) float64 { return cell(t, tbl, 2*nN+i, 5) }
	for i := 1; i < nN; i++ {
		if spread(i) != spread(0) {
			t.Errorf("reduce-spread hotspot at n=%d is %v, want constant %v", e18N[i], spread(i), spread(0))
		}
	}
	last := nN - 1
	n := float64(e18N[last])
	if central(last) < n || clustered(last) < n {
		t.Errorf("at n=%d: central=%v clustered=%v, both should be >= n (linear hot spot)",
			e18N[last], central(last), clustered(last))
	}
	if spread(last)*10 > central(last) {
		t.Errorf("at n=%d: spread hotspot %v should be >=10x below central %v",
			e18N[last], spread(last), central(last))
	}
}
