package exp

import (
	"fmt"
	"math"

	"fuzzybarrier/internal/check"
	"fuzzybarrier/internal/cluster"
	"fuzzybarrier/internal/trace"
)

// E17 parameters. The safety half model-checks every protocol at small
// n under the full adversary (reordering, duplication, bounded drop of
// duplicates); the timing half compares simulated stall against the
// closed-form oracle in internal/check.
const (
	e17CheckEpochs = 2 // two epochs catch cross-epoch confusion (stale releases)
	e17CheckMaxN   = 3 // n=3 keeps dissemination's state space ~30k

	// Statistical-oracle workload: one epoch, zero-length barrier region
	// (so stall == release - arrival exactly), unit latency, clean
	// network, work jitter drawn uniformly from {0..7}.
	e17Work       = 16
	e17WorkJitter = 7
	e17Latency    = 1
	e17Seeds      = 48 // independent runs per (protocol, n) cell
	e17ZBound     = 4.0
)

// e17OracleNodes are the cluster sizes for the stall-oracle comparison;
// StallMoments enumerates (jitter+1)^n vectors, so n stays <= 6.
var e17OracleNodes = []int{2, 4, 6}

// e17Oracle is one (protocol, n) statistical-oracle cell: the empirical
// mean of total per-epoch stall over e17Seeds runs, next to the exact
// moments from enumerating every jitter vector.
type e17Oracle struct {
	measured   float64 // mean of total stall over seeds
	exactMean  float64
	exactStdev float64
	z          float64 // (measured - exact) / (stdev / sqrt(seeds))
	mismatches int     // runs whose per-node stall != oracle release - arrival
}

// E17ModelCheckAndOracle verifies the cluster protocols two independent
// ways and tabulates both. Rows with phase "safety" are exhaustive
// model-checking verdicts from internal/check: every interleaving of
// arrivals, deliveries, duplicates and droppable duplicates at n <=
// e17CheckMaxN, proving no node is ever released before the whole
// cluster arrived and no reachable state deadlocks. Rows with phase
// "stall" are the statistical oracle: the simulator's total stall per
// epoch over e17Seeds seeded runs against the exact mean from
// enumerating all (jitter+1)^n work-jitter vectors through the
// closed-form release-time recurrences — the two must agree within
// e17ZBound standard errors, and every individual run's release
// timestamps must match the recurrences tick for tick.
func E17ModelCheckAndOracle() (*trace.Table, error) {
	t := trace.NewTable(
		"E17: exhaustive model checking + exact stall oracle vs. simulator",
		"phase", "protocol", "nodes", "explored", "measured", "exact", "verdict",
	)
	protos := cluster.Protocols()

	// Safety rows: (protocol, n) grid, n = 2..e17CheckMaxN. n=1 is
	// degenerate (a barrier over one node) and checked in package tests.
	nCheck := e17CheckMaxN - 1
	checks, err := sweepRun(len(protos)*nCheck, func(i int) (*check.Result, error) {
		res, err := check.Run(check.Config{
			Protocol: protos[i/nCheck],
			Nodes:    2 + i%nCheck,
			Epochs:   e17CheckEpochs,
		})
		if err != nil {
			return nil, fmt.Errorf("E17 check %s/n=%d: %w", protos[i/nCheck], 2+i%nCheck, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range checks {
		verdict := "ok: no early release, no deadlock"
		if res.Violation != nil {
			verdict = "VIOLATION: " + res.Violation.Property
			t.AddNote("WARNING: %s n=%d failed model checking:\n%s",
				res.Config.Protocol, res.Config.Nodes, res.Violation)
		}
		t.AddRow("safety", protos[i/nCheck], 2+i%nCheck,
			fmt.Sprintf("%d states, %d transitions", res.States, res.Transitions),
			"-", "-", verdict)
	}

	// Stall-oracle rows: (protocol, n) grid over e17OracleNodes.
	nN := len(e17OracleNodes)
	oracles, err := sweepRun(len(protos)*nN, func(i int) (*e17Oracle, error) {
		return e17OracleCell(protos[i/nN], e17OracleNodes[i%nN], e17Seed(i))
	})
	if err != nil {
		return nil, err
	}
	for i, o := range oracles {
		proto, nodes := protos[i/nN], e17OracleNodes[i%nN]
		verdict := fmt.Sprintf("ok: z=%.2f, releases exact in all %d runs", o.z, e17Seeds)
		if math.Abs(o.z) > e17ZBound || o.mismatches > 0 {
			verdict = fmt.Sprintf("MISMATCH: z=%.2f, %d runs off the recurrence", o.z, o.mismatches)
			t.AddNote("WARNING: %s n=%d disagrees with the exact stall oracle: %+v", proto, nodes, o)
		}
		t.AddRow("stall", proto, nodes,
			fmt.Sprintf("%d seeds x %d^%d vectors", e17Seeds, e17WorkJitter+1, nodes),
			fmt.Sprintf("%.3f", o.measured),
			fmt.Sprintf("%.3f +- %.3f", o.exactMean, o.exactStdev),
			verdict)
	}

	t.AddNote("safety: internal/check enumerates every arrival/delivery/duplicate/drop interleaving at n<=%d over %d epochs; a violation would print a minimal counterexample trace", e17CheckMaxN, e17CheckEpochs)
	t.AddNote("stall: with Region=0 each node's stall is exactly release-arrival; the exact column enumerates all work-jitter vectors through the closed-form release recurrences")
	t.AddNote("measured vs exact must agree within %.0f standard errors of the mean; every run's ReleaseAt matrix is also checked tick-for-tick against the recurrences", e17ZBound)
	return t, nil
}

// e17OracleCell runs e17Seeds independent simulations of one
// (protocol, n) configuration and folds them into an e17Oracle.
func e17OracleCell(proto string, nodes int, seed uint64) (*e17Oracle, error) {
	mean, stdev, err := check.StallMoments(proto, 2, e17Latency, nodes, e17WorkJitter)
	if err != nil {
		return nil, fmt.Errorf("E17 oracle %s/n=%d: %w", proto, nodes, err)
	}
	o := &e17Oracle{exactMean: mean, exactStdev: stdev}
	var sum float64
	for s := 0; s < e17Seeds; s++ {
		sim, err := cluster.New(cluster.Config{
			Protocol:   proto,
			Nodes:      nodes,
			Epochs:     1,
			Work:       e17Work,
			WorkJitter: e17WorkJitter,
			Region:     0,
			Net:        cluster.NetConfig{Latency: e17Latency},
			Seed:       mix64(seed, uint64(s)+1),
		})
		if err != nil {
			return nil, fmt.Errorf("E17 oracle %s/n=%d seed %d: %w", proto, nodes, s, err)
		}
		res, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("E17 oracle %s/n=%d seed %d: %w", proto, nodes, s, err)
		}
		sum += float64(res.Stall)
		// Tick-for-tick check of this run against the recurrences.
		want, err := check.OracleReleases(proto, 2, e17Latency, res.ArriveAt)
		if err != nil {
			return nil, fmt.Errorf("E17 oracle %s/n=%d seed %d: %w", proto, nodes, s, err)
		}
		for i := range want {
			for e := range want[i] {
				if res.ReleaseAt[i][e] != want[i][e] {
					o.mismatches++
				}
			}
		}
	}
	o.measured = sum / e17Seeds
	if stdev > 0 {
		o.z = (o.measured - mean) / (stdev / math.Sqrt(e17Seeds))
	}
	return o, nil
}

// e17Seed derives a distinct, fixed base seed per oracle cell.
func e17Seed(cell int) uint64 { return uint64(0xE17<<20 | cell) }

// mix64 is splitmix64 over a seed/stream pair: a cheap way to derive
// independent per-run seeds from one per-cell base seed.
func mix64(seed, stream uint64) uint64 {
	z := seed + stream*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
