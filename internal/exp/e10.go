package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E10StallProbability quantifies the Section 2 claim "the larger the
// barrier regions, the less likely it is that the processors will stall":
// with random drift of amplitude J, stall cycles per iteration fall as the
// region length grows, reaching (near) zero once the region exceeds the
// drift.
func E10StallProbability() (*trace.Table, error) {
	const (
		procs  = 4
		iters  = 400
		base   = 60
		jitter = 50
		seeds  = 3
	)
	t := trace.NewTable(
		"E10: stall cycles per iteration vs. barrier-region length (drift amplitude 50)",
		"region", "stall/iter (avg over seeds)", "max stall/iter", "cycles/iter",
	)
	var series stats.Series
	regions := []int64{0, 10, 20, 30, 40, 50, 60, 80}
	type e10Cell struct{ stall, cyc float64 }
	// Flatten the (region, seed) grid into independent sweep cells.
	cells, err := sweepRun(len(regions)*seeds, func(i int) (e10Cell, error) {
		region := regions[i/seeds]
		seed := i % seeds
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			rng := workload.NewRNG(uint64(seed*1000+p*17) + 3)
			progs[p] = must(workload.SyncLoop{
				Self: p, Procs: procs,
				Work:   workload.DriftWork(rng, iters, base, jitter),
				Region: region,
			}.Program())
		}
		_, res, err := runPrograms(machine.Config{Mem: simpleMem(procs, 256)}, progs)
		if err != nil {
			return e10Cell{}, err
		}
		return e10Cell{
			stall: perIter(res.TotalStalls()/procs, iters),
			cyc:   perIter(res.Cycles, iters),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, region := range regions {
		var stallSamples, cycSamples []float64
		for seed := 0; seed < seeds; seed++ {
			c := cells[ri*seeds+seed]
			stallSamples = append(stallSamples, c.stall)
			cycSamples = append(cycSamples, c.cyc)
		}
		s := stats.Summarize(stallSamples)
		c := stats.Mean(cycSamples)
		t.AddRow(region, s.Mean, s.Max, c)
		series.Add(float64(region), s.Mean)
	}
	if series.Monotone(-1, 0.1) {
		t.AddNote("stall time decreases monotonically in region length; with independent per-iteration jitter the inter-processor skew random-walks, so a small residual remains even for region > drift")
	} else {
		t.AddNote("WARNING: series not monotone (unexpected)")
	}
	return t, nil
}
