package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E8RuntimeScheduling reproduces Figure 12: a loop whose iteration count
// is unknown at compile time, scheduled at run time by fetch-and-add
// claiming. Policies: one-at-a-time self-scheduling, fixed chunks, and
// guided self-scheduling (GSS); each measured with a point barrier and
// with a fuzzy barrier region after the drained loop. The iteration costs
// are triangular, the classic GSS-motivating workload.
func E8RuntimeScheduling() (*trace.Table, error) {
	const (
		procs  = 4
		iters  = 64
		base   = 10
		slope  = 3
		region = 150
	)
	t := trace.NewTable(
		"E8: run-time scheduling of loop iterations (Figure 12)",
		"policy", "barrier", "cycles", "stalls", "sched-ops(FAA)", "mem-accesses",
	)
	policies := []struct {
		name  string
		chunk int64
	}{
		{"self(1)", 1},
		{"chunk(8)", 8},
		{"gss", 0},
	}
	for _, pol := range policies {
		for _, reg := range []int64{0, region} {
			progs := make([]*isa.Program, procs)
			for p := 0; p < procs; p++ {
				progs[p] = must(workload.DynamicSchedLoop{
					Self: p, Procs: procs, Iters: iters,
					Base: base, Slope: slope, Region: reg, Chunk: pol.chunk,
				}.Program())
			}
			memCfg := simpleMem(procs, 256)
			memCfg.Modules = 1
			m, res, err := runPrograms(machine.Config{Mem: memCfg}, progs)
			if err != nil {
				return nil, err
			}
			kind := "point"
			if reg > 0 {
				kind = "fuzzy"
			}
			t.AddRow(pol.name, kind, res.Cycles, res.TotalStalls(),
				res.Mem.Atomics, res.Mem.Accesses)
			_ = m
		}
	}
	t.AddNote("self-scheduling pays one FAA per iteration; chunking stalls at the final barrier; GSS balances both, and the fuzzy region absorbs the residual finish-time spread")
	return t, nil
}
