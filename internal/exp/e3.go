package exp

import (
	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/trace"
)

// PoissonSource is the Figure 3(a) Poisson solver for M=2 (four interior
// points, one per processor — the paper's M² processor decomposition).
const PoissonSource = `
int P[4][4];
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par {
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
    }
`

// E3RegionReordering reproduces the Figure 4(a) vs 4(b) comparison: the
// size of the non-barrier region of the Poisson solver's intermediate
// code before and after the three-phase DAG reordering of Section 4, plus
// the DESIGN.md ablation on *where* reordering happens: repeating the
// same algorithm after code generation, where register reuse restricts it
// ("the opportunities for reordering are restricted due to dependences
// introduced from register or other resource usages").
func E3RegionReordering() (*trace.Table, error) {
	prog := lang.MustParse(PoissonSource)
	t := trace.NewTable(
		"E3: Poisson solver region sizes before/after code reordering (Figure 4)",
		"level", "mode", "non-barrier instrs", "barrier instrs", "marked",
	)
	var spanTask, reorderTask *compiler.Task
	for _, mode := range []compiler.RegionMode{compiler.RegionSpan, compiler.RegionReorder} {
		c, err := compiler.Compile(prog, compiler.Options{Procs: 4, Mode: mode})
		if err != nil {
			return nil, err
		}
		st := c.Tasks[0].Stats
		t.AddRow("TAC", mode.String(), st.NonBarrier, st.Barrier, st.Marked)
		if mode == compiler.RegionSpan {
			spanTask = c.Tasks[0]
		} else {
			reorderTask = c.Tasks[0]
		}
	}
	// Machine-level ablation: take the span task's generated code and
	// reorder its non-barrier window post-codegen. For a same-unit
	// comparison, also report the machine-instruction window the
	// TAC-level reorder produced.
	window := compiler.LargestNonBarrierWindow(spanTask.Machine)
	t.AddRow("machine", "span (no reorder)", len(window), "-", "-")
	split, err := compiler.ReorderMachineWindow(window)
	if err != nil {
		return nil, err
	}
	pre, nb, post := split.Sizes()
	t.AddRow("machine", "post-codegen reorder", nb, pre+post, "-")
	tacWindow := compiler.LargestNonBarrierWindow(reorderTask.Machine)
	t.AddRow("machine", "TAC-level reorder", len(tacWindow), "-", "-")
	t.AddNote("paper: reordering leaves only the marked accesses (plus their direct combiners) in the non-barrier region")
	t.AddNote("machine-level reordering shrinks the window less than TAC-level: register recycling adds anti/output dependences (Section 4)")
	return t, nil
}
