package exp

import (
	"fmt"

	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
)

// Fig5Source is the Figure 5(a) loop: S1 carries a cross-processor
// dependence, S2 does not, so distributing the loop moves all of S2 into
// the barrier region.
const Fig5Source = `
int a[8][12];
int b[8][12];
int c[8][12];
for (i=1; i<=10; i++) do seq
  for (j=1; j<=6; j++) do par {
    a[j][i] = a[j+1][i-1] + 2;
    b[j][i] = b[j][i] + c[j][i];
  }
`

// compileAndRun compiles a program and simulates it with cache-miss drift
// injection, returning region stats and the simulation result.
func compileAndRun(prog *lang.Program, procs int, mode compiler.RegionMode, missEveryN int) (*compiler.Compiled, *machine.Result, error) {
	c, err := compiler.Compile(prog, compiler.Options{Procs: procs, Mode: mode})
	if err != nil {
		return nil, nil, err
	}
	memCfg := mem.Config{
		Words: int(c.Layout.Words) + 64, Procs: procs,
		HitLatency: 1, MissLatency: 24,
		CacheLines: 64, LineWords: 2,
		Modules: procs, ModuleBusy: 1,
		MissEveryN: missEveryN,
	}
	m := machine.New(machine.Config{Procs: procs, Mem: memCfg})
	for _, task := range c.Tasks {
		if err := m.Load(task.Proc, task.Machine); err != nil {
			return nil, nil, err
		}
	}
	res, err := m.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("simulation: %w", err)
	}
	return c, res, nil
}

// E4LoopDistribution reproduces Figure 5: compiling the loop with and
// without loop distribution, with and without reordering, and measuring
// the barrier-region share and the stall cycles under cache-miss drift.
func E4LoopDistribution() (*trace.Table, error) {
	const procs = 3
	const missEvery = 5
	t := trace.NewTable(
		"E4: loop distribution enlarges barrier regions (Figure 5)",
		"variant", "mode", "non-barrier TAC", "barrier TAC", "stalls", "cycles",
	)
	for _, distributed := range []bool{false, true} {
		prog := lang.MustParse(Fig5Source)
		name := "original"
		if distributed {
			outer := prog.Body[0].(*lang.ForStmt)
			inner := outer.Body[0].(*lang.ForStmt)
			loops, err := compiler.DistributeLoop(inner)
			if err != nil {
				return nil, err
			}
			outer.Body = []lang.Stmt{loops[0], loops[1]}
			name = "distributed"
		}
		for _, mode := range []compiler.RegionMode{compiler.RegionPoint, compiler.RegionReorder} {
			c, res, err := compileAndRun(prog, procs, mode, missEvery)
			if err != nil {
				return nil, err
			}
			st := c.Tasks[0].Stats
			t.AddRow(name, mode.String(), st.NonBarrier, st.Barrier, res.TotalStalls(), res.Cycles)
		}
	}
	t.AddNote("distribution moves the whole S2 loop into the barrier region, cutting stalls under drift")
	return t, nil
}
