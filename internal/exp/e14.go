package exp

import (
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E14 parameters: the E1 drift workload (4 processors, 200-cycle body,
// 80-cycle jitter) shrunk to a dozen iterations so each barrier episode
// is one readable table row.
const (
	e14Procs  = 4
	e14Iters  = 12
	e14Body   = 200
	e14Jitter = 80
	e14Region = 40
)

// E14PhaseAttribution exercises the observability layer end to end:
// a trace.Phases aggregator attributes every processor-cycle of the
// drift workload to its barrier episode, so stall time is visible per
// phase instead of only as the end-of-run total. The table's stall
// column summed over rows must equal the aggregate stall counter the
// simulator reports — the cross-check the note records (and the harness
// test asserts).
func E14PhaseAttribution() (*trace.Table, error) {
	ph, res, err := e14Run()
	if err != nil {
		return nil, err
	}
	t := ph.Table("E14: per-phase cycle attribution, drift workload (4 processors, region 40)")

	var phaseStalls int64
	for phase := 0; phase < ph.NumPhases(); phase++ {
		phaseStalls += ph.PhaseCycles(phase, trace.KindStall)
	}
	if phaseStalls == res.TotalStalls() {
		t.AddNote("per-phase stall cycles sum to the aggregate stall total (%d)", res.TotalStalls())
	} else {
		t.AddNote("WARNING: per-phase stall sum %d != aggregate %d", phaseStalls, res.TotalStalls())
	}
	t.AddNote("phase k is the cycles each processor spends between its (k-1)-th and k-th synchronization; the final row is the post-sync tail (loop exit, halt)")
	return t, nil
}

// e14Run executes the drift workload with phase attribution enabled.
func e14Run() (*trace.Phases, *machine.Result, error) {
	ph := trace.NewPhases(e14Procs)
	_, res, err := runPrograms(machine.Config{
		Mem:    simpleMem(e14Procs, 1024),
		Phases: ph,
	}, e14Programs())
	if err != nil {
		return nil, nil, err
	}
	return ph, res, nil
}

// e14Programs builds one drifting SyncLoop per processor.
func e14Programs() []*isa.Program {
	progs := make([]*isa.Program, e14Procs)
	for p := 0; p < e14Procs; p++ {
		rng := workload.NewRNG(uint64(7919*p + 13))
		work := workload.DriftWork(rng, e14Iters, e14Body-e14Region-e14Jitter/2, e14Jitter)
		progs[p] = must(workload.SyncLoop{
			Self: p, Procs: e14Procs, Work: work, Region: e14Region,
		}.Program())
	}
	return progs
}

// TracedShowcase runs the E14 drift workload with a full Gantt/event
// recorder attached and returns the recorder — the input for the Chrome
// trace-event export (`experiments -trace-out`, `trace.WriteChrome`).
func TracedShowcase() (*trace.Recorder, error) {
	rec := trace.NewRecorder(e14Procs)
	_, _, err := runPrograms(machine.Config{
		Mem:      simpleMem(e14Procs, 1024),
		Recorder: rec,
	}, e14Programs())
	if err != nil {
		return nil, err
	}
	return rec, nil
}
