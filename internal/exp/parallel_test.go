package exp

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestParallelDeterminism checks the sweep-engine contract at the table
// level: every experiment renders byte-identically whether its cells run
// serially or on a worker pool. The sweep-heavy experiments (E1, E2,
// E10, E12, E13, E15) are the interesting ones, but running the whole
// suite is cheap and also guards future refactors.
func TestParallelDeterminism(t *testing.T) {
	defer SetParallelism(0)
	for _, e := range All() {
		SetParallelism(1)
		serial, err := e.Run()
		if err != nil {
			t.Fatalf("%s (serial): %v", e.ID, err)
		}
		SetParallelism(4)
		pooled, err := e.Run()
		if err != nil {
			t.Fatalf("%s (parallel): %v", e.ID, err)
		}
		if serial.String() != pooled.String() {
			t.Errorf("%s: table differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, serial, pooled)
		}
	}
}

// TestSweepParallelSpeedupGate is the CI regression gate for the sweep
// worker pool: the full E15 grid at 4 workers must beat 1 worker by
// more than 1.2x wall clock. Like the other gates it only runs when
// BENCH_GATE=1, and it additionally skips on single-core hosts — with
// GOMAXPROCS=1 the pool cannot buy wall-clock time, so a ~1.0 ratio
// there is expected, not a regression (BENCH_SMOKE.json records
// maxprocs next to every entry for the same reason).
func TestSweepParallelSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 to run the wall-clock speedup gate")
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("GOMAXPROCS=1: parallel sweep cannot gain wall clock on one core")
	}
	defer SetParallelism(0)
	const reps = 3
	run := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			SetParallelism(workers)
			start := time.Now()
			if _, err := E15ClusterSync(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	before, after := run(1), run(4)
	ratio := float64(before) / float64(after)
	t.Logf("E15 sweep: 1 worker %v, 4 workers %v, speedup %.2fx (maxprocs=%d)",
		before, after, ratio, runtime.GOMAXPROCS(0))
	if ratio < 1.2 {
		t.Fatalf("parallel sweep speedup %.2fx below the 1.2x gate", ratio)
	}
}

// TestSetParallelism checks the knob plumbing.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", Parallelism())
	}
}
