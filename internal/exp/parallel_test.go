package exp

import "testing"

// TestParallelDeterminism checks the sweep-engine contract at the table
// level: every experiment renders byte-identically whether its cells run
// serially or on a worker pool. The sweep-heavy experiments (E1, E2,
// E10, E12, E13, E15) are the interesting ones, but running the whole
// suite is cheap and also guards future refactors.
func TestParallelDeterminism(t *testing.T) {
	defer SetParallelism(0)
	for _, e := range All() {
		SetParallelism(1)
		serial, err := e.Run()
		if err != nil {
			t.Fatalf("%s (serial): %v", e.ID, err)
		}
		SetParallelism(4)
		pooled, err := e.Run()
		if err != nil {
			t.Fatalf("%s (parallel): %v", e.ID, err)
		}
		if serial.String() != pooled.String() {
			t.Errorf("%s: table differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, serial, pooled)
		}
	}
}

// TestSetParallelism checks the knob plumbing.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", Parallelism())
	}
}
