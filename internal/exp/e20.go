package exp

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// E20 parameters: the shard count and radix are pinned (never derived
// from GOMAXPROCS) so the table is byte-identical on every host —
// TestParallelDeterminism replays All() at different worker counts and
// compares output verbatim. Eight shards of radix 4 is the shape an
// 8-socket host would derive for itself.
const (
	e20Phases = 5
	e20Shards = 8
	e20Radix  = 4
)

// e20N is the member sweep: powers of four, so both the flat radix-4
// tree and the 8-shard hierarchy are perfectly balanced at every point
// and the spread routings pay zero probes by construction.
var e20N = []int{64, 256, 1024, 4096}

// e20Strategies: central is the single-counter FuzzyBarrier baseline;
// tree-spread/hier-spread route each member to its home leaf (the
// behavior ShardHint approximates concurrently); tree-clustered and
// hier-clustered aim every arrival at leaf 0 / shard 0 — the
// adversarial routing that maximizes probe traffic, and the case the
// hierarchy is built to survive: a full shard deflects an arrival with
// one root read instead of a probe walk across every full leaf.
var e20Strategies = []string{"central", "tree-spread", "tree-clustered", "hier-spread", "hier-clustered"}

// E20HierScaling measures the two-level sharded HierBarrier against the
// flat combining tree and the central counter on the paper's hot-spot
// metric (Section 1), under both friendly and adversarial arrival
// routing. Expected shapes, checked with slack: central's word takes
// n+1 ops/phase (linear); tree-spread and hier-spread stay constant in
// n (fan-in-bounded); tree-clustered pays ~2n ops/phase on leaf 0
// (every deflection is an add+undo pair), while hier-clustered caps the
// hottest word near (1-1/S)·n — each arrival deflected from a full
// shard costs one read on that shard's subtree root, not a probe pair —
// so hier-clustered must come in at or under tree-clustered at every n.
// All cells are deterministic serial drives (the last arrival of a
// phase completes it); the goroutine wall-clock counterpart is
// BenchmarkE2SplitScaling and the BENCH_GATE TestHierHotspotGate.
func E20HierScaling() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E20: hierarchical vs flat split barriers, hot-spot traffic, %d..%d members",
			e20N[0], e20N[len(e20N)-1]),
		"strategy", "members", "shards", "leaves", "depth", "probes/phase", "undos/phase", "hotspot-ops/phase",
	)
	nN := len(e20N)
	cells, err := sweepRun(len(e20Strategies)*nN, func(i int) (e20Cell, error) {
		strategy := e20Strategies[i/nN]
		n := e20N[i%nN]
		cell, err := e20Run(strategy, n)
		if err != nil {
			return e20Cell{}, fmt.Errorf("E20 %s/n=%d: %w", strategy, n, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	byStrategy := map[string][]e20Cell{}
	for si, strategy := range e20Strategies {
		var hotSeries stats.Series
		for ni, n := range e20N {
			cell := cells[si*nN+ni]
			byStrategy[strategy] = append(byStrategy[strategy], cell)
			t.AddRow(strategy, n, cell.shards, cell.leaves, cell.depth,
				cell.probesPerPhase, cell.undosPerPhase, cell.hotspotPerPhase)
			hotSeries.Add(float64(n), cell.hotspotPerPhase)
		}
		switch strategy {
		case "tree-spread", "hier-spread":
			// Constant in n: with arrivals on their home leaves the hottest
			// node sees only its own fan-in per phase.
			if lo, hi := seriesRange(hotSeries.Y); hi > lo {
				t.AddNote("WARNING: %s hotspot varies with members: %v", strategy, hotSeries.Y)
			}
		case "central":
			if !hotSeries.MonotoneSlack(1, 0.05, 0.5) {
				t.AddNote("WARNING: central hotspot-ops/phase is not non-decreasing in members: %v", hotSeries.Y)
			}
			last := hotSeries.Y[len(hotSeries.Y)-1]
			if last < float64(e20N[nN-1]) {
				t.AddNote("WARNING: central hotspot at n=%d is %.1f ops/phase, expected ~linear (>= n)", e20N[nN-1], last)
			}
		}
	}
	// The claim the bench gate enforces concurrently, checked here
	// deterministically: under the worst routing the hierarchy's hottest
	// word never exceeds the flat tree's.
	for ni, n := range e20N {
		tc := byStrategy["tree-clustered"][ni].hotspotPerPhase
		hc := byStrategy["hier-clustered"][ni].hotspotPerPhase
		if hc > tc {
			t.AddNote("WARNING: hier-clustered hotspot %.1f exceeds tree-clustered %.1f at n=%d", hc, tc, n)
		}
	}
	t.AddNote("central: every arrival lands on one word — n+1 ops/phase, Section 1's linear hot spot")
	t.AddNote("tree-clustered: a full leaf deflects with an add+undo pair, so leaf 0 absorbs ~2n ops/phase; hier-clustered: a full shard deflects with one subtree-root read, capping the hottest word near (1-1/8)n")
	t.AddNote("spread routings are fan-in-bounded and flat in n for both trees — the hierarchy only has to win where routing is bad")
	t.AddNote("shards=%d radix=%d pinned for determinism; the runtime barrier derives both from GOMAXPROCS (see DESIGN.md section 13); wall-clock counterpart: BenchmarkE2SplitScaling and the BENCH_GATE hier-vs-tree test", e20Shards, e20Radix)
	return t, nil
}

// e20Cell is one (strategy, n) measurement.
type e20Cell struct {
	shards, leaves, depth int
	probesPerPhase        float64
	undosPerPhase         float64
	hotspotPerPhase       float64
}

// e20Run drives one strategy at one member count, serially: the last
// arrival of a phase completes it, so a single goroutine exercises the
// full protocol deterministically.
func e20Run(strategy string, n int) (e20Cell, error) {
	switch strategy {
	case "central":
		return e20RunCentral(n), nil
	case "tree-spread":
		return e20RunTree(n, true), nil
	case "tree-clustered":
		return e20RunTree(n, false), nil
	case "hier-spread":
		return e20RunHier(n, true), nil
	case "hier-clustered":
		return e20RunHier(n, false), nil
	}
	return e20Cell{}, fmt.Errorf("unknown strategy %q", strategy)
}

// e20RunCentral drives the single-counter FuzzyBarrier: every arrival
// is one fetch-add on the shared word, the deterministic floor of the
// hot spot a concurrent run would pay.
func e20RunCentral(n int) e20Cell {
	fb := core.NewFuzzyBarrier(n)
	tickets := make([]core.Phase, n)
	for p := 0; p < e20Phases; p++ {
		for id := 0; id < n; id++ {
			tickets[id] = fb.Arrive()
		}
		for id := 0; id < n; id++ {
			fb.Wait(tickets[id])
		}
	}
	ops, phases := fb.HotspotOps()
	return e20Cell{
		shards: 1, leaves: 1, depth: 1,
		hotspotPerPhase: perIter(ops, int(phases)),
	}
}

// e20RunTree drives the flat combining tree; spread routes member id to
// leaf id mod Leaves() (an exact fill — zero probes at these power-of-4
// sizes), clustered aims everyone at leaf 0.
func e20RunTree(n int, spread bool) e20Cell {
	tb := core.NewTreeBarrierRadix(n, e20Radix)
	tickets := make([]core.Phase, n)
	for p := 0; p < e20Phases; p++ {
		for id := 0; id < n; id++ {
			leaf := 0
			if spread {
				leaf = id % tb.Leaves()
			}
			tickets[id] = tb.ArriveLeaf(leaf)
		}
		for id := 0; id < n; id++ {
			tb.Wait(tickets[id])
		}
	}
	ops, phases := tb.HotspotOps()
	return e20Cell{
		shards: 1, leaves: tb.Leaves(), depth: tb.Depth(),
		// TreeBarrier probes are add+undo pairs; report the pair count in
		// the undos column too so the two trees' columns mean the same
		// thing (a hier undo is also a paired add+subtract).
		probesPerPhase:  perIter(tb.Probes(), int(phases)),
		undosPerPhase:   perIter(tb.Probes(), int(phases)),
		hotspotPerPhase: perIter(ops, int(phases)),
	}
}

// e20RunHier drives the two-level sharded hierarchy with pinned shape;
// spread routes member id to its SlotFor home (zero probes), clustered
// aims everyone at shard 0 leaf 0.
func e20RunHier(n int, spread bool) e20Cell {
	hb := core.NewHierBarrierConfig(n, core.HierConfig{Shards: e20Shards, Radix: e20Radix})
	tickets := make([]core.Phase, n)
	for p := 0; p < e20Phases; p++ {
		for id := 0; id < n; id++ {
			shard, leaf := 0, 0
			if spread {
				shard, leaf = hb.SlotFor(id)
			}
			tickets[id] = hb.ArriveShardLeaf(shard, leaf)
		}
		for id := 0; id < n; id++ {
			hb.Wait(tickets[id])
		}
	}
	ops, phases := hb.HotspotOps()
	return e20Cell{
		shards: hb.Shards(), leaves: hb.Leaves(), depth: hb.Depth(),
		probesPerPhase:  perIter(hb.Probes(), int(phases)),
		undosPerPhase:   perIter(hb.Undos(), int(phases)),
		hotspotPerPhase: perIter(ops, int(phases)),
	}
}
