package exp

import (
	"strconv"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// E5VariableLengthStreams reproduces Figure 7: a parallel loop whose body
// ends in an if-statement with branches of very different cost. With a
// single-instruction (point) barrier, the processor that takes the short
// branch waits for the other; with the entire if-statement inside the
// barrier region, the variation is absorbed.
func E5VariableLengthStreams() (*trace.Table, error) {
	const (
		procs = 4
		iters = 200
	)
	t := trace.NewTable(
		"E5: if-statements with unequal branches (Figure 7)",
		"barrier", "then/else cost", "stalls/iter/proc", "cycles/iter",
	)
	for _, spread := range []struct{ thenW, elseW int64 }{
		{30, 30}, {10, 50}, {5, 100},
	} {
		for _, fuzzy := range []bool{false, true} {
			progs := make([]*isa.Program, procs)
			for p := 0; p < procs; p++ {
				progs[p] = must(workload.IfLoop{
					Self: p, Procs: procs, Iters: iters,
					S1Work: 40, ThenWork: spread.thenW, ElseWork: spread.elseW,
					FuzzyIf: fuzzy, Seed: 0xE5,
				}.Program())
			}
			_, res, err := runPrograms(machine.Config{Mem: simpleMem(procs, 1024)}, progs)
			if err != nil {
				return nil, err
			}
			kind := "point"
			if fuzzy {
				kind = "fuzzy(if-in-region)"
			}
			t.AddRow(kind,
				strconv.FormatInt(spread.thenW, 10)+"/"+strconv.FormatInt(spread.elseW, 10),
				perIter(res.TotalStalls()/int64(procs), iters),
				perIter(res.Cycles, iters))
		}
	}
	t.AddNote("with the if inside the barrier region, processors taking different paths rarely stall (Figure 7(b)(ii))")
	return t, nil
}
