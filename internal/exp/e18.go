package exp

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/stats"
	"fuzzybarrier/internal/trace"
)

// E18 parameters: a fleet of n members ends every epoch by agreeing on
// the slowest member's duration (an allreduce max — the number a
// coordinator needs to pace the next epoch). The sweep holds the phase
// count fixed and scales n, comparing three aggregation strategies on
// the paper's own metric: atomic traffic on the hottest single word
// (Section 1's hot-spot concern, extended from pure synchronization to
// synchronization-plus-data).
const (
	e18Phases = 8
	e18Radix  = 4
)

// e18N is the member-count sweep (powers of four, so the radix-4 reduce
// tree is perfectly balanced at every point).
var e18N = []int{4, 16, 64, 256, 1024}

// e18Strategies: central-gather is the baseline (a FuzzyBarrier for the
// sync plus one shared accumulator word every member CASes into);
// reduce-spread is the ReduceBarrier with arrivals routed to their
// LeafFor home (zero probes — pure combining cost); reduce-clustered is
// the same barrier with every arrival aimed at leaf 0, the adversarial
// routing that maximizes probe traffic.
var e18Strategies = []string{"central-gather", "reduce-spread", "reduce-clustered"}

// E18FleetAggregation measures fleet epoch aggregation: allreduce via
// the combining reduce tree versus a central gather word. Expected
// shapes, checked with slack: the central strategy's hottest word takes
// ~n+2 operations per phase (every member's combine plus the drain pair)
// — the linear hot spot; reduce-spread's hottest node stays constant in
// n (3*radix+2 operations, set by the fan-in, not the fleet); and
// reduce-clustered recreates the linear hot spot (n - radix probe undos
// per phase land on leaf 0) — showing the tree only de-hot-spots the
// collective if arrivals actually spread. Every cell self-checks the
// allreduce result against the serial fold each phase. All cells are
// deterministic serial drives (the last arrival of a phase completes
// it); goroutine wall-clock for the same comparison lives in
// BenchmarkE18 and BenchmarkE2SplitScaling (bench_test.go), per the
// repro note on time-shared measurements.
func E18FleetAggregation() (*trace.Table, error) {
	t := trace.NewTable(
		fmt.Sprintf("E18: fleet epoch aggregation, allreduce vs central gather, %d..%d members",
			e18N[0], e18N[len(e18N)-1]),
		"strategy", "members", "leaves", "depth", "probes/phase", "hotspot-ops/phase",
	)
	nN := len(e18N)
	cells, err := sweepRun(len(e18Strategies)*nN, func(i int) (e18Cell, error) {
		strategy := e18Strategies[i/nN]
		n := e18N[i%nN]
		cell, err := e18Run(strategy, n)
		if err != nil {
			return e18Cell{}, fmt.Errorf("E18 %s/n=%d: %w", strategy, n, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for si, strategy := range e18Strategies {
		var hotSeries stats.Series
		for ni, n := range e18N {
			cell := cells[si*nN+ni]
			t.AddRow(strategy, n, cell.leaves, cell.depth, cell.probesPerPhase, cell.hotspotPerPhase)
			hotSeries.Add(float64(n), cell.hotspotPerPhase)
			if !cell.foldOK {
				t.AddNote("WARNING: %s n=%d: an aggregated result disagreed with the serial fold", strategy, n)
			}
		}
		switch strategy {
		case "reduce-spread":
			// Constant in n: the hottest node sees its quota's deposits
			// plus the drain pair, regardless of fleet size.
			if lo, hi := seriesRange(hotSeries.Y); hi > lo {
				t.AddNote("WARNING: reduce-spread hotspot varies with members: %v", hotSeries.Y)
			}
		default:
			// Linear in n: central's shared word and clustered's leaf 0
			// both absorb ~one operation per member per phase.
			if !hotSeries.MonotoneSlack(1, 0.05, 0.5) {
				t.AddNote("WARNING: %s hotspot-ops/phase is not non-decreasing in members: %v", strategy, hotSeries.Y)
			}
			last := hotSeries.Y[len(hotSeries.Y)-1]
			if last < float64(e18N[nN-1]) {
				t.AddNote("WARNING: %s hotspot at n=%d is %.1f ops/phase, expected ~linear (>= n)", strategy, e18N[nN-1], last)
			}
		}
	}
	t.AddNote("central-gather: every member's combine lands on one shared word — n+2 ops/phase, Section 1's linear hot spot with data riding on it")
	t.AddNote("reduce-spread: combining up the radix tree caps the hottest node at 3*radix+2 ops/phase, constant in fleet size; Wait returns the allreduce result with no broadcast round")
	t.AddNote("reduce-clustered: aiming every arrival at leaf 0 pays n-radix probe undos there per phase — the tree only removes the hot spot if arrivals spread across the leaves")
	t.AddNote("every cell checks the aggregated max against the serial fold each phase; wall-clock for the same strategies is in BenchmarkE18 (bench_test.go)")
	return t, nil
}

// e18Cell is one (strategy, n) measurement.
type e18Cell struct {
	leaves, depth   int
	probesPerPhase  float64
	hotspotPerPhase float64
	foldOK          bool
}

// e18Dur is member id's deterministic epoch duration for a phase — a
// fixed pseudo-random spread so the per-phase max moves around the
// fleet.
func e18Dur(phase, id int) int64 {
	z := uint64(phase)*1000003 + uint64(id) + 0xE18
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(1000 + (z^(z>>31))%512)
}

// e18Run drives one strategy at one fleet size, serially: the last
// arrival of a phase completes it, so a single goroutine exercises the
// full protocol deterministically.
func e18Run(strategy string, n int) (e18Cell, error) {
	switch strategy {
	case "central-gather":
		return e18RunCentral(n), nil
	case "reduce-spread":
		return e18RunReduce(n, true), nil
	case "reduce-clustered":
		return e18RunReduce(n, false), nil
	}
	return e18Cell{}, fmt.Errorf("unknown strategy %q", strategy)
}

// e18RunCentral models the baseline: a FuzzyBarrier paces the phases
// and every member folds its duration into one shared accumulator word
// before arriving; the phase-completing arrival drains and resets it.
// The serial drive is contention-free, so each combine is exactly one
// operation on the shared word — the deterministic floor of what a
// concurrent run would pay (CAS retries only add to it).
func e18RunCentral(n int) e18Cell {
	fb := core.NewFuzzyBarrier(n)
	acc := core.IdentityMax
	var accOps int64
	foldOK := true
	tickets := make([]core.Phase, n)
	for p := 0; p < e18Phases; p++ {
		want := core.IdentityMax
		for id := 0; id < n; id++ {
			v := e18Dur(p, id)
			want = core.OpMax(want, v)
			acc = core.OpMax(acc, v) // one CAS on the shared word
			accOps++
			tickets[id] = fb.Arrive()
		}
		got := acc
		acc = core.IdentityMax
		accOps += 2 // drain read + identity reset
		if got != want {
			foldOK = false
		}
		for id := 0; id < n; id++ {
			fb.Wait(tickets[id])
		}
	}
	barrierOps, phases := fb.HotspotOps()
	hot := accOps
	if barrierOps > hot {
		hot = barrierOps
	}
	return e18Cell{
		leaves: 1, depth: 1,
		hotspotPerPhase: perIter(hot, int(phases)),
		foldOK:          foldOK,
	}
}

// e18RunReduce drives the ReduceBarrier allreduce; spread routes member
// id to LeafFor(id) (zero probes), clustered aims everyone at leaf 0.
func e18RunReduce(n int, spread bool) e18Cell {
	rb := core.NewReduceBarrierRadix(n, e18Radix, core.OpMax, core.IdentityMax)
	foldOK := true
	tickets := make([]core.Phase, n)
	for p := 0; p < e18Phases; p++ {
		want := core.IdentityMax
		for id := 0; id < n; id++ {
			v := e18Dur(p, id)
			want = core.OpMax(want, v)
			leaf := 0
			if spread {
				leaf = rb.LeafFor(id)
			}
			tickets[id] = rb.ArriveValueLeaf(leaf, v)
		}
		for id := 0; id < n; id++ {
			if got := rb.WaitValue(tickets[id]); got != want {
				foldOK = false
			}
		}
	}
	ops, phases := rb.HotspotOps()
	return e18Cell{
		leaves:          rb.Leaves(),
		depth:           rb.Depth(),
		probesPerPhase:  perIter(rb.Probes(), int(phases)),
		hotspotPerPhase: perIter(ops, int(phases)),
		foldOK:          foldOK,
	}
}

// seriesRange returns the min and max of ys.
func seriesRange(ys []float64) (lo, hi float64) {
	lo, hi = ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}
