package workload

import (
	"fmt"

	"fuzzybarrier/internal/isa"
)

// SoftBarrierLayout fixes the shared-memory words used by the software
// counter barrier: a fetch-and-add arrival counter and a release epoch
// word. Both become hot spots — which is the point of experiment E2.
type SoftBarrierLayout struct {
	Counter int64 // arrival counter address
	Release int64 // completed-episode counter address
}

// DefaultSoftBarrierLayout places the two words on addresses 8 and 9.
// Placing them adjacently maximizes module contention on purpose,
// mirroring the naive shared-variable barrier of Section 1.
func DefaultSoftBarrierLayout() SoftBarrierLayout {
	return SoftBarrierLayout{Counter: 8, Release: 9}
}

// CentralBarrierLoop is the software-barrier analog of SyncLoop: the same
// per-iteration work, but synchronization is performed by a centralized
// counter barrier written in ordinary instructions (fetch-and-add plus a
// spin loop on the release word) instead of the fuzzy-barrier hardware.
//
// Register use: r1=1, r2=-(procs), r3=procs-1, r4..r7 scratch.
type CentralBarrierLoop struct {
	Self   int
	Procs  int
	Work   []int64
	Layout SoftBarrierLayout
}

// Program builds the machine program.
func (c CentralBarrierLoop) Program() (*isa.Program, error) {
	if c.Procs < 1 || c.Self < 0 || c.Self >= c.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", c.Self, c.Procs)
	}
	if len(c.Work) == 0 {
		return nil, fmt.Errorf("workload: CentralBarrierLoop needs at least one iteration")
	}
	lay := c.Layout
	if lay.Counter == 0 && lay.Release == 0 {
		lay = DefaultSoftBarrierLayout()
	}
	b := isa.NewBuilder(fmt.Sprintf("softbar-p%d", c.Self))
	b.Ldi(1, 1).Comment("constant 1")
	b.Ldi(2, -int64(c.Procs)).Comment("counter reset delta")
	b.Ldi(3, int64(c.Procs-1)).Comment("last-arriver threshold")
	b.Ldi(10, lay.Counter).Comment("&counter")
	b.Ldi(11, lay.Release).Comment("&release")
	for k, w := range c.Work {
		if w > 0 {
			b.Work(w).Comment("iteration %d work", k)
		}
		spin := fmt.Sprintf("spin_%d", k)
		done := fmt.Sprintf("done_%d", k)
		// target release epoch = current + 1.
		b.Ld(5, 11, 0).Comment("release epoch")
		b.Addi(5, 5, 1)
		b.Faa(4, 10, 0, 1).Comment("arrive: counter++")
		b.CondBr(isa.BLT, 4, 3, spin)
		// Last arriver: reset counter, publish release.
		b.Faa(6, 10, 0, 2).Comment("counter -= procs")
		b.Faa(6, 11, 0, 1).Comment("release++")
		b.Br(done)
		b.Label(spin).Ld(7, 11, 0).Comment("poll release")
		b.CondBr(isa.BLT, 7, 5, spin)
		b.Label(done)
	}
	b.Halt()
	return b.Build()
}

// BarrierOnlyWork returns a work vector of n zero-cost iterations — used
// to measure pure synchronization overhead.
func BarrierOnlyWork(n int) []int64 { return make([]int64, n) }
