package workload

import (
	"fmt"

	"fuzzybarrier/internal/isa"
)

// DisseminationBarrierLoop is the logarithmic software barrier of the
// paper's Section 1 ("for the best possible software implementation,
// logarithmically"), written in simulator instructions: ⌈log2 P⌉ rounds
// per episode in which processor i bumps a flag belonging to processor
// (i + 2^r) mod P and spins on its own round-r flag. Every flag is a
// distinct shared word, so — unlike the centralized counter — no address
// hot-spots and, with interleaved memory modules, the rounds of different
// processors proceed in parallel.
//
// Flags are per-(processor, round) episode counters laid out round-major
// at FlagBase + round*P + proc, so that within any round the P flags fall
// on P consecutive addresses — distinct memory modules on an interleaved
// system, keeping the rounds conflict-free. The signal is a fetch-and-add
// of 1 and the wait spins until the counter reaches the episode number.
// All addresses are compile-time constants per processor, so the
// generated (unrolled) program needs no address arithmetic at all.
//
// Register use: r1 = 1, r4 = spin scratch, r5 = episode target.
type DisseminationBarrierLoop struct {
	Self     int
	Procs    int
	Work     []int64 // per-episode work (length = episodes)
	FlagBase int64   // first flag address (default 16)
}

// Rounds returns ⌈log2 P⌉ (minimum 1).
func (c DisseminationBarrierLoop) Rounds() int {
	r := 0
	for v := 1; v < c.Procs; v <<= 1 {
		r++
	}
	if r == 0 {
		r = 1
	}
	return r
}

// FlagWords returns the number of shared words the barrier occupies.
func (c DisseminationBarrierLoop) FlagWords() int { return c.Procs * c.Rounds() }

// Program builds the machine program.
func (c DisseminationBarrierLoop) Program() (*isa.Program, error) {
	if c.Procs < 1 || c.Self < 0 || c.Self >= c.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", c.Self, c.Procs)
	}
	if len(c.Work) == 0 {
		return nil, fmt.Errorf("workload: DisseminationBarrierLoop needs at least one episode")
	}
	base := c.FlagBase
	if base == 0 {
		base = 16
	}
	rounds := c.Rounds()
	flagAddr := func(proc, round int) int64 {
		return base + int64(round*c.Procs+proc)
	}

	b := isa.NewBuilder(fmt.Sprintf("dissem-p%d", c.Self))
	b.Ldi(1, 1).Comment("constant 1")
	for e, w := range c.Work {
		if w > 0 {
			b.Work(w).Comment("episode %d work", e)
		}
		target := int64(e + 1)
		b.Ldi(5, target).Comment("episode %d target", e)
		for r := 0; r < rounds; r++ {
			partner := (c.Self + (1 << uint(r))) % c.Procs
			b.Ldi(6, flagAddr(partner, r))
			b.Faa(7, 6, 0, 1).Comment("signal P%d round %d", partner, r)
			spin := fmt.Sprintf("spin_%d_%d", e, r)
			b.Ldi(8, flagAddr(c.Self, r))
			b.Label(spin).Ld(4, 8, 0).Comment("poll own round-%d flag", r)
			b.CondBr(isa.BLT, 4, 5, spin)
		}
	}
	b.Halt()
	return b.Build()
}
