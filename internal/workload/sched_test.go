package workload

import (
	"testing"

	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/sched"
)

func TestStaticSchedLoopRotatingFuzzyEliminatesStalls(t *testing.T) {
	const procs, rounds, iters, cost = 3, 12, 5, 20
	run := func(rotating bool, region int64) int64 {
		assign := func(r int) sched.Assignment {
			if rotating {
				return sched.Rotating(iters, procs, r)
			}
			return sched.Block(iters, procs)
		}
		progs := make([]*machineProgram, procs)
		for p := 0; p < procs; p++ {
			progs[p] = wrap(StaticSchedLoop{
				Self: p, Procs: procs, Rounds: rounds, Iters: iters,
				IterCost: cost, Region: region, Assign: assign,
			}.Program())
		}
		return runAll(t, progs, fastMem(procs)).TotalStalls()
	}
	fixedPoint := run(false, 0)
	rotFuzzy := run(true, 2*cost)
	if fixedPoint < int64(rounds)*cost/2 {
		t.Errorf("fixed+point stalls = %d, implausibly low", fixedPoint)
	}
	if rotFuzzy != 0 {
		t.Errorf("rotating+fuzzy stalls = %d, want 0", rotFuzzy)
	}
}

func TestStaticSchedLoopValidation(t *testing.T) {
	if _, err := (StaticSchedLoop{Self: 0, Procs: 1, Rounds: 1, Iters: 1, IterCost: 1}).Program(); err == nil {
		t.Error("missing Assign accepted")
	}
	if _, err := (StaticSchedLoop{Self: 5, Procs: 2}).Program(); err == nil {
		t.Error("bad self accepted")
	}
}

func TestDynamicSchedLoopDrainsAllIterations(t *testing.T) {
	const procs = 4
	const iters = 32
	for _, chunk := range []int64{1, 8, 0} { // self, fixed, gss
		progs := make([]*machineProgram, procs)
		for p := 0; p < procs; p++ {
			progs[p] = wrap(DynamicSchedLoop{
				Self: p, Procs: procs, Iters: iters,
				Base: 5, Slope: 1, Region: 40, Chunk: chunk,
			}.Program())
		}
		m := machine.New(machine.Config{Procs: procs, Mem: fastMem(procs)})
		for p, prog := range progs {
			if prog.err != nil {
				t.Fatalf("chunk=%d: %v", chunk, prog.err)
			}
			if err := prog.p.Validate(false); err != nil {
				t.Fatalf("chunk=%d validate: %v", chunk, err)
			}
			if err := m.Load(p, prog.p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("chunk=%d run: %v", chunk, err)
		}
		// The shared index must have advanced to >= iters (overshoot from
		// concurrent FAA claims is fine, undershoot is not).
		if got := m.Mem().MustPeek(12); got < iters {
			t.Errorf("chunk=%d: index = %d, want >= %d", chunk, got, iters)
		}
		if res.Syncs() != 1 {
			t.Errorf("chunk=%d: syncs = %d, want 1 (end-of-round barrier)", chunk, res.Syncs())
		}
	}
}

func TestDynamicSchedLoopGSSFasterThanChunked(t *testing.T) {
	// With triangular costs, static-ish big chunks misbalance; GSS should
	// finish in fewer cycles.
	const procs = 4
	const iters = 64
	run := func(chunk int64) int64 {
		progs := make([]*machineProgram, procs)
		for p := 0; p < procs; p++ {
			progs[p] = wrap(DynamicSchedLoop{
				Self: p, Procs: procs, Iters: iters,
				Base: 10, Slope: 3, Region: 0, Chunk: chunk,
			}.Program())
		}
		return runAll(t, progs, fastMem(procs)).Cycles
	}
	chunked := run(16)
	gss := run(0)
	if gss >= chunked {
		t.Errorf("gss cycles (%d) should beat chunk-16 (%d) on triangular work", gss, chunked)
	}
}

func TestDynamicSchedLoopValidation(t *testing.T) {
	if _, err := (DynamicSchedLoop{Self: 0, Procs: 1, Iters: 0}).Program(); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := (DynamicSchedLoop{Self: 3, Procs: 2, Iters: 5}).Program(); err == nil {
		t.Error("bad self accepted")
	}
}
