package workload

import (
	"testing"
	"testing/quick"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

func runAll(t *testing.T, progs []*machineProgram, memCfg mem.Config) *machine.Result {
	t.Helper()
	m := machine.New(machine.Config{Procs: len(progs), Mem: memCfg})
	for p, prog := range progs {
		if err := prog.err; err != nil {
			t.Fatalf("P%d build: %v", p, err)
		}
		if err := prog.p.Validate(false); err != nil {
			t.Fatalf("P%d validate: %v", p, err)
		}
		if err := m.Load(p, prog.p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

type machineProgram struct {
	p   *isa.Program
	err error
}

func wrap(p *isa.Program, err error) *machineProgram { return &machineProgram{p, err} }

func fastMem(procs int) mem.Config {
	return mem.Config{Words: 256, Procs: procs, HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
	if NewRNG(0).Next() == 0 {
		t.Error("zero seed should be remapped")
	}
}

func TestRNGIntNRange(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int64(n8%50) + 1
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return r.IntN(0) == 0 && r.IntN(-3) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorkVectors(t *testing.T) {
	u := UniformWork(5, 7)
	if len(u) != 5 || u[0] != 7 || u[4] != 7 {
		t.Errorf("uniform = %v", u)
	}
	a0 := AlternatingWork(4, 1, 9, 0)
	a1 := AlternatingWork(4, 1, 9, 1)
	if a0[0] != 1 || a0[1] != 9 || a1[0] != 9 || a1[1] != 1 {
		t.Errorf("alternating = %v / %v", a0, a1)
	}
	d := DriftWork(NewRNG(1), 100, 50, 20)
	for _, w := range d {
		if w < 50 || w >= 70 {
			t.Fatalf("drift value %d out of [50,70)", w)
		}
	}
	if len(BarrierOnlyWork(3)) != 3 {
		t.Error("barrier-only work length")
	}
}

func TestSyncLoopRuns(t *testing.T) {
	const procs, iters = 3, 10
	progs := make([]*machineProgram, procs)
	for p := 0; p < procs; p++ {
		progs[p] = wrap(SyncLoop{
			Self: p, Procs: procs,
			Work: UniformWork(iters, 5), Region: 3,
		}.Program())
	}
	res := runAll(t, progs, fastMem(procs))
	if res.Syncs() != iters {
		t.Errorf("syncs = %d, want %d", res.Syncs(), iters)
	}
	if res.TotalStalls() > 3 {
		t.Errorf("uniform work should not stall: %d", res.TotalStalls())
	}
}

func TestSyncLoopValidation(t *testing.T) {
	if _, err := (SyncLoop{Self: 2, Procs: 2, Work: UniformWork(1, 1)}).Program(); err == nil {
		t.Error("bad self accepted")
	}
	if _, err := (SyncLoop{Self: 0, Procs: 1}).Program(); err == nil {
		t.Error("empty work accepted")
	}
}

func TestIfLoopFuzzyBeatsPoint(t *testing.T) {
	const procs, iters = 2, 40
	run := func(fuzzy bool) int64 {
		progs := make([]*machineProgram, procs)
		for p := 0; p < procs; p++ {
			progs[p] = wrap(IfLoop{
				Self: p, Procs: procs, Iters: iters,
				S1Work: 10, ThenWork: 5, ElseWork: 40,
				FuzzyIf: fuzzy, Seed: 7,
			}.Program())
		}
		return runAll(t, progs, fastMem(procs)).TotalStalls()
	}
	point, fuzzy := run(false), run(true)
	// The region only absorbs drift up to its own length, so expect a
	// solid (not total) reduction: at least one third fewer stall cycles.
	if fuzzy*3 > point*2 {
		t.Errorf("fuzzy if stalls (%d) should be well below point (%d)", fuzzy, point)
	}
}

func TestIfLoopDifferentSeedsDiverge(t *testing.T) {
	a, err := IfLoop{Self: 0, Procs: 2, Iters: 20, S1Work: 1, ThenWork: 2, ElseWork: 3, Seed: 1}.Program()
	if err != nil {
		t.Fatal(err)
	}
	b, err := IfLoop{Self: 1, Procs: 2, Iters: 20, S1Work: 1, ThenWork: 2, ElseWork: 3, Seed: 1}.Program()
	if err != nil {
		t.Fatal(err)
	}
	if a.Disassemble() == b.Disassemble() {
		t.Error("different processors should take different branch patterns")
	}
}

func TestCentralBarrierLoopSynchronizes(t *testing.T) {
	const procs, episodes = 4, 20
	progs := make([]*machineProgram, procs)
	for p := 0; p < procs; p++ {
		progs[p] = wrap(CentralBarrierLoop{
			Self: p, Procs: procs, Work: BarrierOnlyWork(episodes),
		}.Program())
	}
	memCfg := fastMem(procs)
	m := machine.New(machine.Config{Procs: procs, Mem: memCfg})
	for p, prog := range progs {
		if prog.err != nil {
			t.Fatal(prog.err)
		}
		if err := m.Load(p, prog.p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The release word must equal the episode count, the counter zero.
	lay := DefaultSoftBarrierLayout()
	if got := m.Mem().MustPeek(lay.Release); got != episodes {
		t.Errorf("release = %d, want %d", got, episodes)
	}
	if got := m.Mem().MustPeek(lay.Counter); got != 0 {
		t.Errorf("counter = %d, want 0", got)
	}
	if res.Deadlocked {
		t.Error("deadlocked")
	}
	// No fuzzy-hardware syncs: this is a pure software barrier.
	if res.Syncs() != 0 {
		t.Errorf("hardware syncs = %d, want 0", res.Syncs())
	}
}

func TestCentralBarrierUnequalWork(t *testing.T) {
	// Processors with very different work must still synchronize
	// correctly (the spin loop does its job).
	const procs, episodes = 3, 10
	progs := make([]*machineProgram, procs)
	for p := 0; p < procs; p++ {
		work := make([]int64, episodes)
		for i := range work {
			work[i] = int64(5 + 20*p)
		}
		progs[p] = wrap(CentralBarrierLoop{Self: p, Procs: procs, Work: work}.Program())
	}
	m := machine.New(machine.Config{Procs: procs, Mem: fastMem(procs)})
	for p, prog := range progs {
		if prog.err != nil {
			t.Fatal(prog.err)
		}
		if err := m.Load(p, prog.p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Mem().MustPeek(DefaultSoftBarrierLayout().Release); got != episodes {
		t.Errorf("release = %d, want %d", got, episodes)
	}
}

func TestDisseminationBarrierLoopSynchronizes(t *testing.T) {
	const procs, episodes = 8, 15
	progs := make([]*machineProgram, procs)
	for p := 0; p < procs; p++ {
		work := make([]int64, episodes)
		for i := range work {
			work[i] = int64((p*7+i*3)%20 + 1) // uneven, bounded drift
		}
		progs[p] = wrap(DisseminationBarrierLoop{Self: p, Procs: procs, Work: work}.Program())
	}
	m := machine.New(machine.Config{Procs: procs, Mem: fastMem(procs)})
	for p, prog := range progs {
		if prog.err != nil {
			t.Fatal(prog.err)
		}
		if err := prog.p.Validate(false); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(p, prog.p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	// Every flag ends at exactly the episode count: each processor
	// signalled each of its round partners once per episode.
	lay := DisseminationBarrierLoop{Self: 0, Procs: procs}
	rounds := lay.Rounds()
	for p := 0; p < procs; p++ {
		for r := 0; r < rounds; r++ {
			addr := int64(16 + r*procs + p)
			if got := m.Mem().MustPeek(addr); got != episodes {
				t.Errorf("flag[P%d][round %d] = %d, want %d", p, r, got, episodes)
			}
		}
	}
}

func TestDisseminationRoundsAndWords(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 8: 3, 16: 4}
	for procs, rounds := range cases {
		c := DisseminationBarrierLoop{Self: 0, Procs: procs}
		if got := c.Rounds(); got != rounds {
			t.Errorf("Rounds(%d) = %d, want %d", procs, got, rounds)
		}
		if got := c.FlagWords(); got != procs*rounds {
			t.Errorf("FlagWords(%d) = %d, want %d", procs, got, procs*rounds)
		}
	}
}
