// Package workload generates the simulator programs the experiments run:
// synchronizing loops with controllable drift, the Figure 7 if-statement
// loop, software counter barriers (the hot-spot baseline of experiment
// E2), the Figure 11 static schedules and the Figure 12 run-time
// self-scheduled loop.
//
// All generators are deterministic: pseudo-randomness comes from an
// explicit xorshift PRNG seeded by the caller, so experiment tables are
// reproducible run to run.
package workload

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
)

// RNG is a tiny deterministic xorshift64* generator. The zero value is
// invalid; use NewRNG.
type RNG struct{ state uint64 }

// NewRNG seeds a generator (seed 0 is remapped to a fixed constant).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next raw 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// IntN returns a value in [0, n).
func (r *RNG) IntN(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Next() % uint64(n))
}

// SyncLoop describes the canonical synchronizing loop: each iteration
// executes Work[k] cycles of non-barrier work followed by a barrier region
// of Region cycles, synchronizing all Procs processors.
type SyncLoop struct {
	Self   int
	Procs  int
	Tag    core.Tag
	Work   []int64 // per-iteration non-barrier work (length = iterations)
	Region int64   // barrier-region work per iteration
}

// Program builds the (unrolled) machine program.
func (s SyncLoop) Program() (*isa.Program, error) {
	if s.Procs < 1 || s.Self < 0 || s.Self >= s.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", s.Self, s.Procs)
	}
	if len(s.Work) == 0 {
		return nil, fmt.Errorf("workload: SyncLoop needs at least one iteration")
	}
	tag := s.Tag
	if tag == core.TagNone {
		tag = 1
	}
	b := isa.NewBuilder(fmt.Sprintf("syncloop-p%d", s.Self))
	b.BarrierInit(int64(tag), uint64(core.AllExcept(s.Procs, s.Self)))
	for k, w := range s.Work {
		b.InNonBarrier()
		if w > 0 {
			b.Work(w).Comment("iteration %d work", k)
		} else {
			b.Nop()
		}
		b.InBarrier()
		if s.Region > 0 {
			b.Work(s.Region).Comment("iteration %d barrier region", k)
		} else {
			b.Nop().Comment("null barrier region")
		}
	}
	b.InNonBarrier().Halt()
	return b.Build()
}

// UniformWork returns n iterations of fixed cost.
func UniformWork(n int, cost int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = cost
	}
	return out
}

// DriftWork returns n iterations whose cost is base plus a uniformly
// random jitter in [0, jitter), drawn from rng — the cache-miss/branch
// execution-rate drift of Section 1. Different processors should use
// differently-seeded RNGs.
func DriftWork(rng *RNG, n int, base, jitter int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + rng.IntN(jitter)
	}
	return out
}

// StallHeavyPrograms builds the canonical fast-forward benchmark
// workload: procs drifting synchronizing loops whose iterations are
// dominated by long WORK spans and barrier stalls — exactly the cycles
// the simulator's fast-forward engine skips. The per-processor RNGs are
// derived from seed, so the same seed reproduces the same programs.
func StallHeavyPrograms(procs, iters int, seed uint64) ([]*isa.Program, error) {
	const (
		base   = 400 // long busy spans: many uneventful cycles per issue
		jitter = 200 // heavy drift: the slow processor stalls everyone else
	)
	progs := make([]*isa.Program, procs)
	for p := 0; p < procs; p++ {
		rng := NewRNG(seed + uint64(p)*0x9E37 + 1)
		prog, err := SyncLoop{
			Self: p, Procs: procs,
			Work: DriftWork(rng, iters, base, jitter),
		}.Program()
		if err != nil {
			return nil, err
		}
		progs[p] = prog
	}
	return progs, nil
}

// AlternatingWork returns n iterations alternating low/high, offset by
// phase — transient drift with equal totals across processors.
func AlternatingWork(n int, low, high int64, phase int) []int64 {
	out := make([]int64, n)
	for i := range out {
		if (i+phase)%2 == 0 {
			out[i] = low
		} else {
			out[i] = high
		}
	}
	return out
}

// IfLoop is the Figure 7 workload: each iteration runs S1 (fixed cost),
// then an if-statement whose branches cost ThenWork and ElseWork; the
// branch taken varies pseudo-randomly per processor and iteration. With
// FuzzyIf the entire if-statement is part of the barrier region ("if the
// entire statement is part of the barrier region then there are
// situations where the variation ... will not result in a stall"); without
// it, a single-nop barrier region follows the if (the point barrier of
// Figure 7(b)(i)).
type IfLoop struct {
	Self     int
	Procs    int
	Iters    int
	S1Work   int64
	ThenWork int64
	ElseWork int64
	FuzzyIf  bool
	Seed     uint64
}

// Program builds the machine program.
func (c IfLoop) Program() (*isa.Program, error) {
	if c.Procs < 1 || c.Self < 0 || c.Self >= c.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", c.Self, c.Procs)
	}
	rng := NewRNG(c.Seed + uint64(c.Self)*0x9E37 + 1)
	b := isa.NewBuilder(fmt.Sprintf("ifloop-p%d", c.Self))
	b.BarrierInit(1, uint64(core.AllExcept(c.Procs, c.Self)))
	for k := 0; k < c.Iters; k++ {
		b.InNonBarrier()
		b.Work(c.S1Work).Comment("S1, iteration %d", k)
		if c.FuzzyIf {
			b.InBarrier()
		} else {
			b.InNonBarrier()
		}
		// The if-statement: a real conditional branch so the barrier
		// region has multiple control paths (Section 3). The predicate is
		// loaded as a per-iteration pseudo-random constant.
		cond := rng.IntN(2)
		thenLbl := fmt.Sprintf("then_%d", k)
		joinLbl := fmt.Sprintf("join_%d", k)
		b.Ldi(1, cond).Comment("cond, iteration %d", k)
		b.Ldi(2, 1)
		b.CondBr(isa.BEQ, 1, 2, thenLbl)
		b.Work(c.ElseWork).Comment("S3 (else)")
		b.Br(joinLbl)
		b.Label(thenLbl).Work(c.ThenWork).Comment("S2 (then)")
		b.Label(joinLbl)
		if c.FuzzyIf {
			b.Nop().Comment("end of barrier region")
		} else {
			b.InBarrier().Nop().Comment("point barrier")
		}
	}
	b.InNonBarrier().Halt()
	return b.Build()
}
