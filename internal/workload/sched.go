package workload

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/sched"
)

// StaticSchedLoop is the Figure 11 workload: `Rounds` rounds of an inner
// parallel loop of Iters iterations on Procs processors, each iteration
// costing IterCost cycles, with a barrier between rounds. The per-round
// assignment comes from Assign (e.g. sched.Block for Figure 11's fixed
// schedule, sched.Rotating for the rotating-remainder schedule); with
// Region > 0 a barrier region of that many cycles follows each round so
// idle time can be absorbed (Figure 11(c)).
type StaticSchedLoop struct {
	Self     int
	Procs    int
	Rounds   int
	Iters    int
	IterCost int64
	Region   int64
	Assign   func(round int) sched.Assignment
}

// Program builds the (unrolled) machine program.
func (c StaticSchedLoop) Program() (*isa.Program, error) {
	if c.Procs < 1 || c.Self < 0 || c.Self >= c.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", c.Self, c.Procs)
	}
	if c.Assign == nil {
		return nil, fmt.Errorf("workload: StaticSchedLoop needs an Assign function")
	}
	b := isa.NewBuilder(fmt.Sprintf("statsched-p%d", c.Self))
	b.BarrierInit(1, uint64(core.AllExcept(c.Procs, c.Self)))
	for r := 0; r < c.Rounds; r++ {
		a := c.Assign(r)
		mine := 0
		if c.Self < len(a) {
			mine = len(a[c.Self])
		}
		b.InNonBarrier()
		if w := int64(mine) * c.IterCost; w > 0 {
			b.Work(w).Comment("round %d: %d iterations", r, mine)
		} else {
			b.Nop().Comment("round %d: no iterations", r)
		}
		b.InBarrier()
		if c.Region > 0 {
			b.Work(c.Region).Comment("round %d barrier region", r)
		} else {
			b.Nop()
		}
	}
	b.InNonBarrier().Halt()
	return b.Build()
}

// DynamicSchedLoop is the Figure 12 workload: the iteration count of the
// inner loop is (conceptually) unknown at compile time, so iterations are
// claimed at run time from a shared index word using fetch-and-add. The
// per-iteration cost is triangular (Base + Slope·i), the classic
// motivating shape for guided self-scheduling. After draining the
// iteration space each processor enters the end-of-round barrier; with
// Region > 0 the barrier region absorbs the finish-time spread.
//
// Policy selects the chunk size: 1 (self-scheduling), a fixed K, or 0 for
// GSS (each grab takes ⌈remaining/Procs⌉). The GSS claim must read the
// index and advance it atomically as one unit, so it runs under a ticket
// lock built from two more shared words and fetch-and-add — the realistic
// cost of GSS on FAA hardware, and part of the scheduling overhead the
// experiment measures.
//
// Register use: r1 = 1, r4..r9 scratch.
type DynamicSchedLoop struct {
	Self   int
	Procs  int
	Iters  int64
	Base   int64
	Slope  int64
	Region int64
	Chunk  int64 // 0 = GSS, 1 = self, k = fixed chunk
	Index  int64 // shared index word address (default 12)
}

// Program builds the machine program.
func (c DynamicSchedLoop) Program() (*isa.Program, error) {
	if c.Procs < 1 || c.Self < 0 || c.Self >= c.Procs {
		return nil, fmt.Errorf("workload: bad self/procs %d/%d", c.Self, c.Procs)
	}
	if c.Iters < 1 {
		return nil, fmt.Errorf("workload: DynamicSchedLoop needs iterations")
	}
	idx := c.Index
	if idx == 0 {
		idx = 12
	}
	b := isa.NewBuilder(fmt.Sprintf("dynsched-p%d", c.Self))
	b.BarrierInit(1, uint64(core.AllExcept(c.Procs, c.Self)))
	b.Ldi(10, idx).Comment("&index")
	b.Ldi(11, c.Iters).Comment("N")
	b.Ldi(12, int64(c.Procs)).Comment("P")
	b.Ldi(13, c.Base).Comment("base cost")
	b.Ldi(14, c.Slope).Comment("slope")
	b.Ldi(15, 2)

	b.Ldi(1, 1).Comment("constant 1")

	b.Label("grab")
	if c.Chunk > 0 {
		// Fixed chunk: a single fetch-and-add claims the block.
		b.Ldi(4, c.Chunk).Comment("fixed chunk")
		b.Faa(5, 10, 0, 4).Comment("claim chunk")
		b.CondBr(isa.BGE, 5, 11, "drain")
	} else {
		// GSS: acquire the ticket lock (index+1 = next ticket, index+2 =
		// now serving), then read-compute-advance the index atomically.
		b.Faa(6, 10, 1, 1).Comment("take ticket")
		b.Label("spinlock").Ld(7, 10, 2).Comment("poll now-serving")
		b.CondBr(isa.BLT, 7, 6, "spinlock")
		b.Ld(5, 10, 0).Comment("read index")
		b.Sub(4, 11, 5).Comment("remaining")
		b.CondBr(isa.BLE, 4, 0, "unlockDrain") // r0 holds 0
		b.Add(4, 4, 12).Comment("remaining + P")
		b.Addi(4, 4, -1)
		b.Alu(isa.DIV, 4, 4, 12).Comment("ceil(remaining/P)")
		b.Add(7, 5, 4)
		b.St(10, 0, 7).Comment("advance index")
		b.Faa(7, 10, 2, 1).Comment("release lock")
		b.Br("haveChunk")
		b.Label("unlockDrain").Faa(7, 10, 2, 1).Comment("release lock")
		b.Br("drain")
		b.Label("haveChunk")
	}
	// end := min(start+size, N)
	b.Add(6, 5, 4)
	b.CondBr(isa.BLE, 6, 11, "haveEnd")
	b.Mov(6, 11)
	b.Label("haveEnd")
	// cost := (end-start)*Base + Slope*(start+end-1)*(end-start)/2
	b.Sub(7, 6, 5).Comment("count")
	b.Mul(8, 7, 13).Comment("count*base")
	b.Add(9, 5, 6)
	b.Addi(9, 9, -1)
	b.Mul(9, 9, 7)
	b.Alu(isa.DIV, 9, 9, 15).Comment("sum of indices")
	b.Mul(9, 9, 14).Comment("*slope")
	b.Add(8, 8, 9).Comment("total chunk cost")
	b.WorkR(8)
	b.Br("grab")

	b.Label("drain")
	b.InBarrier()
	if c.Region > 0 {
		b.Work(c.Region).Comment("end-of-round barrier region")
	} else {
		b.Nop().Comment("point barrier")
	}
	b.InNonBarrier().Halt()
	return b.Build()
}
