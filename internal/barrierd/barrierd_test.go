package barrierd

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/transport"
)

// simScenario drives a full multi-group, multi-connection workload on a
// SimNet: conns connections each own clients in every group, all join,
// then chain epochs 0..epochs-1 through WhenReleased callbacks. It
// returns the net (for transcript inspection) and fails the test if the
// workload doesn't complete within the tick budget.
func simScenario(t *testing.T, simCfg transport.SimConfig, shards, conns, groups, clientsPer int, epochs int64) *transport.SimNet {
	t.Helper()
	nw := transport.NewSimNet(simCfg)
	cfg := SimConfig(simCfg.Latency, simCfg.Jitter)
	cfg.Shards = shards
	svc, err := Start(nw, cfg, nil, nw)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var cs []*Conn
	for i := 0; i < conns; i++ {
		c, err := Dial(nw, transport.ConnAddrBase+transport.Addr(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	// Client ids: conn i owns ids [i*clientsPer, (i+1)*clientsPer) in
	// every group.
	ids := func(i int) []uint64 {
		out := make([]uint64, clientsPer)
		for k := range out {
			out[k] = uint64(i*clientsPer + k)
		}
		return out
	}
	for i, c := range cs {
		for g := 0; g < groups; g++ {
			g := uint32(g)
			c, i := c, i
			var step func(rel int64)
			step = func(rel int64) {
				next := rel + 1
				if next >= epochs {
					return
				}
				c.ArriveBatch(g, next, ids(i))
				c.WhenReleased(g, next, step)
			}
			c.JoinBatch(g, core.SignalWait, ids(i), func(epoch int64) {
				c.ArriveBatch(g, epoch, ids(i))
				c.WhenReleased(g, epoch, step)
			})
		}
	}
	done := func() bool {
		for _, c := range cs {
			for g := 0; g < groups; g++ {
				if c.Released(uint32(g)) < epochs-1 {
					return false
				}
			}
		}
		return true
	}
	if _, ok := nw.Run(100_000_000, done); !ok {
		for _, c := range cs {
			for g := 0; g < groups; g++ {
				t.Logf("conn %d group %d released=%d", c.Addr(), g, c.Released(uint32(g)))
			}
		}
		t.Fatal("sim workload did not complete")
	}
	return nw
}

func TestSimCompletesEpochsLossyLinks(t *testing.T) {
	nw := simScenario(t, transport.SimConfig{
		Latency: 2, Jitter: 5, DropRate: 0.15, DupRate: 0.05, Seed: 11,
	}, 4, 4, 3, 8, 20)
	if nw.Dropped == 0 {
		t.Fatal("fault model idle — loss path not exercised")
	}
}

// TestBarrierdSimByteIdenticalTranscript is the acceptance guarantee:
// the whole barrierd stack (shards, combine tree, phaser state, client
// conns) over the extracted reliability layer replays byte-identically
// on the simulator — same seed, same transcript, including drops,
// duplicates and retransmissions.
func TestBarrierdSimByteIdenticalTranscript(t *testing.T) {
	run := func() string {
		nw := simScenario(t, transport.SimConfig{
			Latency: 2, Jitter: 5, DropRate: 0.2, DupRate: 0.08, Seed: 42, LogEvents: true,
		}, 4, 3, 2, 5, 12)
		return strings.Join(nw.EventLog(), "\n")
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty transcript")
	}
	if a != b {
		t.Fatal("same seed produced different barrierd transcripts")
	}
	for _, want := range []string{"drop", "retransmit", "join", "arrive", "release"} {
		if !strings.Contains(a, want) {
			t.Fatalf("transcript never mentions %q — scenario not exercising it", want)
		}
	}
}

// TestEpochsAcrossTransports runs the same coordinator + client code,
// unmodified, over all three transports.
func TestEpochsAcrossTransports(t *testing.T) {
	t.Run("sim", func(t *testing.T) {
		simScenario(t, transport.SimConfig{Latency: 1, Jitter: 2, Seed: 3}, 4, 3, 2, 4, 15)
	})
	realtime := func(t *testing.T, nw transport.Network) {
		cfg := RealtimeConfig()
		cfg.Shards = 4
		cfg.FlushDelay = int64(50 * time.Microsecond)
		svc, err := Start(nw, cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		const conns, groups, clientsPer, epochs = 3, 2, 4, 15
		errs := make(chan error, conns)
		for i := 0; i < conns; i++ {
			c, err := Dial(nw, transport.ConnAddrBase+transport.Addr(i), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			go func(i int, c *Conn) {
				ids := make([]uint64, clientsPer)
				for k := range ids {
					ids[k] = uint64(i*clientsPer + k)
				}
				for g := uint32(0); g < groups; g++ {
					c.JoinBatch(g, core.SignalWait, ids, nil)
				}
				for g := uint32(0); g < groups; g++ {
					c.AwaitJoined(g)
				}
				for e := int64(0); e < epochs; e++ {
					for g := uint32(0); g < groups; g++ {
						c.ArriveBatch(g, e, ids)
					}
					for g := uint32(0); g < groups; g++ {
						if rel := c.WaitReleased(g, e); rel < e {
							errs <- fmt.Errorf("conn %d group %d: released %d < %d", i, g, rel, e)
							return
						}
					}
				}
				errs <- nil
			}(i, c)
		}
		for i := 0; i < conns; i++ {
			select {
			case err := <-errs:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("transport run timed out")
			}
		}
	}
	t.Run("chan", func(t *testing.T) {
		nw := transport.NewChanNet(0)
		defer nw.Close()
		realtime(t, nw)
	})
	t.Run("udp", func(t *testing.T) {
		nw := transport.NewUDPNet(0)
		defer nw.Close()
		realtime(t, nw)
	})
}

// TestWatchdogReportsMissingArrival: a group with one member that never
// arrives must produce a StuckReport whose Why names the outstanding
// client.
func TestWatchdogReportsMissingArrival(t *testing.T) {
	nw := transport.NewSimNet(transport.SimConfig{Latency: 1, Seed: 1})
	cfg := SimConfig(1, 0)
	cfg.Shards = 2
	var reports []StuckReport
	svc, err := Start(nw, cfg, func(sr StuckReport) { reports = append(reports, sr) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Dial(nw, transport.ConnAddrBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.JoinBatch(1, core.SignalWait, []uint64{10, 11}, func(epoch int64) {
		c.ArriveBatch(1, epoch, []uint64{10}) // client 11 never arrives
	})
	nw.Run(cfg.Watchdog*10, func() bool { return len(reports) > 0 })
	if len(reports) == 0 {
		t.Fatal("watchdog never fired for a stuck group")
	}
	sr := reports[0]
	if sr.Group != 1 || sr.Epoch != 0 {
		t.Fatalf("bad report target: %+v", sr)
	}
	joined := strings.Join(sr.Why, "; ")
	if !strings.Contains(joined, "waiting-arrivals") || !strings.Contains(joined, "11") {
		t.Fatalf("Why does not name the missing client: %q", joined)
	}
	if c.Released(1) >= 0 {
		t.Fatal("epoch released despite a missing arrival")
	}
}

// TestPhaserModesAndDrain: SignalOnly members gate epochs without
// waiting, WaitOnly members never gate, and the last signaler's leave
// drains the group, releasing all waiters.
func TestPhaserModesAndDrain(t *testing.T) {
	nw := transport.NewSimNet(transport.SimConfig{Latency: 1, Jitter: 1, Seed: 9})
	cfg := SimConfig(1, 1)
	cfg.Shards = 3
	svc, err := Start(nw, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	prod, err := Dial(nw, transport.ConnAddrBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Dial(nw, transport.ConnAddrBase+1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const g = 5
	// A WaitOnly consumer alone must not see epochs complete.
	cons.JoinBatch(g, core.WaitOnly, []uint64{100}, nil)
	nw.Run(5000, nil)
	if cons.Released(g) >= 0 {
		t.Fatalf("epoch released with no signalers registered: %d", cons.Released(g))
	}
	// A SignalOnly producer drives epochs 0..2; the consumer observes
	// releases without ever arriving.
	prod.JoinBatch(g, core.SignalOnly, []uint64{1}, func(epoch int64) {
		prod.ArriveBatch(g, epoch+2, []uint64{1}) // signal three epochs at once
	})
	if _, ok := nw.Run(200_000, func() bool { return cons.Released(g) >= 2 }); !ok {
		t.Fatalf("consumer saw released=%d, want >= 2", cons.Released(g))
	}
	if cons.Released(g) >= DrainEpoch {
		t.Fatal("drained before the signaler left")
	}
	// Producer leaves: group drains, waiters at any epoch release.
	prod.LeaveBatch(g, []uint64{1})
	if _, ok := nw.Run(400_000, func() bool { return cons.Released(g) >= DrainEpoch }); !ok {
		t.Fatalf("group did not drain after last signaler left: released=%d", cons.Released(g))
	}
}
