// Package barrierd is the epoch-coordination service: fuzzy-barrier
// groups as a network service. Clients join a group, arrive at epochs,
// and wait for releases; the service decides when each epoch is
// complete. The Arrive/Wait split is the paper's split-phase barrier
// stretched over a network — everything a client does between Arrive
// and the release is its barrier region.
//
// The coordinator is sharded: every group consistent-hashes to a home
// shard that owns its membership and epoch state, connections spread
// their traffic over ingress shards, and arrival batches combine up a
// tree of shards rooted at the group's home (the same fan-in discipline
// as cluster.TreeBarrier, with shards for tree nodes). Releases retrace
// the tree and fan out to connections.
//
// The service speaks transport.Message over any transport.Network, so
// one coordinator codebase runs on the deterministic simulator (where
// its transcripts replay byte-identically), on in-process channels, and
// on real UDP sockets. All reliability — retransmission, dedup, ack
// batching — lives in transport.Reliable, the layer extracted from and
// verified by internal/cluster.
package barrierd

import (
	"fmt"

	"fuzzybarrier/internal/transport"
)

// DrainEpoch is the release epoch broadcast when a group's last
// signaler deregisters: with no signalers every epoch completes
// trivially (core.Phaser's drained state), so waiters at any epoch are
// released. Drain is terminal for the group.
const DrainEpoch = int64(1) << 62

// MaxBatch bounds the client ids carried by one datagram, keeping the
// wire size under typical UDP limits; larger batches are chunked.
const MaxBatch = 2048

// maxEpochSkip bounds how far one arrival may advance a member's
// signaled range; wire input past it is discarded rather than looped
// over (a hostile Epoch would otherwise cost 2^62 iterations).
const maxEpochSkip = 1 << 20

// Config tunes a shard set. Times are in the transport's clock units
// (ticks on SimNet, nanoseconds otherwise).
type Config struct {
	Shards int // coordinator shards (default 4)
	Radix  int // combine-tree fan-in (default 2)

	// FlushDelay/FlushBatch batch arrival forwarding at non-home
	// shards: accumulated client ids are combined upward when the batch
	// reaches FlushBatch ids or FlushDelay elapses, whichever is first.
	FlushDelay int64
	FlushBatch int

	// Watchdog is the no-progress threshold: a home shard whose group
	// has signalers but whose epoch hasn't advanced for this long
	// produces a StuckReport. 0 disables.
	Watchdog int64

	Reliable transport.ReliableConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Radix < 2 {
		c.Radix = 2
	}
	if c.FlushBatch <= 0 {
		c.FlushBatch = MaxBatch
	}
	return c
}

// SimConfig returns tuning for a SimNet with the given link latency
// and jitter (ticks).
func SimConfig(latency, jitter int64) Config {
	return Config{
		Shards: 4, Radix: 2,
		FlushDelay: 1, FlushBatch: MaxBatch,
		Watchdog: 200 * (latency + jitter + 1),
		Reliable: transport.SimReliable(latency, jitter),
	}
}

// RealtimeConfig returns tuning for the nanosecond-clock transports.
func RealtimeConfig() Config {
	const ms = int64(1e6)
	return Config{
		Shards: 4, Radix: 2,
		FlushDelay: ms / 5, FlushBatch: MaxBatch,
		Watchdog: 2000 * ms,
		Reliable: transport.RealtimeReliable(),
	}
}

// ShardAddr returns shard i's transport address (shards occupy the low
// address space; connections start at transport.ConnAddrBase).
func ShardAddr(i int) transport.Addr { return transport.Addr(i + 1) }

// Ring consistent-hashes groups onto shards by rendezvous (highest
// random weight) hashing: each group scores every shard and the top
// score wins, so shard-count changes move only the minimum of groups
// and no ring state needs distributing — every participant derives the
// same placement from the shard count alone.
type Ring struct {
	Shards int
}

// Home returns the shard owning g's membership and epoch state.
func (r Ring) Home(g uint32) int {
	return r.top(uint64(g) | 1<<40)
}

// Ingress returns the shard that connection conn sends g's traffic to:
// rendezvous over (group, conn), spreading a group's connections across
// shards so arrival fan-in is combined rather than concentrated.
func (r Ring) Ingress(g uint32, conn transport.Addr) int {
	return r.top(uint64(g)<<32 | uint64(conn))
}

func (r Ring) top(key uint64) int {
	best, bestScore := 0, uint64(0)
	for s := 0; s < r.Shards; s++ {
		if score := rdvmix(key, uint64(s)); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// rdvmix is a splitmix64-style scorer for rendezvous hashing.
func rdvmix(a, b uint64) uint64 {
	z := a ^ (b * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// parentShard returns the combine-tree parent of shard s for a group
// homed at home, or -1 when s is the root. The tree is the radix-k heap
// shape cluster.TreeBarrier uses, relabeled by rotation so any shard
// can be the root: position (s - home) mod S in heap order.
func parentShard(s, home, shards, radix int) int {
	pos := (s - home + shards) % shards
	if pos == 0 {
		return -1
	}
	return ((pos-1)/radix + home) % shards
}

// StuckReport describes a group making no progress: the home shard's
// watchdog emits one when signalers exist but the epoch hasn't advanced
// within the configured window. Why lists the concrete causes the shard
// can see.
type StuckReport struct {
	Shard int
	Group uint32
	Epoch int64
	Since int64    // clock units since the last progress
	Why   []string // e.g. "waiting-arrivals: 2 of 3 signalers outstanding (client 7, client 9)"
}

// String renders the report for logs.
func (sr StuckReport) String() string {
	s := fmt.Sprintf("stuck: shard=%d group=%d epoch=%d since=%d", sr.Shard, sr.Group, sr.Epoch, sr.Since)
	for _, w := range sr.Why {
		s += "\n  why: " + w
	}
	return s
}
