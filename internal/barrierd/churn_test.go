package barrierd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/transport"
)

// TestChurnNoEarlyReleaseNoDeadlock stresses dynamic membership on the
// concurrent ChanNet transport (run under -race by make verify): stable
// SignalWait members drive epochs while churners join and leave
// mid-epoch in every phaser mode. Two invariants:
//
//   - No early release: epoch e of a group cannot be released anywhere
//     before every stable signaler has sent its arrival for e. Each
//     stable conn is a necessary participant, so observing
//     Released(g) >= e before it sends arrive(e) would prove the
//     coordinator released early.
//
//   - No deadlock: every stable conn finishes all epochs, and a final
//     drain (all signalers leave) releases a WaitOnly observer, within
//     the test deadline.
func TestChurnNoEarlyReleaseNoDeadlock(t *testing.T) {
	nw := transport.NewChanNet(0)
	defer nw.Close()
	cfg := RealtimeConfig()
	cfg.Shards = 4
	cfg.FlushDelay = int64(50 * time.Microsecond)
	cfg.Watchdog = 0 // churn stalls are expected transients; no reports
	svc, err := Start(nw, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const (
		groups  = 3
		stable  = 2         // stable SignalWait conns (one client each per group)
		churner = 4         // churning conns
		epochs  = int64(30) // minimum epochs each stable conn drives
	)
	errs := make(chan error, stable+churner)
	churnDone := make(chan error, churner)

	// Stable conns drive epochs until the churners finish, then agree on
	// a stop epoch (stable drivers stopping early would strand a churner
	// waiting on a future epoch). Positions differ by at most one epoch
	// — completing epoch k needs every stable arrival for k — so a stop
	// epoch two past any observed position is past-proof for all.
	var pos [stable]atomic.Int64
	var stopEpoch atomic.Int64
	stopEpoch.Store(-1)

	// Stable drivers: client id = conn index, registered in every group.
	var stableConns []*Conn
	for i := 0; i < stable; i++ {
		c, err := Dial(nw, transport.ConnAddrBase+transport.Addr(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		stableConns = append(stableConns, c)
		go func(i int, c *Conn) {
			id := []uint64{uint64(i)}
			for g := uint32(0); g < groups; g++ {
				c.JoinBatch(g, core.SignalWait, id, nil)
			}
			for g := uint32(0); g < groups; g++ {
				c.AwaitJoined(g)
			}
			for e := int64(0); ; e++ {
				pos[i].Store(e)
				if s := stopEpoch.Load(); s >= 0 && e > s {
					break
				}
				for g := uint32(0); g < groups; g++ {
					// The early-release probe: this conn has not sent
					// arrive(e) yet, and release e needs it.
					if rel := c.Released(g); rel >= e {
						errs <- fmt.Errorf("early release: conn %d group %d released=%d before its arrive(%d)", i, g, rel, e)
						return
					}
					c.ArriveBatch(g, e, id)
				}
				for g := uint32(0); g < groups; g++ {
					if rel := c.WaitReleased(g, e); rel < e {
						errs <- fmt.Errorf("conn %d group %d: bad release %d", i, g, rel)
						return
					}
				}
			}
			errs <- nil
		}(i, c)
	}

	// Once every churner reports, publish the stop epoch.
	go func() {
		for i := 0; i < churner; i++ {
			errs <- <-churnDone
		}
		stop := epochs
		for i := range pos {
			if p := pos[i].Load() + 2; p > stop {
				stop = p
			}
		}
		stopEpoch.Store(stop)
	}()

	// Churners: join mid-stream in a rotating mode, participate
	// briefly, leave mid-epoch. SignalOnly churners must arrive for
	// every epoch from their join epoch until they leave (they gate
	// completion while registered); WaitOnly churners just observe.
	for i := 0; i < churner; i++ {
		c, err := Dial(nw, transport.ConnAddrBase+transport.Addr(stable+i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go func(i int, c *Conn) {
			mode := []core.PhaserMode{core.SignalOnly, core.WaitOnly, core.SignalWait}[i%3]
			id := []uint64{uint64(1000 + i)}
			g := uint32(i % groups)
			for round := 0; round < 6; round++ {
				c.JoinBatch(g, mode, id, nil)
				e := c.AwaitJoined(g)
				if mode == core.WaitOnly {
					// Observe one release (or drain) then leave.
					c.WaitReleased(g, e)
				} else {
					// Signal a handful of epochs, leaving mid-epoch on
					// the last (join..leave window straddles epochs).
					for k := int64(0); k < 3; k++ {
						c.ArriveBatch(g, e+k, id)
						if k < 2 {
							c.WaitReleased(g, e+k)
						}
					}
				}
				c.LeaveBatch(g, id)
			}
			churnDone <- nil
		}(i, c)
	}

	deadline := time.After(60 * time.Second)
	for i := 0; i < stable+churner; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			for _, c := range stableConns {
				for g := uint32(0); g < groups; g++ {
					t.Logf("stable conn %d group %d released=%d", c.Addr(), g, c.Released(g))
				}
			}
			t.Fatal("deadlock: churn workload did not complete")
		}
	}

	// Drain: a fresh WaitOnly observer, then every remaining signaler
	// leaves; the observer must release via drain.
	obs, err := Dial(nw, transport.ConnAddrBase+100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	var wg sync.WaitGroup
	for g := uint32(0); g < groups; g++ {
		obs.JoinBatch(g, core.WaitOnly, []uint64{9999}, nil)
	}
	for g := uint32(0); g < groups; g++ {
		obs.AwaitJoined(g)
	}
	for i, c := range stableConns {
		for g := uint32(0); g < groups; g++ {
			c.LeaveBatch(g, []uint64{uint64(i)})
		}
	}
	for g := uint32(0); g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			obs.WaitReleased(g, DrainEpoch)
		}()
	}
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		for g := uint32(0); g < groups; g++ {
			t.Logf("observer group %d released=%d", g, obs.Released(g))
		}
		t.Fatal("groups did not drain after all signalers left")
	}
}
