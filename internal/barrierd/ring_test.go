package barrierd

import (
	"testing"

	"fuzzybarrier/internal/transport"
)

func TestRingHomeInRangeAndStable(t *testing.T) {
	r := Ring{Shards: 8}
	for g := uint32(0); g < 1000; g++ {
		h := r.Home(g)
		if h < 0 || h >= 8 {
			t.Fatalf("group %d: home %d out of range", g, h)
		}
		if h != r.Home(g) {
			t.Fatalf("group %d: home not stable", g)
		}
	}
}

func TestRingSpreadsGroupsAndIngress(t *testing.T) {
	r := Ring{Shards: 8}
	homes := make(map[int]int)
	for g := uint32(0); g < 4096; g++ {
		homes[r.Home(g)]++
	}
	for s := 0; s < 8; s++ {
		if homes[s] == 0 {
			t.Fatalf("shard %d owns no groups of 4096", s)
		}
	}
	// One group's connections must spread across several ingress shards.
	ing := make(map[int]bool)
	for c := 0; c < 64; c++ {
		ing[r.Ingress(7, transport.ConnAddrBase+transport.Addr(c))] = true
	}
	if len(ing) < 3 {
		t.Fatalf("64 connections landed on only %d ingress shards", len(ing))
	}
}

func TestRingMinimalMovement(t *testing.T) {
	// Rendezvous hashing: growing the shard count moves only a fraction
	// of groups, and only onto the new shard.
	a, b := Ring{Shards: 7}, Ring{Shards: 8}
	moved := 0
	for g := uint32(0); g < 4096; g++ {
		ha, hb := a.Home(g), b.Home(g)
		if ha != hb {
			moved++
			if hb != 7 {
				t.Fatalf("group %d moved %d->%d, not onto the new shard", g, ha, hb)
			}
		}
	}
	if moved == 0 || moved > 4096/4 {
		t.Fatalf("moved %d of 4096 groups on 7->8 growth, want ~1/8", moved)
	}
}

func TestParentShardTreeReachesHome(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		for _, radix := range []int{2, 4} {
			for home := 0; home < shards; home++ {
				if p := parentShard(home, home, shards, radix); p != -1 {
					t.Fatalf("S=%d k=%d: home %d has parent %d, want root", shards, radix, home, p)
				}
				for s := 0; s < shards; s++ {
					cur, hops := s, 0
					for cur != home {
						cur = parentShard(cur, home, shards, radix)
						if cur < 0 || cur >= shards {
							t.Fatalf("S=%d k=%d home=%d: walk from %d left the shard set", shards, radix, home, s)
						}
						if hops++; hops > shards {
							t.Fatalf("S=%d k=%d home=%d: walk from %d does not terminate", shards, radix, home, s)
						}
					}
				}
			}
		}
	}
}
