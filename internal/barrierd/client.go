package barrierd

import (
	"fmt"
	"sync"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/transport"
)

// Conn is one client connection multiplexing any number of virtual
// clients over a single transport endpoint — the load generator runs
// tens of thousands of clients per Conn. Joins, arrivals and leaves
// are batched per datagram; releases arrive once per (conn, group) and
// fan out to every waiter locally.
//
// The callback API (JoinBatch's done, WhenReleased) is transport
// agnostic: callbacks run on the endpoint's dispatch context, so on
// SimNet a Conn is driven deterministically from inside Run. The
// blocking helpers (AwaitJoined, WaitReleased) are for the real-time
// transports only.
type Conn struct {
	ep   transport.Endpoint
	r    *transport.Reliable
	ring Ring

	mu     sync.Mutex
	groups map[uint32]*connGroup
}

type connGroup struct {
	released int64

	joinPending int
	joinEpoch   int64
	joinDone    []func(epoch int64)

	watchers []watcher
}

type watcher struct {
	epoch int64
	fn    func(released int64)
}

// Dial attaches a client connection at addr (>= transport.ConnAddrBase)
// to nw. On a UDPNet the caller must Register every shard route first.
func Dial(nw transport.Network, addr transport.Addr, cfg Config) (*Conn, error) {
	if addr < transport.ConnAddrBase {
		return nil, fmt.Errorf("barrierd: connection address %d collides with shard space", addr)
	}
	cfg = cfg.withDefaults()
	c := &Conn{ring: Ring{Shards: cfg.Shards}, groups: make(map[uint32]*connGroup)}
	r, ep, err := transport.AttachReliable(nw, addr, cfg.Reliable,
		func(_ *transport.Reliable, m transport.Message) { c.onMessage(m) }, nil)
	if err != nil {
		return nil, err
	}
	c.ep, c.r = ep, r
	return c, nil
}

// Close detaches the connection.
func (c *Conn) Close() error { return c.ep.Close() }

// Addr returns the connection's transport address.
func (c *Conn) Addr() transport.Addr { return c.ep.Addr() }

// Now returns the connection's transport clock (virtual ticks on
// SimNet, nanoseconds otherwise). From a callback it is the dispatch
// context's current time.
func (c *Conn) Now() int64 { return c.ep.Now() }

// After schedules fn on the connection's dispatch context after delay
// transport units — the pacing primitive deterministic offered-load
// drives use on SimNet (E19). On SimNet it is only safe from inside a
// callback or before Run, like any endpoint timer.
func (c *Conn) After(delay int64, fn func()) { c.ep.After(delay, fn) }

// TransportStats returns the reliability-layer counters for this
// connection. Only safe when the transport is quiescent (on SimNet:
// outside Run).
func (c *Conn) TransportStats() transport.ReliableStats { return c.r.Stats }

// TransportStatsSync fetches the counters through the dispatch
// context — the safe form on the real-time transports (blocks; not for
// SimNet, whose Do only runs inside Run).
func (c *Conn) TransportStatsSync() transport.ReliableStats {
	ch := make(chan transport.ReliableStats, 1)
	c.ep.Do(func() { ch <- c.r.Stats })
	return <-ch
}

func (c *Conn) group(g uint32) *connGroup {
	cg := c.groups[g]
	if cg == nil {
		cg = &connGroup{released: -1}
		c.groups[g] = cg
	}
	return cg
}

// onMessage handles server traffic on the dispatch context.
func (c *Conn) onMessage(m transport.Message) {
	var fire []func()
	c.mu.Lock()
	cg := c.group(m.Group)
	switch m.Kind {
	case transport.KindJoinOK:
		n := len(m.List)
		if n == 0 {
			n = 1
		}
		cg.joinPending -= n
		if m.Epoch > cg.joinEpoch {
			cg.joinEpoch = m.Epoch
		}
		if cg.joinPending <= 0 && len(cg.joinDone) > 0 {
			epoch := cg.joinEpoch
			for _, fn := range cg.joinDone {
				fn := fn
				fire = append(fire, func() { fn(epoch) })
			}
			cg.joinDone = nil
		}
	case transport.KindRelease:
		if m.Epoch > cg.released {
			cg.released = m.Epoch
			rel := cg.released
			kept := cg.watchers[:0]
			for _, w := range cg.watchers {
				if w.epoch <= rel {
					w := w
					fire = append(fire, func() { w.fn(rel) })
				} else {
					kept = append(kept, w)
				}
			}
			cg.watchers = kept
		}
	}
	c.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// send marshals a protocol send onto the dispatch context.
func (c *Conn) send(to transport.Addr, m transport.Message) {
	c.ep.Do(func() { c.r.Send(to, m) })
}

// ingress returns the shard this connection sends g's traffic to.
func (c *Conn) ingress(g uint32) transport.Addr {
	return ShardAddr(c.ring.Ingress(g, c.ep.Addr()))
}

// JoinBatch registers ids in g with the given mode. done (may be nil)
// fires on the dispatch context once every outstanding join on this
// group is confirmed, with the epoch the members participate from.
func (c *Conn) JoinBatch(g uint32, mode core.PhaserMode, ids []uint64, done func(epoch int64)) {
	c.mu.Lock()
	cg := c.group(g)
	cg.joinPending += len(ids)
	if done != nil {
		cg.joinDone = append(cg.joinDone, done)
	}
	c.mu.Unlock()
	to := c.ingress(g)
	for len(ids) > 0 {
		n := len(ids)
		if n > MaxBatch {
			n = MaxBatch
		}
		c.send(to, transport.Message{
			Kind: transport.KindJoin, Mode: uint8(mode), Group: g,
			List: append([]uint64(nil), ids[:n]...),
		})
		ids = ids[n:]
	}
}

// ArriveBatch signals that each id in ids has arrived at epoch e of g.
func (c *Conn) ArriveBatch(g uint32, e int64, ids []uint64) {
	to := c.ingress(g)
	for len(ids) > 0 {
		n := len(ids)
		if n > MaxBatch {
			n = MaxBatch
		}
		c.send(to, transport.Message{
			Kind: transport.KindArrive, Group: g, Epoch: e,
			List: append([]uint64(nil), ids[:n]...),
		})
		ids = ids[n:]
	}
}

// LeaveBatch deregisters ids from g.
func (c *Conn) LeaveBatch(g uint32, ids []uint64) {
	to := c.ingress(g)
	for len(ids) > 0 {
		n := len(ids)
		if n > MaxBatch {
			n = MaxBatch
		}
		c.send(to, transport.Message{
			Kind: transport.KindLeave, Group: g,
			List: append([]uint64(nil), ids[:n]...),
		})
		ids = ids[n:]
	}
}

// Released returns the highest epoch of g known released (DrainEpoch
// once the group drained; -1 before any release).
func (c *Conn) Released(g uint32) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.group(g).released
}

// WhenReleased fires fn (dispatch context) once g's release reaches
// epoch — immediately if it already has. This is the Wait half of the
// split-phase barrier; everything the caller does before fn fires is
// its barrier region.
func (c *Conn) WhenReleased(g uint32, epoch int64, fn func(released int64)) {
	c.mu.Lock()
	cg := c.group(g)
	if cg.released >= epoch {
		rel := cg.released
		c.mu.Unlock()
		fn(rel)
		return
	}
	cg.watchers = append(cg.watchers, watcher{epoch: epoch, fn: fn})
	c.mu.Unlock()
}

// WaitReleased blocks until g's release reaches epoch (real-time
// transports only).
func (c *Conn) WaitReleased(g uint32, epoch int64) int64 {
	ch := make(chan int64, 1)
	c.WhenReleased(g, epoch, func(rel int64) { ch <- rel })
	return <-ch
}

// AwaitJoined blocks until every outstanding join on g is confirmed
// (real-time transports only) and returns the participation epoch.
func (c *Conn) AwaitJoined(g uint32) int64 {
	ch := make(chan int64, 1)
	c.mu.Lock()
	cg := c.group(g)
	if cg.joinPending <= 0 {
		epoch := cg.joinEpoch
		c.mu.Unlock()
		return epoch
	}
	cg.joinDone = append(cg.joinDone, func(e int64) { ch <- e })
	c.mu.Unlock()
	return <-ch
}
