package barrierd

import (
	"fmt"
	"net"

	"fuzzybarrier/internal/transport"
)

// Service is a running shard set on one Network.
type Service struct {
	Cfg    Config
	Shards []*Shard
	eps    []transport.Endpoint
}

// Start attaches cfg.Shards coordinator shards to nw. onStuck (may be
// nil) receives watchdog reports on the owning shard's dispatch
// context. The same code runs unmodified on SimNet, ChanNet and UDPNet.
func Start(nw transport.Network, cfg Config, onStuck func(StuckReport), sink transport.EventSink) (*Service, error) {
	cfg = cfg.withDefaults()
	svc := &Service{Cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh := NewShard(i, cfg, onStuck)
		r, ep, err := transport.AttachReliable(nw, ShardAddr(i),
			cfg.Reliable, func(r *transport.Reliable, m transport.Message) { sh.OnMessage(m) }, sink)
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("barrierd: attaching shard %d: %w", i, err)
		}
		sh.Start(ep, r)
		svc.Shards = append(svc.Shards, sh)
		svc.eps = append(svc.eps, ep)
	}
	return svc, nil
}

// StartUDP binds cfg.Shards shards on loopback UDP (ephemeral ports
// unless basePort > 0, in which case shard i takes basePort+i) and
// returns the service plus each shard's bound address, in shard order.
// Clients route with transport.UDPNet.Register(ShardAddr(i), addr).
func StartUDP(cfg Config, basePort int, onStuck func(StuckReport)) (*Service, *transport.UDPNet, []*net.UDPAddr, error) {
	cfg = cfg.withDefaults()
	nw := transport.NewUDPNet(0)
	svc := &Service{Cfg: cfg}
	var addrs []*net.UDPAddr
	for i := 0; i < cfg.Shards; i++ {
		sh := NewShard(i, cfg, onStuck)
		bind := "127.0.0.1:0"
		if basePort > 0 {
			bind = fmt.Sprintf("127.0.0.1:%d", basePort+i)
		}
		// AttachReliable can't carry the bind address; wire the cycle
		// by hand with the same ready-gate discipline.
		var r *transport.Reliable
		ready := make(chan struct{})
		ep, bound, err := nw.AttachListen(ShardAddr(i), func(m transport.Message) { <-ready; r.OnMessage(m) }, bind)
		if err != nil {
			nw.Close()
			return nil, nil, nil, fmt.Errorf("barrierd: binding shard %d: %w", i, err)
		}
		r = transport.NewReliable(ep, cfg.Reliable, sh.OnMessage, nil)
		close(ready)
		sh.Start(ep, r)
		svc.Shards = append(svc.Shards, sh)
		svc.eps = append(svc.eps, ep)
		addrs = append(addrs, bound)
	}
	return svc, nw, addrs, nil
}

// Close shuts the shard endpoints down.
func (svc *Service) Close() error {
	for _, ep := range svc.eps {
		ep.Close()
	}
	return nil
}
