package barrierd

import (
	"fmt"
	"sort"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/transport"
)

// Shard is one coordinator shard. For groups homed here it runs the
// phaser state machine (membership, per-member signal counters, epoch
// advancement, releases, the no-progress watchdog); for other groups it
// is a combine-tree node: arrival batches accumulate briefly and merge
// upward, joins and leaves forward along the same path, and releases
// retrace it downward.
//
// All state is confined to the shard's endpoint dispatch context — no
// locks; on SimNet every shard is fully deterministic.
type Shard struct {
	Idx int

	cfg     Config
	ring    Ring
	ep      transport.Endpoint
	r       *transport.Reliable
	onStuck func(StuckReport)

	groups map[uint32]*groupState
	gorder []uint32 // creation order, for deterministic sweeps

	// Counters (read via Snapshot from outside the dispatch context).
	Arrivals int64 // client arrivals applied (home) or accumulated (ingress)
	Releases int64 // release decisions made (home groups only)
	Stucks   int64 // watchdog reports emitted
}

// member is one registered client of a home group.
type member struct {
	mode core.PhaserMode
	// signaled is the absolute count of epochs this member has
	// signaled: epochs < signaled are covered. Members join with
	// signaled = the group's current epoch (they owe it, like
	// core.Phaser registration).
	signaled int64
}

// groupState is one group's state at one shard.
type groupState struct {
	g uint32

	conns []transport.Addr // local connections with members (sorted)
	kids  []transport.Addr // child shards with interest (sorted)

	released int64 // highest release seen/sent; epochs <= released are complete

	// pendingJoin maps a client awaiting JoinOK to the downstream
	// address its join came from (non-home shards on the join path).
	pendingJoin map[uint64]transport.Addr

	// Ingress/combine accumulation (non-home shards).
	acc        map[int64][]uint64 // epoch -> arrived client ids
	accN       int
	flushArmed bool

	// Home-shard phaser state.
	home        bool
	mem         map[uint64]*member
	epoch       int64
	futureReady map[int64]int // epoch -> members that have signaled it
	signalers   int
	lastAdvance int64
	wdArmed     bool
}

// NewShard builds shard idx of a cfg.Shards-way coordinator. Wire it to
// an endpoint whose Handler calls OnMessage; Start completes the hookup.
func NewShard(idx int, cfg Config, onStuck func(StuckReport)) *Shard {
	cfg = cfg.withDefaults()
	return &Shard{
		Idx: idx, cfg: cfg, ring: Ring{Shards: cfg.Shards},
		onStuck: onStuck, groups: make(map[uint32]*groupState),
	}
}

// Start binds the shard to its transport endpoint and reliability
// layer. Called once, before any message is dispatched.
func (s *Shard) Start(ep transport.Endpoint, r *transport.Reliable) {
	s.ep = ep
	s.r = r
}

// Snapshot reads the shard's counters from outside the dispatch
// context (marshals through Do and blocks for the result) — real-time
// transports only; on SimNet read the fields directly between Run
// calls, the dispatch context is the driving goroutine.
func (s *Shard) Snapshot() (arrivals, releases, stucks int64) {
	done := make(chan struct{})
	s.ep.Do(func() {
		arrivals, releases, stucks = s.Arrivals, s.Releases, s.Stucks
		close(done)
	})
	<-done
	return
}

func (s *Shard) group(g uint32) *groupState {
	gs := s.groups[g]
	if gs == nil {
		gs = &groupState{g: g, released: -1}
		if s.ring.Home(g) == s.Idx {
			gs.home = true
			gs.mem = make(map[uint64]*member)
			gs.futureReady = make(map[int64]int)
			gs.lastAdvance = s.ep.Now()
			s.armWatchdog(gs)
		} else {
			gs.pendingJoin = make(map[uint64]transport.Addr)
			gs.acc = make(map[int64][]uint64)
		}
		s.groups[g] = gs
		s.gorder = append(s.gorder, g)
	}
	return gs
}

// parent returns this shard's combine-tree parent address for gs.
func (s *Shard) parent(gs *groupState) transport.Addr {
	p := parentShard(s.Idx, s.ring.Home(gs.g), s.cfg.Shards, s.cfg.Radix)
	return ShardAddr(p)
}

// OnMessage is the shard's protocol dispatch (the Reliable deliver
// callback).
func (s *Shard) OnMessage(m transport.Message) {
	switch m.Kind {
	case transport.KindJoin:
		s.handleJoin(m)
	case transport.KindJoinOK:
		s.handleJoinOK(m)
	case transport.KindLeave:
		s.handleLeave(m)
	case transport.KindArrive, transport.KindCombine:
		s.handleArrive(m)
	case transport.KindRelease:
		s.handleRelease(m)
	}
}

// noteInterest records where traffic for gs came from, so releases can
// retrace the path.
func (s *Shard) noteInterest(gs *groupState, from transport.Addr) {
	list := &gs.kids
	if from >= transport.ConnAddrBase {
		list = &gs.conns
	}
	i := sort.Search(len(*list), func(i int) bool { return (*list)[i] >= from })
	if i < len(*list) && (*list)[i] == from {
		return
	}
	*list = append(*list, 0)
	copy((*list)[i+1:], (*list)[i:])
	(*list)[i] = from
}

// clients returns m's client-id payload: the batch List, else the
// single Client field.
func clients(m transport.Message) []uint64 {
	if len(m.List) > 0 {
		return m.List
	}
	return []uint64{m.Client}
}

func (s *Shard) handleJoin(m transport.Message) {
	gs := s.group(m.Group)
	s.noteInterest(gs, m.From)
	if !gs.home {
		for _, c := range clients(m) {
			gs.pendingJoin[c] = m.From
		}
		s.r.Send(s.parent(gs), transport.Message{
			Kind: transport.KindJoin, Mode: m.Mode, Group: m.Group, List: append([]uint64(nil), clients(m)...),
		})
		return
	}
	mode := core.PhaserMode(m.Mode)
	for _, c := range clients(m) {
		if gs.mem[c] != nil {
			continue // re-join: keep existing registration
		}
		gs.mem[c] = &member{mode: mode, signaled: gs.epoch}
		if signals(mode) {
			gs.signalers++
		}
	}
	gs.lastAdvance = s.ep.Now() // membership change is progress
	s.armWatchdog(gs)           // a re-populated group needs coverage again
	// Confirm with the epoch the batch participates from; the joiner
	// also learns anything already released.
	s.sendJoinOK(m.From, gs, append([]uint64(nil), clients(m)...))
}

func (s *Shard) sendJoinOK(to transport.Addr, gs *groupState, ids []uint64) {
	for len(ids) > 0 {
		n := len(ids)
		if n > MaxBatch {
			n = MaxBatch
		}
		s.r.Send(to, transport.Message{
			Kind: transport.KindJoinOK, Group: gs.g, Epoch: gs.epoch, List: ids[:n],
		})
		ids = ids[n:]
	}
	if gs.released >= 0 {
		s.r.Send(to, transport.Message{Kind: transport.KindRelease, Group: gs.g, Epoch: gs.released})
	}
}

// handleJoinOK forwards confirmations down the join path: bucket the
// batch by the downstream address each client's join arrived on.
func (s *Shard) handleJoinOK(m transport.Message) {
	gs := s.group(m.Group)
	if gs.home || gs.pendingJoin == nil {
		return
	}
	var order []transport.Addr
	buckets := make(map[transport.Addr][]uint64)
	for _, c := range clients(m) {
		to, ok := gs.pendingJoin[c]
		if !ok {
			continue
		}
		delete(gs.pendingJoin, c)
		if _, seen := buckets[to]; !seen {
			order = append(order, to)
		}
		buckets[to] = append(buckets[to], c)
	}
	for _, to := range order { // List order, not map order: deterministic
		ids := buckets[to]
		for len(ids) > 0 {
			n := len(ids)
			if n > MaxBatch {
				n = MaxBatch
			}
			s.r.Send(to, transport.Message{
				Kind: transport.KindJoinOK, Group: m.Group, Epoch: m.Epoch, List: ids[:n],
			})
			ids = ids[n:]
		}
	}
}

func (s *Shard) handleLeave(m transport.Message) {
	gs := s.group(m.Group)
	if !gs.home {
		s.noteInterest(gs, m.From)
		s.r.Send(s.parent(gs), transport.Message{
			Kind: transport.KindLeave, Group: m.Group, List: append([]uint64(nil), clients(m)...),
		})
		return
	}
	for _, c := range clients(m) {
		mm := gs.mem[c]
		if mm == nil {
			continue
		}
		delete(gs.mem, c)
		if signals(mm.mode) {
			// Un-count every epoch the leaver had signaled but the
			// group hasn't completed: remaining members alone decide.
			for k := gs.epoch; k < mm.signaled; k++ {
				gs.futureReady[k]--
			}
			gs.signalers--
		}
	}
	gs.lastAdvance = s.ep.Now()
	s.checkComplete(gs)
	if gs.signalers == 0 && gs.released < DrainEpoch {
		// Last signaler gone: the phaser drains — everything releases.
		s.release(gs, DrainEpoch)
	}
}

func (s *Shard) handleArrive(m transport.Message) {
	gs := s.group(m.Group)
	s.noteInterest(gs, m.From)
	if gs.home {
		for _, c := range clients(m) {
			s.applyArrive(gs, c, m.Epoch)
		}
		s.checkComplete(gs)
		return
	}
	// Combine-tree node: accumulate, then flush upward in a batch.
	gs.acc[m.Epoch] = append(gs.acc[m.Epoch], clients(m)...)
	gs.accN += len(clients(m))
	s.Arrivals += int64(len(clients(m)))
	if gs.accN >= s.cfg.FlushBatch {
		s.flush(gs)
		return
	}
	if !gs.flushArmed {
		gs.flushArmed = true
		s.ep.After(s.cfg.FlushDelay, func() {
			gs.flushArmed = false
			s.flush(gs)
		})
	}
}

// flush combines the accumulated arrivals into upward batches, epoch by
// epoch in ascending order (deterministic on SimNet).
func (s *Shard) flush(gs *groupState) {
	if gs.accN == 0 {
		return
	}
	epochs := make([]int64, 0, len(gs.acc))
	for e := range gs.acc {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	parent := s.parent(gs)
	for _, e := range epochs {
		ids := gs.acc[e]
		delete(gs.acc, e)
		for len(ids) > 0 {
			n := len(ids)
			if n > MaxBatch {
				n = MaxBatch
			}
			s.r.Send(parent, transport.Message{
				Kind: transport.KindCombine, Group: gs.g, Epoch: e, List: append([]uint64(nil), ids[:n]...),
			})
			ids = ids[n:]
		}
	}
	gs.accN = 0
}

// applyArrive advances one member's signaled range through epoch e —
// the phaser arrive: every epoch in [signaled, e] gains this member's
// signal.
func (s *Shard) applyArrive(gs *groupState, c uint64, e int64) {
	mm := gs.mem[c]
	if mm == nil || !signals(mm.mode) {
		return // unknown (stale) client, or a waiter: no signal to count
	}
	if e < mm.signaled {
		return // replay of an already-signaled epoch
	}
	if e-mm.signaled > maxEpochSkip {
		return // wire value out of any plausible range
	}
	for k := mm.signaled; k <= e; k++ {
		gs.futureReady[k]++
	}
	mm.signaled = e + 1
	s.Arrivals++
}

// checkComplete advances the epoch while every signaler has signaled
// it, then publishes the highest completed epoch.
func (s *Shard) checkComplete(gs *groupState) {
	advanced := false
	for gs.signalers > 0 && gs.futureReady[gs.epoch] == gs.signalers {
		delete(gs.futureReady, gs.epoch)
		gs.epoch++
		advanced = true
	}
	if advanced {
		gs.lastAdvance = s.ep.Now()
		s.release(gs, gs.epoch-1)
	}
}

// release publishes "every epoch <= e of gs is complete" down the tree
// and out to connections.
func (s *Shard) release(gs *groupState, e int64) {
	if e <= gs.released {
		return
	}
	gs.released = e
	s.Releases++
	out := transport.Message{Kind: transport.KindRelease, Group: gs.g, Epoch: e}
	for _, to := range gs.conns {
		s.r.Send(to, out)
	}
	for _, to := range gs.kids {
		s.r.Send(to, out)
	}
}

// handleRelease forwards a release downward (non-home shards).
func (s *Shard) handleRelease(m transport.Message) {
	gs := s.group(m.Group)
	if gs.home {
		return
	}
	if m.Epoch <= gs.released {
		return
	}
	gs.released = m.Epoch
	out := transport.Message{Kind: transport.KindRelease, Group: m.Group, Epoch: m.Epoch}
	for _, to := range gs.conns {
		s.r.Send(to, out)
	}
	for _, to := range gs.kids {
		if to != m.From {
			s.r.Send(to, out)
		}
	}
}

// armWatchdog schedules the group's periodic no-progress check.
func (s *Shard) armWatchdog(gs *groupState) {
	if s.cfg.Watchdog <= 0 || gs.wdArmed {
		return
	}
	gs.wdArmed = true
	s.ep.After(s.cfg.Watchdog, func() {
		gs.wdArmed = false
		s.checkStuck(gs)
		if len(gs.mem) > 0 || gs.signalers > 0 {
			s.armWatchdog(gs)
		}
	})
}

// checkStuck emits a StuckReport when the group has signalers but the
// epoch hasn't advanced within the watchdog window, naming what the
// shard can see blocking it.
func (s *Shard) checkStuck(gs *groupState) {
	now := s.ep.Now()
	since := now - gs.lastAdvance
	if gs.signalers == 0 || since < s.cfg.Watchdog {
		return
	}
	var why []string
	missing := make([]uint64, 0, 8)
	outstanding := 0
	for c, mm := range gs.mem {
		if signals(mm.mode) && mm.signaled <= gs.epoch {
			outstanding++
			missing = append(missing, c)
		}
	}
	if outstanding > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		if len(missing) > 4 {
			missing = missing[:4]
		}
		why = append(why, fmt.Sprintf(
			"waiting-arrivals: %d of %d signalers outstanding at epoch %d (e.g. clients %v)",
			outstanding, gs.signalers, gs.epoch, missing))
	} else {
		why = append(why, fmt.Sprintf(
			"arrivals-signaled-but-epoch-stalled: futureReady=%d signalers=%d (combine batch in flight or lost)",
			gs.futureReady[gs.epoch], gs.signalers))
	}
	if unacked := s.r.Unacked(); unacked > 0 {
		why = append(why, "transport-backlog: "+s.r.PendingLine())
	}
	if len(gs.conns)+len(gs.kids) == 0 {
		why = append(why, "no-paths: group has no attached connections or child shards")
	}
	s.Stucks++
	if s.onStuck != nil {
		s.onStuck(StuckReport{Shard: s.Idx, Group: gs.g, Epoch: gs.epoch, Since: since, Why: why})
	}
}

// signals reports whether a mode gates epoch advancement.
func signals(m core.PhaserMode) bool {
	return m == core.SignalWait || m == core.SignalOnly
}
