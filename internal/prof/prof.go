// Package prof is the shared pprof plumbing for the CLIs: one call wires
// the standard -cpuprofile/-memprofile pair, so every command profiles
// the same way and `go tool pprof` works on the output unchanged.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. The returned
// stop function flushes and closes the profiles — call it exactly once,
// on every exit path that should produce output (a deferred call in main
// does not run under os.Exit).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("prof: %w", err)
				}
				return firstErr
			}
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
		return firstErr
	}, nil
}
