// Package prof is the shared pprof plumbing for the CLIs: one call wires
// the standard -cpuprofile/-memprofile pair, so every command profiles
// the same way and `go tool pprof` works on the output unchanged.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges end-of-run
// snapshots: a heap profile at memPath, a mutex-contention profile at
// mutexPath, and a blocking (off-CPU wait) profile at blockPath. Any
// path may be empty to skip that profile. Contention profiling is
// enabled only while a mutex/block path is armed — the sampling rates
// are restored to their defaults at stop, so profiled and unprofiled
// runs of the hot paths otherwise behave identically. The returned stop
// function flushes and closes the profiles — call it exactly once, on
// every exit path that should produce output (a deferred call in main
// does not run under os.Exit).
func Start(cpuPath, memPath, mutexPath, blockPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if memPath != "" {
			runtime.GC() // settle live-heap numbers before the snapshot
			keep(writeLookup(memPath, "heap"))
		}
		if mutexPath != "" {
			keep(writeLookup(mutexPath, "mutex"))
			runtime.SetMutexProfileFraction(0)
		}
		if blockPath != "" {
			keep(writeLookup(blockPath, "block"))
			runtime.SetBlockProfileRate(0)
		}
		return firstErr
	}, nil
}

// writeLookup snapshots one named runtime/pprof profile to path.
func writeLookup(path, profile string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
