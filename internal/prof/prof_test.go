package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	tmp := t.TempDir()
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 1
	for i := 0; i < 1_000_000; i++ {
		x = x*31 + i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("empty profile %s", p)
		}
	}
}

func TestStartNoPaths(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu path")
	}
}
