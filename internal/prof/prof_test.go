package prof

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	tmp := t.TempDir()
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	mtx := filepath.Join(tmp, "mutex.pprof")
	blk := filepath.Join(tmp, "block.pprof")
	stop, err := Start(cpu, mem, mtx, blk)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 1
	for i := 0; i < 1_000_000; i++ {
		x = x*31 + i
	}
	_ = x
	// Contend a mutex so the mutex/block profiles have samples too.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				x++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, mtx, blk} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("empty profile %s", p)
		}
	}
}

func TestStartNoPaths(t *testing.T) {
	stop, err := Start("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), "", "", ""); err == nil {
		t.Fatal("expected error for unwritable cpu path")
	}
}

// TestStartRestoresContentionRates: stop must switch contention
// sampling back off so profiled runs don't leak overhead into the rest
// of the process.
func TestStartRestoresContentionRates(t *testing.T) {
	tmp := t.TempDir()
	stop, err := Start("", "", filepath.Join(tmp, "m.pprof"), filepath.Join(tmp, "b.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if f := runtime.SetMutexProfileFraction(-1); f != 1 {
		t.Errorf("mutex profile fraction while armed = %d, want 1", f)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if f := runtime.SetMutexProfileFraction(-1); f != 0 {
		t.Errorf("mutex profile fraction after stop = %d, want 0", f)
	}
}
