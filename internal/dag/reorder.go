package dag

import "fmt"

import "fuzzybarrier/internal/ir"

// Split is the result of the Section 4 three-phase reordering of a
// non-barrier region candidate.
//
//   - Pre is moved into the barrier region *preceding* the non-barrier
//     region (phase 1: unmarked instructions with no marked ancestors —
//     in the Poisson example, all the address computations).
//   - NonBarrier is the shrunken non-barrier region (phase 2: the marked
//     instructions, scheduled as early as possible, plus the unmarked
//     instructions some marked instruction still needs).
//   - Post is moved into the barrier region *following* the non-barrier
//     region (phase 3: whatever remains).
type Split struct {
	Pre        ir.Block
	NonBarrier ir.Block
	Post       ir.Block
}

// Sizes returns the three region sizes (pre, non-barrier, post).
func (s Split) Sizes() (int, int, int) {
	return len(s.Pre), len(s.NonBarrier), len(s.Post)
}

// ThreePhase reorders a straight-line block per Section 4. The block's
// Marked flags identify the instructions that must remain in the
// non-barrier region. A trailing control instruction (a loop back-edge) is
// not permitted here; reorder the body and re-attach control flow in the
// caller.
//
// The returned blocks partition the input: concatenating Pre, NonBarrier
// and Post yields a legal schedule of the original block (every
// dependence edge points forward).
func ThreePhase(b ir.Block) (Split, error) {
	for _, in := range b {
		if in.IsControl() {
			return Split{}, fmt.Errorf("dag: control instruction %q in reorder input", in)
		}
	}
	g, err := Build(b)
	if err != nil {
		return Split{}, err
	}
	n := len(b)
	markedAnc := g.hasMarkedAncestor()
	needed := g.neededForMarked()

	scheduled := make([]bool, n)
	pending := make([]int, n) // unscheduled predecessor count
	for i := 0; i < n; i++ {
		pending[i] = len(g.preds[i])
	}
	ready := func(i int) bool { return !scheduled[i] && pending[i] == 0 }
	schedule := func(i int, out *ir.Block) {
		scheduled[i] = true
		*out = append(*out, b[i])
		for _, s := range g.succs[i] {
			pending[s]--
		}
	}

	var split Split

	// Phase 1: unmarked instructions with no marked ancestors move into
	// the preceding barrier region. Repeated sweeps in original order
	// keep the schedule stable and legal.
	for {
		progress := false
		for i := 0; i < n; i++ {
			if ready(i) && !b[i].Marked && !markedAnc[i] {
				schedule(i, &split.Pre)
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	// Phase 2: schedule marked instructions as early as possible; an
	// unmarked instruction is scheduled here only if a marked one still
	// needs it.
	remainingMarked := 0
	for i := 0; i < n; i++ {
		if b[i].Marked && !scheduled[i] {
			remainingMarked++
		}
	}
	for remainingMarked > 0 {
		progress := false
		// Prefer ready marked instructions.
		for i := 0; i < n; i++ {
			if ready(i) && b[i].Marked {
				schedule(i, &split.NonBarrier)
				remainingMarked--
				progress = true
			}
		}
		if remainingMarked == 0 {
			break
		}
		if progress {
			continue
		}
		// No marked instruction is ready: free one up by scheduling a
		// ready unmarked instruction that a marked instruction needs.
		for i := 0; i < n; i++ {
			if ready(i) && needed[i] {
				schedule(i, &split.NonBarrier)
				progress = true
				break
			}
		}
		if !progress {
			return Split{}, fmt.Errorf("dag: phase 2 wedged with %d marked instructions unscheduled (cyclic dependence?)", remainingMarked)
		}
	}

	// Phase 3: everything left moves into the following barrier region.
	for {
		progress := false
		for i := 0; i < n; i++ {
			if ready(i) {
				schedule(i, &split.Post)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for i := 0; i < n; i++ {
		if !scheduled[i] {
			return Split{}, fmt.Errorf("dag: instruction %d (%s) unschedulable", i, b[i])
		}
	}
	return split, nil
}

// Verify checks that order is a legal schedule of g's block: every edge
// must point forward in the given permutation. It is used by tests and by
// the property-based checks.
func Verify(g *Graph, order []int) error {
	pos := make(map[int]int, len(order))
	for idx, node := range order {
		pos[node] = idx
	}
	if len(pos) != len(g.Block) {
		return fmt.Errorf("dag: order has %d distinct nodes, want %d", len(pos), len(g.Block))
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("dag: %s edge %d->%d violated (positions %d >= %d)",
				e.Kind, e.From, e.To, pos[e.From], pos[e.To])
		}
	}
	return nil
}
