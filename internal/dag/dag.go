// Package dag builds the data-dependence DAG over straight-line
// three-address code and implements the Section 4 code-reordering
// algorithm that moves instructions out of the non-barrier region to make
// barrier regions as large as possible.
package dag

import (
	"fmt"
	"strings"

	"fuzzybarrier/internal/ir"
)

// EdgeKind classifies a dependence edge.
type EdgeKind int

// Dependence kinds.
const (
	Flow   EdgeKind = iota // read after write
	Anti                   // write after read
	Output                 // write after write
	Memory                 // load/store ordering (conservative)
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Memory:
		return "memory"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is a dependence from Block[From] to Block[To] (From must execute
// first).
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is the dependence DAG of one straight-line block.
type Graph struct {
	Block ir.Block
	Edges []Edge
	preds [][]int
	succs [][]int
}

// operand identity key for dependence tracking.
func opKey(o ir.Operand) (string, bool) {
	switch o.Kind {
	case ir.KindTemp:
		return fmt.Sprintf("T%d", o.ID), true
	case ir.KindVar:
		return "v:" + o.Name, true
	}
	return "", false
}

// Build constructs the dependence DAG. Memory dependences are
// conservative: every store conflicts with every other load or store
// (loads commute with loads). A trailing control instruction depends on
// everything before it and is pinned last.
func Build(b ir.Block) (*Graph, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Block: b}
	n := len(b)
	g.preds = make([][]int, n)
	g.succs = make([][]int, n)
	seen := make(map[[2]int]bool)
	addEdge := func(from, to int, k EdgeKind) {
		if from == to || from < 0 {
			return
		}
		key := [2]int{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: k})
		g.preds[to] = append(g.preds[to], from)
		g.succs[from] = append(g.succs[from], to)
	}

	lastDef := make(map[string]int)    // key -> last defining instr
	lastUses := make(map[string][]int) // key -> uses since last def
	lastStore := -1
	var loadsSinceStore []int

	for i, in := range b {
		if in.IsControl() {
			// Pinned last: depends on every prior instruction.
			for j := 0; j < i; j++ {
				addEdge(j, i, Flow)
			}
			continue
		}
		// Uses: flow edges from last def.
		for _, u := range in.Uses() {
			if k, ok := opKey(u); ok {
				if d, ok := lastDef[k]; ok {
					addEdge(d, i, Flow)
				}
				lastUses[k] = append(lastUses[k], i)
			}
		}
		// Memory ordering.
		if in.ReadsMemory() {
			if lastStore >= 0 {
				addEdge(lastStore, i, Memory)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
		if in.WritesMemory() {
			if lastStore >= 0 {
				addEdge(lastStore, i, Memory)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i, Memory)
			}
			loadsSinceStore = loadsSinceStore[:0]
			lastStore = i
		}
		// Defs: output edge from previous def, anti edges from previous
		// uses.
		if d, ok := in.Defs(); ok {
			if k, ok := opKey(d); ok {
				if prev, ok := lastDef[k]; ok {
					addEdge(prev, i, Output)
				}
				for _, u := range lastUses[k] {
					addEdge(u, i, Anti)
				}
				lastDef[k] = i
				lastUses[k] = nil
			}
		}
	}
	return g, nil
}

// Preds returns the dependence predecessors of instruction i.
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// Succs returns the dependence successors of instruction i.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// hasMarkedAncestor computes, for every node, whether any transitive
// predecessor is marked.
func (g *Graph) hasMarkedAncestor() []bool {
	n := len(g.Block)
	out := make([]bool, n)
	for i := 0; i < n; i++ { // preds have smaller indices is NOT guaranteed; but block order is a topological order
		for _, p := range g.preds[i] {
			if g.Block[p].Marked || out[p] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// neededForMarked computes, for every node, whether any transitive
// successor is marked.
func (g *Graph) neededForMarked() []bool {
	n := len(g.Block)
	out := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		for _, s := range g.succs[i] {
			if g.Block[s].Marked || out[s] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// CriticalPath returns the length (in instructions) of the longest
// dependence chain.
func (g *Graph) CriticalPath() int {
	n := len(g.Block)
	depth := make([]int, n)
	best := 0
	for i := 0; i < n; i++ {
		d := 1
		for _, p := range g.preds[i] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

// Dot renders the graph in Graphviz dot syntax (for cmd/fuzzcc -dag).
func (g *Graph) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", name)
	for i, in := range g.Block {
		shape := "box"
		if in.Marked {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s];\n", i, in.String(), shape)
	}
	for _, e := range g.Edges {
		style := "solid"
		if e.Kind != Flow {
			style = "dashed"
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [style=%s, label=%q];\n", e.From, e.To, style, e.Kind)
	}
	sb.WriteString("}\n")
	return sb.String()
}
