package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"fuzzybarrier/internal/ir"
)

// fig4Block models the spirit of Figure 4's non-barrier candidate: address
// computations feeding marked loads, combined and stored back.
func fig4Block() ir.Block {
	T := ir.Temp
	return ir.Block{
		{Op: ir.Add, Dst: T(0), A: ir.Var("j"), B: ir.Const(1)}, // 0: T0 = j+1
		{Op: ir.Mul, Dst: T(1), A: ir.Const(4), B: ir.Var("i")}, // 1: T1 = 4*i
		{Op: ir.Add, Dst: T(2), A: T(1), B: ir.Base("P")},       // 2: T2 = T1+P
		{Op: ir.Add, Dst: T(3), A: T(2), B: T(0)},               // 3: T3 = T2+T0 (addr)
		{Op: ir.Load, Dst: T(4), A: T(3), Marked: true},         // 4: T4 = [T3]
		{Op: ir.Sub, Dst: T(5), A: ir.Var("j"), B: ir.Const(1)}, // 5: T5 = j-1
		{Op: ir.Add, Dst: T(6), A: T(2), B: T(5)},               // 6: T6 = T2+T5
		{Op: ir.Load, Dst: T(7), A: T(6), Marked: true},         // 7: T7 = [T6]
		{Op: ir.Add, Dst: T(8), A: T(4), B: T(7)},               // 8: T8 = T4+T7
		{Op: ir.Div, Dst: T(9), A: T(8), B: ir.Const(4)},        // 9: T9 = T8/4
		{Op: ir.Add, Dst: T(10), A: T(2), B: ir.Var("j")},       // 10: T10 = T2+j (store addr)
		{Op: ir.Store, Dst: T(10), B: T(9), Marked: true},       // 11: [T10] = T9
	}
}

func TestBuildEdges(t *testing.T) {
	g, err := Build(fig4Block())
	if err != nil {
		t.Fatal(err)
	}
	// Flow edges into the first load: address chain 0,1,2,3 -> 4.
	hasEdge := func(from, to int) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]int{{3, 4}, {2, 3}, {0, 3}, {1, 2}, {4, 8}, {7, 8}, {8, 9}, {9, 11}, {10, 11}} {
		if !hasEdge(e[0], e[1]) {
			t.Errorf("missing dependence edge %d -> %d", e[0], e[1])
		}
	}
	// Loads commute: no edge between the two loads.
	if hasEdge(4, 7) || hasEdge(7, 4) {
		t.Error("load-load edge present; loads must commute")
	}
}

func TestMemoryOrdering(t *testing.T) {
	T := ir.Temp
	b := ir.Block{
		{Op: ir.Load, Dst: T(0), A: ir.Var("a")},  // 0
		{Op: ir.Store, Dst: ir.Var("a"), B: T(0)}, // 1: store after load
		{Op: ir.Load, Dst: T(1), A: ir.Var("a")},  // 2: load after store
		{Op: ir.Store, Dst: ir.Var("a"), B: T(1)}, // 3: store after store
	}
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	// All four orderings must exist as edges; 0->1 and 2->3 also carry a
	// flow dependence (the stored value), and the graph deduplicates by
	// pair, so only 1->2 and 1->3 are necessarily Memory-kind.
	all := make(map[[2]int]EdgeKind)
	for _, e := range g.Edges {
		all[[2]int{e.From, e.To}] = e.Kind
	}
	for _, k := range [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}} {
		if _, ok := all[k]; !ok {
			t.Errorf("missing ordering edge %v", k)
		}
	}
	if all[[2]int{1, 2}] != Memory {
		t.Errorf("1->2 kind = %v, want memory", all[[2]int{1, 2}])
	}
	if all[[2]int{1, 3}] != Memory {
		t.Errorf("1->3 kind = %v, want memory", all[[2]int{1, 3}])
	}
}

func TestAntiAndOutputEdges(t *testing.T) {
	T := ir.Temp
	b := ir.Block{
		{Op: ir.Assign, Dst: ir.Var("x"), A: ir.Const(1)},       // 0: def x
		{Op: ir.Add, Dst: T(0), A: ir.Var("x"), B: ir.Const(2)}, // 1: use x
		{Op: ir.Assign, Dst: ir.Var("x"), A: ir.Const(3)},       // 2: redef x
	}
	g, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[[2]int]EdgeKind)
	for _, e := range g.Edges {
		kinds[[2]int{e.From, e.To}] = e.Kind
	}
	if kinds[[2]int{0, 1}] != Flow {
		t.Errorf("0->1 = %v, want flow", kinds[[2]int{0, 1}])
	}
	if kinds[[2]int{1, 2}] != Anti {
		t.Errorf("1->2 = %v, want anti", kinds[[2]int{1, 2}])
	}
	if kinds[[2]int{0, 2}] != Output {
		t.Errorf("0->2 = %v, want output", kinds[[2]int{0, 2}])
	}
}

func TestThreePhaseFig4Shape(t *testing.T) {
	split, err := ThreePhase(fig4Block())
	if err != nil {
		t.Fatal(err)
	}
	pre, nb, post := split.Sizes()
	if pre+nb+post != len(fig4Block()) {
		t.Fatalf("sizes %d+%d+%d don't partition %d", pre, nb, post, len(fig4Block()))
	}
	// All address computations (0,1,2,3,5,6,10) move to pre; the marked
	// loads/stores plus their combiners (8, 9) stay: nb = 5.
	if pre != 7 {
		t.Errorf("pre = %d, want 7:\n%s", pre, split.Pre)
	}
	if nb != 5 {
		t.Errorf("non-barrier = %d, want 5 (2 loads + add + div + store):\n%s", nb, split.NonBarrier)
	}
	if post != 0 {
		t.Errorf("post = %d, want 0", post)
	}
	// Marked instructions must all be in NonBarrier.
	for _, in := range split.Pre {
		if in.Marked {
			t.Errorf("marked instruction in pre: %v", in)
		}
	}
	for _, in := range split.Post {
		if in.Marked {
			t.Errorf("marked instruction in post: %v", in)
		}
	}
}

func TestThreePhasePostRegion(t *testing.T) {
	// An unmarked instruction depending on a marked one lands in post.
	T := ir.Temp
	b := ir.Block{
		{Op: ir.Load, Dst: T(0), A: ir.Var("a"), Marked: true}, // 0
		{Op: ir.Add, Dst: T(1), A: T(0), B: ir.Const(1)},       // 1: unmarked, depends on marked
		{Op: ir.Assign, Dst: ir.Var("x"), A: T(1)},             // 2: ditto
	}
	split, err := ThreePhase(b)
	if err != nil {
		t.Fatal(err)
	}
	pre, nb, post := split.Sizes()
	if pre != 0 || nb != 1 || post != 2 {
		t.Errorf("sizes = %d/%d/%d, want 0/1/2", pre, nb, post)
	}
}

func TestThreePhaseRejectsControl(t *testing.T) {
	b := ir.Block{{Op: ir.Goto, Target: "x"}}
	if _, err := ThreePhase(b); err == nil {
		t.Error("control instruction accepted")
	}
}

func TestThreePhaseEmptyAndUnmarked(t *testing.T) {
	// Empty block.
	split, err := ThreePhase(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Pre)+len(split.NonBarrier)+len(split.Post) != 0 {
		t.Error("empty block should split to nothing")
	}
	// No marked instructions: everything moves to pre.
	b := ir.Block{
		{Op: ir.Assign, Dst: ir.Var("x"), A: ir.Const(1)},
		{Op: ir.Add, Dst: ir.Temp(0), A: ir.Var("x"), B: ir.Const(2)},
	}
	split, err = ThreePhase(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Pre) != 2 || len(split.NonBarrier) != 0 {
		t.Errorf("unmarked block: pre=%d nb=%d, want 2/0", len(split.Pre), len(split.NonBarrier))
	}
}

func TestCriticalPath(t *testing.T) {
	g, err := Build(fig4Block())
	if err != nil {
		t.Fatal(err)
	}
	// Chain 1 -> 2 -> 3 -> 4 -> 8 -> 9 -> 11 has length 7.
	if got := g.CriticalPath(); got != 7 {
		t.Errorf("critical path = %d, want 7", got)
	}
}

func TestDotOutput(t *testing.T) {
	g, err := Build(fig4Block())
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot("fig4")
	for _, want := range []string{"digraph", "doubleoctagon", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g, err := Build(fig4Block())
	if err != nil {
		t.Fatal(err)
	}
	good := make([]int, len(g.Block))
	for i := range good {
		good[i] = i
	}
	if err := Verify(g, good); err != nil {
		t.Fatalf("identity order rejected: %v", err)
	}
	bad := append([]int(nil), good...)
	bad[3], bad[4] = bad[4], bad[3] // load before its address
	if err := Verify(g, bad); err == nil {
		t.Error("violated order accepted")
	}
}

// genBlock builds a random straight-line block from a byte string; the
// construction guarantees definitions exist before uses by only using
// previously defined temps (or constants).
func genBlock(data []byte) ir.Block {
	var b ir.Block
	defined := 0
	for i, d := range data {
		if len(b) >= 30 {
			break
		}
		pick := func(k int) ir.Operand {
			if defined == 0 {
				return ir.Const(int64(k))
			}
			return ir.Temp(int(d+byte(k)) % defined)
		}
		switch d % 5 {
		case 0:
			b = append(b, ir.Instr{Op: ir.Assign, Dst: ir.Temp(defined), A: ir.Const(int64(d))})
			defined++
		case 1:
			b = append(b, ir.Instr{Op: ir.Add, Dst: ir.Temp(defined), A: pick(1), B: pick(2)})
			defined++
		case 2:
			b = append(b, ir.Instr{Op: ir.Load, Dst: ir.Temp(defined), A: pick(1), Marked: i%3 == 0})
			defined++
		case 3:
			if defined > 0 {
				b = append(b, ir.Instr{Op: ir.Store, Dst: pick(1), B: pick(2), Marked: i%2 == 0})
			}
		case 4:
			b = append(b, ir.Instr{Op: ir.Mul, Dst: ir.Temp(defined), A: pick(3), B: ir.Const(int64(d) + 1)})
			defined++
		}
	}
	return b
}

// TestThreePhaseProperty: for random blocks, the three-phase split (a)
// partitions the block, (b) is a legal schedule of the dependence DAG,
// and (c) keeps every marked instruction in the non-barrier region.
func TestThreePhaseProperty(t *testing.T) {
	f := func(data []byte) bool {
		b := genBlock(data)
		split, err := ThreePhase(b)
		if err != nil {
			return false
		}
		pre, nb, post := split.Sizes()
		if pre+nb+post != len(b) {
			return false
		}
		for _, in := range split.Pre {
			if in.Marked {
				return false
			}
		}
		for _, in := range split.Post {
			if in.Marked {
				return false
			}
		}
		// Check schedule legality: map scheduled instructions back to
		// their original indices (instructions may be duplicated in
		// value, so match greedily by equality).
		g, err := Build(b)
		if err != nil {
			return false
		}
		sched := append(append(append(ir.Block{}, split.Pre...), split.NonBarrier...), split.Post...)
		used := make([]bool, len(b))
		order := make([]int, 0, len(b))
		for _, in := range sched {
			found := -1
			for j := range b {
				if !used[j] && instrEq(b[j], in) {
					found = j
					break
				}
			}
			if found < 0 {
				return false
			}
			used[found] = true
			order = append(order, found)
		}
		// Greedy matching can mis-assign duplicates; accept either exact
		// verification or a retry with the reversed preference.
		return Verify(g, order) == nil || verifyWithBacktrack(g, b, sched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func instrEq(a, b ir.Instr) bool {
	return a.Op == b.Op && a.Dst == b.Dst && a.A == b.A && a.B == b.B && a.Marked == b.Marked
}

// verifyWithBacktrack matches duplicates last-first as a fallback.
func verifyWithBacktrack(g *Graph, b ir.Block, sched ir.Block) bool {
	used := make([]bool, len(b))
	order := make([]int, 0, len(b))
	for _, in := range sched {
		found := -1
		for j := len(b) - 1; j >= 0; j-- {
			if !used[j] && instrEq(b[j], in) {
				found = j
				break
			}
		}
		if found < 0 {
			return false
		}
		used[found] = true
		order = append(order, found)
	}
	return Verify(g, order) == nil
}
