// Package sched implements the loop-iteration scheduling policies of
// Sections 7.3 and 7.4: static block and cyclic schedules, the rotating
// remainder schedule of Figure 11(b) that equalizes work across rounds
// when the iteration count is not divisible by the processor count, and
// the run-time self-scheduling family of Figure 12 — one-at-a-time
// self-scheduling, fixed-size chunking, and guided self-scheduling (GSS,
// Polychronopoulos & Kuck).
package sched

import (
	"fmt"
	"sync"
)

// Assignment lists the iteration indices (0-based) each processor
// executes.
type Assignment [][]int

// Counts returns the per-processor iteration counts.
func (a Assignment) Counts() []int {
	out := make([]int, len(a))
	for p, its := range a {
		out[p] = len(its)
	}
	return out
}

// MaxCount returns the largest per-processor count — the round's critical
// path when iterations cost equal work.
func (a Assignment) MaxCount() int {
	m := 0
	for _, its := range a {
		if len(its) > m {
			m = len(its)
		}
	}
	return m
}

// Block assigns contiguous blocks with a balanced floor/remainder split:
// every processor gets ⌊n/procs⌋ iterations and the first n mod procs
// processors take one extra, so per-processor counts differ by at most
// one. (A naive ⌈n/procs⌉ chunking leaves whole processors idle — e.g.
// 9 iterations on 8 processors would yield [2 2 2 2 1 0 0 0] instead of
// [2 1 1 1 1 1 1 1] — which skews the imbalance experiments.)
func Block(n, procs int) Assignment {
	if procs <= 0 {
		return Assignment{}
	}
	out := make(Assignment, procs)
	if n <= 0 {
		return out
	}
	base, rem := n/procs, n%procs
	lo := 0
	for p := 0; p < procs; p++ {
		size := base
		if p < rem {
			size++
		}
		for i := lo; i < lo+size; i++ {
			out[p] = append(out[p], i)
		}
		lo += size
	}
	return out
}

// Cyclic deals iterations round-robin: processor p gets p, p+procs, ...
func Cyclic(n, procs int) Assignment {
	if procs <= 0 {
		return Assignment{}
	}
	out := make(Assignment, procs)
	for i := 0; i < n; i++ {
		out[i%procs] = append(out[i%procs], i)
	}
	return out
}

// Rotating is the Figure 11(b) schedule: like Cyclic, but the processors
// "take turns in executing the extra iteration" — the deal order rotates
// by the round number, so over procs consecutive rounds every processor
// executes the same total number of iterations even when n % procs != 0.
func Rotating(n, procs, round int) Assignment {
	if procs <= 0 {
		return Assignment{}
	}
	out := make(Assignment, procs)
	shift := round % procs
	if shift < 0 {
		shift += procs
	}
	for i := 0; i < n; i++ {
		p := (i + shift) % procs
		out[p] = append(out[p], i)
	}
	return out
}

// ImbalanceOver reports, for a schedule generator, the difference between
// the maximum and minimum total iterations any processor executes across
// `rounds` rounds — 0 means perfectly equalized (the Figure 11(c) goal).
func ImbalanceOver(gen func(round int) Assignment, rounds int) int {
	var totals []int
	for r := 0; r < rounds; r++ {
		a := gen(r)
		if totals == nil {
			totals = make([]int, len(a))
		}
		for p, its := range a {
			totals[p] += len(its)
		}
	}
	if len(totals) == 0 {
		return 0
	}
	min, max := totals[0], totals[0]
	for _, v := range totals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// Dynamic is a run-time scheduler: processors repeatedly call Next until
// it returns ok=false. Implementations are safe for concurrent use.
type Dynamic interface {
	// Next returns the next chunk [start, start+size) for the calling
	// processor, or ok=false when the iteration space is exhausted.
	Next() (start, size int, ok bool)
	// Name identifies the policy in tables.
	Name() string
	// Reset restarts the iteration space (for the next round).
	Reset(n int)
}

// SelfSched hands out one iteration at a time — minimal imbalance, maximal
// scheduling overhead (one synchronized operation per iteration).
type SelfSched struct {
	mu   sync.Mutex
	next int
	n    int
}

// NewSelfSched creates a one-at-a-time scheduler over n iterations.
func NewSelfSched(n int) *SelfSched { return &SelfSched{n: n} }

// Next implements Dynamic.
func (s *SelfSched) Next() (int, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.n {
		return 0, 0, false
	}
	i := s.next
	s.next++
	return i, 1, true
}

// Name implements Dynamic.
func (s *SelfSched) Name() string { return "self" }

// Reset implements Dynamic.
func (s *SelfSched) Reset(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n, s.next = n, 0
}

// Chunked hands out fixed-size chunks.
type Chunked struct {
	mu    sync.Mutex
	next  int
	n     int
	chunk int
}

// NewChunked creates a fixed-chunk scheduler.
func NewChunked(n, chunk int) (*Chunked, error) {
	if chunk < 1 {
		return nil, fmt.Errorf("sched: chunk size %d < 1", chunk)
	}
	return &Chunked{n: n, chunk: chunk}, nil
}

// Next implements Dynamic.
func (c *Chunked) Next() (int, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next >= c.n {
		return 0, 0, false
	}
	start := c.next
	size := c.chunk
	if start+size > c.n {
		size = c.n - start
	}
	c.next += size
	return start, size, true
}

// Name implements Dynamic.
func (c *Chunked) Name() string { return fmt.Sprintf("chunk%d", c.chunk) }

// Reset implements Dynamic.
func (c *Chunked) Reset(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n, c.next = n, 0
}

// GSS is guided self-scheduling: each request takes ⌈remaining/procs⌉
// iterations, so chunks start large (low overhead) and shrink toward the
// end (low imbalance) — the property Section 7.4 relies on to make
// processors "complete execution at about the same time".
type GSS struct {
	mu    sync.Mutex
	next  int
	n     int
	procs int
}

// NewGSS creates a guided self-scheduler for the given processor count.
func NewGSS(n, procs int) (*GSS, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sched: procs %d < 1", procs)
	}
	return &GSS{n: n, procs: procs}, nil
}

// Next implements Dynamic.
func (g *GSS) Next() (int, int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	remaining := g.n - g.next
	if remaining <= 0 {
		return 0, 0, false
	}
	size := (remaining + g.procs - 1) / g.procs
	start := g.next
	g.next += size
	return start, size, true
}

// Name implements Dynamic.
func (g *GSS) Name() string { return "gss" }

// Reset implements Dynamic.
func (g *GSS) Reset(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n, g.next = n, 0
}

// Version selects which of the four compiled loop-body versions of Figure
// 12 a chunk's iteration should execute, given its position within the
// processor's chunk: the first iteration starts with a barrier region, the
// last is followed by one, intervening iterations have none, and a
// single-iteration chunk is both preceded and followed.
type Version int

// Figure 12's four loop-body versions.
const (
	VersionFirst  Version = iota // first and not last
	VersionLast                  // last and not first
	VersionMiddle                // neither first nor last
	VersionOnly                  // first and last
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case VersionFirst:
		return "version1(first)"
	case VersionLast:
		return "version2(last)"
	case VersionMiddle:
		return "version3(middle)"
	case VersionOnly:
		return "version4(only)"
	}
	return fmt.Sprintf("Version(%d)", int(v))
}

// VersionFor classifies iteration idx within a chunk of the given size.
func VersionFor(idx, size int) Version {
	first := idx == 0
	last := idx == size-1
	switch {
	case first && last:
		return VersionOnly
	case first:
		return VersionFirst
	case last:
		return VersionLast
	default:
		return VersionMiddle
	}
}
