package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

// coversAll checks that an assignment partitions [0, n) exactly.
func coversAll(t *testing.T, a Assignment, n int, label string) {
	t.Helper()
	seen := make([]int, n)
	for _, its := range a {
		for _, i := range its {
			if i < 0 || i >= n {
				t.Fatalf("%s: iteration %d out of range [0,%d)", label, i, n)
			}
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%s: iteration %d assigned %d times", label, i, c)
		}
	}
}

func TestBlockAssignment(t *testing.T) {
	a := Block(10, 3)
	coversAll(t, a, 10, "block")
	if got := a.Counts(); got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Errorf("counts = %v, want [4 3 3]", got)
	}
	if a.MaxCount() != 4 {
		t.Errorf("max = %d, want 4", a.MaxCount())
	}
	// Blocks must be contiguous.
	for p, its := range a {
		for k := 1; k < len(its); k++ {
			if its[k] != its[k-1]+1 {
				t.Errorf("block %d not contiguous: %v", p, its)
			}
		}
	}
}

// TestBlockBalanced is the regression test for the idle-processor bug:
// ceil-chunking Block(9, 8) produced [2 2 2 2 1 0 0 0], idling three
// processors. The balanced split keeps every processor busy and the
// per-processor counts within 1 of each other.
func TestBlockBalanced(t *testing.T) {
	a := Block(9, 8)
	coversAll(t, a, 9, "block-9x8")
	want := []int{2, 1, 1, 1, 1, 1, 1, 1}
	for p, w := range want {
		if len(a[p]) != w {
			t.Fatalf("counts = %v, want %v", a.Counts(), want)
		}
	}
	// Property: for any n, procs the spread is at most one iteration.
	for n := 0; n <= 40; n++ {
		for procs := 1; procs <= 12; procs++ {
			counts := Block(n, procs).Counts()
			min, max := counts[0], counts[0]
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Fatalf("Block(%d,%d): counts %v spread %d > 1", n, procs, counts, max-min)
			}
		}
	}
}

// TestDegenerateProcs is the regression test for the divide-by-zero
// panic: Cyclic(n, 0) crashed with n > 0, and all three generators
// panicked in make() for negative procs. Each must return an empty
// Assignment instead.
func TestDegenerateProcs(t *testing.T) {
	for _, procs := range []int{0, -1} {
		for _, gen := range []struct {
			name string
			f    func() Assignment
		}{
			{"block", func() Assignment { return Block(5, procs) }},
			{"cyclic", func() Assignment { return Cyclic(5, procs) }},
			{"rotating", func() Assignment { return Rotating(5, procs, 2) }},
		} {
			a := gen.f()
			if len(a) != 0 || a.MaxCount() != 0 {
				t.Errorf("%s(5, %d) = %v, want empty", gen.name, procs, a)
			}
		}
	}
}

func TestCyclicAssignment(t *testing.T) {
	a := Cyclic(7, 3)
	coversAll(t, a, 7, "cyclic")
	if got := a.Counts(); got[0] != 3 || got[1] != 2 || got[2] != 2 {
		t.Errorf("counts = %v, want [3 2 2]", got)
	}
	if a[0][1] != 3 {
		t.Errorf("cyclic stride broken: %v", a[0])
	}
}

func TestRotatingEqualizesOverRounds(t *testing.T) {
	// Figure 11: 5 iterations on 3 processors. Fixed schedules leave a
	// permanent imbalance; rotating equalizes every 3 rounds.
	fixed := func(round int) Assignment { return Block(5, 3) }
	rot := func(round int) Assignment { return Rotating(5, 3, round) }
	if got := ImbalanceOver(fixed, 6); got == 0 {
		t.Error("fixed schedule should be imbalanced")
	}
	if got := ImbalanceOver(rot, 6); got != 0 {
		t.Errorf("rotating imbalance over 6 rounds = %d, want 0", got)
	}
	// Partial cycles: imbalance at most 1 iteration difference... at most
	// the per-round remainder.
	if got := ImbalanceOver(rot, 4); got > 2 {
		t.Errorf("rotating imbalance over 4 rounds = %d, want <= 2", got)
	}
	for r := 0; r < 5; r++ {
		coversAll(t, Rotating(5, 3, r), 5, "rotating")
	}
}

func TestRotatingNegativeRound(t *testing.T) {
	coversAll(t, Rotating(5, 3, -4), 5, "rotating-neg")
}

func TestEdgeCases(t *testing.T) {
	if a := Block(0, 3); a.MaxCount() != 0 {
		t.Error("empty block schedule should assign nothing")
	}
	if a := Cyclic(3, 5); a.MaxCount() != 1 {
		t.Error("more procs than iterations: max 1 each")
	}
	coversAll(t, Block(1, 1), 1, "1x1")
}

// TestStaticSchedulesProperty: all three static schedules partition the
// iteration space for arbitrary (n, procs, round).
func TestStaticSchedulesProperty(t *testing.T) {
	f := func(n8, p8, r8 uint8) bool {
		n := int(n8 % 50)
		procs := int(p8%8) + 1
		round := int(r8)
		for _, a := range []Assignment{Block(n, procs), Cyclic(n, procs), Rotating(n, procs, round)} {
			seen := make([]int, n)
			for _, its := range a {
				for _, i := range its {
					if i < 0 || i >= n {
						return false
					}
					seen[i]++
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// drain pulls all chunks from a Dynamic scheduler (single-threaded) and
// returns them in order.
func drain(d Dynamic) [][2]int {
	var out [][2]int
	for {
		s, n, ok := d.Next()
		if !ok {
			return out
		}
		out = append(out, [2]int{s, n})
	}
}

func checkChunksPartition(t *testing.T, chunks [][2]int, n int, label string) {
	t.Helper()
	seen := make([]int, n)
	for _, c := range chunks {
		for i := c[0]; i < c[0]+c[1]; i++ {
			if i < 0 || i >= n {
				t.Fatalf("%s: iteration %d out of range", label, i)
			}
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%s: iteration %d claimed %d times", label, i, c)
		}
	}
}

func TestSelfSched(t *testing.T) {
	d := NewSelfSched(5)
	chunks := drain(d)
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d, want 5", len(chunks))
	}
	checkChunksPartition(t, chunks, 5, "self")
	d.Reset(3)
	if got := drain(d); len(got) != 3 {
		t.Errorf("after reset: %d chunks, want 3", len(got))
	}
}

func TestChunked(t *testing.T) {
	d, err := NewChunked(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(d)
	if len(chunks) != 3 || chunks[2][1] != 2 {
		t.Fatalf("chunks = %v, want sizes 4,4,2", chunks)
	}
	checkChunksPartition(t, chunks, 10, "chunked")
	if _, err := NewChunked(10, 0); err == nil {
		t.Error("chunk size 0 accepted")
	}
	if d.Name() != "chunk4" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestGSSChunkSizes(t *testing.T) {
	d, err := NewGSS(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(d)
	checkChunksPartition(t, chunks, 100, "gss")
	// First chunk = ceil(100/4) = 25; sizes non-increasing; last = 1.
	if chunks[0][1] != 25 {
		t.Errorf("first chunk = %d, want 25", chunks[0][1])
	}
	for k := 1; k < len(chunks); k++ {
		if chunks[k][1] > chunks[k-1][1] {
			t.Errorf("chunk sizes increased: %v", chunks)
			break
		}
	}
	if last := chunks[len(chunks)-1][1]; last != 1 {
		t.Errorf("last chunk = %d, want 1", last)
	}
	if _, err := NewGSS(10, 0); err == nil {
		t.Error("procs 0 accepted")
	}
}

// TestDynamicSchedulersConcurrent: under concurrent claiming, every
// iteration is claimed exactly once.
func TestDynamicSchedulersConcurrent(t *testing.T) {
	const n = 500
	mks := map[string]func() Dynamic{
		"self":  func() Dynamic { return NewSelfSched(n) },
		"chunk": func() Dynamic { d, _ := NewChunked(n, 7); return d },
		"gss":   func() Dynamic { d, _ := NewGSS(n, 4); return d },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			d := mk()
			var mu sync.Mutex
			seen := make([]int, n)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						s, sz, ok := d.Next()
						if !ok {
							return
						}
						mu.Lock()
						for i := s; i < s+sz; i++ {
							seen[i]++
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("iteration %d claimed %d times", i, c)
				}
			}
		})
	}
}

// TestDynamicPartitionProperty drives random sizes through all dynamic
// schedulers.
func TestDynamicPartitionProperty(t *testing.T) {
	f := func(n8, c8, p8 uint8) bool {
		n := int(n8 % 200)
		chunk := int(c8%9) + 1
		procs := int(p8%7) + 1
		ds := []Dynamic{NewSelfSched(n)}
		if d, err := NewChunked(n, chunk); err == nil {
			ds = append(ds, d)
		}
		if d, err := NewGSS(n, procs); err == nil {
			ds = append(ds, d)
		}
		for _, d := range ds {
			seen := make([]int, n)
			for {
				s, sz, ok := d.Next()
				if !ok {
					break
				}
				if sz <= 0 {
					return false
				}
				for i := s; i < s+sz; i++ {
					if i < 0 || i >= n {
						return false
					}
					seen[i]++
				}
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVersionFor(t *testing.T) {
	cases := []struct {
		idx, size int
		want      Version
	}{
		{0, 1, VersionOnly},
		{0, 3, VersionFirst},
		{1, 3, VersionMiddle},
		{2, 3, VersionLast},
		{0, 2, VersionFirst},
		{1, 2, VersionLast},
	}
	for _, c := range cases {
		if got := VersionFor(c.idx, c.size); got != c.want {
			t.Errorf("VersionFor(%d,%d) = %v, want %v", c.idx, c.size, got, c.want)
		}
	}
	for _, v := range []Version{VersionFirst, VersionLast, VersionMiddle, VersionOnly} {
		if v.String() == "" {
			t.Errorf("version %d has no name", v)
		}
	}
}
