// Package lang is the front end for the small loop language the paper's
// examples are written in (Figures 3, 5, 7, 9, 11, 12): integer arrays,
// nested for-loops annotated "do seq" or "do par", if-statements and
// arithmetic assignments.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokKeyword // int for if else do seq par
	TokPunct   // ( ) { } [ ] ; , = + - * / % ++ += < <= > >= == !=
)

// Token is a lexical token with source position (1-based line/column).
type Token struct {
	Kind TokKind
	Text string
	Val  int64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "for": true, "if": true, "else": true,
	"do": true, "seq": true, "par": true, "then": true,
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated block comment")
			}
			l.advance()
			l.advance()
		default:
			return l.scan()
		}
	}
	return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
}

func (l *lexer) scan() (Token, error) {
	line, col := l.line, l.col
	c := l.peek()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				sb.WriteByte(l.advance())
			} else {
				break
			}
		}
		text := sb.String()
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case unicode.IsDigit(rune(c)):
		var v int64
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			v = v*10 + int64(l.advance()-'0')
		}
		return Token{Kind: TokNumber, Val: v, Text: fmt.Sprint(v), Line: line, Col: col}, nil
	default:
		// Multi-character punctuation first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "++", "+=", "<=", ">=", "==", "!=":
			l.advance()
			l.advance()
			return Token{Kind: TokPunct, Text: two, Line: line, Col: col}, nil
		}
		switch c {
		case '(', ')', '{', '}', '[', ']', ';', ',', '=', '+', '-', '*', '/', '%', '<', '>':
			l.advance()
			return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
		}
		return Token{}, l.errf("unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
