package lang

import (
	"fmt"
	"strings"

	"fuzzybarrier/internal/ir"
)

// Program is a parsed source program: array declarations followed by
// statements.
type Program struct {
	Arrays []ArrayDecl
	Body   []Stmt
}

// ArrayDecl declares an integer array with constant dimensions, e.g.
// "int P[3][3];".
type ArrayDecl struct {
	Name string
	Dims []int64
}

// Size returns the total number of elements.
func (d ArrayDecl) Size() int64 {
	n := int64(1)
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// Stmt is a statement node.
type Stmt interface {
	stmt()
	render(sb *strings.Builder, indent int)
}

// ForStmt is "for (v = From; v Rel To; v++|v+=Step) [do seq|do par] body".
type ForStmt struct {
	Var  string
	From Expr
	Rel  ir.Rel
	To   Expr
	Step int64
	Par  bool // "do par": iterations are independent
	Body []Stmt
}

// IfStmt is "if (cond) then-branch [else else-branch]".
type IfStmt struct {
	Cond CondExpr
	Then []Stmt
	Else []Stmt
}

// AssignStmt is "lhs = rhs;".
type AssignStmt struct {
	LHS LValue
	RHS Expr
}

// LValue is a scalar variable or array element reference.
type LValue struct {
	Name    string
	Indices []Expr // nil for scalars
}

func (ForStmt) stmt()    {}
func (IfStmt) stmt()     {}
func (AssignStmt) stmt() {}

// CondExpr is a comparison.
type CondExpr struct {
	L   Expr
	Rel ir.Rel
	R   Expr
}

// Expr is an expression node.
type Expr interface {
	expr()
	String() string
}

// NumExpr is an integer literal.
type NumExpr struct{ Val int64 }

// VarExpr is a scalar variable reference.
type VarExpr struct{ Name string }

// IndexExpr is an array element read, e.g. P[i][j+1].
type IndexExpr struct {
	Name    string
	Indices []Expr
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   ir.Op // Add, Sub, Mul, Div, Mod
	L, R Expr
}

func (NumExpr) expr()   {}
func (VarExpr) expr()   {}
func (IndexExpr) expr() {}
func (BinExpr) expr()   {}

func (e NumExpr) String() string { return fmt.Sprint(e.Val) }
func (e VarExpr) String() string { return e.Name }

func (e IndexExpr) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	for _, idx := range e.Indices {
		fmt.Fprintf(&sb, "[%s]", idx)
	}
	return sb.String()
}

func (e BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (v LValue) String() string {
	var sb strings.Builder
	sb.WriteString(v.Name)
	for _, idx := range v.Indices {
		fmt.Fprintf(&sb, "[%s]", idx)
	}
	return sb.String()
}

func pad(sb *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		sb.WriteString("    ")
	}
}

func (s *ForStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	mode := "seq"
	if s.Par {
		mode = "par"
	}
	step := "++"
	if s.Step != 1 {
		step = fmt.Sprintf("+=%d", s.Step)
	}
	fmt.Fprintf(sb, "for (%s=%s; %s%s%s; %s%s) do %s {\n",
		s.Var, s.From, s.Var, s.Rel, s.To, s.Var, step, mode)
	for _, st := range s.Body {
		st.render(sb, indent+1)
	}
	pad(sb, indent)
	sb.WriteString("}\n")
}

func (s *IfStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "if (%s %s %s) {\n", s.Cond.L, s.Cond.Rel, s.Cond.R)
	for _, st := range s.Then {
		st.render(sb, indent+1)
	}
	pad(sb, indent)
	if len(s.Else) > 0 {
		sb.WriteString("} else {\n")
		for _, st := range s.Else {
			st.render(sb, indent+1)
		}
		pad(sb, indent)
	}
	sb.WriteString("}\n")
}

func (s *AssignStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "%s = %s;\n", s.LHS, s.RHS)
}

// String pretty-prints the program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, a := range p.Arrays {
		fmt.Fprintf(&sb, "int %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&sb, "[%d]", d)
		}
		sb.WriteString(";\n")
	}
	for _, s := range p.Body {
		s.render(&sb, 0)
	}
	return sb.String()
}

// Array returns the declaration of a named array.
func (p *Program) Array(name string) (ArrayDecl, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return ArrayDecl{}, false
}
