package lang

import (
	"fmt"

	"fuzzybarrier/internal/ir"
)

// Parse parses a source program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.check(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for statically known programs
// in tests and workload generators.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return fmt.Errorf("lang: %d:%d: expected %q, found %s", t.Line, t.Col, text, t)
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("lang: %d:%d: expected identifier, found %s", t.Line, t.Col, t)
	}
	p.advance()
	return t.Text, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.at("int") {
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		decl := ArrayDecl{Name: name}
		for p.accept("[") {
			t := p.cur()
			if t.Kind != TokNumber {
				return nil, fmt.Errorf("lang: %d:%d: array dimensions must be integer literals, found %s", t.Line, t.Col, t)
			}
			if t.Val <= 0 {
				return nil, fmt.Errorf("lang: %d:%d: array dimension must be positive, found %d", t.Line, t.Col, t.Val)
			}
			decl.Dims = append(decl.Dims, t.Val)
			p.advance()
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if len(decl.Dims) == 0 {
			return nil, fmt.Errorf("lang: scalar declarations are implicit; %q needs dimensions", name)
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		prog.Arrays = append(prog.Arrays, decl)
	}
	for p.cur().Kind != TokEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

func (p *parser) block() ([]Stmt, error) {
	if p.accept("{") {
		var out []Stmt
		for !p.at("}") {
			if p.cur().Kind == TokEOF {
				return nil, fmt.Errorf("lang: unexpected end of input inside block")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		p.advance()
		return out, nil
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at("for"):
		return p.forStmt()
	case p.at("if"):
		return p.ifStmt()
	default:
		return p.assignStmt()
	}
}

func (p *parser) forStmt() (Stmt, error) {
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	v2, err := p.ident()
	if err != nil {
		return nil, err
	}
	if v2 != v {
		return nil, fmt.Errorf("lang: loop condition tests %q, expected loop variable %q", v2, v)
	}
	rel, err := p.relop()
	if err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	v3, err := p.ident()
	if err != nil {
		return nil, err
	}
	if v3 != v {
		return nil, fmt.Errorf("lang: loop increment updates %q, expected loop variable %q", v3, v)
	}
	step := int64(1)
	switch {
	case p.accept("++"):
	case p.accept("+="):
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("lang: %d:%d: loop step must be an integer literal", t.Line, t.Col)
		}
		step = t.Val
		p.advance()
	default:
		t := p.cur()
		return nil, fmt.Errorf("lang: %d:%d: expected ++ or +=, found %s", t.Line, t.Col, t)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	par := false
	if p.accept("do") {
		switch {
		case p.accept("par"):
			par = true
		case p.accept("seq"):
		default:
			t := p.cur()
			return nil, fmt.Errorf("lang: %d:%d: expected seq or par after do, found %s", t.Line, t.Col, t)
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: v, From: from, Rel: rel, To: to, Step: step, Par: par, Body: body}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	rel, err := p.relop()
	if err != nil {
		return nil, err
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.accept("then") // optional, matching the paper's "if cond then S2 else S3"
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept("else") {
		els, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: CondExpr{L: l, Rel: rel, R: r}, Then: then, Else: els}, nil
}

func (p *parser) assignStmt() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	lv := LValue{Name: name}
	for p.accept("[") {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		lv.Indices = append(lv.Indices, idx)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lv, RHS: rhs}, nil
}

func (p *parser) relop() (ir.Rel, error) {
	for _, cand := range []struct {
		text string
		rel  ir.Rel
	}{
		{"<=", ir.LE}, {">=", ir.GE}, {"==", ir.EQ}, {"!=", ir.NE},
		{"<", ir.LT}, {">", ir.GT},
	} {
		if p.accept(cand.text) {
			return cand.rel, nil
		}
	}
	t := p.cur()
	return 0, fmt.Errorf("lang: %d:%d: expected comparison operator, found %s", t.Line, t.Col, t)
}

// expr parses additive expressions; term handles * / %; factor handles
// literals, variables, array references and parentheses.
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		var op ir.Op
		switch {
		case p.accept("+"):
			op = ir.Add
		case p.accept("-"):
			op = ir.Sub
		default:
			return l, nil
		}
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		var op ir.Op
		switch {
		case p.accept("*"):
			op = ir.Mul
		case p.accept("/"):
			op = ir.Div
		case p.accept("%"):
			op = ir.Mod
		default:
			return l, nil
		}
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) factor() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		return NumExpr{Val: t.Val}, nil
	case t.Kind == TokIdent:
		p.advance()
		if !p.at("[") {
			return VarExpr{Name: t.Text}, nil
		}
		e := IndexExpr{Name: t.Text}
		for p.accept("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			e.Indices = append(e.Indices, idx)
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		return e, nil
	case p.accept("("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept("-"):
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: ir.Sub, L: NumExpr{Val: 0}, R: e}, nil
	}
	return nil, fmt.Errorf("lang: %d:%d: expected expression, found %s", t.Line, t.Col, t)
}

// check verifies semantic constraints: array references must match the
// declared rank and refer to declared arrays.
func (p *Program) check() error {
	var checkExpr func(e Expr) error
	checkIndex := func(name string, n int) error {
		d, ok := p.Array(name)
		if !ok {
			return fmt.Errorf("lang: reference to undeclared array %q", name)
		}
		if len(d.Dims) != n {
			return fmt.Errorf("lang: array %q has rank %d, referenced with %d indices", name, len(d.Dims), n)
		}
		return nil
	}
	checkExpr = func(e Expr) error {
		switch v := e.(type) {
		case BinExpr:
			if err := checkExpr(v.L); err != nil {
				return err
			}
			return checkExpr(v.R)
		case IndexExpr:
			if err := checkIndex(v.Name, len(v.Indices)); err != nil {
				return err
			}
			for _, idx := range v.Indices {
				if err := checkExpr(idx); err != nil {
					return err
				}
			}
		case VarExpr:
			if _, isArray := p.Array(v.Name); isArray {
				return fmt.Errorf("lang: array %q used as a scalar", v.Name)
			}
		}
		return nil
	}
	var checkStmts func(ss []Stmt) error
	checkStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch v := s.(type) {
			case *AssignStmt:
				if len(v.LHS.Indices) > 0 {
					if err := checkIndex(v.LHS.Name, len(v.LHS.Indices)); err != nil {
						return err
					}
					for _, idx := range v.LHS.Indices {
						if err := checkExpr(idx); err != nil {
							return err
						}
					}
				} else if _, isArray := p.Array(v.LHS.Name); isArray {
					return fmt.Errorf("lang: array %q assigned as a scalar", v.LHS.Name)
				}
				if err := checkExpr(v.RHS); err != nil {
					return err
				}
			case *ForStmt:
				if err := checkExpr(v.From); err != nil {
					return err
				}
				if err := checkExpr(v.To); err != nil {
					return err
				}
				if v.Step <= 0 {
					return fmt.Errorf("lang: loop over %q has non-positive step %d", v.Var, v.Step)
				}
				if err := checkStmts(v.Body); err != nil {
					return err
				}
			case *IfStmt:
				if err := checkExpr(v.Cond.L); err != nil {
					return err
				}
				if err := checkExpr(v.Cond.R); err != nil {
					return err
				}
				if err := checkStmts(v.Then); err != nil {
					return err
				}
				if err := checkStmts(v.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return checkStmts(p.Body)
}
