package lang

import "testing"

// FuzzParse exercises the front end on arbitrary text: never panic, and
// anything accepted must render and re-parse to a stable form.
func FuzzParse(f *testing.F) {
	f.Add(`int P[4][4];
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par { P[i][1] = P[i][2] + 1; }`)
	f.Add(`int a[2][2];
for (i=1; i<=1; i++) do seq
  for (j=1; j<=1; j++) do par { if (j < 2) then a[1][1] = 1; else a[1][1] = 2; }`)
	f.Add(`// comment
int a[3][3]; /* c2 */
for (i=1; i<9; i+=2) do seq
  for (j=1; j<=2; j++) do par { a[j][1] = -(j+1)*2; }`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered program rejected: %v\n%s", err, rendered)
		}
		if got := p2.String(); got != rendered {
			t.Fatalf("rendering unstable:\n%s\nvs\n%s", rendered, got)
		}
	})
}
