package lang

import (
	"strings"
	"testing"

	"fuzzybarrier/internal/ir"
)

func TestParsePoisson(t *testing.T) {
	src := `
/* Poisson solver */
int P[4][4];
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par {
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
    }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Arrays) != 1 || p.Arrays[0].Name != "P" || p.Arrays[0].Size() != 16 {
		t.Fatalf("arrays = %+v", p.Arrays)
	}
	outer, ok := p.Body[0].(*ForStmt)
	if !ok || outer.Par || outer.Var != "k" || outer.Rel != ir.LE {
		t.Fatalf("outer = %+v", p.Body[0])
	}
	mid := outer.Body[0].(*ForStmt)
	if !mid.Par || mid.Var != "i" {
		t.Fatalf("mid = %+v", mid)
	}
	inner := mid.Body[0].(*ForStmt)
	if !inner.Par || inner.Var != "j" {
		t.Fatalf("inner = %+v", inner)
	}
	asg := inner.Body[0].(*AssignStmt)
	if asg.LHS.Name != "P" || len(asg.LHS.Indices) != 2 {
		t.Fatalf("assign lhs = %+v", asg.LHS)
	}
	div, ok := asg.RHS.(BinExpr)
	if !ok || div.Op != ir.Div {
		t.Fatalf("rhs = %+v", asg.RHS)
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
int a[4][4];
for (i=1; i<=3; i++) do seq
  for (j=1; j<=3; j++) do par {
    if (j < 2) then a[i][j] = 1; else a[i][j] = 2;
  }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inner := p.Body[0].(*ForStmt).Body[0].(*ForStmt)
	iff := inner.Body[0].(*IfStmt)
	if iff.Cond.Rel != ir.LT || len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Fatalf("if = %+v", iff)
	}
}

func TestParseSteppedLoop(t *testing.T) {
	src := `
int a[4][4];
for (j=1; j<10; j+=2) do seq
  for (i=1; i<=2; i++) do par {
    a[i][1] = a[i][1] + j;
  }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := p.Body[0].(*ForStmt)
	if outer.Step != 2 || outer.Rel != ir.LT {
		t.Errorf("step = %d rel = %v", outer.Step, outer.Rel)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `
int a[2][2];
for (i=1; i<=1; i++) do seq
  for (j=1; j<=1; j++) do par {
    a[1][1] = 2 + 3 * 4 - 6 / 2;
  }
`
	p := MustParse(src)
	asg := p.Body[0].(*ForStmt).Body[0].(*ForStmt).Body[0].(*AssignStmt)
	// Evaluate the constant expression: 2 + 12 - 3 = 11.
	var eval func(e Expr) int64
	eval = func(e Expr) int64 {
		switch x := e.(type) {
		case NumExpr:
			return x.Val
		case BinExpr:
			l, r := eval(x.L), eval(x.R)
			switch x.Op {
			case ir.Add:
				return l + r
			case ir.Sub:
				return l - r
			case ir.Mul:
				return l * r
			case ir.Div:
				return l / r
			}
		}
		t.Fatalf("unexpected expr %T", e)
		return 0
	}
	if got := eval(asg.RHS); got != 11 {
		t.Errorf("2+3*4-6/2 = %d, want 11", got)
	}
}

func TestParseUnaryMinusAndParens(t *testing.T) {
	src := `
int a[2][2];
for (i=1; i<=1; i++) do seq
  for (j=1; j<=1; j++) do par {
    a[1][1] = -(3 + 4);
  }
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
int a[2][2]; /* block
   comment */
for (i=1; i<=1; i++) do seq
  for (j=1; j<=1; j++) do par { a[1][1] = 0; }
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semicolon":     `int a[2][2]  for (i=1;i<=1;i++) { a[1][1]=0; }`,
		"bad dimension":         `int a[x][2];`,
		"zero dimension":        `int a[0][2];`,
		"scalar decl":           `int a;`,
		"mismatched loop var":   `int a[2][2]; for (i=1; j<=1; i++) do seq { a[1][1]=0; }`,
		"mismatched update var": `int a[2][2]; for (i=1; i<=1; j++) do seq { a[1][1]=0; }`,
		"bad do mode":           `int a[2][2]; for (i=1; i<=1; i++) do zig { a[1][1]=0; }`,
		"unterminated block":    `int a[2][2]; for (i=1; i<=1; i++) do seq { a[1][1]=0;`,
		"unterminated comment":  `/* forever`,
		"undeclared array":      `for (i=1; i<=1; i++) do seq { b[1][1]=0; }`,
		"rank mismatch":         `int a[2][2]; for (i=1; i<=1; i++) do seq { a[1]=0; }`,
		"array as scalar":       `int a[2][2]; for (i=1; i<=1; i++) do seq { a = 3; }`,
		"array read as scalar":  `int a[2][2]; for (i=1; i<=1; i++) do seq { a[1][1] = a; }`,
		"negative step":         `int a[2][2]; for (i=1; i<=1; i+=0) do seq { a[1][1]=0; }`,
		"garbage char":          `int a[2][2]; @`,
		"missing expr":          `int a[2][2]; for (i=1; i<=; i++) do seq { a[1][1]=0; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		`int P[4][4];
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par {
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
    }`,
		`int a[8][12];
for (i=1; i<=10; i+=2) do seq
  for (j=1; j<=6; j++) do par {
    a[j][i] = a[j+1][i-1] + 2;
    if (j < 3) then a[j][i] = 0; else a[j][i] = 1;
  }`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, rendered)
		}
		if got := p2.String(); got != rendered {
			t.Errorf("render not stable:\nfirst:\n%s\nsecond:\n%s", rendered, got)
		}
	}
}

func TestArrayLookup(t *testing.T) {
	p := MustParse(`int a[2][3];
for (i=1; i<=1; i++) do seq
  for (j=1; j<=1; j++) do par { a[1][1] = 0; }`)
	d, ok := p.Array("a")
	if !ok || d.Size() != 6 {
		t.Errorf("array a = %+v, ok=%v", d, ok)
	}
	if _, ok := p.Array("zzz"); ok {
		t.Error("nonexistent array found")
	}
}

func TestExprStrings(t *testing.T) {
	e := BinExpr{Op: ir.Add, L: IndexExpr{Name: "a", Indices: []Expr{VarExpr{Name: "i"}}}, R: NumExpr{Val: 2}}
	if got := e.String(); !strings.Contains(got, "a[i]") || !strings.Contains(got, "+") {
		t.Errorf("expr string = %q", got)
	}
	lv := LValue{Name: "a", Indices: []Expr{NumExpr{Val: 1}, NumExpr{Val: 2}}}
	if got := lv.String(); got != "a[1][2]" {
		t.Errorf("lvalue string = %q", got)
	}
}
