package isa

import (
	"errors"
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if Op(200).String() != "OP(200)" {
		t.Errorf("unknown opcode string = %q", Op(200).String())
	}
	if Op(200).Valid() {
		t.Error("opcode 200 reported valid")
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{BR, BEQ, BNE, BLT, BLE, BGT, BGE}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	if BR.IsConditional() {
		t.Error("BR is unconditional")
	}
	if !BEQ.IsConditional() {
		t.Error("BEQ is conditional")
	}
	for _, op := range []Op{LD, ST, FAA} {
		if !op.IsMemory() {
			t.Errorf("%v should be a memory op", op)
		}
	}
	if ADD.IsMemory() || ADD.IsBranch() {
		t.Error("ADD misclassified")
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	b.Ldi(1, 42).Addi(2, 1, 8).Add(3, 1, 2).Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	if p.Code[0].Op != LDI || p.Code[0].Imm != 42 {
		t.Errorf("instr 0 = %v", p.Code[0])
	}
}

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	b.Ldi(1, 0).Ldi(2, 3)
	b.Label("loop").Addi(1, 1, 1).CondBr(BLT, 1, 2, "loop").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := p.LabelAddr("loop")
	if !ok || addr != 2 {
		t.Fatalf("label loop at %d (ok=%v), want 2", addr, ok)
	}
	if p.Code[3].Target != 2 {
		t.Errorf("branch target = %d, want 2", p.Code[3].Target)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(b *Builder){
		"undefined label": func(b *Builder) { b.Br("nowhere") },
		"duplicate label": func(b *Builder) { b.Label("x").Nop().Label("x").Nop() },
		"bad alu op":      func(b *Builder) { b.Alu(LDI, 1, 2, 3) },
		"bad alui op":     func(b *Builder) { b.AluI(ADD, 1, 2, 3) },
		"bad condbr":      func(b *Builder) { b.CondBr(BR, 1, 2, "l") },
		"comment first":   func(b *Builder) { b.Comment("nothing yet") },
	}
	for name, f := range cases {
		b := NewBuilder(name)
		f(b)
		if name == "undefined label" {
			// labels are checked at Build time, others at call time.
		}
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected Build error", name)
		}
	}
}

func TestTrailingLabelGetsLandingPad(t *testing.T) {
	b := NewBuilder("t")
	b.Ldi(1, 1).Br("end").Label("end")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || p.Code[2].Op != NOP {
		t.Fatalf("expected trailing NOP landing pad, got %v", p.Code)
	}
}

func TestRegions(t *testing.T) {
	b := NewBuilder("t")
	b.Ldi(1, 0)               // non-barrier
	b.InBarrier().Nop().Nop() // barrier x2
	b.InNonBarrier().Work(5)  // non-barrier
	b.InBarrier().Nop()       // barrier
	b.InNonBarrier().Halt()   // non-barrier
	p := b.MustBuild()
	regions := p.Regions()
	wantLens := []int{1, 2, 1, 1, 1}
	wantBar := []bool{false, true, false, true, false}
	if len(regions) != len(wantLens) {
		t.Fatalf("regions = %d, want %d: %+v", len(regions), len(wantLens), regions)
	}
	for i, r := range regions {
		if r.Len() != wantLens[i] || r.Barrier != wantBar[i] {
			t.Errorf("region %d = %+v, want len %d barrier %v", i, r, wantLens[i], wantBar[i])
		}
	}
	st := p.StaticStats()
	if st.BarrierRegions != 2 || st.NonBarrierRegions != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.BarrierInstrs != 3 || st.NonBarrierInstrs != 3 {
		t.Errorf("instr counts = %+v", st)
	}
	if st.LargestBarrier != 2 {
		t.Errorf("largest barrier = %d, want 2", st.LargestBarrier)
	}
}

func TestValidateForwardCrossBarrierBranch(t *testing.T) {
	b := NewBuilder("fig2")
	b.InBarrier().Nop().Br("bar2")
	b.InNonBarrier().Work(5)
	b.InBarrier().Label("bar2").Nop()
	b.InNonBarrier().Halt()
	p := b.MustBuild()
	err := p.Validate(false)
	if !errors.Is(err, ErrInvalidBranch) {
		t.Fatalf("err = %v, want ErrInvalidBranch", err)
	}
	if err := p.Validate(true); err != nil {
		t.Fatalf("allowCrossBarrier should accept: %v", err)
	}
}

func TestValidateBackwardBarrierBranchIsLegal(t *testing.T) {
	// The canonical loop whose barrier region spans the back edge:
	// [barrier: init][non-barrier: body][barrier: k++, blt -> init].
	b := NewBuilder("loop")
	b.InBarrier().Ldi(1, 0).Label("head").Nop()
	b.InNonBarrier().Work(5)
	b.InBarrier().Addi(1, 1, 1).Ldi(2, 4).CondBr(BLT, 1, 2, "head")
	b.InNonBarrier().Halt()
	p := b.MustBuild()
	if err := p.Validate(false); err != nil {
		t.Fatalf("backward barrier branch must be legal: %v", err)
	}
}

func TestValidateBranchWithinRegionIsLegal(t *testing.T) {
	b := NewBuilder("if-in-region")
	b.InBarrier().
		Ldi(1, 1).Ldi(2, 0).
		CondBr(BEQ, 1, 2, "else").
		Work(3).Br("join").
		Label("else").Work(9).
		Label("join").Nop()
	b.InNonBarrier().Halt()
	p := b.MustBuild()
	if err := p.Validate(false); err != nil {
		t.Fatalf("branches within one region must be legal: %v", err)
	}
}

func TestValidateRejectsBadTargets(t *testing.T) {
	p := &Program{Name: "bad", Code: []Instr{{Op: BR, Target: 99}}}
	if err := p.Validate(false); err == nil {
		t.Error("out-of-range target accepted")
	}
	p = &Program{Name: "bad", Code: []Instr{{Op: WORK, Imm: -1}}}
	if err := p.Validate(false); err == nil {
		t.Error("negative WORK accepted")
	}
	p = &Program{Name: "bad", Code: []Instr{{Op: ADD, Rd: 200}}}
	if err := p.Validate(false); err == nil {
		t.Error("register out of range accepted")
	}
}

func TestMarkerModeNesting(t *testing.T) {
	good := NewMarkerBuilder("ok")
	good.Nop()
	good.InBarrier().Nop()
	good.InNonBarrier().Halt()
	p := good.MustBuild()
	if err := p.Validate(false); err != nil {
		t.Fatalf("well-nested markers rejected: %v", err)
	}
	// BENTER while inside.
	bad := &Program{Name: "bad", Mode: ModeMarker, Code: []Instr{
		{Op: BENTER}, {Op: BENTER},
	}}
	if err := bad.Validate(false); err == nil {
		t.Error("double BENTER accepted")
	}
	bad = &Program{Name: "bad", Mode: ModeMarker, Code: []Instr{{Op: BEXIT}}}
	if err := bad.Validate(false); err == nil {
		t.Error("BEXIT outside region accepted")
	}
}

func TestMarkerModeRegionMembership(t *testing.T) {
	b := NewMarkerBuilder("m")
	b.Nop()               // 0: outside
	b.InBarrier().Work(2) // 1: BENTER, 2: WORK
	b.InNonBarrier()      // 3: BEXIT
	b.Halt()              // 4: outside
	p := b.MustBuild()
	want := []bool{false, true, true, true, false}
	for i, w := range want {
		if got := p.InBarrierRegion(i); got != w {
			t.Errorf("InBarrierRegion(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDisassembleContainsLabelsAndComments(t *testing.T) {
	b := NewBuilder("d")
	b.Label("start").Ldi(1, 7).Comment("seven")
	b.InBarrier().Work(3)
	b.InNonBarrier().Br("start")
	p := b.MustBuild()
	out := p.Disassemble()
	for _, want := range []string{"start:", "LDI r1, 7", "seven", "WORK 3", "!b", "BR start"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"ADD r1, r2, r3":          {Op: ADD, Rd: 1, Rs: 2, Rt: 3},
		"LDI r4, -7":              {Op: LDI, Rd: 4, Imm: -7},
		"LD r1, 8(r2)":            {Op: LD, Rd: 1, Rs: 2, Imm: 8},
		"ST r3, 0(r2)":            {Op: ST, Rt: 3, Rs: 2},
		"FAA r1, 4(r2), r3":       {Op: FAA, Rd: 1, Rs: 2, Imm: 4, Rt: 3},
		"BARRIER tag=2, mask=0x5": {Op: BARRIER, Imm: 2, Imm2: 5},
		"WORK 9":                  {Op: WORK, Imm: 9},
		"WORKR r5":                {Op: WORKR, Rs: 5},
		"MOV r1, r2":              {Op: MOV, Rd: 1, Rs: 2},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
