package isa

// This file describes each instruction's register effects, the inputs a
// post-codegen scheduler needs: machine-level reordering must respect not
// only the program's data flow but also the *register reuse* the code
// generator introduced — which is exactly why Section 4 prefers
// reordering at the intermediate-code level.

// DefReg returns the register the instruction writes, if any.
func (in Instr) DefReg() (Reg, bool) {
	switch in.Op {
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT,
		LDI, MOV, ADDI, SUBI, MULI, DIVI, LD, FAA:
		return in.Rd, true
	}
	return 0, false
}

// UseRegs returns the registers the instruction reads.
func (in Instr) UseRegs() []Reg {
	switch in.Op {
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT:
		return []Reg{in.Rs, in.Rt}
	case MOV, ADDI, SUBI, MULI, DIVI, LD, WORKR:
		return []Reg{in.Rs}
	case ST, FAA:
		return []Reg{in.Rs, in.Rt}
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		return []Reg{in.Rs, in.Rt}
	}
	return nil
}

// TouchesMemory reports whether the instruction reads or writes shared
// memory (the conservative reorder barrier class).
func (in Instr) TouchesMemory() bool { return in.Op.IsMemory() }
