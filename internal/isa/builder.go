package isa

import "fmt"

// Builder constructs Programs with symbolic labels and a current
// barrier-region flag, so callers write code in the order it executes and
// flip regions with InBarrier/InNonBarrier — mirroring how the paper's
// compiler lays out barrier and non-barrier regions.
type Builder struct {
	name    string
	mode    Mode
	code    []Instr
	labels  map[string]int
	pending string // label waiting to attach to the next instruction
	barrier bool
	errs    []error
}

// NewBuilder returns a Builder for a program using the per-instruction
// barrier-bit encoding.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, mode: ModeBit, labels: make(map[string]int)}
}

// NewMarkerBuilder returns a Builder for the BENTER/BEXIT marker encoding.
// InBarrier/InNonBarrier transitions emit marker instructions instead of
// setting bits.
func NewMarkerBuilder(name string) *Builder {
	return &Builder{name: name, mode: ModeMarker, labels: make(map[string]int)}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("isa builder %s: "+format, append([]any{b.name}, args...)...))
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	if b.pending == "" {
		b.pending = name
	}
	return b
}

// InBarrier switches subsequent instructions into a barrier region.
func (b *Builder) InBarrier() *Builder {
	if b.mode == ModeMarker && !b.barrier {
		b.emit(Instr{Op: BENTER})
	}
	b.barrier = true
	return b
}

// InNonBarrier switches subsequent instructions into a non-barrier region.
func (b *Builder) InNonBarrier() *Builder {
	if b.mode == ModeMarker && b.barrier {
		// The BEXIT itself belongs to the region it terminates.
		b.emitRaw(Instr{Op: BEXIT, Barrier: true})
	}
	b.barrier = false
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	in.Barrier = b.barrier
	return b.emitRaw(in)
}

func (b *Builder) emitRaw(in Instr) *Builder {
	if b.pending != "" {
		in.Label = b.pending
		b.pending = ""
	}
	b.code = append(b.code, in)
	return b
}

// Comment attaches a comment to the most recently emitted instruction.
func (b *Builder) Comment(format string, args ...any) *Builder {
	if len(b.code) == 0 {
		b.errf("comment with no instruction")
		return b
	}
	b.code[len(b.code)-1].Comment = fmt.Sprintf(format, args...)
	return b
}

// Nop emits NOP.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NOP}) }

// Halt emits HALT.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: HALT}) }

// Ldi emits Rd <- imm.
func (b *Builder) Ldi(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: LDI, Rd: rd, Imm: imm})
}

// Mov emits Rd <- Rs.
func (b *Builder) Mov(rd, rs Reg) *Builder {
	return b.emit(Instr{Op: MOV, Rd: rd, Rs: rs})
}

// Alu emits a three-register ALU instruction.
func (b *Builder) Alu(op Op, rd, rs, rt Reg) *Builder {
	switch op {
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT:
	default:
		b.errf("Alu called with non-ALU opcode %v", op)
	}
	return b.emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// Add emits Rd <- Rs + Rt.
func (b *Builder) Add(rd, rs, rt Reg) *Builder { return b.Alu(ADD, rd, rs, rt) }

// Sub emits Rd <- Rs - Rt.
func (b *Builder) Sub(rd, rs, rt Reg) *Builder { return b.Alu(SUB, rd, rs, rt) }

// Mul emits Rd <- Rs * Rt.
func (b *Builder) Mul(rd, rs, rt Reg) *Builder { return b.Alu(MUL, rd, rs, rt) }

// AluI emits an immediate ALU instruction.
func (b *Builder) AluI(op Op, rd, rs Reg, imm int64) *Builder {
	switch op {
	case ADDI, SUBI, MULI, DIVI:
	default:
		b.errf("AluI called with non-immediate opcode %v", op)
	}
	return b.emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Addi emits Rd <- Rs + imm.
func (b *Builder) Addi(rd, rs Reg, imm int64) *Builder { return b.AluI(ADDI, rd, rs, imm) }

// Ld emits Rd <- Mem[Rs+off].
func (b *Builder) Ld(rd, rs Reg, off int64) *Builder {
	return b.emit(Instr{Op: LD, Rd: rd, Rs: rs, Imm: off})
}

// St emits Mem[Rs+off] <- Rt.
func (b *Builder) St(rs Reg, off int64, rt Reg) *Builder {
	return b.emit(Instr{Op: ST, Rs: rs, Imm: off, Rt: rt})
}

// Faa emits Rd <- fetch-and-add(Mem[Rs+off], Rt).
func (b *Builder) Faa(rd, rs Reg, off int64, rt Reg) *Builder {
	return b.emit(Instr{Op: FAA, Rd: rd, Rs: rs, Imm: off, Rt: rt})
}

// Br emits an unconditional branch to a label.
func (b *Builder) Br(label string) *Builder {
	return b.emit(Instr{Op: BR, Sym: label})
}

// CondBr emits a conditional branch comparing Rs against Rt.
func (b *Builder) CondBr(op Op, rs, rt Reg, label string) *Builder {
	if !op.IsConditional() {
		b.errf("CondBr called with non-conditional opcode %v", op)
	}
	return b.emit(Instr{Op: op, Rs: rs, Rt: rt, Sym: label})
}

// BarrierInit emits BARRIER tag, mask.
func (b *Builder) BarrierInit(tag int64, mask uint64) *Builder {
	return b.emit(Instr{Op: BARRIER, Imm: tag, Imm2: int64(mask)})
}

// Work emits WORK cycles.
func (b *Builder) Work(cycles int64) *Builder {
	return b.emit(Instr{Op: WORK, Imm: cycles})
}

// WorkR emits WORKR (busy for the number of cycles in rs).
func (b *Builder) WorkR(rs Reg) *Builder {
	return b.emit(Instr{Op: WORKR, Rs: rs})
}

// Call emits CALL to a label.
func (b *Builder) Call(label string) *Builder {
	return b.emit(Instr{Op: CALL, Sym: label})
}

// Ret emits RET.
func (b *Builder) Ret() *Builder { return b.emit(Instr{Op: RET}) }

// Build resolves labels and returns the program. It returns an error if
// any builder call was malformed or a branch references an undefined
// label. The returned program is NOT validated against the Figure 2 rule;
// call Program.Validate for that, since some experiments deliberately
// construct invalid programs.
func (b *Builder) Build() (*Program, error) {
	if b.pending != "" {
		// A trailing label: attach it to an implicit NOP so branches to
		// "end" work naturally.
		b.emit(Instr{Op: NOP, Comment: "label landing pad"})
	}
	for _, err := range b.errs {
		return nil, err
	}
	code := append([]Instr(nil), b.code...)
	for i := range code {
		if code[i].Op.IsBranch() || code[i].Op == CALL {
			addr, ok := b.labels[code[i].Sym]
			if !ok {
				return nil, fmt.Errorf("isa builder %s: undefined label %q at instruction %d", b.name, code[i].Sym, i)
			}
			code[i].Target = addr
		}
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Name: b.name, Mode: b.mode, Code: code, labels: labels}, nil
}

// MustBuild is Build that panics on error; intended for statically known
// programs in tests and workload generators.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
