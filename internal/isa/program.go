package isa

import (
	"errors"
	"fmt"
	"strings"
)

// Mode selects how the simulator decides whether an instruction belongs to
// a barrier region (the two encodings of Section 6).
type Mode int

const (
	// ModeBit uses the per-instruction barrier bit.
	ModeBit Mode = iota
	// ModeMarker derives region membership dynamically from BENTER/BEXIT
	// marker instructions.
	ModeMarker
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBit:
		return "bit"
	case ModeMarker:
		return "marker"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Program is a fully resolved instruction sequence for one processor
// stream.
type Program struct {
	Name   string
	Mode   Mode
	Code   []Instr
	labels map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// LabelAddr returns the instruction index of a label.
func (p *Program) LabelAddr(label string) (int, bool) {
	addr, ok := p.labels[label]
	return addr, ok
}

// Region identifies a maximal contiguous run of barrier (or non-barrier)
// instructions in a program, in static program order. Branches can make the
// dynamic region larger than the static one (Section 3); Regions reports
// the static structure, which is what the compiler reasons about.
type Region struct {
	Barrier    bool
	Start, End int // [Start, End) instruction indices
}

// Len returns the number of instructions in the region.
func (r Region) Len() int { return r.End - r.Start }

// Regions splits the program into maximal static runs of equal barrier-bit
// instructions. In marker mode, membership is computed by linear scan of
// the BENTER/BEXIT markers (the markers themselves count as barrier-region
// instructions).
func (p *Program) Regions() []Region {
	if len(p.Code) == 0 {
		return nil
	}
	inBar := func(i int) bool { return p.InBarrierRegion(i) }
	var out []Region
	cur := Region{Barrier: inBar(0), Start: 0}
	for i := 1; i < len(p.Code); i++ {
		if inBar(i) != cur.Barrier {
			cur.End = i
			out = append(out, cur)
			cur = Region{Barrier: inBar(i), Start: i}
		}
	}
	cur.End = len(p.Code)
	return append(out, cur)
}

// InBarrierRegion reports whether instruction i belongs to a barrier
// region under the program's encoding mode.
func (p *Program) InBarrierRegion(i int) bool {
	if i < 0 || i >= len(p.Code) {
		return false
	}
	if p.Mode == ModeBit {
		return p.Code[i].Barrier
	}
	// Marker mode: scan from the start tracking BENTER/BEXIT. Programs are
	// small (compiler output), so the O(n) scan per query is only used by
	// analysis code; the simulator tracks membership incrementally.
	in := false
	for j := 0; j <= i; j++ {
		switch p.Code[j].Op {
		case BENTER:
			in = true
		case BEXIT:
			if j == i {
				return true // the BEXIT itself is the last region instruction
			}
			in = false
		}
	}
	return in
}

// regionIndex returns, for every instruction, the index of the static
// region (from Regions) containing it.
func (p *Program) regionIndex() []int {
	idx := make([]int, len(p.Code))
	for ri, r := range p.Regions() {
		for i := r.Start; i < r.End; i++ {
			idx[i] = ri
		}
	}
	return idx
}

// ErrInvalidBranch is wrapped by validation errors for branches that
// transfer control directly from one barrier region to a different one —
// the Figure 2 bug, which causes missed synchronizations and deadlock when
// the hardware cannot distinguish barriers.
var ErrInvalidBranch = errors.New("branch transfers control directly between distinct barrier regions")

// Validate checks structural well-formedness:
//
//   - every branch target is within the program,
//   - opcodes are defined and register numbers in range,
//   - in marker mode, BENTER/BEXIT nest properly (no BENTER while already
//     inside a region, no BEXIT outside one),
//   - no branch transfers control *forward* from one barrier region into
//     a different barrier region (Section 3 / Figure 2): such a branch
//     skips the intervening non-barrier region and merges two distinct
//     barriers, causing missed synchronizations and deadlock. A backward
//     branch between barrier regions is legal — it is the canonical
//     loop whose barrier region extends across the back edge, where the
//     two static runs are halves of one dynamic region ("the barrier
//     region can contain code not only from the end of one iteration but
//     also from the start of the subsequent iteration", Section 3).
//
// The Figure 2 check can be suppressed with allowCrossBarrier=true, which
// models an implementation that distinguishes barriers by explicit tags
// (the paper notes the problem "will not arise" there). The simulator's
// E9 experiment runs such an invalid program to demonstrate the deadlock.
func (p *Program) Validate(allowCrossBarrier bool) error {
	for i, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: %s@%d: invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
			return fmt.Errorf("isa: %s@%d: register out of range in %v", p.Name, i, in)
		}
		if in.Op.IsBranch() || in.Op == CALL {
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("isa: %s@%d: branch target %d out of range [0,%d)", p.Name, i, in.Target, len(p.Code))
			}
		}
		if in.Op == WORK && in.Imm < 0 {
			return fmt.Errorf("isa: %s@%d: negative WORK duration %d", p.Name, i, in.Imm)
		}
	}
	if p.Mode == ModeMarker {
		in := false
		for i, ins := range p.Code {
			switch ins.Op {
			case BENTER:
				if in {
					return fmt.Errorf("isa: %s@%d: BENTER while already inside a barrier region", p.Name, i)
				}
				in = true
			case BEXIT:
				if !in {
					return fmt.Errorf("isa: %s@%d: BEXIT outside a barrier region", p.Name, i)
				}
				in = false
			}
		}
	}
	if !allowCrossBarrier {
		ridx := p.regionIndex()
		regions := p.Regions()
		for i, in := range p.Code {
			if !in.Op.IsBranch() || !p.InBarrierRegion(i) {
				continue
			}
			t := in.Target
			if !p.InBarrierRegion(t) {
				continue // barrier -> non-barrier exit: legal
			}
			if t <= i {
				continue // backward: a loop's cross-iteration region
			}
			if ridx[i] != ridx[t] {
				return fmt.Errorf("isa: %s@%d: %w: branch from region %d [%d,%d) to region %d [%d,%d)",
					p.Name, i, ErrInvalidBranch,
					ridx[i], regions[ridx[i]].Start, regions[ridx[i]].End,
					ridx[t], regions[ridx[t]].Start, regions[ridx[t]].End)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line, with
// labels, addresses and barrier-bit annotations.
func (p *Program) Disassemble() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "; program %s (mode=%s, %d instructions)\n", p.Name, p.Mode, len(p.Code))
	}
	for i, in := range p.Code {
		if in.Label != "" {
			fmt.Fprintf(&b, "%s:\n", in.Label)
		}
		fmt.Fprintf(&b, "%4d    %s\n", i, in.String())
	}
	return b.String()
}

// Stats summarizes the static region structure of a program.
type Stats struct {
	Instructions      int
	BarrierRegions    int
	NonBarrierRegions int
	BarrierInstrs     int
	NonBarrierInstrs  int
	LargestBarrier    int
	LargestNonBarrier int
}

// StaticStats computes region statistics for the program.
func (p *Program) StaticStats() Stats {
	var s Stats
	s.Instructions = len(p.Code)
	for _, r := range p.Regions() {
		if r.Barrier {
			s.BarrierRegions++
			s.BarrierInstrs += r.Len()
			if r.Len() > s.LargestBarrier {
				s.LargestBarrier = r.Len()
			}
		} else {
			s.NonBarrierRegions++
			s.NonBarrierInstrs += r.Len()
			if r.Len() > s.LargestNonBarrier {
				s.LargestNonBarrier = r.Len()
			}
		}
	}
	return s
}
