package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a Program. The syntax is one
// instruction per line:
//
//	; full-line comment
//	.program poisson        ; optional program name
//	.mode bit               ; or "marker"
//	.barrier                ; following instructions are in a barrier region
//	.nonbarrier             ; ... back to non-barrier code
//	loop:                   ; label
//	    LDI  r1, 5
//	    ADDI r2, r1, 3
//	    ADD  r3, r1, r2
//	    LD   r4, 8(r3)
//	    ST   r4, 0(r3)
//	    FAA  r5, 0(r6), r7
//	    BLT  r1, r2, loop
//	    BR   loop
//	    BARRIER 1, 0x6
//	    WORK 25
//	    HALT
//
// Everything after ';' on a line is a comment and becomes the
// instruction's Comment field.
func Assemble(src string) (*Program, error) {
	b := NewBuilder("asm")
	mode := ModeBit
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		comment := ""
		if i := strings.IndexByte(line, ';'); i >= 0 {
			comment = strings.TrimSpace(line[i+1:])
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".program":
				if len(fields) != 2 {
					return nil, asmErr(lineNo, ".program wants a name")
				}
				b.name = fields[1]
			case ".mode":
				if len(fields) != 2 {
					return nil, asmErr(lineNo, ".mode wants bit|marker")
				}
				switch fields[1] {
				case "bit":
					mode = ModeBit
				case "marker":
					mode = ModeMarker
				default:
					return nil, asmErr(lineNo, "unknown mode %q", fields[1])
				}
				b.mode = mode
			case ".barrier":
				b.InBarrier()
			case ".nonbarrier":
				b.InNonBarrier()
			default:
				return nil, asmErr(lineNo, "unknown directive %q", fields[0])
			}
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, asmErr(lineNo, "malformed label %q", line[:i])
			}
			b.Label(label)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleInstr(b, line, comment); err != nil {
			return nil, asmErr(lineNo, "%v", err)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return p, nil
}

func asmErr(line int, format string, args ...any) error {
	return fmt.Errorf("asm line %d: %s", line, fmt.Sprintf(format, args...))
}

var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func assembleInstr(b *Builder, line, comment string) error {
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := opByName[strings.ToUpper(mn)]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	args := splitArgs(rest)
	emit := func(in Instr) {
		b.emit(in)
		if comment != "" {
			b.Comment("%s", comment)
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case RET:
		if err := need(0); err != nil {
			return err
		}
		emit(Instr{Op: op})
	case CALL:
		if err := need(1); err != nil {
			return err
		}
		emit(Instr{Op: op, Sym: args[0]})
	case NOP, HALT, BENTER, BEXIT:
		if err := need(0); err != nil {
			return err
		}
		if op == BENTER || op == BEXIT {
			// Markers are emitted through region transitions in builder
			// programs, but raw assembly may place them directly.
			b.emitRaw(Instr{Op: op, Barrier: op == BEXIT, Comment: comment})
			if op == BENTER {
				b.barrier = true
				b.code[len(b.code)-1].Barrier = true
			} else {
				b.barrier = false
			}
			return nil
		}
		emit(Instr{Op: op})
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT:
		if err := need(3); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		rt, err3 := parseReg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
	case LDI:
		if err := need(2); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		imm, err2 := parseImm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Imm: imm})
	case MOV:
		if err := need(2); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Rs: rs})
	case ADDI, SUBI, MULI, DIVI:
		if err := need(3); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		rs, err2 := parseReg(args[1])
		imm, err3 := parseImm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
	case LD:
		if err := need(2); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		off, rs, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: off})
	case ST:
		if err := need(2); err != nil {
			return err
		}
		rt, err1 := parseReg(args[0])
		off, rs, err2 := parseMem(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Rt: rt, Rs: rs, Imm: off})
	case FAA:
		if err := need(3); err != nil {
			return err
		}
		rd, err1 := parseReg(args[0])
		off, rs, err2 := parseMem(args[1])
		rt, err3 := parseReg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: off, Rt: rt})
	case BR:
		if err := need(1); err != nil {
			return err
		}
		emit(Instr{Op: op, Sym: args[0]})
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		if err := need(3); err != nil {
			return err
		}
		rs, err1 := parseReg(args[0])
		rt, err2 := parseReg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Rs: rs, Rt: rt, Sym: args[2]})
	case BARRIER:
		if err := need(2); err != nil {
			return err
		}
		tag, err1 := parseImm(strings.TrimPrefix(args[0], "tag="))
		mask, err2 := parseImm(strings.TrimPrefix(args[1], "mask="))
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		emit(Instr{Op: op, Imm: tag, Imm2: mask})
	case WORK:
		if err := need(1); err != nil {
			return err
		}
		imm, err := parseImm(args[0])
		if err != nil {
			return err
		}
		emit(Instr{Op: op, Imm: imm})
	case WORKR:
		if err := need(1); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		emit(Instr{Op: op, Rs: rs})
	default:
		return fmt.Errorf("unhandled opcode %v", op)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "off(rN)".
func parseMem(s string) (off int64, base Reg, err error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : close]))
	return off, base, err
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
