package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble exercises the assembler against arbitrary text: it must
// never panic, and anything it accepts must disassemble, re-render
// through AsmText and re-assemble to an equivalent program.
func FuzzAssemble(f *testing.F) {
	f.Add(sampleAsm)
	f.Add(".program x\n    NOP\n    HALT\n")
	f.Add("loop: WORK 3\n BR loop\n")
	f.Add(".mode marker\nBENTER\nNOP\nBEXIT\nHALT\n")
	f.Add("LD r1, 4(r2)\nST r1, 0(r2)\nFAA r3, 8(r4), r5\n")
	f.Add(".barrier\nBARRIER 1, 3\n.nonbarrier\nHALT")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = p.Disassemble()
		text := p.AsmText()
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("AsmText output rejected: %v\n%s", err, text)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("round trip changed length %d -> %d", p.Len(), p2.Len())
		}
	})
}

// FuzzValidate throws arbitrary instruction encodings at Validate.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true)
	f.Add([]byte{30, 30, 30}, false)
	f.Fuzz(func(t *testing.T, ops []byte, marker bool) {
		if len(ops) == 0 || len(ops) > 64 {
			return
		}
		p := &Program{Name: "fuzz"}
		if marker {
			p.Mode = ModeMarker
		}
		for i, op := range ops {
			p.Code = append(p.Code, Instr{
				Op:      Op(op % 40),
				Rd:      Reg(op % 80),
				Rs:      Reg((op + 1) % 80),
				Rt:      Reg((op + 2) % 80),
				Target:  int(op) % (len(ops) + 4),
				Barrier: i%3 == 0,
				Imm:     int64(op) - 10,
			})
		}
		_ = p.Validate(false) // must not panic
		_ = p.Validate(true)
		_ = p.Regions()
		_ = p.StaticStats()
		if strings.Contains(p.Disassemble(), "\x00") {
			t.Skip()
		}
	})
}
