package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleAsm = `
; a small synchronizing loop
.program demo
    BARRIER 1, 0x2     ; sync with processor 1
    LDI  r1, 0
    LDI  r2, 4
loop:
    WORK 10
.barrier
    ADDI r1, r1, 1
    BLT  r1, r2, loop
.nonbarrier
    HALT
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q, want demo", p.Name)
	}
	if err := p.Validate(false); err != nil {
		t.Fatalf("validate: %v", err)
	}
	addr, ok := p.LabelAddr("loop")
	if !ok || addr != 3 {
		t.Fatalf("loop at %d (ok=%v), want 3", addr, ok)
	}
	if !p.Code[4].Barrier || p.Code[3].Barrier {
		t.Errorf("barrier bits wrong: %v %v", p.Code[3], p.Code[4])
	}
	if p.Code[0].Op != BARRIER || p.Code[0].Imm2 != 2 {
		t.Errorf("barrier init = %v", p.Code[0])
	}
	if p.Code[0].Comment != "sync with processor 1" {
		t.Errorf("comment = %q", p.Code[0].Comment)
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
    NOP
    ADD r1, r2, r3
    SUB r1, r2, r3
    MUL r1, r2, r3
    DIV r1, r2, r3
    MOD r1, r2, r3
    AND r1, r2, r3
    OR  r1, r2, r3
    XOR r1, r2, r3
    SHL r1, r2, r3
    SHR r1, r2, r3
    SLT r1, r2, r3
    LDI r1, -5
    MOV r1, r2
    ADDI r1, r2, 3
    SUBI r1, r2, 3
    MULI r1, r2, 3
    DIVI r1, r2, 3
    LD  r1, 4(r2)
    ST  r1, 4(r2)
    FAA r1, 4(r2), r3
here:
    BR  here
    BEQ r1, r2, here
    BNE r1, r2, here
    BLT r1, r2, here
    BLE r1, r2, here
    BGT r1, r2, here
    BGE r1, r2, here
    BARRIER 3, 0xF
    WORK 7
    WORKR r4
    HALT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(false); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 32 {
		t.Errorf("len = %d, want 32", p.Len())
	}
}

func TestAssembleMarkerMode(t *testing.T) {
	src := `
.mode marker
    NOP
    BENTER
    WORK 3
    BEXIT
    HALT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ModeMarker {
		t.Fatalf("mode = %v, want marker", p.Mode)
	}
	if err := p.Validate(false); err != nil {
		t.Fatal(err)
	}
	if !p.InBarrierRegion(2) || p.InBarrierRegion(4) {
		t.Error("marker region membership wrong")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "FROB r1, r2",
		"bad register":      "LDI rx, 5",
		"register range":    "LDI r99, 5",
		"bad immediate":     "LDI r1, abc",
		"operand count":     "ADD r1, r2",
		"bad mem operand":   "LD r1, r2",
		"unknown directive": ".bogus",
		"bad mode":          ".mode hexagonal",
		"undefined label":   "BR nowhere",
		"malformed label":   "two words: NOP",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

// TestAssembleDisassembleAgree: disassembling an assembled program and
// reading the mnemonics back must describe the same instructions.
func TestAssembleDisassembleAgree(t *testing.T) {
	p, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Disassemble()
	for _, want := range []string{"BARRIER tag=1, mask=0x2", "WORK 10", "ADDI r1, r1, 1", "BLT r1, r1", "HALT"} {
		// BLT operand rendering: BLT r1, r2, loop -> "BLT r1, r2, loop"
		_ = want
	}
	for _, want := range []string{"BARRIER tag=1, mask=0x2", "WORK 10", "ADDI r1, r1, 1", "HALT", "loop:"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

// TestBuilderProgramsAlwaysValidate is a property test: programs built
// with the Builder's structured region switching (no explicit branches
// between regions) always pass validation.
func TestBuilderProgramsAlwaysValidate(t *testing.T) {
	f := func(pattern []bool, seed uint8) bool {
		if len(pattern) == 0 || len(pattern) > 40 {
			return true
		}
		b := NewBuilder("prop")
		label := ""
		for i, inBar := range pattern {
			if inBar {
				b.InBarrier()
			} else {
				b.InNonBarrier()
			}
			switch (int(seed) + i) % 4 {
			case 0:
				b.Nop()
			case 1:
				b.Work(int64(i%7) + 1)
			case 2:
				b.Addi(Reg(i%8+1), Reg(i%8+1), 1)
			case 3:
				if label != "" && !inBar {
					// Backward branch from non-barrier code: always legal.
					b.CondBr(BLT, 1, 2, label)
				} else {
					b.Nop()
				}
			}
			if i == len(pattern)/2 {
				lbl := "mid"
				b.Label(lbl)
				b.Nop()
				label = lbl
			}
		}
		b.InNonBarrier().Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Validate(false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRegionsPartitionProgram is a property: the static regions always
// partition the instruction sequence with alternating barrier flags.
func TestRegionsPartitionProgram(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 {
			return true
		}
		code := make([]Instr, len(bits))
		for i, bit := range bits {
			code[i] = Instr{Op: NOP, Barrier: bit}
		}
		p := &Program{Name: "prop", Code: code}
		regions := p.Regions()
		pos := 0
		for i, r := range regions {
			if r.Start != pos || r.Len() <= 0 {
				return false
			}
			if i > 0 && regions[i-1].Barrier == r.Barrier {
				return false // adjacent regions must alternate
			}
			for j := r.Start; j < r.End; j++ {
				if code[j].Barrier != r.Barrier {
					return false
				}
			}
			pos = r.End
		}
		return pos == len(code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// equivalent compares two programs instruction by instruction, ignoring
// label names and comments.
func equivalent(a, b *Program) bool {
	if a.Len() != b.Len() || a.Mode != b.Mode {
		return false
	}
	for i := range a.Code {
		x, y := a.Code[i], b.Code[i]
		if x.Op != y.Op || x.Rd != y.Rd || x.Rs != y.Rs || x.Rt != y.Rt ||
			x.Imm != y.Imm || x.Imm2 != y.Imm2 || x.Barrier != y.Barrier {
			return false
		}
		if x.Op.IsBranch() && x.Target != y.Target {
			return false
		}
	}
	return true
}

func TestAsmTextRoundTrip(t *testing.T) {
	p1, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := p1.AsmText()
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assemble failed: %v\ntext:\n%s", err, text)
	}
	if !equivalent(p1, p2) {
		t.Errorf("round trip not equivalent:\noriginal:\n%s\nre-assembled:\n%s",
			p1.Disassemble(), p2.Disassemble())
	}
}

func TestAsmTextSynthesizesLabels(t *testing.T) {
	// A builder program whose branch target has no label name after
	// resolution must still round-trip.
	b := NewBuilder("syn the name!") // name needs sanitizing too
	b.Ldi(1, 0).Ldi(2, 3)
	b.Label("loop").Addi(1, 1, 1)
	b.InBarrier().CondBr(BLT, 1, 2, "loop")
	b.InNonBarrier().Halt()
	p1 := b.MustBuild()
	p2, err := Assemble(p1.AsmText())
	if err != nil {
		t.Fatalf("re-assemble: %v\n%s", err, p1.AsmText())
	}
	if !equivalent(p1, p2) {
		t.Error("round trip not equivalent")
	}
}

// TestAsmTextRoundTripProperty: builder-generated programs with random
// region patterns always round-trip through AsmText/Assemble.
func TestAsmTextRoundTripProperty(t *testing.T) {
	f := func(pattern []byte) bool {
		if len(pattern) == 0 || len(pattern) > 30 {
			return true
		}
		b := NewBuilder("prop")
		b.Label("top").Nop()
		for i, d := range pattern {
			if d%2 == 0 {
				b.InBarrier()
			} else {
				b.InNonBarrier()
			}
			switch d % 6 {
			case 0:
				b.Work(int64(d%9) + 1)
			case 1:
				b.Ldi(Reg(d%16), int64(d))
			case 2:
				b.Ld(Reg(d%8), Reg(d%8+1), int64(d%32))
			case 3:
				b.Faa(1, 2, int64(d%16), 3)
			case 4:
				b.BarrierInit(int64(d%7), uint64(d))
			case 5:
				if i%5 == 4 {
					b.CondBr(BGE, 1, 2, "top")
				} else {
					b.Nop()
				}
			}
		}
		b.InNonBarrier().Halt()
		p1, err := b.Build()
		if err != nil {
			return false
		}
		p2, err := Assemble(p1.AsmText())
		if err != nil {
			return false
		}
		return equivalent(p1, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
