// Package isa defines the RISC-like instruction set executed by the
// multiprocessor simulator in internal/machine.
//
// Following Section 6 of the paper, every instruction carries a single
// barrier-region bit: the bit is one if the instruction belongs to a
// barrier region and zero otherwise. The package also supports the paper's
// alternative encoding — explicit BENTER/BEXIT marker instructions — so the
// two encodings can be compared (DESIGN.md ablation "Region encoding").
//
// The ISA is deliberately small: integer ALU ops, loads/stores, branches, a
// fetch-and-add for building software barriers inside the simulator, a
// synthetic WORK instruction for controllable busy time, and BARRIER for
// loading the tag/mask register of the fuzzy-barrier hardware.
package isa

import "fmt"

// Reg names a general-purpose register. The simulator provides NumRegs
// registers per processor; register 0 is ordinary (not hardwired to zero).
type Reg uint8

// NumRegs is the number of general-purpose registers per processor.
const NumRegs = 64

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	HALT
	// ALU register forms: Rd <- Rs op Rt.
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	SLT // Rd <- 1 if Rs < Rt else 0
	// Immediate forms: Rd <- Rs op Imm (LDI: Rd <- Imm; MOV: Rd <- Rs).
	LDI
	MOV
	ADDI
	SUBI
	MULI
	DIVI
	// Memory: LD Rd <- Mem[Rs+Imm]; ST Mem[Rs+Imm] <- Rt.
	LD
	ST
	// FAA atomically adds Rt to Mem[Rs+Imm] and returns the old value in
	// Rd. It exists so software barriers (the baselines of experiment E2)
	// can be written as simulator programs.
	FAA
	// Control flow. Branches compare Rs against Rt.
	BR  // unconditional, to Target
	BEQ // if Rs == Rt
	BNE // if Rs != Rt
	BLT // if Rs <  Rt
	BLE // if Rs <= Rt
	BGT // if Rs >  Rt
	BGE // if Rs >= Rt
	// BARRIER loads the processor's barrier register: tag from Imm, mask
	// from Imm2 (bit j set = synchronize with processor j). This is the
	// paper's "single instruction ... to initialize a barrier".
	BARRIER
	// WORK keeps the processor busy for Imm cycles; it stands in for
	// loop-body computation whose exact content is irrelevant to an
	// experiment.
	WORK
	// WORKR is WORK with the duration taken from register Rs, for
	// workloads whose per-iteration cost is computed at run time.
	WORKR
	// CALL pushes the return address onto the processor's internal call
	// stack and jumps to Target; RET pops and returns. They exist to
	// study the Section 9 future-work question of procedure calls from
	// barrier regions (experiment E13).
	CALL
	RET
	// BENTER/BEXIT are the alternative region encoding of Section 6:
	// explicit instructions marking entry to and exit from a barrier
	// region. In marker mode the simulator derives region membership from
	// these instead of the per-instruction bit.
	BENTER
	BEXIT
	numOps // sentinel; must stay last
)

var opNames = [...]string{
	NOP: "NOP", HALT: "HALT",
	ADD: "ADD", SUB: "SUB", MUL: "MUL", DIV: "DIV", MOD: "MOD",
	AND: "AND", OR: "OR", XOR: "XOR", SHL: "SHL", SHR: "SHR", SLT: "SLT",
	LDI: "LDI", MOV: "MOV", ADDI: "ADDI", SUBI: "SUBI", MULI: "MULI", DIVI: "DIVI",
	LD: "LD", ST: "ST", FAA: "FAA",
	BR: "BR", BEQ: "BEQ", BNE: "BNE", BLT: "BLT", BLE: "BLE", BGT: "BGT", BGE: "BGE",
	BARRIER: "BARRIER", WORK: "WORK", WORKR: "WORKR", CALL: "CALL", RET: "RET",
	BENTER: "BENTER", BEXIT: "BEXIT",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsBranch reports whether the opcode transfers control.
func (o Op) IsBranch() bool {
	switch o {
	case BR, BEQ, BNE, BLT, BLE, BGT, BGE:
		return true
	}
	return false
}

// IsConditional reports whether the branch is conditional.
func (o Op) IsConditional() bool { return o.IsBranch() && o != BR }

// IsMemory reports whether the opcode accesses memory.
func (o Op) IsMemory() bool { return o == LD || o == ST || o == FAA }

// Instr is a single machine instruction.
//
// Barrier is the paper's per-instruction barrier-region bit. In marker
// mode (programs built around BENTER/BEXIT) the bit is ignored by the
// simulator and region membership is tracked dynamically.
type Instr struct {
	Op      Op
	Rd      Reg
	Rs      Reg
	Rt      Reg
	Imm     int64
	Imm2    int64  // second immediate: mask operand of BARRIER
	Target  int    // resolved branch target (instruction index)
	Label   string // optional label naming this instruction
	Sym     string // unresolved branch target symbol (used by the assembler/builder)
	Barrier bool   // barrier-region bit
	Comment string
}

// String renders the instruction in assembler syntax (without label).
func (in Instr) String() string {
	bit := ""
	if in.Barrier {
		bit = " !b"
	}
	body := func() string {
		switch in.Op {
		case NOP, HALT, BENTER, BEXIT:
			return in.Op.String()
		case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT:
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
		case LDI:
			return fmt.Sprintf("LDI r%d, %d", in.Rd, in.Imm)
		case MOV:
			return fmt.Sprintf("MOV r%d, r%d", in.Rd, in.Rs)
		case ADDI, SUBI, MULI, DIVI:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
		case LD:
			return fmt.Sprintf("LD r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
		case ST:
			return fmt.Sprintf("ST r%d, %d(r%d)", in.Rt, in.Imm, in.Rs)
		case FAA:
			return fmt.Sprintf("FAA r%d, %d(r%d), r%d", in.Rd, in.Imm, in.Rs, in.Rt)
		case BR:
			return fmt.Sprintf("BR %s", in.targetStr())
		case BEQ, BNE, BLT, BLE, BGT, BGE:
			return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs, in.Rt, in.targetStr())
		case BARRIER:
			return fmt.Sprintf("BARRIER tag=%d, mask=%#x", in.Imm, in.Imm2)
		case WORK:
			return fmt.Sprintf("WORK %d", in.Imm)
		case WORKR:
			return fmt.Sprintf("WORKR r%d", in.Rs)
		case CALL:
			return fmt.Sprintf("CALL %s", in.targetStr())
		case RET:
			return "RET"
		}
		return in.Op.String()
	}()
	if in.Comment != "" {
		return body + bit + " ; " + in.Comment
	}
	return body + bit
}

func (in Instr) targetStr() string {
	if in.Sym != "" {
		return in.Sym
	}
	return fmt.Sprintf("@%d", in.Target)
}
