package isa

import (
	"fmt"
	"strings"
)

// AsmText renders the program as assembler source that Assemble parses
// back into an equivalent program: same instructions, same barrier-region
// structure, same labels (synthesizing labels for branch targets that
// lack one). It is the inverse of Assemble up to label naming, and is
// what cmd/fuzzsim-compatible files look like.
func (p *Program) AsmText() string {
	var sb strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&sb, ".program %s\n", sanitizeName(p.Name))
	}
	if p.Mode == ModeMarker {
		sb.WriteString(".mode marker\n")
	}

	// Ensure every branch target has a label.
	labels := make(map[int]string)
	for i, in := range p.Code {
		if in.Label != "" {
			labels[i] = in.Label
		}
	}
	next := 0
	for _, in := range p.Code {
		if !in.Op.IsBranch() && in.Op != CALL {
			continue
		}
		if _, ok := labels[in.Target]; !ok {
			for {
				cand := fmt.Sprintf("L%d", next)
				next++
				if !labelTaken(labels, cand) {
					labels[in.Target] = cand
					break
				}
			}
		}
	}

	inBar := false
	for i, in := range p.Code {
		if p.Mode == ModeBit && in.Barrier != inBar {
			inBar = in.Barrier
			if inBar {
				sb.WriteString(".barrier\n")
			} else {
				sb.WriteString(".nonbarrier\n")
			}
		}
		if lbl, ok := labels[i]; ok {
			fmt.Fprintf(&sb, "%s:\n", lbl)
		}
		sb.WriteString("    ")
		sb.WriteString(renderAsm(in, labels))
		if in.Comment != "" {
			sb.WriteString(" ; ")
			sb.WriteString(strings.ReplaceAll(in.Comment, "\n", " "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func labelTaken(labels map[int]string, name string) bool {
	for _, l := range labels {
		if l == name {
			return true
		}
	}
	return false
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "prog"
	}
	return string(out)
}

// renderAsm renders one instruction in Assemble-compatible syntax.
func renderAsm(in Instr, labels map[int]string) string {
	target := func() string {
		if l, ok := labels[in.Target]; ok {
			return l
		}
		return fmt.Sprintf("L_%d", in.Target)
	}
	switch in.Op {
	case NOP, HALT, BENTER, BEXIT:
		return in.Op.String()
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR, SLT:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	case LDI:
		return fmt.Sprintf("LDI r%d, %d", in.Rd, in.Imm)
	case MOV:
		return fmt.Sprintf("MOV r%d, r%d", in.Rd, in.Rs)
	case ADDI, SUBI, MULI, DIVI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case LD:
		return fmt.Sprintf("LD r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case ST:
		return fmt.Sprintf("ST r%d, %d(r%d)", in.Rt, in.Imm, in.Rs)
	case FAA:
		return fmt.Sprintf("FAA r%d, %d(r%d), r%d", in.Rd, in.Imm, in.Rs, in.Rt)
	case BR:
		return "BR " + target()
	case CALL:
		return "CALL " + target()
	case RET:
		return "RET"
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs, in.Rt, target())
	case BARRIER:
		return fmt.Sprintf("BARRIER %d, %d", in.Imm, in.Imm2)
	case WORK:
		return fmt.Sprintf("WORK %d", in.Imm)
	case WORKR:
		return fmt.Sprintf("WORKR r%d", in.Rs)
	}
	return in.Op.String()
}
