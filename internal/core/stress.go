package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stress is a weak-memory stress harness for the runtime barriers: the
// model-checking counterpart internal/check proves the *cluster*
// protocols over every message interleaving; this harness hammers the
// shared-memory barriers (FuzzyBarrier, TreeBarrier, HierBarrier,
// DynamicBarrier, ReduceBarrier, Phaser) under randomized
// arrive/wait/register/leave schedules and runtime.Gosched storms, and
// cross-checks what cannot be enumerated: the Go memory model's
// happens-before edges and the BarrierStats accounting.
//
// Detection is layered:
//
//   - plain (non-atomic) per-worker slots are written before Arrive and
//     read after Wait. A Wait that returns before every member arrived
//     reads a slot concurrently with its writer — a value-level stale
//     read counted in the report, and, under `go test -race`, a
//     reported data race even when the values happen to agree.
//   - the reduce harness compares every phase's WaitValue against the
//     serial fold of that phase's contributions (the operator is drawn
//     from {sum, xor, min, max} by seed): a dropped, duplicated or
//     torn combine anywhere in the tree shows up as a value mismatch.
//   - the harness counts every Arrive and Wait it issues and checks
//     the barrier's own counters against them: Arrivals and Waits must
//     match exactly, Syncs must equal the final Epoch, the wait-spin
//     histogram must sum to Waits() (with the exhausted overflow bucket
//     equal to LockWaits+Blocks), and SpinIters must cover every
//     spin-resolved Wait. Lost or double-counted updates on the stats
//     hot path show up here.
//
// The Gosched storms matter: they force goroutine migration and
// preemption at random points inside the arrive/region/wait window, so
// publication races that need an ill-timed context switch (the class of
// bug TestRaceDynamicRegisterDuringCompletion pins) actually get their
// ill-timed context switches.

// StressConfig configures one stress run.
type StressConfig struct {
	Barrier string // "fuzzy", "tree", "hier", "dynamic", "reduce" or "phaser"
	Workers int    // permanent members (>= 1)
	Phases  int    // synchronization episodes per permanent member

	// Seed makes the per-worker schedule randomization reproducible;
	// the interleavings themselves remain up to the scheduler.
	Seed uint64

	// SpinLimit is passed to the barrier; small values steer Waits onto
	// the block path, 0 keeps DefaultSpinLimit.
	SpinLimit int

	TreeRadix int // tree/reduce/hier only; 0 = DefaultTreeRadix

	// HierShards pins the hier barrier's shard count; 0 keeps the
	// GOMAXPROCS-derived default. Hier only.
	HierShards int

	// Churners adds transient members (dynamic and phaser): each
	// repeatedly Registers, rides along for a few phases, and leaves,
	// exercising membership transitions against phase completion.
	// Dynamic churners are ordinary members; phaser churners register as
	// signal-only producers or wait-only consumers (chosen per round by
	// seed). The churn volume is bounded well below Phases so churners
	// always drain while the permanent members still drive phases.
	Churners int
}

// StressReport is the outcome of one stress run.
type StressReport struct {
	Config StressConfig
	Stats  BarrierStats

	Epoch      int64  // barrier epoch at the end of the run
	StaleReads int64  // slot reads that observed a pre-arrival value
	ChurnJoins int64  // completed register..ride..leave rounds
	Arrivals   int64  // Arrive/ArriveAndLeave calls the harness issued
	Waits      int64  // Wait calls the harness issued
	ReduceOp   string // reduce only: the seed-chosen operator name
	ReduceBad  int64  // reduce only: WaitValue results != the serial fold
	Violations []string
}

// Ok reports whether the run completed with no invariant violations.
func (r *StressReport) Ok() bool { return len(r.Violations) == 0 }

func (r *StressReport) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders a one-line summary.
func (r *StressReport) String() string {
	verdict := "ok"
	if !r.Ok() {
		verdict = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	name := r.Config.Barrier
	if r.ReduceOp != "" {
		name += "/" + r.ReduceOp
	}
	return fmt.Sprintf("%s workers=%d phases=%d churners=%d: epoch=%d arrivals=%d waits=%d churn-joins=%d — %s",
		name, r.Config.Workers, r.Config.Phases, r.Config.Churners,
		r.Epoch, r.Arrivals, r.Waits, r.ChurnJoins, verdict)
}

// stressRNG is a splitmix64 schedule randomizer, one per worker.
type stressRNG uint64

func (r *stressRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// storm yields the processor a random number of times, at a random
// fraction of call sites — the scheduling perturbation that shakes out
// publication races.
func (r *stressRNG) storm() {
	if v := r.next(); v&3 == 0 {
		for i := uint64(0); i < (v>>2)&31; i++ {
			runtime.Gosched()
		}
	}
}

// stressBarrier is the slice of SplitBarrier the harness needs; it is
// satisfied by FuzzyBarrier, TreeBarrier, HierBarrier and
// DynamicBarrier alike.
type stressBarrier interface {
	Arrive() Phase
	TryWait(Phase) bool
	Wait(Phase)
	Await()
	Epoch() int64
	StatsSnapshot() BarrierStats
}

// Stress runs the harness to completion and returns the report. The
// error covers config problems only; property violations are collected
// in the report so callers (tests, make check) can print them all.
func Stress(cfg StressConfig) (*StressReport, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: stress needs >= 1 worker, got %d", cfg.Workers)
	}
	if cfg.Phases < 1 {
		return nil, fmt.Errorf("core: stress needs >= 1 phase, got %d", cfg.Phases)
	}
	if cfg.Churners < 0 {
		return nil, fmt.Errorf("core: negative churner count %d", cfg.Churners)
	}

	var b stressBarrier
	var dyn *DynamicBarrier
	var red *ReduceBarrier
	var phs *Phaser
	var opName string
	var op ReduceOp
	var identity int64
	radix := cfg.TreeRadix
	if radix == 0 {
		radix = DefaultTreeRadix
	}
	switch cfg.Barrier {
	case "fuzzy":
		fb := NewFuzzyBarrier(cfg.Workers)
		fb.SpinLimit = cfg.SpinLimit
		b = fb
	case "tree":
		tb := NewTreeBarrierRadix(cfg.Workers, radix)
		tb.SpinLimit = cfg.SpinLimit
		b = tb
	case "hier":
		hb := NewHierBarrierConfig(cfg.Workers, HierConfig{Shards: cfg.HierShards, Radix: radix})
		hb.SpinLimit = cfg.SpinLimit
		b = hb
	case "dynamic":
		dyn = NewDynamicBarrier(cfg.Workers)
		dyn.SpinLimit = cfg.SpinLimit
		b = dyn
	case "reduce":
		// The operator is drawn by seed so repeated runs cover the whole
		// family; every op here is associative and commutative (sum wraps
		// mod 2^64, which folds identically in any order).
		ops := []struct {
			name     string
			op       ReduceOp
			identity int64
		}{
			{"sum", OpSum, IdentitySum},
			{"xor", OpXor, IdentityXor},
			{"min", OpMin, IdentityMin},
			{"max", OpMax, IdentityMax},
		}
		pick := ops[mix64(cfg.Seed, 0x0b)%uint64(len(ops))]
		opName, op, identity = pick.name, pick.op, pick.identity
		rb := NewReduceBarrierRadix(cfg.Workers, radix, op, identity)
		rb.SpinLimit = cfg.SpinLimit
		red = rb
		b = rb
	case "phaser":
		phs = NewPhaser()
		phs.SpinLimit = cfg.SpinLimit
	default:
		return nil, fmt.Errorf("core: unknown stress barrier %q", cfg.Barrier)
	}
	if cfg.Churners > 0 && dyn == nil && phs == nil {
		return nil, fmt.Errorf("core: churners need the dynamic barrier or phaser, got %q", cfg.Barrier)
	}
	// Each churner round rides at most 4 phases and runs churnRounds
	// times; keep the total well under the permanent members' 2*Phases
	// phases so churners always drain against a live barrier.
	churnRounds := cfg.Phases / 8
	if cfg.Churners > 0 && churnRounds < 1 {
		return nil, fmt.Errorf("core: churn needs >= 8 phases, got %d", cfg.Phases)
	}

	rep := &StressReport{Config: cfg, ReduceOp: opName}
	slots := make([]int64, cfg.Workers+cfg.Churners) // plain slots: the race bait
	var stale, arrivals, waits, churnJoins, reduceBad atomic.Int64

	// Reduce mode: contributions are a pure function of (seed, phase,
	// worker), so the serial fold every WaitValue must equal is computed
	// up front. Only even phases carry data; the odd window-closing phase
	// contributes identities and must reduce to the identity.
	contrib := func(p int64, id int) int64 {
		return int64(mix64(cfg.Seed^0xa5a5a5a5, uint64(p)*1000003+uint64(id)))
	}
	var expectFold []int64
	if red != nil {
		expectFold = make([]int64, cfg.Phases)
		for p := range expectFold {
			acc := identity
			for id := 0; id < cfg.Workers; id++ {
				acc = op(acc, contrib(int64(p), id))
			}
			expectFold[p] = acc
		}
	}

	// wait drives the randomized wait flavor: a few TryWait polls (as a
	// barrier region scheduling more work would), storms, then Wait —
	// WaitValue for the reduce barrier, whose result is returned.
	wait := func(r *stressRNG, ph Phase) int64 {
		for i := uint64(0); i < r.next()&7; i++ {
			b.TryWait(ph)
			r.storm()
		}
		var v int64
		if red != nil {
			v = red.WaitValue(ph)
		} else {
			b.Wait(ph)
		}
		waits.Add(1)
		return v
	}

	var wg sync.WaitGroup
	var permanents []*PhaserMember
	if phs != nil {
		permanents = make([]*PhaserMember, cfg.Workers)
		for w := range permanents {
			permanents[w] = phs.Register(SignalWait)
		}
		finalEpoch := int64(2 * cfg.Phases) // the permanents' last phase boundary
		// Wait-only churners cannot read the plain slots: unlike a
		// dynamic-barrier churner, a wait-only member does not gate the
		// next phase, so the permanents' next writes have no
		// happens-before edge to its reads — a real data race, not just
		// bait. They check the ordering property through these atomic
		// mirrors instead (value-level teeth only; the -race teeth for the
		// consumer path live in TestPhaserPointToPoint, where each slot is
		// written exactly once).
		mirror := make([]atomic.Int64, cfg.Workers)
		waitMember := func(r *stressRNG, m *PhaserMember, ph Phase) {
			for i := uint64(0); i < r.next()&7; i++ {
				m.TryWait(ph)
				r.storm()
			}
			m.Wait(ph)
			waits.Add(1)
		}
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(id int, m *PhaserMember) {
				defer wg.Done()
				r := stressRNG(mix64(cfg.Seed, uint64(id)+1))
				for p := int64(0); p < int64(cfg.Phases); p++ {
					r.storm()
					slots[id] = p + 1 // plain write, ordered only by the phaser
					mirror[id].Store(p + 1)
					r.storm()
					ph := m.Arrive()
					arrivals.Add(1)
					waitMember(&r, m, ph)
					// Every permanent signaler must have written p+1 before
					// any Wait for this phase returned.
					for j := 0; j < cfg.Workers; j++ {
						if slots[j] < p+1 {
							stale.Add(1)
						}
					}
					// Close the read window with a second phase.
					ph = m.Arrive()
					arrivals.Add(1)
					waitMember(&r, m, ph)
				}
			}(w, permanents[w])
		}
		for c := 0; c < cfg.Churners; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				r := stressRNG(mix64(cfg.Seed, uint64(cfg.Workers+id)+0x5bd1))
				for round := 0; round < churnRounds; round++ {
					r.storm()
					if r.next()&1 == 0 {
						// Signal-only producer: gates phases while registered,
						// may run ahead of the group, never waits.
						m := phs.Register(SignalOnly)
						ride := 1 + r.next()&3
						for p := uint64(0); p < ride; p++ {
							slots[cfg.Workers+id]++ // plain write on the churner's own slot
							m.Arrive()
							arrivals.Add(1)
							r.storm()
						}
						m.Deregister()
					} else {
						// Wait-only consumer: observes phase boundaries
						// without gating them.
						m := phs.Register(WaitOnly)
						ride := 1 + r.next()&3
						for p := uint64(0); p < ride; p++ {
							ph := m.Arrive()
							arrivals.Add(1)
							// A ticket at or past the permanents' final phase
							// would only be released by the drain publish,
							// which happens after every churner has exited —
							// waiting on it would deadlock the drain.
							if ph.epoch < finalEpoch {
								waitMember(&r, m, ph)
								// The permanents' phase-e signal (e even)
								// happens after their mirror store for logical
								// phase e/2, and the ticket epoch is read
								// under the phaser mutex, so waiting past the
								// boundary guarantees every mirror already
								// holds e/2+1 — checked on the atomic mirrors
								// (see their declaration for why the plain
								// slots are off limits here).
								if ph.epoch%2 == 0 {
									expect := ph.epoch/2 + 1
									if max := int64(cfg.Phases); expect > max {
										expect = max
									}
									for j := 0; j < cfg.Workers; j++ {
										if mirror[j].Load() < expect {
											stale.Add(1)
										}
									}
								}
							}
							r.storm()
						}
						m.Deregister()
					}
					churnJoins.Add(1)
				}
			}(c)
		}
	} else {
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				r := stressRNG(mix64(cfg.Seed, uint64(id)+1))
				for p := int64(0); p < int64(cfg.Phases); p++ {
					r.storm()
					slots[id] = p + 1 // plain write, ordered only by the barrier
					r.storm()
					var ph Phase
					if red != nil {
						ph = red.ArriveValue(contrib(p, id))
					} else {
						ph = b.Arrive()
					}
					arrivals.Add(1)
					if got := wait(&r, ph); red != nil && got != expectFold[p] {
						reduceBad.Add(1)
					}
					// Every permanent member must have written p+1 before any
					// Wait for this phase returned.
					for j := 0; j < cfg.Workers; j++ {
						if slots[j] < p+1 {
							stale.Add(1)
						}
					}
					// Close the read window with a second phase so the reads
					// above are ordered before the next round of writes.
					ph = b.Arrive()
					arrivals.Add(1)
					if got := wait(&r, ph); red != nil && got != identity {
						reduceBad.Add(1)
					}
				}
				if dyn != nil {
					dyn.ArriveAndLeave()
					arrivals.Add(1)
				}
			}(w)
		}
		for c := 0; c < cfg.Churners; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				r := stressRNG(mix64(cfg.Seed, uint64(cfg.Workers+id)+0x5bd1))
				for round := 0; round < churnRounds; round++ {
					r.storm()
					dyn.Register()
					ride := 1 + r.next()&3
					for p := uint64(0); p < ride; p++ {
						slots[cfg.Workers+id]++ // plain write on the churner's own slot
						ph := dyn.Arrive()
						arrivals.Add(1)
						wait(&r, ph)
						// The permanent members write their slots before even
						// phases and read them back before odd phases close the
						// window; a churner may therefore only read the slots
						// when its ticket names an even phase — which also says
						// exactly which value each slot must already hold. (On
						// odd phases the permanents' next writes are concurrent
						// with us, so reading would be a real data race; the
						// ticket epoch is trustworthy because Arrive reads it in
						// the same critical section that counts the arrival —
						// the exact guarantee the mutex rework of dynamic.go
						// added.)
						if ph.epoch%2 == 0 {
							expect := ph.epoch/2 + 1
							if max := int64(cfg.Phases); expect > max {
								expect = max
							}
							for j := 0; j < cfg.Workers; j++ {
								if slots[j] < expect {
									stale.Add(1)
								}
							}
						}
					}
					dyn.ArriveAndLeave()
					arrivals.Add(1)
					churnJoins.Add(1)
				}
			}(c)
		}
	}
	wg.Wait()

	if phs != nil {
		// Permanents leave last; the final Deregister drains the phaser
		// and publishes the closing episode.
		for _, m := range permanents {
			m.Deregister()
		}
		rep.Stats = phs.StatsSnapshot()
		rep.Epoch = phs.Epoch()
	} else {
		rep.Stats = b.StatsSnapshot()
		rep.Epoch = b.Epoch()
	}
	rep.StaleReads = stale.Load()
	rep.ChurnJoins = churnJoins.Load()
	rep.Arrivals = arrivals.Load()
	rep.Waits = waits.Load()
	rep.ReduceBad = reduceBad.Load()
	rep.check(dyn, phs)
	return rep, nil
}

// check cross-validates the barrier's counters against the harness's
// own accounting and the stats invariants.
func (rep *StressReport) check(dyn *DynamicBarrier, phs *Phaser) {
	cfg, s := rep.Config, rep.Stats
	if rep.StaleReads > 0 {
		rep.violatef("%d stale slot reads: some Wait returned before every member arrived", rep.StaleReads)
	}
	if rep.ReduceBad > 0 {
		rep.violatef("%d reduce results (op %s) differed from the serial fold", rep.ReduceBad, rep.ReduceOp)
	}
	if s.Arrivals != rep.Arrivals {
		rep.violatef("stats.Arrivals = %d, harness issued %d", s.Arrivals, rep.Arrivals)
	}
	if got := s.Waits(); got != rep.Waits {
		rep.violatef("stats.Waits() = %d, harness issued %d", got, rep.Waits)
	}
	if s.Syncs != rep.Epoch {
		rep.violatef("stats.Syncs = %d, epoch = %d", s.Syncs, rep.Epoch)
	}
	var hist int64
	for _, c := range s.WaitSpins {
		hist += c
	}
	if want := s.Waits(); hist != want {
		rep.violatef("wait-spin histogram sums to %d, Waits() = %d", hist, want)
	}
	if exhausted := s.WaitSpins[NumWaitBuckets-1]; exhausted != s.LockWaits+s.Blocks {
		rep.violatef("exhausted bucket = %d, LockWaits+Blocks = %d", exhausted, s.LockWaits+s.Blocks)
	}
	if s.SpinIters < s.SpinWaits {
		rep.violatef("SpinIters = %d < SpinWaits = %d (each spin-resolved Wait needs >= 1 iteration)",
			s.SpinIters, s.SpinWaits)
	}
	switch {
	case dyn != nil:
		if m := dyn.Members(); m != 0 {
			rep.violatef("members after drain = %d, want 0", m)
		}
		if want := int64(2 * cfg.Phases); rep.Epoch < want {
			rep.violatef("epoch = %d, want >= %d", rep.Epoch, want)
		}
	case phs != nil:
		if m := phs.Members(); m != 0 {
			rep.violatef("phaser members after drain = %d, want 0", m)
		}
		// The permanents' signals complete exactly 2*Phases phases (the
		// transient signalers never lag past their deregistration), and
		// the drain publishes exactly one more.
		if want := int64(2*cfg.Phases) + 1; rep.Epoch != want {
			rep.violatef("epoch = %d, want %d", rep.Epoch, want)
		}
	default:
		// Fixed membership: exactly 2 phases per logical phase, every
		// worker waits on both.
		if want := int64(2 * cfg.Phases); rep.Epoch != want {
			rep.violatef("epoch = %d, want %d", rep.Epoch, want)
		}
	}
}

// mix64 is splitmix64 over a seed/stream pair, for decorrelated
// per-worker schedule streams.
func mix64(seed, stream uint64) uint64 {
	z := seed + stream*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
