package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stress is a weak-memory stress harness for the runtime barriers: the
// model-checking counterpart internal/check proves the *cluster*
// protocols over every message interleaving; this harness hammers the
// shared-memory barriers (FuzzyBarrier, TreeBarrier, DynamicBarrier)
// under randomized arrive/wait/register/leave schedules and
// runtime.Gosched storms, and cross-checks what cannot be enumerated:
// the Go memory model's happens-before edges and the BarrierStats
// accounting.
//
// Detection is two-layered:
//
//   - plain (non-atomic) per-worker slots are written before Arrive and
//     read after Wait. A Wait that returns before every member arrived
//     reads a slot concurrently with its writer — a value-level stale
//     read counted in the report, and, under `go test -race`, a
//     reported data race even when the values happen to agree.
//   - the harness counts every Arrive and Wait it issues and checks
//     the barrier's own counters against them: Arrivals and Waits must
//     match exactly, Syncs must equal the final Epoch, the wait-spin
//     histogram must sum to SpinWaits, and SpinIters must cover every
//     spin-resolved Wait. Lost or double-counted updates on the stats
//     hot path show up here.
//
// The Gosched storms matter: they force goroutine migration and
// preemption at random points inside the arrive/region/wait window, so
// publication races that need an ill-timed context switch (the class of
// bug TestRaceDynamicRegisterDuringCompletion pins) actually get their
// ill-timed context switches.

// StressConfig configures one stress run.
type StressConfig struct {
	Barrier string // "fuzzy", "tree" or "dynamic"
	Workers int    // permanent members (>= 1)
	Phases  int    // synchronization episodes per permanent member

	// Seed makes the per-worker schedule randomization reproducible;
	// the interleavings themselves remain up to the scheduler.
	Seed uint64

	// SpinLimit is passed to the barrier; small values steer Waits onto
	// the block path, 0 keeps DefaultSpinLimit.
	SpinLimit int

	TreeRadix int // tree only; 0 = DefaultTreeRadix

	// Churners adds transient members (dynamic only): each repeatedly
	// Registers, rides along for a few phases, and ArriveAndLeaves,
	// exercising membership transitions against phase completion. The
	// churn volume is bounded well below Phases so churners always
	// drain while the permanent members still drive phases.
	Churners int
}

// StressReport is the outcome of one stress run.
type StressReport struct {
	Config StressConfig
	Stats  BarrierStats

	Epoch      int64 // barrier epoch at the end of the run
	StaleReads int64 // slot reads that observed a pre-arrival value
	ChurnJoins int64 // completed Register..ArriveAndLeave rounds
	Arrivals   int64 // Arrive/ArriveAndLeave calls the harness issued
	Waits      int64 // Wait calls the harness issued
	Violations []string
}

// Ok reports whether the run completed with no invariant violations.
func (r *StressReport) Ok() bool { return len(r.Violations) == 0 }

func (r *StressReport) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders a one-line summary.
func (r *StressReport) String() string {
	verdict := "ok"
	if !r.Ok() {
		verdict = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	return fmt.Sprintf("%s workers=%d phases=%d churners=%d: epoch=%d arrivals=%d waits=%d churn-joins=%d — %s",
		r.Config.Barrier, r.Config.Workers, r.Config.Phases, r.Config.Churners,
		r.Epoch, r.Arrivals, r.Waits, r.ChurnJoins, verdict)
}

// stressRNG is a splitmix64 schedule randomizer, one per worker.
type stressRNG uint64

func (r *stressRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// storm yields the processor a random number of times, at a random
// fraction of call sites — the scheduling perturbation that shakes out
// publication races.
func (r *stressRNG) storm() {
	if v := r.next(); v&3 == 0 {
		for i := uint64(0); i < (v>>2)&31; i++ {
			runtime.Gosched()
		}
	}
}

// stressBarrier is the slice of SplitBarrier the harness needs; it is
// satisfied by FuzzyBarrier, TreeBarrier and DynamicBarrier alike.
type stressBarrier interface {
	Arrive() Phase
	TryWait(Phase) bool
	Wait(Phase)
	Await()
	Epoch() int64
	StatsSnapshot() BarrierStats
}

// Stress runs the harness to completion and returns the report. The
// error covers config problems only; property violations are collected
// in the report so callers (tests, make check) can print them all.
func Stress(cfg StressConfig) (*StressReport, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: stress needs >= 1 worker, got %d", cfg.Workers)
	}
	if cfg.Phases < 1 {
		return nil, fmt.Errorf("core: stress needs >= 1 phase, got %d", cfg.Phases)
	}
	if cfg.Churners < 0 {
		return nil, fmt.Errorf("core: negative churner count %d", cfg.Churners)
	}

	var b stressBarrier
	var dyn *DynamicBarrier
	switch cfg.Barrier {
	case "fuzzy":
		fb := NewFuzzyBarrier(cfg.Workers)
		fb.SpinLimit = cfg.SpinLimit
		b = fb
	case "tree":
		radix := cfg.TreeRadix
		if radix == 0 {
			radix = DefaultTreeRadix
		}
		tb := NewTreeBarrierRadix(cfg.Workers, radix)
		tb.SpinLimit = cfg.SpinLimit
		b = tb
	case "dynamic":
		dyn = NewDynamicBarrier(cfg.Workers)
		dyn.SpinLimit = cfg.SpinLimit
		b = dyn
	default:
		return nil, fmt.Errorf("core: unknown stress barrier %q", cfg.Barrier)
	}
	if cfg.Churners > 0 && dyn == nil {
		return nil, fmt.Errorf("core: churners need the dynamic barrier, got %q", cfg.Barrier)
	}
	// Each churner round rides at most 4 phases and runs churnRounds
	// times; keep the total well under the permanent members' 2*Phases
	// phases so churners always drain against a live barrier.
	churnRounds := cfg.Phases / 8
	if cfg.Churners > 0 && churnRounds < 1 {
		return nil, fmt.Errorf("core: churn needs >= 8 phases, got %d", cfg.Phases)
	}

	rep := &StressReport{Config: cfg}
	slots := make([]int64, cfg.Workers+cfg.Churners) // plain slots: the race bait
	var stale, arrivals, waits, churnJoins atomic.Int64

	// wait drives the randomized wait flavor: a few TryWait polls (as a
	// barrier region scheduling more work would), storms, then Wait.
	wait := func(r *stressRNG, ph Phase) {
		for i := uint64(0); i < r.next()&7; i++ {
			b.TryWait(ph)
			r.storm()
		}
		b.Wait(ph)
		waits.Add(1)
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := stressRNG(mix64(cfg.Seed, uint64(id)+1))
			for p := int64(0); p < int64(cfg.Phases); p++ {
				r.storm()
				slots[id] = p + 1 // plain write, ordered only by the barrier
				r.storm()
				ph := b.Arrive()
				arrivals.Add(1)
				wait(&r, ph)
				// Every permanent member must have written p+1 before any
				// Wait for this phase returned.
				for j := 0; j < cfg.Workers; j++ {
					if slots[j] < p+1 {
						stale.Add(1)
					}
				}
				// Close the read window with a second phase so the reads
				// above are ordered before the next round of writes.
				ph = b.Arrive()
				arrivals.Add(1)
				wait(&r, ph)
			}
			if dyn != nil {
				dyn.ArriveAndLeave()
				arrivals.Add(1)
			}
		}(w)
	}
	for c := 0; c < cfg.Churners; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := stressRNG(mix64(cfg.Seed, uint64(cfg.Workers+id)+0x5bd1))
			for round := 0; round < churnRounds; round++ {
				r.storm()
				dyn.Register()
				ride := 1 + r.next()&3
				for p := uint64(0); p < ride; p++ {
					slots[cfg.Workers+id]++ // plain write on the churner's own slot
					ph := dyn.Arrive()
					arrivals.Add(1)
					wait(&r, ph)
					// The permanent members write their slots before even
					// phases and read them back before odd phases close the
					// window; a churner may therefore only read the slots
					// when its ticket names an even phase — which also says
					// exactly which value each slot must already hold. (On
					// odd phases the permanents' next writes are concurrent
					// with us, so reading would be a real data race; the
					// ticket epoch is trustworthy because Arrive reads it in
					// the same critical section that counts the arrival —
					// the exact guarantee the mutex rework of dynamic.go
					// added.)
					if ph.epoch%2 == 0 {
						expect := ph.epoch/2 + 1
						if max := int64(cfg.Phases); expect > max {
							expect = max
						}
						for j := 0; j < cfg.Workers; j++ {
							if slots[j] < expect {
								stale.Add(1)
							}
						}
					}
				}
				dyn.ArriveAndLeave()
				arrivals.Add(1)
				churnJoins.Add(1)
			}
		}(c)
	}
	wg.Wait()

	rep.Stats = b.StatsSnapshot()
	rep.Epoch = b.Epoch()
	rep.StaleReads = stale.Load()
	rep.ChurnJoins = churnJoins.Load()
	rep.Arrivals = arrivals.Load()
	rep.Waits = waits.Load()
	rep.check(dyn)
	return rep, nil
}

// check cross-validates the barrier's counters against the harness's
// own accounting and the stats invariants.
func (rep *StressReport) check(dyn *DynamicBarrier) {
	cfg, s := rep.Config, rep.Stats
	if rep.StaleReads > 0 {
		rep.violatef("%d stale slot reads: some Wait returned before every member arrived", rep.StaleReads)
	}
	if s.Arrivals != rep.Arrivals {
		rep.violatef("stats.Arrivals = %d, harness issued %d", s.Arrivals, rep.Arrivals)
	}
	if got := s.Waits(); got != rep.Waits {
		rep.violatef("stats.Waits() = %d, harness issued %d", got, rep.Waits)
	}
	if s.Syncs != rep.Epoch {
		rep.violatef("stats.Syncs = %d, epoch = %d", s.Syncs, rep.Epoch)
	}
	var hist int64
	for _, c := range s.WaitSpins {
		hist += c
	}
	if hist != s.SpinWaits {
		rep.violatef("wait-spin histogram sums to %d, SpinWaits = %d", hist, s.SpinWaits)
	}
	if s.SpinIters < s.SpinWaits {
		rep.violatef("SpinIters = %d < SpinWaits = %d (each spin-resolved Wait needs >= 1 iteration)",
			s.SpinIters, s.SpinWaits)
	}
	if dyn == nil {
		// Fixed membership: exactly 2 phases per logical phase, every
		// worker waits on both.
		if want := int64(2 * cfg.Phases); rep.Epoch != want {
			rep.violatef("epoch = %d, want %d", rep.Epoch, want)
		}
	} else {
		if m := dyn.Members(); m != 0 {
			rep.violatef("members after drain = %d, want 0", m)
		}
		if want := int64(2 * cfg.Phases); rep.Epoch < want {
			rep.violatef("epoch = %d, want >= %d", rep.Epoch, want)
		}
	}
}

// mix64 is splitmix64 over a seed/stream pair, for decorrelated
// per-worker schedule streams.
func mix64(seed, stream uint64) uint64 {
	z := seed + stream*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
