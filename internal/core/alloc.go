package core

import (
	"errors"
	"fmt"
	"sync"
)

// This file implements the multiple-barrier discipline of Section 5.
//
// When streams are created dynamically, different subsets of streams that
// do not know of each other's existence must use logically distinct
// barriers, identified by tags. Creation of every stream requires
// allocation of at most one barrier — the one it shares with its parent —
// so a system with N processors (at most N streams) needs at most N−1
// barriers. Streams that synchronize repeatedly reuse their shared
// barrier, and disjoint subsets of a group sharing a barrier synchronize
// independently by manipulating masks.

// ErrNoBarriers is returned when the allocator's tag space is exhausted.
var ErrNoBarriers = errors.New("core: no free barrier tags")

// Allocator hands out logical barrier tags. Capacity is 2^bits − 1 tags
// (tag 0 is reserved to mean "not participating"), bounded additionally by
// maxLive, the N−1 bound of Section 5.
type Allocator struct {
	mu      sync.Mutex
	free    []Tag
	next    Tag
	limit   Tag
	live    int
	maxLive int
	peak    int
}

// NewAllocator creates an allocator for a system of nprocs processors
// using tagBits-bit tags. maxLive is capped at nprocs−1 (with a floor of
// one barrier for degenerate single-processor systems).
func NewAllocator(nprocs, tagBits int) *Allocator {
	if tagBits < 1 || tagBits > 63 {
		panic(fmt.Sprintf("core: tagBits %d out of range [1,63]", tagBits))
	}
	maxLive := nprocs - 1
	if maxLive < 1 {
		maxLive = 1
	}
	return &Allocator{next: 1, limit: (1 << uint(tagBits)) - 1, maxLive: maxLive}
}

// Alloc reserves a fresh tag and returns a fuzzy barrier for n
// participants carrying that tag.
func (a *Allocator) Alloc(n int) (*FuzzyBarrier, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.live >= a.maxLive {
		return nil, fmt.Errorf("%w: %d barriers live, bound is N-1 = %d", ErrNoBarriers, a.live, a.maxLive)
	}
	var tag Tag
	switch {
	case len(a.free) > 0:
		tag = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
	case a.next <= a.limit:
		tag = a.next
		a.next++
	default:
		return nil, fmt.Errorf("%w: tag space of %d exhausted", ErrNoBarriers, a.limit)
	}
	a.live++
	if a.live > a.peak {
		a.peak = a.live
	}
	return NewTaggedFuzzyBarrier(n, tag), nil
}

// Release returns a barrier's tag to the allocator. The caller must ensure
// no stream still uses the barrier.
func (a *Allocator) Release(b *FuzzyBarrier) {
	if b == nil || b.Tag() == TagNone {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, b.Tag())
	a.live--
}

// Live returns the number of currently allocated barriers.
func (a *Allocator) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// Peak returns the maximum number of simultaneously live barriers — the
// quantity Section 5 bounds by N−1.
func (a *Allocator) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Stream is one dynamically created instruction stream in a SpawnTree.
// Each stream (except the root) shares one barrier with its parent,
// allocated when the stream was spawned — Figure 6's pattern, where
// barriers are "essentially being used to merge streams".
type Stream struct {
	ID     int
	parent *Stream
	shared *FuzzyBarrier // barrier shared with parent; nil for the root
	tree   *SpawnTree
}

// Barrier returns the barrier this stream shares with its parent (nil for
// the root stream).
func (s *Stream) Barrier() *FuzzyBarrier { return s.shared }

// SyncWithParent performs a point synchronization with the parent stream
// on the shared barrier. Parent and child must pair calls:
// child.SyncWithParent ↔ parent.SyncWithChild(child).
func (s *Stream) SyncWithParent() error {
	if s.shared == nil {
		return errors.New("core: root stream has no parent barrier")
	}
	s.shared.Await()
	return nil
}

// SyncWithChild is the parent-side counterpart of SyncWithParent.
func (s *Stream) SyncWithChild(child *Stream) error {
	if child.parent != s {
		return fmt.Errorf("core: stream %d is not a child of stream %d", child.ID, s.ID)
	}
	child.shared.Await()
	return nil
}

// SpawnTree tracks dynamically created streams and their barriers,
// enforcing the Section 5 invariant: the first stream needs no barrier and
// every subsequent stream allocates at most one.
type SpawnTree struct {
	mu     sync.Mutex
	alloc  *Allocator
	nextID int
	liveN  int
}

// NewSpawnTree creates a spawn tree for a system of nprocs processors with
// tagBits-bit tags, and returns the tree together with its root stream.
func NewSpawnTree(nprocs, tagBits int) (*SpawnTree, *Stream) {
	t := &SpawnTree{alloc: NewAllocator(nprocs, tagBits), nextID: 1, liveN: 1}
	root := &Stream{ID: 0, tree: t}
	return t, root
}

// Spawn creates a child stream of parent, allocating the one barrier the
// child shares with its parent.
func (t *SpawnTree) Spawn(parent *Stream) (*Stream, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, err := t.alloc.Alloc(2)
	if err != nil {
		return nil, err
	}
	s := &Stream{ID: t.nextID, parent: parent, shared: b, tree: t}
	t.nextID++
	t.liveN++
	return s, nil
}

// Merge performs the final synchronization between child and its parent
// and releases the child's barrier — the stream-merging use of barriers in
// Figure 6. The child goroutine must concurrently call
// child.SyncWithParent (or child.Barrier().Await()).
func (t *SpawnTree) Merge(child *Stream) error {
	if child.shared == nil {
		return errors.New("core: cannot merge the root stream")
	}
	child.shared.Await()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.alloc.Release(child.shared)
	child.shared = nil
	t.liveN--
	return nil
}

// PeakBarriers returns the maximum number of simultaneously live barriers
// the tree has used.
func (t *SpawnTree) PeakBarriers() int { return t.alloc.Peak() }

// LiveStreams returns the number of live (unmerged) streams including the
// root.
func (t *SpawnTree) LiveStreams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveN
}
