package core

import (
	"sync"
	"sync/atomic"
)

// phaseWaiter is the publish/wait half of a split-phase barrier: an
// atomically readable epoch counter published under a mutex, and the
// bounded-spin-then-cond-block slow path of Wait. FuzzyBarrier,
// DynamicBarrier and TreeBarrier differ only in how arrivals are
// *counted*; how a completed phase is published and waited on is
// identical, so it lives here once.
//
// Blocking is counted in RuntimeStats because the Encore measurement
// attributes the cost of conventional barriers to exactly these
// context-save/restore events (Section 8).
type phaseWaiter struct {
	epoch atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
}

func (w *phaseWaiter) init() { w.cond = sync.NewCond(&w.mu) }

// publish completes one phase: the epoch advances under the mutex so a
// concurrent blocked waiter cannot miss the broadcast.
func (w *phaseWaiter) publish() {
	w.mu.Lock()
	w.epoch.Add(1)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// tryWait reports whether the ticket's phase has completed.
func (w *phaseWaiter) tryWait(p Phase) bool { return w.epoch.Load() > p.epoch }

// wait blocks until the ticket's phase completes: fast path if already
// complete, then at most spinLimit spins, then a condition-variable
// block. spinLimit <= 0 selects DefaultSpinLimit.
func (w *phaseWaiter) wait(p Phase, spinLimit int, stats *RuntimeStats) {
	if w.epoch.Load() > p.epoch {
		stats.FastWaits.Add(1)
		return
	}
	if spinLimit <= 0 {
		spinLimit = DefaultSpinLimit
	}
	for i := 0; i < spinLimit; i++ {
		if w.epoch.Load() > p.epoch {
			stats.SpinWaits.Add(1)
			stats.SpinIters.Add(int64(i + 1))
			stats.observeSpin(int64(i + 1))
			return
		}
	}
	stats.SpinIters.Add(int64(spinLimit))
	stats.Blocks.Add(1)
	w.mu.Lock()
	for w.epoch.Load() <= p.epoch {
		w.cond.Wait()
	}
	w.mu.Unlock()
}
