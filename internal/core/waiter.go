package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// phaseWaiter is the publish/wait half of a split-phase barrier: an
// atomically readable epoch counter published under a mutex, and the
// bounded-spin-then-cond-block slow path of Wait. FuzzyBarrier,
// DynamicBarrier, TreeBarrier, ReduceBarrier and Phaser differ only in
// how arrivals are *counted*; how a completed phase is published and
// waited on is identical, so it lives here once.
//
// Blocking is counted in RuntimeStats because the Encore measurement
// attributes the cost of conventional barriers to exactly these
// context-save/restore events (Section 8).
type phaseWaiter struct {
	epoch atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
}

func (w *phaseWaiter) init() { w.cond = sync.NewCond(&w.mu) }

// publish completes one phase: the epoch advances under the mutex so a
// concurrent blocked waiter cannot miss the broadcast.
func (w *phaseWaiter) publish() {
	w.mu.Lock()
	w.epoch.Add(1)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// tryWait reports whether the ticket's phase has completed.
func (w *phaseWaiter) tryWait(p Phase) bool { return w.epoch.Load() > p.epoch }

// spinYieldEvery is the yield cadence of the Wait spin loop: every
// spinYieldEvery-th fruitless iteration calls runtime.Gosched, so on a
// host with fewer cores than waiters (the single-core CI box being the
// extreme) the publisher can actually run instead of the waiter burning
// its whole spin budget against a descheduled peer. Must be a power of
// two; the yield itself does not allocate, so the hot path stays
// allocation-free.
const spinYieldEvery = 16

// wait blocks until the ticket's phase completes: fast path if already
// complete, then at most spinLimit spins, then a condition-variable
// block. spinLimit <= 0 selects DefaultSpinLimit.
//
// Every outcome is recorded in exactly one of FastWaits, SpinWaits,
// LockWaits or Blocks, and in exactly one wait-spin histogram bucket, so
// the histogram total reconciles with the outcome counters (the stress
// harness asserts this). Blocks counts only Waits that really slept on
// the condition variable: a Wait that exhausts its spin budget but finds
// the epoch published at the locked recheck never context-switches, so
// charging it as a block would corrupt the Section 8 measurement — that
// case is LockWaits.
func (w *phaseWaiter) wait(p Phase, spinLimit int, stats *RuntimeStats) {
	if w.epoch.Load() > p.epoch {
		stats.FastWaits.Add(1)
		stats.observeSpin(0)
		return
	}
	if spinLimit <= 0 {
		spinLimit = DefaultSpinLimit
	}
	for i := 0; i < spinLimit; i++ {
		if w.epoch.Load() > p.epoch {
			stats.SpinWaits.Add(1)
			stats.SpinIters.Add(int64(i + 1))
			stats.observeSpin(int64(i + 1))
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	stats.SpinIters.Add(int64(spinLimit))
	stats.observeExhausted()
	w.mu.Lock()
	if w.epoch.Load() > p.epoch {
		// The phase completed between the last spin and taking the lock:
		// no sleep, no context switch — not a block.
		w.mu.Unlock()
		stats.LockWaits.Add(1)
		return
	}
	// The recheck ran under the same mutex publish() advances the epoch
	// under, so the phase is still pending and cond.Wait really runs.
	stats.Blocks.Add(1)
	for w.epoch.Load() <= p.epoch {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// waitLocal is wait with the spin phase redirected to a caller-local
// epoch word (HierBarrier's per-shard release words): the fast path and
// the spin loop load `local` instead of the central epoch, so a spinning
// waiter's reads stay on a line shared only with its shard — the
// local-spin discipline of the classic busy-wait literature. The locked
// slow path is unchanged: it rechecks the central epoch under the mutex
// publish() advances it under, so the block path never depends on the
// local word at all (publishers must guarantee only that `local` reaches
// the target *eventually*; waitLocal stays correct even if the local
// word lags or the caller picked a different shard than it arrived on).
//
// Accounting is identical to wait: every outcome lands in exactly one of
// FastWaits, SpinWaits, LockWaits or Blocks and one histogram bucket.
// The fast path also checks the central epoch (one extra read-shared
// load) so a Wait issued in the window between the central publish and
// the local fan-out still counts as fast instead of burning its spin
// budget.
func (w *phaseWaiter) waitLocal(p Phase, local *atomic.Int64, spinLimit int, stats *RuntimeStats) {
	if local.Load() > p.epoch || w.epoch.Load() > p.epoch {
		stats.FastWaits.Add(1)
		stats.observeSpin(0)
		return
	}
	if spinLimit <= 0 {
		spinLimit = DefaultSpinLimit
	}
	for i := 0; i < spinLimit; i++ {
		if local.Load() > p.epoch {
			stats.SpinWaits.Add(1)
			stats.SpinIters.Add(int64(i + 1))
			stats.observeSpin(int64(i + 1))
			return
		}
		if i%spinYieldEvery == spinYieldEvery-1 {
			runtime.Gosched()
		}
	}
	stats.SpinIters.Add(int64(spinLimit))
	stats.observeExhausted()
	w.mu.Lock()
	if w.epoch.Load() > p.epoch {
		w.mu.Unlock()
		stats.LockWaits.Add(1)
		return
	}
	stats.Blocks.Add(1)
	for w.epoch.Load() <= p.epoch {
		w.cond.Wait()
	}
	w.mu.Unlock()
}
