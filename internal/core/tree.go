package core

import (
	"fmt"
	"sync/atomic"
)

// TreeBarrier is a combining-tree fuzzy barrier: the same split-phase
// Arrive/Wait contract as FuzzyBarrier, but arrivals are counted up a
// radix-k tree of cache-line-padded counters instead of one central
// counter. No single memory word receives more than ~k atomic operations
// per phase, so the arrival phase stops being the hot spot the paper's
// Section 1 charges software barriers with; departure stays a single
// read-shared epoch broadcast. Among the logarithmic barriers this is
// the one that cleanly supports the fuzzy arrive/depart split — the
// dissemination and tournament baselines interleave their signal rounds
// with waiting, so they cannot return from Arrive without blocking.
//
// Participants are anonymous (Arrive takes no id, exactly like
// FuzzyBarrier), so arrivals route themselves: each Arrive hashes the
// caller's stack address to a home leaf and claims a slot there, probing
// to the neighbor leaf when its home is already full for the phase.
// Distinct goroutines live on distinct stacks, so a stable group of
// workers spreads across leaves and keeps re-hitting its own (cache-warm)
// leaf every phase.
//
// Counters are cumulative across phases — node n's target for phase e is
// quota·(e+1) — which removes the reset step entirely: there is nothing
// to reset, so there is no reset/next-arrival race and no spinning
// anywhere in Arrive. The filling arrival of a node propagates one token
// to its parent; whoever completes the root publishes the epoch.
type TreeBarrier struct {
	n       int
	radix   int
	nLeaves int
	nodes   []treeBarrierNode

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// treeBarrierNode is one counter of the combining tree, padded to two
// cache lines so neighboring nodes never false-share (the second line
// defeats the adjacent-line prefetcher).
type treeBarrierNode struct {
	count  atomic.Int64 // cumulative arrival tokens: quota per phase
	probes atomic.Int64 // overshoot undos charged to this node
	quota  int64        // tokens that complete this node for one phase
	parent int          // index of parent node, -1 at the root
	_      [96]byte
}

// DefaultTreeRadix is the fan-in used by NewTreeBarrier.
const DefaultTreeRadix = 4

// treeShape is the combining-tree layout shared by TreeBarrier and
// ReduceBarrier: per-node quotas and parent links, nodes stored leaves
// first then interior levels bottom-up, root last with parent -1.
type treeShape struct {
	quotas  []int64
	parents []int
	nLeaves int
}

// buildTreeShape lays out a radix-k combining tree for n participants:
// leaf per-phase capacities sum to exactly n (the last leaf may be
// partial) and each interior node's quota is its child count.
func buildTreeShape(n, radix int) treeShape {
	nLeaves := (n + radix - 1) / radix
	s := treeShape{nLeaves: nLeaves}
	s.quotas = make([]int64, 0, 2*nLeaves)
	s.parents = make([]int, 0, 2*nLeaves)
	for i := 0; i < nLeaves; i++ {
		q := radix
		if i == nLeaves-1 {
			q = n - radix*(nLeaves-1)
		}
		s.quotas = append(s.quotas, int64(q))
		s.parents = append(s.parents, -1)
	}
	first, count := 0, nLeaves
	for count > 1 {
		inner := (count + radix - 1) / radix
		base := len(s.quotas)
		for i := 0; i < inner; i++ {
			q := radix
			if i == inner-1 {
				q = count - radix*(inner-1)
			}
			s.quotas = append(s.quotas, int64(q))
			s.parents = append(s.parents, -1)
		}
		for i := 0; i < count; i++ {
			s.parents[first+i] = base + i/radix
		}
		first, count = base, inner
	}
	return s
}

// homeLeaf reduces the caller's ShardHint to a leaf index in
// [0, nLeaves): the shared splitmix64-over-stack-address routing scheme,
// audited once in shard.go and used by TreeBarrier, ReduceBarrier and
// HierBarrier alike. High bits are used so homeLeaf and HierBarrier's
// shard selection (low bits) stay decorrelated.
func homeLeaf(nLeaves int) int {
	return int((ShardHint() >> 32) % uint64(nLeaves))
}

// NewTreeBarrier creates a combining-tree fuzzy barrier for n
// participants (n >= 1) with the default radix.
func NewTreeBarrier(n int) *TreeBarrier { return NewTreeBarrierRadix(n, DefaultTreeRadix) }

// NewTreeBarrierRadix creates a combining-tree fuzzy barrier with the
// given fan-in (values < 2 select DefaultTreeRadix).
func NewTreeBarrierRadix(n, radix int) *TreeBarrier {
	if n < 1 {
		panic(fmt.Sprintf("core: tree barrier size %d < 1", n))
	}
	if radix < 2 {
		radix = DefaultTreeRadix
	}
	b := &TreeBarrier{n: n, radix: radix}
	b.w.init()

	shape := buildTreeShape(n, radix)
	b.nLeaves = shape.nLeaves
	b.nodes = make([]treeBarrierNode, len(shape.quotas))
	for i := range b.nodes {
		b.nodes[i].quota = shape.quotas[i]
		b.nodes[i].parent = shape.parents[i]
	}
	return b
}

// N returns the number of participants.
func (b *TreeBarrier) N() int { return b.n }

// Radix returns the tree fan-in.
func (b *TreeBarrier) Radix() int { return b.radix }

// Depth returns the number of tree levels above the participants; the
// arrival critical path is Depth atomic operations.
func (b *TreeBarrier) Depth() int {
	d, node := 0, 0
	for node >= 0 {
		d++
		node = b.nodes[node].parent
	}
	return d
}

// Leaves returns the number of leaf counters.
func (b *TreeBarrier) Leaves() int { return b.nLeaves }

// Epoch returns the number of completed synchronization episodes.
func (b *TreeBarrier) Epoch() int64 { return b.w.epoch.Load() }

// Stats returns a snapshot of the barrier's counters.
func (b *TreeBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *TreeBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// Probes returns the number of arrive-side leaf probes that found their
// leaf already full and moved on — the routing cost of anonymity.
func (b *TreeBarrier) Probes() int64 {
	var total int64
	for i := 0; i < b.nLeaves; i++ {
		total += b.nodes[i].probes.Load()
	}
	return total
}

// HotspotOps implements ArriveProfiler: the atomic-operation traffic on
// the hottest single node, plus the phase count to normalize by. Each
// phase a node absorbs quota adds, and a leaf additionally pays two
// operations (add + undo) per full-probe.
func (b *TreeBarrier) HotspotOps() (ops, phases int64) {
	phases = b.stats.Syncs.Load()
	for i := range b.nodes {
		v := b.nodes[i].count.Load() + 2*b.nodes[i].probes.Load()
		if v > ops {
			ops = v
		}
	}
	return ops, phases
}

// Arrive signals that the caller is ready to synchronize and returns the
// phase ticket to pass to Wait. It never blocks and never spins on a
// remote value: at most nLeaves-1 fruitless probes plus a Depth-bounded
// climb.
func (b *TreeBarrier) Arrive() Phase {
	return b.arriveAt(homeLeaf(b.nLeaves))
}

// ArriveLeaf is Arrive with a caller-chosen home leaf instead of the
// stack-address hash: identical probe-on-full semantics, but the routing
// is deterministic — what the probe/undo tests and the deterministic
// experiment drives need. leaf must be in [0, Leaves()).
func (b *TreeBarrier) ArriveLeaf(leaf int) Phase {
	if leaf < 0 || leaf >= b.nLeaves {
		panic(fmt.Sprintf("core: tree barrier leaf %d out of range [0,%d)", leaf, b.nLeaves))
	}
	return b.arriveAt(leaf)
}

func (b *TreeBarrier) arriveAt(leaf int) Phase {
	b.stats.Arrivals.Add(1)
	e := b.w.epoch.Load()
	target := e + 1

	for {
		nd := &b.nodes[leaf]
		full := nd.quota * target
		if v := nd.count.Add(1); v <= full {
			if v == full {
				b.climb(nd.parent, target)
			}
			return Phase{epoch: e}
		}
		// The leaf is already full for this phase. Undo the overshoot
		// and probe the next leaf; total capacity is exactly n, so a
		// free slot exists. Once a leaf's count reaches its phase
		// target it never dips below it (every undo cancels its own
		// overshoot), so the exact target value is returned to exactly
		// one arrival — the one that climbs.
		nd.count.Add(-1)
		nd.probes.Add(1)
		leaf++
		if leaf == b.nLeaves {
			leaf = 0
		}
	}
}

// climb propagates one completion token upward from the given node; the
// arrival that completes the root publishes the new epoch. Interior
// nodes receive exactly quota tokens per phase (one per child), so no
// overshoot handling is needed above the leaves.
func (b *TreeBarrier) climb(node int, target int64) {
	for node >= 0 {
		nd := &b.nodes[node]
		if nd.count.Add(1) != nd.quota*target {
			return
		}
		node = nd.parent
	}
	b.stats.Syncs.Add(1)
	b.w.publish()
}

// TryWait reports whether synchronization for the given phase has
// occurred, without blocking.
func (b *TreeBarrier) TryWait(p Phase) bool { return b.w.tryWait(p) }

// Wait blocks until every participant has arrived at phase p, spinning
// briefly before blocking so well-balanced regions never pay for a
// context switch.
func (b *TreeBarrier) Wait(p Phase) { b.w.wait(p, b.SpinLimit, &b.stats) }

// Await is the conventional point barrier: Arrive immediately followed
// by Wait.
func (b *TreeBarrier) Await() { b.Wait(b.Arrive()) }
