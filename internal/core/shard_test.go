package core

import (
	"sync"
	"testing"
)

// TestSplitmix64Vectors pins the mixer to the reference splitmix64
// sequence (seeds 0 and 1): the hash both barriers route through must
// not drift silently.
func TestSplitmix64Vectors(t *testing.T) {
	if got := splitmix64(0); got != 0xE220A8397B1DCDAF {
		t.Errorf("splitmix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
	if got := splitmix64(1); got != 0x910A2DEC89025CC1 {
		t.Errorf("splitmix64(1) = %#x, want 0x910A2DEC89025CC1", got)
	}
}

// TestShardHintDistribution spreads many live goroutines (distinct
// stacks, the hash's seed) over bucket counts matching the two
// reductions the barriers use — low bits for HierBarrier shards, high
// bits for leaf routing — and checks the collision distribution: no
// bucket may swallow a large multiple of its fair share, and most
// buckets must be hit. Stack bases are size-class aligned, so this is
// exactly the regularity splitmix64 has to break; the bounds are loose
// (4x fair share) because the test asserts hash quality, not perfect
// uniformity.
func TestShardHintDistribution(t *testing.T) {
	const goroutines = 512
	const buckets = 16

	hints := make([]uint64, goroutines)
	var ready, release sync.WaitGroup
	ready.Add(goroutines)
	release.Add(1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			hints[id] = ShardHint()
			ready.Done()
			release.Wait() // hold the stack live until every peer has hashed
		}(g)
	}
	ready.Wait()
	release.Done()
	wg.Wait()

	distinct := make(map[uint64]bool, goroutines)
	for _, h := range hints {
		distinct[h] = true
	}
	// Concurrently live goroutines occupy disjoint stacks; near-total
	// collapse of the hash values would mean the mixer is discarding the
	// address bits that vary.
	if len(distinct) < goroutines/2 {
		t.Errorf("only %d distinct hints from %d goroutines", len(distinct), goroutines)
	}

	for _, sel := range []struct {
		name   string
		bucket func(uint64) int
	}{
		{"low-bits-shard", func(h uint64) int { return int(h % buckets) }},
		{"high-bits-leaf", func(h uint64) int { return int((h >> 32) % buckets) }},
	} {
		counts := make([]int, buckets)
		for _, h := range hints {
			counts[sel.bucket(h)]++
		}
		fair := goroutines / buckets
		hit := 0
		for b, c := range counts {
			if c > 0 {
				hit++
			}
			if c > 4*fair {
				t.Errorf("%s: bucket %d got %d of %d hints (fair share %d)", sel.name, b, c, goroutines, fair)
			}
		}
		if hit < buckets/2 {
			t.Errorf("%s: only %d of %d buckets hit", sel.name, hit, buckets)
		}
		t.Logf("%s: %d distinct hints, bucket counts %v", sel.name, len(distinct), counts)
	}
}
