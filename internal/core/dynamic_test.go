package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestDynamicBarrierBasicPhases(t *testing.T) {
	const workers, phases = 4, 100
	b := NewDynamicBarrier(workers)
	var counter atomic.Int64
	bad := make(chan int64, workers*phases)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := int64(0); e < phases; e++ {
				counter.Add(1)
				ph := b.Arrive()
				b.Wait(ph)
				if got := counter.Load(); got != workers*(e+1) {
					bad <- got
				}
				b.Await()
			}
		}()
	}
	wg.Wait()
	close(bad)
	for v := range bad {
		t.Fatalf("counter = %d between phases", v)
	}
	if b.Epoch() != 2*phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), 2*phases)
	}
}

func TestDynamicBarrierEarlyLeaversDontBlockOthers(t *testing.T) {
	// Workers process different iteration counts (a non-divisible
	// workload); each leaves when done. The survivors must keep
	// synchronizing among themselves — no deadlock, no waiting for the
	// departed.
	counts := []int{2, 5, 9, 9}
	b := NewDynamicBarrier(len(counts))
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w, n := range counts {
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ph := b.Arrive()
				b.Wait(ph)
			}
			b.ArriveAndLeave()
		}(w, n)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dynamic barrier deadlocked with early leavers")
	}
	if got := b.Members(); got != 0 {
		t.Errorf("members after drain = %d, want 0", got)
	}
}

func TestDynamicBarrierLastLeaverCompletesPhase(t *testing.T) {
	b := NewDynamicBarrier(2)
	ph := b.Arrive() // member 1 arrives and would wait
	if b.TryWait(ph) {
		t.Fatal("phase complete before second member acted")
	}
	b.ArriveAndLeave() // member 2 departs: completes the phase for member 1
	if !b.TryWait(ph) {
		t.Fatal("departure should complete the phase")
	}
	if b.Members() != 1 {
		t.Errorf("members = %d, want 1", b.Members())
	}
}

func TestDynamicBarrierRegisterMidPhase(t *testing.T) {
	b := NewDynamicBarrier(1)
	b.Register() // second member joins before anyone arrives
	if b.Members() != 2 {
		t.Fatalf("members = %d, want 2", b.Members())
	}
	ph := b.Arrive()
	if b.TryWait(ph) {
		t.Fatal("one arrival of two should not complete the phase")
	}
	done := make(chan struct{})
	go func() {
		b.Await() // the new member participates
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("phase did not complete after second arrival")
	}
	b.Wait(ph)
}

func TestDynamicBarrierSpawnJoinPattern(t *testing.T) {
	// The Section 5 pattern on one shared barrier: a parent spawns
	// children over time; each Registers before starting and leaves when
	// finished.
	b := NewDynamicBarrier(1) // parent only
	var wg sync.WaitGroup
	child := func(phases int) {
		defer wg.Done()
		for i := 0; i < phases; i++ {
			ph := b.Arrive()
			b.Wait(ph)
		}
		b.ArriveAndLeave()
	}
	for round := 0; round < 3; round++ {
		b.Register()
		wg.Add(1)
		go child(2 + round)
		// Parent keeps synchronizing with whatever membership exists.
		ph := b.Arrive()
		b.Wait(ph)
	}
	// Parent drains its own participation.
	for i := 0; i < 6; i++ {
		ph := b.Arrive()
		b.Wait(ph)
	}
	b.ArriveAndLeave()
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("spawn/join pattern hung")
	}
}

func TestDynamicBarrierPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero initial", func() { NewDynamicBarrier(0) })
	mustPanic("drained arrive", func() {
		b := NewDynamicBarrier(1)
		b.ArriveAndLeave()
		b.Arrive()
	})
	mustPanic("drained register", func() {
		b := NewDynamicBarrier(1)
		b.ArriveAndLeave()
		b.Register()
	})
	mustPanic("drained leave", func() {
		b := NewDynamicBarrier(1)
		b.ArriveAndLeave()
		b.ArriveAndLeave()
	})
}

// TestDynamicBarrierProperty: random per-worker phase counts with leaves
// at the end always drain without deadlock, and the total completed
// epochs is at least the maximum phase count (every phase some member
// waited for did complete).
func TestDynamicBarrierProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, 0, 6)
		for _, r := range raw {
			counts = append(counts, int(r%12)+1)
			if len(counts) == 6 {
				break
			}
		}
		b := NewDynamicBarrier(len(counts))
		var wg sync.WaitGroup
		for _, n := range counts {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					ph := b.Arrive()
					b.Wait(ph)
				}
				b.ArriveAndLeave()
			}(n)
		}
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return false
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		return b.Members() == 0 && b.Epoch() >= int64(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
