package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// HierBarrier is a two-level, topology-aware split-phase barrier for
// thousands of participants: the same Arrive/Wait contract as
// FuzzyBarrier and TreeBarrier, with both the arrival and the release
// side restructured to match how goroutines actually land on cores.
//
// Arrivals are partitioned across shards (one per GOMAXPROCS slot by
// default, the goroutine-runtime analog of a tile or NUMA node): each
// shard owns a fixed quota of the n participants and counts its own
// arrivals on a private combining subtree of cache-line-padded,
// cumulative counters — the TreeBarrier scheme, scoped to the shard.
// The arrival that completes a shard batches the whole shard into ONE
// cumulative token sent up a cross-shard combining tree, so cross-shard
// cache-line traffic is one handoff per shard per phase rather than one
// per arrival per level. The arrival that completes the cross-shard
// root publishes the phase.
//
// Release is fanned out to a per-shard epoch word: waiters spin on the
// word of their own shard, never on a line every other waiter is also
// spinning on, so the release broadcast invalidates S lines each read
// by ~n/S spinners instead of one line read by all n (the classic
// local-spin discipline). The words are monotone (CAS-max) and the
// central epoch is published *before* the fan-out, so a waiter woken by
// its shard word always observes a fresh central epoch on its next
// Arrive.
//
// Probing is test-and-test-and-set: a full leaf is detected with a plain
// atomic load (a read on a shared line — no ownership transfer) and the
// counter is only written when the load saw space, so the probe traffic
// that dominates the flat tree's hot spot under hash collisions costs
// one coherence-quiet read here instead of an add+undo write pair.
// A completely full shard is skipped with a single read of its subtree
// root (the root holds quota·phase tokens iff every leaf filled), so
// spill from an over-hashed shard scans S roots, not S·leaves counters.
type HierBarrier struct {
	n       int
	radix   int
	nShards int
	nodes   []hierNode      // shard subtrees first (per shard: leaves, then interior, root last), then the cross-shard tree
	shards  []hierShardMeta // per-shard node ranges and quotas
	rel     []hierRelease   // per-shard release epoch words, padded

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// hierNode is one counter of the two-level combining structure, padded
// to two cache lines so neighboring nodes never false-share (the second
// line defeats the adjacent-line prefetcher).
type hierNode struct {
	count  atomic.Int64 // cumulative arrival tokens: quota per phase
	probes atomic.Int64 // fruitless read-probes observed here (full leaf, or full-shard root skip)
	undos  atomic.Int64 // overshoot add+undo pairs charged to this node
	quota  int64        // tokens that complete this node for one phase
	parent int          // index of parent node, -1 at the cross-shard root
	_      [88]byte
}

// hierShardMeta locates one shard's subtree inside nodes.
type hierShardMeta struct {
	leafBase int   // index of the shard's first leaf counter
	nLeaves  int   // leaf counters owned by the shard
	root     int   // index of the shard's subtree root
	quota    int64 // participants owned by the shard (leaf quotas sum to it)
}

// hierRelease is one shard's release word on its own pair of cache
// lines: the only word a shard's waiters spin on.
type hierRelease struct {
	epoch atomic.Int64 // completed-phase count, monotone (CAS-max)
	_     [120]byte
}

// HierConfig overrides HierBarrier's GOMAXPROCS-derived layout.
type HierConfig struct {
	// Shards is the number of arrival shards; <= 0 derives
	// min(GOMAXPROCS, n). Values > n are clamped to n (every shard must
	// own at least one participant or its subtree could never complete).
	Shards int
	// Radix is the combining fan-in used for both the in-shard subtrees
	// and the cross-shard tree; < 2 derives DefaultTreeRadix, widened
	// just enough to keep the cross-shard tree at two levels when the
	// host offers more than radix² shards.
	Radix int
}

// NewHierBarrier creates a hierarchical split-phase barrier for n
// participants (n >= 1) with shard count and radix derived from
// GOMAXPROCS at construction time.
func NewHierBarrier(n int) *HierBarrier { return NewHierBarrierConfig(n, HierConfig{}) }

// NewHierBarrierConfig creates a hierarchical split-phase barrier with
// explicit layout overrides (deterministic tests and experiment drives
// pin Shards/Radix so tables don't depend on the host's core count).
func NewHierBarrierConfig(n int, cfg HierConfig) *HierBarrier {
	if n < 1 {
		panic(fmt.Sprintf("core: hier barrier size %d < 1", n))
	}
	s := cfg.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	radix := cfg.Radix
	if radix < 2 {
		radix = DefaultTreeRadix
		// Keep the cross-shard tree at two levels on very wide hosts:
		// the smallest fan-in whose square covers the shard count.
		for radix*radix < s {
			radix++
		}
	}

	b := &HierBarrier{n: n, radix: radix, nShards: s}
	b.w.init()
	b.shards = make([]hierShardMeta, s)
	b.rel = make([]hierRelease, s)

	// Balanced shard quotas: max-min <= 1, summing to exactly n.
	for i := 0; i < s; i++ {
		q := n / s
		if i < n%s {
			q++
		}
		b.shards[i].quota = int64(q)
	}
	// Lay out each shard's subtree, then the cross-shard tree, in one
	// flat node slice so a filling leaf climbs through both levels by
	// following parent links — the cross-shard hop is just the shard
	// root's parent.
	for i := 0; i < s; i++ {
		shape := buildTreeShape(int(b.shards[i].quota), radix)
		base := len(b.nodes)
		for j := range shape.quotas {
			p := shape.parents[j]
			if p >= 0 {
				p += base
			}
			b.nodes = append(b.nodes, hierNode{quota: shape.quotas[j], parent: p})
		}
		b.shards[i].leafBase = base
		b.shards[i].nLeaves = shape.nLeaves
		b.shards[i].root = len(b.nodes) - 1
	}
	cross := buildTreeShape(s, radix)
	xbase := len(b.nodes)
	for j := range cross.quotas {
		p := cross.parents[j]
		if p >= 0 {
			p += xbase
		}
		b.nodes = append(b.nodes, hierNode{quota: cross.quotas[j], parent: p})
	}
	// Shard i's completion token lands on cross-shard leaf i/radix —
	// the same leaf packing buildTreeShape used for its quotas.
	for i := 0; i < s; i++ {
		b.nodes[b.shards[i].root].parent = xbase + i/radix
	}
	return b
}

// N returns the number of participants.
func (b *HierBarrier) N() int { return b.n }

// Shards returns the number of arrival shards.
func (b *HierBarrier) Shards() int { return b.nShards }

// Radix returns the combining fan-in.
func (b *HierBarrier) Radix() int { return b.radix }

// Leaves returns the total number of leaf counters across all shards.
func (b *HierBarrier) Leaves() int {
	total := 0
	for i := range b.shards {
		total += b.shards[i].nLeaves
	}
	return total
}

// ShardLeaves returns the number of leaf counters owned by shard s.
func (b *HierBarrier) ShardLeaves(s int) int {
	if s < 0 || s >= b.nShards {
		panic(fmt.Sprintf("core: hier barrier shard %d out of range [0,%d)", s, b.nShards))
	}
	return b.shards[s].nLeaves
}

// Depth returns the number of counter levels above a participant: the
// deepest shard subtree plus the cross-shard tree — the arrival
// critical path in atomic operations.
func (b *HierBarrier) Depth() int {
	max := 0
	for i := range b.shards {
		d, node := 0, b.shards[i].leafBase
		for node >= 0 {
			d++
			node = b.nodes[node].parent
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Epoch returns the number of completed synchronization episodes.
func (b *HierBarrier) Epoch() int64 { return b.w.epoch.Load() }

// Stats returns a snapshot of the barrier's counters.
func (b *HierBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *HierBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// Probes returns the total number of fruitless read-probes: arrivals
// that found a leaf (or, via its root, a whole shard) already full and
// moved on. Each costs one coherence-quiet atomic load — compare
// TreeBarrier, where every probe is an add+undo write pair.
func (b *HierBarrier) Probes() int64 {
	var total int64
	for i := range b.nodes {
		total += b.nodes[i].probes.Load()
	}
	return total
}

// Undos returns the number of overshoot add+undo pairs: arrivals that
// saw space in a leaf but lost the race for its last slot. Each pair is
// two writes on the contended line; the read-before-write probe
// discipline makes these rare instead of the common case.
func (b *HierBarrier) Undos() int64 {
	var total int64
	for i := range b.nodes {
		total += b.nodes[i].undos.Load()
	}
	return total
}

// HotspotOps implements ArriveProfiler: the atomic-operation traffic on
// the hottest single counter word, plus the phase count to normalize
// by. Per phase a node absorbs its quota adds, one operation per
// fruitless read-probe, and two per overshoot undo pair.
func (b *HierBarrier) HotspotOps() (ops, phases int64) {
	phases = b.stats.Syncs.Load()
	for i := range b.nodes {
		v := b.nodes[i].count.Load() + b.nodes[i].probes.Load() + 2*b.nodes[i].undos.Load()
		if v > ops {
			ops = v
		}
	}
	return ops, phases
}

// SlotFor returns the (shard, leaf) that owns the i-th of the n
// participant slots (i in [0, N())): routing participant i to
// SlotFor(i) fills every leaf to exactly its quota, so no arrival ever
// probes. The deterministic complement of the hashed default, for
// experiment drives and tests.
func (b *HierBarrier) SlotFor(i int) (shard, leaf int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("core: hier barrier slot %d out of range [0,%d)", i, b.n))
	}
	rem := int64(i)
	for s := range b.shards {
		if rem < b.shards[s].quota {
			return s, int(rem) / b.radix
		}
		rem -= b.shards[s].quota
	}
	panic("core: hier barrier shard quotas do not cover n")
}

// Arrive signals that the caller is ready to synchronize and returns
// the phase ticket to pass to Wait. It never blocks and never spins on
// a remote value: at most one read per full leaf or full shard probed,
// plus a Depth-bounded climb.
func (b *HierBarrier) Arrive() Phase {
	h := ShardHint()
	shard := int(h % uint64(b.nShards))
	leaf := int((h >> 32) % uint64(b.shards[shard].nLeaves))
	return b.arriveAt(shard, leaf)
}

// ArriveShardLeaf is Arrive with a caller-chosen home shard and leaf
// instead of the per-goroutine hash: identical probe-on-full semantics,
// deterministic routing for tests and experiment drives. shard must be
// in [0, Shards()) and leaf in [0, ShardLeaves(shard)).
func (b *HierBarrier) ArriveShardLeaf(shard, leaf int) Phase {
	if shard < 0 || shard >= b.nShards {
		panic(fmt.Sprintf("core: hier barrier shard %d out of range [0,%d)", shard, b.nShards))
	}
	if leaf < 0 || leaf >= b.shards[shard].nLeaves {
		panic(fmt.Sprintf("core: hier barrier leaf %d out of range [0,%d)", leaf, b.shards[shard].nLeaves))
	}
	return b.arriveAt(shard, leaf)
}

func (b *HierBarrier) arriveAt(shard, leaf int) Phase {
	b.stats.Arrivals.Add(1)
	for {
		// The epoch is re-read on every pass: a Wait released through a
		// shard word always sees a fresh epoch here (the central publish
		// precedes the fan-out), but re-reading keeps even a stale-target
		// pass — every slot looks full — a retry instead of a livelock.
		e := b.w.epoch.Load()
		target := e + 1
		for s := 0; s < b.nShards; s++ {
			si := shard + s
			if si >= b.nShards {
				si -= b.nShards
			}
			m := &b.shards[si]
			if b.nShards > 1 {
				// Full-shard shortcut: the subtree root holds quota·target
				// tokens iff every leaf in the shard filled, so one read
				// skips the whole shard. (A filling shard whose last token
				// is still climbing scans its leaves instead — harmless.)
				root := &b.nodes[m.root]
				if root.count.Load() >= root.quota*target {
					root.probes.Add(1)
					continue
				}
			}
			start := 0
			if s == 0 {
				start = leaf
			}
			for i := 0; i < m.nLeaves; i++ {
				li := start + i
				if li >= m.nLeaves {
					li -= m.nLeaves
				}
				nd := &b.nodes[m.leafBase+li]
				full := nd.quota * target
				// Test-and-test-and-set: probe with a read, write only
				// when the read saw space.
				if nd.count.Load() >= full {
					nd.probes.Add(1)
					continue
				}
				if v := nd.count.Add(1); v <= full {
					if v == full {
						b.climb(nd.parent, target)
					}
					return Phase{epoch: e}
				}
				// Lost the race for the leaf's last slot: undo the
				// overshoot and keep probing. Once a leaf's count reaches
				// its phase target it never dips below it (every undo
				// cancels its own overshoot), so the exact target value is
				// returned to exactly one arrival — the one that climbs.
				nd.count.Add(-1)
				nd.undos.Add(1)
			}
		}
		// Every slot looked full at `target`: total capacity is exactly n
		// and at most n-1 other arrivals exist per phase, so the target
		// was stale — the phase completed while we probed. Loop to re-read
		// the epoch (guaranteed fresh by the publish-before-fan-out order)
		// and claim a slot of the new phase.
	}
}

// climb propagates one completion token upward from the given node,
// through the shard subtree and across the shard root's parent link
// into the cross-shard tree; the arrival that completes the cross-shard
// root publishes the phase. Interior nodes receive exactly quota tokens
// per phase (one per child or per shard), so no overshoot handling is
// needed above the leaves.
func (b *HierBarrier) climb(node int, target int64) {
	for node >= 0 {
		nd := &b.nodes[node]
		if nd.count.Add(1) != nd.quota*target {
			return
		}
		node = nd.parent
	}
	b.stats.Syncs.Add(1)
	// Publish the central epoch first: any waiter released through a
	// shard word below observes the CAS-max, which in the program (and
	// seq-cst) order follows this publish — so its next Arrive reads a
	// fresh epoch. Blocked waiters wake here too.
	b.w.publish()
	// Fan the release out to the per-shard spin words. CAS-max keeps the
	// words monotone even when two publishers overlap: phase k+1's
	// fan-out can begin (fast shards released early, raced through the
	// next phase) while phase k's publisher is still walking the slice.
	for i := range b.rel {
		casMax(&b.rel[i].epoch, target)
	}
}

// casMax raises a to at least v (monotone, lock-free).
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TryWait reports whether synchronization for the given phase has
// occurred, without blocking.
func (b *HierBarrier) TryWait(p Phase) bool { return b.w.tryWait(p) }

// Wait blocks until every participant has arrived at phase p, spinning
// on the caller's shard-local release word before falling back to the
// central blocking path — the spin reads never touch a line shared with
// waiters outside the shard.
func (b *HierBarrier) Wait(p Phase) {
	local := &b.rel[int(ShardHint()%uint64(b.nShards))].epoch
	b.w.waitLocal(p, local, b.SpinLimit, &b.stats)
}

// Await is the conventional point barrier: Arrive immediately followed
// by Wait.
func (b *HierBarrier) Await() { b.Wait(b.Arrive()) }
