package core

import (
	"strings"
	"sync"
	"testing"
)

func TestWaitBucket(t *testing.T) {
	cases := []struct {
		iters int64
		want  int
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3},
		{64, 3}, {65, 4}, {256, 4}, {257, 5}, {1 << 20, 5},
	}
	for _, c := range cases {
		if got := waitBucket(c.iters); got != c.want {
			t.Errorf("waitBucket(%d) = %d, want %d", c.iters, got, c.want)
		}
	}
	if WaitBucketLabel(0) != "<=1" || WaitBucketLabel(4) != "<=256" || WaitBucketLabel(5) != ">256" ||
		WaitBucketLabel(6) != "exhausted" {
		t.Errorf("labels = %q %q %q %q",
			WaitBucketLabel(0), WaitBucketLabel(4), WaitBucketLabel(5), WaitBucketLabel(6))
	}
	// The exhausted overflow bucket is reserved for spin-budget
	// exhaustion: no resolved spin count may route into it, however huge.
	if got := waitBucket(1 << 40); got != NumSpinBuckets-1 {
		t.Errorf("waitBucket(1<<40) = %d, want %d (never the exhausted bucket)", got, NumSpinBuckets-1)
	}
}

// TestStatsSnapshotConsistency drives a real multi-goroutine barrier and
// checks the snapshot's internal arithmetic: every Wait lands in exactly
// one outcome counter (fast, spin, lock, block) and exactly one
// histogram bucket, so the histogram covers every Wait.
func TestStatsSnapshotConsistency(t *testing.T) {
	const workers, episodes = 4, 2000
	for _, impl := range []SplitBarrier{
		NewFuzzyBarrier(workers),
		NewTreeBarrier(workers),
		NewHierBarrier(workers),
		NewReduceBarrier(workers, OpSum, IdentitySum),
	} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					impl.Wait(impl.Arrive())
				}
			}()
		}
		wg.Wait()
		s := impl.StatsSnapshot()
		if s.Syncs != episodes {
			t.Errorf("%T: syncs = %d, want %d", impl, s.Syncs, episodes)
		}
		if s.Arrivals != workers*episodes {
			t.Errorf("%T: arrivals = %d, want %d", impl, s.Arrivals, workers*episodes)
		}
		if got := s.Waits(); got != workers*episodes {
			t.Errorf("%T: fast+spin+block = %d, want %d", impl, got, workers*episodes)
		}
		var hist int64
		for _, c := range s.WaitSpins {
			hist += c
		}
		if hist != s.Waits() {
			t.Errorf("%T: spin histogram sum = %d, want Waits() = %d", impl, hist, s.Waits())
		}
		if got := s.WaitSpins[NumWaitBuckets-1]; got != s.LockWaits+s.Blocks {
			t.Errorf("%T: exhausted bucket = %d, want LockWaits+Blocks = %d",
				impl, got, s.LockWaits+s.Blocks)
		}
		if s.StalledWaits() != s.SpinWaits+s.LockWaits+s.Blocks {
			t.Errorf("%T: StalledWaits = %d", impl, s.StalledWaits())
		}
		if r := s.BlockRate(); r < 0 || r > 1 {
			t.Errorf("%T: BlockRate = %f", impl, r)
		}
		// The legacy tuple accessor and the snapshot must agree.
		syncs, arrivals, fast, spin, blocks, iters := impl.Stats()
		if syncs != s.Syncs || arrivals != s.Arrivals || fast != s.FastWaits ||
			spin != s.SpinWaits || blocks != s.Blocks || iters != s.SpinIters {
			t.Errorf("%T: Stats() tuple disagrees with StatsSnapshot()", impl)
		}
	}
}

func TestBarrierStatsString(t *testing.T) {
	s := BarrierStats{Syncs: 3, Arrivals: 12, FastWaits: 6, SpinWaits: 5, LockWaits: 2, Blocks: 1, SpinIters: 40}
	s.WaitSpins[1] = 5
	s.WaitSpins[NumWaitBuckets-1] = 3
	out := s.String()
	for _, want := range []string{"syncs=3", "arrivals=12", "spin=5", "lock=2", "block=1", "stalled=8", "<=4:5", "exhausted:3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
	if zero := (BarrierStats{}).String(); strings.Contains(zero, "spin-hist") {
		t.Errorf("empty histogram rendered: %s", zero)
	}
}

func TestDynamicBarrierSnapshot(t *testing.T) {
	b := NewDynamicBarrier(1)
	b.Wait(b.Arrive())
	s := b.StatsSnapshot()
	if s.Syncs != 1 || s.Arrivals != 1 || s.FastWaits != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestBarrierHotPathZeroAllocs pins the allocation-free guarantee: the
// Arrive/Wait hot path allocates nothing, so the always-on counters (and
// the nil-disabled trace hooks upstream) never add GC pressure.
func TestBarrierHotPathZeroAllocs(t *testing.T) {
	barriers := map[string]SplitBarrier{
		"fuzzy":        NewFuzzyBarrier(1),
		"fuzzy-tree":   NewTreeBarrier(1),
		"fuzzy-reduce": NewReduceBarrier(1, OpSum, IdentitySum),
		"hier":         NewHierBarrier(1),
	}
	for name, b := range barriers {
		allocs := testing.AllocsPerRun(1000, func() {
			b.Wait(b.Arrive())
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on Arrive+Wait, want 0", name, allocs)
		}
	}
	d := NewDynamicBarrier(1)
	if allocs := testing.AllocsPerRun(1000, func() { d.Wait(d.Arrive()) }); allocs != 0 {
		t.Errorf("dynamic: %.1f allocs/op on Arrive+Wait, want 0", allocs)
	}
	// The int64 reduce fast path must stay allocation-free too:
	// contribute-and-read, not just the identity Arrive.
	r := NewReduceBarrier(1, OpMax, IdentityMax)
	if allocs := testing.AllocsPerRun(1000, func() { r.AwaitValue(7) }); allocs != 0 {
		t.Errorf("reduce: %.1f allocs/op on ArriveValue+WaitValue, want 0", allocs)
	}
	p := NewPhaser()
	m := p.Register(SignalWait)
	if allocs := testing.AllocsPerRun(1000, func() { m.Wait(m.Arrive()) }); allocs != 0 {
		t.Errorf("phaser: %.1f allocs/op on Arrive+Wait, want 0", allocs)
	}
}

// BenchmarkBarrierHotPathAllocs is the benchmark form of the guarantee —
// run with -benchmem; the allocs/op column must read 0.
func BenchmarkBarrierHotPathAllocs(b *testing.B) {
	for _, name := range []string{"fuzzy", "fuzzy-tree", "hier", "dynamic"} {
		b.Run(name, func(b *testing.B) {
			var bar interface {
				Arrive() Phase
				Wait(Phase)
			}
			switch name {
			case "fuzzy":
				bar = NewFuzzyBarrier(1)
			case "fuzzy-tree":
				bar = NewTreeBarrier(1)
			case "hier":
				bar = NewHierBarrier(1)
			case "dynamic":
				bar = NewDynamicBarrier(1)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bar.Wait(bar.Arrive())
			}
		})
	}
}
