package core

import (
	"fmt"
	"sync"
)

// PhaserMode is a Phaser member's synchronization role.
type PhaserMode int

const (
	// SignalWait members both gate phase advancement and wait on it —
	// ordinary barrier participants.
	SignalWait PhaserMode = iota
	// SignalOnly members (producers) gate phase advancement but never
	// wait: they may run arbitrarily many phases ahead of the group.
	SignalOnly
	// WaitOnly members (consumers) wait on phases but do not gate them:
	// a phase completes without their arrival.
	WaitOnly
)

// String returns the mode's name.
func (m PhaserMode) String() string {
	switch m {
	case SignalWait:
		return "signal-wait"
	case SignalOnly:
		return "signal-only"
	case WaitOnly:
		return "wait-only"
	default:
		return fmt.Sprintf("PhaserMode(%d)", int(m))
	}
}

// Phaser is phaser-style dynamic synchronization (Habanero/X10 lineage;
// "Formalization of Phase Ordering" in PAPERS.md): DynamicBarrier's
// register/deregister membership generalized with per-member modes. A
// phase advances when every *signal-capable* member has signaled it;
// wait-only consumers observe phases without gating them, and
// signal-only producers drive phases without ever blocking — the
// point-to-point ordering a bounded producer/consumer pipeline needs.
// It is the runtime analog of the paper's Section 5 masks: the signaler
// set is the mask of streams the barrier actually waits for, and
// registration edits that mask between phases.
//
// The split-phase (fuzzy) contract is kept: Arrive on a member is
// non-blocking and returns a ticket, Wait(ticket) blocks until the
// ticket's phase completes. For a SignalWait member the ticket names the
// phase its signal gates; for a WaitOnly member it names the next phase
// boundary after the call — "everything signaled from now on is ordered
// after what the producers published before that boundary".
//
// Like DynamicBarrier, one mutex serializes every membership and signal
// transition together with any phase publication it triggers (lock
// order mu -> phaseWaiter.mu); Wait never holds the mutex, so the
// spin-then-block slow path is untouched.
type Phaser struct {
	mu        sync.Mutex
	members   []*PhaserMember
	signalers int  // members with a signal-capable mode
	ready     int  // signalers that have already signaled the current phase
	drained   bool // the last signaler left; no phase can ever advance again

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// PhaserMember is one registered participant. Members are not safe for
// concurrent use by multiple goroutines (each goroutine registers its
// own member); the Phaser itself is.
type PhaserMember struct {
	p        *Phaser
	mode     PhaserMode
	signaled int64 // absolute count of phases this member has signaled
	index    int   // position in p.members; -1 after deregistration
}

// NewPhaser creates an empty phaser. Members join with Register; the
// phaser is inert (no phase can complete) until a signal-capable member
// registers.
func NewPhaser() *Phaser {
	p := &Phaser{}
	p.w.init()
	return p
}

// Register adds a member with the given mode, joined to the current
// phase: it owes its first signal to the phase in progress (if
// signal-capable) and its first Wait observes phases from here on.
// Registering on a drained phaser panics, exactly like DynamicBarrier —
// the check and the join are one atomic transition.
func (p *Phaser) Register(mode PhaserMode) *PhaserMember {
	if mode != SignalWait && mode != SignalOnly && mode != WaitOnly {
		panic(fmt.Sprintf("core: Register with invalid phaser mode %d", int(mode)))
	}
	p.mu.Lock()
	if p.drained {
		p.mu.Unlock()
		panic("core: Register on a drained phaser")
	}
	m := &PhaserMember{p: p, mode: mode, signaled: p.w.epoch.Load(), index: len(p.members)}
	p.members = append(p.members, m)
	if mode != WaitOnly {
		p.signalers++
	}
	p.mu.Unlock()
	return m
}

// Members returns the current number of registered members.
func (p *Phaser) Members() int {
	p.mu.Lock()
	n := len(p.members)
	p.mu.Unlock()
	return n
}

// Signalers returns the number of signal-capable members.
func (p *Phaser) Signalers() int {
	p.mu.Lock()
	n := p.signalers
	p.mu.Unlock()
	return n
}

// Epoch returns the number of completed phases.
func (p *Phaser) Epoch() int64 { return p.w.epoch.Load() }

// Stats returns the phaser's counters (same shape as FuzzyBarrier).
func (p *Phaser) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return p.stats.Syncs.Load(), p.stats.Arrivals.Load(), p.stats.FastWaits.Load(),
		p.stats.SpinWaits.Load(), p.stats.Blocks.Load(), p.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot.
func (p *Phaser) StatsSnapshot() BarrierStats { return p.stats.Snapshot() }

// completeLocked advances phases while every signaler has signaled the
// current one. Called with mu held. A single call can complete several
// phases: a signal-only producer that ran ahead counts toward each new
// phase as soon as it opens.
func (p *Phaser) completeLocked() {
	for p.signalers > 0 && p.ready == p.signalers {
		p.stats.Syncs.Add(1)
		p.w.publish()
		e := p.w.epoch.Load()
		p.ready = 0
		for _, m := range p.members {
			if m.mode != WaitOnly && m.signaled > e {
				p.ready++
			}
		}
	}
}

// Arrive records the member's arrival at its next phase and returns the
// ticket for Wait. It never blocks.
//
// For a signal-capable member the k-th Arrive signals phase k-1 (counting
// from the member's registration epoch) and the ticket names that phase;
// a SignalWait member must Wait between Arrives, while a SignalOnly
// member may Arrive repeatedly, running ahead of the group. For a
// WaitOnly member, Arrive just takes a ticket for the next phase
// boundary and gates nothing.
func (m *PhaserMember) Arrive() Phase {
	p := m.p
	p.stats.Arrivals.Add(1)
	p.mu.Lock()
	if m.index < 0 {
		p.mu.Unlock()
		panic("core: Arrive on a deregistered phaser member")
	}
	if p.drained {
		p.mu.Unlock()
		panic("core: Arrive on a drained phaser")
	}
	e := p.w.epoch.Load()
	if m.mode == WaitOnly {
		p.mu.Unlock()
		return Phase{epoch: e}
	}
	m.signaled++
	ticket := Phase{epoch: m.signaled - 1}
	if m.signaled == e+1 {
		p.ready++
		p.completeLocked()
	}
	p.mu.Unlock()
	return ticket
}

// TryWait reports whether the ticket's phase has completed, without
// blocking.
func (m *PhaserMember) TryWait(ph Phase) bool { return m.p.w.tryWait(ph) }

// Wait blocks until the ticket's phase completes (spin then block, like
// every split barrier here). Panics for SignalOnly members — a producer
// that waits is a SignalWait member and should register as one.
func (m *PhaserMember) Wait(ph Phase) {
	if m.mode == SignalOnly {
		panic("core: Wait on a signal-only phaser member")
	}
	m.p.w.wait(ph, m.p.SpinLimit, &m.p.stats)
}

// Mode returns the member's registered mode.
func (m *PhaserMember) Mode() PhaserMode { return m.mode }

// Deregister removes the member. A signaler's pending obligations
// disappear with it — if the remaining signalers have all signaled the
// current phase, the phase (and any the departed member was lagging)
// completes now. When the last signal-capable member leaves, the phaser
// drains: one final phase is published so pending Waits release, and
// any further Register/Arrive panics. The member must not be used after
// Deregister.
func (m *PhaserMember) Deregister() {
	p := m.p
	p.mu.Lock()
	if m.index < 0 {
		p.mu.Unlock()
		panic("core: Deregister on an already deregistered phaser member")
	}
	if p.drained {
		p.mu.Unlock()
		panic("core: Deregister on a drained phaser")
	}
	last := len(p.members) - 1
	p.members[m.index] = p.members[last]
	p.members[m.index].index = m.index
	p.members = p.members[:last]
	m.index = -1
	if m.mode == WaitOnly {
		p.mu.Unlock()
		return
	}
	if m.signaled > p.w.epoch.Load() {
		p.ready--
	}
	p.signalers--
	if p.signalers == 0 {
		// Drain: no signaler remains, so no phase can ever advance again.
		// Publish one final release episode (counted in Syncs, keeping
		// Syncs == Epoch) so tickets already issued do not wait forever.
		p.drained = true
		p.ready = 0
		p.stats.Syncs.Add(1)
		p.w.publish()
	} else {
		p.completeLocked()
	}
	p.mu.Unlock()
}
