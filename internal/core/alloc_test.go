package core

import (
	"errors"
	"sync"
	"testing"
)

func TestAllocatorBound(t *testing.T) {
	a := NewAllocator(4, 8) // max 3 live barriers
	var bars []*FuzzyBarrier
	for i := 0; i < 3; i++ {
		b, err := a.Alloc(2)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		bars = append(bars, b)
	}
	if _, err := a.Alloc(2); !errors.Is(err, ErrNoBarriers) {
		t.Fatalf("4th alloc err = %v, want ErrNoBarriers", err)
	}
	a.Release(bars[0])
	if _, err := a.Alloc(2); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
	if a.Peak() != 3 {
		t.Errorf("peak = %d, want 3", a.Peak())
	}
}

func TestAllocatorDistinctTags(t *testing.T) {
	a := NewAllocator(8, 8)
	seen := make(map[Tag]bool)
	for i := 0; i < 7; i++ {
		b, err := a.Alloc(2)
		if err != nil {
			t.Fatal(err)
		}
		if b.Tag() == TagNone {
			t.Fatal("allocated barrier has TagNone")
		}
		if seen[b.Tag()] {
			t.Fatalf("duplicate live tag %d", b.Tag())
		}
		seen[b.Tag()] = true
	}
}

func TestAllocatorTagReuse(t *testing.T) {
	a := NewAllocator(2, 8) // one live barrier at a time
	b1, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	tag := b1.Tag()
	a.Release(b1)
	b2, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Tag() != tag {
		t.Errorf("freed tag not reused: got %d, want %d", b2.Tag(), tag)
	}
}

func TestAllocatorTagSpaceExhaustion(t *testing.T) {
	// 1-bit tags: only tag 1 exists.
	a := NewAllocator(64, 1)
	if _, err := a.Alloc(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(2); !errors.Is(err, ErrNoBarriers) {
		t.Fatalf("err = %v, want ErrNoBarriers (tag space)", err)
	}
}

func TestReleaseNilAndUntagged(t *testing.T) {
	a := NewAllocator(4, 8)
	a.Release(nil)                // must not panic
	a.Release(NewFuzzyBarrier(2)) // untagged: ignored
	if a.Live() != 0 {
		t.Errorf("live = %d, want 0", a.Live())
	}
}

func TestSpawnTreeFigure6(t *testing.T) {
	// Figure 6: P1 spawns S1 (P2), P1 spawns S3 (P3); merges in reverse.
	tree, root := NewSpawnTree(3, 4)
	s1, err := tree.Spawn(root)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := tree.Spawn(root)
	if err != nil {
		t.Fatal(err)
	}
	if tree.LiveStreams() != 3 {
		t.Errorf("live streams = %d, want 3", tree.LiveStreams())
	}
	if s1.Barrier().Tag() == s3.Barrier().Tag() {
		t.Error("sibling streams must use logically distinct barriers")
	}

	var wg sync.WaitGroup
	for _, s := range []*Stream{s1, s3} {
		wg.Add(1)
		go func(s *Stream) {
			defer wg.Done()
			if err := s.SyncWithParent(); err != nil {
				t.Error(err)
			}
			s.Barrier().Await() // merge rendezvous
		}(s)
	}
	if err := root.SyncWithChild(s1); err != nil {
		t.Fatal(err)
	}
	if err := root.SyncWithChild(s3); err != nil {
		t.Fatal(err)
	}
	if err := tree.Merge(s1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Merge(s3); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if tree.LiveStreams() != 1 {
		t.Errorf("live streams after merge = %d, want 1", tree.LiveStreams())
	}
	if tree.PeakBarriers() != 2 {
		t.Errorf("peak barriers = %d, want 2 (N-1 for 3 streams)", tree.PeakBarriers())
	}
}

func TestSpawnTreeEnforcesBound(t *testing.T) {
	tree, root := NewSpawnTree(3, 4) // at most 2 barriers
	if _, err := tree.Spawn(root); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Spawn(root); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Spawn(root); !errors.Is(err, ErrNoBarriers) {
		t.Fatalf("err = %v, want ErrNoBarriers (N-1 bound)", err)
	}
}

func TestMergeRootFails(t *testing.T) {
	tree, root := NewSpawnTree(2, 4)
	if err := tree.Merge(root); err == nil {
		t.Error("merging the root must fail")
	}
}

func TestSyncWithWrongChildFails(t *testing.T) {
	tree, root := NewSpawnTree(4, 4)
	c1, err := tree.Spawn(root)
	if err != nil {
		t.Fatal(err)
	}
	grand, err := tree.Spawn(c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.SyncWithChild(grand); err == nil {
		t.Error("grandchild is not a direct child; sync must fail")
	}
	if err := root.SyncWithParent(); err == nil {
		t.Error("root has no parent; sync must fail")
	}
}
