package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPhaserSignalWaitGroup: a group of signal+wait members behaves like
// an ordinary split barrier, with Syncs tracking Epoch.
func TestPhaserSignalWaitGroup(t *testing.T) {
	const workers, phases = 4, 200
	p := NewPhaser()
	members := make([]*PhaserMember, workers)
	for i := range members {
		members[i] = p.Register(SignalWait)
	}
	if p.Members() != workers || p.Signalers() != workers {
		t.Fatalf("members = %d, signalers = %d, want %d, %d", p.Members(), p.Signalers(), workers, workers)
	}
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *PhaserMember) {
			defer wg.Done()
			for i := 0; i < phases; i++ {
				m.Wait(m.Arrive())
			}
		}(m)
	}
	wg.Wait()
	if p.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", p.Epoch(), phases)
	}
	if s := p.StatsSnapshot(); s.Syncs != p.Epoch() {
		t.Errorf("Syncs = %d, Epoch = %d", s.Syncs, p.Epoch())
	}
}

// TestPhaserSignalOnlyRunsAhead: a signal-only producer can deposit
// signals for several future phases without waiting; each phase still
// needs every signaler, so the group's laggard paces the epoch.
func TestPhaserSignalOnlyRunsAhead(t *testing.T) {
	p := NewPhaser()
	a := p.Register(SignalWait)
	b := p.Register(SignalOnly)

	// B signals three phases ahead; nothing advances without A.
	for i := 0; i < 3; i++ {
		b.Arrive()
	}
	if p.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0 (A has not signaled)", p.Epoch())
	}
	// Each of A's signals completes one phase immediately: B's advance
	// deposits are already banked.
	for want := int64(1); want <= 3; want++ {
		ph := a.Arrive()
		if p.Epoch() != want {
			t.Fatalf("after A's signal %d: epoch = %d, want %d", want, p.Epoch(), want)
		}
		if !a.TryWait(ph) {
			t.Fatalf("A's ticket for phase %d not complete", want-1)
		}
		a.Wait(ph) // fast path; also exercises the counter
	}
	// B's bank is spent: A's next signal leaves phase 3 pending on B.
	ph := a.Arrive()
	if p.Epoch() != 3 || a.TryWait(ph) {
		t.Fatalf("epoch = %d, TryWait = %v; want 3, false (B owes a signal)", p.Epoch(), a.TryWait(ph))
	}
	b.Arrive()
	if p.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", p.Epoch())
	}
	a.Wait(ph)
}

// TestPhaserWaitOnlyDoesNotGate: wait-only consumers observe phase
// boundaries without contributing signals.
func TestPhaserWaitOnlyDoesNotGate(t *testing.T) {
	p := NewPhaser()
	a := p.Register(SignalWait)
	c := p.Register(WaitOnly)
	if p.Signalers() != 1 {
		t.Fatalf("signalers = %d, want 1", p.Signalers())
	}

	ph := c.Arrive() // ticket for the next boundary
	if c.TryWait(ph) {
		t.Fatal("consumer ticket complete before any phase")
	}
	// A alone completes the phase; C never signaled.
	a.Wait(a.Arrive())
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", p.Epoch())
	}
	c.Wait(ph) // fast path now
}

// TestPhaserPointToPoint: the producer/consumer ordering guarantee. The
// producer writes slot k then signals; a consumer that waited past phase
// k's boundary must observe the write — each slot is written exactly
// once, before the signal that completes its phase, so the read after
// Wait is ordered and race-free.
func TestPhaserPointToPoint(t *testing.T) {
	const phases, window = 300, 8
	p := NewPhaser()
	prod := p.Register(SignalOnly)
	cons := p.Register(WaitOnly)
	data := make([]int64, phases) // plain slots, ordered only by the phaser

	// The producer is paced on the consumer's declared need so the test
	// actually overlaps them: it runs at most `window` phases past the
	// boundary the consumer is waiting on (`need` is stored before the
	// consumer waits, so the producer always covers the awaited phase —
	// no deadlock), and free-runs once the consumer is done. The pacing
	// atomics only add consumer->producer edges, so the
	// producer->consumer ordering under test still rests on the phaser
	// alone.
	var need, consumerDone atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(0); k < phases; k++ {
			for k >= need.Load()+window && consumerDone.Load() == 0 {
				runtime.Gosched()
			}
			data[k] = k*3 + 1
			prod.Arrive()
		}
	}()
	var stale, observed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			ph := cons.Arrive()
			// Stop at the last boundary the producer will definitely
			// complete; waiting past it would need the drain, which only
			// happens after this goroutine exits.
			if ph.epoch >= phases-1 {
				consumerDone.Store(1)
				return
			}
			need.Store(ph.epoch + 1)
			cons.Wait(ph)
			observed++
			if data[ph.epoch] != ph.epoch*3+1 {
				stale++
			}
		}
	}()
	wg.Wait()
	prod.Deregister() // sole signaler out: drain
	if stale > 0 {
		t.Errorf("%d stale reads: consumer saw a slot before the producer's signal ordered it", stale)
	}
	if observed == 0 {
		t.Error("consumer never completed an ordered read")
	}
	if got := p.Epoch(); got != phases+1 {
		t.Errorf("epoch = %d, want %d (drain publishes one extra)", got, phases+1)
	}
}

// TestPhaserDeregisterCompletesPhase: a departing signaler's pending
// obligation disappears, completing the phase for the others; the last
// signaler out drains the phaser.
func TestPhaserDeregisterCompletesPhase(t *testing.T) {
	p := NewPhaser()
	a := p.Register(SignalWait)
	b := p.Register(SignalWait)

	ph := a.Arrive()
	if p.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", p.Epoch())
	}
	b.Deregister()
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d after departure, want 1", p.Epoch())
	}
	a.Wait(ph)

	a.Deregister() // last signaler: drain
	if p.Epoch() != 2 {
		t.Fatalf("epoch = %d after drain, want 2", p.Epoch())
	}
	if p.Members() != 0 || p.Signalers() != 0 {
		t.Errorf("members = %d, signalers = %d after drain", p.Members(), p.Signalers())
	}
	if s := p.StatsSnapshot(); s.Syncs != p.Epoch() {
		t.Errorf("Syncs = %d, Epoch = %d", s.Syncs, p.Epoch())
	}
}

// TestPhaserDeregisterAheadProducer: deregistering a producer whose
// signals ran ahead keeps the ready accounting straight for the
// remaining signalers.
func TestPhaserDeregisterAheadProducer(t *testing.T) {
	p := NewPhaser()
	a := p.Register(SignalWait)
	b := p.Register(SignalOnly)
	for i := 0; i < 5; i++ {
		b.Arrive()
	}
	b.Deregister() // ahead by 5; its banked signals vanish with it
	if p.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0 (A never signaled)", p.Epoch())
	}
	// A is now the sole signaler: each arrival completes a phase.
	a.Wait(a.Arrive())
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", p.Epoch())
	}
}

// TestPhaserPanics: protocol violations fail loudly, like the other
// barriers here.
func TestPhaserPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("invalid mode", func() { NewPhaser().Register(PhaserMode(42)) })
	expectPanic("wait on signal-only", func() {
		p := NewPhaser()
		p.Register(SignalWait) // keeps the phaser live
		m := p.Register(SignalOnly)
		m.Wait(m.Arrive())
	})
	expectPanic("arrive after deregister", func() {
		p := NewPhaser()
		p.Register(SignalWait)
		m := p.Register(SignalWait)
		m.Deregister()
		m.Arrive()
	})
	expectPanic("double deregister", func() {
		p := NewPhaser()
		p.Register(SignalWait)
		m := p.Register(SignalWait)
		m.Deregister()
		m.Deregister()
	})
	expectPanic("register on drained", func() {
		p := NewPhaser()
		p.Register(SignalWait).Deregister()
		p.Register(SignalWait)
	})
	expectPanic("arrive on drained", func() {
		p := NewPhaser()
		m := p.Register(WaitOnly)
		p.Register(SignalWait).Deregister()
		m.Arrive()
	})
}

// TestPhaserModeString covers the mode labels.
func TestPhaserModeString(t *testing.T) {
	for mode, want := range map[PhaserMode]string{
		SignalWait:     "signal-wait",
		SignalOnly:     "signal-only",
		WaitOnly:       "wait-only",
		PhaserMode(99): "PhaserMode(99)",
	} {
		if got := mode.String(); got != want {
			t.Errorf("PhaserMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}
