package core

import "unsafe"

// ShardHint returns the caller's routing hash: splitmix64 over a
// per-goroutine seed (the caller's stack address). Distinct goroutines
// occupy distinct stacks, so a stable worker group spreads across
// whatever structure the hash is reduced into — TreeBarrier leaves,
// HierBarrier shards — while each worker keeps re-hitting the same warm
// home from the same call site. Both barriers route through this one
// function so the hash quality is audited in one place
// (TestShardHintDistribution).
//
// The value is a *hint*, never a correctness input: a goroutine's stack
// can move (stack growth copies it) and different call depths on the
// same stack hash differently, so callers must tolerate the hint
// changing between calls. (The address is only hashed, never
// dereferenced or retained.)
func ShardHint() uint64 {
	var probe byte
	return splitmix64(uint64(uintptr(unsafe.Pointer(&probe))))
}

// splitmix64 is the splitmix64 finalizer: full-avalanche mixing, so both
// the low bits (shard selection) and the high bits (leaf selection) of
// the result are usable independently. Stack bases are allocation-size
// aligned, so the raw address must be mixed before any reduction or most
// bits collide.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
