package core

import "testing"

// drive is a tiny helper: step the network once.
func drive(n *Network) { n.Step() }

func TestUnitInitialState(t *testing.T) {
	u := NewUnit(3)
	if u.ID() != 3 {
		t.Errorf("ID = %d, want 3", u.ID())
	}
	if u.State() != StateNonBarrier {
		t.Errorf("state = %v, want non-barrier", u.State())
	}
	if u.Ready() {
		t.Error("fresh unit should not be ready")
	}
	if u.Tag() != TagNone {
		t.Errorf("tag = %d, want TagNone", u.Tag())
	}
}

func TestUnitNonParticipantNeverStalls(t *testing.T) {
	u := NewUnit(0)
	u.SetBarrier(TagNone, 0)
	u.EnterBarrier()
	if u.State() != StateNonBarrier {
		t.Errorf("tag-0 unit entered barrier state %v", u.State())
	}
	if !u.TryCross() {
		t.Error("tag-0 unit must cross freely")
	}
}

func TestTwoUnitSyncHandshake(t *testing.T) {
	n := NewNetwork(2)
	a, b := n.Unit(0), n.Unit(1)
	a.SetBarrier(1, MaskOf(1))
	b.SetBarrier(1, MaskOf(0))

	a.EnterBarrier()
	drive(n)
	if a.State() != StateInBarrier {
		t.Fatalf("a state = %v, want in-barrier (b not ready)", a.State())
	}
	if a.TryCross() {
		t.Fatal("a crossed before b was ready")
	}
	if a.State() != StateStalled {
		t.Fatalf("a state = %v, want stalled", a.State())
	}

	b.EnterBarrier()
	drive(n)
	if a.State() != StateSynced || b.State() != StateSynced {
		t.Fatalf("after both ready: a=%v b=%v, want synced/synced", a.State(), b.State())
	}
	if !a.TryCross() || !b.TryCross() {
		t.Fatal("both must cross after sync")
	}
	if a.Syncs() != 1 || b.Syncs() != 1 {
		t.Errorf("syncs a=%d b=%d, want 1/1", a.Syncs(), b.Syncs())
	}
}

func TestSyncConsumesReadyLine(t *testing.T) {
	// The regression behind the simulator's line-drop rule: after sync,
	// a fast unit re-arriving at the next barrier must not match its
	// partner's stale line.
	n := NewNetwork(2)
	a, b := n.Unit(0), n.Unit(1)
	a.SetBarrier(1, MaskOf(1))
	b.SetBarrier(1, MaskOf(0))
	a.EnterBarrier()
	b.EnterBarrier()
	drive(n)
	if a.Ready() || b.Ready() {
		t.Fatal("ready lines must drop at synchronization")
	}
	// a crosses and re-enters the next barrier while b is still inside
	// the first region (Synced, not crossed).
	if !a.TryCross() {
		t.Fatal("a should cross")
	}
	a.EnterBarrier()
	drive(n)
	if a.State() == StateSynced {
		t.Fatal("a synced against b's stale line")
	}
	// b crosses, re-enters: now they sync properly.
	if !b.TryCross() {
		t.Fatal("b should cross")
	}
	b.EnterBarrier()
	drive(n)
	if a.State() != StateSynced || b.State() != StateSynced {
		t.Fatalf("second sync failed: a=%v b=%v", a.State(), b.State())
	}
}

func TestTagMismatchPreventsSync(t *testing.T) {
	n := NewNetwork(2)
	n.Unit(0).SetBarrier(1, MaskOf(1))
	n.Unit(1).SetBarrier(2, MaskOf(0))
	n.Unit(0).EnterBarrier()
	n.Unit(1).EnterBarrier()
	drive(n)
	if n.Unit(0).State() == StateSynced || n.Unit(1).State() == StateSynced {
		t.Fatal("units with different tags must not synchronize")
	}
}

func TestDisjointMaskGroups(t *testing.T) {
	n := NewNetwork(4)
	n.Unit(0).SetBarrier(1, MaskOf(1))
	n.Unit(1).SetBarrier(1, MaskOf(0))
	n.Unit(2).SetBarrier(2, MaskOf(3))
	n.Unit(3).SetBarrier(2, MaskOf(2))
	// Only group {0,1} arrives.
	n.Unit(0).EnterBarrier()
	n.Unit(1).EnterBarrier()
	drive(n)
	if n.Unit(0).State() != StateSynced || n.Unit(1).State() != StateSynced {
		t.Fatal("group {0,1} should sync independently of {2,3}")
	}
	if n.Unit(2).State() != StateNonBarrier || n.Unit(3).State() != StateNonBarrier {
		t.Fatal("group {2,3} must be untouched")
	}
}

func TestEmptyMaskSyncsImmediately(t *testing.T) {
	n := NewNetwork(2)
	n.Unit(0).SetBarrier(5, 0)
	n.Unit(0).EnterBarrier()
	drive(n)
	if n.Unit(0).State() != StateSynced {
		t.Fatalf("empty-mask unit state = %v, want synced", n.Unit(0).State())
	}
}

func TestStalledUnitSyncsLater(t *testing.T) {
	n := NewNetwork(2)
	a, b := n.Unit(0), n.Unit(1)
	a.SetBarrier(1, MaskOf(1))
	b.SetBarrier(1, MaskOf(0))
	a.EnterBarrier()
	a.TryCross() // stalls
	for i := 0; i < 3; i++ {
		a.NoteStallCycle()
		drive(n)
	}
	if a.State() != StateStalled {
		t.Fatalf("a state = %v, want stalled", a.State())
	}
	if a.StallCycles() != 3 {
		t.Errorf("stall cycles = %d, want 3", a.StallCycles())
	}
	b.EnterBarrier()
	drive(n)
	if a.State() != StateSynced {
		t.Fatalf("stalled unit should sync, state = %v", a.State())
	}
	if !a.TryCross() {
		t.Fatal("a should cross after late sync")
	}
}

func TestEnterBarrierIdempotentInsideRegion(t *testing.T) {
	// The Figure 2 behaviour: re-entering while already in a barrier
	// state is a no-op — the line stays up across the invalid branch.
	n := NewNetwork(2)
	a := n.Unit(0)
	a.SetBarrier(1, MaskOf(1))
	a.EnterBarrier()
	st := a.State()
	a.EnterBarrier()
	if a.State() != st {
		t.Errorf("EnterBarrier changed state %v -> %v", st, a.State())
	}
	if !a.Ready() {
		t.Error("line must stay up")
	}
}

func TestNetworkSimultaneousDiscovery(t *testing.T) {
	// All 8 units become ready before a single Step: every unit must
	// observe the sync in that same step.
	n := NewNetwork(8)
	for i := 0; i < 8; i++ {
		n.Unit(i).SetBarrier(1, AllExcept(8, i))
		n.Unit(i).EnterBarrier()
	}
	drive(n)
	for i := 0; i < 8; i++ {
		if n.Unit(i).State() != StateSynced {
			t.Fatalf("unit %d state = %v, want synced", i, n.Unit(i).State())
		}
	}
}

func TestDeadlockedDetection(t *testing.T) {
	n := NewNetwork(2)
	a, b := n.Unit(0), n.Unit(1)
	a.SetBarrier(1, MaskOf(1))
	b.SetBarrier(1, MaskOf(0))
	halted := func(p int) bool { return p == 1 } // partner halted, never ready
	a.EnterBarrier()
	a.TryCross() // stall
	drive(n)
	if !n.Deadlocked(halted) {
		t.Error("stalled unit with halted partner must be deadlocked")
	}
	// Live partner: not deadlocked.
	if n.Deadlocked(func(int) bool { return false }) {
		t.Error("live partner still running: not a deadlock")
	}
}

func TestNetworkSizeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 65")
		}
	}()
	NewNetwork(65)
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateNonBarrier: "non-barrier",
		StateInBarrier:  "in-barrier",
		StateSynced:     "synced",
		StateStalled:    "stalled",
		State(9):        "State(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestMaskHelpers(t *testing.T) {
	m := MaskOf(0, 2, 5)
	if !m.Has(0) || !m.Has(2) || !m.Has(5) || m.Has(1) {
		t.Errorf("MaskOf bits wrong: %b", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	ae := AllExcept(4, 2)
	if ae.Has(2) {
		t.Error("AllExcept includes self")
	}
	if ae.Count() != 3 {
		t.Errorf("AllExcept(4,2).Count = %d, want 3", ae.Count())
	}
}

// TestNetworkRandomScheduleProperty drives random but well-formed barrier
// usage through the network: every unit runs the same number of
// barrier episodes with randomly interleaved progress, and all units must
// finish with identical sync counts and no unit stuck.
func TestNetworkRandomScheduleProperty(t *testing.T) {
	run := func(seedBytes []byte) bool {
		if len(seedBytes) == 0 {
			return true
		}
		n := int(seedBytes[0]%6) + 2
		episodes := int(seedBytes[len(seedBytes)-1]%5) + 1
		net := NewNetwork(n)
		type pstate struct {
			episode int
			phase   int // 0 = before region, 1 = in region, 2 = trying to cross
			steps   int // region instructions left before trying to cross
		}
		ps := make([]pstate, n)
		for i := 0; i < n; i++ {
			net.Unit(i).SetBarrier(1, AllExcept(n, i))
			ps[i].steps = int(seedBytes[i%len(seedBytes)] % 4)
		}
		// Round-robin with data-dependent skips; bounded loop detects
		// livelock.
		for iter := 0; iter < 10000; iter++ {
			allDone := true
			for i := range ps {
				st := &ps[i]
				if st.episode >= episodes {
					continue
				}
				allDone = false
				// Skip this unit some iterations to create drift (the mix
				// with iter prevents constant seeds from stalling every
				// unit forever).
				if (int(seedBytes[(iter+i)%len(seedBytes)])+iter)%3 == 0 {
					continue
				}
				switch st.phase {
				case 0:
					net.Unit(i).EnterBarrier()
					st.phase = 1
				case 1:
					if st.steps > 0 {
						net.Unit(i).NoteBarrierInstr()
						st.steps--
					} else {
						st.phase = 2
					}
				case 2:
					if net.Unit(i).TryCross() {
						st.episode++
						st.phase = 0
						st.steps = int(seedBytes[(iter+i)%len(seedBytes)] % 4)
					}
				}
			}
			net.Step()
			if allDone {
				break
			}
		}
		for i := 0; i < n; i++ {
			if ps[i].episode != episodes {
				return false
			}
			if net.Unit(i).Syncs() != int64(episodes) {
				return false
			}
		}
		return true
	}
	seeds := [][]byte{
		{1}, {7, 3}, {200, 13, 55, 1}, {9, 9, 9, 9, 9},
		{255, 0, 128, 64, 32, 16, 8, 4, 2, 1},
		{3, 141, 59, 26, 53, 58, 97, 93},
	}
	for i, s := range seeds {
		if !run(s) {
			t.Errorf("seed %d: units diverged or stuck", i)
		}
	}
}
