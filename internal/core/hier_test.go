package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestHierBarrierShape(t *testing.T) {
	cases := []struct {
		n, shards, radix int
		leaves, depth    int
	}{
		{1, 1, 4, 1, 2},      // single-leaf shard + single cross node
		{4, 1, 4, 1, 2},      // one shard absorbs all four
		{8, 2, 4, 2, 2},      // one leaf per shard; cross tree is one node
		{16, 4, 4, 4, 2},     // one leaf per shard feeding one cross node
		{17, 4, 4, 5, 3},     // quotas 5,4,4,4: shard 0 grows a 2-leaf subtree
		{64, 4, 4, 16, 3},    // 16 per shard: 4 leaves + shard root + cross node
		{11, 3, 2, 6, 4},     // quotas 4,4,3 at radix 2: two cross levels
		{1024, 8, 4, 256, 6}, // 128 per shard: 3 subtree levels + 2 cross levels
	}
	for _, c := range cases {
		b := NewHierBarrierConfig(c.n, HierConfig{Shards: c.shards, Radix: c.radix})
		if b.Shards() != c.shards {
			t.Errorf("Hier(%d,s%d,r%d): shards = %d, want %d", c.n, c.shards, c.radix, b.Shards(), c.shards)
		}
		if got := b.Leaves(); got != c.leaves {
			t.Errorf("Hier(%d,s%d,r%d): leaves = %d, want %d", c.n, c.shards, c.radix, got, c.leaves)
		}
		// Shard quotas must be balanced (max-min <= 1) and sum to n; leaf
		// quotas within each shard must sum to the shard quota.
		var total int64
		min, max := b.shards[0].quota, b.shards[0].quota
		for s := range b.shards {
			q := b.shards[s].quota
			total += q
			if q < min {
				min = q
			}
			if q > max {
				max = q
			}
			var leafCap int64
			for j := 0; j < b.shards[s].nLeaves; j++ {
				lq := b.nodes[b.shards[s].leafBase+j].quota
				if lq < 1 {
					t.Errorf("Hier(%d,s%d,r%d): shard %d leaf %d quota %d < 1", c.n, c.shards, c.radix, s, j, lq)
				}
				leafCap += lq
			}
			if leafCap != q {
				t.Errorf("Hier(%d,s%d,r%d): shard %d leaf capacity %d, want %d", c.n, c.shards, c.radix, s, leafCap, q)
			}
		}
		if total != int64(c.n) {
			t.Errorf("Hier(%d,s%d,r%d): shard quotas sum to %d, want %d", c.n, c.shards, c.radix, total, c.n)
		}
		if max-min > 1 {
			t.Errorf("Hier(%d,s%d,r%d): shard quotas unbalanced: min %d max %d", c.n, c.shards, c.radix, min, max)
		}
		// Every interior node's quota must equal its actual child count,
		// counting each shard subtree root as a child of its cross-tree
		// leaf. Exactly one node (the cross-tree root) has parent -1.
		children := make(map[int]int64)
		roots := 0
		for i := range b.nodes {
			if p := b.nodes[i].parent; p >= 0 {
				children[p]++
			} else {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("Hier(%d,s%d,r%d): %d parentless nodes, want 1", c.n, c.shards, c.radix, roots)
		}
		for p, got := range children {
			if b.nodes[p].quota != got {
				t.Errorf("Hier(%d,s%d,r%d): node %d quota %d, children %d", c.n, c.shards, c.radix, p, b.nodes[p].quota, got)
			}
		}
		if got := b.Depth(); got != c.depth {
			t.Errorf("Hier(%d,s%d,r%d): depth = %d, want %d", c.n, c.shards, c.radix, got, c.depth)
		}
		if b.N() != c.n || b.Radix() != c.radix {
			t.Errorf("Hier(%d,s%d,r%d): N/Radix = %d/%d", c.n, c.shards, c.radix, b.N(), b.Radix())
		}
		if len(b.rel) != c.shards {
			t.Errorf("Hier(%d,s%d,r%d): %d release words, want %d", c.n, c.shards, c.radix, len(b.rel), c.shards)
		}
	}
}

// TestHierBarrierDerivedLayout checks the GOMAXPROCS derivation: shard
// count min(GOMAXPROCS, n), radix DefaultTreeRadix widened so the
// cross-shard tree stays at two levels.
func TestHierBarrierDerivedLayout(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	b := NewHierBarrier(4096)
	want := procs
	if want > 4096 {
		want = 4096
	}
	if b.Shards() != want {
		t.Errorf("shards = %d, want min(GOMAXPROCS=%d, n)", b.Shards(), procs)
	}
	if b.Radix() < DefaultTreeRadix {
		t.Errorf("radix = %d, want >= %d", b.Radix(), DefaultTreeRadix)
	}
	if b.Radix()*b.Radix() < b.Shards() {
		t.Errorf("radix %d too narrow for %d shards (cross tree deeper than 2 levels)", b.Radix(), b.Shards())
	}
	// Shards never exceed n, even when the host is wider than the group.
	if got := NewHierBarrier(2).Shards(); got > 2 {
		t.Errorf("Hier(2): shards = %d, want <= 2", got)
	}
}

func TestHierBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewHierBarrier(0)
}

func TestHierBarrierSingleParticipant(t *testing.T) {
	b := NewHierBarrier(1)
	for i := 0; i < 10; i++ {
		ph := b.Arrive()
		if !b.TryWait(ph) {
			t.Fatal("single participant should sync instantly")
		}
		b.Wait(ph)
	}
	if b.Epoch() != 10 {
		t.Errorf("epoch = %d, want 10", b.Epoch())
	}
}

func TestHierBarrierRegionOverlap(t *testing.T) {
	// A fast worker must be able to execute region work and finish Wait
	// as soon as the slow worker arrives — same contract as FuzzyBarrier.
	b := NewHierBarrierConfig(2, HierConfig{Shards: 2})
	done := make(chan struct{})
	go func() {
		ph := b.Arrive()
		b.Wait(ph)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait returned before partner arrived")
	case <-time.After(10 * time.Millisecond):
	}
	b.Arrive() // partner arrives; never waits
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("wait did not return after partner arrived")
	}
}

func TestHierBarrierTryWait(t *testing.T) {
	b := NewHierBarrier(2)
	ph := b.Arrive()
	if b.TryWait(ph) {
		t.Fatal("TryWait true before partner arrived")
	}
	b.Arrive()
	if !b.TryWait(ph) {
		t.Fatal("TryWait false after all arrived")
	}
	b.Wait(ph) // must be a fast path now
	_, _, fast, _, blocks, _ := b.Stats()
	if fast != 1 || blocks != 0 {
		t.Errorf("fast=%d blocks=%d, want 1/0", fast, blocks)
	}
}

// TestHierBarrierOrdersPhases is the FuzzyBarrier memory-ordering test on
// the hierarchical implementation, with shard counts that leave some
// shards partial and force the cross-shard tree to do real combining.
func TestHierBarrierOrdersPhases(t *testing.T) {
	for _, workers := range []int{2, 3, 5, 8, 13} {
		workers := workers
		t.Run(itoa2(workers), func(t *testing.T) {
			t.Parallel()
			const phases = 100
			b := NewHierBarrierConfig(workers, HierConfig{Shards: 3, Radix: 2})
			published := make([]atomic.Int64, workers)
			errs := make(chan string, workers*phases)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for p := int64(0); p < phases; p++ {
						published[id].Store(p)
						ph := b.Arrive()
						b.Wait(ph)
						for j := range published {
							if got := published[j].Load(); got < p {
								errs <- "worker saw stale phase"
							}
						}
						b.Await() // nobody advances until all checked
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if got := b.Epoch(); got != 2*phases {
				t.Errorf("epoch = %d, want %d", got, 2*phases)
			}
		})
	}
}

// TestHierBarrierAwaitIsPointBarrier runs the counter detector across
// participant counts including large, non-shard-aligned ones, under the
// GOMAXPROCS-derived default layout.
func TestHierBarrierAwaitIsPointBarrier(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16, 33, 257} {
		workers := workers
		t.Run(itoa2(workers), func(t *testing.T) {
			t.Parallel()
			episodes := 50
			if workers > 50 {
				episodes = 10
			}
			b := NewHierBarrier(workers)
			var counter atomic.Int64
			var wg sync.WaitGroup
			bad := make(chan int64, workers*episodes)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for e := int64(0); e < int64(episodes); e++ {
						counter.Add(1)
						b.Await()
						if got := counter.Load(); got != int64(workers)*(e+1) {
							bad <- got
						}
						b.Await()
					}
				}()
			}
			wg.Wait()
			close(bad)
			for v := range bad {
				t.Fatalf("counter = %d between barriers (inconsistent)", v)
			}
			if got := b.Epoch(); got != int64(2*episodes) {
				t.Errorf("epoch = %d, want %d", got, 2*episodes)
			}
		})
	}
}

// TestHierBarrierEpochNeverSkipsProperty mirrors the tree property test
// for random sizes, shard counts and radices.
func TestHierBarrierEpochNeverSkipsProperty(t *testing.T) {
	f := func(w, e, s, r uint8) bool {
		workers := int(w%9) + 1
		episodes := int(e%20) + 1
		shards := int(s%5) + 1
		radix := int(r%3) + 2
		b := NewHierBarrierConfig(workers, HierConfig{Shards: shards, Radix: radix})
		var wg sync.WaitGroup
		ok := atomic.Bool{}
		ok.Store(true)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := int64(-1)
				for ep := 0; ep < episodes; ep++ {
					ph := b.Arrive()
					b.Wait(ph)
					cur := b.Epoch()
					if cur <= last {
						ok.Store(false)
					}
					last = cur
				}
			}()
		}
		wg.Wait()
		return ok.Load() && b.Epoch() == int64(episodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHierBarrierProbeUndoDeterministic drives every arrival to shard 0
// leaf 0 via ArriveShardLeaf, so the whole probe cascade runs with a
// known answer: within a shard the i-th leaf's arrivals probe past every
// already-full leaf before it, a spilled arrival skips each full shard
// with exactly one root probe, serial arrivals never overshoot (zero
// undos), and the cumulative counters end each phase at exactly
// quota·(phase+1).
func TestHierBarrierProbeUndoDeterministic(t *testing.T) {
	const n, shards, radix, phases = 11, 3, 2, 5
	b := NewHierBarrierConfig(n, HierConfig{Shards: shards, Radix: radix})
	// Per-phase expected probes, from the layout: an arrival claiming
	// shard s, local leaf j first skips shards 0..s-1 (1 root probe each,
	// since the earlier shards are completely full and climbed by the
	// time a serial driver spills) and probes the j full leaves before
	// its own.
	var perPhase int64
	for s := range b.shards {
		perPhase += int64(s) * b.shards[s].quota // root skips to reach shard s
		for j := 0; j < b.shards[s].nLeaves; j++ {
			perPhase += int64(j) * b.nodes[b.shards[s].leafBase+j].quota
		}
	}
	for p := int64(0); p < phases; p++ {
		var ph Phase
		for id := 0; id < n; id++ {
			ph = b.ArriveShardLeaf(0, 0)
		}
		b.Wait(ph)
		if got, want := b.Probes(), (p+1)*perPhase; got != want {
			t.Errorf("after phase %d: Probes() = %d, want %d", p, got, want)
		}
		if got := b.Undos(); got != 0 {
			t.Errorf("after phase %d: Undos() = %d, want 0 (serial arrivals never overshoot)", p, got)
		}
		for i := range b.nodes {
			if got, want := b.nodes[i].count.Load(), b.nodes[i].quota*(p+1); got != want {
				t.Errorf("after phase %d: node %d count = %d, want exactly %d", p, i, got, want)
			}
		}
	}
	if b.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), phases)
	}
}

// TestHierBarrierCollisionInvariant hammers shard 0 leaf 0 from many
// goroutines — the worst case ShardHint is supposed to avoid — and
// checks the overshoot-undo invariant concurrently: a node's cumulative
// count never dips below the target of any completed phase (every undo
// cancels only its own overshoot), every phase ends with every node at
// exactly quota·phase (one climber per node per phase), and the
// colliders really did probe or spill.
func TestHierBarrierCollisionInvariant(t *testing.T) {
	const workers, phases, shards, radix = 9, 150, 3, 2
	b := NewHierBarrierConfig(workers, HierConfig{Shards: shards, Radix: radix})
	stop := make(chan struct{})
	var below atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Load the epoch first: the invariant count >= quota*e holds
			// for any e that was complete at or before the count read.
			e := b.Epoch()
			for i := range b.nodes {
				if b.nodes[i].count.Load() < b.nodes[i].quota*e {
					below.Add(1)
				}
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				b.Wait(b.ArriveShardLeaf(0, 0)) // everyone collides
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if n := below.Load(); n > 0 {
		t.Errorf("%d samples saw a count below a completed phase's target (undo leaked)", n)
	}
	for i := range b.nodes {
		if got, want := b.nodes[i].count.Load(), b.nodes[i].quota*phases; got != want {
			t.Errorf("node %d final count = %d, want exactly %d (one climber per node per phase)", i, got, want)
		}
	}
	// Shard 0 holds 3 of the 9 slots per phase; the other 6 arrivals of
	// every phase must each have probed or spilled at least once.
	if minProbes := int64(phases * (workers - 3)); b.Probes()+b.Undos() < minProbes {
		t.Errorf("Probes()+Undos() = %d+%d, want >= %d", b.Probes(), b.Undos(), minProbes)
	}
	if b.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), phases)
	}
}

// TestHierBarrierArriveDuringReleaseFanout hammers the release edge: a
// waiter released through its shard's epoch word may re-Arrive while
// the publisher is still CAS-maxing the remaining shards' words. The
// publish-before-fan-out order must hand it a fresh epoch (a stale one
// would spin through a fully-claimed phase), and the monotone CAS must
// survive two overlapping publishers. SpinLimit 1 steers Waits onto
// every slow-path flavor at the same time.
func TestHierBarrierArriveDuringReleaseFanout(t *testing.T) {
	const workers, phases = 8, 1500
	b := NewHierBarrierConfig(workers, HierConfig{Shards: workers, Radix: 2})
	b.SpinLimit = 1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				// One worker per shard: each phase's last climber fans out
				// while the other seven race straight into the next Arrive.
				b.Wait(b.ArriveShardLeaf(id, 0))
			}
		}(w)
	}
	wg.Wait()
	if got := b.Epoch(); got != phases {
		t.Errorf("epoch = %d, want %d", got, phases)
	}
	// Every shard's release word must have caught up to the final epoch.
	for s := range b.rel {
		if got := b.rel[s].epoch.Load(); got != phases {
			t.Errorf("shard %d release word = %d, want %d", s, got, phases)
		}
	}
}

// TestHierBarrierSlotFor: routing participant i to SlotFor(i) fills
// every leaf to exactly its quota — no probes, no undos.
func TestHierBarrierSlotFor(t *testing.T) {
	const n = 23
	b := NewHierBarrierConfig(n, HierConfig{Shards: 4, Radix: 3})
	var ph Phase
	for i := 0; i < n; i++ {
		s, l := b.SlotFor(i)
		ph = b.ArriveShardLeaf(s, l)
	}
	b.Wait(ph)
	if b.Probes() != 0 || b.Undos() != 0 {
		t.Errorf("probes=%d undos=%d after balanced routing, want 0/0", b.Probes(), b.Undos())
	}
	for s := range b.shards {
		for j := 0; j < b.shards[s].nLeaves; j++ {
			nd := &b.nodes[b.shards[s].leafBase+j]
			if nd.count.Load() != nd.quota {
				t.Errorf("shard %d leaf %d count = %d, want quota %d", s, j, nd.count.Load(), nd.quota)
			}
		}
	}
	if b.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", b.Epoch())
	}
}

// TestHierBarrierArrivePanics: shard/leaf/slot range validation.
func TestHierBarrierArrivePanics(t *testing.T) {
	b := NewHierBarrierConfig(8, HierConfig{Shards: 2, Radix: 2})
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("shard -1", func() { b.ArriveShardLeaf(-1, 0) })
	expectPanic("shard high", func() { b.ArriveShardLeaf(b.Shards(), 0) })
	expectPanic("leaf -1", func() { b.ArriveShardLeaf(0, -1) })
	expectPanic("leaf high", func() { b.ArriveShardLeaf(0, b.ShardLeaves(0)) })
	expectPanic("slot -1", func() { b.SlotFor(-1) })
	expectPanic("slot high", func() { b.SlotFor(b.N()) })
	expectPanic("shard-leaves high", func() { b.ShardLeaves(b.Shards()) })
}

// TestHierBarrierBeatsCentralOnHotspot is the arrive-side contention
// claim at 256 participants: the hierarchical barrier's hottest counter
// word absorbs far fewer operations per phase than the central barrier's
// single counter (n+1). Like the tree test this is a property of the
// algorithm, not of the host's core count.
func TestHierBarrierBeatsCentralOnHotspot(t *testing.T) {
	const workers = 256
	const episodes = 20
	run := func(b SplitBarrier) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					b.Wait(b.Arrive())
				}
			}()
		}
		wg.Wait()
	}

	central := NewFuzzyBarrier(workers)
	run(central)
	cOps, cPhases := central.HotspotOps()
	if cPhases != episodes {
		t.Fatalf("central phases = %d, want %d", cPhases, episodes)
	}
	cPer := float64(cOps) / float64(cPhases)

	hier := NewHierBarrier(workers)
	run(hier)
	hOps, hPhases := hier.HotspotOps()
	if hPhases != episodes {
		t.Fatalf("hier phases = %d, want %d", hPhases, episodes)
	}
	hPer := float64(hOps) / float64(hPhases)
	if hPer >= cPer/2 {
		t.Errorf("hier hotspot = %.1f ops/phase, central = %.1f — hier should be far lower", hPer, cPer)
	}
	t.Logf("hotspot ops/phase at n=%d: central=%.1f hier=%.1f (shards=%d probes=%d undos=%d)",
		workers, cPer, hPer, hier.Shards(), hier.Probes(), hier.Undos())
}
