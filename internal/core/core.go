// Package core implements the paper's primary contribution: the fuzzy
// barrier (Gupta, ASPLOS 1989).
//
// A fuzzy barrier replaces the single synchronization *point* of a
// conventional barrier with a *region* of instructions. A processor is
// ready to synchronize as soon as it exits the non-barrier region
// preceding the barrier region; it may keep executing instructions inside
// the barrier region while synchronization is pending; it stalls only if
// it reaches the end of the region before all participating processors
// have become ready:
//
//	∀i: UNSHADED2ᵢ may execute  iff  ∀j: UNSHADED1ⱼ has executed
//
// The package provides the mechanism in both of the paper's forms:
//
//   - Unit / Network: the per-processor hardware state machine, tag+mask
//     register and broadcast ready lines of Section 6, consumed by the
//     cycle-level simulator in internal/machine.
//
//   - FuzzyBarrier: a runtime split-phase barrier for goroutines
//     (Arrive / Wait), the software analog the paper measured on the
//     Encore Multimax in Section 8. Arrive corresponds to entering the
//     barrier region, Wait to exiting it; the code executed between the
//     two calls is the barrier region.
//
//   - Allocator / SpawnTree: the multiple-barrier discipline of Section 5
//     — logically distinct barriers identified by tags, disjoint subsets
//     synchronizing independently via masks, and the N−1 barrier bound
//     for dynamically created streams.
package core

// Tag identifies a logical barrier. Two processors can only synchronize at
// a barrier if their tags match. TagNone (all zeros) indicates that the
// processor is not participating in barrier synchronization, so a system
// with an m-bit tag supports 2^m − 1 logical barriers (Section 6).
type Tag uint64

// TagNone marks a processor as not participating in any barrier.
const TagNone Tag = 0

// Mask selects the processors a given processor wishes to synchronize
// with: bit j set means "synchronize with processor j". A processor's own
// bit is ignored (the paper's mask has n−1 bits, one per *other*
// processor).
type Mask uint64

// MaskOf builds a Mask with the given processor bits set.
func MaskOf(procs ...int) Mask {
	var m Mask
	for _, p := range procs {
		m |= 1 << uint(p)
	}
	return m
}

// AllExcept returns the mask selecting every processor in [0, n) except
// self — the usual "everyone synchronizes" configuration.
func AllExcept(n, self int) Mask {
	var m Mask
	for p := 0; p < n; p++ {
		if p != self {
			m |= 1 << uint(p)
		}
	}
	return m
}

// Has reports whether processor p is selected by the mask.
func (m Mask) Has(p int) bool { return m&(1<<uint(p)) != 0 }

// Count returns the number of selected processors.
func (m Mask) Count() int {
	n := 0
	for v := uint64(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}
