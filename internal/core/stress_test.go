package core

import "testing"

// stressPhases scales the harness for CI: -short keeps make check and
// the race-enabled verify lane fast; full runs push harder.
func stressPhases(t *testing.T) int {
	if testing.Short() {
		return 64
	}
	return 400
}

// TestStressBarriers runs the weak-memory harness over every runtime
// barrier, with both the default spin budget and a starved one
// (SpinLimit 1 forces the block path through the condition variable).
func TestStressBarriers(t *testing.T) {
	phases := stressPhases(t)
	for _, barrier := range []string{"fuzzy", "tree", "hier", "dynamic"} {
		for _, spin := range []int{0, 1} {
			rep, err := Stress(StressConfig{
				Barrier: barrier, Workers: 4, Phases: phases,
				Seed: 0x5eed, SpinLimit: spin,
			})
			if err != nil {
				t.Fatalf("%s spin=%d: %v", barrier, spin, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s spin=%d: %s", barrier, spin, v)
			}
			t.Logf("%s", rep)
		}
	}
}

// TestStressTreeShapes covers non-trivial tree topologies: worker
// counts that don't fill the last level, and radix 2 vs 4.
func TestStressTreeShapes(t *testing.T) {
	phases := stressPhases(t)
	for _, tc := range []struct{ workers, radix int }{
		{5, 2}, {7, 4}, {9, 2},
	} {
		rep, err := Stress(StressConfig{
			Barrier: "tree", Workers: tc.workers, Phases: phases,
			Seed: 0xcafe, TreeRadix: tc.radix,
		})
		if err != nil {
			t.Fatalf("workers=%d radix=%d: %v", tc.workers, tc.radix, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("workers=%d radix=%d: %s", tc.workers, tc.radix, v)
		}
	}
}

// TestStressHierShapes covers non-trivial hierarchical topologies:
// worker counts that leave shards unbalanced, a pinned single shard
// (degenerate guarded tree), and more shards than the host has cores so
// the release fan-out always outlives some waiters' spin windows.
func TestStressHierShapes(t *testing.T) {
	phases := stressPhases(t)
	for _, tc := range []struct{ workers, shards, radix int }{
		{5, 2, 2}, {7, 3, 4}, {9, 1, 2}, {8, 8, 2},
	} {
		for _, spin := range []int{0, 1} {
			rep, err := Stress(StressConfig{
				Barrier: "hier", Workers: tc.workers, Phases: phases,
				Seed: 0x41e5, SpinLimit: spin,
				HierShards: tc.shards, TreeRadix: tc.radix,
			})
			if err != nil {
				t.Fatalf("workers=%d shards=%d radix=%d spin=%d: %v", tc.workers, tc.shards, tc.radix, spin, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("workers=%d shards=%d radix=%d spin=%d: %s", tc.workers, tc.shards, tc.radix, spin, v)
			}
		}
	}
}

// TestStressDynamicChurn adds transient members registering and leaving
// against the permanent members' phases — the schedule class that found
// the pre-mutex DynamicBarrier races (see dynamic.go and
// TestRaceDynamicRegisterDuringCompletion).
func TestStressDynamicChurn(t *testing.T) {
	phases := stressPhases(t)
	rep, err := Stress(StressConfig{
		Barrier: "dynamic", Workers: 4, Phases: phases,
		Seed: 0xd1ce, Churners: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.ChurnJoins == 0 {
		t.Error("churners never completed a join/leave round")
	}
	t.Logf("%s", rep)
}

// TestStressReduce hammers the reduce barrier: every WaitValue result is
// compared against the serial fold of that phase's contributions. The
// seeds are chosen so every operator in the harness's {sum, xor, min,
// max} family is drawn at least once (logged for inspection), and both
// spin budgets steer Waits onto every slow-path flavor.
func TestStressReduce(t *testing.T) {
	phases := stressPhases(t)
	seen := map[string]bool{}
	for _, seed := range []uint64{0x5eed, 0x5eed + 1, 0x5eed + 2, 0x5eed + 3, 0xfeed, 0xdead} {
		for _, spin := range []int{0, 1} {
			rep, err := Stress(StressConfig{
				Barrier: "reduce", Workers: 4, Phases: phases,
				Seed: seed, SpinLimit: spin, TreeRadix: 2,
			})
			if err != nil {
				t.Fatalf("seed=%#x spin=%d: %v", seed, spin, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("seed=%#x spin=%d: %s", seed, spin, v)
			}
			seen[rep.ReduceOp] = true
			t.Logf("%s", rep)
		}
	}
	for _, op := range []string{"sum", "xor", "min", "max"} {
		if !seen[op] {
			t.Errorf("operator %q never drawn by the seed set — extend the seeds", op)
		}
	}
}

// TestStressPhaser runs the phaser under permanent signal+wait members
// with signal-only and wait-only churners registering and leaving
// against live phases.
func TestStressPhaser(t *testing.T) {
	phases := stressPhases(t)
	for _, churners := range []int{0, 4} {
		for _, spin := range []int{0, 1} {
			rep, err := Stress(StressConfig{
				Barrier: "phaser", Workers: 4, Phases: phases,
				Seed: 0x9a5e, SpinLimit: spin, Churners: churners,
			})
			if err != nil {
				t.Fatalf("churners=%d spin=%d: %v", churners, spin, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("churners=%d spin=%d: %s", churners, spin, v)
			}
			if churners > 0 && rep.ChurnJoins == 0 {
				t.Error("phaser churners never completed a register/leave round")
			}
			t.Logf("%s", rep)
		}
	}
}

// TestStressConfigErrors: invalid configs are rejected up front.
func TestStressConfigErrors(t *testing.T) {
	for _, cfg := range []StressConfig{
		{Barrier: "nope", Workers: 2, Phases: 10},
		{Barrier: "fuzzy", Workers: 0, Phases: 10},
		{Barrier: "fuzzy", Workers: 2, Phases: 0},
		{Barrier: "fuzzy", Workers: 2, Phases: 10, Churners: 1},  // churn needs dynamic or phaser
		{Barrier: "reduce", Workers: 2, Phases: 10, Churners: 1}, // reduce has fixed membership
		{Barrier: "dynamic", Workers: 2, Phases: 4, Churners: 1}, // churn needs >= 8 phases
		{Barrier: "phaser", Workers: 2, Phases: 4, Churners: 1},  // same bound for phaser churn
		{Barrier: "dynamic", Workers: 2, Phases: 10, Churners: -1},
	} {
		if _, err := Stress(cfg); err == nil {
			t.Errorf("config %+v: expected an error", cfg)
		}
	}
}
