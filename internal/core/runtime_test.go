package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFuzzyBarrierOrdersPhases(t *testing.T) {
	const workers = 4
	const phases = 200
	b := NewFuzzyBarrier(workers)
	// Each worker publishes its phase number; after Wait all published
	// values must equal the current phase.
	published := make([]atomic.Int64, workers)
	errs := make(chan string, workers*phases)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := int64(0); p < phases; p++ {
				published[id].Store(p)
				ph := b.Arrive()
				b.Wait(ph)
				for j := range published {
					if got := published[j].Load(); got < p {
						errs <- "worker saw stale phase"
					}
				}
				b.Await() // second barrier: nobody advances until all checked
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := b.Epoch(); got != 2*phases {
		t.Errorf("epoch = %d, want %d", got, 2*phases)
	}
}

func TestFuzzyBarrierRegionOverlap(t *testing.T) {
	// A fast worker must be able to execute region work and even finish
	// Wait instantly once the slow worker arrives.
	b := NewFuzzyBarrier(2)
	done := make(chan struct{})
	go func() {
		ph := b.Arrive()
		b.Wait(ph)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait returned before partner arrived")
	case <-time.After(10 * time.Millisecond):
	}
	b.Arrive() // partner arrives; never waits
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("wait did not return after partner arrived")
	}
}

func TestTryWait(t *testing.T) {
	b := NewFuzzyBarrier(2)
	ph := b.Arrive()
	if b.TryWait(ph) {
		t.Fatal("TryWait true before partner arrived")
	}
	b.Arrive()
	if !b.TryWait(ph) {
		t.Fatal("TryWait false after all arrived")
	}
	b.Wait(ph) // must be a fast path now
	_, _, fast, _, blocks, _ := b.Stats()
	if fast != 1 || blocks != 0 {
		t.Errorf("fast=%d blocks=%d, want 1/0", fast, blocks)
	}
}

func TestAwaitIsPointBarrier(t *testing.T) {
	const workers = 8
	const episodes = 100
	b := NewFuzzyBarrier(workers)
	var counter atomic.Int64
	var wg sync.WaitGroup
	bad := make(chan int64, workers*episodes)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := int64(0); e < episodes; e++ {
				counter.Add(1)
				b.Await()
				// Between the two barriers the counter is stable at
				// workers*(e+1).
				if got := counter.Load(); got != workers*(e+1) {
					bad <- got
				}
				b.Await()
			}
		}()
	}
	wg.Wait()
	close(bad)
	for v := range bad {
		t.Fatalf("counter = %d between barriers (inconsistent)", v)
	}
}

func TestSingleParticipant(t *testing.T) {
	b := NewFuzzyBarrier(1)
	for i := 0; i < 10; i++ {
		ph := b.Arrive()
		if !b.TryWait(ph) {
			t.Fatal("single participant should sync instantly")
		}
		b.Wait(ph)
	}
	if b.Epoch() != 10 {
		t.Errorf("epoch = %d, want 10", b.Epoch())
	}
}

func TestNewFuzzyBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewFuzzyBarrier(0)
}

func TestBlockedWaitsAreCounted(t *testing.T) {
	b := NewFuzzyBarrier(2)
	b.SpinLimit = 1 // force blocking quickly
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		ph := b.Arrive()
		close(release)
		b.Wait(ph)
		close(done)
	}()
	<-release
	time.Sleep(5 * time.Millisecond) // let the waiter exhaust its spin budget
	b.Arrive()
	<-done
	_, _, _, _, blocks, _ := b.Stats()
	if blocks != 1 {
		t.Errorf("blocks = %d, want 1", blocks)
	}
}

// TestEpochNeverSkipsProperty: for any (workers, episodes) within bounds,
// every worker observes epochs in strictly increasing order and the final
// epoch equals the episode count.
func TestEpochNeverSkipsProperty(t *testing.T) {
	f := func(w uint8, e uint8) bool {
		workers := int(w%6) + 1
		episodes := int(e%30) + 1
		b := NewFuzzyBarrier(workers)
		var wg sync.WaitGroup
		ok := atomic.Bool{}
		ok.Store(true)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := int64(-1)
				for ep := 0; ep < episodes; ep++ {
					ph := b.Arrive()
					b.Wait(ph)
					cur := b.Epoch()
					if cur <= last {
						ok.Store(false)
					}
					last = cur
				}
			}()
		}
		wg.Wait()
		return ok.Load() && b.Epoch() == int64(episodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTaggedBarrier(t *testing.T) {
	b := NewTaggedFuzzyBarrier(2, 7)
	if b.Tag() != 7 {
		t.Errorf("tag = %d, want 7", b.Tag())
	}
	if b.N() != 2 {
		t.Errorf("n = %d, want 2", b.N())
	}
}
