package core

import (
	"runtime"
	"testing"
	"time"
)

// startExhaustedWaiter launches a waiter that is guaranteed to burn its
// whole spin budget: the test holds w.mu, so the waiter cannot reach the
// locked recheck, and the returned function blocks until the waiter has
// recorded the exhausted histogram bucket — which happens strictly
// before its mu.Lock, so once observed the waiter's fate is decided
// entirely by what the test does with the mutex and the epoch.
func startExhaustedWaiter(t *testing.T, w *phaseWaiter, stats *RuntimeStats) (awaitExhausted, awaitDone func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		w.wait(Phase{epoch: 0}, 4, stats)
		close(done)
	}()
	awaitExhausted = func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for stats.waitSpins[NumWaitBuckets-1].Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never exhausted its spin budget")
			}
			runtime.Gosched()
		}
	}
	awaitDone = func() {
		t.Helper()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("waiter never returned")
		}
	}
	return awaitExhausted, awaitDone
}

// TestWaitLockResolvedIsNotABlock is the regression test for the Blocks
// misattribution: a Wait that exhausts its spin budget but finds the
// epoch already published at the locked recheck never sleeps on the
// condition variable, so it must be charged as a LockWait, not a Block.
// The old code bumped Blocks before taking the mutex, counting this
// no-context-switch outcome as the expensive case Section 8 isolates.
//
// The lock-but-no-sleep window is driven deterministically: the test
// holds the waiter mutex across the whole spin phase, then advances the
// epoch while still holding it, so the waiter's recheck — the first
// thing it can do after the spins — is guaranteed to see the phase
// complete.
func TestWaitLockResolvedIsNotABlock(t *testing.T) {
	var w phaseWaiter
	w.init()
	var stats RuntimeStats

	w.mu.Lock()
	awaitExhausted, awaitDone := startExhaustedWaiter(t, &w, &stats)
	awaitExhausted()
	// Publish under the mutex the waiter is parked on: when it acquires
	// the lock, the recheck must resolve the wait without a sleep.
	w.epoch.Add(1)
	w.mu.Unlock()
	awaitDone()

	s := stats.Snapshot()
	if s.Blocks != 0 {
		t.Errorf("Blocks = %d, want 0: a lock-resolved Wait was counted as a block", s.Blocks)
	}
	if s.LockWaits != 1 {
		t.Errorf("LockWaits = %d, want 1", s.LockWaits)
	}
	if s.FastWaits != 0 || s.SpinWaits != 0 {
		t.Errorf("FastWaits = %d, SpinWaits = %d, want 0, 0", s.FastWaits, s.SpinWaits)
	}
	checkHistogramReconciles(t, s)
}

// TestWaitRealBlockStillCounted is the other half of the regression: a
// Wait that reaches the locked recheck with the phase still pending must
// be charged as a Block (it provably sleeps — the recheck runs under the
// same mutex publish advances the epoch under).
func TestWaitRealBlockStillCounted(t *testing.T) {
	var w phaseWaiter
	w.init()
	var stats RuntimeStats

	w.mu.Lock()
	awaitExhausted, awaitDone := startExhaustedWaiter(t, &w, &stats)
	awaitExhausted()
	// Release the mutex without advancing the epoch: the recheck fails
	// and the waiter sleeps on the condition variable.
	w.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for stats.Blocks.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never took the block path")
		}
		runtime.Gosched()
	}
	// Blocks is charged with the mutex held and cond.Wait entered before
	// it is released, so publish (which takes the same mutex) cannot
	// slip in between the recheck and the sleep.
	w.publish()
	awaitDone()

	s := stats.Snapshot()
	if s.Blocks != 1 {
		t.Errorf("Blocks = %d, want 1", s.Blocks)
	}
	if s.LockWaits != 0 {
		t.Errorf("LockWaits = %d, want 0", s.LockWaits)
	}
	checkHistogramReconciles(t, s)
}

// TestWaitFastAndSpinBuckets covers the resolved outcomes: a fast Wait
// lands in the first bucket with zero iterations, and a spin-resolved
// Wait is charged both an outcome and a bucket.
func TestWaitFastAndSpinBuckets(t *testing.T) {
	var w phaseWaiter
	w.init()
	var stats RuntimeStats

	w.publish()
	w.wait(Phase{epoch: 0}, 4, &stats)
	s := stats.Snapshot()
	if s.FastWaits != 1 || s.WaitSpins[0] != 1 {
		t.Errorf("fast wait: FastWaits = %d, bucket0 = %d, want 1, 1", s.FastWaits, s.WaitSpins[0])
	}
	checkHistogramReconciles(t, s)

	// Spin-resolved: publish concurrently while the waiter spins with a
	// huge budget, so it resolves during the spin loop.
	done := make(chan struct{})
	go func() {
		w.wait(Phase{epoch: 1}, 1<<30, &stats)
		close(done)
	}()
	w.publish()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("spinning waiter never resolved")
	}
	s = stats.Snapshot()
	if s.SpinWaits+s.FastWaits != 2 {
		t.Errorf("after second wait: FastWaits+SpinWaits = %d, want 2", s.SpinWaits+s.FastWaits)
	}
	if s.SpinWaits == 1 && s.SpinIters < 1 {
		t.Errorf("SpinIters = %d, want >= 1 for a spin-resolved Wait", s.SpinIters)
	}
	checkHistogramReconciles(t, s)
}

// checkHistogramReconciles asserts the bucket bookkeeping: the histogram
// total equals Waits() and the exhausted bucket holds exactly the waits
// that burned their whole budget (LockWaits + Blocks).
func checkHistogramReconciles(t *testing.T, s BarrierStats) {
	t.Helper()
	var hist int64
	for _, c := range s.WaitSpins {
		hist += c
	}
	if hist != s.Waits() {
		t.Errorf("histogram sums to %d, Waits() = %d", hist, s.Waits())
	}
	if got := s.WaitSpins[NumWaitBuckets-1]; got != s.LockWaits+s.Blocks {
		t.Errorf("exhausted bucket = %d, LockWaits+Blocks = %d", got, s.LockWaits+s.Blocks)
	}
}
