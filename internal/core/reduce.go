package core

import (
	"fmt"
	"math"
	"sync/atomic"
)

// ReduceOp combines two reduction contributions. The operation must be
// associative and commutative: contributions are combined up the tree in
// whatever order arrivals race into the nodes, so any grouping and any
// order must give the same result (sum, min, max, xor, and, or — not
// subtraction, not floating-point-sensitive folds).
type ReduceOp func(a, b int64) int64

// Canned reduction operators with their identities.
var (
	// OpSum adds contributions; identity 0.
	OpSum ReduceOp = func(a, b int64) int64 { return a + b }
	// OpMin keeps the minimum; identity math.MaxInt64.
	OpMin ReduceOp = func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	}
	// OpMax keeps the maximum; identity math.MinInt64.
	OpMax ReduceOp = func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	}
	// OpXor xors contributions; identity 0.
	OpXor ReduceOp = func(a, b int64) int64 { return a ^ b }
)

// Identities for the canned operators.
const (
	IdentitySum int64 = 0
	IdentityMin int64 = math.MaxInt64
	IdentityMax int64 = math.MinInt64
	IdentityXor int64 = 0
)

// ReduceBarrier is a fuzzy allreduce: the TreeBarrier's split-phase
// contract where every Arrive carries a value, partial results combine
// up the same padded radix-k tree the arrival tokens climb, and the root
// publisher stores the phase's full reduction *before* publishing the
// epoch — so Wait returns the allreduce result with no extra broadcast
// round. ArriveValue stays non-blocking (the barrier-region work runs
// while the reduction completes), which is exactly the fuzzy-barrier
// separation applied to a collective: the paper's hardware overlaps the
// synchronization wait with barrier-region instructions; here the
// combining itself is overlapped too.
//
// Per node the arrival count is split into two counters so the probe
// path never has to un-combine a value (min/max have no inverse): slots
// is the claim/undo ticket counter — cumulative, probed and decremented
// exactly like TreeBarrier's count — and done counts finished deposits.
// A contribution is combined into the node's accumulator only after its
// slot claim succeeded, then done is incremented; the arrival whose done
// increment fills the node's quota drains the accumulator, resets it to
// the identity, and carries the partial result to the parent. Go's
// sync/atomic operations are sequentially consistent, so every combine
// that contributed to the quota-filling done value is visible to the
// drainer.
type ReduceBarrier struct {
	n       int
	radix   int
	nLeaves int
	nodes   []reduceNode

	op       ReduceOp
	identity int64
	result   atomic.Int64

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// reduceNode is one combining node, padded to two cache lines like
// treeBarrierNode so neighbors never false-share.
type reduceNode struct {
	slots  atomic.Int64 // cumulative slot claims: quota per phase (probe/undo here)
	done   atomic.Int64 // cumulative finished deposits: combine-then-increment
	acc    atomic.Int64 // partial reduction for the phase in progress
	probes atomic.Int64 // overshoot undos charged to this node
	quota  int64        // deposits that complete this node for one phase
	parent int          // index of parent node, -1 at the root
	_      [80]byte
}

// NewReduceBarrier creates a fuzzy reduce barrier for n participants
// (n >= 1) with the default radix. op must be associative and
// commutative with the given identity (op(identity, v) == v).
func NewReduceBarrier(n int, op ReduceOp, identity int64) *ReduceBarrier {
	return NewReduceBarrierRadix(n, DefaultTreeRadix, op, identity)
}

// NewReduceBarrierRadix creates a fuzzy reduce barrier with the given
// fan-in (values < 2 select DefaultTreeRadix).
func NewReduceBarrierRadix(n, radix int, op ReduceOp, identity int64) *ReduceBarrier {
	if n < 1 {
		panic(fmt.Sprintf("core: reduce barrier size %d < 1", n))
	}
	if op == nil {
		panic("core: reduce barrier op is nil")
	}
	if radix < 2 {
		radix = DefaultTreeRadix
	}
	b := &ReduceBarrier{n: n, radix: radix, op: op, identity: identity}
	b.w.init()

	shape := buildTreeShape(n, radix)
	b.nLeaves = shape.nLeaves
	b.nodes = make([]reduceNode, len(shape.quotas))
	for i := range b.nodes {
		b.nodes[i].quota = shape.quotas[i]
		b.nodes[i].parent = shape.parents[i]
		b.nodes[i].acc.Store(identity)
	}
	b.result.Store(identity)
	return b
}

// N returns the number of participants.
func (b *ReduceBarrier) N() int { return b.n }

// Radix returns the tree fan-in.
func (b *ReduceBarrier) Radix() int { return b.radix }

// Leaves returns the number of leaf nodes.
func (b *ReduceBarrier) Leaves() int { return b.nLeaves }

// Depth returns the number of tree levels above the participants.
func (b *ReduceBarrier) Depth() int {
	d, node := 0, 0
	for node >= 0 {
		d++
		node = b.nodes[node].parent
	}
	return d
}

// Epoch returns the number of completed synchronization episodes.
func (b *ReduceBarrier) Epoch() int64 { return b.w.epoch.Load() }

// Stats returns a snapshot of the barrier's counters.
func (b *ReduceBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *ReduceBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// Probes returns the number of arrive-side leaf probes that found their
// leaf already full and moved on.
func (b *ReduceBarrier) Probes() int64 {
	var total int64
	for i := 0; i < b.nLeaves; i++ {
		total += b.nodes[i].probes.Load()
	}
	return total
}

// HotspotOps implements ArriveProfiler like TreeBarrier: the
// atomic-operation traffic on the hottest single node, counting each
// deposit's slot claim + combine + done increment, the per-phase drain
// pair (read + identity reset), and two operations per full-probe.
func (b *ReduceBarrier) HotspotOps() (ops, phases int64) {
	phases = b.stats.Syncs.Load()
	for i := range b.nodes {
		nd := &b.nodes[i]
		// Per deposit: slots.Add + acc CAS + done.Add = 3 ops; per phase
		// the drainer's acc load + reset = 2 ops; per probe: add + undo.
		v := 3*nd.done.Load() + 2*phases + 2*nd.probes.Load()
		if v > ops {
			ops = v
		}
	}
	return ops, phases
}

// Arrive contributes the identity (pure synchronization, no data) and
// returns the phase ticket; it makes ReduceBarrier satisfy SplitBarrier.
func (b *ReduceBarrier) Arrive() Phase { return b.ArriveValue(b.identity) }

// ArriveValue deposits the caller's contribution for the current phase
// and returns the phase ticket to pass to Wait or WaitValue. It never
// blocks and never spins on a remote value: at most nLeaves-1 fruitless
// probes plus a Depth-bounded combine climb. The int64 path does not
// allocate.
//
// Every participant must call ArriveValue (or Arrive) exactly once per
// phase, and must call Wait/WaitValue before its next arrival.
func (b *ReduceBarrier) ArriveValue(v int64) Phase {
	return b.arriveAt(homeLeaf(b.nLeaves), v)
}

// LeafFor returns the home leaf that owns the i-th of the n participant
// slots (i in [0, N())): routing participant i to LeafFor(i) fills every
// leaf to exactly its quota, so no arrival ever probes. The complement
// of the hashed default — deterministic experiment drives use it to
// separate combining cost from probe cost.
func (b *ReduceBarrier) LeafFor(i int) int {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("core: reduce barrier slot %d out of range [0,%d)", i, b.n))
	}
	rem := int64(i)
	for leaf := 0; ; leaf++ {
		if rem < b.nodes[leaf].quota {
			return leaf
		}
		rem -= b.nodes[leaf].quota
	}
}

// ArriveValueLeaf is ArriveValue with a caller-chosen home leaf instead
// of the stack-address hash — deterministic routing for tests and
// experiment drives. leaf must be in [0, Leaves()).
func (b *ReduceBarrier) ArriveValueLeaf(leaf int, v int64) Phase {
	if leaf < 0 || leaf >= b.nLeaves {
		panic(fmt.Sprintf("core: reduce barrier leaf %d out of range [0,%d)", leaf, b.nLeaves))
	}
	return b.arriveAt(leaf, v)
}

func (b *ReduceBarrier) arriveAt(leaf int, v int64) Phase {
	b.stats.Arrivals.Add(1)
	e := b.w.epoch.Load()
	target := e + 1

	for {
		nd := &b.nodes[leaf]
		full := nd.quota * target
		if s := nd.slots.Add(1); s <= full {
			// Slot claimed: the deposit is now committed to this leaf.
			// Claiming touches only the ticket counter, so undoing an
			// overshoot never has to un-combine a value — which min/max
			// could not support.
			b.deposit(leaf, v, target)
			return Phase{epoch: e}
		}
		// Leaf already full for this phase: undo the overshoot and probe
		// the next leaf. Total capacity is exactly n, so a slot exists.
		nd.slots.Add(-1)
		nd.probes.Add(1)
		leaf++
		if leaf == b.nLeaves {
			leaf = 0
		}
	}
}

// combine folds v into the node's accumulator with a CAS loop.
func (b *ReduceBarrier) combine(nd *reduceNode, v int64) {
	for {
		old := nd.acc.Load()
		if nd.acc.CompareAndSwap(old, b.op(old, v)) {
			return
		}
	}
}

// deposit combines v into node and walks the completion upward: the
// deposit that fills a node's done quota drains the accumulator, resets
// it to the identity for the next phase, and carries the partial result
// to the parent; at the root it stores the phase's reduction and only
// then publishes the epoch, so any Wait that observes the new epoch also
// observes the result. The combine happens strictly before the done
// increment, and atomics are seq-cst, so the drainer sees every combine
// counted by the quota-filling done value. The reset is safe: phase
// target+1 deposits into this node cannot start until the root publishes
// phase target (every participant's Wait must return first), and the
// reset happens before that publish on the drainer's own path.
func (b *ReduceBarrier) deposit(node int, v int64, target int64) {
	for {
		nd := &b.nodes[node]
		b.combine(nd, v)
		if nd.done.Add(1) != nd.quota*target {
			return
		}
		v = nd.acc.Load()
		nd.acc.Store(b.identity)
		if nd.parent < 0 {
			b.result.Store(v)
			b.stats.Syncs.Add(1)
			b.w.publish()
			return
		}
		node = nd.parent
	}
}

// TryWait reports whether synchronization for the given phase has
// occurred, without blocking.
func (b *ReduceBarrier) TryWait(p Phase) bool { return b.w.tryWait(p) }

// Wait blocks until every participant has arrived at phase p, spinning
// briefly before blocking.
func (b *ReduceBarrier) Wait(p Phase) { b.w.wait(p, b.SpinLimit, &b.stats) }

// WaitValue blocks like Wait and returns the phase's allreduce result —
// op folded over every participant's contribution. Reading the result
// here is safe against the next phase's overwrite: phase p+1's root
// store cannot happen until every participant has arrived for p+1, and
// each participant's p+1 arrival is preceded by its own WaitValue(p)
// return.
func (b *ReduceBarrier) WaitValue(p Phase) int64 {
	b.w.wait(p, b.SpinLimit, &b.stats)
	return b.result.Load()
}

// Await is the conventional point allreduce: ArriveValue immediately
// followed by WaitValue.
func (b *ReduceBarrier) Await() { b.Wait(b.Arrive()) }

// AwaitValue contributes v and blocks until the phase's reduction is
// complete, returning it.
func (b *ReduceBarrier) AwaitValue(v int64) int64 { return b.WaitValue(b.ArriveValue(v)) }
