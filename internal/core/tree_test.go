package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestTreeBarrierShape(t *testing.T) {
	cases := []struct {
		n, radix      int
		leaves, depth int
	}{
		{1, 4, 1, 1},
		{4, 4, 1, 1},
		{5, 4, 2, 2},
		{16, 4, 4, 2},
		{17, 4, 5, 3},
		{64, 4, 16, 3},
		{8, 2, 4, 3},
		{1024, 4, 256, 5},
	}
	for _, c := range cases {
		b := NewTreeBarrierRadix(c.n, c.radix)
		if b.nLeaves != c.leaves {
			t.Errorf("Tree(%d,r%d): leaves = %d, want %d", c.n, c.radix, b.nLeaves, c.leaves)
		}
		if got := b.Depth(); got != c.depth {
			t.Errorf("Tree(%d,r%d): depth = %d, want %d", c.n, c.radix, got, c.depth)
		}
		// Leaf capacities must sum to exactly n (otherwise a phase either
		// completes early or never completes).
		var cap int64
		for i := 0; i < b.nLeaves; i++ {
			if b.nodes[i].quota < 1 {
				t.Errorf("Tree(%d,r%d): leaf %d quota %d < 1", c.n, c.radix, i, b.nodes[i].quota)
			}
			cap += b.nodes[i].quota
		}
		if cap != int64(c.n) {
			t.Errorf("Tree(%d,r%d): leaf capacity %d, want %d", c.n, c.radix, cap, c.n)
		}
		// Interior quotas must equal the actual child counts.
		children := make(map[int]int64)
		for i := range b.nodes {
			if p := b.nodes[i].parent; p >= 0 {
				children[p]++
			}
		}
		for p, got := range children {
			if b.nodes[p].quota != got {
				t.Errorf("Tree(%d,r%d): node %d quota %d, children %d", c.n, c.radix, p, b.nodes[p].quota, got)
			}
		}
		if b.N() != c.n || b.Radix() != c.radix {
			t.Errorf("Tree(%d,r%d): N/Radix = %d/%d", c.n, c.radix, b.N(), b.Radix())
		}
	}
}

func TestTreeBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewTreeBarrier(0)
}

func TestTreeBarrierSingleParticipant(t *testing.T) {
	b := NewTreeBarrier(1)
	for i := 0; i < 10; i++ {
		ph := b.Arrive()
		if !b.TryWait(ph) {
			t.Fatal("single participant should sync instantly")
		}
		b.Wait(ph)
	}
	if b.Epoch() != 10 {
		t.Errorf("epoch = %d, want 10", b.Epoch())
	}
}

func TestTreeBarrierRegionOverlap(t *testing.T) {
	// A fast worker must be able to execute region work and finish Wait
	// as soon as the slow worker arrives — same contract as FuzzyBarrier.
	b := NewTreeBarrier(2)
	done := make(chan struct{})
	go func() {
		ph := b.Arrive()
		b.Wait(ph)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait returned before partner arrived")
	case <-time.After(10 * time.Millisecond):
	}
	b.Arrive() // partner arrives; never waits
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("wait did not return after partner arrived")
	}
}

func TestTreeBarrierTryWait(t *testing.T) {
	b := NewTreeBarrier(2)
	ph := b.Arrive()
	if b.TryWait(ph) {
		t.Fatal("TryWait true before partner arrived")
	}
	b.Arrive()
	if !b.TryWait(ph) {
		t.Fatal("TryWait false after all arrived")
	}
	b.Wait(ph) // must be a fast path now
	_, _, fast, _, blocks, _ := b.Stats()
	if fast != 1 || blocks != 0 {
		t.Errorf("fast=%d blocks=%d, want 1/0", fast, blocks)
	}
}

// TestTreeBarrierOrdersPhases is the FuzzyBarrier memory-ordering test on
// the tree implementation, across sizes that exercise partial leaves and
// multiple levels.
func TestTreeBarrierOrdersPhases(t *testing.T) {
	for _, workers := range []int{2, 3, 5, 8, 13} {
		workers := workers
		t.Run(itoa2(workers), func(t *testing.T) {
			t.Parallel()
			const phases = 100
			b := NewTreeBarrierRadix(workers, 2)
			published := make([]atomic.Int64, workers)
			errs := make(chan string, workers*phases)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for p := int64(0); p < phases; p++ {
						published[id].Store(p)
						ph := b.Arrive()
						b.Wait(ph)
						for j := range published {
							if got := published[j].Load(); got < p {
								errs <- "worker saw stale phase"
							}
						}
						b.Await() // nobody advances until all checked
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if got := b.Epoch(); got != 2*phases {
				t.Errorf("epoch = %d, want %d", got, 2*phases)
			}
		})
	}
}

// TestTreeBarrierAwaitIsPointBarrier runs the counter detector across
// participant counts including large, non-radix-aligned ones.
func TestTreeBarrierAwaitIsPointBarrier(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16, 33, 257} {
		workers := workers
		t.Run(itoa2(workers), func(t *testing.T) {
			t.Parallel()
			episodes := 50
			if workers > 50 {
				episodes = 10
			}
			b := NewTreeBarrier(workers)
			var counter atomic.Int64
			var wg sync.WaitGroup
			bad := make(chan int64, workers*episodes)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for e := int64(0); e < int64(episodes); e++ {
						counter.Add(1)
						b.Await()
						if got := counter.Load(); got != int64(workers)*(e+1) {
							bad <- got
						}
						b.Await()
					}
				}()
			}
			wg.Wait()
			close(bad)
			for v := range bad {
				t.Fatalf("counter = %d between barriers (inconsistent)", v)
			}
			if got := b.Epoch(); got != int64(2*episodes) {
				t.Errorf("epoch = %d, want %d", got, 2*episodes)
			}
		})
	}
}

// TestTreeBarrierEpochNeverSkipsProperty mirrors the FuzzyBarrier
// property test for random sizes and radices.
func TestTreeBarrierEpochNeverSkipsProperty(t *testing.T) {
	f := func(w, e, r uint8) bool {
		workers := int(w%9) + 1
		episodes := int(e%20) + 1
		radix := int(r%3) + 2
		b := NewTreeBarrierRadix(workers, radix)
		var wg sync.WaitGroup
		ok := atomic.Bool{}
		ok.Store(true)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := int64(-1)
				for ep := 0; ep < episodes; ep++ {
					ph := b.Arrive()
					b.Wait(ph)
					cur := b.Epoch()
					if cur <= last {
						ok.Store(false)
					}
					last = cur
				}
			}()
		}
		wg.Wait()
		return ok.Load() && b.Epoch() == int64(episodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTreeBarrierBeatsCentralOnHotspot is the arrive-side contention
// claim: at 256 participants the tree's hottest counter word absorbs far
// fewer operations per phase than the central barrier's single counter
// (n+1). This is a property of the algorithm, not of the host's core
// count, so it holds even on a single-CPU runner.
func TestTreeBarrierBeatsCentralOnHotspot(t *testing.T) {
	const workers = 256
	const episodes = 20
	run := func(b SplitBarrier) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					b.Wait(b.Arrive())
				}
			}()
		}
		wg.Wait()
	}

	central := NewFuzzyBarrier(workers)
	run(central)
	cOps, cPhases := central.HotspotOps()
	if cPhases != episodes {
		t.Fatalf("central phases = %d, want %d", cPhases, episodes)
	}
	cPer := float64(cOps) / float64(cPhases)
	if cPer != workers+1 {
		t.Errorf("central hotspot = %v ops/phase, want %d", cPer, workers+1)
	}

	tree := NewTreeBarrier(workers)
	run(tree)
	tOps, tPhases := tree.HotspotOps()
	if tPhases != episodes {
		t.Fatalf("tree phases = %d, want %d", tPhases, episodes)
	}
	tPer := float64(tOps) / float64(tPhases)
	// The expected value is ~radix plus a little probe traffic; anything
	// under half the central traffic already demonstrates the crossover,
	// and typical runs land far below that.
	if tPer >= cPer/2 {
		t.Errorf("tree hotspot = %.1f ops/phase, central = %.1f — tree should be far lower", tPer, cPer)
	}
	t.Logf("hotspot ops/phase at n=%d: central=%.1f tree=%.1f (probes=%d)",
		workers, cPer, tPer, tree.Probes())
}

func itoa2(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// TestTreeBarrierProbeUndoDeterministic drives every arrival to leaf 0
// via ArriveLeaf, so the probe path is exercised with a known answer:
// the i-th arrival of a phase probes past every already-full leaf before
// its slot, giving exactly sum over leaves j of j*quota(j) probes per
// phase, and the cumulative counters end each phase at exactly
// quota*(phase+1) — the overshoot-undo invariant with no slack.
func TestTreeBarrierProbeUndoDeterministic(t *testing.T) {
	const n, radix, phases = 11, 3, 5
	b := NewTreeBarrierRadix(n, radix)
	var perPhase, total int64
	for j := 0; j < b.Leaves(); j++ {
		perPhase += int64(j) * b.nodes[j].quota
		total += b.nodes[j].quota
	}
	if total != n {
		t.Fatalf("leaf quotas sum to %d, want %d", total, n)
	}
	for p := int64(0); p < phases; p++ {
		var ph Phase
		for id := 0; id < n; id++ {
			ph = b.ArriveLeaf(0)
		}
		b.Wait(ph)
		if got, want := b.Probes(), (p+1)*perPhase; got != want {
			t.Errorf("after phase %d: Probes() = %d, want %d", p, got, want)
		}
		for i := range b.nodes {
			if got, want := b.nodes[i].count.Load(), b.nodes[i].quota*(p+1); got != want {
				t.Errorf("after phase %d: node %d count = %d, want exactly %d", p, i, got, want)
			}
		}
	}
	if b.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), phases)
	}
}

// TestTreeBarrierCollisionInvariant hammers one home leaf from many
// goroutines — the worst case the stack-address hash is supposed to
// avoid — and checks the overshoot-undo invariant concurrently: a node's
// cumulative count never dips below the target of any completed phase
// (every undo cancels only its own overshoot), every phase ends with
// every node at exactly quota*phase (one climber per node per phase),
// and the colliders really did probe.
func TestTreeBarrierCollisionInvariant(t *testing.T) {
	const workers, phases, radix = 9, 150, 2
	b := NewTreeBarrierRadix(workers, radix)
	stop := make(chan struct{})
	var below atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Load the epoch first: the invariant count >= quota*e holds
			// for any e that was complete at or before the count read.
			e := b.Epoch()
			for i := range b.nodes {
				if b.nodes[i].count.Load() < b.nodes[i].quota*e {
					below.Add(1)
				}
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				b.Wait(b.ArriveLeaf(0)) // everyone collides on leaf 0
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if n := below.Load(); n > 0 {
		t.Errorf("%d samples saw a count below a completed phase's target (undo leaked)", n)
	}
	for i := range b.nodes {
		if got, want := b.nodes[i].count.Load(), b.nodes[i].quota*phases; got != want {
			t.Errorf("node %d final count = %d, want exactly %d (one climber per node per phase)", i, got, want)
		}
	}
	// Leaf 0 holds radix slots per phase; the other workers-radix
	// arrivals of every phase must have probed at least once.
	if minProbes := int64(phases * (workers - radix)); b.Probes() < minProbes {
		t.Errorf("Probes() = %d, want >= %d", b.Probes(), minProbes)
	}
	if b.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), phases)
	}
}

// TestTreeBarrierArriveLeafPanics: leaf-range validation.
func TestTreeBarrierArriveLeafPanics(t *testing.T) {
	b := NewTreeBarrier(8)
	for _, leaf := range []int{-1, b.Leaves()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ArriveLeaf(%d): expected panic", leaf)
				}
			}()
			b.ArriveLeaf(leaf)
		}()
	}
}
