package core

import (
	"fmt"
	"strings"
)

// NumWaitBuckets is the number of buckets in the wait-spin histogram:
// power-of-four buckets over the spin iterations a spin-resolved Wait
// needed, i.e. upper bounds 1, 4, 16, 64, 256 and an overflow bucket.
const NumWaitBuckets = 6

// waitBucket maps a spin-iteration count to its histogram bucket.
func waitBucket(iters int64) int {
	b, bound := 0, int64(1)
	for b < NumWaitBuckets-1 && iters > bound {
		b++
		bound *= 4
	}
	return b
}

// WaitBucketLabel returns a human-readable label for wait-spin bucket i
// ("<=1", "<=4", ..., ">256").
func WaitBucketLabel(i int) string {
	if i >= NumWaitBuckets-1 {
		return fmt.Sprintf(">%d", pow4(NumWaitBuckets-2))
	}
	return fmt.Sprintf("<=%d", pow4(i))
}

func pow4(n int) int64 {
	v := int64(1)
	for i := 0; i < n; i++ {
		v *= 4
	}
	return v
}

// BarrierStats is a point-in-time snapshot of a runtime barrier's
// counters: the observability surface shared by FuzzyBarrier,
// DynamicBarrier and TreeBarrier and rendered by cmd/barbench. The
// counters themselves are plain atomics bumped on the Arrive/Wait hot
// path — no locks, no allocation — so keeping them always-on costs a
// handful of uncontended atomic adds per episode.
type BarrierStats struct {
	Syncs     int64 // completed barrier episodes
	Arrivals  int64 // total Arrive calls
	FastWaits int64 // Waits satisfied without spinning (already synced)
	SpinWaits int64 // Waits satisfied during the spin phase
	Blocks    int64 // Waits that had to block (the expensive case)
	SpinIters int64 // total spin iterations across all Waits

	// WaitSpins is a histogram of the spin iterations each spin-resolved
	// Wait needed before the phase completed (bucket upper bounds via
	// WaitBucketLabel). Blocked waits exhaust the spin budget and are
	// counted in Blocks instead.
	WaitSpins [NumWaitBuckets]int64
}

// StalledWaits returns the departures that found synchronization still
// pending — the runtime analog of the hardware's stalled state (spun or
// blocked rather than sailing through).
func (s BarrierStats) StalledWaits() int64 { return s.SpinWaits + s.Blocks }

// Waits returns the total number of Wait calls observed.
func (s BarrierStats) Waits() int64 { return s.FastWaits + s.SpinWaits + s.Blocks }

// BlockRate returns the fraction of Waits that blocked, 0 for no Waits.
func (s BarrierStats) BlockRate() float64 {
	if w := s.Waits(); w > 0 {
		return float64(s.Blocks) / float64(w)
	}
	return 0
}

// String renders the snapshot as a single metrics line.
func (s BarrierStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syncs=%d arrivals=%d waits[fast=%d spin=%d block=%d] stalled=%d spin-iters=%d",
		s.Syncs, s.Arrivals, s.FastWaits, s.SpinWaits, s.Blocks, s.StalledWaits(), s.SpinIters)
	if s.SpinWaits > 0 {
		b.WriteString(" spin-hist[")
		first := true
		for i, c := range s.WaitSpins {
			if c == 0 {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%d", WaitBucketLabel(i), c)
			first = false
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Snapshot copies the live counters into a BarrierStats value.
func (rs *RuntimeStats) Snapshot() BarrierStats {
	s := BarrierStats{
		Syncs:     rs.Syncs.Load(),
		Arrivals:  rs.Arrivals.Load(),
		FastWaits: rs.FastWaits.Load(),
		SpinWaits: rs.SpinWaits.Load(),
		Blocks:    rs.Blocks.Load(),
		SpinIters: rs.SpinIters.Load(),
	}
	for i := range s.WaitSpins {
		s.WaitSpins[i] = rs.waitSpins[i].Load()
	}
	return s
}

// observeSpin records a spin-resolved Wait's iteration count in the
// wait-spin histogram.
func (rs *RuntimeStats) observeSpin(iters int64) {
	rs.waitSpins[waitBucket(iters)].Add(1)
}
