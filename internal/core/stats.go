package core

import (
	"fmt"
	"strings"
)

// NumSpinBuckets is the number of wait-spin histogram buckets that hold
// *resolved* Waits: power-of-four buckets over the spin iterations a
// Wait needed before it found the phase complete, i.e. upper bounds 1,
// 4, 16, 64, 256 and a >256 bucket. A fast Wait (already complete on
// entry) spins zero times and lands in the first bucket.
const NumSpinBuckets = 6

// NumWaitBuckets is the total histogram size: the resolved-spin buckets
// plus one dedicated overflow bucket for Waits that exhausted their
// whole spin budget without resolving (they then either resolved at the
// locked recheck — LockWaits — or slept — Blocks). Every Wait lands in
// exactly one bucket, so the histogram total equals
// FastWaits+SpinWaits+LockWaits+Blocks.
const NumWaitBuckets = NumSpinBuckets + 1

// waitBucket maps a resolved Wait's spin-iteration count to its
// histogram bucket.
func waitBucket(iters int64) int {
	b, bound := 0, int64(1)
	for b < NumSpinBuckets-1 && iters > bound {
		b++
		bound *= 4
	}
	return b
}

// WaitBucketLabel returns a human-readable label for wait-spin bucket i
// ("<=1", "<=4", ..., ">256", "exhausted").
func WaitBucketLabel(i int) string {
	switch {
	case i >= NumWaitBuckets-1:
		return "exhausted"
	case i >= NumSpinBuckets-1:
		return fmt.Sprintf(">%d", pow4(NumSpinBuckets-2))
	default:
		return fmt.Sprintf("<=%d", pow4(i))
	}
}

func pow4(n int) int64 {
	v := int64(1)
	for i := 0; i < n; i++ {
		v *= 4
	}
	return v
}

// BarrierStats is a point-in-time snapshot of a runtime barrier's
// counters: the observability surface shared by FuzzyBarrier,
// DynamicBarrier, TreeBarrier, ReduceBarrier and Phaser, rendered by
// cmd/barbench. The counters themselves are plain atomics bumped on the
// Arrive/Wait hot path — no locks, no allocation — so keeping them
// always-on costs a handful of uncontended atomic adds per episode.
type BarrierStats struct {
	Syncs     int64 // completed barrier episodes
	Arrivals  int64 // total Arrive calls
	FastWaits int64 // Waits satisfied without spinning (already synced)
	SpinWaits int64 // Waits satisfied during the spin phase
	LockWaits int64 // Waits that exhausted the spin budget but resolved at the locked recheck (no sleep)
	Blocks    int64 // Waits that slept on the condition variable (the expensive case)
	SpinIters int64 // total spin iterations across all Waits

	// WaitSpins is a histogram of the spin iterations each Wait spent
	// before resolving (bucket upper bounds via WaitBucketLabel); fast
	// Waits land in the first bucket with zero iterations, and Waits that
	// exhausted the whole budget (LockWaits and Blocks) land in the final
	// "exhausted" overflow bucket. The bucket total therefore equals
	// Waits().
	WaitSpins [NumWaitBuckets]int64
}

// StalledWaits returns the departures that found synchronization still
// pending — the runtime analog of the hardware's stalled state (spun,
// lock-resolved or blocked rather than sailing through).
func (s BarrierStats) StalledWaits() int64 { return s.SpinWaits + s.LockWaits + s.Blocks }

// Waits returns the total number of Wait calls observed.
func (s BarrierStats) Waits() int64 { return s.FastWaits + s.SpinWaits + s.LockWaits + s.Blocks }

// BlockRate returns the fraction of Waits that blocked, 0 for no Waits.
func (s BarrierStats) BlockRate() float64 {
	if w := s.Waits(); w > 0 {
		return float64(s.Blocks) / float64(w)
	}
	return 0
}

// String renders the snapshot as a single metrics line.
func (s BarrierStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "syncs=%d arrivals=%d waits[fast=%d spin=%d lock=%d block=%d] stalled=%d spin-iters=%d",
		s.Syncs, s.Arrivals, s.FastWaits, s.SpinWaits, s.LockWaits, s.Blocks, s.StalledWaits(), s.SpinIters)
	var hist int64
	for _, c := range s.WaitSpins {
		hist += c
	}
	if hist > 0 {
		b.WriteString(" spin-hist[")
		first := true
		for i, c := range s.WaitSpins {
			if c == 0 {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%d", WaitBucketLabel(i), c)
			first = false
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Snapshot copies the live counters into a BarrierStats value.
func (rs *RuntimeStats) Snapshot() BarrierStats {
	s := BarrierStats{
		Syncs:     rs.Syncs.Load(),
		Arrivals:  rs.Arrivals.Load(),
		FastWaits: rs.FastWaits.Load(),
		SpinWaits: rs.SpinWaits.Load(),
		LockWaits: rs.LockWaits.Load(),
		Blocks:    rs.Blocks.Load(),
		SpinIters: rs.SpinIters.Load(),
	}
	for i := range s.WaitSpins {
		s.WaitSpins[i] = rs.waitSpins[i].Load()
	}
	return s
}

// observeSpin records a resolved Wait's spin-iteration count in the
// wait-spin histogram (0 for fast Waits).
func (rs *RuntimeStats) observeSpin(iters int64) {
	rs.waitSpins[waitBucket(iters)].Add(1)
}

// observeExhausted records a Wait that burned its whole spin budget
// without resolving — the slowest class of waits, which previously went
// missing from the histogram entirely — in the dedicated overflow
// bucket.
func (rs *RuntimeStats) observeExhausted() {
	rs.waitSpins[NumWaitBuckets-1].Add(1)
}
