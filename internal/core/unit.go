package core

import "fmt"

// State enumerates the four states of the per-processor barrier hardware
// (Section 6): executing non-barrier code; inside a barrier region without
// having synchronized; inside a barrier region having synchronized; and
// stalled, having completed the barrier region before synchronization.
type State int

// Barrier-unit states.
const (
	StateNonBarrier State = iota // (i) executing instructions from a non-barrier region
	StateInBarrier               // (ii) in the barrier region, not yet synchronized
	StateSynced                  // (iii) in the barrier region, synchronized
	StateStalled                 // (iv) completed the barrier region, synchronization pending
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateNonBarrier:
		return "non-barrier"
	case StateInBarrier:
		return "in-barrier"
	case StateSynced:
		return "synced"
	case StateStalled:
		return "stalled"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Unit is one processor's copy of the fuzzy-barrier hardware: the state
// machine, the internal register holding the current tag and mask, and the
// broadcast "ready" line. Units are driven by the simulator: the processor
// model calls EnterBarrier / TryCross as it issues instructions, and the
// shared Network evaluates the synchronization condition for all units
// once per cycle, so all processors discover synchronization
// simultaneously — exactly the paper's broadcast scheme.
type Unit struct {
	id    int
	state State
	tag   Tag
	mask  Mask
	ready bool // the broadcast line: raised while ready-to-synchronize

	// Statistics.
	syncs       int64 // barrier synchronizations this unit participated in
	stallCycles int64 // cycles spent in StateStalled
	regionLens  int64 // barrier-region instructions executed (for averages)
}

// NewUnit returns a barrier unit for processor id with an empty (non
// participating) barrier register.
func NewUnit(id int) *Unit {
	return &Unit{id: id, tag: TagNone}
}

// ID returns the processor number this unit belongs to.
func (u *Unit) ID() int { return u.id }

// State returns the current state.
func (u *Unit) State() State { return u.state }

// Ready reports the level of the broadcast line.
func (u *Unit) Ready() bool { return u.ready }

// Tag returns the current tag register value.
func (u *Unit) Tag() Tag { return u.tag }

// Mask returns the current mask register value.
func (u *Unit) Mask() Mask { return u.mask }

// Syncs returns how many synchronizations this unit has completed.
func (u *Unit) Syncs() int64 { return u.syncs }

// StallCycles returns the cycles this unit has spent stalled.
func (u *Unit) StallCycles() int64 { return u.stallCycles }

// BarrierInstrs returns how many barrier-region instructions the owning
// processor has executed (maintained via NoteBarrierInstr).
func (u *Unit) BarrierInstrs() int64 { return u.regionLens }

// SetBarrier loads the tag and mask register. This models the BARRIER
// instruction — the single overhead instruction needed to initialize a
// barrier, after which processors synchronize repeatedly with no further
// overhead instructions (Section 1). Loading a register mid-region is
// permitted by the hardware; the compiler is responsible for doing it in
// sensible places.
func (u *Unit) SetBarrier(tag Tag, mask Mask) {
	u.tag = tag
	u.mask = mask
}

// EnterBarrier tells the unit that the processor has exited the preceding
// non-barrier region and is ready to synchronize: the ready line is
// raised. If the unit is already in a barrier state, the call is a no-op —
// this is what happens with the Figure 2 invalid branch, where control
// moves directly from one barrier region to another and the line never
// drops, producing a missed synchronization.
func (u *Unit) EnterBarrier() {
	if u.state != StateNonBarrier {
		return
	}
	if u.tag == TagNone {
		// Not participating: barrier-region instructions execute like
		// ordinary code and never stall.
		return
	}
	u.state = StateInBarrier
	u.ready = true
}

// NoteBarrierInstr records that one barrier-region instruction was
// executed (statistics only).
func (u *Unit) NoteBarrierInstr() { u.regionLens++ }

// NoteStallCycle records one stalled cycle (statistics only).
func (u *Unit) NoteStallCycle() { u.stallCycles++ }

// NoteStallCycles records n stalled cycles at once — the bulk form used
// by the simulator's fast-forward path, equivalent to n NoteStallCycle
// calls.
func (u *Unit) NoteStallCycles(n int64) {
	if n > 0 {
		u.stallCycles += n
	}
}

// TryCross asks whether the processor may execute a non-barrier
// instruction now. In non-barrier state the answer is trivially yes. If
// the unit has synchronized, crossing succeeds and the state machine
// returns to its start state (no explicit reset — Section 6; the ready
// line was already consumed when synchronization was detected). If
// synchronization has not occurred the processor must stall and the unit
// enters (or stays in) StateStalled.
func (u *Unit) TryCross() bool {
	switch u.state {
	case StateNonBarrier:
		return true
	case StateSynced:
		u.state = StateNonBarrier
		return true
	case StateInBarrier, StateStalled:
		u.state = StateStalled
		return false
	}
	return false
}

// setSynced is called by the Network when the synchronization condition
// holds for this unit. The ready line is consumed (dropped) at detection
// time: all participants fire in the same cycle off the same snapshot, and
// dropping the line here prevents a fast processor that races ahead to the
// *next* barrier from matching a partner's stale line for the previous
// one.
func (u *Unit) setSynced() {
	if u.state == StateInBarrier || u.state == StateStalled {
		u.state = StateSynced
		u.ready = false
		u.syncs++
	}
}

// Network connects the barrier units of all processors. Every cycle the
// simulator calls Step, which evaluates the synchronization condition for
// each unit from the currently broadcast ready lines and tags. Because the
// evaluation uses a snapshot of the lines, all participating units observe
// a synchronization in the same cycle.
type Network struct {
	units []*Unit
}

// NewNetwork creates a network of n barrier units, one per processor.
// n must be in [1, 64] because masks are 64-bit words.
func NewNetwork(n int) *Network {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("core: network size %d out of range [1,64]", n))
	}
	units := make([]*Unit, n)
	for i := range units {
		units[i] = NewUnit(i)
	}
	return &Network{units: units}
}

// Size returns the number of units.
func (n *Network) Size() int { return len(n.units) }

// Unit returns processor i's barrier unit.
func (n *Network) Unit(i int) *Unit { return n.units[i] }

// Step evaluates the synchronization condition for every unit:
//
//	synced(i) ⇔ ready(i) ∧ ∀j ∈ mask(i): ready(j) ∧ tag(j) == tag(i)
//
// and moves units whose condition holds into StateSynced. The condition is
// evaluated for all units against the same snapshot before any state
// changes, mirroring simultaneous hardware detection.
func (n *Network) Step() {
	n.StepCollect(nil)
}

// StepCollect is Step with an allocation-free result: the ids of the
// units that transitioned to StateSynced this step are appended to fired
// (usually a reused buffer sliced to length zero) and returned. The
// cycle-level simulator uses this on its hot path instead of
// snapshotting every unit's state before and after Step.
func (n *Network) StepCollect(fired []int) []int {
	start := len(fired)
	for _, u := range n.units {
		if !u.ready || (u.state != StateInBarrier && u.state != StateStalled) {
			continue
		}
		if n.conditionHolds(u) {
			fired = append(fired, u.id)
		}
	}
	for _, id := range fired[start:] {
		n.units[id].setSynced()
	}
	return fired
}

func (n *Network) conditionHolds(u *Unit) bool {
	for j, v := range n.units {
		if j == u.id || !u.mask.Has(j) {
			continue
		}
		if !v.ready || v.tag != u.tag {
			return false
		}
	}
	return true
}

// Deadlocked reports whether the network is in an unrecoverable state:
// every unit in a barrier state is stalled and no unit's condition holds.
// The caller supplies halted, indicating processors that have terminated;
// a stalled unit waiting on a halted partner can never synchronize.
func (n *Network) Deadlocked(halted func(p int) bool) bool {
	anyStalled := false
	for _, u := range n.units {
		switch u.state {
		case StateStalled:
			anyStalled = true
		case StateInBarrier, StateSynced:
			// A unit still executing region code may yet drop its line or
			// cross; not necessarily stuck.
			if !halted(u.id) {
				return false
			}
		}
	}
	if !anyStalled {
		return false
	}
	for _, u := range n.units {
		if u.state != StateStalled {
			continue
		}
		// Could this unit ever synchronize? Only if every masked partner
		// that is required is still able to raise a matching line.
		possible := true
		for j := range n.units {
			if j == u.id || !u.mask.Has(j) {
				continue
			}
			v := n.units[j]
			if halted(j) && (!v.ready || v.tag != u.tag) {
				possible = false
				break
			}
		}
		if possible && !n.conditionHolds(u) {
			// Partners alive but not ready yet: if every live partner is
			// itself stalled on a condition that fails, the whole set is
			// stuck; detecting the general case needs a reachability
			// argument, so be conservative: report deadlock only when all
			// non-halted units are stalled and nothing fired this cycle.
			continue
		}
		if !possible {
			return true
		}
	}
	// All units halted or stalled, and Step produced no progress.
	for _, u := range n.units {
		if halted(u.id) {
			continue
		}
		if u.state != StateStalled {
			return false
		}
		if n.conditionHolds(u) {
			return false
		}
	}
	return true
}
