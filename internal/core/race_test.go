package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// These stress tests exist to be run under the race detector
// (`go test -race ./internal/core/...`, see the Makefile verify target):
// every split-phase implementation pushes hundreds of phases through a
// publish-then-read pattern, so any missing happens-before edge between
// the last Arrive and a returning Wait surfaces as a reported race on
// the plain (non-atomic) per-worker slots.

// stressSplit drives workers through phases of: write my slot (plain
// write), Arrive, barrier-region work, Wait, read every slot (plain
// read). Without the barrier's ordering this is a textbook data race.
func stressSplit(t *testing.T, b SplitBarrier, workers, phases int) {
	t.Helper()
	slots := make([]int, workers) // plain ints: the race detector's bait
	var stale atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				slots[id] = p + 1
				ph := b.Arrive()
				// Barrier-region work: occasionally poll TryWait, as a
				// real region would to schedule more region work.
				for i := 0; i < id%4; i++ {
					b.TryWait(ph)
				}
				b.Wait(ph)
				for j := range slots {
					if slots[j] < p+1 {
						stale.Add(1)
					}
				}
				b.Await() // close the read window before the next phase
			}
		}(w)
	}
	wg.Wait()
	if n := stale.Load(); n > 0 {
		t.Errorf("%d stale slot reads (synchronization leaked)", n)
	}
	if got := b.Epoch(); got != int64(2*phases) {
		t.Errorf("epoch = %d, want %d", got, 2*phases)
	}
}

func TestRaceFuzzyBarrierStress(t *testing.T) {
	stressSplit(t, NewFuzzyBarrier(8), 8, 300)
}

func TestRaceTreeBarrierStress(t *testing.T) {
	stressSplit(t, NewTreeBarrier(8), 8, 300)
	stressSplit(t, NewTreeBarrierRadix(13, 2), 13, 200)
}

// TestRaceHierBarrierStress pushes the two-level barrier through the
// plain-slot bait: the shard subtrees, the cross-shard combining hop and
// the per-shard release fan-out must together provide the same ordering
// the central epoch does. The second shape forces partial shards and a
// multi-level cross tree; the third pins one shard so the hier barrier
// degenerates to a guarded tree and the fan-out path still runs.
func TestRaceHierBarrierStress(t *testing.T) {
	stressSplit(t, NewHierBarrier(8), 8, 300)
	stressSplit(t, NewHierBarrierConfig(13, HierConfig{Shards: 3, Radix: 2}), 13, 200)
	stressSplit(t, NewHierBarrierConfig(8, HierConfig{Shards: 1}), 8, 200)
}

// TestRaceReduceBarrierStress runs the reduce barrier through the same
// plain-slot bait (Arrive contributes the identity, so the split-phase
// protocol is exercised unchanged); the combining CAS loop and the
// root's result publication must provide the same ordering the plain
// tree does. TestReduceBarrierConcurrent adds the value-carrying path
// under -race via the verify lane.
func TestRaceReduceBarrierStress(t *testing.T) {
	stressSplit(t, NewReduceBarrier(8, OpSum, IdentitySum), 8, 300)
	stressSplit(t, NewReduceBarrierRadix(13, 2, OpMax, IdentityMax), 13, 200)
}

// TestRacePhaserChurn stresses Phaser registration against live phases:
// a fixed core of signal+wait members synchronizes for the whole run
// while churners register in signal-only or wait-only mode, ride a few
// boundaries, and leave. Under -race this hammers the members-slice
// swap-remove, the ready recount in completeLocked, and Deregister's
// obligation removal — every transition shares the phaser mutex, and a
// leaked edge shows up on the plain per-member counters.
func TestRacePhaserChurn(t *testing.T) {
	const fixed = 4
	const phases = 300
	const churners = 6
	p := NewPhaser()
	perm := make([]*PhaserMember, fixed)
	for i := range perm {
		perm[i] = p.Register(SignalWait)
	}
	var data [fixed + churners]int // plain writes ordered only by the phaser
	var wg sync.WaitGroup
	for w := 0; w < fixed; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := perm[id]
			for k := 0; k < phases; k++ {
				data[id]++
				m.Wait(m.Arrive())
			}
		}(w)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				if (id+round)%2 == 0 {
					m := p.Register(SignalOnly)
					for k := 0; k < 3+id; k++ {
						data[fixed+id]++
						m.Arrive()
					}
					m.Deregister()
				} else {
					m := p.Register(WaitOnly)
					for k := 0; k < 3+id; k++ {
						ph := m.Arrive()
						if ph.epoch >= phases {
							// The permanents have signaled their last phase;
							// only the drain publishes again, and that waits
							// for this goroutine to exit.
							break
						}
						m.Wait(ph)
						data[fixed+id]++
					}
					m.Deregister()
				}
			}
		}(c)
	}
	wg.Wait()
	for _, m := range perm {
		m.Deregister() // last signaler out drains
	}
	if got := p.Members(); got != 0 {
		t.Errorf("members after drain = %d, want 0", got)
	}
	// The permanents pace the epoch to exactly `phases` (no phase can
	// complete without all of their signals), and the drain adds one.
	if got := p.Epoch(); got != phases+1 {
		t.Errorf("epoch = %d, want %d", got, phases+1)
	}
	var total int
	for _, v := range data {
		total += v
	}
	if total == 0 {
		t.Error("no work recorded")
	}
}

// TestRaceDynamicBarrierChurn stresses DynamicBarrier with membership
// churn: a fixed core of members synchronizes for the whole run while
// transient members register, ride along for a few phases, and leave.
// TestRaceDynamicRegisterDuringCompletion pins the two races fixed by
// serializing DynamicBarrier's transitions under one mutex (dynamic.go).
// With the earlier CAS-packed state, a stream that Registered and
// Arrived in the gap between the completing arrival's count reset and
// its epoch publication got a ticket naming the *previous* phase: its
// Wait returned immediately, its ArriveAndLeave then double-counted
// into the phase it had really joined, and that phase completed without
// a permanent member's arrival — observable here as a stale slot read
// (and, under -race, as a data race on the slot). The tight
// register/arrive/wait/leave churn below drives that window thousands
// of times per run.
func TestRaceDynamicRegisterDuringCompletion(t *testing.T) {
	const fixed = 2
	const phases = 400
	const churners = 4
	const rounds = 40
	b := NewDynamicBarrier(fixed)
	var slots [fixed]int64
	var stale atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < fixed; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := int64(0); p < phases; p++ {
				slots[id] = p + 1
				ph := b.Arrive()
				b.Wait(ph)
				for j := 0; j < fixed; j++ {
					if slots[j] < p+1 {
						stale.Add(1)
					}
				}
				b.Await() // close the read window before the next write
			}
			b.ArriveAndLeave()
		}(w)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				b.Register()
				ph := b.Arrive()
				b.Wait(ph)
				b.ArriveAndLeave()
			}
		}()
	}
	wg.Wait()
	if n := stale.Load(); n > 0 {
		t.Errorf("%d stale slot reads: a phase completed without every member's arrival", n)
	}
	if got := b.Members(); got != 0 {
		t.Errorf("members after drain = %d, want 0", got)
	}
}

func TestRaceDynamicBarrierChurn(t *testing.T) {
	const fixed = 4
	const phases = 300
	const churners = 6
	b := NewDynamicBarrier(fixed)
	var data [fixed + churners]int // plain writes ordered only by the barrier
	var wg sync.WaitGroup

	for w := 0; w < fixed; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				data[id]++
				ph := b.Arrive()
				b.Wait(ph)
			}
			b.ArriveAndLeave()
		}(w)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Join, synchronize for a few phases, leave — repeatedly.
			for round := 0; round < 10; round++ {
				b.Register()
				for p := 0; p < 5+id; p++ {
					data[fixed+id]++
					ph := b.Arrive()
					b.Wait(ph)
				}
				b.ArriveAndLeave()
			}
		}(c)
	}
	wg.Wait()
	if got := b.Members(); got != 0 {
		t.Errorf("members after drain = %d, want 0", got)
	}
	if b.Epoch() < phases {
		t.Errorf("epoch = %d, want >= %d", b.Epoch(), phases)
	}
	var total int
	for _, v := range data {
		total += v
	}
	if total == 0 {
		t.Error("no work recorded")
	}
}
