package core

import (
	"fmt"
	"sync/atomic"
)

// DynamicBarrier is a split-phase fuzzy barrier whose membership can
// change between (and during) phases: streams may Register to join and
// ArriveAndLeave to depart. It is the runtime analog of Section 5's mask
// manipulation — "disjoint subsets of a group of streams that share the
// same barrier can synchronize by manipulating their masks" — and of the
// paper's dynamically created streams: a spawned stream Registers with
// its parent's barrier, and a finished stream deregisters instead of
// dragging the group's synchronizations forever.
//
// The usual split-phase contract applies per member: Arrive once per
// phase, Wait before the next Arrive. A member that will produce nothing
// further must leave with ArriveAndLeave rather than simply stopping,
// otherwise the remaining members deadlock (exactly like a halted
// processor whose mask bit is still set in the hardware).
type DynamicBarrier struct {
	// state packs the phase arrival count (high 32 bits) and the current
	// membership (low 32 bits); updates are CAS loops so that the
	// "last arrival completes the phase and resets the count" transition
	// is atomic against concurrent joins and leaves.
	state atomic.Uint64

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

func packState(count, members uint32) uint64 { return uint64(count)<<32 | uint64(members) }

func unpackState(s uint64) (count, members uint32) {
	return uint32(s >> 32), uint32(s)
}

// NewDynamicBarrier creates a dynamic barrier with the given initial
// membership (>= 1).
func NewDynamicBarrier(initial int) *DynamicBarrier {
	if initial < 1 {
		panic(fmt.Sprintf("core: dynamic barrier initial membership %d < 1", initial))
	}
	b := &DynamicBarrier{}
	b.state.Store(packState(0, uint32(initial)))
	b.w.init()
	return b
}

// Members returns the current membership.
func (b *DynamicBarrier) Members() int {
	_, m := unpackState(b.state.Load())
	return int(m)
}

// Epoch returns the number of completed phases.
func (b *DynamicBarrier) Epoch() int64 { return b.w.epoch.Load() }

// Stats returns the barrier's counters (same shape as FuzzyBarrier).
func (b *DynamicBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *DynamicBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// complete publishes a finished phase.
func (b *DynamicBarrier) complete() {
	b.stats.Syncs.Add(1)
	b.w.publish()
}

// Register adds one member. The new member has not arrived at the current
// phase, so the phase now requires one more arrival — register from a
// stream that is itself between Wait and Arrive (or before starting), the
// same discipline as allocating a barrier when a stream is spawned.
func (b *DynamicBarrier) Register() {
	for {
		s := b.state.Load()
		c, m := unpackState(s)
		if m == 0 {
			panic("core: Register on a drained dynamic barrier")
		}
		if b.state.CompareAndSwap(s, packState(c, m+1)) {
			return
		}
	}
}

// Arrive signals readiness for the current phase and returns the ticket
// for Wait. If this arrival is the last outstanding one, the phase
// completes.
func (b *DynamicBarrier) Arrive() Phase {
	b.stats.Arrivals.Add(1)
	e := b.w.epoch.Load()
	for {
		s := b.state.Load()
		c, m := unpackState(s)
		if m == 0 || c >= m {
			panic(fmt.Sprintf("core: Arrive with %d arrivals of %d members (protocol violation)", c, m))
		}
		if c+1 == m {
			if b.state.CompareAndSwap(s, packState(0, m)) {
				b.complete()
				return Phase{epoch: e}
			}
			continue
		}
		if b.state.CompareAndSwap(s, packState(c+1, m)) {
			return Phase{epoch: e}
		}
	}
}

// ArriveAndLeave deregisters the caller. Its pending arrival obligation
// disappears with it: if everyone else has already arrived, the phase
// completes. The caller must not Wait (it is no longer a member) and must
// not use the barrier again without Register.
func (b *DynamicBarrier) ArriveAndLeave() {
	b.stats.Arrivals.Add(1)
	for {
		s := b.state.Load()
		c, m := unpackState(s)
		if m == 0 {
			panic("core: ArriveAndLeave on a drained dynamic barrier")
		}
		if m == 1 {
			// Last member out: the barrier is drained.
			if b.state.CompareAndSwap(s, packState(0, 0)) {
				b.complete()
				return
			}
			continue
		}
		if c == m-1 {
			// Everyone else already arrived; our departure completes the
			// phase for them.
			if b.state.CompareAndSwap(s, packState(0, m-1)) {
				b.complete()
				return
			}
			continue
		}
		if b.state.CompareAndSwap(s, packState(c, m-1)) {
			return
		}
	}
}

// TryWait reports whether the phase ticket's synchronization completed.
func (b *DynamicBarrier) TryWait(p Phase) bool {
	return b.w.tryWait(p)
}

// Wait blocks until the ticket's phase completes, spinning briefly first
// (the split-phase fast path).
func (b *DynamicBarrier) Wait(p Phase) {
	b.w.wait(p, b.SpinLimit, &b.stats)
}

// Await is the point-barrier convenience: Arrive immediately followed by
// Wait.
func (b *DynamicBarrier) Await() {
	b.Wait(b.Arrive())
}
