package core

import (
	"fmt"
	"sync"
)

// DynamicBarrier is a split-phase fuzzy barrier whose membership can
// change between (and during) phases: streams may Register to join and
// ArriveAndLeave to depart. It is the runtime analog of Section 5's mask
// manipulation — "disjoint subsets of a group of streams that share the
// same barrier can synchronize by manipulating their masks" — and of the
// paper's dynamically created streams: a spawned stream Registers with
// its parent's barrier, and a finished stream deregisters instead of
// dragging the group's synchronizations forever.
//
// The usual split-phase contract applies per member: Arrive once per
// phase, Wait before the next Arrive. A member that will produce nothing
// further must leave with ArriveAndLeave rather than simply stopping,
// otherwise the remaining members deadlock (exactly like a halted
// processor whose mask bit is still set in the hardware).
type DynamicBarrier struct {
	// mu serializes every membership/arrival transition *and* the phase
	// publication it may trigger. An earlier implementation CAS-packed
	// (count, members) into one word, but two transitions are
	// fundamentally multi-word and the gaps were real bugs caught by the
	// stress harness (see TestRaceDynamicRegisterDuringCompletion):
	//
	//   - the completing arrival's count reset and the epoch publication
	//     were separate steps, so a stream that Registered and Arrived
	//     in the gap read the previous phase's epoch into its ticket and
	//     its Wait returned before its own phase completed (an early
	//     release, the exact property internal/check verifies for the
	//     cluster protocols);
	//   - Register's drained-barrier check could interleave with the
	//     final ArriveAndLeave's drain transition, making the
	//     join-vs-drain outcome (and the resulting panic) depend on the
	//     interleaving of two non-atomic steps.
	//
	// A mutex makes each transition (including its epoch read or
	// publish) atomic. The lock order is mu -> phaseWaiter.mu, taken
	// only on the publishing path; Wait never holds mu, so the
	// spin-then-block slow path is unchanged. Arrival throughput gives
	// up the lock-free CAS loop, which is the right trade for the
	// membership-churn barrier — the fixed-membership hot paths
	// (FuzzyBarrier, TreeBarrier) remain lock-free.
	mu      sync.Mutex
	count   uint32 // arrivals counted toward the current phase
	members uint32 // current membership; 0 = drained

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// NewDynamicBarrier creates a dynamic barrier with the given initial
// membership (>= 1).
func NewDynamicBarrier(initial int) *DynamicBarrier {
	if initial < 1 {
		panic(fmt.Sprintf("core: dynamic barrier initial membership %d < 1", initial))
	}
	b := &DynamicBarrier{members: uint32(initial)}
	b.w.init()
	return b
}

// Members returns the current membership.
func (b *DynamicBarrier) Members() int {
	b.mu.Lock()
	m := b.members
	b.mu.Unlock()
	return int(m)
}

// Epoch returns the number of completed phases.
func (b *DynamicBarrier) Epoch() int64 { return b.w.epoch.Load() }

// Stats returns the barrier's counters (same shape as FuzzyBarrier).
func (b *DynamicBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *DynamicBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// complete publishes a finished phase. Called with mu held, so the
// count reset, the epoch bump and the broadcast are one atomic
// transition as seen by Register/Arrive/ArriveAndLeave.
func (b *DynamicBarrier) complete() {
	b.count = 0
	b.stats.Syncs.Add(1)
	b.w.publish()
}

// Register adds one member. The new member has not arrived at the current
// phase, so the phase now requires one more arrival — register from a
// stream that is itself between Wait and Arrive (or before starting), the
// same discipline as allocating a barrier when a stream is spawned.
//
// Registering on a drained barrier (membership reached zero) panics; the
// check and the join are atomic, so racing Register against the final
// ArriveAndLeave either joins before the drain (keeping the barrier
// live) or observes the drained barrier — never a half-applied mix.
func (b *DynamicBarrier) Register() {
	b.mu.Lock()
	if b.members == 0 {
		b.mu.Unlock()
		panic("core: Register on a drained dynamic barrier")
	}
	b.members++
	b.mu.Unlock()
}

// Arrive signals readiness for the current phase and returns the ticket
// for Wait. If this arrival is the last outstanding one, the phase
// completes. The ticket's epoch is read in the same critical section
// that counts the arrival, so it names exactly the phase the arrival
// was counted toward.
func (b *DynamicBarrier) Arrive() Phase {
	b.stats.Arrivals.Add(1)
	b.mu.Lock()
	if b.members == 0 || b.count >= b.members {
		c, m := b.count, b.members
		b.mu.Unlock()
		panic(fmt.Sprintf("core: Arrive with %d arrivals of %d members (protocol violation)", c, m))
	}
	e := b.w.epoch.Load()
	if b.count+1 == b.members {
		b.complete()
	} else {
		b.count++
	}
	b.mu.Unlock()
	return Phase{epoch: e}
}

// ArriveAndLeave deregisters the caller. Its pending arrival obligation
// disappears with it: if everyone else has already arrived, the phase
// completes; if the caller was the last member, the barrier drains. The
// caller must not Wait (it is no longer a member) and must not use the
// barrier again without Register.
func (b *DynamicBarrier) ArriveAndLeave() {
	b.stats.Arrivals.Add(1)
	b.mu.Lock()
	switch {
	case b.members == 0:
		b.mu.Unlock()
		panic("core: ArriveAndLeave on a drained dynamic barrier")
	case b.members == 1:
		// Last member out: the barrier is drained.
		b.members = 0
		b.complete()
	case b.count == b.members-1:
		// Everyone else already arrived; our departure completes the
		// phase for them.
		b.members--
		b.complete()
	default:
		b.members--
	}
	b.mu.Unlock()
}

// TryWait reports whether the phase ticket's synchronization completed.
func (b *DynamicBarrier) TryWait(p Phase) bool {
	return b.w.tryWait(p)
}

// Wait blocks until the ticket's phase completes, spinning briefly first
// (the split-phase fast path).
func (b *DynamicBarrier) Wait(p Phase) {
	b.w.wait(p, b.SpinLimit, &b.stats)
}

// Await is the point-barrier convenience: Arrive immediately followed by
// Wait.
func (b *DynamicBarrier) Await() {
	b.Wait(b.Arrive())
}
