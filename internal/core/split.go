package core

// SplitBarrier is the split-phase (fuzzy) barrier contract shared by the
// runtime implementations: the central-counter FuzzyBarrier, the
// combining-tree TreeBarrier, the two-level sharded HierBarrier, and
// the allreduce ReduceBarrier (whose plain Arrive contributes the
// reduction identity). The experiment
// harness, the benchmarks and cmd/barbench all drive barriers through
// this interface so that implementations can be compared
// apples-to-apples.
//
// The protocol is the paper's: Arrive marks entry into the barrier
// region and never blocks; Wait marks the region's end and blocks only
// if some participant has not yet arrived at the same phase. Every
// participant must call Arrive exactly once per phase and Wait before
// its next Arrive.
//
// DynamicBarrier satisfies everything here except N (its membership
// changes at run time), which is why it stays outside the interface.
type SplitBarrier interface {
	// Arrive signals readiness to synchronize; it never blocks.
	Arrive() Phase
	// TryWait reports whether the phase completed, without blocking.
	TryWait(Phase) bool
	// Wait blocks until every participant has arrived at the phase.
	Wait(Phase)
	// Await is the conventional point barrier: Arrive then Wait.
	Await()
	// N returns the number of participants.
	N() int
	// Epoch returns the number of completed synchronization episodes.
	Epoch() int64
	// Stats returns the runtime counters (see RuntimeStats).
	Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64)
	// StatsSnapshot returns the full observability snapshot, including
	// the wait-spin histogram (see BarrierStats).
	StatsSnapshot() BarrierStats
}

// ArriveProfiler is optionally implemented by split barriers that can
// report arrive-side contention: the total number of atomic operations
// applied to the single most-contended counter word, plus the number of
// completed phases to normalize by. ops/phases is the per-episode
// traffic on the hottest memory location — the quantity that turns a
// shared counter into the hot spot of Section 1, independent of how many
// cores the host happens to have.
type ArriveProfiler interface {
	HotspotOps() (ops, phases int64)
}

// Compile-time interface checks.
var (
	_ SplitBarrier   = (*FuzzyBarrier)(nil)
	_ SplitBarrier   = (*TreeBarrier)(nil)
	_ SplitBarrier   = (*ReduceBarrier)(nil)
	_ SplitBarrier   = (*HierBarrier)(nil)
	_ ArriveProfiler = (*FuzzyBarrier)(nil)
	_ ArriveProfiler = (*TreeBarrier)(nil)
	_ ArriveProfiler = (*ReduceBarrier)(nil)
	_ ArriveProfiler = (*HierBarrier)(nil)
)
