package core

import (
	"fmt"
	"sync/atomic"
)

// FuzzyBarrier is the runtime (software) form of the fuzzy barrier: a
// split-phase barrier for a fixed group of participants.
//
//	ph := b.Arrive()   // "I have exited the preceding non-barrier region"
//	...                // barrier-region work: runs while others catch up
//	b.Wait(ph)         // "I am about to exit the barrier region"
//
// Arrive never blocks. Wait blocks only if some participant has not yet
// arrived at the same phase — which is exactly the condition under which
// the paper's hardware stalls the processor. Calling Wait immediately
// after Arrive degenerates to a conventional (point) barrier, which is how
// the baselines for experiment E1 are built.
//
// The implementation is a central-counter epoch barrier: an atomic
// arrival counter plus an epoch number. Every participant hammers the one
// counter, so the arrival phase serializes on a single cache line — fine
// on a handful of processors (the paper's Multimax had four), a hot spot
// at larger scale; TreeBarrier is the same contract with combining-tree
// arrivals for large participant counts. The fast path of Wait spins a
// bounded number of times (SpinLimit) before blocking on a condition
// variable; blocking is counted in Stats because the Encore measurement
// attributes the cost of conventional barriers to exactly these
// context-save/restore events (Section 8).
type FuzzyBarrier struct {
	n     int64
	tag   Tag // identity, for multi-barrier setups (Section 5); informational
	count atomic.Int64

	w phaseWaiter

	// SpinLimit bounds the Wait fast path; 0 means DefaultSpinLimit.
	SpinLimit int

	stats RuntimeStats
}

// RuntimeStats counts the events that matter for the Section 8
// measurement. Snapshot copies the live counters into the exported
// BarrierStats form.
type RuntimeStats struct {
	Syncs     atomic.Int64 // completed barrier episodes
	Arrivals  atomic.Int64 // total Arrive calls
	FastWaits atomic.Int64 // Waits satisfied without spinning (already synced)
	SpinWaits atomic.Int64 // Waits satisfied during the spin phase
	LockWaits atomic.Int64 // Waits resolved at the locked recheck, no sleep
	Blocks    atomic.Int64 // Waits that slept on the condvar (the expensive case)
	SpinIters atomic.Int64 // total spin iterations across all Waits

	// waitSpins histograms the spin iterations of each Wait
	// (power-of-four buckets plus an exhausted-budget overflow bucket;
	// see WaitBucketLabel).
	waitSpins [NumWaitBuckets]atomic.Int64
}

// DefaultSpinLimit is the spin budget of Wait before it blocks.
const DefaultSpinLimit = 128

// Phase is the ticket returned by Arrive and consumed by Wait.
type Phase struct {
	epoch int64
}

// NewFuzzyBarrier creates a fuzzy barrier for n participants (n >= 1).
func NewFuzzyBarrier(n int) *FuzzyBarrier {
	if n < 1 {
		panic(fmt.Sprintf("core: fuzzy barrier size %d < 1", n))
	}
	b := &FuzzyBarrier{n: int64(n)}
	b.w.init()
	return b
}

// NewTaggedFuzzyBarrier creates a fuzzy barrier carrying a logical tag,
// for use with the Section 5 allocator.
func NewTaggedFuzzyBarrier(n int, tag Tag) *FuzzyBarrier {
	b := NewFuzzyBarrier(n)
	b.tag = tag
	return b
}

// N returns the number of participants.
func (b *FuzzyBarrier) N() int { return int(b.n) }

// Tag returns the barrier's logical identity (TagNone if untagged).
func (b *FuzzyBarrier) Tag() Tag { return b.tag }

// Stats returns a snapshot of the barrier's counters.
func (b *FuzzyBarrier) Stats() (syncs, arrivals, fastWaits, spinWaits, blocks, spinIters int64) {
	return b.stats.Syncs.Load(), b.stats.Arrivals.Load(), b.stats.FastWaits.Load(),
		b.stats.SpinWaits.Load(), b.stats.Blocks.Load(), b.stats.SpinIters.Load()
}

// StatsSnapshot returns the full observability snapshot, including the
// wait-spin histogram.
func (b *FuzzyBarrier) StatsSnapshot() BarrierStats { return b.stats.Snapshot() }

// HotspotOps implements ArriveProfiler: every arrival's add and every
// episode's reset land on the single shared counter, so the hottest-word
// traffic is Arrivals + Syncs — n+1 operations per phase, the linear
// hot spot of Section 1.
func (b *FuzzyBarrier) HotspotOps() (ops, phases int64) {
	return b.stats.Arrivals.Load() + b.stats.Syncs.Load(), b.stats.Syncs.Load()
}

// Arrive signals that the caller is ready to synchronize and returns the
// phase ticket to pass to Wait. It never blocks.
//
// Every participant must call Arrive exactly once per phase, and must call
// Wait before its next Arrive. (The paper's analog: a stream must cross
// barrier k before reaching barrier k+1; violating that is the Figure 2
// invalid-branch bug.)
func (b *FuzzyBarrier) Arrive() Phase {
	b.stats.Arrivals.Add(1)
	e := b.w.epoch.Load()
	if b.count.Add(1) == b.n {
		// Last arriver completes the episode: reset the counter for the
		// next phase, then publish the new epoch. No participant can
		// arrive for the next phase before the epoch is published,
		// because its Wait for this phase has not returned yet.
		b.count.Store(0)
		b.stats.Syncs.Add(1)
		b.w.publish()
	}
	return Phase{epoch: e}
}

// TryWait reports whether synchronization for the given phase has
// occurred, without blocking — the software analog of the hardware's
// "processor is in the barrier region and has synchronized" state.
func (b *FuzzyBarrier) TryWait(p Phase) bool {
	return b.w.tryWait(p)
}

// Wait blocks until every participant has arrived at phase p. It spins
// briefly before blocking so that well-balanced regions never pay for a
// context switch.
func (b *FuzzyBarrier) Wait(p Phase) {
	b.w.wait(p, b.SpinLimit, &b.stats)
}

// Await is the conventional point barrier: Arrive immediately followed by
// Wait, i.e. a fuzzy barrier with an empty barrier region.
func (b *FuzzyBarrier) Await() {
	b.Wait(b.Arrive())
}

// Epoch returns the number of completed synchronization episodes.
func (b *FuzzyBarrier) Epoch() int64 { return b.w.epoch.Load() }
