package core

import (
	"sync"
	"testing"
)

// TestReduceBarrierSerialFold drives n participants from one goroutine
// (the last arrival of a phase completes it, so a serial driver works)
// and checks WaitValue against the serial fold for every canned
// operator, several tree shapes, and several phases.
func TestReduceBarrierSerialFold(t *testing.T) {
	ops := []struct {
		name     string
		op       ReduceOp
		identity int64
	}{
		{"sum", OpSum, IdentitySum},
		{"min", OpMin, IdentityMin},
		{"max", OpMax, IdentityMax},
		{"xor", OpXor, IdentityXor},
	}
	for _, o := range ops {
		for _, shape := range []struct{ n, radix int }{
			{1, 2}, {2, 2}, {4, 4}, {5, 2}, {9, 3}, {17, 4},
		} {
			b := NewReduceBarrierRadix(shape.n, shape.radix, o.op, o.identity)
			for phase := int64(0); phase < 5; phase++ {
				want := o.identity
				tickets := make([]Phase, shape.n)
				for id := 0; id < shape.n; id++ {
					v := int64(id*id) - 7*phase + int64(id%3)*1000
					want = o.op(want, v)
					tickets[id] = b.ArriveValue(v)
				}
				for id := 0; id < shape.n; id++ {
					if got := b.WaitValue(tickets[id]); got != want {
						t.Fatalf("%s n=%d radix=%d phase %d participant %d: WaitValue = %d, want %d",
							o.name, shape.n, shape.radix, phase, id, got, want)
					}
				}
				if b.Epoch() != phase+1 {
					t.Fatalf("%s n=%d: epoch = %d, want %d", o.name, shape.n, b.Epoch(), phase+1)
				}
			}
		}
	}
}

// TestReduceBarrierConcurrent checks the allreduce result against the
// serial fold with real goroutines racing their deposits up the tree.
func TestReduceBarrierConcurrent(t *testing.T) {
	const workers, phases = 8, 200
	b := NewReduceBarrierRadix(workers, 2, OpSum, IdentitySum)
	contrib := func(p, id int64) int64 { return (p+1)*100 + id*id }
	expect := make([]int64, phases)
	for p := range expect {
		acc := IdentitySum
		for id := 0; id < workers; id++ {
			acc = OpSum(acc, contrib(int64(p), int64(id)))
		}
		expect[p] = acc
	}
	var bad sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for p := int64(0); p < phases; p++ {
				got := b.WaitValue(b.ArriveValue(contrib(p, id)))
				if got != expect[p] {
					bad.Store([2]int64{p, id}, got)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	bad.Range(func(k, v any) bool {
		pk := k.([2]int64)
		t.Errorf("phase %d worker %d: WaitValue = %d, want %d", pk[0], pk[1], v, expect[pk[0]])
		return true
	})
	if b.Epoch() != phases {
		t.Errorf("epoch = %d, want %d", b.Epoch(), phases)
	}
}

// TestReduceBarrierMixedArrive mixes plain Arrive (identity
// contribution) with ArriveValue in the same phase: the fold must cover
// exactly the value-carrying arrivals.
func TestReduceBarrierMixedArrive(t *testing.T) {
	b := NewReduceBarrier(3, OpMax, IdentityMax)
	ph := b.ArriveValue(41)
	b.Arrive()
	b.ArriveValue(-5)
	if got := b.WaitValue(ph); got != 41 {
		t.Errorf("WaitValue = %d, want 41", got)
	}
	// AwaitValue on a single-participant barrier is a pure round trip.
	one := NewReduceBarrier(1, OpSum, IdentitySum)
	if got := one.AwaitValue(123); got != 123 {
		t.Errorf("AwaitValue = %d, want 123", got)
	}
}

// TestReduceBarrierProbesDeterministic forces every arrival to the same
// home leaf via ArriveValueLeaf(0, ...): the i-th arrival of a phase
// pays exactly as many probes as there are already-full leaves before
// its slot, so per phase the probe total is sum over leaves j of
// j*quota(j) — checked exactly, along with the slot invariant that every
// node ends each phase at exactly quota*(phase+1) claims.
func TestReduceBarrierProbesDeterministic(t *testing.T) {
	const n, radix, phases = 10, 3, 4
	b := NewReduceBarrierRadix(n, radix, OpSum, IdentitySum)
	var perPhase int64
	pos := 0
	for j := 0; j < b.Leaves(); j++ {
		perPhase += int64(j) * b.nodes[j].quota
		pos += int(b.nodes[j].quota)
	}
	if pos != n {
		t.Fatalf("leaf quotas sum to %d, want %d", pos, n)
	}
	for p := int64(0); p < phases; p++ {
		var tickets []Phase
		want := IdentitySum
		for id := 0; id < n; id++ {
			v := int64(id) + p
			want += v
			tickets = append(tickets, b.ArriveValueLeaf(0, v))
		}
		if got := b.WaitValue(tickets[0]); got != want {
			t.Fatalf("phase %d: WaitValue = %d, want %d", p, got, want)
		}
		if got, wantProbes := b.Probes(), (p+1)*perPhase; got != wantProbes {
			t.Errorf("after phase %d: Probes() = %d, want %d", p, got, wantProbes)
		}
		for i := range b.nodes {
			if got, wantSlots := b.nodes[i].done.Load(), b.nodes[i].quota*(p+1); got != wantSlots {
				t.Errorf("after phase %d: node %d done = %d, want %d", p, i, got, wantSlots)
			}
		}
	}
}

// TestReduceBarrierPanics: constructor and leaf-range validation.
func TestReduceBarrierPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("n<1", func() { NewReduceBarrier(0, OpSum, 0) })
	expectPanic("nil op", func() { NewReduceBarrier(2, nil, 0) })
	b := NewReduceBarrier(4, OpSum, 0)
	expectPanic("leaf<0", func() { b.ArriveValueLeaf(-1, 1) })
	expectPanic("leaf>=Leaves", func() { b.ArriveValueLeaf(b.Leaves(), 1) })
}

// TestReduceBarrierShape: the reduce tree reports the same geometry as
// the equivalent TreeBarrier (they share buildTreeShape).
func TestReduceBarrierShape(t *testing.T) {
	for _, tc := range []struct{ n, radix int }{{1, 2}, {7, 2}, {16, 4}, {100, 8}} {
		rb := NewReduceBarrierRadix(tc.n, tc.radix, OpSum, 0)
		tb := NewTreeBarrierRadix(tc.n, tc.radix)
		if rb.N() != tb.N() || rb.Radix() != tb.Radix() ||
			rb.Leaves() != tb.Leaves() || rb.Depth() != tb.Depth() {
			t.Errorf("n=%d radix=%d: reduce shape (n=%d r=%d leaves=%d depth=%d) != tree shape (n=%d r=%d leaves=%d depth=%d)",
				tc.n, tc.radix, rb.N(), rb.Radix(), rb.Leaves(), rb.Depth(),
				tb.N(), tb.Radix(), tb.Leaves(), tb.Depth())
		}
	}
}
