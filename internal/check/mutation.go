package check

import (
	"fmt"

	"fuzzybarrier/internal/cluster"
)

// mutation kinds.
const (
	mutRetagStale = iota
	mutDropRelease
)

// Mutation deliberately breaks a protocol machine. Negative tests run
// the checker over mutated protocols to prove that real protocol bugs
// produce counterexamples rather than silent passes.
type Mutation struct {
	Name string
	Desc string
	kind int
}

// MutationRetagStale models a protocol that skipped its epoch-tag
// staleness check: a stale delivery (epoch below the node's completed
// horizon — e.g. a duplicated or retransmitted message from a finished
// epoch) is re-tagged to the current horizon and processed as fresh.
// The expected counterexample is an early release: the stale arrival
// is double-counted toward an epoch the sender never arrived at.
func MutationRetagStale() *Mutation {
	return &Mutation{
		Name: "retag-stale",
		Desc: "stale deliveries are counted as current-epoch arrivals (missing epoch-tag check)",
		kind: mutRetagStale,
	}
}

// MutationDropRelease models a node that loses its wake-up: the
// highest-numbered node silently ignores release-wave and round
// messages, so it can never complete an epoch. The expected
// counterexample is a deadlock.
func MutationDropRelease() *Mutation {
	return &Mutation{
		Name: "drop-release",
		Desc: "last node silently ignores release/round messages (lost wake-up)",
		kind: mutDropRelease,
	}
}

// Wrap wraps one node's protocol machine with the mutation.
func (mu *Mutation) Wrap(p cluster.Proto, env cluster.ProtoEnv) cluster.Proto {
	return &mutProto{inner: p, env: env, mu: mu}
}

// mutProto decorates a Proto, perturbing Handle per the mutation kind.
// It is stateless beyond its inner machine, so cloning and state
// encoding delegate straight through.
type mutProto struct {
	inner cluster.Proto
	env   cluster.ProtoEnv
	mu    *Mutation
}

func (w *mutProto) Arrive(e int64) { w.inner.Arrive(e) }

func (w *mutProto) Handle(m cluster.Message) {
	switch w.mu.kind {
	case mutRetagStale:
		if m.Epoch < w.env.ReleasedThrough() {
			m.Epoch = w.env.ReleasedThrough()
		}
	case mutDropRelease:
		if w.env.NodeID() == w.env.Nodes()-1 &&
			(m.Kind == cluster.MsgRelease || m.Kind == cluster.MsgRound) {
			return
		}
	}
	w.inner.Handle(m)
}

func (w *mutProto) PendingLine() string {
	return fmt.Sprintf("%s [mutation:%s]", w.inner.PendingLine(), w.mu.Name)
}

func (w *mutProto) CloneFor(env cluster.ProtoEnv) cluster.Proto {
	return &mutProto{inner: w.inner.CloneFor(env), env: env, mu: w.mu}
}

func (w *mutProto) AppendState(buf []byte) []byte { return w.inner.AppendState(buf) }
