// Package check is an explicit-state model checker for the
// internal/cluster barrier protocols. Where the simulator samples one
// schedule per seed, the checker enumerates *every* reachable protocol
// state at small n under an adversarial network and proves two
// properties exhaustively:
//
//   - no-early-release: no node completes epoch e before all n nodes
//     have issued Arrive(e) (the barrier condition, checked at every
//     Release transition), and releases happen in epoch order.
//   - no-deadlock: every reachable non-final state has at least one
//     enabled transition; the only quiescent states are the ones where
//     all nodes completed all epochs.
//
// It runs the very same protocol state machines as the simulator —
// central.go / tree.go / dissem.go behind the cluster.Proto /
// cluster.ProtoEnv seam — so a property proved here is a property of
// the shipped code, not of a hand-translated model.
//
// # Adversary model
//
// The reliable-delivery layer (acks, RTT-estimated retransmission) is
// abstracted away: it guarantees each protocol send is delivered at
// least once and possibly several times, in any order. The checker
// models the network as a multiset of in-flight messages where each
// send may be delivered 1+MaxDup times:
//
//   - reorder: delivery picks any in-flight message, so all orders are
//     explored (a dropped-then-retransmitted copy is just a late
//     delivery and is covered by the same choice);
//   - duplication: a message may be delivered again after its first
//     delivery — up to MaxDup extra times — modeling both network
//     duplication and spurious retransmissions, including arbitrarily
//     stale ones;
//   - drop: an extra copy may instead be discarded, so paths where
//     duplication never happens are explored too. The mandatory final
//     copy cannot be discarded — reliability guarantees delivery — so
//     a "drop" of the last copy is exactly a late delivery.
//
// The fidelity of this abstraction to the concrete ack/retransmit
// machinery is pinned separately: the simulator's fault-injection
// property tests exercise the reliability layer itself, and
// TestOracleMatchesSimulator cross-checks the simulator against the
// closed-form release-time oracle in oracle.go.
//
// # Search
//
// States are canonically encoded (per-node protocol state + epoch
// horizons + the sorted in-flight multiset) and deduplicated in a
// visited set; the search is a work-stack DFS with state and depth
// budgets. Each discovered state remembers its discovery edge, so a
// violation yields a full trace; the trace is then re-derived with a
// breadth-first pass bounded by the DFS result, so the printed
// counterexample is minimal.
package check

import (
	"fmt"
	"sort"
	"strings"

	"fuzzybarrier/internal/cluster"
)

// Defaults for the search budgets.
const (
	DefaultMaxStates = 4 << 20
	DefaultMaxDepth  = 1 << 20
	DefaultMaxDup    = 1
)

// Config describes one exhaustive verification run.
type Config struct {
	Protocol  string // one of cluster.Protocols()
	Nodes     int    // cluster size (the state space is exponential; keep <= 4)
	Epochs    int    // barrier episodes to verify through
	TreeArity int    // combining-tree fanout, default 2

	// MaxDup is how many extra adversarial deliveries each protocol
	// send may receive beyond the mandatory one (default 1). Set a
	// negative value to disable duplication and check pure reordering.
	MaxDup int

	// MaxStates and MaxDepth bound the search; exceeding either aborts
	// with an error (the run is then neither verified nor refuted).
	MaxStates int
	MaxDepth  int

	// Mutation, when non-nil, wraps every node's protocol machine with
	// a deliberately broken variant. Negative tests use this to prove
	// the checker actually catches protocol bugs.
	Mutation *Mutation
}

func (cfg Config) withDefaults() (Config, error) {
	known := false
	for _, p := range cluster.Protocols() {
		if p == cfg.Protocol {
			known = true
		}
	}
	if !known {
		return cfg, fmt.Errorf("check: unknown protocol %q", cfg.Protocol)
	}
	if cfg.Nodes < 1 {
		return cfg, fmt.Errorf("check: need >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.Epochs < 1 {
		return cfg, fmt.Errorf("check: need >= 1 epoch, got %d", cfg.Epochs)
	}
	if cfg.TreeArity < 2 {
		cfg.TreeArity = 2
	}
	switch {
	case cfg.MaxDup < 0:
		cfg.MaxDup = 0 // negative: duplication explicitly disabled
	case cfg.MaxDup == 0:
		cfg.MaxDup = DefaultMaxDup
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	return cfg, nil
}

// Violation describes one property failure, with a minimal
// counterexample trace from the initial state.
type Violation struct {
	Property string   // "early-release", "release-order", "deadlock" or "panic"
	Detail   string   // what went wrong at the final transition
	Trace    []string // one action per line, in execution order
}

// String renders the violation with its trace, one action per line.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", v.Property, v.Detail)
	fmt.Fprintf(&b, "counterexample (%d steps):\n", len(v.Trace))
	for i, step := range v.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, step)
	}
	return b.String()
}

// Result summarizes one verification run.
type Result struct {
	Config      Config
	States      int   // distinct states reached
	Transitions int64 // transitions applied
	Depth       int   // deepest path explored

	// Violation is nil when both properties hold over the whole
	// reachable state space.
	Violation *Violation
}

// Verified reports whether the run proved both properties.
func (r *Result) Verified() bool { return r.Violation == nil }

// String renders a one-line summary.
func (r *Result) String() string {
	verdict := "verified: no-early-release, no-deadlock"
	if r.Violation != nil {
		verdict = "VIOLATION (" + r.Violation.Property + ")"
	}
	return fmt.Sprintf("%s n=%d epochs=%d dup<=%d: %d states, %d transitions, depth %d — %s",
		r.Config.Protocol, r.Config.Nodes, r.Config.Epochs, r.Config.MaxDup,
		r.States, r.Transitions, r.Depth, verdict)
}

// Run exhaustively explores the protocol's reachable state space under
// the adversary and returns the verification result. The error is
// non-nil only for invalid configs or exhausted budgets — a property
// violation is reported in Result.Violation, not as an error.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := newChecker(cfg)
	res, err := c.search(searchDFS)
	if err != nil || res.Violation == nil {
		return res, err
	}
	// A violation found by DFS can carry a long discovery path; re-run
	// breadth-first (shortest discovery order) to print a minimal
	// counterexample. The BFS pass shares the budgets; if it blows
	// them, keep the DFS trace.
	short, serr := newChecker(cfg).search(searchBFS)
	if serr == nil && short.Violation != nil && len(short.Violation.Trace) < len(res.Violation.Trace) {
		res.Violation = short.Violation
	}
	return res, nil
}

// action ops.
const (
	opArrive  = uint8(iota) // a node issues Arrive for its next epoch
	opDeliver               // the network delivers one in-flight copy
	opDup                   // the network delivers an extra (duplicate) copy
	opDrop                  // the network discards an extra copy undelivered
)

// action is one transition of the model: a local arrival or an
// adversary move on one in-flight message.
type action struct {
	op   uint8
	node int32           // opArrive: which node
	m    cluster.Message // opDeliver/opDup/opDrop: which message
}

func (a action) String() string {
	switch a.op {
	case opArrive:
		return fmt.Sprintf("node %d: Arrive(e=%d)", a.node, a.m.Epoch)
	case opDeliver:
		return fmt.Sprintf("net: deliver %s", renderMsg(a.m))
	case opDup:
		return fmt.Sprintf("net: deliver duplicate %s", renderMsg(a.m))
	case opDrop:
		return fmt.Sprintf("net: drop extra copy of %s", renderMsg(a.m))
	}
	return fmt.Sprintf("action(%d)", a.op)
}

// renderMsg renders a message without the Seq field (the checker
// abstracts sequence numbers away).
func renderMsg(m cluster.Message) string {
	if m.Kind == cluster.MsgRound {
		return fmt.Sprintf("%s e=%d r=%d %d->%d", m.Kind, m.Epoch, m.Round, m.From, m.To)
	}
	return fmt.Sprintf("%s e=%d %d->%d", m.Kind, m.Epoch, m.From, m.To)
}

// flight is one in-flight protocol send: the mandatory delivery plus
// any remaining adversarial duplicates.
type flight struct {
	m         cluster.Message
	delivered bool  // the mandatory copy has been consumed
	extra     uint8 // adversarial duplicate deliveries still available
}

func (f flight) gone() bool { return f.delivered && f.extra == 0 }

// nodeState is one node of the model: the protocol machine plus the
// abstracted episode position. arrived is the next epoch the node will
// Arrive at; released is the node's completed-epoch horizon. The fuzzy
// region and Wait are abstracted to their synchronization skeleton:
// Arrive(e) is enabled exactly when the node has completed every epoch
// < e (released == e), and "exiting epoch e" is the release itself —
// which is where the barrier condition is checked.
type nodeState struct {
	arrived  int64
	released int64
	proto    cluster.Proto
}

// state is one vertex of the explored graph.
type state struct {
	nodes []nodeState
	net   []flight
}

type discEntry struct {
	parent int32
	act    action
}

type workItem struct {
	st    *state
	id    int32
	depth int
}

// Search strategies: DFS (work stack, low memory, used for the
// exhaustive pass) and BFS (FIFO, shortest discovery paths, used to
// minimize counterexamples).
const (
	searchDFS = iota
	searchBFS
)

type checker struct {
	cfg  Config
	envs []*env

	// cur is the state being mutated by the transition in flight; the
	// persistent per-node envs indirect through it so cloned protocol
	// machines never need rebinding.
	cur  *state
	fail *Violation // set by env.Release on a property breach

	visited map[string]int32
	disc    []discEntry
}

func newChecker(cfg Config) *checker {
	c := &checker{cfg: cfg, visited: make(map[string]int32)}
	c.envs = make([]*env, cfg.Nodes)
	for i := range c.envs {
		c.envs[i] = &env{c: c, id: i}
	}
	return c
}

// env adapts the checker to cluster.ProtoEnv for one node id.
type env struct {
	c  *checker
	id int
}

func (e *env) NodeID() int    { return e.id }
func (e *env) Nodes() int     { return e.c.cfg.Nodes }
func (e *env) TreeArity() int { return e.c.cfg.TreeArity }

func (e *env) ReleasedThrough() int64 { return e.c.cur.nodes[e.id].released }

func (e *env) Send(m cluster.Message) {
	m.From = e.id
	if m.To < 0 || m.To >= e.c.cfg.Nodes {
		panic(fmt.Sprintf("send to out-of-range node %d", m.To))
	}
	e.c.cur.net = append(e.c.cur.net, flight{m: m, extra: uint8(e.c.cfg.MaxDup)})
}

// Release is where both release properties are checked, on every
// release of every explored path.
func (e *env) Release(epoch int64) {
	nd := &e.c.cur.nodes[e.id]
	if epoch < nd.released {
		return // duplicate release of a completed epoch: dropped, like node.release
	}
	if epoch > nd.released {
		e.c.fail = &Violation{
			Property: "release-order",
			Detail: fmt.Sprintf("node %d released epoch %d before completing epoch %d",
				e.id, epoch, nd.released),
		}
		return
	}
	for j := range e.c.cur.nodes {
		if e.c.cur.nodes[j].arrived <= epoch {
			e.c.fail = &Violation{
				Property: "early-release",
				Detail: fmt.Sprintf("node %d released epoch %d but node %d has not arrived (arrived through %d of %d nodes required)",
					e.id, epoch, j, e.c.cur.nodes[j].arrived, e.c.cfg.Nodes),
			}
			return
		}
	}
	nd.released = epoch + 1
}

// initial builds the model's start state: every node at epoch 0, empty
// network.
func (c *checker) initial() (*state, error) {
	st := &state{nodes: make([]nodeState, c.cfg.Nodes)}
	for i := range st.nodes {
		p, err := cluster.NewProto(c.cfg.Protocol, c.envs[i])
		if err != nil {
			return nil, err
		}
		if c.cfg.Mutation != nil {
			p = c.cfg.Mutation.Wrap(p, c.envs[i])
		}
		st.nodes[i].proto = p
	}
	return st, nil
}

// clone deep-copies a state; protocol machines are forked through
// CloneFor so the copy shares nothing with the original.
func (c *checker) clone(s *state) *state {
	ns := &state{
		nodes: make([]nodeState, len(s.nodes)),
		net:   append([]flight(nil), s.net...),
	}
	for i := range s.nodes {
		ns.nodes[i] = s.nodes[i]
		ns.nodes[i].proto = s.nodes[i].proto.CloneFor(c.envs[i])
	}
	return ns
}

// allDone reports quiescence: every node completed every epoch. Any
// messages still in flight are provably stale (their epoch is below
// every node's horizon), so final states are not expanded further.
func (c *checker) allDone(s *state) bool {
	for i := range s.nodes {
		if s.nodes[i].released < int64(c.cfg.Epochs) {
			return false
		}
	}
	return true
}

// enabled appends every transition enabled in s.
func (c *checker) enabled(s *state, buf []action) []action {
	for i := range s.nodes {
		nd := &s.nodes[i]
		if nd.arrived == nd.released && nd.arrived < int64(c.cfg.Epochs) {
			buf = append(buf, action{op: opArrive, node: int32(i), m: cluster.Message{Epoch: nd.arrived}})
		}
	}
	for j := range s.net {
		f := &s.net[j]
		if !f.delivered {
			buf = append(buf, action{op: opDeliver, m: f.m})
		} else if f.extra > 0 {
			// Duplicates become available once the mandatory copy is
			// consumed: a copy overtaking the original is the same
			// delivery order with the labels swapped, so restricting
			// duplicates to follow the original loses no reachable
			// protocol state and halves the interleaving count.
			buf = append(buf, action{op: opDup, m: f.m}, action{op: opDrop, m: f.m})
		}
	}
	return buf
}

// findFlight locates the in-flight entry for action a (by message
// value and the op's delivery class).
func findFlight(s *state, a action) int {
	for j := range s.net {
		f := &s.net[j]
		if f.m != a.m {
			continue
		}
		if a.op == opDeliver && !f.delivered {
			return j
		}
		if (a.op == opDup || a.op == opDrop) && f.delivered && f.extra > 0 {
			return j
		}
	}
	return -1
}

// apply executes action a on a fresh copy of s, returning the successor
// and any property violation the transition triggered. Panics inside
// the protocol machines (possible under mutations) are converted into
// violations rather than crashing the search.
func (c *checker) apply(s *state, a action) (ns *state, viol *Violation) {
	ns = c.clone(s)
	c.cur = ns
	c.fail = nil
	defer func() {
		if r := recover(); r != nil {
			viol = &Violation{Property: "panic", Detail: fmt.Sprint(r)}
		}
		c.cur = nil
	}()
	switch a.op {
	case opArrive:
		nd := &ns.nodes[a.node]
		e := nd.arrived
		nd.arrived = e + 1
		nd.proto.Arrive(e)
	case opDeliver, opDup, opDrop:
		j := findFlight(ns, a)
		if j < 0 {
			panic(fmt.Sprintf("check: no in-flight entry for %s", a))
		}
		f := &ns.net[j]
		if a.op == opDeliver {
			f.delivered = true
		} else {
			f.extra--
		}
		deliver := a.op != opDrop
		if f.gone() {
			ns.net = append(ns.net[:j], ns.net[j+1:]...)
		}
		if deliver {
			ns.nodes[a.m.To].proto.Handle(a.m)
		}
	}
	if c.fail != nil {
		return ns, c.fail
	}
	return ns, nil
}

// key canonically encodes s. In-flight entries are order-normalized so
// states differing only in send order hash identically.
func (c *checker) key(s *state, buf []byte) []byte {
	for i := range s.nodes {
		nd := &s.nodes[i]
		buf = appendKey64(buf, nd.arrived)
		buf = appendKey64(buf, nd.released)
		buf = nd.proto.AppendState(buf)
	}
	net := append(make([]flight, 0, len(s.net)), s.net...)
	sort.Slice(net, func(a, b int) bool { return flightLess(net[a], net[b]) })
	for _, f := range net {
		buf = append(buf, byte(f.m.Kind), byte(f.m.From), byte(f.m.To), byte(f.m.Round))
		buf = appendKey64(buf, f.m.Epoch)
		d := byte(0)
		if f.delivered {
			d = 1
		}
		buf = append(buf, d, f.extra)
	}
	return buf
}

func appendKey64(buf []byte, v int64) []byte {
	u := uint64(v)
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func flightLess(a, b flight) bool {
	if a.m.Kind != b.m.Kind {
		return a.m.Kind < b.m.Kind
	}
	if a.m.From != b.m.From {
		return a.m.From < b.m.From
	}
	if a.m.To != b.m.To {
		return a.m.To < b.m.To
	}
	if a.m.Epoch != b.m.Epoch {
		return a.m.Epoch < b.m.Epoch
	}
	if a.m.Round != b.m.Round {
		return a.m.Round < b.m.Round
	}
	if a.delivered != b.delivered {
		return !a.delivered
	}
	return a.extra < b.extra
}

// trace reconstructs the action path from the initial state to state
// id by walking discovery edges.
func (c *checker) trace(id int32, last *action) []string {
	var acts []action
	if last != nil {
		acts = append(acts, *last)
	}
	for id > 0 {
		e := c.disc[id]
		acts = append(acts, e.act)
		id = e.parent
	}
	out := make([]string, len(acts))
	for i := range acts {
		out[len(acts)-1-i] = acts[i].String()
	}
	return out
}

// search runs the exploration to exhaustion, a violation, or a blown
// budget.
func (c *checker) search(strategy int) (*Result, error) {
	res := &Result{Config: c.cfg}
	init, err := c.initial()
	if err != nil {
		return nil, err
	}
	c.visited[string(c.key(init, nil))] = 0
	c.disc = append(c.disc, discEntry{parent: -1})
	work := []workItem{{st: init, id: 0, depth: 0}}
	res.States = 1

	var actbuf []action
	var keybuf []byte
	for len(work) > 0 {
		var it workItem
		if strategy == searchDFS {
			it = work[len(work)-1]
			work = work[:len(work)-1]
		} else {
			it = work[0]
			work = work[1:]
		}
		if it.depth > res.Depth {
			res.Depth = it.depth
		}
		if c.allDone(it.st) {
			continue // final: leftover in-flight messages are stale no-ops
		}
		actbuf = c.enabled(it.st, actbuf[:0])
		if len(actbuf) == 0 {
			c.cur = it.st // PendingLine reads through the env, which indirects via cur
			detail := fmt.Sprintf("no enabled transition; node states: %s", describeNodes(it.st))
			c.cur = nil
			res.Violation = &Violation{
				Property: "deadlock",
				Detail:   detail,
				Trace:    c.trace(it.id, nil),
			}
			return res, nil
		}
		if it.depth+1 > c.cfg.MaxDepth {
			return res, fmt.Errorf("check: depth budget %d exhausted (%d states so far)", c.cfg.MaxDepth, res.States)
		}
		for _, a := range actbuf {
			res.Transitions++
			ns, viol := c.apply(it.st, a)
			if viol != nil {
				viol.Trace = c.trace(it.id, &a)
				res.Violation = viol
				return res, nil
			}
			keybuf = c.key(ns, keybuf[:0])
			if _, seen := c.visited[string(keybuf)]; seen {
				continue
			}
			if res.States >= c.cfg.MaxStates {
				return res, fmt.Errorf("check: state budget %d exhausted", c.cfg.MaxStates)
			}
			id := int32(len(c.disc))
			c.visited[string(keybuf)] = id
			c.disc = append(c.disc, discEntry{parent: it.id, act: a})
			res.States++
			work = append(work, workItem{st: ns, id: id, depth: it.depth + 1})
		}
	}
	return res, nil
}

// describeNodes renders each node's position for deadlock reports.
func describeNodes(s *state) string {
	var b strings.Builder
	for i := range s.nodes {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "node %d arrived=%d released=%d [%s]",
			i, s.nodes[i].arrived, s.nodes[i].released, s.nodes[i].proto.PendingLine())
	}
	return b.String()
}
