package check

import (
	"fmt"
	"math"
)

// This file is the checker's second oracle: closed-form release times
// for each protocol on a clean network (fixed latency, no jitter, no
// drops, no duplicates). Where check.Run proves safety over every
// adversarial schedule, these recurrences pin the simulator's *timing*:
// given the arrival timestamps a run produced, they predict the release
// timestamp of every node of every epoch exactly, and exhaustive
// enumeration of work-jitter vectors turns them into exact stall
// statistics that experiment E17 cross-checks against simulated runs.
//
// On a clean network the reliability layer is invisible (the RTO is
// derived strictly above the round trip, so nothing retransmits) and
// each epoch's releases depend only on that epoch's arrivals:
//
//   - central: the coordinator completes at T = max(a[0], max_{j!=0}
//     a[j]+L) and releases itself then; everyone else at T+L.
//   - tree: subtree i completes at u[i] = max(a[i], max_c u[c]+L) over
//     its children c; the root releases at u[0] and the wave reaches
//     node i at u[0] + L*depth(i).
//   - dissemination: g[i][0] = a[i]; entering round r+1 requires
//     finishing round r, which requires the round-r message from peer
//     (i-2^r) mod n, sent when that peer entered round r:
//     g[i][r+1] = max(g[i][r], g[(i-2^r) mod n][r] + L); node i
//     releases at g[i][rounds].

// ReleaseTimes returns the exact release timestamp of every node for
// one epoch, given each node's arrival timestamp, on a clean network
// with one-way latency L. arity is the combining-tree fanout (ignored
// by the other protocols).
func ReleaseTimes(protocol string, arity int, latency int64, arrive []int64) ([]int64, error) {
	n := len(arrive)
	if n == 0 {
		return nil, fmt.Errorf("check: no arrival times")
	}
	if latency < 1 {
		return nil, fmt.Errorf("check: latency %d < 1", latency)
	}
	if arity < 2 {
		arity = 2
	}
	L := latency
	rel := make([]int64, n)
	switch protocol {
	case "central":
		T := arrive[0]
		for j := 1; j < n; j++ {
			if t := arrive[j] + L; t > T {
				T = t
			}
		}
		rel[0] = T
		for j := 1; j < n; j++ {
			rel[j] = T + L
		}
	case "tree":
		// Children have larger ids than their parent, so ascending id
		// order is a topological order; compute subtree-completion
		// bottom-up, then chain the release wave top-down.
		up := make([]int64, n)
		for i := n - 1; i >= 0; i-- {
			up[i] = arrive[i]
			for c := arity*i + 1; c <= arity*i+arity && c < n; c++ {
				if t := up[c] + L; t > up[i] {
					up[i] = t
				}
			}
		}
		rel[0] = up[0]
		for i := 1; i < n; i++ {
			rel[i] = rel[(i-1)/arity] + L
		}
	case "dissemination":
		g := append([]int64(nil), arrive...)
		next := make([]int64, n)
		for span := 1; span < n; span *= 2 {
			for i := 0; i < n; i++ {
				peer := (i - span + n) % n
				next[i] = g[i]
				if t := g[peer] + L; t > next[i] {
					next[i] = t
				}
			}
			g, next = next, g
		}
		copy(rel, g)
	default:
		return nil, fmt.Errorf("check: unknown protocol %q", protocol)
	}
	return rel, nil
}

// OracleReleases applies ReleaseTimes to every epoch of a simulator
// result's arrival matrix (indexed [node][epoch]) and returns the
// predicted release matrix in the same shape.
func OracleReleases(protocol string, arity int, latency int64, arriveAt [][]int64) ([][]int64, error) {
	n := len(arriveAt)
	if n == 0 {
		return nil, fmt.Errorf("check: empty arrival matrix")
	}
	epochs := len(arriveAt[0])
	out := make([][]int64, n)
	for i := range out {
		if len(arriveAt[i]) != epochs {
			return nil, fmt.Errorf("check: ragged arrival matrix")
		}
		out[i] = make([]int64, epochs)
	}
	col := make([]int64, n)
	for e := 0; e < epochs; e++ {
		for i := 0; i < n; i++ {
			col[i] = arriveAt[i][e]
		}
		rel, err := ReleaseTimes(protocol, arity, latency, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out[i][e] = rel[i]
		}
	}
	return out, nil
}

// StallMoments exhaustively enumerates every work-jitter vector in
// {0..jitter}^nodes and returns the exact mean and standard deviation
// of the total per-epoch stall (sum over nodes of release - arrival)
// for the protocol on a clean network with a zero-length barrier
// region. The enumeration has (jitter+1)^nodes cases; keep nodes <= 6
// and jitter small.
//
// This is the statistical oracle E17 compares simulated runs against:
// with Region = 0 every node's stall is exactly release - arrival, and
// the stall distribution depends only on the jitter vector (a common
// work offset shifts all arrivals and all releases equally).
func StallMoments(protocol string, arity int, latency int64, nodes int, jitter int64) (mean, stdev float64, err error) {
	if nodes < 1 {
		return 0, 0, fmt.Errorf("check: need >= 1 node")
	}
	if jitter < 0 {
		return 0, 0, fmt.Errorf("check: negative jitter")
	}
	cases := math.Pow(float64(jitter+1), float64(nodes))
	if cases > 1<<22 {
		return 0, 0, fmt.Errorf("check: %d^%d jitter vectors is too many to enumerate", jitter+1, nodes)
	}
	vec := make([]int64, nodes)
	var sum, sumSq float64
	count := 0
	for {
		rel, rerr := ReleaseTimes(protocol, arity, latency, vec)
		if rerr != nil {
			return 0, 0, rerr
		}
		var stall int64
		for i := range rel {
			stall += rel[i] - vec[i]
		}
		s := float64(stall)
		sum += s
		sumSq += s * s
		count++
		// Odometer increment over {0..jitter}^nodes.
		i := 0
		for ; i < nodes; i++ {
			vec[i]++
			if vec[i] <= jitter {
				break
			}
			vec[i] = 0
		}
		if i == nodes {
			break
		}
	}
	mean = sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), nil
}
