package check

import (
	"math"
	"strings"
	"testing"

	"fuzzybarrier/internal/cluster"
)

// TestVerifyProtocols exhaustively verifies every protocol at small n
// under the full adversary (reorder + drop + duplication) — the
// tentpole property: no early release and no deadlock on any reachable
// interleaving.
func TestVerifyProtocols(t *testing.T) {
	for _, proto := range cluster.Protocols() {
		for n := 1; n <= 3; n++ {
			res, err := Run(Config{Protocol: proto, Nodes: n, Epochs: 2})
			if err != nil {
				t.Fatalf("%s n=%d: %v", proto, n, err)
			}
			if !res.Verified() {
				t.Fatalf("%s n=%d: %v", proto, n, res.Violation)
			}
			t.Logf("%s", res)
			if n > 1 && res.States < 10 {
				t.Errorf("%s n=%d: suspiciously small state space (%d states)", proto, n, res.States)
			}
		}
	}
}

// TestVerifyProtocolsWide pushes to n=4 (pure reordering, one epoch) —
// wider fan-in/fan-out shapes: the central coordinator with three
// remote arrivals, a depth-2 tree, and a two-round dissemination
// pattern with wraparound.
func TestVerifyProtocolsWide(t *testing.T) {
	if testing.Short() {
		t.Skip("state space too large for -short")
	}
	// Full adversary for central and tree (~40k states); dissemination
	// at n=4 has ~1M reachable states with duplication (45s), so it
	// runs pure-reorder here and keeps the full adversary at n=3.
	for _, cfg := range []Config{
		{Protocol: "central", Nodes: 4, Epochs: 2},
		{Protocol: "tree", Nodes: 4, Epochs: 2},
		{Protocol: "tree", Nodes: 4, Epochs: 2, TreeArity: 3},
		{Protocol: "dissemination", Nodes: 4, Epochs: 2, MaxDup: -1},
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s n=%d: %v", cfg.Protocol, cfg.Nodes, err)
		}
		if !res.Verified() {
			t.Fatalf("%s n=%d: %v", cfg.Protocol, cfg.Nodes, res.Violation)
		}
		t.Logf("%s", res)
	}
}

// TestMutationRetagStaleCaught seeds the missing-epoch-tag-check bug
// into each protocol and requires the checker to refute it with a
// counterexample trace ending in an early release (or a protocol
// panic, for machines whose internal invariants trip first).
func TestMutationRetagStaleCaught(t *testing.T) {
	for _, proto := range cluster.Protocols() {
		res, err := Run(Config{Protocol: proto, Nodes: 2, Epochs: 2, Mutation: MutationRetagStale()})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		v := res.Violation
		if v == nil {
			t.Fatalf("%s: mutated protocol passed verification — the checker is blind", proto)
		}
		if v.Property != "early-release" && v.Property != "panic" {
			t.Errorf("%s: expected early-release (or panic), got %q", proto, v.Property)
		}
		if len(v.Trace) == 0 {
			t.Errorf("%s: violation carries no counterexample trace", proto)
		}
		rendered := v.String()
		if !strings.Contains(rendered, "counterexample") {
			t.Errorf("%s: rendered violation lacks the trace: %s", proto, rendered)
		}
		t.Logf("%s counterexample:\n%s", proto, rendered)
	}
}

// TestMutationDropReleaseCaught seeds a lost-wake-up bug (the last node
// ignores release/round messages) and requires a deadlock
// counterexample.
func TestMutationDropReleaseCaught(t *testing.T) {
	for _, proto := range cluster.Protocols() {
		res, err := Run(Config{Protocol: proto, Nodes: 2, Epochs: 1, Mutation: MutationDropRelease()})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		v := res.Violation
		if v == nil {
			t.Fatalf("%s: mutated protocol passed verification — the checker is blind", proto)
		}
		if v.Property != "deadlock" {
			t.Errorf("%s: expected deadlock, got %q", proto, v.Property)
		}
		t.Logf("%s counterexample:\n%s", proto, v)
	}
}

// TestMinimalCounterexample: the BFS re-pass must shorten the DFS
// discovery path; for the central protocol at n=2 the shortest
// early-release trace is known to be small.
func TestMinimalCounterexample(t *testing.T) {
	res, err := Run(Config{Protocol: "central", Nodes: 2, Epochs: 2, Mutation: MutationRetagStale()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected a violation")
	}
	// Epoch 0 needs 2 arrivals + 1 deliver + 1 release deliver; the bug
	// then needs one duplicate + at most a handful of steps for epoch 1.
	if got := len(res.Violation.Trace); got > 12 {
		t.Errorf("counterexample not minimized: %d steps\n%s", got, res.Violation)
	}
}

// TestBudgets: exhausted state/depth budgets are errors, not silent
// passes.
func TestBudgets(t *testing.T) {
	if _, err := Run(Config{Protocol: "dissemination", Nodes: 3, Epochs: 2, MaxStates: 50}); err == nil {
		t.Error("tiny MaxStates: expected a budget error")
	}
	if _, err := Run(Config{Protocol: "central", Nodes: 2, Epochs: 2, MaxDepth: 3}); err == nil {
		t.Error("tiny MaxDepth: expected a budget error")
	}
}

// TestConfigErrors: invalid configs are rejected up front.
func TestConfigErrors(t *testing.T) {
	for _, cfg := range []Config{
		{Protocol: "nope", Nodes: 2, Epochs: 1},
		{Protocol: "central", Nodes: 0, Epochs: 1},
		{Protocol: "central", Nodes: 2, Epochs: 0},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v: expected an error", cfg)
		}
	}
}

// TestOracleMatchesSimulator cross-checks the closed-form release-time
// recurrences against the simulator: on a clean network the predicted
// release matrix must equal Result.ReleaseAt tick for tick, for every
// protocol, size and seed tried.
func TestOracleMatchesSimulator(t *testing.T) {
	for _, proto := range cluster.Protocols() {
		for n := 1; n <= 6; n++ {
			for seed := uint64(1); seed <= 5; seed++ {
				cfg := cluster.Config{
					Protocol: proto, Nodes: n, Epochs: 4,
					Work: 20, WorkJitter: 13, Region: 3,
					Net:  cluster.NetConfig{Latency: 2},
					Seed: seed,
				}
				sim, err := cluster.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: %v", proto, n, seed, err)
				}
				want, err := OracleReleases(proto, 2, cfg.Net.Latency, res.ArriveAt)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					for e := range want[i] {
						if got := res.ReleaseAt[i][e]; got != want[i][e] {
							t.Fatalf("%s n=%d seed=%d node=%d epoch=%d: sim released at %d, oracle predicts %d (arrivals %v)",
								proto, n, seed, i, e, got, want[i][e], column(res.ArriveAt, e))
						}
					}
				}
			}
		}
	}
}

func column(m [][]int64, e int) []int64 {
	out := make([]int64, len(m))
	for i := range m {
		out[i] = m[i][e]
	}
	return out
}

// TestStallMomentsHandChecked pins StallMoments against a hand-computed
// case: central, n=2, L=1, jitter 1. The four jitter vectors give total
// stalls {3, 4, 2, 3}, so mean 3 and variance 1/2.
func TestStallMomentsHandChecked(t *testing.T) {
	mean, stdev, err := StallMoments("central", 2, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", mean)
	}
	if want := math.Sqrt(0.5); math.Abs(stdev-want) > 1e-12 {
		t.Errorf("stdev = %v, want %v", stdev, want)
	}
}

// TestStallMomentsBounds: the enumeration refuses absurd case counts
// and bad inputs.
func TestStallMomentsBounds(t *testing.T) {
	if _, _, err := StallMoments("central", 2, 1, 12, 7); err == nil {
		t.Error("8^12 cases: expected an error")
	}
	if _, _, err := StallMoments("central", 2, 1, 0, 1); err == nil {
		t.Error("0 nodes: expected an error")
	}
	if _, _, err := StallMoments("central", 2, 1, 2, -1); err == nil {
		t.Error("negative jitter: expected an error")
	}
	if _, err := ReleaseTimes("central", 2, 0, []int64{1}); err == nil {
		t.Error("latency 0: expected an error")
	}
	if _, err := ReleaseTimes("nope", 2, 1, []int64{1}); err == nil {
		t.Error("unknown protocol: expected an error")
	}
}
