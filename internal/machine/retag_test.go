package machine

import (
	"testing"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
)

// TestFigure6StreamMerging reproduces Figure 6 on the simulator: three
// processors whose streams merge pairwise using *different* logical
// barriers, with tags and masks rewritten at run time by BARRIER
// instructions.
//
//	P1 runs S0, then synchronizes with P2 at B2 (tag 2), then with P3 at
//	B3 (tag 3), then finishes S5 alone.
//	P2 runs S2 and engages only in B2.
//	P3 runs S4 and engages only in B3.
//
// If the barriers were not logically distinct (same tag), P1's arrival
// for B2 could incorrectly match P3's arrival for B3 — the mis-sync the
// paper uses to motivate tags.
func TestFigure6StreamMerging(t *testing.T) {
	// P1: work; barrier tag2 with P2; work; barrier tag3 with P3; halt.
	b1 := isa.NewBuilder("P1")
	b1.Work(5)
	b1.BarrierInit(2, uint64(core.MaskOf(1)))
	b1.InBarrier().Nop()
	b1.InNonBarrier().Work(5)
	b1.BarrierInit(3, uint64(core.MaskOf(2))) // retag for the second merge
	b1.InBarrier().Nop()
	b1.InNonBarrier().Work(3).Halt()

	// P2: long work (S2); barrier tag2 with P1; halt.
	b2 := isa.NewBuilder("P2")
	b2.Work(30)
	b2.BarrierInit(2, uint64(core.MaskOf(0)))
	b2.InBarrier().Nop()
	b2.InNonBarrier().Halt()

	// P3: longer work (S4); barrier tag3 with P1; halt.
	b3 := isa.NewBuilder("P3")
	b3.Work(60)
	b3.BarrierInit(3, uint64(core.MaskOf(0)))
	b3.InBarrier().Nop()
	b3.InNonBarrier().Halt()

	m := New(Config{Procs: 3, Mem: simpleMem(3)})
	for p, b := range []*isa.Builder{b1, b2, b3} {
		if err := m.Load(p, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// P1 completed two merges, P2 and P3 one each.
	if res.Procs[0].Syncs != 2 {
		t.Errorf("P1 syncs = %d, want 2", res.Procs[0].Syncs)
	}
	if res.Procs[1].Syncs != 1 || res.Procs[2].Syncs != 1 {
		t.Errorf("P2/P3 syncs = %d/%d, want 1/1", res.Procs[1].Syncs, res.Procs[2].Syncs)
	}
	// Ordering: P1 cannot halt before P3 becomes ready (cycle ~60).
	if res.Procs[0].HaltCycle < 60 {
		t.Errorf("P1 halted at %d, before P3's merge point", res.Procs[0].HaltCycle)
	}
}

// TestFigure6WithoutTagsMisSyncs shows the failure distinct barriers
// prevent. With one shared tag and asymmetric masks — P1 waiting on both
// partners while each partner waits only on P1 — the partners each
// "synchronize" one-sidedly against P1's standing ready line (P2 at its
// own arrival, P3 at its own arrival) and halt, consuming their lines,
// while P1's own condition (both partners ready simultaneously) is never
// true. P1 deadlocks after both partners believe the merge happened —
// exactly the paper's mis-synchronization: "P1 upon reaching barrier B2
// may incorrectly synchronize with P3 when P3 reaches barrier B3 if the
// barriers are not given different identities."
func TestFigure6WithoutTagsMisSyncs(t *testing.T) {
	b1 := isa.NewBuilder("P1")
	b1.Work(5)
	b1.BarrierInit(1, uint64(core.MaskOf(1)|core.MaskOf(2))) // "merge with whoever"
	b1.InBarrier().Nop()
	b1.InNonBarrier().Halt()

	b2 := isa.NewBuilder("P2")
	b2.Work(30)
	b2.BarrierInit(1, uint64(core.MaskOf(0)))
	b2.InBarrier().Nop()
	b2.InNonBarrier().Halt()

	b3 := isa.NewBuilder("P3")
	b3.Work(60)
	b3.BarrierInit(1, uint64(core.MaskOf(0)))
	b3.InBarrier().Nop()
	b3.InNonBarrier().Halt()

	m := New(Config{Procs: 3, Mem: simpleMem(3), MaxCycles: 100_000})
	for p, b := range []*isa.Builder{b1, b2, b3} {
		if err := m.Load(p, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err == nil {
		t.Fatal("expected the untagged merge pattern to deadlock")
	}
	if !res.Deadlocked {
		t.Fatalf("run failed differently: %v", err)
	}
	// The partners each completed a one-sided "synchronization"; P1 never
	// synchronized at all.
	if res.Procs[1].Syncs != 1 || res.Procs[2].Syncs != 1 {
		t.Errorf("partner syncs = %d/%d, want 1/1", res.Procs[1].Syncs, res.Procs[2].Syncs)
	}
	if res.Procs[0].Syncs != 0 {
		t.Errorf("P1 syncs = %d, want 0 (its mask is never satisfied)", res.Procs[0].Syncs)
	}
	if res.Procs[0].Halted {
		t.Error("P1 should be stuck, not halted")
	}
}

// TestRetaggingMidStream verifies that a processor can change its barrier
// identity repeatedly and that stale partners never satisfy the new tag.
func TestRetaggingMidStream(t *testing.T) {
	// P0 synchronizes once with P1 under tag 1, then retags to 2 and
	// synchronizes with P2, then back to tag 1 with P1 again.
	prog0 := isa.NewBuilder("P0")
	prog0.BarrierInit(1, uint64(core.MaskOf(1)))
	prog0.InBarrier().Nop()
	prog0.InNonBarrier().Nop()
	prog0.BarrierInit(2, uint64(core.MaskOf(2)))
	prog0.InBarrier().Nop()
	prog0.InNonBarrier().Nop()
	prog0.BarrierInit(1, uint64(core.MaskOf(1)))
	prog0.InBarrier().Nop()
	prog0.InNonBarrier().Halt()

	prog1 := isa.NewBuilder("P1")
	prog1.BarrierInit(1, uint64(core.MaskOf(0)))
	prog1.InBarrier().Nop()
	prog1.InNonBarrier().Work(40) // busy while P0 talks to P2
	prog1.InBarrier().Nop()
	prog1.InNonBarrier().Halt()

	prog2 := isa.NewBuilder("P2")
	prog2.BarrierInit(2, uint64(core.MaskOf(0)))
	prog2.Work(10)
	prog2.InBarrier().Nop()
	prog2.InNonBarrier().Halt()

	m := New(Config{Procs: 3, Mem: simpleMem(3)})
	for p, b := range []*isa.Builder{prog0, prog1, prog2} {
		if err := m.Load(p, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Procs[0].Syncs != 3 {
		t.Errorf("P0 syncs = %d, want 3", res.Procs[0].Syncs)
	}
	if res.Procs[1].Syncs != 2 {
		t.Errorf("P1 syncs = %d, want 2", res.Procs[1].Syncs)
	}
	if res.Procs[2].Syncs != 1 {
		t.Errorf("P2 syncs = %d, want 1", res.Procs[2].Syncs)
	}
}
