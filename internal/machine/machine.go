// Package machine is a deterministic cycle-level simulator of the
// prototype multiprocessor the paper targets: N RISC processors on a
// common clock, each with a private copy of the fuzzy-barrier hardware
// (internal/core.Unit) connected by broadcast ready lines, sharing a
// memory system (internal/mem).
//
// Every cycle, each processor either issues one instruction, waits for a
// multi-cycle instruction or memory access to complete, or stalls at the
// end of a barrier region waiting for synchronization. At the end of each
// cycle the barrier network evaluates the synchronization condition for
// all processors simultaneously, exactly as the hardware's combinational
// logic would.
//
// Determinism is the point: unlike wall-clock measurements on a real
// multiprocessor (or on goroutines), stall cycles attributable to barrier
// synchronization can be counted exactly, which is what the experiment
// harness reports.
package machine

import (
	"errors"
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
)

// Config describes a simulated machine.
type Config struct {
	// Procs is the number of processors (1..64).
	Procs int
	// Mem configures the shared-memory system. Mem.Procs is overridden
	// with Procs.
	Mem mem.Config
	// MulLatency and DivLatency are the cycle costs of multiply and
	// divide (defaults 3 and 8); all other ALU instructions take 1 cycle.
	MulLatency int64
	DivLatency int64
	// PipelineDepth models instruction-completion lag: a processor's
	// ready line rises PipelineDepth−1 cycles after it issues the first
	// instruction of a barrier region, because the last non-barrier
	// instruction is still in the pipe (Section 2's exit-vs-enter
	// distinction). Depth 1 (default) is the non-pipelined machine where
	// exiting one region and entering the next coincide.
	PipelineDepth int64
	// IssueWidth enables a simple VLIW/LIW issue mode (Section 9 notes
	// the prototype "will be used for executing code in VLIW mode"): up
	// to IssueWidth consecutive single-cycle ALU instructions with the
	// same barrier-region bit issue in one cycle. Branches, memory
	// operations, multi-cycle arithmetic and region transitions end a
	// bundle. Default 1 (scalar issue).
	IssueWidth int
	// InterruptEvery, when > 0, preempts each processor for
	// InterruptCost cycles after every InterruptEvery issued
	// instructions (staggered per processor) — a deterministic model of
	// the interrupts and traps Section 9 leaves as future work. RISC
	// systems of the era used traps even for floating-point operations,
	// so tolerance to them matters.
	InterruptEvery int64
	// InterruptCost is the preemption length in cycles (default 20 when
	// InterruptEvery is set).
	InterruptCost int64
	// MaxCycles aborts runaway simulations (default 50,000,000).
	MaxCycles int64
	// Recorder, if non-nil, records per-cycle Gantt lanes and events.
	Recorder *trace.Recorder
	// Phases, if non-nil, attributes every processor-cycle to a
	// (barrier-episode, activity-kind) pair; see trace.Phases. Both
	// hooks follow the same discipline: nil disables them with zero
	// allocation on the simulation hot path.
	Phases *trace.Phases
	// DisableFastForward forces the naive per-cycle simulation loop.
	// The fast-forward engine (see Run) produces bit-identical results,
	// statistics, phase attribution and traces; this knob exists for the
	// equivalence tests and for benchmarking the speedup.
	DisableFastForward bool
}

func (c *Config) normalize() {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.Procs > 64 {
		c.Procs = 64
	}
	if c.MulLatency <= 0 {
		c.MulLatency = 3
	}
	if c.DivLatency <= 0 {
		c.DivLatency = 8
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.IssueWidth <= 0 {
		c.IssueWidth = 1
	}
	if c.InterruptEvery > 0 && c.InterruptCost <= 0 {
		c.InterruptCost = 20
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 50_000_000
	}
	c.Mem.Procs = c.Procs
}

// callStackDepth bounds the per-processor CALL stack.
const callStackDepth = 64

// busyKind tags why a processor is occupied for multiple cycles.
type busyKind byte

const (
	busyNone busyKind = iota
	busyExec          // multi-cycle ALU op
	busyMem           // memory access in flight
	busyWork          // synthetic WORK
	busyIrq           // interrupt/trap preemption
)

// processor is the per-CPU simulator state.
type processor struct {
	id        int
	prog      *isa.Program
	code      []isa.Instr // prog.Code, cached to skip the pointer chase per cycle
	flags     []instrFlag // predecoded per-instruction metadata (same length as code)
	pc        int
	regs      [isa.NumRegs]int64
	halted    bool
	fault     error
	busyTil   int64 // next cycle at which an instruction may issue
	busy      busyKind
	inBar     bool  // marker-mode region membership
	enterAt   int64 // pipelined: cycle at which the pending EnterBarrier fires (-1 none)
	sinceIrq  int64 // instructions issued since the last interrupt
	callStack []int // CALL return addresses

	stats ProcStats
}

// ProcStats aggregates one processor's activity over a run.
type ProcStats struct {
	Instructions  int64 // instructions issued
	BarrierInstrs int64 // of which barrier-region instructions
	StallCycles   int64 // cycles stalled at a barrier-region exit
	MemCycles     int64 // cycles waiting on memory
	WorkCycles    int64 // cycles consumed by WORK
	IrqCycles     int64 // cycles lost to injected interrupts
	Syncs         int64 // barrier synchronizations completed
	HaltCycle     int64 // cycle at which HALT issued (or end of run)
	Halted        bool
}

// Machine is a configured simulator instance. Create with New, load one
// program per processor, then Run.
type Machine struct {
	cfg   Config
	mem   *mem.System
	net   *core.Network
	procs []*processor
	cycle int64

	decodeCache map[*isa.Program][]instrFlag
	firedBuf    []int // reused by the per-cycle synchronization detection
}

// New creates a machine.
func New(cfg Config) *Machine {
	cfg.normalize()
	m := &Machine{
		cfg: cfg,
		mem: mem.New(cfg.Mem),
		net: core.NewNetwork(cfg.Procs),
	}
	m.procs = make([]*processor, cfg.Procs)
	for i := range m.procs {
		m.procs[i] = &processor{id: i, halted: true, enterAt: -1}
	}
	return m
}

// Mem exposes the shared memory system (for initialization and result
// inspection).
func (m *Machine) Mem() *mem.System { return m.mem }

// Network exposes the barrier network (for inspection in tests).
func (m *Machine) Network() *core.Network { return m.net }

// Load assigns a program to processor p and resets its state. A processor
// with no program stays halted and does not participate.
func (m *Machine) Load(p int, prog *isa.Program) error {
	if p < 0 || p >= len(m.procs) {
		return fmt.Errorf("machine: processor %d out of range [0,%d)", p, len(m.procs))
	}
	if prog == nil || prog.Len() == 0 {
		return fmt.Errorf("machine: empty program for processor %d", p)
	}
	pr := m.procs[p]
	*pr = processor{id: p, prog: prog, code: prog.Code, flags: m.decoded(prog), enterAt: -1}
	return nil
}

// SetReg presets a register before the run — how per-processor parameters
// (the l, m of the paper's "Processor P_l,m") are passed in.
func (m *Machine) SetReg(p int, r isa.Reg, v int64) error {
	if p < 0 || p >= len(m.procs) {
		return fmt.Errorf("machine: processor %d out of range [0,%d)", p, len(m.procs))
	}
	if r >= isa.NumRegs {
		return fmt.Errorf("machine: register r%d out of range", r)
	}
	m.procs[p].regs[r] = v
	return nil
}

// ErrDeadlock is wrapped by Run's error when the machine reaches a state
// from which no processor can ever make progress — e.g. the Figure 2
// invalid branch, or a barrier whose partner halted.
var ErrDeadlock = errors.New("machine: barrier deadlock")

// ErrMaxCycles is wrapped when the simulation exceeds Config.MaxCycles.
var ErrMaxCycles = errors.New("machine: cycle limit exceeded")

// Result summarizes a completed run.
type Result struct {
	Cycles     int64
	Procs      []ProcStats
	Mem        mem.Stats
	Deadlocked bool
	// Faults collects per-processor execution faults (bad address,
	// divide by zero); a faulted processor halts, others continue.
	Faults []error
}

// TotalStalls sums stall cycles across processors.
func (r *Result) TotalStalls() int64 {
	var s int64
	for _, p := range r.Procs {
		s += p.StallCycles
	}
	return s
}

// MaxStalls returns the worst single-processor stall count.
func (r *Result) MaxStalls() int64 {
	var s int64
	for _, p := range r.Procs {
		if p.StallCycles > s {
			s = p.StallCycles
		}
	}
	return s
}

// Syncs returns the maximum per-processor synchronization count (the
// number of barrier episodes the slowest participant completed).
func (r *Result) Syncs() int64 {
	var s int64
	for _, p := range r.Procs {
		if p.Syncs > s {
			s = p.Syncs
		}
	}
	return s
}

// Run simulates until every loaded processor halts, a deadlock is
// detected, or the cycle limit is hit. It can be called once per Machine.
//
// The loop fast-forwards over uninteresting cycles: when every live
// processor is either busy until a known cycle (multi-cycle ALU op,
// memory access, WORK, interrupt) or provably stalled until an external
// event (a barrier release or a pending pipelined entry), the clock
// jumps straight to the earliest such deadline, attributing the skipped
// cycles in bulk. The skip is exact — statistics, phase attribution and
// recorded traces are bit-identical to the naive per-cycle loop (set
// Config.DisableFastForward to compare) — because during a skipped span
// no processor issues an instruction, so no ready line, tag or memory
// state can change and the barrier network provably cannot fire.
func (m *Machine) Run() (*Result, error) {
	res := &Result{}
	rec := m.cfg.Recorder
	for {
		if m.cycle >= m.cfg.MaxCycles {
			m.finish(res)
			return res, fmt.Errorf("%w: %d cycles", ErrMaxCycles, m.cfg.MaxCycles)
		}
		if !m.cfg.DisableFastForward {
			m.fastForward()
			if m.cycle >= m.cfg.MaxCycles {
				m.finish(res)
				return res, fmt.Errorf("%w: %d cycles", ErrMaxCycles, m.cfg.MaxCycles)
			}
		}
		progress := false
		allHalted := true
		for _, p := range m.procs {
			if p.halted {
				continue
			}
			allHalted = false
			if m.step(p) {
				progress = true
			}
		}
		if allHalted {
			m.finish(res)
			return res, nil
		}
		// Fire pipelined barrier entries whose delay elapsed. A pending
		// entry is guaranteed future progress, so it also keeps the
		// deadlock detector quiet until the line rises.
		for _, p := range m.procs {
			if p.enterAt < 0 {
				continue
			}
			if m.cycle >= p.enterAt {
				m.net.Unit(p.id).EnterBarrier()
				p.enterAt = -1
			}
			progress = true
		}
		// Simultaneous synchronization detection.
		m.firedBuf = m.net.StepCollect(m.firedBuf[:0])
		for _, i := range m.firedBuf {
			progress = true
			if rec.Enabled() {
				rec.Mark(m.cycle, i, trace.KindSync)
				rec.Eventf(m.cycle, i, "synchronized (tag=%d, epoch=%d)", m.net.Unit(i).Tag(), m.net.Unit(i).Syncs())
			}
			// One barrier episode ends for processor i: cycles
			// accounted from here on belong to the next phase. (The
			// KindSync lane mark above is presentation-only — the
			// cycle's activity was already attributed by step.)
			m.cfg.Phases.Advance(i)
		}
		if !progress {
			m.finish(res)
			res.Deadlocked = true
			return res, fmt.Errorf("%w at cycle %d: %s", ErrDeadlock, m.cycle, m.deadlockInfo())
		}
		m.cycle++
	}
}

// fastForward advances the clock to the next interesting cycle when the
// current one (and every one up to it) is provably uneventful, doing the
// per-cycle accounting of the skipped span in bulk. It leaves the clock
// unchanged unless *every* live processor is busy or boringly stalled.
//
// An "interesting" cycle is one at which some processor can issue an
// instruction or a pending pipelined barrier entry fires: the minimum
// over all busy-until deadlines and pending enterAt times. Cycles
// strictly before it are uniform — busy processors keep burning their
// latency, stalled processors keep stalling (their release requires a
// partner's ready line to rise, which only instruction issue or a
// pending entry can cause) and the barrier network's inputs are frozen,
// so Network.Step is a no-op for the whole span. If no deadline exists
// (every processor stalled forever) nothing is skipped and the naive
// loop's deadlock detection runs unchanged.
func (m *Machine) fastForward() {
	next := int64(-1)
	for _, p := range m.procs {
		var deadline int64 = -1
		if p.enterAt >= 0 {
			// A pending pipelined entry raises a ready line at enterAt
			// even if its processor has since halted.
			deadline = p.enterAt
		}
		if !p.halted {
			if p.busyTil > m.cycle {
				if deadline < 0 || p.busyTil < deadline {
					deadline = p.busyTil
				}
			} else if !m.boringStall(p) {
				// The processor issues an instruction this cycle (or
				// faults): the present is already interesting.
				return
			}
		}
		if deadline >= 0 && (next < 0 || deadline < next) {
			next = deadline
		}
	}
	if next <= m.cycle {
		// No future event (deadlock — leave it to the naive loop) or the
		// event is due this very cycle.
		return
	}
	if next > m.cfg.MaxCycles {
		next = m.cfg.MaxCycles
	}
	n := next - m.cycle
	if n <= 0 {
		return
	}
	for _, p := range m.procs {
		if p.halted {
			continue
		}
		if p.busyTil > m.cycle {
			switch p.busy {
			case busyMem:
				p.stats.MemCycles += n
				m.markN(p.id, trace.KindMemory, n)
			case busyWork:
				p.stats.WorkCycles += n
				m.markN(p.id, trace.KindWork, n)
			case busyIrq:
				p.stats.IrqCycles += n
				m.markN(p.id, trace.KindInterrupt, n)
			default:
				m.markN(p.id, trace.KindExec, n)
			}
		} else {
			m.net.Unit(p.id).NoteStallCycles(n)
			p.stats.StallCycles += n
			m.markN(p.id, trace.KindStall, n)
		}
	}
	m.cycle = next
}

// boringStall reports whether processor p (live, not busy) is certain to
// spend this cycle — and every following cycle until some other event —
// stalled at a barrier-region boundary. True only when the pending
// instruction is non-barrier and either the pipelined ready line has not
// risen yet (enterAt pending) or the barrier unit is already waiting for
// a synchronization that only a partner's future instruction issue can
// complete. Anything else (a fault, an issueable instruction, a
// just-synced unit about to cross) makes the cycle interesting.
func (m *Machine) boringStall(p *processor) bool {
	if p.pc < 0 || p.pc >= len(p.code) {
		return false
	}
	if m.instrInBarrier(p, p.pc) {
		return false
	}
	if p.enterAt >= 0 {
		return true
	}
	switch m.net.Unit(p.id).State() {
	case core.StateInBarrier, core.StateStalled:
		// TryCross would fail: the network evaluated this unit against
		// the current ready lines at the end of the previous cycle and
		// did not fire it, and those lines cannot change while every
		// processor is busy or stalled.
		return true
	}
	return false
}

// markN is the bulk form of mark: it attributes the n cycles starting at
// the current one to activity kind k for processor p.
func (m *Machine) markN(p int, k trace.Kind, n int64) {
	m.cfg.Recorder.MarkN(m.cycle, n, p, k)
	m.cfg.Phases.AccountN(p, k, n)
}

func (m *Machine) deadlockInfo() string {
	s := ""
	for _, p := range m.procs {
		u := m.net.Unit(p.id)
		s += fmt.Sprintf("[P%d pc=%d state=%s ready=%v tag=%d halted=%v] ",
			p.id, p.pc, u.State(), u.Ready(), u.Tag(), p.halted)
	}
	return s
}

func (m *Machine) finish(res *Result) {
	res.Cycles = m.cycle
	res.Mem = m.mem.Stats()
	res.Procs = make([]ProcStats, len(m.procs))
	for i, p := range m.procs {
		p.stats.Syncs = m.net.Unit(i).Syncs()
		p.stats.Halted = p.halted
		if p.prog == nil {
			p.stats.Halted = true
		}
		res.Procs[i] = p.stats
		if p.fault != nil {
			res.Faults = append(res.Faults, fmt.Errorf("P%d: %w", i, p.fault))
		}
	}
}

// mark attributes the current cycle's activity of processor p to both
// observability sinks: the Gantt lane and the per-phase aggregator. Both
// are nil-safe no-ops when disabled.
func (m *Machine) mark(p int, k trace.Kind) {
	m.cfg.Recorder.Mark(m.cycle, p, k)
	m.cfg.Phases.Account(p, k)
}

// step advances processor p by one cycle; it returns true if the
// processor did anything other than stall.
func (m *Machine) step(p *processor) bool {
	u := m.net.Unit(p.id)

	if p.busyTil > m.cycle {
		switch p.busy {
		case busyMem:
			p.stats.MemCycles++
			m.mark(p.id, trace.KindMemory)
		case busyWork:
			p.stats.WorkCycles++
			m.mark(p.id, trace.KindWork)
		case busyIrq:
			p.stats.IrqCycles++
			m.mark(p.id, trace.KindInterrupt)
		default:
			m.mark(p.id, trace.KindExec)
		}
		return true
	}
	p.busy = busyNone

	if p.pc < 0 || p.pc >= len(p.code) {
		p.fault = fmt.Errorf("machine: pc %d out of range [0,%d)", p.pc, len(p.code))
		m.halt(p)
		return true
	}
	in := p.code[p.pc]
	inBarrier := m.instrInBarrier(p, p.pc)

	if inBarrier {
		if u.State() == core.StateNonBarrier {
			// Exiting the preceding non-barrier region. With a pipeline,
			// the ready line rises only when that region's last
			// instruction completes.
			if m.cfg.PipelineDepth > 1 {
				if p.enterAt < 0 {
					p.enterAt = m.cycle + m.cfg.PipelineDepth - 1
				}
			} else {
				u.EnterBarrier()
			}
		}
		u.NoteBarrierInstr()
		m.mark(p.id, trace.KindBarrier)
	} else {
		if p.enterAt >= 0 {
			// The region was shorter than the pipeline: the ready line
			// has not risen yet, so the processor cannot cross — it must
			// wait for the delayed line and then for synchronization.
			u.NoteStallCycle()
			p.stats.StallCycles++
			m.mark(p.id, trace.KindStall)
			return false
		}
		if !u.TryCross() {
			// End of barrier region reached before synchronization:
			// stall (Section 2's Condition for Stalling).
			u.NoteStallCycle()
			p.stats.StallCycles++
			m.mark(p.id, trace.KindStall)
			return false
		}
		m.mark(p.id, trace.KindExec)
	}

	m.execute(p, in, inBarrier)
	m.maybeInterrupt(p)

	// VLIW bundling: issue further bundleable instructions this cycle.
	for issued := 1; issued < m.cfg.IssueWidth; issued++ {
		if p.halted || p.busy != busyNone || p.busyTil > m.cycle+1 {
			break
		}
		if p.pc < 0 || p.pc >= len(p.code) {
			break
		}
		next := p.code[p.pc]
		if p.flags[p.pc]&flagBundleable == 0 || m.instrInBarrier(p, p.pc) != inBarrier {
			break
		}
		if inBarrier {
			m.net.Unit(p.id).NoteBarrierInstr()
		}
		m.execute(p, next, inBarrier)
		m.maybeInterrupt(p)
	}
	return true
}

// maybeInterrupt injects the deterministic preemption configured by
// InterruptEvery/InterruptCost. The injection point is after instruction
// issue, so interrupts land inside barrier regions as readily as outside
// them; per-processor staggering (by id) makes processors drift apart,
// which is the disturbance the fuzzy barrier must absorb.
func (m *Machine) maybeInterrupt(p *processor) {
	if m.cfg.InterruptEvery <= 0 || p.halted {
		return
	}
	p.sinceIrq++
	if (p.sinceIrq+int64(p.id)*3)%m.cfg.InterruptEvery == 0 {
		start := m.cycle + 1
		if p.busyTil > start {
			start = p.busyTil
		}
		p.busy = busyIrq
		p.busyTil = start + m.cfg.InterruptCost
	}
}

// instrInBarrier decides region membership of the instruction at index
// idx, about to issue, under the program's encoding mode, using the
// predecoded flags. In marker mode the BENTER instruction itself is the
// first region instruction and BEXIT the last.
func (m *Machine) instrInBarrier(p *processor, idx int) bool {
	f := p.flags[idx]
	if p.prog.Mode == isa.ModeBit {
		return f&flagBarrierBit != 0
	}
	return f&flagMarker != 0 || p.inBar
}

func (m *Machine) halt(p *processor) {
	p.halted = true
	p.stats.HaltCycle = m.cycle
	if rec := m.cfg.Recorder; rec.Enabled() {
		rec.Mark(m.cycle, p.id, trace.KindHalted)
		if p.fault != nil {
			rec.Eventf(m.cycle, p.id, "fault: %v", p.fault)
		} else {
			rec.Eventf(m.cycle, p.id, "halted")
		}
	}
}
