package machine

import "fuzzybarrier/internal/isa"

// instrFlag is the per-instruction metadata predecoded at Load time so
// the per-cycle step/exec hot paths dispatch on a byte instead of
// re-deriving properties from the instruction word every cycle.
type instrFlag byte

const (
	// flagBundleable marks single-cycle register-to-register work that
	// may share a VLIW issue cycle with its predecessor.
	flagBundleable instrFlag = 1 << iota
	// flagBarrierBit caches the bit-mode barrier bit.
	flagBarrierBit
	// flagMarker marks the BENTER/BEXIT region markers, which belong to
	// the barrier region themselves regardless of the processor's
	// current marker state.
	flagMarker
)

// predecode computes the instruction metadata table for one program.
func predecode(prog *isa.Program) []instrFlag {
	flags := make([]instrFlag, len(prog.Code))
	for i, in := range prog.Code {
		var f instrFlag
		switch in.Op {
		case isa.NOP, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
			isa.SHL, isa.SHR, isa.SLT, isa.LDI, isa.MOV, isa.ADDI, isa.SUBI:
			f |= flagBundleable
		case isa.BENTER, isa.BEXIT:
			f |= flagMarker
		}
		if in.Barrier {
			f |= flagBarrierBit
		}
		flags[i] = f
	}
	return flags
}

// decoded returns the (cached) predecode table for prog. Several
// processors may share one program; the table is immutable, so sharing
// the slice is safe.
func (m *Machine) decoded(prog *isa.Program) []instrFlag {
	if f, ok := m.decodeCache[prog]; ok {
		return f
	}
	f := predecode(prog)
	if m.decodeCache == nil {
		m.decodeCache = make(map[*isa.Program][]instrFlag)
	}
	m.decodeCache[prog] = f
	return f
}
