package machine

import (
	"testing"
	"testing/quick"

	"fuzzybarrier/internal/isa"
)

// runOne executes a single-processor program and returns the machine.
func runOne(t *testing.T, b *isa.Builder) (*Machine, *Result) {
	t.Helper()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// regAfter runs a program and asserts a register value by storing it to
// memory (registers are not exposed post-run by design).
func TestALUOpcodes(t *testing.T) {
	cases := []struct {
		name string
		op   isa.Op
		a, b int64
		want int64
	}{
		{"add", isa.ADD, 7, 5, 12},
		{"sub", isa.SUB, 7, 5, 2},
		{"mul", isa.MUL, 7, 5, 35},
		{"div", isa.DIV, 17, 5, 3},
		{"mod", isa.MOD, 17, 5, 2},
		{"and", isa.AND, 0b1100, 0b1010, 0b1000},
		{"or", isa.OR, 0b1100, 0b1010, 0b1110},
		{"xor", isa.XOR, 0b1100, 0b1010, 0b0110},
		{"shl", isa.SHL, 3, 4, 48},
		{"shr", isa.SHR, 48, 4, 3},
		{"slt-true", isa.SLT, 3, 9, 1},
		{"slt-false", isa.SLT, 9, 3, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := isa.NewBuilder(c.name)
			b.Ldi(1, c.a).Ldi(2, c.b).Alu(c.op, 3, 1, 2).
				Ldi(4, 50).St(4, 0, 3).Halt()
			m, _ := runOne(t, b)
			if got := m.Mem().MustPeek(50); got != c.want {
				t.Errorf("%d %v %d = %d, want %d", c.a, c.op, c.b, got, c.want)
			}
		})
	}
}

func TestImmediateOpcodes(t *testing.T) {
	cases := []struct {
		name string
		op   isa.Op
		a    int64
		imm  int64
		want int64
	}{
		{"addi", isa.ADDI, 7, 5, 12},
		{"subi", isa.SUBI, 7, 5, 2},
		{"muli", isa.MULI, 7, 5, 35},
		{"divi", isa.DIVI, 17, 5, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := isa.NewBuilder(c.name)
			b.Ldi(1, c.a).AluI(c.op, 3, 1, c.imm).
				Ldi(4, 50).St(4, 0, 3).Halt()
			m, _ := runOne(t, b)
			if got := m.Mem().MustPeek(50); got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestBranchOpcodes(t *testing.T) {
	// For each comparison, store 1 if taken, 0 if not.
	cases := []struct {
		op    isa.Op
		a, b  int64
		taken bool
	}{
		{isa.BEQ, 5, 5, true}, {isa.BEQ, 5, 6, false},
		{isa.BNE, 5, 6, true}, {isa.BNE, 5, 5, false},
		{isa.BLT, 4, 5, true}, {isa.BLT, 5, 5, false},
		{isa.BLE, 5, 5, true}, {isa.BLE, 6, 5, false},
		{isa.BGT, 6, 5, true}, {isa.BGT, 5, 5, false},
		{isa.BGE, 5, 5, true}, {isa.BGE, 4, 5, false},
	}
	for _, c := range cases {
		b := isa.NewBuilder("br")
		b.Ldi(1, c.a).Ldi(2, c.b).Ldi(3, 0).
			CondBr(c.op, 1, 2, "taken").
			Br("store")
		b.Label("taken").Ldi(3, 1)
		b.Label("store").Ldi(4, 60).St(4, 0, 3).Halt()
		m, _ := runOne(t, b)
		got := m.Mem().MustPeek(60) == 1
		if got != c.taken {
			t.Errorf("%v %d,%d taken = %v, want %v", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func TestMulDivLatency(t *testing.T) {
	run := func(op isa.Op) int64 {
		b := isa.NewBuilder("lat")
		b.Ldi(1, 6).Ldi(2, 3)
		for i := 0; i < 10; i++ {
			b.Alu(op, 3, 1, 2)
		}
		b.Halt()
		_, res := runOne(t, b)
		return res.Cycles
	}
	add, mul, div := run(isa.ADD), run(isa.MUL), run(isa.DIV)
	if mul <= add {
		t.Errorf("MUL cycles (%d) should exceed ADD (%d)", mul, add)
	}
	if div <= mul {
		t.Errorf("DIV cycles (%d) should exceed MUL (%d)", div, mul)
	}
	// Defaults: ADD 1, MUL 3, DIV 8 per op.
	if mul-add != 10*2 {
		t.Errorf("MUL delta = %d, want 20", mul-add)
	}
}

func TestFAASequence(t *testing.T) {
	b := isa.NewBuilder("faa")
	b.Ldi(1, 100). // address
			Ldi(2, 5).
			Faa(3, 1, 0, 2).         // mem[100]: 0 -> 5, r3 = 0
			Faa(4, 1, 0, 2).         // mem[100]: 5 -> 10, r4 = 5
			Ldi(5, 101).St(5, 0, 3). // mem[101] = 0
			Ldi(6, 102).St(6, 0, 4). // mem[102] = 5
			Halt()
	m, _ := runOne(t, b)
	if m.Mem().MustPeek(100) != 10 || m.Mem().MustPeek(101) != 0 || m.Mem().MustPeek(102) != 5 {
		t.Errorf("faa results: %d %d %d", m.Mem().MustPeek(100), m.Mem().MustPeek(101), m.Mem().MustPeek(102))
	}
}

func TestWorkRTiming(t *testing.T) {
	b := isa.NewBuilder("workr")
	b.Ldi(1, 40).WorkR(1).Halt()
	_, res := runOne(t, b)
	if res.Cycles < 40 || res.Cycles > 45 {
		t.Errorf("cycles = %d, want ~41", res.Cycles)
	}
	if res.Procs[0].WorkCycles < 38 {
		t.Errorf("work cycles = %d, want ~39", res.Procs[0].WorkCycles)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("forever").Br("forever")
	m := New(Config{Procs: 1, Mem: simpleMem(1), MaxCycles: 1000})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run()
	if err == nil {
		t.Fatal("infinite loop terminated")
	}
}

func TestPCOutOfRangeFaults(t *testing.T) {
	// A program that runs off the end (no HALT).
	b := isa.NewBuilder("off-end")
	b.Nop()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Faults) != 1 {
		t.Errorf("faults = %v, want pc-out-of-range fault", res.Faults)
	}
}

func TestBadAddressFaults(t *testing.T) {
	b := isa.NewBuilder("oob")
	b.Ldi(1, 1<<40).Ld(2, 1, 0).Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Faults) != 1 {
		t.Errorf("faults = %v, want out-of-range fault", res.Faults)
	}
}

func TestLoadErrors(t *testing.T) {
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(5, nil); err == nil {
		t.Error("bad processor accepted")
	}
	if err := m.Load(0, nil); err == nil {
		t.Error("nil program accepted")
	}
	if err := m.SetReg(0, 200, 1); err == nil {
		t.Error("bad register accepted")
	}
	if err := m.SetReg(9, 1, 1); err == nil {
		t.Error("bad processor accepted in SetReg")
	}
}

func TestSetRegPresetsParameters(t *testing.T) {
	b := isa.NewBuilder("param")
	b.Ldi(2, 70).St(2, 0, 1).Halt() // store r1 (preset) to mem[70]
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := m.SetReg(0, 1, 1234); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().MustPeek(70); got != 1234 {
		t.Errorf("mem[70] = %d, want 1234", got)
	}
}

// TestSyncLoopNeverDeadlocksProperty: any combination of per-processor
// work patterns with identical barrier structure terminates with equal
// sync counts on all processors.
func TestSyncLoopNeverDeadlocksProperty(t *testing.T) {
	f := func(works [][3]uint8, regionSeed uint8) bool {
		if len(works) == 0 {
			return true
		}
		procs := len(works)
		if procs > 8 {
			procs = 8
		}
		iters := 3
		region := int64(regionSeed % 30)
		m := New(Config{Procs: procs, Mem: simpleMem(procs), MaxCycles: 1_000_000})
		for p := 0; p < procs; p++ {
			b := isa.NewBuilder("prop")
			b.BarrierInit(1, uint64(allExceptMask(procs, p)))
			for k := 0; k < iters; k++ {
				b.InNonBarrier()
				w := int64(works[p][k%3] % 60)
				if w > 0 {
					b.Work(w)
				} else {
					b.Nop()
				}
				b.InBarrier()
				if region > 0 {
					b.Work(region)
				} else {
					b.Nop()
				}
			}
			b.InNonBarrier().Halt()
			if err := m.Load(p, b.MustBuild()); err != nil {
				return false
			}
		}
		res, err := m.Run()
		if err != nil {
			return false
		}
		for p := 0; p < procs; p++ {
			if res.Procs[p].Syncs != int64(iters) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func allExceptMask(n, self int) uint64 {
	var m uint64
	for p := 0; p < n; p++ {
		if p != self {
			m |= 1 << uint(p)
		}
	}
	return m
}

// TestCyclesDeterministicProperty: the same machine configuration and
// programs always produce identical cycle counts.
func TestCyclesDeterministicProperty(t *testing.T) {
	f := func(seed uint8) bool {
		run := func() int64 {
			m := New(Config{Procs: 2, Mem: simpleMem(2)})
			for p := 0; p < 2; p++ {
				b := isa.NewBuilder("det")
				b.BarrierInit(1, uint64(allExceptMask(2, p)))
				b.Work(int64(seed%20) + int64(p)*3)
				b.InBarrier().Work(int64(seed % 11)).Nop()
				b.InNonBarrier().Halt()
				if err := m.Load(p, b.MustBuild()); err != nil {
					return -1
				}
			}
			res, err := m.Run()
			if err != nil {
				return -2
			}
			return res.Cycles
		}
		a := run()
		return a > 0 && a == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterruptInjection(t *testing.T) {
	// Interrupts must consume cycles without corrupting results.
	run := func(every int64) (int64, int64, int64) {
		b := isa.NewBuilder("irq")
		b.Ldi(1, 0).Ldi(2, 50)
		b.Label("loop").Addi(1, 1, 1).CondBr(isa.BLT, 1, 2, "loop")
		b.Ldi(3, 80).St(3, 0, 1).Halt()
		m := New(Config{Procs: 1, Mem: simpleMem(1), InterruptEvery: every, InterruptCost: 10})
		if err := m.Load(0, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Cycles, res.Procs[0].IrqCycles, m.Mem().MustPeek(80)
	}
	quiet, quietIrq, v1 := run(0)
	noisy, noisyIrq, v2 := run(7)
	if v1 != 50 || v2 != 50 {
		t.Errorf("results corrupted by interrupts: %d / %d, want 50", v1, v2)
	}
	if quietIrq != 0 {
		t.Errorf("quiet run lost %d cycles to interrupts", quietIrq)
	}
	if noisyIrq == 0 {
		t.Error("noisy run recorded no interrupt cycles")
	}
	if noisy <= quiet {
		t.Errorf("interrupted run (%d cycles) should be slower than quiet (%d)", noisy, quiet)
	}
	if noisy-quiet < noisyIrq {
		t.Errorf("cycle inflation (%d) should cover irq cycles (%d)", noisy-quiet, noisyIrq)
	}
}

func TestInterruptsAbsorbedByRegion(t *testing.T) {
	// Two processors, uniform work, staggered interrupts: a point barrier
	// stalls; a sufficient region absorbs the drift (experiment E12's
	// machine-level kernel).
	run := func(region int64) int64 {
		m := New(Config{Procs: 2, Mem: simpleMem(2), InterruptEvery: 10, InterruptCost: 15})
		for p := 0; p < 2; p++ {
			if err := m.Load(p, loopProgram(t, p, 2, 40-region, region, 20)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.TotalStalls()
	}
	point := run(0)
	fuzzy := run(30)
	if point == 0 {
		t.Skip("no stalls under this interrupt pattern; nothing to compare")
	}
	if fuzzy*2 > point {
		t.Errorf("region should absorb interrupt drift: point=%d fuzzy=%d", point, fuzzy)
	}
}
