package machine

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
	"fuzzybarrier/internal/workload"
)

// runOnce executes progs on a fresh machine with full observability
// attached and returns everything an equivalence check can compare.
func runOnce(t *testing.T, cfg Config, progs []*isa.Program, naive bool) (res *Result, runErr error, gantt string, chrome []byte, phases string) {
	t.Helper()
	cfg.Procs = len(progs)
	cfg.DisableFastForward = naive
	rec := trace.NewRecorder(len(progs))
	ph := trace.NewPhases(len(progs))
	cfg.Recorder = rec
	cfg.Phases = ph
	m := New(cfg)
	for p, prog := range progs {
		if err := m.Load(p, prog); err != nil {
			t.Fatal(err)
		}
	}
	res, runErr = m.Run()
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	for p := 0; p < ph.Procs(); p++ {
		for phase := 0; phase < ph.NumPhases(); phase++ {
			fmt.Fprintf(&pb, "P%d/%d: %v\n", p, phase, ph.ProcCounts(p, phase))
		}
	}
	return res, runErr, rec.Gantt(), buf.Bytes(), pb.String()
}

// checkEquivalent runs progs in fast-forward and naive per-cycle mode
// and asserts byte-identical results, statistics, phase attribution,
// Gantt lanes, event logs and Chrome trace exports.
func checkEquivalent(t *testing.T, cfg Config, progs []*isa.Program) {
	t.Helper()
	fRes, fErr, fGantt, fChrome, fPhases := runOnce(t, cfg, progs, false)
	nRes, nErr, nGantt, nChrome, nPhases := runOnce(t, cfg, progs, true)

	if (fErr == nil) != (nErr == nil) || (fErr != nil && fErr.Error() != nErr.Error()) {
		t.Fatalf("run error diverged:\n  fast:  %v\n  naive: %v", fErr, nErr)
	}
	if fRes.Cycles != nRes.Cycles {
		t.Errorf("cycles diverged: fast=%d naive=%d", fRes.Cycles, nRes.Cycles)
	}
	if fRes.Deadlocked != nRes.Deadlocked {
		t.Errorf("deadlock flag diverged: fast=%v naive=%v", fRes.Deadlocked, nRes.Deadlocked)
	}
	if !reflect.DeepEqual(fRes.Procs, nRes.Procs) {
		t.Errorf("per-processor stats diverged:\n  fast:  %+v\n  naive: %+v", fRes.Procs, nRes.Procs)
	}
	if !reflect.DeepEqual(fRes.Mem, nRes.Mem) {
		t.Errorf("memory stats diverged:\n  fast:  %+v\n  naive: %+v", fRes.Mem, nRes.Mem)
	}
	if fmt.Sprintf("%v", fRes.Faults) != fmt.Sprintf("%v", nRes.Faults) {
		t.Errorf("faults diverged:\n  fast:  %v\n  naive: %v", fRes.Faults, nRes.Faults)
	}
	if fGantt != nGantt {
		t.Errorf("Gantt lanes diverged:\nfast:\n%s\nnaive:\n%s", fGantt, nGantt)
	}
	if !bytes.Equal(fChrome, nChrome) {
		t.Errorf("Chrome trace diverged (%d vs %d bytes)", len(fChrome), len(nChrome))
	}
	if fPhases != nPhases {
		t.Errorf("phase attribution diverged:\nfast:\n%s\nnaive:\n%s", fPhases, nPhases)
	}
}

func ffMem(procs, words int) mem.Config {
	return mem.Config{
		Words: words, Procs: procs,
		HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1,
	}
}

// driftProgs builds the E1/E14-family drift workload.
func driftProgs(t *testing.T, procs, iters int, body, region, jitter int64, seed uint64) []*isa.Program {
	t.Helper()
	progs := make([]*isa.Program, procs)
	for p := 0; p < procs; p++ {
		rng := workload.NewRNG(seed + uint64(7919*p+13))
		prog, err := workload.SyncLoop{
			Self: p, Procs: procs,
			Work:   workload.DriftWork(rng, iters, body-region-jitter/2, jitter),
			Region: region,
		}.Program()
		if err != nil {
			t.Fatal(err)
		}
		progs[p] = prog
	}
	return progs
}

// TestFastForwardEquivalenceGolden is the equivalence suite for the
// named experiment configurations: the E14 drift workload (the paper's
// 4-processor Section 8 sweep with phase attribution) and the
// E15-shaped 8-processor body/region sweep, each across every region
// size the experiments report.
func TestFastForwardEquivalenceGolden(t *testing.T) {
	// E14 configuration: 4 procs, 200-cycle body, 80-cycle jitter.
	for _, region := range []int64{0, 20, 40, 100} {
		t.Run(fmt.Sprintf("e14/region=%d", region), func(t *testing.T) {
			progs := driftProgs(t, 4, 12, 200, region, 80, 0)
			checkEquivalent(t, Config{Mem: ffMem(4, 1024)}, progs)
		})
	}
	// E15-shaped configuration at machine scale: 8 procs, 800-cycle
	// body, 160-cycle jitter.
	for _, region := range []int64{0, 160, 400} {
		t.Run(fmt.Sprintf("e15/region=%d", region), func(t *testing.T) {
			progs := driftProgs(t, 8, 8, 800, region, 160, 0xE15)
			checkEquivalent(t, Config{Mem: ffMem(8, 1024)}, progs)
		})
	}
}

// TestFastForwardEquivalenceFeatures covers the machine features whose
// interaction with the skip logic is subtle: pipelined barrier entry,
// VLIW issue, injected interrupts, real cache/module memory timing, the
// marker encoding, and the software central barrier's FAA hot spot.
func TestFastForwardEquivalenceFeatures(t *testing.T) {
	t.Run("pipeline-depth-4", func(t *testing.T) {
		// Regions shorter than the pipeline force the delayed-enter
		// stall path (enterAt pending while the region has ended).
		progs := driftProgs(t, 4, 10, 60, 2, 20, 7)
		checkEquivalent(t, Config{Mem: ffMem(4, 256), PipelineDepth: 4}, progs)
	})
	t.Run("vliw-issue-4", func(t *testing.T) {
		progs := driftProgs(t, 4, 10, 120, 30, 40, 11)
		checkEquivalent(t, Config{Mem: ffMem(4, 256), IssueWidth: 4}, progs)
	})
	t.Run("interrupts", func(t *testing.T) {
		progs := driftProgs(t, 4, 20, 60, 20, 20, 3)
		checkEquivalent(t, Config{Mem: ffMem(4, 256), InterruptEvery: 15, InterruptCost: 25}, progs)
	})
	t.Run("memory-timing", func(t *testing.T) {
		procs := 4
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			prog, err := workload.CentralBarrierLoop{
				Self: p, Procs: procs, Work: workload.BarrierOnlyWork(30),
			}.Program()
			if err != nil {
				t.Fatal(err)
			}
			progs[p] = prog
		}
		cfg := mem.DefaultConfig(procs, 1024)
		cfg.MissEveryN = 7
		cfg.ModuleBusy = 3
		cfg.Modules = 2
		checkEquivalent(t, Config{Mem: cfg}, progs)
	})
	t.Run("marker-mode", func(t *testing.T) {
		procs := 2
		progs := make([]*isa.Program, procs)
		for p := 0; p < procs; p++ {
			b := isa.NewMarkerBuilder(fmt.Sprintf("marker-p%d", p))
			b.BarrierInit(1, uint64(1<<(1-p)))
			for i := 0; i < 5; i++ {
				b.Work(int64(10 + 13*p))
				b.InBarrier().Work(6).InNonBarrier()
			}
			b.Halt()
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			progs[p] = prog
		}
		checkEquivalent(t, Config{Mem: ffMem(procs, 64)}, progs)
	})
	t.Run("deadlock", func(t *testing.T) {
		// P1 halts without entering the barrier; P0 stalls forever.
		b0 := isa.NewBuilder("dead-p0")
		b0.BarrierInit(1, 1<<1).Work(5).InBarrier().Nop().InNonBarrier().Halt()
		b1 := isa.NewBuilder("dead-p1")
		b1.Work(3).Halt()
		checkEquivalent(t, Config{Mem: ffMem(2, 64)},
			[]*isa.Program{b0.MustBuild(), b1.MustBuild()})
	})
	t.Run("max-cycles", func(t *testing.T) {
		// The cycle limit lands inside a stall span, so the fast path
		// must clamp its jump to the limit exactly.
		progs := driftProgs(t, 4, 50, 200, 0, 80, 5)
		checkEquivalent(t, Config{Mem: ffMem(4, 256), MaxCycles: 1234}, progs)
	})
}

// TestFastForwardEquivalenceRandom is the fuzz-style table: seeded
// random machine configurations and drift programs, checked for
// bit-identical fast/naive behaviour.
func TestFastForwardEquivalenceRandom(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := workload.NewRNG(seed * 0xFF1)
			procs := int(2 + rng.IntN(7))
			iters := int(4 + rng.IntN(12))
			jitter := 10 + rng.IntN(90)
			body := jitter + 20 + rng.IntN(200)
			region := rng.IntN(body / 2)
			cfg := Config{
				Mem:           ffMem(procs, 512),
				PipelineDepth: 1 + rng.IntN(4),
				IssueWidth:    int(1 + rng.IntN(3)),
			}
			if rng.IntN(2) == 1 {
				cfg.InterruptEvery = 10 + rng.IntN(40)
				cfg.InterruptCost = 5 + rng.IntN(30)
			}
			if rng.IntN(2) == 1 {
				cfg.Mem = mem.DefaultConfig(procs, 512)
				cfg.Mem.MissEveryN = int(3 + rng.IntN(10))
			}
			progs := driftProgs(t, procs, iters, body, region, jitter, seed)
			checkEquivalent(t, cfg, progs)
		})
	}
}

// TestFastForwardActuallySkips guards the optimization itself: on the
// stall-heavy workload the fast path must visit far fewer scheduler
// iterations — observable as wall time, but asserted structurally here
// by checking the skip produces long uniform lanes (the bulk paths ran,
// not the per-cycle ones).
func TestFastForwardActuallySkips(t *testing.T) {
	progs, err := workload.StallHeavyPrograms(4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mem: ffMem(4, 256), Procs: 4}
	m := New(cfg)
	for p, prog := range progs {
		if err := m.Load(p, prog); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStalls() == 0 {
		t.Fatal("stall-heavy workload produced no stalls; benchmark workload is broken")
	}
	if res.Cycles < 4000 {
		t.Fatalf("workload too short (%d cycles) to exercise fast-forward", res.Cycles)
	}
}

// TestFastForwardSpeedupGate is the CI regression gate for the
// fast-forward engine: on the stall-heavy benchmark workload the fast
// path must beat the naive per-cycle loop by more than 1.2x wall clock
// (it is typically far faster; see BenchmarkMachineFastForward). The
// gate only runs when BENCH_GATE=1, because wall-clock assertions do
// not belong in the default unit-test run.
func TestFastForwardSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 to run the wall-clock speedup gate")
	}
	const reps = 3
	run := func(naive bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			progs, err := workload.StallHeavyPrograms(8, 200, 42)
			if err != nil {
				t.Fatal(err)
			}
			m := New(Config{Mem: ffMem(8, 256), Procs: 8, DisableFastForward: naive})
			for p, prog := range progs {
				if err := m.Load(p, prog); err != nil {
					t.Fatal(err)
				}
			}
			start := time.Now()
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	naive := run(true)
	fast := run(false)
	speedup := float64(naive) / float64(fast)
	t.Logf("naive=%v fast=%v speedup=%.1fx", naive, fast, speedup)
	if speedup < 1.2 {
		t.Fatalf("fast-forward speedup regressed to %.2fx (naive=%v fast=%v); the gate requires > 1.2x",
			speedup, naive, fast)
	}
}
