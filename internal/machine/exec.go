package machine

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
)

// execute issues instruction in on processor p at the current cycle. The
// caller has already settled region membership and barrier-unit state.
func (m *Machine) execute(p *processor, in isa.Instr, inBarrier bool) {
	p.stats.Instructions++
	if inBarrier {
		p.stats.BarrierInstrs++
	}
	nextPC := p.pc + 1
	issueLat := int64(1)

	switch in.Op {
	case isa.NOP:
		// nothing
	case isa.HALT:
		m.halt(p)
		return
	case isa.ADD:
		p.regs[in.Rd] = p.regs[in.Rs] + p.regs[in.Rt]
	case isa.SUB:
		p.regs[in.Rd] = p.regs[in.Rs] - p.regs[in.Rt]
	case isa.MUL:
		p.regs[in.Rd] = p.regs[in.Rs] * p.regs[in.Rt]
		issueLat = m.cfg.MulLatency
	case isa.DIV:
		if p.regs[in.Rt] == 0 {
			p.fault = fmt.Errorf("machine: divide by zero at pc %d", p.pc)
			m.halt(p)
			return
		}
		p.regs[in.Rd] = p.regs[in.Rs] / p.regs[in.Rt]
		issueLat = m.cfg.DivLatency
	case isa.MOD:
		if p.regs[in.Rt] == 0 {
			p.fault = fmt.Errorf("machine: modulo by zero at pc %d", p.pc)
			m.halt(p)
			return
		}
		p.regs[in.Rd] = p.regs[in.Rs] % p.regs[in.Rt]
		issueLat = m.cfg.DivLatency
	case isa.AND:
		p.regs[in.Rd] = p.regs[in.Rs] & p.regs[in.Rt]
	case isa.OR:
		p.regs[in.Rd] = p.regs[in.Rs] | p.regs[in.Rt]
	case isa.XOR:
		p.regs[in.Rd] = p.regs[in.Rs] ^ p.regs[in.Rt]
	case isa.SHL:
		p.regs[in.Rd] = p.regs[in.Rs] << uint64(p.regs[in.Rt]&63)
	case isa.SHR:
		p.regs[in.Rd] = p.regs[in.Rs] >> uint64(p.regs[in.Rt]&63)
	case isa.SLT:
		if p.regs[in.Rs] < p.regs[in.Rt] {
			p.regs[in.Rd] = 1
		} else {
			p.regs[in.Rd] = 0
		}
	case isa.LDI:
		p.regs[in.Rd] = in.Imm
	case isa.MOV:
		p.regs[in.Rd] = p.regs[in.Rs]
	case isa.ADDI:
		p.regs[in.Rd] = p.regs[in.Rs] + in.Imm
	case isa.SUBI:
		p.regs[in.Rd] = p.regs[in.Rs] - in.Imm
	case isa.MULI:
		p.regs[in.Rd] = p.regs[in.Rs] * in.Imm
		issueLat = m.cfg.MulLatency
	case isa.DIVI:
		if in.Imm == 0 {
			p.fault = fmt.Errorf("machine: divide by zero immediate at pc %d", p.pc)
			m.halt(p)
			return
		}
		p.regs[in.Rd] = p.regs[in.Rs] / in.Imm
		issueLat = m.cfg.DivLatency
	case isa.LD:
		addr := p.regs[in.Rs] + in.Imm
		v, done, err := m.mem.Read(p.id, addr, m.cycle)
		if err != nil {
			p.fault = fmt.Errorf("machine: pc %d: %w", p.pc, err)
			m.halt(p)
			return
		}
		p.regs[in.Rd] = v
		p.busy = busyMem
		p.busyTil = done
	case isa.ST:
		addr := p.regs[in.Rs] + in.Imm
		done, err := m.mem.Write(p.id, addr, p.regs[in.Rt], m.cycle)
		if err != nil {
			p.fault = fmt.Errorf("machine: pc %d: %w", p.pc, err)
			m.halt(p)
			return
		}
		p.busy = busyMem
		p.busyTil = done
	case isa.FAA:
		addr := p.regs[in.Rs] + in.Imm
		old, done, err := m.mem.FetchAdd(p.id, addr, p.regs[in.Rt], m.cycle)
		if err != nil {
			p.fault = fmt.Errorf("machine: pc %d: %w", p.pc, err)
			m.halt(p)
			return
		}
		p.regs[in.Rd] = old
		p.busy = busyMem
		p.busyTil = done
	case isa.BR:
		nextPC = in.Target
	case isa.BEQ:
		if p.regs[in.Rs] == p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BNE:
		if p.regs[in.Rs] != p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BLT:
		if p.regs[in.Rs] < p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BLE:
		if p.regs[in.Rs] <= p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BGT:
		if p.regs[in.Rs] > p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BGE:
		if p.regs[in.Rs] >= p.regs[in.Rt] {
			nextPC = in.Target
		}
	case isa.BARRIER:
		m.net.Unit(p.id).SetBarrier(core.Tag(in.Imm), core.Mask(in.Imm2))
	case isa.WORK:
		if in.Imm > 1 {
			p.busy = busyWork
			p.busyTil = m.cycle + in.Imm
		}
	case isa.WORKR:
		if d := p.regs[in.Rs]; d > 1 {
			p.busy = busyWork
			p.busyTil = m.cycle + d
		}
	case isa.CALL:
		if len(p.callStack) >= callStackDepth {
			p.fault = fmt.Errorf("machine: call stack overflow at pc %d", p.pc)
			m.halt(p)
			return
		}
		p.callStack = append(p.callStack, p.pc+1)
		nextPC = in.Target
	case isa.RET:
		if len(p.callStack) == 0 {
			p.fault = fmt.Errorf("machine: RET with empty call stack at pc %d", p.pc)
			m.halt(p)
			return
		}
		nextPC = p.callStack[len(p.callStack)-1]
		p.callStack = p.callStack[:len(p.callStack)-1]
	case isa.BENTER:
		p.inBar = true
	case isa.BEXIT:
		p.inBar = false
	default:
		p.fault = fmt.Errorf("machine: unimplemented opcode %v at pc %d", in.Op, p.pc)
		m.halt(p)
		return
	}

	p.pc = nextPC
	if p.busy == busyNone && issueLat > 1 {
		p.busy = busyExec
		p.busyTil = m.cycle + issueLat
	} else if p.busy == busyNone {
		p.busyTil = m.cycle + 1
	}
}
